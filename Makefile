GO ?= go
STATICCHECK_VERSION ?= 2023.1.7

FUZZTIME ?= 10s

.PHONY: all build vet test race bench bench-json lintbudget fuzz lint staticcheck determinism crashsafety shardci profile ci

all: vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-json times the full pipeline serial vs scheduled and writes
# BENCH_pipeline.json: mean ns/op per path plus the speedup ratio (>1
# means the DAG scheduler is faster; expect ~1.0 on a single core).
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkStudyRun(Serial|Scheduled)$$' -benchtime=1x -count=3 . \
		| $(GO) run ./cmd/benchjson > BENCH_pipeline.json
	@cat BENCH_pipeline.json
	$(GO) test -run '^$$' -bench 'BenchmarkFlightVisit|BenchmarkManifestWrite|BenchmarkMultisetHash|BenchmarkDiff' \
		-count=3 ./internal/obs/ ./internal/provenance/ \
		| $(GO) run ./cmd/benchjson > BENCH_obs.json
	@cat BENCH_obs.json
	$(MAKE) lintbudget
	$(GO) test -run '^$$' -bench 'BenchmarkStudyRun(Scheduled|Profiled)$$' -benchtime=1x -count=3 . \
		| $(GO) run ./cmd/benchjson > BENCH_prof.json
	@cat BENCH_prof.json
	( $(GO) test -run '^$$' -bench 'BenchmarkStore(Append|Replay)$$' -count=3 ./internal/store/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkStudyRun(Scheduled|StoreBacked)$$' -benchtime=1x -count=3 . ) \
		| $(GO) run ./cmd/benchjson > BENCH_store.json
	@cat BENCH_store.json
	$(GO) test -run '^$$' -bench 'BenchmarkStudyRun(Serial|Sharded[124])$$' -benchtime=1x -count=3 . \
		| $(GO) run ./cmd/benchjson > BENCH_shard.json
	@cat BENCH_shard.json
# The fleet pair runs interleaved in separate processes: back-to-back
# -count=3 in one process lets heap state from one variant bleed into
# the other's timings and bias the on/off ratio.
	for i in 1 2 3; do \
		$(GO) test -run '^$$' -bench 'BenchmarkStudyRunFleetTelemetryOn$$' -benchtime=1x -count=1 .; \
		$(GO) test -run '^$$' -bench 'BenchmarkStudyRunFleetTelemetryOff$$' -benchtime=1x -count=1 .; \
	done | $(GO) run ./cmd/benchjson > BENCH_fleet.json
	@cat BENCH_fleet.json

# lintbudget times the studylint suite — one full-module pass plus each
# analyzer solo over the pre-loaded index — writes BENCH_lint.json, and
# fails if the full pass exceeds its wall-clock budget (2x the PR 5
# five-analyzer baseline of ~4.92s), so the always-on lint gate cannot
# quietly eat the CI budget as analyzers accumulate.
lintbudget:
	$(GO) test -run '^$$' -bench 'BenchmarkLint' -benchtime=1x -count=3 ./internal/lint/ \
		| $(GO) run ./cmd/benchjson -assert-max lint_full_module_seconds=9.84 > BENCH_lint.json
	@cat BENCH_lint.json

# fuzz gives each native fuzz target a short budget; failing inputs land
# in testdata/fuzz/ and then fail `make test` forever after.
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzParse' -fuzztime $(FUZZTIME) ./internal/blocklist/
	$(GO) test -run '^$$' -fuzz 'FuzzClassify' -fuzztime $(FUZZTIME) ./internal/domain/
	$(GO) test -run '^$$' -fuzz 'FuzzSuppression' -fuzztime $(FUZZTIME) ./internal/lint/
	$(GO) test -run '^$$' -fuzz 'FuzzSchemaParse' -fuzztime $(FUZZTIME) ./internal/lint/
	$(GO) test -run '^$$' -fuzz 'FuzzParse' -fuzztime $(FUZZTIME) ./internal/profparse/
	$(GO) test -run '^$$' -fuzz 'FuzzReplay' -fuzztime $(FUZZTIME) ./internal/store/
	$(GO) test -run '^$$' -fuzz 'FuzzShardCodec' -fuzztime $(FUZZTIME) ./internal/shard/

# lint runs studylint, the repo's first-party analyzer suite
# (internal/lint): stdlib-only, no module downloads, so unlike
# staticcheck it is an always-on gate even in offline CI. Exits
# nonzero on any unsuppressed finding. -suppressions also audits every
# //studylint:ignore directive and fails on stale ones (directives that
# no longer suppress anything), so dead ignores cannot accumulate.
lint:
	$(GO) run ./cmd/studylint -suppressions

# staticcheck runs via `go run` so nothing is installed into the module.
# The probe distinguishes "cannot fetch the tool" (offline CI, no module
# proxy — skip with a note) from "tool ran and failed" (version or
# toolchain mismatch — fail the build): only download/connectivity
# errors are skippable, everything else surfaces. Real findings still
# fail the build via the second invocation.
staticcheck:
	@probe=$$($(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version 2>&1); \
	status=$$?; \
	if [ $$status -eq 0 ]; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	elif echo "$$probe" | grep -qiE 'dial tcp|proxyconnect|connection refused|i/o timeout|no such host|TLS handshake|could not download|connection reset|unrecognized import path|server misbehaving|404 Not Found|410 Gone'; then \
		echo "staticcheck: cannot fetch tool (offline?); skipping"; \
	else \
		echo "staticcheck: probe failed (not a fetch error):" >&2; \
		echo "$$probe" >&2; \
		exit $$status; \
	fi

# determinism runs the seeded study twice and requires the two run
# manifests to be identical — the provenance system's core promise.
# studydiff exits nonzero naming the earliest diverging pipeline stage
# if any figure drifted, which fails the build.
determinism:
	rm -rf .provgate
	$(GO) run ./cmd/pornstudy -scale 0.004 -seed 2019 -provenance .provgate/a >/dev/null
	$(GO) run ./cmd/pornstudy -scale 0.004 -seed 2019 -provenance .provgate/b >/dev/null
	$(GO) run ./cmd/studydiff .provgate/a .provgate/b
	rm -rf .provgate

# crashsafety proves the durable store's central claim end to end: a
# run killed by a seeded crash at a store append (exit 137, with a torn
# half-written record on disk) and then resumed against the surviving
# directory must produce a manifest byte-identical to an uninterrupted
# run. studydiff checks semantic identity and cmp the exact bytes.
# Runs fault-free: the injector's burst counters live in the server
# process, so only deterministic runs can promise byte equality.
crashsafety:
	rm -rf .crashgate
	mkdir -p .crashgate
	$(GO) build -o .crashgate/pornstudy ./cmd/pornstudy
	.crashgate/pornstudy -scale 0.004 -seed 2019 -store .crashgate/store-a -provenance .crashgate/a >/dev/null
	@.crashgate/pornstudy -scale 0.004 -seed 2019 -store .crashgate/store-b \
		-kill-after-appends 25 -kill-torn >/dev/null 2>&1; \
	status=$$?; \
	if [ $$status -ne 137 ]; then \
		echo "crashsafety: killed run exited $$status, want 137" >&2; exit 1; \
	fi; \
	echo "crashsafety: run killed at append 25 (exit 137), resuming"
	.crashgate/pornstudy -scale 0.004 -seed 2019 -store .crashgate/store-b -resume -provenance .crashgate/b >/dev/null
	$(GO) run ./cmd/studydiff .crashgate/a .crashgate/b
	cmp .crashgate/a/manifest.json .crashgate/b/manifest.json
	rm -rf .crashgate

# shardci proves shard equivalence end to end with real process
# isolation: a serial run and a coordinator + 3 worker processes over
# loopback must produce byte-identical manifest.json files — the
# workers rebuild the same deterministic ecosystem from (seed, config)
# and return each visit in its durable serialized form, so the merge
# reproduces the serial crawl exactly. studydiff checks semantic
# identity (including the shards.json sidecar rules) and cmp the bytes.
# fleetcheck scrapes the coordinator's /fleet, /metrics and /trace
# while the run is live and fails the gate if any registered worker is
# missing from the federated metrics, under-accounted in visits, or
# absent from the merged single-trace-ID fleet trace.
shardci:
	rm -rf .shardgate
	mkdir -p .shardgate
	$(GO) build -o .shardgate/pornstudy ./cmd/pornstudy
	$(GO) build -o .shardgate/fleetcheck ./cmd/fleetcheck
	.shardgate/pornstudy -scale 0.004 -seed 2019 -provenance .shardgate/serial >/dev/null
	@set -e; \
	.shardgate/pornstudy -scale 0.004 -seed 2019 -shards 4 \
		-coordinator-addr 127.0.0.1:19733 -shard-min-workers 3 \
		-metrics-addr 127.0.0.1:19734 \
		-provenance .shardgate/sharded >/dev/null & coord=$$!; \
	.shardgate/fleetcheck -addr 127.0.0.1:19734 -min-workers 3 & check=$$!; \
	.shardgate/pornstudy -worker -coordinator 127.0.0.1:19733 \
		-scale 0.004 -seed 2019 >/dev/null 2>&1 & w1=$$!; \
	.shardgate/pornstudy -worker -coordinator 127.0.0.1:19733 \
		-scale 0.004 -seed 2019 >/dev/null 2>&1 & w2=$$!; \
	.shardgate/pornstudy -worker -coordinator 127.0.0.1:19733 \
		-scale 0.004 -seed 2019 >/dev/null 2>&1 & w3=$$!; \
	wait $$coord; st=$$?; \
	wait $$w1 $$w2 $$w3 2>/dev/null || true; \
	if [ $$st -ne 0 ]; then echo "shardci: coordinator exited $$st" >&2; exit 1; fi; \
	wait $$check; chk=$$?; \
	if [ $$chk -ne 0 ]; then echo "shardci: fleetcheck exited $$chk" >&2; exit 1; fi; \
	echo "shardci: coordinator + 3 workers completed, fleet observability verified"
	$(GO) run ./cmd/studydiff .shardgate/serial .shardgate/sharded
	cmp .shardgate/serial/manifest.json .shardgate/sharded/manifest.json
	rm -rf .shardgate

# profile runs the seeded study under a CPU profile and requires at
# least 90% of samples to be attributable to a named pipeline stage
# (measured headroom: 97-99% at this scale). A drop below the floor
# means a new goroutine family is running outside the stage labels.
profile:
	$(GO) run ./cmd/studyprof -scale 0.004 -seed 2019 -top 3 -min-attrib 0.9

# ci is the full gate: vet, studylint with the suppression audit
# (always-on, offline-safe), the test suite, the race detector, a short
# fuzz pass, the run-manifest determinism gate, the kill/resume
# crash-safety gate, the coordinator/worker shard-equivalence gate, the
# profile-attribution gate, the lint wall-clock budget, and staticcheck
# when the environment can reach it.
ci: vet lint test race fuzz determinism crashsafety shardci profile lintbudget staticcheck
