GO ?= go

.PHONY: all build vet test race bench

all: vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...
