GO ?= go
STATICCHECK_VERSION ?= 2023.1.7

FUZZTIME ?= 10s

.PHONY: all build vet test race bench bench-json fuzz staticcheck determinism ci

all: vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-json times the full pipeline serial vs scheduled and writes
# BENCH_pipeline.json: mean ns/op per path plus the speedup ratio (>1
# means the DAG scheduler is faster; expect ~1.0 on a single core).
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkStudyRun(Serial|Scheduled)$$' -benchtime=1x -count=3 . \
		| $(GO) run ./cmd/benchjson > BENCH_pipeline.json
	@cat BENCH_pipeline.json
	$(GO) test -run '^$$' -bench 'BenchmarkFlightVisit|BenchmarkManifestWrite|BenchmarkMultisetHash|BenchmarkDiff' \
		-count=3 ./internal/obs/ ./internal/provenance/ \
		| $(GO) run ./cmd/benchjson > BENCH_obs.json
	@cat BENCH_obs.json

# fuzz gives each native fuzz target a short budget; failing inputs land
# in testdata/fuzz/ and then fail `make test` forever after.
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzParse' -fuzztime $(FUZZTIME) ./internal/blocklist/
	$(GO) test -run '^$$' -fuzz 'FuzzClassify' -fuzztime $(FUZZTIME) ./internal/domain/

# staticcheck runs via `go run` so nothing is installed into the module;
# if the tool cannot be fetched (offline CI, no module proxy) the target
# notes the skip and succeeds — real findings still fail the build.
staticcheck:
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "staticcheck: tool unavailable (offline?); skipping"; \
	fi

# determinism runs the seeded study twice and requires the two run
# manifests to be identical — the provenance system's core promise.
# studydiff exits nonzero naming the earliest diverging pipeline stage
# if any figure drifted, which fails the build.
determinism:
	rm -rf .provgate
	$(GO) run ./cmd/pornstudy -scale 0.004 -seed 2019 -provenance .provgate/a >/dev/null
	$(GO) run ./cmd/pornstudy -scale 0.004 -seed 2019 -provenance .provgate/b >/dev/null
	$(GO) run ./cmd/studydiff .provgate/a .provgate/b
	rm -rf .provgate

# ci is the full gate: vet, the test suite, the race detector, a short
# fuzz pass, the run-manifest determinism gate, and staticcheck when the
# environment can reach it.
ci: vet test race fuzz determinism staticcheck
