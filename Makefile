GO ?= go
STATICCHECK_VERSION ?= 2023.1.7

.PHONY: all build vet test race bench staticcheck ci

all: vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# staticcheck runs via `go run` so nothing is installed into the module;
# if the tool cannot be fetched (offline CI, no module proxy) the target
# notes the skip and succeeds — real findings still fail the build.
staticcheck:
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "staticcheck: tool unavailable (offline?); skipping"; \
	fi

# ci is the full gate: vet, the test suite, the race detector, and
# staticcheck when the environment can reach it.
ci: vet test race staticcheck
