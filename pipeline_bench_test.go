// Pipeline-level benchmarks: the whole study end to end, serial vs
// scheduled. `make bench-json` runs exactly these two and folds the
// timings into BENCH_pipeline.json (ns/op per path plus the speedup
// ratio). The scheduled path's advantage scales with cores — on a
// single-CPU machine the two are expected to tie, since every stage is
// CPU-bound loopback work.
package pornweb_test

import (
	"context"
	"fmt"
	"io"
	"runtime/pprof"
	"testing"
	"time"

	"pornweb/internal/core"
	"pornweb/internal/resilience"
	"pornweb/internal/shard"
	"pornweb/internal/webgen"
)

// pipelineBenchScale mirrors the EXPERIMENTS.md reference config at a
// size where one full run takes a few seconds.
const pipelineBenchScale = 0.01

func benchStudy(b *testing.B, serial bool) {
	b.Helper()
	st, err := core.NewStudy(core.Config{
		Params:  webgen.Params{Seed: 2019, Scale: pipelineBenchScale},
		Workers: 8,
		Serial:  serial,
		Timeout: 20 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStudyRunSerial(b *testing.B)    { benchStudy(b, true) }
func BenchmarkStudyRunScheduled(b *testing.B) { benchStudy(b, false) }

// benchShardedStudy is the pipeline with every crawl stage partitioned
// into 8 shards dispatched across an in-process fleet of the given
// size. The fleet size — not the shard count — is the parallelism knob
// (each wave deals one shard per live worker, and a worker visits its
// shard sequentially), so the workers-1/2/4 series in BENCH_shard.json
// shows how crawl wall-clock scales with fleet size while the merged
// results stay byte-identical to serial.
func benchShardedStudy(b *testing.B, workers int) {
	b.Helper()
	st, err := core.NewStudy(core.Config{
		Params:       webgen.Params{Seed: 2019, Scale: pipelineBenchScale},
		Workers:      8,
		Timeout:      20 * time.Second,
		Shards:       8,
		ShardWorkers: workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStudyRunSharded1(b *testing.B) { benchShardedStudy(b, 1) }
func BenchmarkStudyRunSharded2(b *testing.B) { benchShardedStudy(b, 2) }
func BenchmarkStudyRunSharded4(b *testing.B) { benchShardedStudy(b, 4) }

// benchFleetStudy is the pipeline sharded across a loopback fleet of
// three worker processes-in-miniature (real shard.Servers behind real
// HTTP, sharing this study as Runner and observability plane), with
// the fleet telemetry return path on or off. The on/off pair prices
// what every shard result pays to carry metric deltas, sampled spans
// and flight events back to the coordinator (benchjson's
// fleet_telemetry_on_over_off ratio, BENCH_fleet.json); the crawl
// results are byte-identical either way, so the ratio is pure
// observability overhead.
func benchFleetStudy(b *testing.B, telemetryOff bool) {
	b.Helper()
	st, err := core.NewStudy(core.Config{
		Params:            webgen.Params{Seed: 2019, Scale: pipelineBenchScale},
		Workers:           8,
		Timeout:           20 * time.Second,
		Shards:            8,
		CoordinatorAddr:   "127.0.0.1:0",
		ShardMinWorkers:   3,
		FleetTelemetryOff: telemetryOff,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	ctrl := resilience.NewController(resilience.Policy{
		MaxAttempts: 5, Seed: 2019,
		BaseDelay: time.Millisecond, MaxDelay: 50 * time.Millisecond,
	})
	for i := 0; i < 3; i++ {
		// Each worker rebuilds the same deterministic study from (seed,
		// config) with its own registry, tracer and flight recorder —
		// exactly what a `pornstudy -worker` process does — so the deltas
		// it ships are real worker-local telemetry.
		wst, err := core.NewStudy(core.Config{
			Params:  webgen.Params{Seed: 2019, Scale: pipelineBenchScale},
			Workers: 8,
			Timeout: 20 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer wst.Close()
		srv := &shard.Server{
			Label:       fmt.Sprintf("bench%d", i),
			Runner:      wst,
			Fingerprint: wst.Fingerprint(),
			Seed:        2019,
			Registry:    wst.Metrics,
			Tracer:      wst.Tracer,
			Flight:      wst.Flight,
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		if err := shard.Register(context.Background(), nil, ctrl,
			st.Coordinator().Addr(), shard.Registration{Name: srv.Label, Addr: srv.Addr()}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStudyRunFleetTelemetryOn(b *testing.B)  { benchFleetStudy(b, false) }
func BenchmarkStudyRunFleetTelemetryOff(b *testing.B) { benchFleetStudy(b, true) }

// BenchmarkStudyRunStoreBacked is the scheduled pipeline with the
// durable visit store attached: every completed visit is serialized,
// CRC-framed, appended and batch-fsync'd as the crawl runs. Compared
// against BenchmarkStudyRunScheduled (benchjson's
// store_overhead_storebacked_over_scheduled ratio, BENCH_store.json)
// it prices crash-resumability per study run. Each iteration gets a
// fresh store directory — reusing one would let the second run resume
// from the first and measure replay instead of persistence.
func BenchmarkStudyRunStoreBacked(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := core.NewStudy(core.Config{
			Params:   webgen.Params{Seed: 2019, Scale: pipelineBenchScale},
			Workers:  8,
			Timeout:  20 * time.Second,
			StoreDir: b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := st.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		st.Close()
		b.StartTimer()
	}
}

// BenchmarkStudyRunProfiled is the scheduled pipeline with a CPU
// profile attached, exactly as cmd/studyprof runs it. Compared against
// BenchmarkStudyRunScheduled (benchjson's
// profile_overhead_profiled_over_scheduled ratio, BENCH_prof.json) it
// prices the continuous-profiling harness: how much the 100 Hz sampler
// plus label bookkeeping costs relative to an uninstrumented run.
func BenchmarkStudyRunProfiled(b *testing.B) {
	st, err := core.NewStudy(core.Config{
		Params:  webgen.Params{Seed: 2019, Scale: pipelineBenchScale},
		Workers: 8,
		Timeout: 20 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pprof.StartCPUProfile(io.Discard); err != nil {
			b.Fatal(err)
		}
		_, err := st.Run(context.Background())
		pprof.StopCPUProfile()
		if err != nil {
			b.Fatal(err)
		}
	}
}
