package pornweb_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"pornweb"
	"pornweb/internal/crawler"
)

// TestFacade exercises the public API end to end at a tiny scale.
func TestFacade(t *testing.T) {
	eco := pornweb.Generate(pornweb.Params{Seed: 21, Scale: 0.01})
	if len(eco.PornSites) == 0 || len(eco.Services) == 0 {
		t.Fatal("empty ecosystem")
	}
	srv, err := pornweb.Serve(eco)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sess, err := crawler.NewSession(crawler.Config{
		DialContext: srv.DialContext,
		RootCAs:     srv.CertPool(),
		Timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var target *pornweb.Site
	for _, s := range eco.PornSites {
		if !s.Flaky && !s.Unresponsive {
			target = s
			break
		}
	}
	res, _, err := sess.FetchPage(context.Background(), target.Host, "/")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Body, "<html") {
		t.Error("landing page not served")
	}
}

// TestFacadeStudy runs the full study through the facade.
func TestFacadeStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full study in -short mode")
	}
	st, err := pornweb.NewStudy(pornweb.StudyConfig{
		Params:  pornweb.Params{Seed: 21, Scale: 0.01},
		Workers: 8,
		Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	res, err := st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	pornweb.Report(&sb, res)
	if !strings.Contains(sb.String(), "Table 2") {
		t.Error("report missing Table 2")
	}
	if pornweb.DefaultParams().Scale != 1.0 {
		t.Error("DefaultParams should be paper scale")
	}
}
