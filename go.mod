module pornweb

go 1.22
