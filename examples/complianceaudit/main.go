// Compliance audit: reproduce the Section 7 workflow for the most popular
// sites — detect cookie-consent banners from an EU and a US vantage point,
// click through age-verification interstitials, harvest privacy policies
// and check what they disclose against the GDPR's expectations.
//
//	go run ./examples/complianceaudit
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pornweb"
	"pornweb/internal/browser"
	"pornweb/internal/consent"
	"pornweb/internal/crawler"
)

func main() {
	eco := pornweb.Generate(pornweb.Params{Seed: 9, Scale: 0.03})
	srv, err := pornweb.Serve(eco)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	mkBrowser := func(country string) *browser.Browser {
		sess, err := crawler.NewSession(crawler.Config{
			DialContext: srv.DialContext,
			RootCAs:     srv.CertPool(),
			Country:     country,
			Phase:       "policy",
			Timeout:     15 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		return browser.New(sess)
	}
	eu, us := mkBrowser("ES"), mkBrowser("US")

	// The 20 most popular crawlable porn sites.
	var targets []string
	for _, s := range eco.PornSites {
		if !s.Flaky && !s.Unresponsive && s.BaseRank <= 100000 {
			targets = append(targets, s.Host)
		}
		if len(targets) == 20 {
			break
		}
	}

	ctx := context.Background()
	var gated, bypassed, policies, gdpr, bannersEU, bannersUS int
	for _, host := range targets {
		ivEU := eu.VisitInteractive(ctx, host)
		ivUS := us.VisitInteractive(ctx, host)
		if !ivEU.OK {
			fmt.Printf("%-28s unreachable\n", host)
			continue
		}
		status := "no gate"
		if ivEU.GateDetected {
			gated++
			if ivEU.GateBypassed {
				bypassed++
				status = "gate bypassed (a child could too)"
			} else {
				status = "gate resists automation"
			}
		}
		banner := "no banner"
		if ivEU.HasBanner {
			bannersEU++
			banner = "EU banner: " + ivEU.Banner.String()
		}
		if ivUS.OK && ivUS.HasBanner {
			bannersUS++
		}
		policy := "no policy"
		if ivEU.PolicyFound {
			policies++
			pa := consent.AnalyzePolicy(ivEU.PolicyText)
			policy = fmt.Sprintf("policy %d letters", pa.Letters)
			if pa.MentionsGDPR {
				gdpr++
				policy += ", cites GDPR"
			}
			if !pa.DisclosesThirdParty {
				policy += ", silent on third parties"
			}
		}
		fmt.Printf("%-28s %-34s %-28s %s\n", host, status, banner, policy)
	}

	fmt.Printf("\nsummary over %d popular sites:\n", len(targets))
	fmt.Printf("  age gates: %d (%d bypassed by the crawler)\n", gated, bypassed)
	fmt.Printf("  cookie banners: %d from the EU, %d from the US\n", bannersEU, bannersUS)
	fmt.Printf("  privacy policies: %d (%d citing the GDPR)\n", policies, gdpr)
}
