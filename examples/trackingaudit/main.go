// Tracking audit: deep-dive a handful of sites the way Section 5 of the
// paper does — load each landing page with the instrumented browser, then
// report exactly which trackers set identifier cookies, which cookies
// embed the client IP, which scripts fingerprint the canvas, and which
// cookie values were synchronized to other organizations.
//
//	go run ./examples/trackingaudit
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pornweb"
	"pornweb/internal/browser"
	"pornweb/internal/cookies"
	"pornweb/internal/crawler"
	"pornweb/internal/fingerprint"
)

func main() {
	eco := pornweb.Generate(pornweb.Params{Seed: 77, Scale: 0.03})
	srv, err := pornweb.Serve(eco)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	sess, err := crawler.NewSession(crawler.Config{
		DialContext: srv.DialContext,
		RootCAs:     srv.CertPool(),
		Country:     "ES",
		Timeout:     15 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	b := browser.New(sess)

	// Audit the five most tracker-laden crawlable sites.
	var targets []*pornweb.Site
	for _, s := range eco.PornSites {
		if !s.Flaky && !s.Unresponsive && len(s.Services) >= 5 {
			targets = append(targets, s)
		}
		if len(targets) == 5 {
			break
		}
	}

	ctx := context.Background()
	for _, site := range targets {
		pv := b.Visit(ctx, site.Host)
		if !pv.OK {
			fmt.Printf("%s: unreachable (%s)\n", site.Host, pv.Err)
			continue
		}
		fmt.Printf("\n=== %s (https=%v) ===\n", site.Host, pv.HTTPS)
		for _, tr := range pv.Traces {
			v := fingerprint.ClassifyTrace(tr.Trace)
			if v.Any() {
				src := tr.URL
				if src == "" {
					src = "(inline first-party script)"
				}
				fmt.Printf("  fingerprinting: %s\n", src)
				for _, reason := range v.Reasons {
					fmt.Printf("      %s\n", reason)
				}
			}
		}
	}

	// Session-wide cookie analysis (one browser session, like the paper).
	log0 := sess.Log()
	obs := cookies.Collect(log0, nil)
	var idCookies, withIP int
	for _, o := range obs {
		if !o.IsIDCandidate() {
			continue
		}
		idCookies++
		if cookies.DecodeValue(o.Value, "127.0.0.1").HasClientIP {
			withIP++
			fmt.Printf("\nIP-embedding cookie: %s from %s (on %s)\n", o.Name, o.Host, o.SiteHost)
		}
	}
	fmt.Printf("\nsession totals: %d cookie observations, %d potential identifiers, %d embedding the client IP\n",
		len(obs), idCookies, withIP)

	events := cookies.DetectSyncs(log0)
	g := cookies.BuildGraph(events)
	fmt.Printf("cookie syncing: %d exchanges across %d domain pairs (%d origins -> %d destinations)\n",
		len(events), len(g.Pairs), len(g.Origins), len(g.Dests))
	for _, e := range g.EdgesWithAtLeast(2) {
		fmt.Printf("  %-26s -> %-26s x%d\n", e.Origin, e.Dest, e.Count)
	}
}
