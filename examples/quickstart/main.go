// Quickstart: generate a small synthetic porn-web ecosystem, run the full
// IMC'19 measurement study against it, and print the headline findings.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"pornweb"
	"pornweb/internal/report"
)

func main() {
	st, err := pornweb.NewStudy(pornweb.StudyConfig{
		Params: pornweb.Params{Seed: 42, Scale: 0.02},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	res, err := st.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Quickstart — headline findings")
	fmt.Printf("porn corpus: %d sites, reference corpus: %d sites\n",
		len(res.Corpus.Porn), len(res.Corpus.Reference))
	fmt.Printf("sites with third-party ID cookies: %.0f%%  (paper: 72%%)\n",
		100*res.CookieCensus.SitesWithTPIDFrac)
	fmt.Printf("sites loading canvas fingerprinting: %.1f%%  (paper: ~5%%)\n",
		100*res.Fingerprinting.CanvasSiteShare)
	fmt.Printf("canvas scripts invisible to EasyList/EasyPrivacy: %.0f%%  (paper: 91%%)\n",
		100*res.Fingerprinting.UnlistedCanvasShare)
	fmt.Printf("sites with an accessible privacy policy: %.0f%%  (paper: 16%%)\n",
		100*res.Policies.PolicyShare)
	fmt.Printf("sites with a cookie banner (EU vantage): %.1f%%  (paper: 4.4%%)\n",
		100*res.Table8ES.Share(res.Table8ES.Total()))

	// The three comparison tables the paper leads with.
	report.Table2(os.Stdout, res.Table2)
	report.Table4(os.Stdout, res.Table4, 5)
	report.Table8(os.Stdout, res.Table8ES, res.Table8US)
}
