// Geo study: reproduce the Section 6 question — do pornographic websites
// behave differently depending on where the visitor connects from? Crawl
// the same site set from all six vantage points and compare reachability,
// third-party exposure and regional trackers.
//
//	go run ./examples/geostudy
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"pornweb"
	"pornweb/internal/browser"
	"pornweb/internal/crawler"
	"pornweb/internal/domain"
	"pornweb/internal/vantage"
)

func main() {
	eco := pornweb.Generate(pornweb.Params{Seed: 31, Scale: 0.03})
	srv, err := pornweb.Serve(eco)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	sessions, err := vantage.Sessions(crawler.Config{
		DialContext: srv.DialContext,
		RootCAs:     srv.CertPool(),
		Timeout:     15 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pre-flight: verify no vantage path rewrites content (the paper's
	// VPN-integrity check).
	check, err := vantage.VerifyNoManipulation(context.Background(), sessions, "http://gstatic.com/css/lib.css")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vantage integrity check on %s: consistent=%v\n\n", check.ReferenceURL, check.Consistent)

	var targets []string
	for _, s := range eco.PornSites {
		if !s.Unresponsive && len(targets) < 40 {
			targets = append(targets, s.Host)
		}
	}

	type row struct {
		country    string
		reached    int
		thirdParty map[string]bool
	}
	rows := map[string]*row{}
	ctx := context.Background()
	for _, country := range vantage.Countries() {
		b := browser.New(sessions[country])
		r := &row{country: country, thirdParty: map[string]bool{}}
		for _, host := range targets {
			pv := b.Visit(ctx, host)
			if pv.OK {
				r.reached++
			}
		}
		for _, rec := range sessions[country].Log() {
			if rec.Status == 0 || rec.Host == "" || rec.SiteHost == "" {
				continue
			}
			if domain.Base(rec.Host) != domain.Base(rec.SiteHost) {
				r.thirdParty[rec.Host] = true
			}
		}
		rows[country] = r
	}

	seenIn := map[string]int{}
	for _, r := range rows {
		for h := range r.thirdParty {
			seenIn[h]++
		}
	}
	fmt.Printf("%-8s %10s %14s %16s\n", "country", "reached", "third-party", "country-unique")
	for _, country := range vantage.Countries() {
		r := rows[country]
		unique := 0
		var uniqueHosts []string
		for h := range r.thirdParty {
			if seenIn[h] == 1 {
				unique++
				uniqueHosts = append(uniqueHosts, h)
			}
		}
		sort.Strings(uniqueHosts)
		fmt.Printf("%-8s %10d %14d %16d\n", country, r.reached, len(r.thirdParty), unique)
		for i, h := range uniqueHosts {
			if i >= 3 {
				fmt.Printf("           ... and %d more\n", unique-3)
				break
			}
			fmt.Printf("           only here: %s\n", h)
		}
	}
}
