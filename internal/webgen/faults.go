package webgen

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// hostKey normalizes a hostname the way the router does.
func hostKey(h string) string { return strings.ToLower(h) }

// FaultKind is one class of injected chaos a virtual host can exhibit.
type FaultKind int

// Fault kinds. Each enabled host is assigned at most one kind,
// deterministically from the generation seed, so a fixed-seed ecosystem
// always breaks in the same places.
const (
	FaultNone         FaultKind = iota
	FaultServerError            // transient 503 burst (with optional Retry-After)
	FaultDrop                   // connection dropped before any response
	FaultTruncate               // body cut short of its declared Content-Length
	FaultReset                  // mid-stream TCP reset after partial body
	FaultRedirectLoop           // 302 cycle between two paths
	FaultLatency                // slow-loris: response delayed by Latency
)

var faultKindNames = [...]string{"none", "server-error", "drop", "truncate", "reset", "redirect-loop", "latency"}

func (k FaultKind) String() string {
	if k < 0 || int(k) >= len(faultKindNames) {
		return "unknown"
	}
	return faultKindNames[k]
}

// Fault is one injected fault decision for one request.
type Fault struct {
	Kind FaultKind
	// Delay is the injected latency for FaultLatency.
	Delay time.Duration
	// RetryAfter, when non-zero, is the hint a FaultServerError 503
	// carries in its Retry-After header.
	RetryAfter time.Duration
}

// FaultProfile configures the chaos model. The zero value disables
// injection entirely, so existing ecosystems behave exactly as before.
// Fractions partition the host population: a host draws one uniform
// value from the seed and falls into the first band it fits, so the
// fault classes are disjoint and their populations scale with the
// corpus.
type FaultProfile struct {
	// Enabled turns injection on.
	Enabled bool

	// ServerErrorFrac is the fraction of hosts answering a 503 burst.
	ServerErrorFrac float64
	// DropFrac is the fraction of hosts whose connections drop — but
	// only from a per-host subset of vantage countries, modeling the
	// intermittent geographic unreachability the paper hit (Section 6).
	DropFrac float64
	// TruncateFrac is the fraction of hosts serving truncated bodies.
	TruncateFrac float64
	// ResetFrac is the fraction of hosts resetting mid-stream.
	ResetFrac float64
	// RedirectLoopFrac is the fraction of hosts caught in a 302 cycle.
	RedirectLoopFrac float64
	// LatencyFrac is the fraction of hosts answering after Latency.
	LatencyFrac float64
	// Latency is the injected delay for latency hosts (default 100ms).
	Latency time.Duration

	// Burst is how many attempts per (host, country) a transient fault
	// survives before the host recovers (default 2); latency and
	// redirect-loop hosts are permanently slow/looping instead.
	Burst int
	// RetryAfter, when non-zero, is advertised by 503 responses.
	RetryAfter time.Duration

	// Geo451, when set, makes geo-blocked sites answer HTTP 451
	// (Unavailable For Legal Reasons) like modern CDN blocks, instead of
	// silently dropping the connection — which lets the crawler tell
	// censorship apart from dead hosts.
	Geo451 bool
}

// DefaultFaultProfile is a moderate chaos mix: roughly a fifth of hosts
// transiently faulty, all recoverable within Burst retries.
func DefaultFaultProfile() FaultProfile {
	return FaultProfile{
		Enabled:          true,
		ServerErrorFrac:  0.08,
		DropFrac:         0.05,
		TruncateFrac:     0.03,
		ResetFrac:        0.03,
		RedirectLoopFrac: 0.01,
		LatencyFrac:      0.03,
		Latency:          25 * time.Millisecond,
		Burst:            2,
	}
}

// faultInjector assigns fault kinds to hosts and tracks burst
// consumption per (kind, host, country). Assignment is pure (seeded
// hash); only the attempt counters are stateful.
type faultInjector struct {
	prof FaultProfile
	seed uint64

	mu       sync.Mutex
	attempts map[string]int
}

func newFaultInjector(p Params) *faultInjector {
	prof := p.Faults
	if prof.Burst <= 0 {
		prof.Burst = 2
	}
	if prof.Latency <= 0 {
		prof.Latency = 100 * time.Millisecond
	}
	return &faultInjector{prof: prof, seed: p.Seed, attempts: map[string]int{}}
}

// kindFor is the static fault assignment for a host: one uniform draw
// against the profile's (disjoint) fraction bands.
func (fi *faultInjector) kindFor(host string) FaultKind {
	if !fi.prof.Enabled {
		return FaultNone
	}
	u := float64(fnvHash(fmt.Sprintf("fault|%d|%s", fi.seed, host))%100000) / 100000
	for _, band := range []struct {
		frac float64
		kind FaultKind
	}{
		{fi.prof.ServerErrorFrac, FaultServerError},
		{fi.prof.DropFrac, FaultDrop},
		{fi.prof.TruncateFrac, FaultTruncate},
		{fi.prof.ResetFrac, FaultReset},
		{fi.prof.RedirectLoopFrac, FaultRedirectLoop},
		{fi.prof.LatencyFrac, FaultLatency},
	} {
		if u < band.frac {
			return band.kind
		}
		u -= band.frac
	}
	return FaultNone
}

// dropsFrom reports whether a drop-faulted host drops connections from
// this country (roughly half the vantages per host, hash-selected).
func (fi *faultInjector) dropsFrom(host, country string) bool {
	return fnvHash("dropgeo|"+host+"|"+country)%2 == 0
}

// next decides the fault (if any) for one incoming request. Transient
// kinds consume one unit of the per-(host,country) burst and return
// FaultNone once the burst is exhausted — the host has "recovered", so
// a retrying client wins where a single-shot one loses. Sanitization
// never sees faults: the corpus must compile identically with and
// without chaos.
func (fi *faultInjector) next(host, country string, phase Phase) Fault {
	if !fi.prof.Enabled || phase == PhaseSanitize {
		return Fault{}
	}
	kind := fi.kindFor(host)
	switch kind {
	case FaultNone:
		return Fault{}
	case FaultLatency:
		return Fault{Kind: kind, Delay: fi.prof.Latency}
	case FaultRedirectLoop:
		return Fault{Kind: kind}
	case FaultDrop:
		if !fi.dropsFrom(host, country) {
			return Fault{}
		}
	}
	if !fi.consume(fmt.Sprintf("%d|%s|%s", kind, host, country)) {
		return Fault{}
	}
	f := Fault{Kind: kind}
	if kind == FaultServerError {
		f.RetryAfter = fi.prof.RetryAfter
	}
	return f
}

// consume burns one burst unit under key, reporting whether the fault
// still fires.
func (fi *faultInjector) consume(key string) bool {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	fi.attempts[key]++
	return fi.attempts[key] <= fi.prof.Burst
}

// FaultFor decides the fault for one request reaching host from country
// in the given phase. The webserver calls this before routing to
// Respond; it is safe for concurrent use.
func (e *Ecosystem) FaultFor(host, country string, phase Phase) Fault {
	return e.faults.next(hostKey(host), country, phase)
}

// FaultKindFor exposes the static fault assignment of a host — the
// ground truth tests compare crawl outcomes against.
func (e *Ecosystem) FaultKindFor(host string) FaultKind {
	return e.faults.kindFor(hostKey(host))
}

// FaultsEnabled reports whether the ecosystem injects chaos at all. A
// zero Ecosystem (not built by Generate) injects nothing.
func (e *Ecosystem) FaultsEnabled() bool { return e.faults != nil && e.faults.prof.Enabled }

// TransientFault reports whether the kind recovers after the burst (so
// a retrying crawler should eventually reach the host).
func (k FaultKind) TransientFault() bool {
	switch k {
	case FaultServerError, FaultDrop, FaultTruncate, FaultReset:
		return true
	default:
		return false
	}
}
