package webgen

import (
	"net/url"
	"testing"
	"time"
)

func faultyParams(seed uint64) Params {
	return Params{Seed: seed, Scale: 0.02, Faults: DefaultFaultProfile()}
}

func TestFaultAssignmentDeterministic(t *testing.T) {
	a := Generate(faultyParams(7))
	b := Generate(faultyParams(7))
	for _, h := range a.AllHosts() {
		if a.FaultKindFor(h) != b.FaultKindFor(h) {
			t.Fatalf("fault kind for %s differs across identical seeds", h)
		}
	}
	// A different seed must shuffle the assignment somewhere.
	c := Generate(faultyParams(8))
	same := true
	for _, h := range a.AllHosts() {
		if _, ok := c.SiteByHost[h]; !ok {
			continue
		}
		if a.FaultKindFor(h) != c.FaultKindFor(h) {
			same = false
			break
		}
	}
	if same {
		t.Error("fault assignment identical across different seeds")
	}
}

func TestFaultKindsAllPresent(t *testing.T) {
	e := Generate(faultyParams(7))
	counts := map[FaultKind]int{}
	hosts := e.AllHosts()
	for _, h := range hosts {
		counts[e.FaultKindFor(h)]++
	}
	for _, k := range []FaultKind{FaultServerError, FaultDrop, FaultTruncate,
		FaultReset, FaultRedirectLoop, FaultLatency} {
		if counts[k] == 0 {
			t.Errorf("no host assigned fault kind %s (counts=%v over %d hosts)", k, counts, len(hosts))
		}
	}
	if counts[FaultNone] < len(hosts)/2 {
		t.Errorf("most hosts should stay healthy: %v", counts)
	}
}

func TestFaultsDisabledByDefault(t *testing.T) {
	e := Generate(Params{Seed: 7, Scale: 0.02})
	if e.FaultsEnabled() {
		t.Fatal("zero-value profile must disable injection")
	}
	for _, h := range e.AllHosts() {
		if k := e.FaultKindFor(h); k != FaultNone {
			t.Fatalf("disabled injector assigned %s to %s", k, h)
		}
		if f := e.FaultFor(h, "ES", PhaseCrawl); f.Kind != FaultNone {
			t.Fatalf("disabled injector fired %s for %s", f.Kind, h)
		}
	}
}

func TestFaultsGatedOffDuringSanitize(t *testing.T) {
	e := Generate(faultyParams(7))
	for _, h := range e.AllHosts() {
		if f := e.FaultFor(h, "ES", PhaseSanitize); f.Kind != FaultNone {
			t.Fatalf("sanitize phase saw fault %s on %s", f.Kind, h)
		}
	}
}

func TestTransientFaultBurstRecovers(t *testing.T) {
	e := Generate(faultyParams(7))
	var host string
	for _, h := range e.AllHosts() {
		if e.FaultKindFor(h) == FaultServerError {
			host = h
			break
		}
	}
	if host == "" {
		t.Skip("no server-error host at this scale")
	}
	burst := DefaultFaultProfile().Burst
	for i := 0; i < burst; i++ {
		if f := e.FaultFor(host, "ES", PhaseCrawl); f.Kind != FaultServerError {
			t.Fatalf("attempt %d: fault = %s, want server-error", i+1, f.Kind)
		}
	}
	if f := e.FaultFor(host, "ES", PhaseCrawl); f.Kind != FaultNone {
		t.Fatalf("host did not recover after burst: %s", f.Kind)
	}
	// The burst is per country: a fresh vantage sees the fault anew.
	if f := e.FaultFor(host, "RU", PhaseCrawl); f.Kind != FaultServerError {
		t.Fatalf("fresh country should see the fault, got %s", f.Kind)
	}
}

func TestDropFaultIsPerCountry(t *testing.T) {
	e := Generate(faultyParams(7))
	found := false
	for _, h := range e.AllHosts() {
		if e.FaultKindFor(h) != FaultDrop {
			continue
		}
		var drops, passes int
		for _, c := range Countries {
			if e.faults.dropsFrom(hostKey(h), c) {
				drops++
			} else {
				passes++
			}
		}
		if drops > 0 && passes > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no drop host is intermittent across countries")
	}
}

func TestGeo451Profile(t *testing.T) {
	p := faultyParams(7)
	p.Faults.Geo451 = true
	e := Generate(p)
	var blocked *Site
	for _, s := range e.PornSites {
		if len(s.BlockedIn) > 0 && !s.Unresponsive && !s.Flaky {
			blocked = s
			break
		}
	}
	if blocked == nil {
		t.Skip("no geo-blocked site at this scale")
	}
	var country string
	for c := range blocked.BlockedIn {
		country = c
	}
	resp := e.Respond(Request{Host: blocked.Host, Path: "/", Country: country, Phase: PhaseCrawl, Query: url.Values{}})
	if resp.Status != 451 {
		t.Fatalf("blocked site with Geo451 answered %d, want 451", resp.Status)
	}
	// Without the profile bit the site silently refuses, as before.
	plain := Generate(Params{Seed: 7, Scale: 0.02})
	resp = plain.Respond(Request{Host: blocked.Host, Path: "/", Country: country, Phase: PhaseCrawl, Query: url.Values{}})
	if resp.Status != 0 {
		t.Fatalf("blocked site without Geo451 answered %d, want refusal", resp.Status)
	}
}

func TestLatencyFaultCarriesDelay(t *testing.T) {
	p := faultyParams(7)
	p.Faults.Latency = 42 * time.Millisecond
	e := Generate(p)
	for _, h := range e.AllHosts() {
		if e.FaultKindFor(h) != FaultLatency {
			continue
		}
		f := e.FaultFor(h, "ES", PhaseCrawl)
		if f.Kind != FaultLatency || f.Delay != 42*time.Millisecond {
			t.Fatalf("latency fault = %+v", f)
		}
		// Latency hosts stay slow: no burst consumption.
		if f2 := e.FaultFor(h, "ES", PhaseCrawl); f2.Kind != FaultLatency {
			t.Fatal("latency fault should persist")
		}
		return
	}
	t.Skip("no latency host at this scale")
}
