// Package webgen generates the synthetic web ecosystem the study crawls.
//
// The paper measured the live 2018/2019 web: 6,843 pornographic websites and
// a reference set of 9,688 popular regular websites, plus the thousands of
// third-party services embedded in them. That population is not available
// offline, so webgen builds a deterministic, seeded replica whose *joint
// distributions* are calibrated to the paper's measurements: which services
// are embedded where, who sets identifier cookies, who synchronizes cookies
// with whom, who fingerprints, who supports HTTPS, who shows consent
// banners, which sites gate on age, how policies are written, and how all of
// this varies with site popularity and visitor country.
//
// webgen produces both the ground-truth model (Site, Service, Company) and
// the concrete HTTP behaviour (HTML pages, tracker scripts, Set-Cookie
// headers, sync redirects) that internal/webserver serves and the crawlers
// observe. Ground truth lets tests assert that the measurement pipeline
// *recovers* what was planted.
package webgen

import (
	"fmt"
	"sort"
)

// SiteKind distinguishes the two crawled corpora.
type SiteKind int

// Site kinds.
const (
	Porn SiteKind = iota
	Regular
)

// String names the corpus kind.
func (k SiteKind) String() string {
	if k == Porn {
		return "porn"
	}
	return "regular"
}

// ServiceCategory is the business role of a third-party service.
type ServiceCategory int

// Service categories.
const (
	CatAdNetwork ServiceCategory = iota
	CatAnalytics
	CatCDN
	CatSocial
	CatDataBroker
	CatCryptoMiner
	CatTrafficTrade
	CatHosting
	CatDating // geo-cookie services like fling.com in the paper
)

var categoryNames = [...]string{
	"ad-network", "analytics", "cdn", "social", "data-broker",
	"crypto-miner", "traffic-trade", "hosting", "dating",
}

// String names the category.
func (c ServiceCategory) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// IsATS reports whether the category is an advertising or tracking service
// in the paper's sense (ad networks, analytics, data brokers and traffic
// traders; CDNs, social widgets and hosting are third parties but not ATS).
func (c ServiceCategory) IsATS() bool {
	switch c {
	case CatAdNetwork, CatAnalytics, CatDataBroker, CatTrafficTrade, CatDating:
		return true
	}
	return false
}

// BannerType is the Degeling et al. cookie-banner taxonomy used in
// Section 7.1 (Slider and Checkbox are merged into Other, as the paper's
// crawler could not classify them without interaction).
type BannerType int

// Banner types.
const (
	BannerNone BannerType = iota
	BannerNoOption
	BannerConfirmation
	BannerBinary
	BannerOther
)

// String renders the banner type as Table 8 prints it.
func (b BannerType) String() string {
	switch b {
	case BannerNoOption:
		return "No Option"
	case BannerConfirmation:
		return "Confirmation"
	case BannerBinary:
		return "Binary"
	case BannerOther:
		return "Others"
	default:
		return "None"
	}
}

// AgeGateKind models the access-control mechanisms of Section 7.2.
type AgeGateKind int

// Age-gate kinds.
const (
	GateNone AgeGateKind = iota
	// GateSimple is the common warning text + Enter button, bypassable by
	// a crawler (and hence by a child, as the paper notes).
	GateSimple
	// GateSocialLogin is the Russian passport-linked social-network login
	// wall (pornhub.com in Russia); crawlers cannot bypass it.
	GateSocialLogin
)

// String names the gate kind.
func (g AgeGateKind) String() string {
	switch g {
	case GateSimple:
		return "simple"
	case GateSocialLogin:
		return "social-login"
	default:
		return "none"
	}
}

// Company is an owning organization for sites and/or services.
type Company struct {
	Name string
	// CertOrg is the organization string placed in X.509 certificates for
	// this company's hosts; empty means certificates carry only the domain
	// name (the paper skips those when attributing).
	CertOrg string
}

// Service is a third-party service with a primary FQDN.
type Service struct {
	Host     string // primary FQDN, e.g. "main.exoclick.com"
	Base     string // registrable domain, e.g. "exoclick.com"
	Org      *Company
	Category ServiceCategory

	AdultOnly   bool            // operates (almost) exclusively on porn sites
	RegularOnly bool            // operates (almost) exclusively on regular sites
	CountryOnly string          // non-empty: loads only from this country (e.g. "RU")
	BlockedIn   map[string]bool // countries whose traffic the service refuses

	InBlocklist bool // indexed by the synthetic EasyList/EasyPrivacy
	HTTPS       bool

	// Cookie behaviour.
	SetsIDCookie   bool
	CookiesPerHit  int  // number of cookies set per visit (>=1 when SetsIDCookie)
	CookieLen      int  // approximate value length of the main ID cookie
	EmbedsClientIP bool // encodes the visitor IP (base64) into the cookie
	EmbedsGeo      bool // encodes lat/lon (and maybe ISP) into a cookie

	// Script behaviour.
	CanvasFP       bool
	FontFP         bool
	WebRTC         bool
	ScriptVariants int // number of distinct script URLs/contents it serves

	// SyncPartners are the service hosts this service redirects its pixel
	// to, embedding its own cookie value in the URL (cookie syncing).
	SyncPartners []string

	Malicious   bool // flagged by >=4 of the VirusTotal-analog scanners
	CryptoMiner bool

	// Prevalence is the probability that a porn (resp. regular) site embeds
	// this service; index by SiteKind.
	Prevalence [2]float64
	// TailBias skews embedding toward unpopular sites when positive and
	// toward popular ones when negative (see sites.go).
	TailBias float64
}

// Resource kinds a service exposes (used for embed tags).
const (
	resScript = "script"
	resPixel  = "pixel"
	resIframe = "iframe"
	resCSS    = "css"
)

// Site is one website of either corpus.
type Site struct {
	Host  string
	Kind  SiteKind
	Owner *Company // nil when ownership is not discoverable (96% of porn sites)

	BaseRank int // central Alexa-like rank (may exceed 1M for the deep tail)

	HTTPS bool
	// Flaky sites fail the instrumented crawl (timeout), shrinking the
	// crawlable corpus like the paper's 6,843 -> 6,346.
	Flaky bool
	// Unresponsive candidate hosts never respond at all; they are the
	// sanitization-time false positives.
	Unresponsive bool

	// Corpus-discovery provenance (Section 3).
	InAggregators bool // indexed by the porn-aggregator sites
	InAlexaAdult  bool // listed in Alexa's Adult category
	KeywordInName bool // hostname matches a porn-related keyword
	// KeywordFalsePositive marks non-porn sites whose name matches a porn
	// keyword (the YouTube-vs-PornTube problem).
	KeywordFalsePositive bool

	// Embedded third parties and per-site minted unique third parties.
	Services    []*Service
	UniqueHosts []string // site-specific third-party FQDNs (long tail)
	// CountryAssets maps a vantage country to an asset host served only to
	// visitors from there (geo-balanced delivery). These are what makes
	// hundreds of FQDNs unique to each country in Table 7.
	CountryAssets map[string]string
	// ExtraFirstParty are additional first-party FQDNs (www/cdn subdomain
	// or a sister domain owned by the same org).
	ExtraFirstParty []string

	FirstPartyCookies int // cookies the site itself sets on its landing page

	// Compliance surface.
	BannerEU                    BannerType
	BannerUS                    BannerType
	HasPolicy                   bool
	PolicyText                  string
	PolicyMentionsGDPR          bool
	PolicyDisclosesCookies      bool
	PolicyDisclosesThirdParties bool
	PolicyListsAllThirdParties  bool

	AgeGate          AgeGateKind
	AgeGateLang      string                 // language of the gate keywords
	AgeGateByCountry map[string]AgeGateKind // overrides per country (Russia quirks)

	RTAMeta bool // carries the ASACP Restricted-To-Adults meta tag

	// Monetization (Section 4.1).
	HasSubscription  bool
	PaidSubscription bool

	// Geo behaviour.
	BlockedIn map[string]bool // countries where the site is unreachable

	Malicious bool

	// Language of the landing page (drives gate/banner keyword language).
	Language string

	// InlineCanvasFP: the site ships its own first-party canvas
	// fingerprinting script (26% of canvas scripts were first-party).
	InlineCanvasFP bool
}

// Interval returns the popularity interval implied by the site's base
// rank, using the same band boundaries as the rank sampler: the measured
// interval (by best-of-2018 rank) sits below the base rank by the noise
// dip factor, so ground truth must use the shifted bands to agree with
// what the crawl measures.
func (s *Site) Interval() int {
	switch {
	case s.BaseRank <= 1725:
		return 0
	case s.BaseRank <= 19900:
		return 1
	case s.BaseRank <= 230000:
		return 2
	default:
		return 3
	}
}

// HasService reports whether the site embeds the service with the host.
func (s *Site) HasService(host string) bool {
	for _, svc := range s.Services {
		if svc.Host == host {
			return true
		}
	}
	return false
}

// ServiceHosts returns the embedded services' hosts, sorted.
func (s *Site) ServiceHosts() []string {
	out := make([]string, 0, len(s.Services))
	for _, svc := range s.Services {
		out = append(out, svc.Host)
	}
	sort.Strings(out)
	return out
}
