package webgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"pornweb/internal/lingo"
)

// PageContext carries the per-request state the renderer needs.
type PageContext struct {
	Country       string
	Scheme        string // scheme the site was fetched over ("http"/"https")
	FirstPartyUID string // visitor ID templated into the inline analytics sync
	AgeVerified   bool   // the age-gate cookie is present
}

// GateFor resolves the age-gate kind shown in a country.
func (s *Site) GateFor(country string) AgeGateKind {
	if g, ok := s.AgeGateByCountry[country]; ok {
		return g
	}
	return s.AgeGate
}

// BannerFor resolves the cookie banner shown in a country: the EU variant
// inside the EU, the US variant elsewhere.
func (s *Site) BannerFor(country string) BannerType {
	if EUCountries[country] {
		return s.BannerEU
	}
	return s.BannerUS
}

func siteRNG(host, salt string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(host))
	h.Write([]byte(salt))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

func langOf(s *Site) string {
	if s.Language == "" {
		return "en"
	}
	return s.Language
}

// schemeFor picks the scheme used to embed a service from a page fetched
// over pageScheme: HTTPS-capable services are embedded securely from secure
// pages; everything else falls back to plain HTTP (producing the paper's
// "not fully HTTPS" mixed-content sites).
func schemeFor(svc *Service, pageScheme string) string {
	if pageScheme == "https" && svc.HTTPS {
		return "https"
	}
	return "http"
}

// variantFor deterministically selects which script variant of svc a site
// embeds, spreading the service's distinct script URLs across its sites.
func variantFor(siteHost string, svc *Service) int {
	h := fnv.New32a()
	h.Write([]byte(siteHost))
	h.Write([]byte(svc.Host))
	nv := svc.ScriptVariants
	if nv < 1 {
		nv = 1
	}
	return int(h.Sum32()) % nv
}

// RenderLanding produces the site's landing-page HTML for the context.
func (e *Ecosystem) RenderLanding(s *Site, ctx PageContext) string {
	lang := langOf(s)
	rng := siteRNG(s.Host, "landing")
	var b strings.Builder

	b.WriteString("<!DOCTYPE html>\n<html lang=\"" + lang + "\">\n<head>\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", siteTitle(s, rng))
	b.WriteString(headMeta(s))
	// Stylesheets from CDN services and extra first-party hosts.
	for _, svc := range s.Services {
		if svc.Category == CatCDN {
			fmt.Fprintf(&b, "<link rel=\"stylesheet\" href=\"%s://%s/css/lib.css\">\n", schemeFor(svc, ctx.Scheme), svc.Host)
		}
	}
	for _, fp := range s.ExtraFirstParty {
		fmt.Fprintf(&b, "<link rel=\"stylesheet\" href=\"%s://%s/assets/site.css\">\n", ctx.Scheme, fp)
	}
	b.WriteString("</head>\n<body>\n")

	// Cookie consent banner.
	if banner := s.BannerFor(ctx.Country); banner != BannerNone {
		b.WriteString(renderBanner(banner, lang))
	}

	// Age-verification interstitial (rendered in the gate's language when
	// one is pinned, e.g. Russia-only gates).
	switch s.GateFor(ctx.Country) {
	case GateSimple:
		if !ctx.AgeVerified {
			gateLang := s.AgeGateLang
			if gateLang == "" {
				gateLang = lang
			}
			b.WriteString(renderSimpleGate(s, gateLang))
		}
	case GateSocialLogin:
		if !ctx.AgeVerified {
			b.WriteString(renderSocialGate(s))
		}
	}

	// Navigation, including the privacy-policy link when one exists.
	b.WriteString("<nav>\n")
	if s.HasPolicy {
		words := lingo.PrivacyLinkWords[lang]
		fmt.Fprintf(&b, "<a href=\"/privacy\">%s</a>\n", strings.Join(words, " "))
	}
	if s.HasSubscription {
		for _, w := range lingo.SignupWords[lang] {
			fmt.Fprintf(&b, "<a href=\"/account\">%s</a>\n", w)
		}
		for _, w := range lingo.PremiumWords[lang] {
			fmt.Fprintf(&b, "<a href=\"/premium\">%s</a>\n", w)
		}
	}
	b.WriteString("</nav>\n")

	// Main content.
	b.WriteString("<main>\n")
	b.WriteString(renderContent(s, rng))
	if s.HasSubscription && s.PaidSubscription {
		for _, w := range lingo.PaywallWords[lang] {
			fmt.Fprintf(&b, "<p class=\"paywall\">%s</p>\n", w)
		}
	}
	b.WriteString("</main>\n")

	// Third-party embeds.
	for _, svc := range s.Services {
		b.WriteString(renderServiceEmbed(s, svc, ctx))
	}
	// Geo-balanced edge assets: only the current country's host appears.
	if h, ok := s.CountryAssets[ctx.Country]; ok {
		fmt.Fprintf(&b, "<img src=\"http://%s/media/teaser.jpg\">\n", h)
	}
	// Site-specific unique third parties (long-tail CDNs and asset hosts).
	for i, host := range s.UniqueHosts {
		if i%2 == 0 {
			fmt.Fprintf(&b, "<img src=\"http://%s/px.gif?site=%s\" width=\"1\" height=\"1\">\n", host, s.Host)
		} else {
			fmt.Fprintf(&b, "<script src=\"http://%s/js/lib.js\"></script>\n", host)
		}
	}
	for _, fp := range s.ExtraFirstParty {
		fmt.Fprintf(&b, "<img src=\"%s://%s/assets/logo.png\">\n", ctx.Scheme, fp)
	}

	// Inline first-party script (analytics sync + optional canvas FP).
	if inline := e.renderInline(s, ctx); inline != "" {
		fmt.Fprintf(&b, "<script>\n%s</script>\n", inline)
	}

	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// renderInline emits the first-party inline script.
func (e *Ecosystem) renderInline(s *Site, ctx PageContext) string {
	analyticsHost := ""
	// A slice of sites report their own visitor ID to their analytics
	// service (site-origin cookie syncing): this is what pushes the
	// origin side of Figure 4 beyond the tracker population.
	if s.FirstPartyCookies > 0 && ctx.FirstPartyUID != "" && fnvHash(s.Host+"fpsync")%5 == 0 {
		for _, svc := range s.Services {
			if svc.Category == CatAnalytics {
				analyticsHost = svc.Host
				break
			}
		}
	}
	var scheme string
	if analyticsHost != "" {
		scheme = schemeFor(e.ServiceByHost[analyticsHost], ctx.Scheme)
	} else {
		scheme = ctx.Scheme
	}
	if analyticsHost == "" && !s.InlineCanvasFP {
		return ""
	}
	return InlineSiteScript(s, ctx.FirstPartyUID, analyticsHost, scheme)
}

func renderServiceEmbed(s *Site, svc *Service, ctx PageContext) string {
	scheme := schemeFor(svc, ctx.Scheme)
	v := variantFor(s.Host, svc)
	var b strings.Builder
	switch svc.Category {
	case CatAdNetwork, CatTrafficTrade:
		fmt.Fprintf(&b, "<script src=\"%s://%s/js/tag%d.js?site=%s\"></script>\n", scheme, svc.Host, v, s.Host)
		fmt.Fprintf(&b, "<iframe src=\"%s://%s/ad?site=%s&slot=a%d\" width=\"300\" height=\"250\"></iframe>\n", scheme, svc.Host, s.Host, v)
		fmt.Fprintf(&b, "<img src=\"%s://%s/px.gif?site=%s\" width=\"1\" height=\"1\">\n", scheme, svc.Host, s.Host)
	case CatAnalytics, CatDataBroker, CatDating:
		fmt.Fprintf(&b, "<script src=\"%s://%s/js/tag%d.js?site=%s\"></script>\n", scheme, svc.Host, v, s.Host)
		fmt.Fprintf(&b, "<img src=\"%s://%s/px.gif?site=%s\" width=\"1\" height=\"1\">\n", scheme, svc.Host, s.Host)
	case CatCDN, CatHosting:
		fmt.Fprintf(&b, "<img src=\"%s://%s/static/sprite.png\">\n", scheme, svc.Host)
		// CDNs host their customers' scripts: only a small slice of the
		// sites embedding a big CDN pull a fingerprinting script through
		// it (Table 5: cloudflare.com reaches a third of the porn web but
		// serves canvas scripts on just 28 sites). Niche CDNs serve their
		// scripts everywhere they are embedded.
		if svc.CanvasFP || svc.WebRTC {
			widely := svc.Prevalence[Porn] >= 0.05 || svc.Prevalence[Regular] >= 0.05
			if !widely || fnvHash(s.Host+svc.Host+"fp")%64 == 0 {
				fmt.Fprintf(&b, "<script src=\"%s://%s/js/tag%d.js?site=%s\"></script>\n", scheme, svc.Host, v, s.Host)
			}
		}
	case CatSocial:
		fmt.Fprintf(&b, "<script src=\"%s://%s/js/tag%d.js?site=%s\"></script>\n", scheme, svc.Host, v, s.Host)
	case CatCryptoMiner:
		fmt.Fprintf(&b, "<script src=\"%s://%s/js/tag0.js?site=%s\"></script>\n", scheme, svc.Host, s.Host)
	}
	return b.String()
}

func renderBanner(t BannerType, lang string) string {
	phrase := lingo.CookieBannerPhrases[lang][0]
	accept := lingo.AgeConfirmWords[lang][4] // "Accept"
	var b strings.Builder
	b.WriteString(`<div id="cookie-banner" class="cookie-banner" style="position:fixed;bottom:0">` + "\n")
	fmt.Fprintf(&b, "<p>%s.</p>\n", phrase)
	switch t {
	case BannerConfirmation:
		fmt.Fprintf(&b, "<button id=\"cb-accept\">%s</button>\n", accept)
	case BannerBinary:
		fmt.Fprintf(&b, "<button id=\"cb-accept\">%s</button>\n", accept)
		fmt.Fprintf(&b, "<button id=\"cb-reject\">%s</button>\n", lingo.BannerRejectWords[lang][0])
	case BannerOther:
		fmt.Fprintf(&b, "<button id=\"cb-accept\">%s</button>\n", accept)
		fmt.Fprintf(&b, "<a href=\"/cookie-settings\">%s</a>\n", lingo.BannerSettingsWords[lang][0])
		b.WriteString(`<input type="range" id="cb-slider" min="0" max="3">` + "\n")
	}
	b.WriteString("</div>\n")
	return b.String()
}

func renderSimpleGate(s *Site, lang string) string {
	warning := lingo.AgeWarningPhrases[lang][0] + ". " + lingo.AgeWarningPhrases[lang][1] + "."
	confirm := lingo.AgeConfirmWords[lang]
	var b strings.Builder
	b.WriteString(`<div id="age-gate" class="overlay modal" style="position:fixed;top:0;left:0;width:100%;height:100%">` + "\n")
	b.WriteString("<div class=\"modal-inner\">\n")
	fmt.Fprintf(&b, "<p>%s</p>\n", warning)
	fmt.Fprintf(&b, "<a id=\"age-enter\" href=\"/enter?to=%%2F\">%s</a>\n", confirm[1]) // "Enter"
	fmt.Fprintf(&b, "<a id=\"age-leave\" href=\"https://family-friendly.example/\">%s</a>\n", "Exit")
	b.WriteString("</div>\n</div>\n")
	return b.String()
}

func renderSocialGate(s *Site) string {
	// The Russian passport-linked login wall: no bypass link, a login form
	// instead (Section 7.2: only pornhub.com implements it).
	return `<div id="age-gate" class="overlay modal" style="position:fixed;top:0;left:0;width:100%;height:100%">
<div class="modal-inner">
<p>Для доступа требуется вход через социальную сеть, привязанную к паспорту.</p>
<form action="/social-login" method="post">
<input name="vk_account" placeholder="VK">
<button type="submit">Войти через VK</button>
</form>
</div></div>
`
}

// Note: no monetization keywords ("Premium", "Sign Up") may appear here —
// the Section 4.1 classifier keys on those.
var adultAdjectives = []string{"Amateur", "Mature", "Wild", "Real", "Hot", "Classic", "Exclusive", "Vintage"}
var regularTopics = []string{"Weather", "Markets", "Technology", "Travel", "Recipes", "Sports", "Culture", "Science"}

func siteTitle(s *Site, rng *rand.Rand) string {
	name := strings.SplitN(s.Host, ".", 2)[0]
	if s.Kind == Porn && !s.KeywordFalsePositive {
		return fmt.Sprintf("%s — %s Adult Videos", name, adultAdjectives[rng.Intn(len(adultAdjectives))])
	}
	return fmt.Sprintf("%s — %s and more", name, regularTopics[rng.Intn(len(regularTopics))])
}

// headMeta renders the <head> metadata. Sites of the same owner share a
// generator/theme signature, which is what the paper's TF-IDF comparison of
// <head> elements clusters on.
func headMeta(s *Site) string {
	var b strings.Builder
	if s.Kind == Porn && !s.KeywordFalsePositive {
		desc := strings.Join(lingo.AdultContentWords[:4], ", ")
		fmt.Fprintf(&b, "<meta name=\"description\" content=\"%s\">\n", desc)
	} else {
		fmt.Fprintf(&b, "<meta name=\"description\" content=\"daily %s news and guides\">\n", strings.ToLower(regularTopics[int(fnvHash(s.Host))%len(regularTopics)]))
	}
	if s.Owner != nil {
		// Federated platforms stamp every network site with the same
		// generator and theme — the signal the owner-discovery clustering
		// keys on.
		fmt.Fprintf(&b, "<meta name=\"generator\" content=\"%s-platform v4\">\n", strings.ReplaceAll(strings.ToLower(s.Owner.Name), " ", "-"))
		fmt.Fprintf(&b, "<meta name=\"theme\" content=\"%s-dark\">\n", strings.ReplaceAll(strings.ToLower(s.Owner.Name), " ", "-"))
	} else {
		// Independent sites carry a per-site build fingerprint so their
		// heads do NOT look identical (they are unrelated operators).
		fmt.Fprintf(&b, "<meta name=\"generator\" content=\"site-engine v%d\">\n", int(fnvHash(s.Host))%7+1)
		fmt.Fprintf(&b, "<meta name=\"build\" content=\"b%08x\">\n", fnvHash(s.Host+"build"))
	}
	if s.RTAMeta {
		b.WriteString("<meta name=\"RATING\" content=\"RTA-5042-1996-1400-1577-RTA\">\n")
	}
	return b.String()
}

func fnvHash(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// renderContent emits the main body: adult markers for porn sites (the
// sanitization step classifies on these) and neutral content otherwise.
func renderContent(s *Site, rng *rand.Rand) string {
	var b strings.Builder
	if s.Kind == Porn && !s.KeywordFalsePositive {
		b.WriteString("<h1>" + lingo.AdultContentWords[0] + "</h1>\n")
		b.WriteString("<p>Warning: this site hosts " + lingo.AdultContentWords[1] + " and " + lingo.AdultContentWords[2] + ".</p>\n")
		n := 6 + rng.Intn(10)
		b.WriteString("<ul class=\"videos\">\n")
		for i := 0; i < n; i++ {
			adj := adultAdjectives[rng.Intn(len(adultAdjectives))]
			fmt.Fprintf(&b, "<li><a href=\"/video/%d\">%s %s #%d</a></li>\n", i, adj, lingo.AdultContentWords[rng.Intn(3)+4], rng.Intn(10000))
		}
		b.WriteString("</ul>\n")
	} else {
		topic := regularTopics[rng.Intn(len(regularTopics))]
		fmt.Fprintf(&b, "<h1>%s Daily</h1>\n", topic)
		n := 5 + rng.Intn(8)
		b.WriteString("<ul class=\"articles\">\n")
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "<li><a href=\"/article/%d\">%s update %d</a></li>\n", i, regularTopics[rng.Intn(len(regularTopics))], rng.Intn(1000))
		}
		b.WriteString("</ul>\n")
	}
	return b.String()
}

// RenderPolicyPage wraps the generated policy text in HTML.
func RenderPolicyPage(s *Site) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><title>Privacy Policy — " + s.Host + "</title></head>\n<body>\n")
	b.WriteString("<article id=\"policy\">\n")
	for _, para := range strings.Split(s.PolicyText, "\n\n") {
		para = strings.TrimSpace(para)
		if para == "" {
			continue
		}
		b.WriteString("<p>" + para + "</p>\n")
	}
	b.WriteString("</article>\n</body></html>\n")
	return b.String()
}
