package webgen

import (
	"encoding/base64"
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"sync"
)

// Phase tells the responder which crawl is talking to it. Flaky sites were
// reachable during corpus sanitization but failed during the instrumented
// crawl (the paper's 6,843 -> 6,346 drop); modeling availability as
// phase-dependent reproduces that time-varying behaviour deterministically.
type Phase int

// Crawl phases.
const (
	PhaseSanitize Phase = iota // the purpose-built sanitization crawler
	PhaseCrawl                 // the OpenWPM-analog instrumented crawl
	PhasePolicy                // the Selenium-analog interactive crawl
)

// Request is a protocol-independent view of an HTTP request reaching the
// virtual server.
type Request struct {
	Host     string
	Path     string
	Query    url.Values
	Country  string
	ClientIP string
	Cookies  map[string]string
	Referer  string
	Secure   bool
	Phase    Phase
}

// SetCookie is a cookie the virtual server asks the client to store.
type SetCookie struct {
	Name    string
	Value   string
	Session bool // no Max-Age/Expires: discarded at session end
}

// Response is the virtual server's reply. Status 0 means the connection is
// refused (dead host, geo-block, or flaky failure).
type Response struct {
	Status      int
	Location    string
	ContentType string
	Body        string
	Cookies     []SetCookie
}

// Refused is the connection-refused response.
func Refused() Response { return Response{Status: 0} }

const gif1x1 = "GIF89a\x01\x00\x01\x00\x80\x00\x00\x00\x00\x00\xff\xff\xff!\xf9\x04\x01\x00\x00\x00\x00,\x00\x00\x00\x00\x01\x00\x01\x00\x00\x02\x02D\x01\x00;"

// geoCoords approximates the vantage locations the paper's geo-IP cookies
// would encode.
var geoCoords = map[string][2]string{
	"ES": {"40.4168", "-3.7038"},
	"US": {"37.7749", "-122.4194"},
	"UK": {"51.5074", "-0.1278"},
	"RU": {"55.7558", "37.6173"},
	"IN": {"19.0760", "72.8777"},
	"SG": {"1.3521", "103.8198"},
}

// uidStore mints and remembers per-(host,visitor-ish) identifiers. The
// crawler keeps one browser session, so the visitor key is simply the
// client IP — good enough for a single-session crawl and deterministic
// across repeated visits within a crawl. Values are a pure function of
// (seed, key): concurrent crawl sessions touching keys in any order mint
// identical identifiers, which is what lets the pipeline promise
// byte-identical results no matter how its stages are scheduled.
type uidStore struct {
	mu   sync.Mutex
	seed uint64
	m    map[string]string
}

func newUIDStore(seed uint64) *uidStore {
	return &uidStore{seed: seed, m: map[string]string{}}
}

// get returns the stable identifier for key, minting one of the given
// length on first use.
func (u *uidStore) get(key string, length int) string {
	u.mu.Lock()
	defer u.mu.Unlock()
	if v, ok := u.m[key]; ok {
		return v
	}
	v := u.mint(key, length)
	u.m[key] = v
	return v
}

const uidAlphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

func (u *uidStore) mint(key string, length int) string {
	if length < 8 {
		length = 8
	}
	var b strings.Builder
	// FNV-1a over the key, folded with the seed, so the value depends only
	// on (seed, key) — never on the order keys are first requested in.
	state := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		state ^= uint64(key[i])
		state *= 1099511628211
	}
	state ^= u.seed * 0x9e3779b97f4a7c15
	for b.Len() < length {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		b.WriteByte(uidAlphabet[state%uint64(len(uidAlphabet))])
	}
	return b.String()
}

// Respond is the virtual server: it routes a request to the owning site,
// service, or long-tail host and produces the response the real crawl would
// observe. It is safe for concurrent use.
func (e *Ecosystem) Respond(req Request) Response {
	host := strings.ToLower(req.Host)
	if site, ok := e.SiteByHost[host]; ok {
		return e.respondSite(site, req)
	}
	if svc, ok := e.ServiceByHost[host]; ok {
		return e.respondService(svc, req)
	}
	if owner, ok := e.extraFirstParty[host]; ok {
		return e.respondFirstPartyAsset(owner, req)
	}
	if _, ok := e.uniqueHosts[host]; ok {
		return e.respondTailHost(host, req)
	}
	return Refused()
}

func (e *Ecosystem) respondSite(s *Site, req Request) Response {
	if s.Unresponsive {
		return Refused()
	}
	if s.BlockedIn[req.Country] {
		if e.faults.prof.Geo451 {
			// Modern CDN-fronted blocks answer 451, which lets a vantage
			// distinguish legal blocking from a dead host.
			return Response{Status: 451, ContentType: "text/html",
				Body: "<html><body><h1>451 Unavailable For Legal Reasons</h1></body></html>"}
		}
		return Refused()
	}
	if s.Flaky && req.Phase != PhaseSanitize {
		return Refused()
	}
	switch {
	case req.Path == "/" || req.Path == "":
		resp := Response{Status: 200, ContentType: "text/html; charset=utf-8"}
		fpUID := ""
		if s.FirstPartyCookies > 0 {
			fpUID = e.uids.get("site:"+s.Host, 24)
			if req.Cookies[siteCookieName(s, 0)] == "" {
				resp.Cookies = append(resp.Cookies, SetCookie{Name: siteCookieName(s, 0), Value: fpUID})
				for i := 1; i < s.FirstPartyCookies; i++ {
					resp.Cookies = append(resp.Cookies, SetCookie{
						Name:    siteCookieName(s, i),
						Value:   e.uids.get(fmt.Sprintf("site:%s:%d", s.Host, i), 10+i*7),
						Session: i%3 == 2,
					})
				}
				// A short functional cookie the ID filter must discard.
				resp.Cookies = append(resp.Cookies, SetCookie{Name: "lg", Value: langOf(s), Session: true})
			}
		}
		ctx := PageContext{
			Country:       req.Country,
			Scheme:        schemeString(req.Secure),
			FirstPartyUID: fpUID,
			AgeVerified:   req.Cookies["age_ok"] == "1",
		}
		resp.Body = e.RenderLanding(s, ctx)
		return resp
	case req.Path == "/privacy":
		if !s.HasPolicy {
			return Response{Status: 404, ContentType: "text/html", Body: "<html><body><h1>404</h1></body></html>"}
		}
		return Response{Status: 200, ContentType: "text/html; charset=utf-8", Body: RenderPolicyPage(s)}
	case req.Path == "/enter":
		to := req.Query.Get("to")
		if to == "" {
			to = "/"
		}
		return Response{Status: 302, Location: to, Cookies: []SetCookie{{Name: "age_ok", Value: "1"}}}
	case req.Path == "/selfmetrics", strings.HasPrefix(req.Path, "/video/"), strings.HasPrefix(req.Path, "/article/"),
		req.Path == "/account", req.Path == "/premium", req.Path == "/cookie-settings":
		return Response{Status: 200, ContentType: "text/html", Body: "<html><body>ok</body></html>"}
	default:
		return Response{Status: 404, ContentType: "text/html", Body: "<html><body><h1>404</h1></body></html>"}
	}
}

func schemeString(secure bool) string {
	if secure {
		return "https"
	}
	return "http"
}

// siteCookieName derives the i-th first-party cookie name of a site.
func siteCookieName(s *Site, i int) string {
	if i == 0 {
		return fmt.Sprintf("fpuid_%x", fnvHash(s.Host)&0xffff)
	}
	return fmt.Sprintf("pref%d_%x", i, fnvHash(s.Host)&0xfff)
}

// serviceUID returns the service's main visitor identifier: the ID
// portion of its primary cookie. The stored cookie wraps this same value
// in padding or IP/geo payload (see mainCookieValue), so recomputing it
// from the uid store is identity-preserving — and, unlike echoing the
// cookie the visitor happens to carry, independent of jar state. That
// matters for determinism: concurrent site visits share the session jar,
// so whether a request already carries the cookie is a scheduling race,
// and the uid is templated into script bodies whose bytes feed the run
// manifest digests.
func (e *Ecosystem) serviceUID(svc *Service, req Request) string {
	return e.uids.get("svc:"+svc.Host, idPortionLen(svc))
}

func idPortionLen(svc *Service) int {
	l := svc.CookieLen
	if l < 12 {
		l = 12
	}
	if l > 48 {
		l = 48 // the rest of very long cookies is payload padding
	}
	return l
}

// mainCookieValue builds the primary cookie value, honouring the planted
// encodings: client IP (base64) and geolocation.
func (e *Ecosystem) mainCookieValue(svc *Service, req Request, uid string) string {
	switch {
	case svc.EmbedsClientIP:
		return base64.StdEncoding.EncodeToString([]byte(req.ClientIP)) + "." + uid
	case svc.EmbedsGeo:
		co, ok := geoCoords[req.Country]
		if !ok {
			co = geoCoords["ES"]
		}
		payload := "lat=" + co[0] + "|lon=" + co[1]
		if svc.Host == "playwithme.com" {
			payload += "|isp=Loopback Telecom AS64500"
		}
		return url.QueryEscape(payload) + "." + uid
	default:
		v := uid
		// Pad very long cookies (tsyndicate-style 3,600-char payloads).
		if svc.CookieLen > len(v) {
			v += "." + strings.Repeat("xA9", (svc.CookieLen-len(v))/3+1)[:svc.CookieLen-len(v)-1]
		}
		return v
	}
}

// mainCookieFullValue returns the complete value of the service's primary
// cookie for this visitor: the one already stored in the browser when
// present, otherwise the value being set on this response.
func (e *Ecosystem) mainCookieFullValue(svc *Service, req Request, uid string) string {
	if v := req.Cookies[cookieNameFor(svc, 0)]; v != "" {
		return v
	}
	return e.mainCookieValue(svc, req, uid)
}

// serviceCookies builds the Set-Cookie headers for a service response.
// Cookies are set on first contact and refreshed (same values, extended
// expiry) on pixel and sync hits — the endpoints real trackers refresh on —
// but not on every script or ad fetch, which would inflate the cookie
// census beyond anything OpenWPM would record.
func (e *Ecosystem) serviceCookies(svc *Service, req Request, uid string, refresh bool) []SetCookie {
	if !svc.SetsIDCookie {
		return nil
	}
	if !refresh && req.Cookies[cookieNameFor(svc, 0)] != "" {
		return nil
	}
	out := []SetCookie{{Name: cookieNameFor(svc, 0), Value: e.mainCookieFullValue(svc, req, uid)}}
	for i := 1; i < svc.CookiesPerHit; i++ {
		out = append(out, SetCookie{
			Name:    cookieNameFor(svc, i),
			Value:   e.uids.get(fmt.Sprintf("svc:%s:%d", svc.Host, i), 10+5*i),
			Session: i%2 == 0,
		})
	}
	// High-prevalence services also set a constant-value cookie: these are
	// the "100 most popular name=value cookies" of Section 5.1.1.
	if svc.Prevalence[Porn] >= 0.1 || svc.Prevalence[Regular] >= 0.3 {
		out = append(out, SetCookie{Name: "cons_" + svcShort(svc), Value: "na1"})
	}
	return out
}

func svcShort(svc *Service) string {
	return fmt.Sprintf("%x", fnvHash(svc.Base)&0xffff)
}

func (e *Ecosystem) respondService(svc *Service, req Request) Response {
	if svc.CountryOnly != "" && svc.CountryOnly != req.Country {
		return Refused()
	}
	if svc.BlockedIn[req.Country] {
		return Refused()
	}
	uid := e.serviceUID(svc, req)
	scheme := schemeString(req.Secure)
	switch {
	case strings.HasPrefix(req.Path, "/js/tag"):
		variant := 0
		numPart := strings.TrimSuffix(strings.TrimPrefix(req.Path, "/js/tag"), ".js")
		if n, err := strconv.Atoi(numPart); err == nil {
			variant = n
		}
		return Response{
			Status:      200,
			ContentType: "application/javascript",
			Body:        ServiceScriptFor(svc, variant, uid, scheme, req.Query.Get("site")),
			Cookies:     e.serviceCookies(svc, req, uid, false),
		}
	case req.Path == "/px.gif":
		cookies := e.serviceCookies(svc, req, uid, true)
		// Cookie syncing: the pixel redirects to a partner, embedding this
		// service's full cookie value in the partner URL (Section 5.1.2) —
		// partners need the complete identifier to match audiences. Only a
		// slice of impressions triggers a sync (real exchanges match
		// audiences selectively; syncing every impression would make the
		// partners look omnipresent in Figure 3).
		siteKey := req.Host + req.Query.Get("site")
		wantsSync := req.Query.Get("site") == "" || fnvHash(siteKey+"sync")%3 == 0
		if req.Query.Get("nosync") == "" && svc.SetsIDCookie && wantsSync {
			if p := e.pickPartner(svc, int(fnvHash(siteKey))); p != nil {
				loc := fmt.Sprintf("%s://%s/sync?src=%s&puid=%s&d=1", schemeFor(p, scheme), p.Host,
					url.QueryEscape(svc.Base), url.QueryEscape(e.mainCookieFullValue(svc, req, uid)))
				return Response{Status: 302, Location: loc, Cookies: cookies}
			}
		}
		return Response{Status: 200, ContentType: "image/gif", Body: gif1x1, Cookies: cookies}
	case req.Path == "/sync":
		cookies := e.serviceCookies(svc, req, uid, true)
		depth, _ := strconv.Atoi(req.Query.Get("d"))
		if depth < 2 && svc.SetsIDCookie {
			if p := e.pickPartner(svc, depth); p != nil && p.Host != req.Host {
				loc := fmt.Sprintf("%s://%s/sync?src=%s&puid=%s&d=%d", schemeFor(p, scheme), p.Host,
					url.QueryEscape(svc.Base), url.QueryEscape(e.mainCookieFullValue(svc, req, uid)), depth+1)
				return Response{Status: 302, Location: loc, Cookies: cookies}
			}
		}
		return Response{Status: 200, ContentType: "image/gif", Body: gif1x1, Cookies: cookies}
	case req.Path == "/ad":
		cookies := e.serviceCookies(svc, req, uid, false)
		var b strings.Builder
		b.WriteString("<html><body>")
		fmt.Fprintf(&b, "<img src=\"%s://%s/px.gif?site=%s\" width=\"1\" height=\"1\">", scheme, svc.Host, req.Query.Get("site"))
		// Inclusion chains: ad markup pulled from one network can embed a
		// further network (Bashir et al.'s RTB chains, Section 3.1).
		deepChain := fnvHash(req.Host+req.Query.Get("site")+"rtb")%6 == 0
		if len(svc.SyncPartners) > 0 && req.Query.Get("hop") == "" && deepChain {
			partner := svc.SyncPartners[0]
			if p, ok := e.ServiceByHost[partner]; ok && (p.Category == CatAdNetwork || p.Category == CatTrafficTrade) {
				fmt.Fprintf(&b, "<iframe src=\"%s://%s/ad?site=%s&hop=1\"></iframe>", schemeFor(p, scheme), p.Host, req.Query.Get("site"))
			}
		}
		b.WriteString("<div class=\"creative\">Sponsored</div></body></html>")
		return Response{Status: 200, ContentType: "text/html", Body: b.String(), Cookies: cookies}
	case req.Path == "/collect", strings.HasPrefix(req.Path, "/lib/"):
		return Response{Status: 204, Cookies: e.serviceCookies(svc, req, uid, false)}
	case strings.HasPrefix(req.Path, "/css/"):
		return Response{Status: 200, ContentType: "text/css", Body: ".w{display:block}"}
	case strings.HasPrefix(req.Path, "/static/"):
		return Response{Status: 200, ContentType: "image/png", Body: "\x89PNG\r\n\x1a\n"}
	default:
		return Response{Status: 404, Body: "not found"}
	}
}

// pickPartner selects the sync partner for svc starting at the hashed
// index, skipping any partner host that does not resolve in this ecosystem
// (a tail service's partner list can reference pruned hosts at small
// scales).
func (e *Ecosystem) pickPartner(svc *Service, start int) *Service {
	n := len(svc.SyncPartners)
	if n == 0 {
		return nil
	}
	if start < 0 {
		start = -start
	}
	for i := 0; i < n; i++ {
		host := svc.SyncPartners[(start+i)%n]
		if p, ok := e.ServiceByHost[host]; ok {
			return p
		}
	}
	return nil
}

func (e *Ecosystem) respondFirstPartyAsset(owner *Site, req Request) Response {
	if owner.Unresponsive || owner.BlockedIn[req.Country] {
		return Refused()
	}
	switch {
	case strings.HasSuffix(req.Path, ".css"):
		return Response{Status: 200, ContentType: "text/css", Body: "body{margin:0}"}
	case strings.HasSuffix(req.Path, ".png"), strings.HasSuffix(req.Path, ".gif"):
		return Response{Status: 200, ContentType: "image/png", Body: "\x89PNG\r\n\x1a\n"}
	default:
		return Response{Status: 200, ContentType: "text/plain", Body: "ok"}
	}
}

// respondTailHost serves the site-specific long-tail hosts: generic pixels
// and libraries, a share of which set their own cookies.
func (e *Ecosystem) respondTailHost(host string, req Request) Response {
	var cookies []SetCookie
	if fnvHash(host)%20 == 0 && req.Cookies["tuid"] == "" {
		cookies = []SetCookie{{Name: "tuid", Value: e.uids.get("tail:"+host, 16)}}
	}
	switch {
	case strings.HasPrefix(req.Path, "/js/"):
		return Response{Status: 200, ContentType: "application/javascript",
			Body: "var loaded = 1;\n", Cookies: cookies}
	default:
		return Response{Status: 200, ContentType: "image/gif", Body: gif1x1, Cookies: cookies}
	}
}

// HTTPSCapable reports whether a host can serve TLS (drives the SNI
// certificate issuance in internal/webserver and the crawler's downgrade
// logic).
func (e *Ecosystem) HTTPSCapable(host string) bool {
	host = strings.ToLower(host)
	if s, ok := e.SiteByHost[host]; ok {
		return s.HTTPS
	}
	if svc, ok := e.ServiceByHost[host]; ok {
		return svc.HTTPS
	}
	if owner, ok := e.extraFirstParty[host]; ok {
		return owner.HTTPS
	}
	if _, ok := e.uniqueHosts[host]; ok {
		return fnvHash(host)%10 != 0 // most asset hosts ride TLS-terminating CDNs
	}
	return false
}

// hostingOrgs are the infrastructure providers behind the long-tail asset
// hosts; their certificates are what lets the attribution pipeline resolve
// most observed FQDNs to an organization (the paper reached 74%).
var hostingOrgs = []string{
	"EdgePoint Internet GmbH", "NorthCDN Oy", "Bluewave Hosting LLC",
	"StaticWorks B.V.", "RapidServe Pte Ltd", "CacheField Inc.",
	"Stonepeak Networks", "Vortex Delivery SL", "LumenEdge Corp",
	"TransitOne AG", "HostForge s.r.o.", "Skylattice Ltd",
	"PacketGarden LLC", "OriginShield SA", "DeltaNode Hosting",
	"FiberMill Oy", "GreyStack Internet", "HarborCache Ltd",
	"IronLeaf Networks", "JetCrest Hosting", "KiteRelay GmbH",
	"LoopSpire Inc.", "MistValley Internet", "NovaPier Hosting",
	"OakRoute Networks",
}

// CertOrgFor returns the organization string carried in the host's X.509
// certificate, or "" when the certificate would name only the domain
// itself.
func (e *Ecosystem) CertOrgFor(host string) string {
	host = strings.ToLower(host)
	if s, ok := e.SiteByHost[host]; ok {
		if s.Owner != nil {
			return s.Owner.CertOrg
		}
		return ""
	}
	if svc, ok := e.ServiceByHost[host]; ok {
		if svc.Org != nil {
			return svc.Org.CertOrg
		}
		return ""
	}
	if owner, ok := e.extraFirstParty[host]; ok {
		if owner.Owner != nil {
			return owner.Owner.CertOrg
		}
		// Extra first-party hosts of unknown-owner sites still share a
		// certificate with their site (same operator).
		return "op-" + owner.Host
	}
	if _, ok := e.uniqueHosts[host]; ok {
		// Long-tail asset hosts sit on commercial hosting/CDN
		// infrastructure whose certificates name the provider.
		return hostingOrgs[int(fnvHash(host+"org"))%len(hostingOrgs)]
	}
	return ""
}
