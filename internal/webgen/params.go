package webgen

import "math"

// Params controls ecosystem generation. The zero value is not usable; call
// DefaultParams and adjust Scale/Seed.
type Params struct {
	// Seed drives all pseudo-randomness; identical Params generate
	// identical ecosystems.
	Seed uint64
	// Scale scales the population. 1.0 reproduces the paper's corpus sizes
	// (6,843 porn sites, 9,688 regular sites). Tests use small scales.
	Scale float64
	// Faults configures the chaos model: seed-deterministic transient
	// 5xx bursts, dropped/reset/truncated connections, redirect loops
	// and injected latency (see FaultProfile). The zero value disables
	// injection.
	Faults FaultProfile
}

// DefaultParams returns paper-scale parameters.
func DefaultParams() Params { return Params{Seed: 2019, Scale: 1.0} }

// Calibration constants: the paper's measured population sizes and
// proportions that the generator targets (see DESIGN.md for the mapping of
// each constant to a table/figure).
const (
	paperPornSites       = 6843 // sanitized porn corpus (Section 3)
	paperRegularSites    = 9688 // reference corpus
	paperFalsePositives  = 1256 // removed candidates (unresponsive + keyword FPs)
	paperAggregatorSites = 342  // discovered via porn aggregator indexes
	paperAlexaAdult      = 22   // discovered via Alexa Adult category

	// Fraction of true porn sites whose crawl fails (6,843 -> 6,346).
	pornFlakyFrac = 0.0726
	// Fraction of regular sites whose crawl fails (9,688 -> 8,511).
	regularFlakyFrac = 0.1215

	// Popularity interval shares for porn sites, matching Table 3's
	// 73 / 536 / 3,668 / 2,069 crawled sites per interval.
	pornTop1KFrac   = 0.0115
	porn1K10KFrac   = 0.0845
	porn10K100KFrac = 0.578
	// remainder falls in 100k+

	// Always-in-top-1M share (Figure 1: 1,103 of 6,843).
	// Emerges from rank volatility; kept for documentation.

	// Cookie banner rates (Table 8).
	bannerEUNoOption     = 0.0136
	bannerEUConfirmation = 0.0282
	bannerEUBinary       = 0.0020
	bannerEUOther        = 0.0003
	// A site showing a banner in the US almost always shows it in the EU;
	// the EU adds a small extra set (totals 4.41% vs 3.76%).

	// Privacy policies (Section 7.3).
	policyFrac        = 0.16
	policyGDPRFrac    = 0.20 // of sites with a policy
	policyMeanLetters = 17159

	// Age verification (Section 7.2): 20% of the top-50 sites.
	ageGateTopFrac = 0.20

	// Monetization (Section 4.1).
	subscriptionFrac = 0.14
	paidFrac         = 0.23 // of subscription sites

	// Fingerprinting (Section 5.1.3): 315 sites (~5%) load canvas
	// fingerprinting; 49 third-party services deliver those scripts;
	// 177 sites load WebRTC scripts from 13 services.
	canvasSiteFrac = 0.0460
	webrtcSiteFrac = 0.0259

	// Malware (Section 5.3): 7 porn sites, 16 services in 41 sites,
	// cryptominers in 8 sites.
	maliciousSiteFrac = 7.0 / 6843.0

	// Geo blocking (Section 3.1): 21 sites unreachable from Russia,
	// 168 from India.
	blockedRUFrac = 21.0 / 6843.0
	blockedINFrac = 168.0 / 6843.0

	// First-party cookies: 92% of sites install some cookie.
	fpCookieFrac = 0.92

	// Long-tail unique third-party FQDNs minted per site, by popularity
	// interval (Table 3: 119/73, 531/536, 2115/3668, 1007/2069).
	uniqueRateTop1K   = 1.63
	uniqueRate1K10K   = 0.99
	uniqueRate10K100K = 0.577
	uniqueRate100KUp  = 0.487

	// Regular sites mint more unique third parties (21,128 FQDNs from
	// 8,511 crawled sites).
	uniqueRateRegular = 2.2

	// HTTPS support by popularity interval for porn sites (Table 6).
	httpsTop1K   = 0.92
	https1K10K   = 0.63
	https10K100K = 0.32
	https100KUp  = 0.22
)

// scaled returns round(Scale * n), at least min.
func (p Params) scaled(n int, min int) int {
	v := int(math.Round(p.Scale * float64(n)))
	if v < min {
		v = min
	}
	return v
}

// Countries the study observes from (Section 3.1): the physical vantage
// point in Spain plus VPN endpoints.
var Countries = []string{"ES", "US", "UK", "RU", "IN", "SG"}

// EU member states among the vantage countries (2019: the UK was still an
// EU member and subject to the GDPR; the paper studies it for the Digital
// Economy Act as well).
var EUCountries = map[string]bool{"ES": true, "UK": true}

// Languages used for banner/gate keyword generation, matching the paper's
// eight languages.
var Languages = []string{"en", "es", "fr", "pt", "ru", "it", "de", "ro"}
