package webgen

import (
	"fmt"
	"net/url"
	"strings"
	"testing"

	"pornweb/internal/blocklist"
	"pornweb/internal/jsvm"
	"pornweb/internal/lingo"
)

func testParams() Params { return Params{Seed: 7, Scale: 0.02} }

func genTest(t *testing.T) *Ecosystem {
	t.Helper()
	return Generate(testParams())
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(testParams())
	b := Generate(testParams())
	if len(a.PornSites) != len(b.PornSites) || len(a.Services) != len(b.Services) {
		t.Fatal("population sizes differ across identical generations")
	}
	for i := range a.PornSites {
		x, y := a.PornSites[i], b.PornSites[i]
		if x.Host != y.Host || x.BaseRank != y.BaseRank || x.HTTPS != y.HTTPS ||
			len(x.Services) != len(y.Services) || x.PolicyText != y.PolicyText {
			t.Fatalf("site %d differs: %q vs %q", i, x.Host, y.Host)
		}
	}
}

func TestPopulationSizes(t *testing.T) {
	e := genTest(t)
	wantPorn := testParams().scaled(paperPornSites, 40)
	if len(e.PornSites) != wantPorn {
		t.Errorf("porn sites = %d, want %d", len(e.PornSites), wantPorn)
	}
	if len(e.RegularSites) == 0 || len(e.FalseCandidates) == 0 {
		t.Error("regular sites and false candidates must exist")
	}
	if len(e.Services) < 50 {
		t.Errorf("services = %d, want >= 50", len(e.Services))
	}
}

func TestHostUniqueness(t *testing.T) {
	e := genTest(t)
	seen := map[string]string{}
	add := func(h, kind string) {
		if prev, dup := seen[h]; dup {
			t.Errorf("host %q minted twice (%s and %s)", h, prev, kind)
		}
		seen[h] = kind
	}
	for _, s := range e.AllSites() {
		add(s.Host, "site")
	}
	for _, svc := range e.Services {
		add(svc.Host, "service")
	}
	for h := range e.uniqueHosts {
		add(h, "unique")
	}
}

func TestFlagshipsPlanted(t *testing.T) {
	e := genTest(t)
	ph, ok := e.SiteByHost["pornhub.com"]
	if !ok {
		t.Fatal("pornhub.com missing")
	}
	if ph.Owner == nil || ph.Owner.Name != "MindGeek" {
		t.Errorf("pornhub owner = %v", ph.Owner)
	}
	if ph.BaseRank != 22 {
		t.Errorf("pornhub rank = %d", ph.BaseRank)
	}
	if g := ph.GateFor("RU"); g != GateSocialLogin {
		t.Errorf("pornhub RU gate = %v, want social login", g)
	}
	if _, ok := e.SiteByHost["xvideos.com"]; !ok {
		t.Error("xvideos.com missing")
	}
}

func TestOwnerClustersShareNearIdenticalPolicies(t *testing.T) {
	e := genTest(t)
	byOwner := map[string][]*Site{}
	for _, s := range e.PornSites {
		if s.Owner != nil && s.HasPolicy {
			byOwner[s.Owner.Name] = append(byOwner[s.Owner.Name], s)
		}
	}
	found := false
	for owner, sites := range byOwner {
		var pair []*Site
		for _, s := range sites {
			if !s.PolicyListsAllThirdParties {
				pair = append(pair, s)
			}
		}
		if len(pair) < 2 {
			continue
		}
		found = true
		a := strings.ReplaceAll(pair[0].PolicyText, pair[0].Host, "{SITE}")
		b := strings.ReplaceAll(pair[1].PolicyText, pair[1].Host, "{SITE}")
		if a != b {
			t.Errorf("owner %s: cluster policies not template-identical", owner)
		}
	}
	if !found {
		t.Fatal("no owner cluster with >= 2 policied sites at this scale")
	}
}

func TestAdultOnlyServicesStayOffRegularSites(t *testing.T) {
	e := genTest(t)
	for _, s := range e.RegularSites {
		for _, svc := range s.Services {
			if svc.AdultOnly && svc.Prevalence[Regular] == 0 {
				t.Errorf("regular site %s embeds adult-only service %s", s.Host, svc.Host)
			}
		}
	}
	for _, s := range e.PornSites {
		for _, svc := range s.Services {
			if svc.RegularOnly {
				t.Errorf("porn site %s embeds regular-only service %s", s.Host, svc.Host)
			}
		}
	}
}

func TestExoClickPrevalence(t *testing.T) {
	e := genTest(t)
	n := 0
	for _, s := range e.PornSites {
		if s.HasService("exosrv.com") || s.HasService("exoclick.com") {
			n++
		}
	}
	frac := float64(n) / float64(len(e.PornSites))
	if frac < 0.25 || frac > 0.60 {
		t.Errorf("ExoClick union prevalence = %.2f, want ~0.40", frac)
	}
}

func TestBannerRates(t *testing.T) {
	e := Generate(Params{Seed: 11, Scale: 0.3}) // larger sample for stable rates
	var eu, us int
	for _, s := range e.PornSites {
		if s.BannerEU != BannerNone {
			eu++
		}
		if s.BannerUS != BannerNone {
			us++
		}
	}
	n := float64(len(e.PornSites))
	if f := float64(eu) / n; f < 0.025 || f > 0.065 {
		t.Errorf("EU banner rate = %.3f, want ~0.044", f)
	}
	if us > eu {
		t.Errorf("US banners (%d) must not exceed EU banners (%d)", us, eu)
	}
}

func TestRespondLanding(t *testing.T) {
	e := genTest(t)
	var site *Site
	for _, s := range e.PornSites {
		if !s.Flaky && !s.Unresponsive && s.FirstPartyCookies > 0 && len(s.Services) > 0 {
			site = s
			break
		}
	}
	if site == nil {
		t.Fatal("no suitable site")
	}
	resp := e.Respond(Request{
		Host: site.Host, Path: "/", Country: "ES", ClientIP: "127.0.0.1",
		Cookies: map[string]string{}, Phase: PhaseCrawl,
	})
	if resp.Status != 200 {
		t.Fatalf("landing status = %d", resp.Status)
	}
	if len(resp.Cookies) == 0 {
		t.Error("expected first-party Set-Cookie")
	}
	if !strings.Contains(resp.Body, "<html") {
		t.Error("body not HTML")
	}
	for _, svc := range site.Services {
		if !strings.Contains(resp.Body, svc.Host) {
			t.Errorf("landing page missing embed for %s", svc.Host)
		}
	}
}

func TestRespondFlakyByPhase(t *testing.T) {
	e := genTest(t)
	var flaky *Site
	for _, s := range e.PornSites {
		if s.Flaky && !s.Unresponsive {
			flaky = s
			break
		}
	}
	if flaky == nil {
		t.Skip("no flaky site at this scale/seed")
	}
	if r := e.Respond(Request{Host: flaky.Host, Path: "/", Country: "ES", Phase: PhaseSanitize}); r.Status != 200 {
		t.Errorf("flaky site should answer during sanitization, got %d", r.Status)
	}
	if r := e.Respond(Request{Host: flaky.Host, Path: "/", Country: "ES", Phase: PhaseCrawl}); r.Status != 0 {
		t.Errorf("flaky site should refuse during crawl, got %d", r.Status)
	}
}

func TestRespondGeoBlocking(t *testing.T) {
	e := genTest(t)
	var blocked *Site
	for _, s := range e.PornSites {
		if s.BlockedIn["IN"] && !s.Flaky && !s.Unresponsive {
			blocked = s
			break
		}
	}
	if blocked == nil {
		t.Skip("no IN-blocked site at this scale")
	}
	if r := e.Respond(Request{Host: blocked.Host, Path: "/", Country: "IN", Phase: PhaseCrawl}); r.Status != 0 {
		t.Errorf("blocked site answered from IN: %d", r.Status)
	}
	if r := e.Respond(Request{Host: blocked.Host, Path: "/", Country: "ES", Phase: PhaseCrawl}); r.Status != 200 {
		t.Errorf("blocked site should answer from ES, got %d", r.Status)
	}
}

func TestAgeGateFlow(t *testing.T) {
	e := genTest(t)
	var gated *Site
	for _, s := range e.PornSites {
		if s.GateFor("ES") == GateSimple && !s.Flaky && !s.Unresponsive {
			gated = s
			break
		}
	}
	if gated == nil {
		t.Fatal("no gated site")
	}
	r := e.Respond(Request{Host: gated.Host, Path: "/", Country: "ES", Cookies: map[string]string{}, Phase: PhasePolicy})
	if !strings.Contains(r.Body, "age-gate") {
		t.Fatal("gate not rendered")
	}
	enter := e.Respond(Request{Host: gated.Host, Path: "/enter", Query: url.Values{"to": {"/"}}, Country: "ES", Phase: PhasePolicy})
	if enter.Status != 302 || len(enter.Cookies) == 0 {
		t.Fatalf("enter = %+v", enter)
	}
	again := e.Respond(Request{Host: gated.Host, Path: "/", Country: "ES",
		Cookies: map[string]string{"age_ok": "1"}, Phase: PhasePolicy})
	if strings.Contains(again.Body, "age-gate") {
		t.Error("gate still rendered after age_ok cookie")
	}
}

func TestCookieSyncRedirect(t *testing.T) {
	e := genTest(t)
	svc := e.ServiceByHost["exosrv.com"]
	if svc == nil {
		t.Fatal("exosrv.com missing")
	}
	// Syncing fires on a hash-selected slice of (service, site) pairs;
	// scan site names until one syncs.
	var r Response
	for i := 0; i < 64; i++ {
		r = e.Respond(Request{Host: "exosrv.com", Path: "/px.gif",
			Query: url.Values{"site": {fmt.Sprintf("x%d.com", i)}}, Country: "ES", ClientIP: "127.0.0.1",
			Cookies: map[string]string{}, Phase: PhaseCrawl})
		if r.Status == 302 {
			break
		}
	}
	if r.Status != 302 {
		t.Fatalf("pixel never redirected across 64 site contexts, got %d", r.Status)
	}
	if !strings.Contains(r.Location, "puid=") || !strings.Contains(r.Location, "/sync?") {
		t.Errorf("sync location = %q", r.Location)
	}
	if len(r.Cookies) == 0 {
		t.Error("pixel should set ID cookie")
	}
	// The redirected-to UID must equal the cookie value's ID portion.
	u, err := url.Parse(r.Location)
	if err != nil {
		t.Fatal(err)
	}
	puid := u.Query().Get("puid")
	found := false
	for _, c := range r.Cookies {
		if strings.Contains(c.Value, puid) {
			found = true
		}
	}
	if !found {
		t.Error("synced uid not present in any set cookie value")
	}
}

func TestExoClickCookieEmbedsIP(t *testing.T) {
	e := genTest(t)
	r := e.Respond(Request{Host: "exosrv.com", Path: "/px.gif", Query: url.Values{},
		Country: "ES", ClientIP: "203.0.113.9", Cookies: map[string]string{}, Phase: PhaseCrawl})
	var main string
	for _, c := range r.Cookies {
		if strings.HasPrefix(c.Name, "uid_") {
			main = c.Value
		}
	}
	if main == "" {
		t.Fatal("no main cookie set")
	}
	// base64("203.0.113.9") must appear in the value.
	if !strings.Contains(main, "MjAzLjAuMTEzLjk=") {
		t.Errorf("cookie %q does not embed base64 client IP", main)
	}
}

func TestGeoCookie(t *testing.T) {
	e := genTest(t)
	r := e.Respond(Request{Host: "fling.com", Path: "/px.gif", Query: url.Values{},
		Country: "UK", ClientIP: "127.0.0.1", Cookies: map[string]string{}, Phase: PhaseCrawl})
	found := false
	for _, c := range r.Cookies {
		decoded, _ := url.QueryUnescape(c.Value)
		if strings.Contains(decoded, "lat=51.5074") {
			found = true
		}
	}
	if !found {
		t.Errorf("fling.com cookie should embed UK coordinates: %+v", r.Cookies)
	}
}

func TestServiceScriptsInterpretable(t *testing.T) {
	e := genTest(t)
	env := jsvm.Env{UserAgent: "UA", ScreenW: 1280, ScreenH: 800}
	canvasSeen, webrtcSeen, fontSeen := false, false, false
	for _, svc := range e.Services {
		src := ServiceScript(svc, 0, "uid123", "http")
		tr := jsvm.Execute("http://"+svc.Host+"/js/tag0.js", src, env)
		if len(tr.Errors) > 0 {
			t.Errorf("%s script errors: %v", svc.Host, tr.Errors)
		}
		if svc.CanvasFP && len(tr.Canvases) > 0 {
			canvasSeen = true
		}
		if svc.WebRTC && tr.WebRTC.Used() {
			webrtcSeen = true
		}
		if svc.FontFP && tr.MeasureText["mmmmmmmmmmlli"] >= 50 {
			fontSeen = true
		}
	}
	if !canvasSeen || !webrtcSeen || !fontSeen {
		t.Errorf("script kinds executed: canvas=%v webrtc=%v font=%v", canvasSeen, webrtcSeen, fontSeen)
	}
}

func TestBenignCanvasVariantExists(t *testing.T) {
	e := genTest(t)
	env := jsvm.Env{}
	for _, svc := range e.Services {
		if !svc.CanvasFP || svc.ScriptVariants <= 2 {
			continue
		}
		src := ServiceScript(svc, svc.ScriptVariants-1, "u", "http")
		tr := jsvm.Execute("", src, env)
		if len(tr.Canvases) != 1 {
			t.Fatalf("%s benign variant canvases = %d", svc.Host, len(tr.Canvases))
		}
		c := tr.Canvases[0]
		if c.Save == 0 || c.Width >= 16 {
			t.Errorf("%s benign variant should be small with save/restore", svc.Host)
		}
		return
	}
	t.Skip("no multi-variant canvas service at this scale")
}

func TestEasyListCoverage(t *testing.T) {
	e := genTest(t)
	el := blocklist.Parse("easylist", e.BuildEasyList())
	ep := blocklist.Parse("easyprivacy", e.BuildEasyPrivacy())
	merged := blocklist.Merge("both", el, ep)
	if !merged.CoversHost("exosrv.com") {
		t.Error("exosrv.com should be EasyList-covered")
	}
	if !merged.CoversHost("google-analytics.com") {
		t.Error("google-analytics.com should be EasyPrivacy-covered")
	}
	if merged.CoversHost("xcvgdf.party") {
		t.Error("xcvgdf.party must not be covered (unindexed canvas tracker)")
	}
	// Unindexed fraction of canvas services must be large (paper: 91% of
	// scripts unindexed).
	var canvasSvcs, unindexed int
	for _, svc := range e.Services {
		if svc.CanvasFP {
			canvasSvcs++
			if !merged.CoversHost(svc.Host) {
				unindexed++
			}
		}
	}
	if canvasSvcs == 0 {
		t.Fatal("no canvas services")
	}
	// At paper scale the unlisted tail dominates (91% of *scripts*
	// unindexed); at small test scales the named, mostly-listed services
	// weigh more, so assert a conservative service-level floor.
	if frac := float64(unindexed) / float64(canvasSvcs); frac < 0.3 {
		t.Errorf("unindexed canvas service fraction = %.2f, want >= 0.3", frac)
	}
}

func TestPolicyPagesServed(t *testing.T) {
	e := genTest(t)
	var withPolicy, without *Site
	for _, s := range e.PornSites {
		if s.Flaky || s.Unresponsive {
			continue
		}
		if s.HasPolicy && withPolicy == nil {
			withPolicy = s
		}
		if !s.HasPolicy && without == nil {
			without = s
		}
	}
	if withPolicy == nil || without == nil {
		t.Fatal("need both kinds of sites")
	}
	r := e.Respond(Request{Host: withPolicy.Host, Path: "/privacy", Country: "ES", Phase: PhasePolicy})
	if r.Status != 200 || !strings.Contains(r.Body, "Privacy Policy") {
		t.Errorf("policy page = %d", r.Status)
	}
	r = e.Respond(Request{Host: without.Host, Path: "/privacy", Country: "ES", Phase: PhasePolicy})
	if r.Status != 404 {
		t.Errorf("missing policy should 404, got %d", r.Status)
	}
}

func TestPolicyLengthDistribution(t *testing.T) {
	e := Generate(Params{Seed: 3, Scale: 0.2})
	var total, n, min, max int
	min = 1 << 30
	for _, s := range e.PornSites {
		if !s.HasPolicy {
			continue
		}
		l := len(s.PolicyText)
		total += l
		n++
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if n == 0 {
		t.Fatal("no policies")
	}
	mean := total / n
	if mean < 4000 || mean > 60000 {
		t.Errorf("mean policy length = %d letters, want O(10k)", mean)
	}
	if min < 500 {
		t.Errorf("min policy length = %d, implausibly short", min)
	}
}

func TestLanguageTablesComplete(t *testing.T) {
	for _, lang := range lingo.Languages {
		for name, table := range map[string]map[string][]string{
			"AgeConfirmWords": lingo.AgeConfirmWords, "AgeWarningPhrases": lingo.AgeWarningPhrases,
			"PrivacyLinkWords": lingo.PrivacyLinkWords, "CookieBannerPhrases": lingo.CookieBannerPhrases,
			"SignupWords": lingo.SignupWords, "PremiumWords": lingo.PremiumWords,
			"PaywallWords": lingo.PaywallWords, "BannerRejectWords": lingo.BannerRejectWords,
			"BannerSettingsWords": lingo.BannerSettingsWords,
		} {
			if len(table[lang]) == 0 {
				t.Errorf("%s missing language %s", name, lang)
			}
		}
	}
}

func TestUnknownHostRefused(t *testing.T) {
	e := genTest(t)
	if r := e.Respond(Request{Host: "no-such-host.example", Path: "/"}); r.Status != 0 {
		t.Errorf("unknown host status = %d, want 0", r.Status)
	}
}

func TestHTTPSCapability(t *testing.T) {
	e := genTest(t)
	anyTrue, anyFalse := false, false
	for _, s := range e.PornSites {
		if e.HTTPSCapable(s.Host) {
			anyTrue = true
		} else {
			anyFalse = true
		}
	}
	if !anyTrue || !anyFalse {
		t.Error("expected a mix of HTTPS and plain-HTTP sites")
	}
	// Popularity gradient: top-1k sites should support HTTPS far more often.
	var topY, topN, tailY, tailN int
	for _, s := range e.PornSites {
		if s.BaseRank <= 10000 {
			if s.HTTPS {
				topY++
			} else {
				topN++
			}
		} else if s.BaseRank > 100000 {
			if s.HTTPS {
				tailY++
			} else {
				tailN++
			}
		}
	}
	if topY+topN > 5 && tailY+tailN > 5 {
		topFrac := float64(topY) / float64(topY+topN)
		tailFrac := float64(tailY) / float64(tailY+tailN)
		if topFrac <= tailFrac {
			t.Errorf("HTTPS support should decay with rank: top=%.2f tail=%.2f", topFrac, tailFrac)
		}
	}
}

func TestDisconnectListIncomplete(t *testing.T) {
	e := genTest(t)
	dl := e.DisconnectList()
	if dl["google-analytics.com"] != "Alphabet" {
		t.Error("Disconnect list should know Alphabet")
	}
	if _, ok := dl["exoclick.com"]; ok {
		t.Error("Disconnect list must not know the adult-specialized ExoClick")
	}
}

func TestRankingDatasetIncludesAllSites(t *testing.T) {
	e := genTest(t)
	d := e.RankingDataset()
	if d.Len() != len(e.AllSites()) {
		t.Errorf("ranking dataset has %d hosts, want %d", d.Len(), len(e.AllSites()))
	}
	st := d.StatsFor("pornhub.com")
	if st.DaysPresent != 365 || st.Best > 1000 {
		t.Errorf("pornhub longitudinal stats off: %+v", st)
	}
}

func TestFalseCandidatesShape(t *testing.T) {
	e := genTest(t)
	var dead, keywordFP int
	for _, s := range e.FalseCandidates {
		if s.Unresponsive {
			dead++
		}
		if s.KeywordFalsePositive {
			keywordFP++
			if !s.KeywordInName {
				t.Errorf("keyword FP %s lacks keyword in name", s.Host)
			}
		}
	}
	if dead == 0 || keywordFP == 0 {
		t.Errorf("dead=%d keywordFP=%d, want both > 0", dead, keywordFP)
	}
}

func TestRegularKeywordFalsePositiveContent(t *testing.T) {
	e := genTest(t)
	for _, s := range e.FalseCandidates {
		if !s.KeywordFalsePositive {
			continue
		}
		body := e.RenderLanding(s, PageContext{Country: "ES", Scheme: "http"})
		if _, hit := lingo.ContainsAny(body, lingo.AdultContentWords); hit {
			t.Errorf("false positive %s renders adult content markers", s.Host)
		}
		return
	}
	t.Skip("no keyword FP at this scale")
}
