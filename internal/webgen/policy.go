package webgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Privacy-policy generation. Real-world policies are heavily template-based
// — the paper found 76% of all policy pairs with TF-IDF similarity above
// 0.5, and used near-identical policies (coefficient 1) to discover owner
// clusters. The generator reproduces that structure: a large pool of shared
// boilerplate sections, a few template "families" differing in a minority
// of sections, and per-owner substitutions so sites of the same company
// produce near-identical text.

var policySharedSections = []string{
	`This privacy statement explains what personal data {COMPANY} collects from you through our interactions with you on {SITE} and how we use that data. Personal data means any information relating to an identified or identifiable natural person, including online identifiers such as device identifiers and network addresses.`,
	`We collect data to operate effectively and provide you the best experiences with our services. You provide some of this data directly, and we get some of it by recording how you interact with our services, for example by using technologies that record your browser type, operating system, referring pages, pages visited and the dates and times of access.`,
	`The data we collect depends on the context of your interactions with {SITE} and the choices you make, including your privacy settings and the features you use. Usage information is collected automatically when you visit the website and may include your approximate location derived from your network address.`,
	`We retain personal data for as long as necessary to provide the services and fulfill the transactions you have requested, or for other essential purposes such as complying with our legal obligations, resolving disputes and enforcing our agreements. Retention periods vary by data category and context.`,
	`You may have rights under applicable law to request access to, rectification of, or erasure of your personal data, to restrict or object to certain processing, and to data portability. To exercise any of these rights please contact us at {EMAIL}. We will respond to requests within the period required by applicable law.`,
	`We take reasonable technical and organizational measures designed to protect personal data from loss, misuse and unauthorized access, disclosure, alteration and destruction. However, no method of transmission over the Internet or method of electronic storage is completely secure.`,
	`Our services are not directed to persons under the age of eighteen, and we do not knowingly collect personal data from minors. Access to the website requires that you confirm you are of legal age in your jurisdiction. If we learn that we have collected data from a minor we will delete it promptly.`,
	`We may update this privacy statement from time to time to reflect changes to our practices or for other operational, legal or regulatory reasons. When we post changes to this statement we will revise the last updated date at the top of the statement and, where appropriate, notify you.`,
	`The website may contain links to other websites whose privacy practices differ from ours. If you submit personal data to any of those websites your information is governed by their privacy statements. We encourage you to carefully read the privacy statement of any website you visit.`,
	`Where we rely on your consent to process personal data you may withdraw that consent at any time. Where we rely on legitimate interests, you may object to the processing. Withdrawal of consent does not affect the lawfulness of processing based on consent before its withdrawal.`,
	`If you create an account or subscribe to premium services we process the registration data you provide, such as your electronic mail address and payment references handled by our payment processors. Payment card numbers are processed exclusively by certified payment providers and never stored on our systems.`,
	`Aggregated or de-identified information that can no longer reasonably be used to identify you may be used for any lawful purpose, including analytics, research, improving the services and developing new features, without further notice to you.`,
	`We may disclose personal data if required to do so by law or in the good-faith belief that such action is necessary to comply with a legal obligation, protect and defend our rights or property, prevent fraud, or protect the personal safety of users of the services or the public.`,
	`For visitors located in certain jurisdictions a supervisory authority exists to hear complaints regarding the processing of personal data. You have the right to lodge a complaint with your local authority if you consider that the processing of your personal data infringes applicable law.`,
}

// policySharedSectionsB is an alternative boilerplate dialect: a minority
// of policies are written from scratch rather than from the dominant
// template, which is what keeps the paper's all-pairs similarity at 76%
// rather than 100% — cross-dialect pairs score low.
var policySharedSectionsB = []string{
	`Welcome, and thank you for trusting {SITE}. This notice tells you, in plain words, what happens to the traces you leave while browsing here: which records our machines write down, why they do it, and how long those records stick around before they are wiped.`,
	`Whenever your browser asks our servers for a page or a clip, the request carries technical baggage — an address for the reply, the name of your browser, the page you came from. Our logs keep that baggage for a while because running a video platform without logs is like flying blind.`,
	`Registration is optional almost everywhere on the platform. If you do open an account, the e-mail you typed, the alias you chose and a salted digest of your passphrase live in our membership database until you close the account or two years pass without a login.`,
	`Billing never touches our disks. Card numbers go straight to the payment house, which sends us back nothing but a token and a yes-or-no. Chargebacks, refunds and fraud reviews are handled on the payment house's systems under their own rules.`,
	`You can write to us at {EMAIL} to ask what we hold about you, to have mistakes fixed, or to have the lot erased. We answer within a month. If our answer disappoints you, the supervisory authority of your home country will hear your complaint.`,
	`Our player measures buffering, bitrate switches and abandoned sessions. Those measurements steer which delivery node serves your next request. They are aggregated nightly and the raw rows are dropped after a fortnight.`,
	`Minors have no business here. The entrance asks for a confirmation of age, and any account credibly reported to belong to a minor is frozen first and questioned later. Records collected before the freeze are purged.`,
	`Some buttons on the platform are wired to outside companies — the share widgets, the advertising slots, the statistics beacons. Press them, or merely load a page that contains them, and those companies learn of your visit under their own notices, not this one.`,
	`We keep backups. Backups mean that erased data may linger, encrypted and offline, for up to ninety days after erasure, until the backup cycle overwrites them. Nobody reads backups except to restore service after a disaster.`,
	`This notice changes when the platform changes. The date at the bottom moves, and material changes are flagged on the landing page for thirty days. Continuing to browse after that is taken as having read the new text.`,
	`Questions, complaints, compliments and subject-access requests all go to the same mailbox: {EMAIL}. A human reads it. Expect an answer in working days, not minutes.`,
	`Where the law of your country grants you more than this notice promises, the law wins. Where this notice promises more than the law demands, the notice wins. We wrote it to be kept, not framed.`,
}

// Distinctive sections per template family.
var policyFamilies = [][]string{
	{
		`Content delivery on {SITE} is supported by advertising. Advertisements displayed on the website are provided by advertising networks specialized in adult entertainment, which may use their own identifiers to cap the frequency of advertisements and measure their performance across publishers within their networks.`,
		`Video playback statistics, category preferences and search terms entered on the website may be processed in order to rank content, detect abusive automation and personalize the order in which content is presented during your session.`,
	},
	{
		`{SITE} operates as part of a federated network of websites under common operation. Content, member accounts and technical infrastructure may be shared across the network, and your data may be transferred between network sites under the safeguards described in this statement.`,
		`We process technical telemetry including bandwidth measurements, player error rates and content delivery node selection in order to operate our streaming infrastructure efficiently and to plan capacity across regions.`,
	},
	{
		`Live interactive services on {SITE} involve the processing of chat messages, tips and performer interactions in real time. Moderation systems, both automated and human, review such interactions for compliance with our terms of service and applicable law.`,
		`Affiliate and referral programs operated through the website involve the processing of referral identifiers in order to attribute registrations and purchases to the referring partner and to calculate commissions owed.`,
	},
}

const policyCookieSection = `We and our partners use cookies and similar technologies, such as pixels and local storage, to store identifiers and preferences on your device. Cookies are small text files placed on your device that allow us to recognize your browser, keep session state, measure audiences and, where permitted, personalize content and advertising. You can configure your browser to refuse cookies, although parts of the website may then not function correctly.`

const policyCookieSectionB = `A cookie is a crumb of text your browser agrees to hold for us. Ours remember your player volume, your session, and — if the advertising slots are on — a number that tells the ad machinery it has met your browser before. Sweep the cookies away in your browser settings whenever you like; the site limps but works.`

const policyThirdPartySection = `Certain features on the website are provided by third parties, including analytics providers, advertising networks, content delivery networks and social sharing tools. These third parties may collect or receive information about your use of the website, including your network address and identifiers stored in cookies, and may combine it with information collected across other websites to provide measurement and advertising services.`

const policyThirdPartySectionB = `Not everything on this page is ours. Third parties — ad brokers, statistics counters, delivery networks — plant their own code here, and that code phones home when you load it. What those third parties do with the call is written in their notices; we chose them, but we do not run them.`

const policyGDPRSection = `For users in the European Economic Area we process personal data in accordance with the General Data Protection Regulation (GDPR) (Regulation (EU) 2016/679). The legal bases on which we rely are consent, performance of a contract and legitimate interests. Data concerning a natural person's sex life or sexual orientation receives the special protection required by Article 9 of the GDPR and is not processed except with your explicit consent.`

const policyGDPRSectionB = `European visitors are covered by the General Data Protection Regulation (GDPR), and we treat that as the floor, not the ceiling. Anything touching the sensitive categories of Article 9 — and on a site like this, plenty does — moves only with your explicit say-so.`

const policyFiller = `Additional operational records, including server logs, diagnostic events, crash reports, content delivery measurements and security audit trails, are generated in the ordinary course of operating the website and retained according to our internal retention schedules before being deleted or irreversibly anonymized.`

const policyFillerB = `Housekeeping data — rotation schedules, capacity graphs, error budgets, incident timelines and the other residue of keeping a fleet of machines upright — accumulates as we operate and is shredded on its own calendar, untouched by anything in this notice.`

// policyIdentity produces the organization disclosure, which the owner
// discovery of Section 4.1 mines. Most sites disclose nothing useful.
func policyIdentity(rng *rand.Rand, s *Site) string {
	if s.Owner == nil {
		return ""
	}
	if rng.Float64() < 0.6 {
		return fmt.Sprintf(`The data controller for %s is %s. `, s.Host, s.Owner.Name)
	}
	// Vague: postal address only (the paper highlights this pattern).
	return fmt.Sprintf(`The data controller can be reached at P.O. Box %d, Suite %d. `, 100+rng.Intn(9000), 1+rng.Intn(400))
}

// GeneratePolicy fills s.PolicyText. Sites owned by the same company use
// the same template family, section selection and substitutions, differing
// only in the {SITE} token — giving the near-duplicate pairs the clustering
// step finds.
func generatePolicy(rng *rand.Rand, s *Site, ownerSeeds map[*Company]int64) {
	if !s.HasPolicy {
		return
	}
	var prng *rand.Rand
	if s.Owner != nil {
		seed, ok := ownerSeeds[s.Owner]
		if !ok {
			seed = rng.Int63()
			ownerSeeds[s.Owner] = seed
		}
		prng = rand.New(rand.NewSource(seed))
	} else {
		prng = rand.New(rand.NewSource(rng.Int63()))
	}

	if s.Owner != nil {
		// Cluster members share the owner's disclosure profile so their
		// policies come out template-identical (modulo the site name).
		s.PolicyMentionsGDPR = prng.Float64() < policyGDPRFrac*2 // big operators mention GDPR more
		s.PolicyDisclosesCookies = prng.Float64() < 0.85
		s.PolicyDisclosesThirdParties = prng.Float64() < 0.75
	}
	family := policyFamilies[prng.Intn(len(policyFamilies))]
	company := "the operator of this website"
	email := fmt.Sprintf("privacy@%s", s.Host)
	if s.Owner != nil {
		company = s.Owner.Name
	}

	// Dialect choice: ~84% of policies derive from the dominant template
	// pool, the rest are independently written (dialect B). Same-dialect
	// pairs land above 0.5 TF-IDF similarity, cross-dialect pairs below —
	// reproducing the paper's 76% similar-pair share.
	pool := policySharedSections
	dialectB := prng.Float64() < 0.10
	if dialectB {
		pool = policySharedSectionsB
	}

	// Section selection: most shared sections, the family sections, and a
	// variable amount of filler to spread the length distribution
	// (mean ~17k letters, long right tail).
	var b strings.Builder
	b.WriteString("Privacy Policy\n\n")
	b.WriteString(policyIdentity(prng, s))
	nShared := 9 + prng.Intn(len(pool)-8)
	if prng.Float64() < 0.05 {
		nShared = 3 // the occasional skeletal policy (paper min: 1,088 letters)
	}
	perm := prng.Perm(len(pool))
	for i := 0; i < nShared; i++ {
		b.WriteString(pool[perm[i]])
		b.WriteString("\n\n")
	}
	if !dialectB {
		for _, sec := range family {
			b.WriteString(sec)
			b.WriteString("\n\n")
		}
	}
	cookieSec, tpSec, gdprSec, filler := policyCookieSection, policyThirdPartySection, policyGDPRSection, policyFiller
	if dialectB {
		cookieSec, tpSec, gdprSec, filler = policyCookieSectionB, policyThirdPartySectionB, policyGDPRSectionB, policyFillerB
	}
	if s.PolicyDisclosesCookies {
		b.WriteString(cookieSec)
		b.WriteString("\n\n")
	}
	if s.PolicyDisclosesThirdParties {
		b.WriteString(tpSec)
		b.WriteString("\n\n")
	}
	if s.PolicyMentionsGDPR {
		b.WriteString(gdprSec)
		b.WriteString("\n\n")
	}
	if s.PolicyListsAllThirdParties {
		b.WriteString("The complete list of third-party services embedded on this website is: ")
		b.WriteString(strings.Join(s.ServiceHosts(), ", "))
		b.WriteString(".\n\n")
	}
	// Length spreading: filler repetition targets the paper's mean of
	// ~17,159 letters with a long right tail; a rare site gets a gigantic
	// policy (the paper's maximum was 243,649 letters).
	reps := prng.Intn(45)
	if nShared == 3 {
		reps = 0
	}
	if prng.Float64() < 0.01 {
		reps = 500 + prng.Intn(220)
	}
	for i := 0; i < reps; i++ {
		b.WriteString(filler)
		b.WriteString("\n\n")
	}

	text := b.String()
	text = strings.ReplaceAll(text, "{SITE}", s.Host)
	text = strings.ReplaceAll(text, "{COMPANY}", company)
	text = strings.ReplaceAll(text, "{EMAIL}", email)
	s.PolicyText = text
}
