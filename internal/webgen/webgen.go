package webgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"pornweb/internal/ranking"
)

// Ecosystem is the fully generated world: the ground truth the measurement
// pipeline is evaluated against, plus the virtual server behaviour.
type Ecosystem struct {
	Params Params

	Companies map[string]*Company
	Services  []*Service

	PornSites    []*Site // the true pornographic population
	RegularSites []*Site // the reference corpus
	// FalseCandidates are corpus-compilation false positives: dead hosts
	// and keyword-matching regular sites.
	FalseCandidates []*Site

	SiteByHost    map[string]*Site
	ServiceByHost map[string]*Service

	uniqueHosts     map[string]*Site // minted long-tail host -> embedding site
	extraFirstParty map[string]*Site // extra first-party host -> owning site

	uids   *uidStore
	faults *faultInjector
}

// Generate builds the ecosystem deterministically from the parameters.
func Generate(p Params) *Ecosystem {
	if p.Scale <= 0 {
		p.Scale = 1
	}
	rng := rand.New(rand.NewSource(int64(p.Seed)))
	names := newNameGen(rng)
	companies := buildCompanies()
	services := buildServices(p, rng, names, companies)
	pornSites := buildPornSites(p, rng, names, companies, services)
	regularSites := buildRegularSites(p, rng, names, services)
	falseCandidates := buildFalseCandidates(p, rng, names)

	e := &Ecosystem{
		Params:          p,
		Companies:       companies,
		Services:        services,
		PornSites:       pornSites,
		RegularSites:    regularSites,
		FalseCandidates: falseCandidates,
		SiteByHost:      map[string]*Site{},
		ServiceByHost:   map[string]*Service{},
		uniqueHosts:     map[string]*Site{},
		extraFirstParty: map[string]*Site{},
		uids:            newUIDStore(p.Seed ^ 0xc0ffee),
		faults:          newFaultInjector(p),
	}
	ownerSeeds := map[*Company]int64{}
	for _, s := range e.AllSites() {
		e.SiteByHost[s.Host] = s
		for _, u := range s.UniqueHosts {
			e.uniqueHosts[u] = s
		}
		for _, h := range s.CountryAssets {
			e.uniqueHosts[h] = s
		}
		for _, fp := range s.ExtraFirstParty {
			e.extraFirstParty[fp] = s
		}
		generatePolicy(rng, s, ownerSeeds)
	}
	for _, svc := range services {
		e.ServiceByHost[svc.Host] = svc
	}
	return e
}

// AllSites returns every site of every kind, including false candidates.
func (e *Ecosystem) AllSites() []*Site {
	out := make([]*Site, 0, len(e.PornSites)+len(e.RegularSites)+len(e.FalseCandidates))
	out = append(out, e.PornSites...)
	out = append(out, e.RegularSites...)
	out = append(out, e.FalseCandidates...)
	return out
}

// AllHosts returns every hostname the virtual server can answer for.
func (e *Ecosystem) AllHosts() []string {
	var out []string
	for h := range e.SiteByHost {
		out = append(out, h)
	}
	for h := range e.ServiceByHost {
		out = append(out, h)
	}
	for h := range e.uniqueHosts {
		out = append(out, h)
	}
	for h := range e.extraFirstParty {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// RankingDataset builds the longitudinal Alexa-analog for the whole
// universe: corpus sites plus false candidates (all of which were rank-
// indexed — that is how the keyword search found them).
func (e *Ecosystem) RankingDataset() *ranking.Dataset {
	d := ranking.New(e.Params.Seed ^ 0xa1e4a)
	for _, s := range e.AllSites() {
		vol := 0.0 // default from base rank
		if s.BaseRank <= 1000 {
			// Only the named flagships have sub-1,000 bases; they never
			// leave the top-1K (the paper's 16 permanently-top-1K sites).
			vol = 0.04
		}
		d.Add(ranking.Site{Host: s.Host, BaseRank: s.BaseRank, Volatility: vol})
	}
	return d
}

// AggregatorIndex lists the hosts indexed by the porn-aggregator sites
// (corpus source 1).
func (e *Ecosystem) AggregatorIndex() []string {
	var out []string
	for _, s := range e.AllSites() {
		if s.InAggregators {
			out = append(out, s.Host)
		}
	}
	sort.Strings(out)
	return out
}

// AlexaAdultCategory lists the hosts in the Alexa Adult category (corpus
// source 2).
func (e *Ecosystem) AlexaAdultCategory() []string {
	var out []string
	for _, s := range e.AllSites() {
		if s.InAlexaAdult {
			out = append(out, s.Host)
		}
	}
	sort.Strings(out)
	return out
}

// BuildEasyList produces the synthetic EasyList: network rules for the
// blocklist-indexed advertising services. BuildEasyPrivacy covers the
// analytics/data-broker side. Together they deliberately miss the
// porn-specialized long tail, reproducing the paper's finding that 91% of
// canvas-fingerprinting scripts are invisible to the lists.
func (e *Ecosystem) BuildEasyList() []string {
	lines := []string{"[Adblock Plus 2.0]", "! Title: Synthetic EasyList"}
	for _, svc := range e.sortedServices() {
		if !svc.InBlocklist {
			continue
		}
		switch svc.Category {
		case CatAdNetwork, CatTrafficTrade, CatCryptoMiner, CatSocial, CatCDN, CatDating:
			lines = append(lines, ruleFor(svc))
		}
	}
	return lines
}

// BuildEasyPrivacy produces the synthetic EasyPrivacy list.
func (e *Ecosystem) BuildEasyPrivacy() []string {
	lines := []string{"[Adblock Plus 2.0]", "! Title: Synthetic EasyPrivacy"}
	for _, svc := range e.sortedServices() {
		if !svc.InBlocklist {
			continue
		}
		switch svc.Category {
		case CatAnalytics, CatDataBroker:
			lines = append(lines, ruleFor(svc))
		}
	}
	return lines
}

func ruleFor(svc *Service) string {
	// Most EasyList entries for pure trackers are domain-anchored
	// third-party rules; a few CDN-ish entries are path-scoped (the
	// bbc.co.uk/analytics pattern), which leaves the rest of the host
	// unlisted.
	switch svc.Category {
	case CatCDN, CatHosting:
		return fmt.Sprintf("||%s/px.gif", svc.Base)
	default:
		return fmt.Sprintf("||%s^$third-party", svc.Base)
	}
}

func (e *Ecosystem) sortedServices() []*Service {
	out := make([]*Service, len(e.Services))
	copy(out, e.Services)
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

// ServiceForBase returns any service whose registrable domain matches base.
func (e *Ecosystem) ServiceForBase(base string) *Service {
	for _, svc := range e.Services {
		if svc.Base == base {
			return svc
		}
	}
	return nil
}

// DisconnectList builds the (deliberately incomplete) Disconnect-style
// domain-to-company seed map: it knows the big consumer brands but misses
// the adult-specialized ecosystem, like the real list the paper found
// lacking (142 companies resolved vs 1,014 with certificates).
func (e *Ecosystem) DisconnectList() map[string]string {
	wellKnown := map[string]bool{
		"Alphabet": true, "Facebook": true, "Oracle": true, "Yandex": true,
		"Amazon": true, "Cloudflare": true, "TowerData": true, "ThreatMetrix": true,
	}
	out := map[string]string{}
	for _, svc := range e.Services {
		if svc.Org != nil && wellKnown[svc.Org.Name] {
			out[svc.Base] = svc.Org.Name
		}
	}
	return out
}

// GroundTruthSummary prints headline ground-truth counts (used by
// cmd/ecosystem for debugging).
func (e *Ecosystem) GroundTruthSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "porn sites:      %d\n", len(e.PornSites))
	fmt.Fprintf(&b, "regular sites:   %d\n", len(e.RegularSites))
	fmt.Fprintf(&b, "false candidates:%d\n", len(e.FalseCandidates))
	fmt.Fprintf(&b, "services:        %d\n", len(e.Services))
	var ats, canvas, webrtc, sync int
	for _, svc := range e.Services {
		if svc.Category.IsATS() {
			ats++
		}
		if svc.CanvasFP {
			canvas++
		}
		if svc.WebRTC {
			webrtc++
		}
		if len(svc.SyncPartners) > 0 {
			sync++
		}
	}
	fmt.Fprintf(&b, "  ATS:           %d\n", ats)
	fmt.Fprintf(&b, "  canvas FP:     %d\n", canvas)
	fmt.Fprintf(&b, "  WebRTC:        %d\n", webrtc)
	fmt.Fprintf(&b, "  syncing:       %d\n", sync)
	return b.String()
}
