package webgen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
)

// Tracker-script generation. Every service exposes script variants at
// /js/tag<N>.js; the content is deterministic per (service, variant) except
// for the visitor identifier, which the server templates into the script
// exactly like real trackers template account and visitor IDs into their
// snippets. The scripts are interpreted by internal/jsvm during the crawl,
// so whatever they do is what the instrumentation records.

var canvasTexts = []string{
	"Cwm fjordbank glyphs vext quiz 1234567890",
	"How quickly daft jumping zebras vex!?",
	"Sphinx of black quartz, judge my vow 98765",
	"Pack my box with five dozen liquor jugs <canvas> 1.0",
	"Jackdaws love my big sphinx of quartz #fingerprint",
	"The five boxing wizards jump quickly @0123456789",
}

var canvasColors = []string{"#f60", "#069", "#ff0066", "rgb(10,20,30)", "#123456", "rgba(255,0,102,0.7)", "#0f9d58", "#222"}

// scriptRNG derives a deterministic RNG for a (service, variant) pair.
func scriptRNG(host string, variant int) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(host))
	h.Write([]byte{byte(variant), byte(variant >> 8)})
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// canvasFPScript emits a canvas-fingerprinting script satisfying the
// Englehardt criteria: canvas >= 16px, >= 2 colors, > 10 distinct text
// characters, a toDataURL or large getImageData call, and no
// save/restore/addEventListener.
func canvasFPScript(host string, variant int, uid, beaconURL string) string {
	rng := scriptRNG(host, variant)
	text := canvasTexts[rng.Intn(len(canvasTexts))]
	c1 := canvasColors[rng.Intn(len(canvasColors))]
	c2 := canvasColors[rng.Intn(len(canvasColors))]
	for c2 == c1 {
		c2 = canvasColors[rng.Intn(len(canvasColors))]
	}
	w := 200 + rng.Intn(400)
	hgt := 40 + rng.Intn(200)
	var b strings.Builder
	fmt.Fprintf(&b, "var cv = document.createElement('canvas');\n")
	fmt.Fprintf(&b, "cv.width = %d;\ncv.height = %d;\n", w, hgt)
	b.WriteString("var ctx = cv.getContext('2d');\n")
	fmt.Fprintf(&b, "ctx.fillStyle = '%s';\nctx.fillRect(%d, 1, 62, 20);\n", c1, rng.Intn(100))
	fmt.Fprintf(&b, "ctx.fillStyle = '%s';\nctx.fillText(\"%s\", 2, 15);\n", c2, text)
	if rng.Intn(3) == 0 {
		fmt.Fprintf(&b, "var px = ctx.getImageData(0, 0, %d, %d);\n", w, hgt)
	} else {
		b.WriteString("var fp = cv.toDataURL();\n")
	}
	fmt.Fprintf(&b, "var img = new Image();\nimg.src = '%s?cfp=' + '%s';\n", beaconURL, uid)
	return b.String()
}

// benignCanvasScript draws UI decoration that must NOT be classified as
// fingerprinting: tiny canvas, single color, save/restore usage.
func benignCanvasScript(host string, variant int) string {
	rng := scriptRNG(host, variant+1000)
	var b strings.Builder
	b.WriteString("var cv = document.createElement('canvas');\n")
	fmt.Fprintf(&b, "cv.width = %d;\ncv.height = %d;\n", 8+rng.Intn(7), 8+rng.Intn(7))
	b.WriteString("var ctx = cv.getContext('2d');\n")
	b.WriteString("ctx.save();\n")
	fmt.Fprintf(&b, "ctx.fillStyle = '%s';\n", canvasColors[rng.Intn(len(canvasColors))])
	b.WriteString("ctx.fillRect(0, 0, 8, 8);\n")
	b.WriteString("ctx.restore();\n")
	b.WriteString("cv.addEventListener('click', handler);\n")
	return b.String()
}

// fontFPScript probes installed fonts by measuring the same string with
// many different font settings (>= 50 measureText calls on one text).
func fontFPScript(uid, beaconURL string) string {
	var b strings.Builder
	b.WriteString("var cv = document.createElement('canvas');\n")
	b.WriteString("var ctx = cv.getContext('2d');\n")
	b.WriteString("for (var i = 0; i < 64; i++) {\n")
	b.WriteString("  ctx.font = '12px probefont' + i;\n")
	b.WriteString("  ctx.measureText('mmmmmmmmmmlli');\n")
	b.WriteString("}\n")
	fmt.Fprintf(&b, "var img = new Image();\nimg.src = '%s?ffp=' + '%s';\n", beaconURL, uid)
	return b.String()
}

// webrtcScript harvests local network candidates via RTCPeerConnection.
func webrtcScript(host string, variant int, uid, beaconURL string) string {
	rng := scriptRNG(host, variant+2000)
	var b strings.Builder
	b.WriteString("var pc = new RTCPeerConnection();\n")
	b.WriteString("pc.createDataChannel('');\n")
	b.WriteString("pc.onicecandidate = onCand;\n")
	b.WriteString("pc.createOffer();\n")
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "navigator.sendBeacon('%s?rtc=' + '%s');\n", beaconURL, uid)
	} else {
		fmt.Fprintf(&b, "fetch('%s?rtc=' + '%s');\n", beaconURL, uid)
	}
	return b.String()
}

// analyticsScript is the plain audience-measurement tag: reads
// fingerprintable properties, sets a cookie via document.cookie and beacons.
func analyticsScript(host string, variant int, uid, beaconURL string, cookieName string) string {
	rng := scriptRNG(host, variant+3000)
	var b strings.Builder
	b.WriteString("var ua = navigator.userAgent;\n")
	b.WriteString("var sw = screen.width;\n")
	b.WriteString("var sh = screen.height;\n")
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "document.cookie = '%s=%s; path=/; max-age=31536000';\n", cookieName, uid)
	}
	fmt.Fprintf(&b, "var img = new Image();\nimg.src = '%s?uid=%s&sw=' + sw + '&sh=' + sh;\n", beaconURL, uid)
	if rng.Intn(3) == 0 {
		fmt.Fprintf(&b, "localStorage.setItem('%s_ls', '%s');\n", cookieName, uid)
	}
	return b.String()
}

// minerScript mimics a browser cryptominer bootstrap.
func minerScript(host, uid string, scheme string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "var minerKey = '%s';\n", uid)
	fmt.Fprintf(&b, "fetch('%s://%s/lib/worker.wasm?key=' + minerKey);\n", scheme, host)
	fmt.Fprintf(&b, "var hashrate = 0;\n")
	return b.String()
}

// adScript injects a banner and fires an impression pixel. The pixel
// carries the publisher site (real ad tags know their placement), which is
// what lets the server's per-site sync gating apply to impressions too.
func adScript(host string, variant int, uid, pixelURL, site string) string {
	rng := scriptRNG(host, variant+4000)
	var b strings.Builder
	fmt.Fprintf(&b, "var slot = 'zone-%d';\n", rng.Intn(900)+100)
	fmt.Fprintf(&b, "var img = new Image();\nimg.src = '%s?site=%s&imp=%s&slot=' + slot;\n", pixelURL, site, uid)
	return b.String()
}

// ServiceScript renders variant v of the service's tracker script with the
// visitor identifier and publisher site templated in. scheme is "http" or
// "https" depending on how the service was reached.
func ServiceScript(svc *Service, variant int, uid, scheme string) string {
	return ServiceScriptFor(svc, variant, uid, scheme, "")
}

// ServiceScriptFor is ServiceScript with the publisher-site context real
// tag servers template into their snippets.
func ServiceScriptFor(svc *Service, variant int, uid, scheme, site string) string {
	beacon := fmt.Sprintf("%s://%s/collect", scheme, svc.Host)
	pixel := fmt.Sprintf("%s://%s/px.gif", scheme, svc.Host)
	nv := svc.ScriptVariants
	if nv < 1 {
		nv = 1
	}
	variant = ((variant % nv) + nv) % nv
	switch {
	case svc.CanvasFP:
		// The last variant of a canvas service is benign decoration — real
		// trackers bundle both, and the detector must tell them apart.
		if nv > 2 && variant == nv-1 {
			return benignCanvasScript(svc.Host, variant)
		}
		return canvasFPScript(svc.Host, variant, uid, beacon)
	case svc.FontFP:
		return fontFPScript(uid, beacon)
	case svc.WebRTC:
		return webrtcScript(svc.Host, variant, uid, beacon)
	case svc.CryptoMiner:
		return minerScript(svc.Host, uid, scheme)
	case svc.Category == CatAdNetwork || svc.Category == CatTrafficTrade:
		return adScript(svc.Host, variant, uid, pixel, site)
	default:
		return analyticsScript(svc.Host, variant, uid, beacon, cookieNameFor(svc, 0))
	}
}

// InlineSiteScript is the first-party snippet a site embeds inline: it
// reports the site's own visitor ID to its analytics service (first-party
// cookie -> third-party URL, i.e. a site-origin cookie sync) and, for
// InlineCanvasFP sites, runs a first-party canvas fingerprint.
func InlineSiteScript(s *Site, fpUID string, analyticsHost, scheme string) string {
	var b strings.Builder
	if analyticsHost != "" && fpUID != "" {
		fmt.Fprintf(&b, "var px = new Image();\npx.src = '%s://%s/collect?fpuid=%s&site=%s';\n",
			scheme, analyticsHost, fpUID, s.Host)
	}
	if s.InlineCanvasFP {
		b.WriteString(canvasFPScript(s.Host, 0, fpUID, fmt.Sprintf("%s://%s/selfmetrics", scheme, s.Host)))
	}
	return b.String()
}

// cookieNameFor derives the i-th cookie name a service sets.
func cookieNameFor(svc *Service, i int) string {
	names := []string{"uid", "xid", "sid", "vid", "tid"}
	base := names[i%len(names)]
	h := fnv.New32a()
	h.Write([]byte(svc.Base))
	return fmt.Sprintf("%s_%x", base, h.Sum32()&0xffff)
}
