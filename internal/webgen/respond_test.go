package webgen

import (
	"net/url"
	"strings"
	"testing"
)

func ecoT(t *testing.T) *Ecosystem {
	t.Helper()
	return Generate(Params{Seed: 7, Scale: 0.02})
}

func TestAdIframeChain(t *testing.T) {
	e := ecoT(t)
	r := e.Respond(Request{Host: "exosrv.com", Path: "/ad",
		Query: url.Values{"site": {"x.com"}, "slot": {"a0"}}, Country: "ES",
		ClientIP: "127.0.0.1", Cookies: map[string]string{}, Phase: PhaseCrawl})
	if r.Status != 200 || !strings.Contains(r.Body, "px.gif") {
		t.Fatalf("ad response = %d, body %q", r.Status, r.Body)
	}
	// The ad embeds a nested iframe to a partner ad network (inclusion
	// chain), marked with hop=1 so the chain terminates.
	if !strings.Contains(r.Body, "/ad?site=x.com&hop=1") {
		t.Errorf("no nested ad iframe in %q", r.Body)
	}
	r2 := e.Respond(Request{Host: "exosrv.com", Path: "/ad",
		Query: url.Values{"site": {"x.com"}, "hop": {"1"}}, Country: "ES",
		ClientIP: "127.0.0.1", Cookies: map[string]string{}, Phase: PhaseCrawl})
	if strings.Contains(r2.Body, "hop=1\"></iframe>") && strings.Count(r2.Body, "<iframe") > 0 {
		t.Error("hop=1 ad must not nest further")
	}
}

func TestCollectEndpoint(t *testing.T) {
	e := ecoT(t)
	r := e.Respond(Request{Host: "google-analytics.com", Path: "/collect",
		Query: url.Values{"uid": {"x"}}, Country: "ES", ClientIP: "127.0.0.1",
		Cookies: map[string]string{}, Phase: PhaseCrawl})
	if r.Status != 204 {
		t.Errorf("collect status = %d, want 204", r.Status)
	}
	if len(r.Cookies) == 0 {
		t.Error("collect should set the analytics cookie")
	}
}

func TestServiceCookieRefreshKeepsValue(t *testing.T) {
	e := ecoT(t)
	first := e.Respond(Request{Host: "google-analytics.com", Path: "/px.gif",
		Query: url.Values{"nosync": {"1"}}, Country: "ES", ClientIP: "127.0.0.1",
		Cookies: map[string]string{}, Phase: PhaseCrawl})
	var name, value string
	for _, c := range first.Cookies {
		if strings.HasPrefix(c.Name, "uid_") {
			name, value = c.Name, c.Value
		}
	}
	if name == "" {
		t.Fatal("no uid cookie")
	}
	second := e.Respond(Request{Host: "google-analytics.com", Path: "/px.gif",
		Query: url.Values{"nosync": {"1"}}, Country: "ES", ClientIP: "127.0.0.1",
		Cookies: map[string]string{name: value}, Phase: PhaseCrawl})
	refreshed := false
	for _, c := range second.Cookies {
		if c.Name == name {
			refreshed = true
			if c.Value != value {
				t.Errorf("refresh changed value: %q -> %q", value, c.Value)
			}
		}
	}
	if !refreshed {
		t.Error("tracker must refresh its cookie on every hit")
	}
}

func TestSyncChainDepthBounded(t *testing.T) {
	e := ecoT(t)
	// Follow the sync chain manually; it must terminate within 3 hops.
	// A site-less pixel always syncs (the per-site gating needs a site).
	req := Request{Host: "exosrv.com", Path: "/px.gif",
		Query: url.Values{}, Country: "ES",
		ClientIP: "127.0.0.1", Cookies: map[string]string{}, Phase: PhaseCrawl}
	hops := 0
	for {
		r := e.Respond(req)
		if r.Status != 302 {
			break
		}
		hops++
		if hops > 5 {
			t.Fatal("sync chain did not terminate")
		}
		u, err := url.Parse(r.Location)
		if err != nil {
			t.Fatal(err)
		}
		req = Request{Host: u.Hostname(), Path: u.Path, Query: u.Query(),
			Country: "ES", ClientIP: "127.0.0.1", Cookies: map[string]string{}, Phase: PhaseCrawl}
	}
	if hops == 0 {
		t.Error("no sync hop at all")
	}
}

func TestFirstPartyAssets(t *testing.T) {
	e := ecoT(t)
	var host string
	var owner *Site
	for h, s := range e.extraFirstParty {
		if !s.Unresponsive && !s.Flaky {
			host, owner = h, s
			break
		}
	}
	if host == "" {
		t.Skip("no extra first-party host")
	}
	r := e.Respond(Request{Host: host, Path: "/assets/site.css", Country: "ES", Phase: PhaseCrawl})
	if r.Status != 200 || !strings.Contains(r.ContentType, "css") {
		t.Errorf("css asset = %d %q", r.Status, r.ContentType)
	}
	r = e.Respond(Request{Host: host, Path: "/assets/logo.png", Country: "ES", Phase: PhaseCrawl})
	if r.Status != 200 || !strings.Contains(r.ContentType, "png") {
		t.Errorf("png asset = %d %q", r.Status, r.ContentType)
	}
	_ = owner
}

func TestTailHostResponses(t *testing.T) {
	e := ecoT(t)
	var tail string
	for h := range e.uniqueHosts {
		tail = h
		break
	}
	if tail == "" {
		t.Skip("no tail host")
	}
	r := e.Respond(Request{Host: tail, Path: "/js/lib.js", Country: "ES", Cookies: map[string]string{}, Phase: PhaseCrawl})
	if r.Status != 200 || !strings.Contains(r.ContentType, "javascript") {
		t.Errorf("tail js = %d %q", r.Status, r.ContentType)
	}
	r = e.Respond(Request{Host: tail, Path: "/px.gif", Country: "ES", Cookies: map[string]string{}, Phase: PhaseCrawl})
	if r.Status != 200 || !strings.Contains(r.ContentType, "gif") {
		t.Errorf("tail pixel = %d %q", r.Status, r.ContentType)
	}
}

func TestSiteUnknownPath404(t *testing.T) {
	e := ecoT(t)
	var site *Site
	for _, s := range e.PornSites {
		if !s.Flaky && !s.Unresponsive {
			site = s
			break
		}
	}
	r := e.Respond(Request{Host: site.Host, Path: "/no-such-page", Country: "ES", Phase: PhaseCrawl})
	if r.Status != 404 {
		t.Errorf("unknown path = %d, want 404", r.Status)
	}
}

func TestUIDStoreStability(t *testing.T) {
	u := newUIDStore(42)
	a := u.get("k", 16)
	b := u.get("k", 16)
	if a != b {
		t.Error("uid not stable per key")
	}
	if len(a) != 16 {
		t.Errorf("uid length = %d", len(a))
	}
	if u.get("other", 16) == a {
		t.Error("distinct keys share a uid")
	}
	if len(u.get("short", 2)) < 8 {
		t.Error("minimum uid length not enforced")
	}
}

func TestMainCookieValuePadding(t *testing.T) {
	e := ecoT(t)
	svc := e.ServiceByHost["adsrv.tsyndicate.com"]
	if svc == nil {
		t.Fatal("tsyndicate missing")
	}
	uid := e.uids.get("svc:"+svc.Host, idPortionLen(svc))
	v := e.mainCookieValue(svc, Request{Country: "ES", ClientIP: "127.0.0.1"}, uid)
	if len(v) < 3000 {
		t.Errorf("tsyndicate cookie length = %d, want ~3600 (the paper's giant cookies)", len(v))
	}
	if !strings.HasPrefix(v, uid) {
		t.Error("padded value must start with the identifier")
	}
}

func TestGateForCountryOverride(t *testing.T) {
	s := &Site{AgeGate: GateSimple, AgeGateByCountry: map[string]AgeGateKind{"RU": GateNone}}
	if s.GateFor("ES") != GateSimple || s.GateFor("RU") != GateNone {
		t.Error("country override broken")
	}
}

func TestBannerForCountry(t *testing.T) {
	s := &Site{BannerEU: BannerConfirmation, BannerUS: BannerNone}
	if s.BannerFor("ES") != BannerConfirmation || s.BannerFor("UK") != BannerConfirmation {
		t.Error("EU countries must see the EU banner")
	}
	if s.BannerFor("US") != BannerNone || s.BannerFor("SG") != BannerNone {
		t.Error("non-EU countries must see the US variant")
	}
}

func TestCountryAssetsRenderPerCountry(t *testing.T) {
	e := Generate(Params{Seed: 11, Scale: 0.08})
	var site *Site
	for _, s := range e.PornSites {
		if len(s.CountryAssets) > 0 && !s.Flaky && !s.Unresponsive {
			site = s
			break
		}
	}
	if site == nil {
		t.Skip("no country-asset site at this scale")
	}
	for _, c := range Countries {
		html := e.RenderLanding(site, PageContext{Country: c, Scheme: "http"})
		want := site.CountryAssets[c]
		if !strings.Contains(html, want) {
			t.Errorf("country %s: asset host %s not rendered", c, want)
		}
		for other, h := range site.CountryAssets {
			if other != c && strings.Contains(html, h) {
				t.Errorf("country %s: foreign asset host %s leaked into page", c, h)
			}
		}
	}
	// The asset hosts resolve and serve.
	h := site.CountryAssets["ES"]
	r := e.Respond(Request{Host: h, Path: "/media/teaser.jpg", Country: "ES", Cookies: map[string]string{}, Phase: PhaseCrawl})
	if r.Status != 200 {
		t.Errorf("asset host status = %d", r.Status)
	}
	// And they carry a hosting-provider certificate identity.
	if org := e.CertOrgFor(h); org == "" {
		t.Error("asset host has no hosting org")
	}
}

func TestUniqueHostsHaveHostingOrgs(t *testing.T) {
	e := ecoT(t)
	n, withOrg := 0, 0
	for h := range e.uniqueHosts {
		n++
		if e.CertOrgFor(h) != "" {
			withOrg++
		}
	}
	if n == 0 {
		t.Skip("no unique hosts")
	}
	if withOrg != n {
		t.Errorf("unique hosts with hosting org: %d/%d, want all", withOrg, n)
	}
}
