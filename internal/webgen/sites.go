package webgen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// clusterSpec plants a Table 1 owner cluster: a company owning several porn
// sites, with its flagship site's best 2018 rank.
type clusterSpec struct {
	company  string
	sites    int
	flagship string
	rank     int
}

var clusterSpecs = []clusterSpec{
	{"Gamma Entertainment", 65, "evilangel.com", 5301},
	{"MindGeek", 54, "pornhub.com", 22},
	{"PaperStreet Media", 38, "teamskeet.com", 10171},
	{"Techpump", 25, "porn300.com", 2366},
	{"PMG Entertainment", 15, "private.com", 7758},
	{"SexMex", 12, "sexmex.xxx", 122227},
	{"Docler Holding", 10, "livejasmin.com", 36},
	{"Mature.nl", 9, "mature.nl", 6577},
	{"Liberty Media", 7, "corbinfisher.com", 26436},
	{"WGCZ", 5, "xvideos.com", 32},
	{"AFS Media", 5, "theclassicporn.com", 13939},
	{"AEBN", 5, "pornotube.com", 31148},
	{"Zero Tolerance", 5, "ztod.com", 40676},
	{"Eurocreme", 5, "eurocreme.com", 110012},
	{"JM Productions", 5, "jerkoffzone.com", 147753},
}

// extraFlagships are additional always-top-1K porn sites (the paper found
// 16 sites never leaving the top-1K).
var extraFlagships = []struct {
	host string
	rank int
}{
	{"xnxx.com", 40}, {"chaturbate.com", 55}, {"xhamster.com", 73},
	{"redtube.com", 120}, {"youporn.com", 150}, {"spankbang.com", 210},
	{"bongacams.com", 250}, {"tnaflix.com", 330}, {"txxx.com", 370},
	{"hclips.com", 420}, {"eporner.com", 500}, {"rule34heaven.xxx", 610},
	{"beeg.com", 700},
}

// buildPornSites constructs the porn corpus, planting owner clusters,
// flagship ranks and every behavioural attribute.
func buildPornSites(p Params, rng *rand.Rand, names *nameGen, companies map[string]*Company, services []*Service) []*Site {
	total := p.scaled(paperPornSites, 40)
	sites := make([]*Site, 0, total)

	addSite := func(host string, owner *Company, rank int) *Site {
		s := &Site{Host: host, Kind: Porn, Owner: owner, BaseRank: rank, Language: pickLanguage(rng)}
		sites = append(sites, s)
		return s
	}

	// Planted clusters (scaled, minimum 2 sites each so clustering has
	// something to find at tiny scales).
	for _, cs := range clusterSpecs {
		n := p.scaled(cs.sites, 2)
		if len(sites)+n > total {
			n = total - len(sites)
		}
		if n <= 0 {
			break
		}
		owner := companies[cs.company]
		names.claim(cs.flagship)
		addSite(cs.flagship, owner, cs.rank)
		for i := 1; i < n; i++ {
			rank := sampleRankNear(rng, cs.rank)
			addSite(names.pornHost(rng.Float64() < 0.965), owner, rank)
		}
	}
	for _, f := range extraFlagships {
		if len(sites) >= total {
			break
		}
		names.claim(f.host)
		addSite(f.host, nil, f.rank)
	}
	// A handful of extra attributed companies outside Table 1 (the paper
	// found 24 companies owning 286 sites in total).
	extraCompanies := p.scaled(9, 1)
	for i := 0; i < extraCompanies && len(sites) < total; i++ {
		c := &Company{Name: names.companyName()}
		if rng.Float64() < 0.7 {
			c.CertOrg = c.Name
		}
		companies[c.Name] = c
		n := 2 + rng.Intn(3)
		for j := 0; j < n && len(sites) < total; j++ {
			addSite(names.pornHost(true), c, sampleIntervalRank(rng))
		}
	}
	// The anonymous long tail (96% of porn sites have no discoverable
	// owner).
	for len(sites) < total {
		addSite(names.pornHost(rng.Float64() < 0.965), nil, sampleIntervalRank(rng))
	}

	assignPornAttributes(p, rng, names, sites, services)
	return sites
}

// sampleIntervalRank draws a base rank such that the site's *measured*
// best-of-2018 rank lands in the right Table 3 interval with the right
// share. Measured intervals use the best rank over 365 noisy days, which
// sits below the base rank (roughly base times e^(-2.95 sigma)), so the
// sampling bands are shifted upward accordingly. Only the named flagships
// live permanently below rank 1,000 (the paper found just 16 such sites);
// the rest of the 0–1k interval are sites whose best day dips under it.
func sampleIntervalRank(rng *rand.Rand) int {
	r := rng.Float64()
	switch {
	case r < pornTop1KFrac:
		return logUniform(rng, 1080, 1725)
	case r < pornTop1KFrac+porn1K10KFrac:
		return logUniform(rng, 1725, 19900)
	case r < pornTop1KFrac+porn1K10KFrac+porn10K100KFrac:
		return logUniform(rng, 19900, 230000)
	default:
		return logUniform(rng, 230000, 2_500_000)
	}
}

// sampleRankNear draws a rank in the same order of magnitude as anchor
// (sister sites of a flagship are usually far less popular, per Table 1's
// "larger cluster size does not translate into popularity").
func sampleRankNear(rng *rand.Rand, anchor int) int {
	lo := anchor * 3
	if lo < 2000 {
		lo = 2000
	}
	hi := lo * 60
	return logUniform(rng, lo, hi)
}

func logUniform(rng *rand.Rand, lo, hi int) int {
	if lo >= hi {
		return lo
	}
	l, h := math.Log(float64(lo)), math.Log(float64(hi))
	return int(math.Exp(l + rng.Float64()*(h-l)))
}

func pickLanguage(rng *rand.Rand) string {
	r := rng.Float64()
	switch {
	case r < 0.62:
		return "en"
	case r < 0.72:
		return "es"
	case r < 0.79:
		return "ru"
	case r < 0.85:
		return "fr"
	case r < 0.90:
		return "de"
	case r < 0.94:
		return "pt"
	case r < 0.97:
		return "it"
	default:
		return "ro"
	}
}

// intervalWeights converts a service's TailBias into per-interval embedding
// multipliers, normalized against the porn interval distribution so the
// overall prevalence is preserved.
func intervalWeights(bias float64) [4]float64 {
	fr := [4]float64{pornTop1KFrac, porn1K10KFrac, porn10K100KFrac, 1 - pornTop1KFrac - porn1K10KFrac - porn10K100KFrac}
	var w [4]float64
	var norm float64
	for i := 0; i < 4; i++ {
		w[i] = math.Exp(bias * (float64(i) - 1.5))
		norm += fr[i] * w[i]
	}
	for i := 0; i < 4; i++ {
		w[i] /= norm
	}
	return w
}

// pickWeightedService samples one service from pool with probability
// proportional to prevalence times the interval weight, excluding any in
// taken.
func pickWeightedService(rng *rand.Rand, pool []*Service, weights map[*Service][4]float64, iv int, taken map[*Service]bool) *Service {
	var total float64
	for _, svc := range pool {
		if taken[svc] {
			continue
		}
		total += svc.Prevalence[Porn] * weights[svc][iv]
	}
	if total == 0 {
		return nil
	}
	r := rng.Float64() * total
	for _, svc := range pool {
		if taken[svc] {
			continue
		}
		r -= svc.Prevalence[Porn] * weights[svc][iv]
		if r <= 0 {
			return svc
		}
	}
	return nil
}

func assignPornAttributes(p Params, rng *rand.Rand, names *nameGen, sites []*Site, services []*Service) {
	// Pre-compute interval weights per service.
	weights := make(map[*Service][4]float64, len(services))
	for _, svc := range services {
		weights[svc] = intervalWeights(svc.TailBias)
	}

	// Embedding pools: real sites choose ONE ad stack (an ad network, maybe
	// two; an analytics provider), they do not sample every tracker
	// independently — that correlation is what keeps the paper's
	// "third-party cookies on 72% of sites" consistent with ExoClick alone
	// reaching 43%. CDNs, social widgets and the rest stay independent.
	var adnetPool, analyticsPool []*Service
	for _, svc := range services {
		if svc.RegularOnly || svc.Prevalence[Porn] == 0 {
			continue
		}
		switch svc.Category {
		case CatAdNetwork, CatTrafficTrade:
			adnetPool = append(adnetPool, svc)
		case CatAnalytics:
			analyticsPool = append(analyticsPool, svc)
		}
	}
	const (
		trackingSiteFrac = 0.80 // sites embedding any ad/analytics stack
		secondAdnetFrac  = 0.18
		analyticsFrac    = 0.72 // of tracking sites
	)

	// Identify the top-50 sites by base rank for age-gate planting.
	top50 := topNByRank(sites, 50)

	uniqueCounter := 0
	for idx, s := range sites {
		iv := s.Interval()

		// HTTPS by popularity.
		httpsP := [4]float64{httpsTop1K, https1K10K, https10K100K, https100KUp}[iv]
		s.HTTPS = rng.Float64() < httpsP

		// Crawl flakiness and provenance. Flakiness concentrates in the
		// tail — the flagships do not fail a crawl (the weights keep the
		// overall rate at the paper's 6,843 -> 6,346 drop).
		s.Flaky = rng.Float64() < pornFlakyFrac*[4]float64{0.05, 0.6, 1.05, 1.15}[iv]
		s.KeywordInName = hostHasKeyword(s.Host)
		// Aggregator-indexed sites skew popular. The multipliers are
		// normalized so the expected aggregator index size matches the
		// paper's 342 once the keyword-less fallback below is added.
		aggFrac := float64(p.scaled(paperAggregatorSites, 5)) / float64(len(sites))
		s.InAggregators = rng.Float64() < aggFrac*[4]float64{2, 1, 0.25, 0.1}[iv]
		adultCatFrac := float64(p.scaled(paperAlexaAdult, 2)) / float64(len(sites))
		s.InAlexaAdult = rng.Float64() < adultCatFrac*[4]float64{10, 4, 0.5, 0.1}[iv]
		if !s.KeywordInName && !s.InAggregators && !s.InAlexaAdult {
			// Every corpus site must be discoverable by at least one source.
			s.InAggregators = true
		}

		// Service embedding: pooled ad stack + independent infrastructure.
		tracking := rng.Float64() < trackingSiteFrac
		taken := map[*Service]bool{}
		if tracking {
			if adnet := pickWeightedService(rng, adnetPool, weights, iv, taken); adnet != nil {
				s.Services = append(s.Services, adnet)
				taken[adnet] = true
			}
			if rng.Float64() < secondAdnetFrac {
				if adnet := pickWeightedService(rng, adnetPool, weights, iv, taken); adnet != nil {
					s.Services = append(s.Services, adnet)
					taken[adnet] = true
				}
			}
			if rng.Float64() < analyticsFrac {
				if an := pickWeightedService(rng, analyticsPool, weights, iv, taken); an != nil {
					s.Services = append(s.Services, an)
					taken[an] = true
				}
			}
		}
		for _, svc := range services {
			if svc.RegularOnly || svc.Prevalence[Porn] == 0 || taken[svc] {
				continue
			}
			switch svc.Category {
			case CatAdNetwork, CatTrafficTrade, CatAnalytics:
				continue // pooled above
			case CatDataBroker, CatSocial, CatDating:
				if !tracking && svc.SetsIDCookie {
					continue // non-tracking sites carry no tracker widgets
				}
			}
			prob := svc.Prevalence[Porn] * weights[svc][iv]
			if prob > 1 {
				prob = 1
			}
			if rng.Float64() < prob {
				s.Services = append(s.Services, svc)
			}
		}

		// Site-specific unique third parties (Table 3's "unique" column).
		rate := [4]float64{uniqueRateTop1K, uniqueRate1K10K, uniqueRate10K100K, uniqueRate100KUp}[iv]
		for n := poisson(rng, rate); n > 0; n-- {
			uniqueCounter++
			s.UniqueHosts = append(s.UniqueHosts, names.uniqueTailHost(uniqueCounter))
		}

		// Extra first-party FQDNs (11.5% of porn sites).
		if rng.Float64() < 0.115 {
			s.ExtraFirstParty = append(s.ExtraFirstParty, mintFirstParty(rng, names, s))
		}

		// Geo-balanced asset delivery: a slice of sites serve their media
		// from a per-country edge host, so each vantage point observes
		// FQDNs nobody else sees (Table 7's unique-per-country column).
		if rng.Float64() < 0.05 {
			s.CountryAssets = map[string]string{}
			base := trackerWordsASCII()[rng.Intn(len(trackerWordsASCII()))] + "." + trackerTLDs[rng.Intn(len(trackerTLDs))]
			for _, c := range Countries {
				host := fmt.Sprintf("edge-%s-%03d.%s", strings.ToLower(c), rng.Intn(1000), base)
				s.CountryAssets[c] = names.claim(host)
			}
		}

		// First-party cookies: tracking-minded sites nearly always set
		// their own, sparse sites often run cookie-less (keeps the census'
		// "92% of sites install cookies" reachable).
		fpFrac := 0.70
		if tracking {
			fpFrac = 0.97
		}
		if rng.Float64() < fpFrac {
			s.FirstPartyCookies = 1 + rng.Intn(5)
		}

		// Cookie banners (Table 8): EU assignment, mostly mirrored in US.
		r := rng.Float64()
		switch {
		case r < bannerEUNoOption:
			s.BannerEU = BannerNoOption
		case r < bannerEUNoOption+bannerEUConfirmation:
			s.BannerEU = BannerConfirmation
		case r < bannerEUNoOption+bannerEUConfirmation+bannerEUBinary:
			s.BannerEU = BannerBinary
		case r < bannerEUNoOption+bannerEUConfirmation+bannerEUBinary+bannerEUOther:
			s.BannerEU = BannerOther
		}
		if s.BannerEU != BannerNone && rng.Float64() < 0.85 {
			s.BannerUS = s.BannerEU
		}

		// Privacy policy.
		if s.Owner != nil || rng.Float64() < policyFrac {
			// All clustered-owner sites carry (near identical) policies —
			// that is how the TF-IDF clustering finds them.
			s.HasPolicy = s.Owner != nil || rng.Float64() < 0.95
		}
		if s.HasPolicy {
			s.PolicyMentionsGDPR = rng.Float64() < policyGDPRFrac
			s.PolicyDisclosesCookies = rng.Float64() < 0.72
			s.PolicyDisclosesThirdParties = rng.Float64() < 0.6
			s.PolicyListsAllThirdParties = false
		}

		// Monetization.
		if rng.Float64() < subscriptionFrac {
			s.HasSubscription = true
			s.PaidSubscription = rng.Float64() < paidFrac
		}

		// Inline first-party canvas fingerprinting (26% of canvas scripts
		// were first-party).
		s.InlineCanvasFP = rng.Float64() < 0.0095

		// RTA meta tag (ASACP, Section 2.1).
		s.RTAMeta = rng.Float64() < 0.08

		// Malware.
		s.Malicious = rng.Float64() < maliciousSiteFrac

		// Geo blocking.
		if rng.Float64() < blockedRUFrac {
			if s.BlockedIn == nil {
				s.BlockedIn = map[string]bool{}
			}
			s.BlockedIn["RU"] = true
		}
		if rng.Float64() < blockedINFrac {
			if s.BlockedIn == nil {
				s.BlockedIn = map[string]bool{}
			}
			s.BlockedIn["IN"] = true
		}
		_ = idx
	}

	// Exactly one policy lists the complete set of embedded third parties
	// (Section 7.3 found a single such site).
	for _, s := range top50 {
		if s.HasPolicy {
			s.PolicyListsAllThirdParties = true
			break
		}
	}

	plantAgeGates(rng, top50, sites)
}

// plantAgeGates reproduces Section 7.2: 20% of the top-50 sites show a
// simple gate from the US/UK/Spain; Russia differs — some of those sites
// drop the gate there (12% of the top-50), others gate only in Russia (8%),
// and pornhub.com demands a social-network login in Russia.
func plantAgeGates(rng *rand.Rand, top50, all []*Site) {
	n := len(top50)
	gated := int(math.Round(ageGateTopFrac * float64(n))) // 20% gate in the west
	dropInRU := int(math.Round(0.12 * float64(n)))        // of those, this many drop the gate in Russia
	onlyInRU := int(math.Round(0.08 * float64(n)))        // others gate only in Russia
	if dropInRU > gated {
		dropInRU = gated
	}
	perm := rng.Perm(n)
	i := 0
	take := func(k int) []*Site {
		out := make([]*Site, 0, k)
		for ; k > 0 && i < n; i++ {
			out = append(out, top50[perm[i]])
			k--
		}
		return out
	}
	western := take(gated)
	for _, s := range western {
		s.AgeGate = GateSimple
		s.AgeGateLang = s.Language
	}
	// The Russia-divergent subset of the western-gated sites.
	for _, s := range western[:dropInRU] {
		if s.AgeGateByCountry == nil {
			s.AgeGateByCountry = map[string]AgeGateKind{}
		}
		s.AgeGateByCountry["RU"] = GateNone
	}
	for _, s := range take(onlyInRU) {
		if s.AgeGateByCountry == nil {
			s.AgeGateByCountry = map[string]AgeGateKind{}
		}
		s.AgeGateByCountry["RU"] = GateSimple
		s.AgeGateLang = "ru"
	}
	for _, s := range top50 {
		if s.Host == "pornhub.com" {
			if s.AgeGateByCountry == nil {
				s.AgeGateByCountry = map[string]AgeGateKind{}
			}
			s.AgeGateByCountry["RU"] = GateSocialLogin
			// Complying with the Russian login mandate is what keeps the
			// site reachable there (Section 2.1) — it cannot also be
			// geo-blocked.
			delete(s.BlockedIn, "RU")
		}
	}
	// A thin tail of non-top sites also gates.
	for _, s := range all {
		if s.AgeGate == GateNone && s.AgeGateByCountry == nil && rng.Float64() < 0.015 {
			s.AgeGate = GateSimple
			s.AgeGateLang = s.Language
		}
	}
}

func topNByRank(sites []*Site, n int) []*Site {
	out := make([]*Site, len(sites))
	copy(out, sites)
	// Simple selection of the n best ranks.
	for i := 0; i < n && i < len(out); i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].BaseRank < out[best].BaseRank {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	if n > len(out) {
		n = len(out)
	}
	return out[:n]
}

func hostHasKeyword(host string) bool {
	for _, k := range PornKeywords {
		if containsFold(host, k) {
			return true
		}
	}
	return false
}

func containsFold(s, sub string) bool {
	// Hostnames are already lower-case in this generator.
	return len(sub) <= len(s) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// mintFirstParty creates an extra first-party FQDN for the site: usually a
// subdomain, sometimes a Levenshtein-similar sister domain, and sometimes a
// differently-named domain covered by the same certificate organization.
func mintFirstParty(rng *rand.Rand, names *nameGen, s *Site) string {
	switch rng.Intn(3) {
	case 0:
		sub := []string{"www", "cdn", "img", "static", "m"}[rng.Intn(5)]
		return sub + "." + s.Host
	case 1:
		// Sister domain: insert a short suffix before the TLD so the
		// Levenshtein similarity stays above the grouping threshold.
		dot := lastDot(s.Host)
		return names.claim(s.Host[:dot] + "cdn" + s.Host[dot:])
	default:
		if s.Owner != nil && s.Owner.CertOrg != "" {
			// Same-cert sister brand (exercises the X.509 path).
			return names.claim(fmt.Sprintf("media%d.%s", rng.Intn(90)+10, s.Host))
		}
		return "www." + s.Host
	}
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return len(s)
}

func poisson(rng *rand.Rand, lambda float64) int {
	// Knuth's algorithm; lambda is small here.
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 50 {
			return k
		}
	}
}

// buildRegularSites constructs the reference corpus (Alexa top-10K style).
func buildRegularSites(p Params, rng *rand.Rand, names *nameGen, services []*Service) []*Site {
	total := p.scaled(paperRegularSites, 50)
	sites := make([]*Site, 0, total)
	for i := 0; i < total; i++ {
		s := &Site{
			Kind:     Regular,
			Host:     names.regularHost(false),
			BaseRank: 1 + rng.Intn(10000),
			Language: pickLanguage(rng),
		}
		s.HTTPS = rng.Float64() < 0.85
		s.Flaky = rng.Float64() < regularFlakyFrac
		s.FirstPartyCookies = 0
		if rng.Float64() < 0.9 {
			s.FirstPartyCookies = 1 + rng.Intn(4)
		}
		if rng.Float64() < 0.45 {
			s.ExtraFirstParty = append(s.ExtraFirstParty, "www."+s.Host)
			if rng.Float64() < 0.3 {
				s.ExtraFirstParty = append(s.ExtraFirstParty, "cdn."+s.Host)
			}
		}
		for _, svc := range services {
			// Adult-specialized services appear on regular sites only when
			// a tiny regular prevalence is planted (the paper found
			// ExoClick on just 6 regular websites).
			if svc.Prevalence[Regular] == 0 {
				continue
			}
			if rng.Float64() < svc.Prevalence[Regular] {
				s.Services = append(s.Services, svc)
			}
		}
		for n := poisson(rng, uniqueRateRegular); n > 0; n-- {
			s.UniqueHosts = append(s.UniqueHosts, names.uniqueTailHost(i*7+n))
		}
		// Regular sites show banners far more often (Degeling: ~62%).
		r := rng.Float64()
		switch {
		case r < 0.20:
			s.BannerEU = BannerNoOption
		case r < 0.50:
			s.BannerEU = BannerConfirmation
		case r < 0.58:
			s.BannerEU = BannerBinary
		case r < 0.62:
			s.BannerEU = BannerOther
		}
		if s.BannerEU != BannerNone && rng.Float64() < 0.8 {
			s.BannerUS = s.BannerEU
		}
		s.HasPolicy = rng.Float64() < 0.75
		if s.HasPolicy {
			s.PolicyMentionsGDPR = rng.Float64() < 0.5
			s.PolicyDisclosesCookies = rng.Float64() < 0.8
			s.PolicyDisclosesThirdParties = rng.Float64() < 0.6
		}
		sites = append(sites, s)
	}
	return sites
}

// buildFalseCandidates mints the corpus-compilation false positives: dead
// hosts that never respond, plus regular sites whose names match a porn
// keyword (the PornTube-vs-YouTube problem). Both appear in the candidate
// list and are removed during sanitization.
func buildFalseCandidates(p Params, rng *rand.Rand, names *nameGen) []*Site {
	total := p.scaled(paperFalsePositives, 10)
	dead := int(0.62 * float64(total))
	sites := make([]*Site, 0, total)
	for i := 0; i < dead; i++ {
		sites = append(sites, &Site{
			Kind:          Porn, // looked pornographic by name only
			Host:          names.pornHost(true),
			BaseRank:      logUniform(rng, 200000, 3_000_000),
			Unresponsive:  true,
			KeywordInName: true,
			Language:      "en",
		})
	}
	for i := dead; i < total; i++ {
		s := &Site{
			Kind:                 Regular,
			Host:                 names.regularHost(true),
			BaseRank:             logUniform(rng, 100, 200000),
			KeywordInName:        true,
			KeywordFalsePositive: true,
			Language:             pickLanguage(rng),
		}
		s.HTTPS = rng.Float64() < 0.7
		s.HasPolicy = rng.Float64() < 0.6
		s.FirstPartyCookies = 1 + rng.Intn(3)
		sites = append(sites, s)
	}
	return sites
}
