package webgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// PornKeywords are the corpus-discovery substrings from Section 3 of the
// paper.
var PornKeywords = []string{"porn", "tube", "sex", "gay", "lesbian", "mature", "xxx"}

// Word pools for hostname synthesis. Porn-site names deliberately embed the
// discovery keywords so the keyword search finds them; a slice of regular
// sites also embeds them (YouTube-style false positives).
var (
	pornPrefixes = []string{
		"hot", "free", "best", "my", "super", "mega", "real", "wild", "pure",
		"top", "prime", "dark", "velvet", "midnight", "crystal", "ruby",
		"golden", "silk", "neon", "sugar", "cherry", "lusty", "vivid",
	}
	pornSuffixes = []string{
		"vids", "clips", "cams", "stream", "zone", "land", "world", "hub",
		"place", "base", "star", "city", "planet", "vault", "den", "haus",
		"spot", "live", "time", "channel", "door", "nest", "garden",
	}
	regularWords = []string{
		"news", "shop", "weather", "travel", "games", "music", "recipes",
		"sports", "finance", "tech", "daily", "cloud", "mail", "photo",
		"video", "social", "forum", "market", "auto", "health", "learn",
		"stream", "media", "store", "blog", "wiki", "jobs", "home", "kids",
		"city", "world", "live", "express", "insider", "review", "tracker",
	}
	trackerWords = []string{
		"ad", "ads", "click", "track", "pixel", "metrics", "stats", "tag",
		"banner", "pop", "native", "媒", "cdn", "static", "sync", "rtb",
		"bid", "exchange", "audience", "data", "reach", "spark", "flow",
	}
	tlds        = []string{"com", "net", "org", "xxx", "tv", "biz", "info"}
	trackerTLDs = []string{"com", "net", "io", "me", "top", "party", "pro", "ws"}
)

// nameGen mints unique hostnames.
type nameGen struct {
	rng  *rand.Rand
	used map[string]bool
}

func newNameGen(rng *rand.Rand) *nameGen {
	return &nameGen{rng: rng, used: map[string]bool{}}
}

func (g *nameGen) claim(host string) string {
	host = strings.ToLower(host)
	if !g.used[host] {
		g.used[host] = true
		return host
	}
	// Disambiguate deterministically.
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s%d", host, i)
		// Insert before TLD rather than after it for realism.
		if dot := strings.LastIndexByte(host, '.'); dot > 0 {
			cand = fmt.Sprintf("%s%d%s", host[:dot], i, host[dot:])
		}
		if !g.used[cand] {
			g.used[cand] = true
			return cand
		}
	}
}

func (g *nameGen) pick(pool []string) string {
	return pool[g.rng.Intn(len(pool))]
}

// pornHost mints a porn-site hostname. withKeyword forces one of the
// discovery keywords into the name (most porn sites have one, which is why
// the paper's keyword search finds 7,735 candidates).
func (g *nameGen) pornHost(withKeyword bool) string {
	var name string
	if withKeyword {
		kw := g.pick(PornKeywords)
		switch g.rng.Intn(3) {
		case 0:
			name = g.pick(pornPrefixes) + kw + g.pick(pornSuffixes)
		case 1:
			name = kw + g.pick(pornSuffixes)
		default:
			name = g.pick(pornPrefixes) + kw
		}
	} else {
		name = g.pick(pornPrefixes) + g.pick(pornSuffixes)
	}
	return g.claim(name + "." + g.pick(tlds))
}

// regularHost mints a regular-site hostname; withPornKeyword creates the
// false-positive shape (e.g. a crafts site called "maturegardens.com").
func (g *nameGen) regularHost(withPornKeyword bool) string {
	var name string
	if withPornKeyword {
		kw := g.pick(PornKeywords)
		name = kw + g.pick(regularWords)
	} else {
		name = g.pick(regularWords) + g.pick(regularWords)
	}
	return g.claim(name + "." + g.pick([]string{"com", "com", "com", "net", "org", "io"}))
}

// trackerHost mints a third-party service hostname. Obfuscated hosts mimic
// the opaque long tail (xcvgdf.party, hd100546b.com in the paper).
func (g *nameGen) trackerHost(obfuscated bool) string {
	if obfuscated {
		const letters = "abcdefghijklmnopqrstuvwxyz"
		n := 5 + g.rng.Intn(6)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[g.rng.Intn(len(letters))]
		}
		if g.rng.Intn(2) == 0 {
			return g.claim(fmt.Sprintf("%s%03d.%s", string(b[:3]), g.rng.Intn(1000), g.pick(trackerTLDs)))
		}
		return g.claim(string(b) + "." + g.pick(trackerTLDs))
	}
	w := g.pick(trackerWords)
	for !isASCII(w) { // skip the decorative non-ASCII entry for hostnames
		w = g.pick(trackerWords)
	}
	w2 := g.pick(trackerWords)
	for !isASCII(w2) || w2 == w {
		w2 = g.pick(trackerWords)
	}
	return g.claim(w + w2 + "." + g.pick(trackerTLDs))
}

// uniqueTailHost mints a site-specific third-party host (per-site CDN or
// asset domain, like img100-589.xvideos.com style names on foreign bases).
func (g *nameGen) uniqueTailHost(i int) string {
	kind := g.rng.Intn(3)
	switch kind {
	case 0:
		return g.claim(fmt.Sprintf("cdn%d-%03d.%s.%s", g.rng.Intn(9)+1, i%997, g.pick(trackerWordsASCII()), g.pick(trackerTLDs)))
	case 1:
		return g.claim(fmt.Sprintf("%s-assets-%d.%s", g.pick(trackerWordsASCII()), g.rng.Intn(900)+100, g.pick(trackerTLDs)))
	default:
		return g.trackerHost(true)
	}
}

var asciiTrackerWords []string

func trackerWordsASCII() []string {
	if asciiTrackerWords == nil {
		for _, w := range trackerWords {
			if isASCII(w) {
				asciiTrackerWords = append(asciiTrackerWords, w)
			}
		}
	}
	return asciiTrackerWords
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// companyName mints a plausible holding-company name.
func (g *nameGen) companyName() string {
	first := []string{
		"Aurora", "Nova", "Crimson", "Atlas", "Vertex", "Zenith", "Orbit",
		"Helix", "Quantum", "Cobalt", "Ivory", "Onyx", "Mirage", "Summit",
		"Cascade", "Horizon", "Pioneer", "Sterling", "Falcon", "Meridian",
	}
	second := []string{
		"Media", "Entertainment", "Digital", "Holdings", "Networks",
		"Productions", "Interactive", "Studios", "Group", "Ventures",
	}
	return g.pick(first) + " " + g.pick(second)
}
