package webgen

import (
	"math/rand"
	"sort"

	"pornweb/internal/domain"
)

// buildCompanies creates the named organizations echoed from the paper plus
// generated holding companies for porn-site clusters.
func buildCompanies() map[string]*Company {
	names := []struct{ name, cert string }{
		{"Alphabet", "Google LLC"},
		{"ExoClick", "ExoClick S.L."},
		{"Cloudflare", "Cloudflare, Inc."},
		{"Oracle", "Oracle Corporation"},
		{"Yandex", "Yandex LLC"},
		{"JuicyAds", "JuicyAds Inc."},
		{"EroAdvertising", "EroAdvertising BV"},
		{"Facebook", "Facebook, Inc."},
		{"Amazon", "Amazon.com, Inc."},
		{"TowerData", "TowerData Inc."}, // Acxiom subsidiary in the paper
		{"HProfits", "hprofits.com"},    // cert carries only the domain
		{"Chaturbate", "Chaturbate LLC"},
		{"ThreatMetrix", "ThreatMetrix Inc."},
		{"TrafficHunt", "TrafficHunt Ltd."},
		{"DoublePimp", "DoublePimp LLC"},
		{"AdsCore", ""},
		{"TrafficStars", "Traffic Stars Ltd."},
		{"Coinhive", ""},
		{"JSEcoin", ""},
		{"AdNium", "AdNium Media"},
		{"BetweenDigital", "Between Digital LLC"},
		// Porn publishers (Table 1).
		{"MindGeek", "MindGeek S.à r.l."},
		{"Gamma Entertainment", "Gamma Entertainment Inc."},
		{"PaperStreet Media", "PaperStreet Media LLC"},
		{"Techpump", "Techpump Solutions S.L."},
		{"PMG Entertainment", "PMG Entertainment"},
		{"SexMex", ""},
		{"Docler Holding", "Docler Holding S.à r.l."},
		{"Mature.nl", "Mature BV"},
		{"Liberty Media", "Liberty Media Holdings"},
		{"WGCZ", "WGCZ Holding"},
		{"AFS Media", "AFS Media LTD"},
		{"AEBN", "AEBN Inc."},
		{"Zero Tolerance", ""},
		{"Eurocreme", "Eurocreme Group"},
		{"JM Productions", ""},
	}
	out := make(map[string]*Company, len(names))
	for _, n := range names {
		out[n.name] = &Company{Name: n.name, CertOrg: n.cert}
	}
	return out
}

// svcSpec is the declarative form of a named service.
type svcSpec struct {
	host, org   string
	cat         ServiceCategory
	adult       bool
	regularOnly bool
	country     string
	listed      bool // in EasyList/EasyPrivacy
	https       bool
	idCookie    bool
	cookies     int
	cookieLen   int
	embedsIP    bool
	embedsGeo   bool
	canvas      bool
	font        bool
	webrtc      bool
	variants    int
	sync        []string
	malicious   bool
	miner       bool
	prevPorn    float64
	prevReg     float64
	tailBias    float64
}

// namedServices are the paper-echoed services with prevalences calibrated
// to Sections 4.2 and 5 (Figure 3, Tables 4 and 5).
var namedServices = []svcSpec{
	// Alphabet: present on 74% of porn sites overall; GA on 39%,
	// DoubleClick on 12% of porn vs 60% of regular sites.
	{host: "google-analytics.com", org: "Alphabet", cat: CatAnalytics, listed: true, https: true,
		idCookie: true, cookies: 2, cookieLen: 26, prevPorn: 0.39, prevReg: 0.70},
	{host: "doubleclick.net", org: "Alphabet", cat: CatAdNetwork, listed: true, https: true,
		idCookie: true, cookies: 2, cookieLen: 30, prevPorn: 0.12, prevReg: 0.60,
		sync: []string{"pix.audiencedata.net"}},
	{host: "gstatic.com", org: "Alphabet", cat: CatCDN, listed: false, https: true,
		prevPorn: 0.48, prevReg: 0.78},
	{host: "googlesyndication.com", org: "Alphabet", cat: CatAdNetwork, listed: true, https: true,
		idCookie: true, cookies: 1, cookieLen: 22, prevPorn: 0.07, prevReg: 0.35},
	// ExoClick: the flagship porn-specialized ad network. Its two domains
	// together reach 43% of porn sites; most of its cookies embed the
	// client IP (Table 4: 85% for exosrv, 29% for exoclick).
	{host: "exosrv.com", org: "ExoClick", cat: CatAdNetwork, adult: true, listed: true, https: true,
		idCookie: true, cookies: 2, cookieLen: 42, embedsIP: true, prevPorn: 0.23, prevReg: 0.0007,
		sync: []string{"main.juicyads.com", "adsrv.tsyndicate.com", "creative.adnium.com", "pix.audiencedata.net"}},
	{host: "exoclick.com", org: "ExoClick", cat: CatAdNetwork, adult: true, listed: true, https: true,
		idCookie: true, cookies: 1, cookieLen: 38, embedsIP: true, prevPorn: 0.17, prevReg: 0.0004,
		sync: []string{"exosrv.com", "main.juicyads.com"}},
	{host: "cloudflare.com", org: "Cloudflare", cat: CatCDN, listed: true, https: true,
		canvas: true, variants: 2, prevPorn: 0.35, prevReg: 0.30},
	{host: "addthis.com", org: "Oracle", cat: CatSocial, listed: true, https: true,
		idCookie: true, cookies: 2, cookieLen: 28, prevPorn: 0.17, prevReg: 0.15,
		sync: []string{"bluekai.com"}},
	{host: "bluekai.com", org: "Oracle", cat: CatDataBroker, listed: true, https: true,
		idCookie: true, cookies: 1, cookieLen: 32, prevPorn: 0.015, prevReg: 0.08},
	{host: "pix.audiencedata.net", org: "", cat: CatDataBroker, listed: true, https: true,
		idCookie: true, cookies: 1, cookieLen: 36, prevPorn: 0.01, prevReg: 0.06},
	{host: "yandex.ru", org: "Yandex", cat: CatAnalytics, listed: true, https: true,
		idCookie: true, cookies: 2, cookieLen: 25, prevPorn: 0.04, prevReg: 0.05},
	{host: "main.juicyads.com", org: "JuicyAds", cat: CatAdNetwork, adult: true, listed: true, https: true,
		idCookie: true, cookies: 3, cookieLen: 1200, prevPorn: 0.042, prevReg: 0.0005,
		sync: []string{"exosrv.com", "adsrv.tsyndicate.com"}},
	{host: "ero-advertising.com", org: "EroAdvertising", cat: CatAdNetwork, adult: true, listed: true, https: true,
		idCookie: true, cookies: 1, cookieLen: 30, canvas: true, variants: 6, prevPorn: 0.0052},
	{host: "facebook.com", org: "Facebook", cat: CatSocial, listed: true, https: true,
		idCookie: true, cookies: 1, cookieLen: 26, prevPorn: 0.02, prevReg: 0.55},
	{host: "alexa.com", org: "Amazon", cat: CatAnalytics, listed: true, https: true,
		idCookie: true, cookies: 1, cookieLen: 20, prevPorn: 0.03, prevReg: 0.05},
	{host: "cloudfront.net", org: "Amazon", cat: CatCDN, listed: true, https: true,
		canvas: true, variants: 3, prevPorn: 0.0049, prevReg: 0.25},
	// rlcdn.com (RalpLeaf / TowerData / Acxiom): a data broker reaching a
	// handful of porn sites (Section 4.2.3).
	{host: "rlcdn.com", org: "TowerData", cat: CatDataBroker, listed: true, https: true,
		idCookie: true, cookies: 1, cookieLen: 34, prevPorn: 0.00063, prevReg: 0.10},
	{host: "doublepimp.com", org: "DoublePimp", cat: CatAdNetwork, adult: true, listed: true, https: true,
		idCookie: true, cookies: 1, cookieLen: 28, prevPorn: 0.05,
		sync: []string{"exosrv.com"}},
	{host: "doublepimpssl.com", org: "DoublePimp", cat: CatAdNetwork, adult: true, listed: false, https: true,
		idCookie: true, cookies: 1, cookieLen: 28, prevPorn: 0.012},
	// adsco.re: loads on 152 porn sites, delivers a WebRTC script but no
	// canvas fingerprinting, and is not EasyList-indexed (Table 5).
	{host: "adsco.re", org: "AdsCore", cat: CatAnalytics, adult: true, listed: false, https: true,
		idCookie: true, cookies: 1, cookieLen: 30, webrtc: true, variants: 1, prevPorn: 0.024},
	{host: "adsrv.tsyndicate.com", org: "TrafficStars", cat: CatAdNetwork, adult: true, listed: true, https: true,
		idCookie: true, cookies: 2, cookieLen: 3600, prevPorn: 0.06,
		sync: []string{"exosrv.com", "creative.adnium.com"}},
	{host: "creative.adnium.com", org: "AdNium", cat: CatAdNetwork, adult: true, listed: true, https: true,
		idCookie: true, cookies: 1, cookieLen: 26, canvas: true, variants: 8, prevPorn: 0.0041},
	{host: "highwebmedia.com", org: "Chaturbate", cat: CatAnalytics, adult: true, listed: true, https: true,
		idCookie: true, cookies: 1, cookieLen: 24, canvas: true, variants: 1, prevPorn: 0.0035},
	{host: "xcvgdf.party", org: "", cat: CatAdNetwork, adult: true, listed: false, https: false,
		idCookie: true, cookies: 1, cookieLen: 22, canvas: true, variants: 4, prevPorn: 0.0028},
	{host: "provers.pro", org: "", cat: CatAnalytics, adult: true, listed: true, https: false,
		idCookie: true, cookies: 1, cookieLen: 20, canvas: true, variants: 1, prevPorn: 0.0024},
	{host: "montwam.top", org: "", cat: CatAdNetwork, adult: true, listed: true, https: false,
		idCookie: true, cookies: 1, cookieLen: 20, canvas: true, variants: 5, prevPorn: 0.002},
	{host: "dditscdn.com", org: "", cat: CatCDN, adult: true, listed: true, https: true,
		canvas: true, variants: 1, prevPorn: 0.0016},
	// online-metrix.net: the single font-fingerprinting script in the
	// study, also uses WebRTC, present in the regular web and EasyList.
	{host: "online-metrix.net", org: "ThreatMetrix", cat: CatAnalytics, listed: true, https: true,
		idCookie: true, cookies: 1, cookieLen: 40, font: true, webrtc: true, variants: 1,
		prevPorn: 0.0022, prevReg: 0.03},
	{host: "traffichunt.com", org: "TrafficHunt", cat: CatAdNetwork, listed: true, https: true,
		idCookie: true, cookies: 1, cookieLen: 24, webrtc: true, variants: 2,
		prevPorn: 0.004, prevReg: 0.002},
	// The hprofits ad-exchange trio: two opaque domains synchronizing with
	// the mothership; their certificates all name hprofits.com (§5.1.2).
	{host: "hd100546b.com", org: "HProfits", cat: CatAdNetwork, adult: true, listed: false, https: true,
		idCookie: true, cookies: 1, cookieLen: 30, prevPorn: 0.012, sync: []string{"hprofits.com"}},
	{host: "bd202457b.com", org: "HProfits", cat: CatAdNetwork, adult: true, listed: false, https: true,
		idCookie: true, cookies: 1, cookieLen: 30, prevPorn: 0.009, sync: []string{"hprofits.com"}},
	{host: "hprofits.com", org: "HProfits", cat: CatAdNetwork, adult: true, listed: false, https: true,
		idCookie: true, cookies: 1, cookieLen: 28, prevPorn: 0.006},
	// Cryptominers (Section 5.3): present on ~8 porn sites combined.
	{host: "coinhive.com", org: "Coinhive", cat: CatCryptoMiner, listed: true, https: true,
		miner: true, malicious: true, prevPorn: 0.0007, prevReg: 0.0001},
	{host: "jsecoin.com", org: "JSEcoin", cat: CatCryptoMiner, listed: true, https: true,
		miner: true, malicious: true, prevPorn: 0.0003},
	{host: "bitcoin-pay.eu", org: "", cat: CatCryptoMiner, listed: false, https: false,
		miner: true, malicious: true, prevPorn: 0.0002},
	// Malicious traffic trade (Dr.Web-flagged in the paper).
	{host: "itraffictrade.com", org: "", cat: CatTrafficTrade, adult: true, listed: false, https: false,
		idCookie: true, cookies: 1, cookieLen: 18, malicious: true, prevPorn: 0.003, tailBias: 1.2},
	// Russian regional ATSes, observed only from Russia (Section 6.1).
	{host: "betweendigital.ru", org: "BetweenDigital", cat: CatAdNetwork, country: "RU", listed: false, https: false,
		idCookie: true, cookies: 1, cookieLen: 24, prevPorn: 0.004, tailBias: 1.5},
	{host: "datamind.ru", org: "", cat: CatAnalytics, country: "RU", listed: false, https: false,
		idCookie: true, cookies: 1, cookieLen: 20, prevPorn: 0.003, tailBias: 1.5},
	{host: "adlabs.ru", org: "", cat: CatAdNetwork, country: "RU", listed: false, https: false,
		idCookie: true, cookies: 1, cookieLen: 20, prevPorn: 0.003, tailBias: 1.5},
	{host: "adx.com.ru", org: "", cat: CatAdNetwork, country: "RU", listed: false, https: false,
		idCookie: true, cookies: 1, cookieLen: 22, prevPorn: 0.003, tailBias: 1.5},
	// Unpopular-site-only analytics with no privacy policy of their own
	// (Section 4.2.2).
	{host: "adultforce.com", org: "", cat: CatAnalytics, adult: true, listed: false, https: false,
		idCookie: true, cookies: 1, cookieLen: 20, prevPorn: 0.006, tailBias: 2.0},
	{host: "zingyads.com", org: "", cat: CatAdNetwork, adult: true, listed: false, https: false,
		idCookie: true, cookies: 1, cookieLen: 20, prevPorn: 0.005, tailBias: 2.0},
	// Dating/cam services storing geolocation in cookies (Section 5.1.1):
	// fling.com stores coordinates; playwithme.com adds the ISP.
	{host: "fling.com", org: "", cat: CatDating, adult: true, listed: false, https: true,
		idCookie: true, cookies: 2, cookieLen: 48, embedsGeo: true, prevPorn: 0.0016},
	{host: "playwithme.com", org: "", cat: CatDating, adult: true, listed: false, https: true,
		idCookie: true, cookies: 2, cookieLen: 64, embedsGeo: true, prevPorn: 0.0008},
}

func (s svcSpec) build(companies map[string]*Company) *Service {
	var org *Company
	if s.org != "" {
		org = companies[s.org]
	}
	cookies := s.cookies
	if s.idCookie && cookies == 0 {
		cookies = 1
	}
	variants := s.variants
	if variants == 0 {
		variants = 1
	}
	return &Service{
		Host: s.host, Base: domain.Base(s.host), Org: org, Category: s.cat,
		AdultOnly: s.adult, RegularOnly: s.regularOnly, CountryOnly: s.country,
		InBlocklist: s.listed, HTTPS: s.https,
		SetsIDCookie: s.idCookie, CookiesPerHit: cookies, CookieLen: s.cookieLen,
		EmbedsClientIP: s.embedsIP, EmbedsGeo: s.embedsGeo,
		CanvasFP: s.canvas, FontFP: s.font, WebRTC: s.webrtc, ScriptVariants: variants,
		SyncPartners: s.sync, Malicious: s.malicious, CryptoMiner: s.miner,
		Prevalence: [2]float64{s.prevPorn, s.prevReg}, TailBias: s.tailBias,
	}
}

// tailServiceCounts holds the scaled sizes of the generated long-tail
// service pools.
type tailServiceCounts struct {
	pornATS      int // porn-specialized tail ATSes (mostly unindexed)
	sharedATS    int // ATSes operating in both worlds (the 86 intersection)
	regularATS   int // regular-web-only ATSes (EasyList-indexed)
	pornOther    int // shared porn non-ATS third parties (CDNs, hosting)
	regularOther int // shared regular non-ATS third parties
	regionalATS  int // country-exclusive tail ATSes across the 6 countries
}

func (p Params) tailCounts() tailServiceCounts {
	return tailServiceCounts{
		pornATS:      p.scaled(540, 12),
		sharedATS:    p.scaled(60, 4),
		regularATS:   p.scaled(110, 5),
		pornOther:    p.scaled(700, 10),
		regularOther: p.scaled(2100, 15),
		regionalATS:  p.scaled(140, 6),
	}
}

// buildServices constructs the full service population.
func buildServices(p Params, rng *rand.Rand, names *nameGen, companies map[string]*Company) []*Service {
	var services []*Service
	for _, spec := range namedServices {
		svc := spec.build(companies)
		names.claim(svc.Host)
		services = append(services, svc)
	}
	counts := p.tailCounts()

	// Sync destination pools: adult trackers sync into the adult exchange
	// ecosystem; regular-web trackers only into general-purpose ones.
	// Cross-world syncing is what the paper found conspicuously absent —
	// ExoClick appeared on just 6 regular sites.
	var adultDests, generalDests []string
	for _, svc := range services {
		if !svc.SetsIDCookie || !svc.Category.IsATS() {
			continue
		}
		if svc.AdultOnly {
			adultDests = append(adultDests, svc.Host)
		} else {
			generalDests = append(generalDests, svc.Host)
		}
	}

	newTail := func(adult, regular bool, listedProb float64, country string) *Service {
		obfuscated := adult && rng.Float64() < 0.45
		host := names.trackerHost(obfuscated)
		cat := CatAdNetwork
		switch r := rng.Float64(); {
		case r < 0.35:
			cat = CatAnalytics
		case r < 0.42:
			cat = CatDataBroker
		case r < 0.47:
			cat = CatTrafficTrade
		}
		var org *Company
		if rng.Float64() < 0.68 {
			// Most tail trackers have a resolvable organization — but only
			// through their certificates, not through the Disconnect seed
			// list (the paper attributed 74% of FQDNs once certificates
			// were added).
			c := &Company{Name: names.companyName()}
			if rng.Float64() < 0.85 {
				c.CertOrg = c.Name
			}
			companies[c.Name] = c
			org = c
		}
		prevalence := 0.0001 + 0.0008*rng.Float64()*rng.Float64() // a handful of sites each
		svc := &Service{
			Host: host, Base: domain.Base(host), Org: org, Category: cat,
			AdultOnly: adult && !regular, RegularOnly: regular && !adult,
			CountryOnly:  country,
			InBlocklist:  rng.Float64() < listedProb,
			HTTPS:        rng.Float64() < 0.62,
			SetsIDCookie: rng.Float64() < 0.75, CookiesPerHit: 1 + rng.Intn(3),
			CookieLen:      12 + rng.Intn(60),
			EmbedsClientIP: rng.Float64() < 0.015,
			ScriptVariants: 1 + rng.Intn(3),
			TailBias:       0.4 + rng.Float64()*1.2,
		}
		if rng.Float64() < 0.025 {
			svc.Malicious = true
		}
		if adult {
			svc.Prevalence[Porn] = prevalence
		}
		if regular {
			svc.Prevalence[Regular] = prevalence
		}
		// Cookie syncing: a share of the tail syncs to known destinations,
		// adult tails into the adult exchanges, everyone may use the
		// general-purpose ones.
		if rng.Float64() < 0.55 {
			pool := generalDests
			if adult && !regular {
				pool = append(append([]string{}, adultDests...), generalDests...)
			}
			if len(pool) > 0 {
				n := 1 + rng.Intn(7)
				seen := map[string]bool{}
				for i := 0; i < n; i++ {
					d := pool[rng.Intn(len(pool))]
					if d != svc.Host && !seen[d] {
						seen[d] = true
						svc.SyncPartners = append(svc.SyncPartners, d)
					}
				}
			}
		}
		return svc
	}

	// Porn-specialized ATS tail: the parallel ecosystem. The blocklists
	// index most adult ad networks (which is why 12% of porn third-party
	// FQDNs classify as ATS in Table 2) — but the services delivering
	// canvas-fingerprinting scripts largely escape them, which is what
	// makes 91% of those scripts invisible to EasyList/EasyPrivacy.
	pornCanvasServices := p.scaled(40, 6) // named canvas services add ~9 more
	pornWebRTCServices := p.scaled(11, 2)
	for i := 0; i < counts.pornATS; i++ {
		svc := newTail(true, false, 0.78, "")
		if i < pornCanvasServices {
			svc.CanvasFP = true
			svc.ScriptVariants = 1 + rng.Intn(8)
			svc.InBlocklist = rng.Float64() < 0.08
			// Fingerprinters need reach for their scripts to dominate the
			// observed script population (91% of the paper's canvas
			// scripts came from these unindexed services): ~315 canvas
			// sites at paper scale, with a floor so tiny test ecosystems
			// still observe several.
			floor := 1.2 / (p.Scale * paperPornSites)
			prev := 0.0006 + 0.0006*rng.Float64()
			if prev < floor {
				prev = floor
			}
			svc.Prevalence[Porn] = prev
		} else if i < pornCanvasServices+pornWebRTCServices {
			svc.WebRTC = true
			svc.ScriptVariants = 1 + rng.Intn(3)
		}
		services = append(services, svc)
	}
	// Shared ATSes (in both worlds): well-known, indexed.
	for i := 0; i < counts.sharedATS; i++ {
		svc := newTail(true, true, 0.85, "")
		svc.Prevalence[Regular] = svc.Prevalence[Porn] * (0.3 + rng.Float64())
		services = append(services, svc)
	}
	// Regular-web-only ATSes: indexed.
	for i := 0; i < counts.regularATS; i++ {
		services = append(services, newTail(false, true, 0.9, ""))
	}
	// Regional country-exclusive ATSes (Table 7's unique-per-country
	// column). Spain gets the largest share, as in the paper (59).
	regionWeights := map[string]float64{"ES": 0.30, "US": 0.14, "RU": 0.16, "UK": 0.12, "IN": 0.13, "SG": 0.10, "": 0.05}
	for i := 0; i < counts.regionalATS; i++ {
		country := pickWeighted(rng, regionWeights)
		svc := newTail(true, false, 0.1, country)
		// Regional trackers need enough reach to surface in Table 7's
		// unique-per-country column.
		svc.Prevalence[Porn] = 0.0015 + 0.001*rng.Float64()
		services = append(services, svc)
	}

	newOther := func(adult, regular bool) *Service {
		host := names.trackerHost(false)
		cat := CatCDN
		switch r := rng.Float64(); {
		case r < 0.35:
			cat = CatHosting
		case r < 0.45:
			cat = CatSocial
		}
		svc := &Service{
			Host: host, Base: domain.Base(host), Category: cat,
			AdultOnly: adult && !regular, RegularOnly: regular && !adult,
			HTTPS:          rng.Float64() < 0.92,
			SetsIDCookie:   rng.Float64() < 0.08, // the odd CDN session cookie
			CookiesPerHit:  1,
			CookieLen:      8 + rng.Intn(24),
			ScriptVariants: 1,
			TailBias:       rng.Float64() * 0.8,
		}
		prevalence := 0.0008 + 0.012*rng.Float64()*rng.Float64()
		if adult {
			svc.Prevalence[Porn] = prevalence
		}
		if regular {
			svc.Prevalence[Regular] = prevalence
		}
		return svc
	}
	for i := 0; i < counts.pornOther; i++ {
		services = append(services, newOther(true, false))
	}
	for i := 0; i < counts.regularOther; i++ {
		svc := newOther(false, true)
		if rng.Float64() < 0.30 {
			// Shared infrastructure (CDNs, widget hosts) operating in
			// both worlds — the bulk of the paper's 889-domain
			// porn/regular intersection.
			svc.AdultOnly, svc.RegularOnly = false, false
			svc.Prevalence[Porn] = svc.Prevalence[Regular] * (0.3 + rng.Float64())
		}
		services = append(services, svc)
	}

	// Some services refuse Russian traffic, shrinking Russia's totals
	// (Table 7: 4,750 vs ~5,400 FQDNs elsewhere). Globally ubiquitous
	// infrastructure (the big CDNs and analytics) stays reachable.
	for _, svc := range services {
		ubiquitous := svc.Prevalence[Porn] >= 0.3 || svc.Prevalence[Regular] >= 0.3
		if svc.CountryOnly == "" && !ubiquitous && rng.Float64() < 0.12 {
			svc.BlockedIn = map[string]bool{"RU": true}
		}
	}
	return services
}

func pickWeighted(rng *rand.Rand, weights map[string]float64) string {
	var total float64
	keys := make([]string, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	// Deterministic ordering for reproducibility.
	sort.Strings(keys)
	for _, k := range keys {
		total += weights[k]
	}
	r := rng.Float64() * total
	for _, k := range keys {
		r -= weights[k]
		if r <= 0 {
			return k
		}
	}
	return keys[len(keys)-1]
}
