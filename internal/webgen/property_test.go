package webgen

import (
	"net/url"
	"testing"
	"testing/quick"
)

// Property tests over the generator and virtual server.

func TestGenerateDeterministicAcrossSeeds(t *testing.T) {
	f := func(seed uint16) bool {
		p := Params{Seed: uint64(seed), Scale: 0.008}
		a, b := Generate(p), Generate(p)
		if len(a.PornSites) != len(b.PornSites) || len(a.Services) != len(b.Services) {
			return false
		}
		for i := range a.Services {
			x, y := a.Services[i], b.Services[i]
			if x.Host != y.Host || x.Category != y.Category || x.InBlocklist != y.InBlocklist ||
				len(x.SyncPartners) != len(y.SyncPartners) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestRespondNeverPanics(t *testing.T) {
	e := Generate(Params{Seed: 5, Scale: 0.01})
	hosts := e.AllHosts()
	f := func(hostIdx uint16, path string, country uint8) bool {
		host := hosts[int(hostIdx)%len(hosts)]
		c := Countries[int(country)%len(Countries)]
		e.Respond(Request{
			Host: host, Path: "/" + path, Query: url.Values{},
			Country: c, ClientIP: "127.0.0.1",
			Cookies: map[string]string{}, Phase: PhaseCrawl,
		})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Known-delicate paths on every host type.
	paths := []string{"", "/", "/js/tag999.js", "/js/tag-1.js", "/px.gif", "/sync", "/ad",
		"/collect", "/privacy", "/enter", "/css/x.css", "/static/x.png", "/..", "//",
		"/sync?d=notanumber", "/js/tagXYZ.js"}
	for _, h := range hosts[:min(40, len(hosts))] {
		for _, p := range paths {
			q := url.Values{}
			if i := len(p); i > 0 && p[i-1] == '?' {
				p = p[:i-1]
			}
			e.Respond(Request{Host: h, Path: p, Query: q, Country: "ES",
				ClientIP: "127.0.0.1", Cookies: map[string]string{}, Phase: PhaseCrawl})
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestEveryServiceScriptVariantInterpretable(t *testing.T) {
	e := Generate(Params{Seed: 13, Scale: 0.015})
	for _, svc := range e.Services {
		for v := 0; v < svc.ScriptVariants; v++ {
			src := ServiceScript(svc, v, "uidABCDEF", "https")
			if src == "" {
				t.Errorf("%s variant %d: empty script", svc.Host, v)
			}
		}
		// Out-of-range variants must clamp, not panic.
		ServiceScript(svc, -3, "u", "http")
		ServiceScript(svc, svc.ScriptVariants+7, "u", "http")
	}
}

func TestScaledMonotonicity(t *testing.T) {
	small := Generate(Params{Seed: 3, Scale: 0.01})
	big := Generate(Params{Seed: 3, Scale: 0.05})
	if len(big.PornSites) <= len(small.PornSites) {
		t.Error("scale must grow the porn corpus")
	}
	if len(big.Services) <= len(small.Services) {
		t.Error("scale must grow the service population")
	}
}

func TestSyncPartnersResolvable(t *testing.T) {
	e := Generate(Params{Seed: 3, Scale: 0.02})
	for _, svc := range e.Services {
		if len(svc.SyncPartners) == 0 {
			continue
		}
		if p := e.pickPartner(svc, 0); p == nil {
			t.Errorf("%s: no resolvable sync partner among %v", svc.Host, svc.SyncPartners)
		}
	}
}

func TestRenderLandingAllCountries(t *testing.T) {
	e := Generate(Params{Seed: 3, Scale: 0.01})
	for _, s := range e.PornSites[:min(30, len(e.PornSites))] {
		for _, c := range Countries {
			html := e.RenderLanding(s, PageContext{Country: c, Scheme: "http", FirstPartyUID: "u"})
			if len(html) < 100 {
				t.Errorf("%s/%s: suspiciously small page", s.Host, c)
			}
		}
	}
}

func TestCookieLenInvariant(t *testing.T) {
	e := Generate(Params{Seed: 3, Scale: 0.02})
	for _, svc := range e.Services {
		if svc.SetsIDCookie && svc.CookiesPerHit < 1 {
			t.Errorf("%s: ID cookie service with CookiesPerHit=%d", svc.Host, svc.CookiesPerHit)
		}
		if svc.Prevalence[Porn] < 0 || svc.Prevalence[Porn] > 1 ||
			svc.Prevalence[Regular] < 0 || svc.Prevalence[Regular] > 1 {
			t.Errorf("%s: prevalence out of range %v", svc.Host, svc.Prevalence)
		}
	}
}

func TestSharedServicesHavePrevalence(t *testing.T) {
	// Regression test: every non-country-exclusive service must be
	// embeddable somewhere (a silent zero-prevalence pool once removed
	// ~2,800 planted services from the world).
	e := Generate(Params{Seed: 3, Scale: 0.02})
	for _, svc := range e.Services {
		if svc.Prevalence[Porn] == 0 && svc.Prevalence[Regular] == 0 {
			t.Errorf("%s (%s): zero prevalence on both sides", svc.Host, svc.Category)
		}
	}
}
