// Package cookies implements the HTTP-cookie analyses of Section 5.1: the
// cookie census with the identifier filter (drop session cookies and values
// shorter than 6 characters), detection of client IPs and geolocation data
// encoded inside cookie values (base64 and URL encodings), and cookie-
// synchronization detection — an observed cookie value later embedded
// verbatim in a request URL to a different domain. As in the paper, values
// are never split on delimiters, so sync detection is a lower bound.
package cookies

import (
	"encoding/base64"
	"net/url"
	"sort"
	"strings"

	"pornweb/internal/crawler"
	"pornweb/internal/domain"
)

// MinIDLength is the paper's minimum value length for a cookie to possibly
// carry a unique identifier.
const MinIDLength = 6

// Observed is one cookie observation attributed to the visit that caused
// it.
type Observed struct {
	Name     string
	Value    string
	Host     string // host that set it
	SiteHost string // site being visited
	Session  bool
	Seq      int // position in the crawl log
	// ThirdParty is true when Host belongs to a different entity than
	// SiteHost.
	ThirdParty bool
}

// IsIDCandidate applies the identifier filter.
func (o Observed) IsIDCandidate() bool {
	return !o.Session && len(o.Value) >= MinIDLength
}

// Collect extracts all cookie observations from a crawl log, labeling each
// first/third party with the given classifier (nil uses base-domain
// comparison only).
func Collect(records []crawler.Record, cls *domain.Classifier) []Observed {
	var out []Observed
	for _, r := range records {
		for _, c := range r.SetCookies {
			o := Observed{
				Name:     c.Name,
				Value:    c.Value,
				Host:     c.Host,
				SiteHost: r.SiteHost,
				Session:  c.Session,
				Seq:      r.Seq,
			}
			o.ThirdParty = cls.Classify(r.SiteHost, c.Host) == domain.ThirdParty
			out = append(out, o)
		}
	}
	return out
}

// Census is the Section 5.1.1 cookie census.
type Census struct {
	Total             int
	SitesWithCookies  map[string]bool
	IDCookies         int
	Over1000Chars     int
	ThirdPartyID      int
	ThirdPartyDomains map[string]bool // FQDNs delivering third-party ID cookies
	SitesWithTPID     map[string]bool // sites receiving third-party ID cookies
	// PopularPairs counts identical name=value pairs across sites (the
	// "100 most popular cookies" analysis).
	PopularPairs map[string]map[string]bool // name=value -> sites
}

// BuildCensus aggregates observations into the census.
func BuildCensus(obs []Observed) *Census {
	c := &Census{
		SitesWithCookies:  map[string]bool{},
		ThirdPartyDomains: map[string]bool{},
		SitesWithTPID:     map[string]bool{},
		PopularPairs:      map[string]map[string]bool{},
	}
	for _, o := range obs {
		c.Total++
		c.SitesWithCookies[o.SiteHost] = true
		if !o.IsIDCandidate() {
			continue
		}
		c.IDCookies++
		if len(o.Value) > 1000 {
			c.Over1000Chars++
		}
		if o.ThirdParty {
			c.ThirdPartyID++
			c.ThirdPartyDomains[o.Host] = true
			c.SitesWithTPID[o.SiteHost] = true
		}
		key := o.Name + "=" + o.Value
		if c.PopularPairs[key] == nil {
			c.PopularPairs[key] = map[string]bool{}
		}
		c.PopularPairs[key][o.SiteHost] = true
	}
	return c
}

// TopPairs returns the n most widespread name=value pairs with their site
// counts, descending.
func (c *Census) TopPairs(n int) []struct {
	Pair  string
	Sites int
} {
	type ps struct {
		Pair  string
		Sites int
	}
	all := make([]ps, 0, len(c.PopularPairs))
	for k, sites := range c.PopularPairs {
		all = append(all, ps{k, len(sites)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Sites != all[j].Sites {
			return all[i].Sites > all[j].Sites
		}
		return all[i].Pair < all[j].Pair
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]struct {
		Pair  string
		Sites int
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Pair  string
			Sites int
		}{all[i].Pair, all[i].Sites}
	}
	return out
}

// Decoded reports sensitive data found inside a cookie value.
type Decoded struct {
	HasClientIP bool
	HasGeo      bool
	Lat, Lon    string
	HasISP      bool
}

// DecodeValue searches a cookie value for the visitor's IP address and for
// geolocation payloads, trying the two encodings the paper tried: base64
// and URL encoding. Values are additionally split on common separators
// because encoders operate on segments, not because the matching needs it.
func DecodeValue(value, clientIP string) Decoded {
	var d Decoded
	if clientIP != "" && strings.Contains(value, clientIP) {
		d.HasClientIP = true
	}
	checkGeo := func(s string) {
		if !strings.Contains(s, "lat=") {
			return
		}
		d.HasGeo = true
		d.Lat = extractField(s, "lat")
		d.Lon = extractField(s, "lon")
		if strings.Contains(s, "isp=") {
			d.HasISP = true
		}
	}
	checkGeo(value)
	if un, err := url.QueryUnescape(value); err == nil && un != value {
		checkGeo(un)
		if clientIP != "" && strings.Contains(un, clientIP) {
			d.HasClientIP = true
		}
	}
	for _, seg := range splitSegments(value) {
		if dec, err := base64.StdEncoding.DecodeString(seg); err == nil && len(dec) > 0 {
			s := string(dec)
			if clientIP != "" && strings.Contains(s, clientIP) {
				d.HasClientIP = true
			}
			checkGeo(s)
		}
		if dec, err := base64.RawStdEncoding.DecodeString(seg); err == nil && len(dec) > 0 {
			s := string(dec)
			if clientIP != "" && strings.Contains(s, clientIP) {
				d.HasClientIP = true
			}
		}
	}
	return d
}

func splitSegments(v string) []string {
	return strings.FieldsFunc(v, func(r rune) bool {
		return r == '.' || r == '|' || r == ':' || r == ';' || r == ',' || r == '%'
	})
}

func extractField(s, key string) string {
	idx := strings.Index(s, key+"=")
	if idx < 0 {
		return ""
	}
	rest := s[idx+len(key)+1:]
	end := strings.IndexAny(rest, "|&; ")
	if end < 0 {
		end = len(rest)
	}
	return rest[:end]
}

// SyncEvent is one observed cookie synchronization: a cookie set by
// OriginHost whose value later appeared in a request URL to DestHost.
type SyncEvent struct {
	OriginHost string
	DestHost   string
	SiteHost   string // site during whose visit the sync request fired
	CookieName string
	Value      string
}

// MinSyncValueLen guards against trivial substring collisions; the paper's
// ID filter already requires >= 6 characters, and sync identifiers are
// longer in practice.
const MinSyncValueLen = 8

// DetectSyncs finds cookie-sync events in a crawl log: for every request,
// any previously observed cookie whose value (whole, never split) is
// embedded in the request URL and whose setting host differs from the
// request host at the base-domain level. Every matching request counts as
// one exchange — Figure 4's edge weights are exchange counts.
//
// For tractability over large logs, values are matched against the
// request's query-parameter values and path segments (raw and URL-decoded)
// rather than by scanning the whole URL per known cookie; identifiers
// shared through cookie syncing travel as parameter values, so this keeps
// the paper's whole-value semantics while staying near-linear.
func DetectSyncs(records []crawler.Record) []SyncEvent {
	return DetectSyncsOpts(records, SyncOptions{})
}

// SyncOptions tunes the sync detector (used by the detection ablation).
type SyncOptions struct {
	// QueryOnly restricts matching to query-parameter values, ignoring
	// identifiers carried in URL path segments.
	QueryOnly bool
}

// DetectSyncsOpts is DetectSyncs with explicit options.
func DetectSyncsOpts(records []crawler.Record, opts SyncOptions) []SyncEvent {
	type ck struct {
		name, host string
		seq        int
	}
	seen := map[string][]ck{} // value -> setters
	var events []SyncEvent
	for _, r := range records {
		if r.URL != "" && len(seen) > 0 {
			reqBase := domain.Base(r.Host)
			for _, candidate := range urlValueCandidates(r.URL, opts.QueryOnly) {
				for _, c := range seen[candidate] {
					if c.seq >= r.Seq {
						continue
					}
					if domain.Base(c.host) == reqBase {
						continue
					}
					events = append(events, SyncEvent{
						OriginHost: c.host,
						DestHost:   r.Host,
						SiteHost:   r.SiteHost,
						CookieName: c.name,
						Value:      candidate,
					})
				}
			}
		}
		for _, sc := range r.SetCookies {
			if len(sc.Value) < MinSyncValueLen || sc.Session {
				continue
			}
			dup := false
			for _, c := range seen[sc.Value] {
				if c.host == sc.Host && c.name == sc.Name {
					dup = true
					break
				}
			}
			if !dup {
				seen[sc.Value] = append(seen[sc.Value], ck{sc.Name, sc.Host, r.Seq})
			}
		}
	}
	return events
}

// urlValueCandidates extracts the parameter values (and, unless queryOnly,
// path segments) of a URL, raw and URL-decoded, deduplicated.
func urlValueCandidates(raw string, queryOnly bool) []string {
	u, err := url.Parse(raw)
	if err != nil {
		return nil
	}
	set := map[string]bool{}
	add := func(v string) {
		if len(v) >= MinSyncValueLen && !set[v] {
			set[v] = true
		}
	}
	for _, vs := range u.Query() {
		for _, v := range vs {
			add(v)
		}
	}
	// Raw query values (in case decoding altered the value).
	for _, kv := range strings.Split(u.RawQuery, "&") {
		if i := strings.IndexByte(kv, '='); i >= 0 {
			add(kv[i+1:])
		}
	}
	if !queryOnly {
		for _, seg := range strings.Split(u.Path, "/") {
			add(seg)
			if dec, err := url.PathUnescape(seg); err == nil {
				add(dec)
			}
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	return out
}

// Graph is the domain-level cookie-sync graph of Figure 4.
type Graph struct {
	// Pairs counts synced cookies per (origin base, destination base).
	Pairs map[[2]string]int
	// Origins and Dests are the distinct domains on each side.
	Origins map[string]bool
	Dests   map[string]bool
	// Sites saw at least one sync during their visit.
	Sites map[string]bool
}

// BuildGraph aggregates events at the base-domain level.
func BuildGraph(events []SyncEvent) *Graph {
	g := &Graph{
		Pairs:   map[[2]string]int{},
		Origins: map[string]bool{},
		Dests:   map[string]bool{},
		Sites:   map[string]bool{},
	}
	for _, ev := range events {
		o, d := domain.Base(ev.OriginHost), domain.Base(ev.DestHost)
		if o == d {
			continue
		}
		g.Pairs[[2]string{o, d}]++
		g.Origins[o] = true
		g.Dests[d] = true
		if ev.SiteHost != "" {
			g.Sites[ev.SiteHost] = true
		}
	}
	return g
}

// Edge is a rendered graph edge.
type Edge struct {
	Origin, Dest string
	Count        int
}

// EdgesWithAtLeast returns the edges exchanging at least n cookies, sorted
// by count descending — the Figure 4 rendering threshold (75 in the paper).
func (g *Graph) EdgesWithAtLeast(n int) []Edge {
	var out []Edge
	for pair, cnt := range g.Pairs {
		if cnt >= n {
			out = append(out, Edge{pair[0], pair[1], cnt})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Origin != out[j].Origin {
			return out[i].Origin < out[j].Origin
		}
		return out[i].Dest < out[j].Dest
	})
	return out
}
