package cookies

import (
	"encoding/base64"
	"testing"
	"testing/quick"

	"pornweb/internal/crawler"
)

func rec(seq int, url, host, site string, cks ...crawler.CookieRecord) crawler.Record {
	return crawler.Record{Seq: seq, URL: url, Host: host, SiteHost: site, SetCookies: cks}
}

func TestCollectAndCensus(t *testing.T) {
	records := []crawler.Record{
		rec(1, "http://site1.com/", "site1.com", "site1.com",
			crawler.CookieRecord{Name: "fpuid", Value: "abcdef123456", Host: "site1.com"},
			crawler.CookieRecord{Name: "lg", Value: "en", Host: "site1.com", Session: true},
		),
		rec(2, "http://ads.example/px.gif", "ads.example", "site1.com",
			crawler.CookieRecord{Name: "uid", Value: "zzzzyyyyxxxx", Host: "ads.example"},
			crawler.CookieRecord{Name: "s", Value: "1", Host: "ads.example"},
		),
		rec(3, "http://ads.example/px.gif", "ads.example", "site2.com",
			crawler.CookieRecord{Name: "big", Value: string(make([]byte, 1500)), Host: "ads.example"},
		),
	}
	obs := Collect(records, nil)
	if len(obs) != 5 {
		t.Fatalf("observations = %d, want 5", len(obs))
	}
	c := BuildCensus(obs)
	if c.Total != 5 {
		t.Errorf("Total = %d", c.Total)
	}
	if len(c.SitesWithCookies) != 2 {
		t.Errorf("SitesWithCookies = %d", len(c.SitesWithCookies))
	}
	// ID cookies: fpuid, uid, big (session "lg" and short "s"/"1" excluded).
	if c.IDCookies != 3 {
		t.Errorf("IDCookies = %d, want 3", c.IDCookies)
	}
	if c.Over1000Chars != 1 {
		t.Errorf("Over1000Chars = %d", c.Over1000Chars)
	}
	if c.ThirdPartyID != 2 {
		t.Errorf("ThirdPartyID = %d, want 2", c.ThirdPartyID)
	}
	if !c.ThirdPartyDomains["ads.example"] {
		t.Error("ads.example missing from third-party domains")
	}
	if len(c.SitesWithTPID) != 2 {
		t.Errorf("SitesWithTPID = %d", len(c.SitesWithTPID))
	}
}

func TestFirstPartySubdomainNotThirdParty(t *testing.T) {
	records := []crawler.Record{
		rec(1, "http://cdn.site1.com/x", "cdn.site1.com", "site1.com",
			crawler.CookieRecord{Name: "a", Value: "abcdef", Host: "cdn.site1.com"}),
	}
	obs := Collect(records, nil)
	if obs[0].ThirdParty {
		t.Error("same-base subdomain must be first party")
	}
}

func TestTopPairs(t *testing.T) {
	var records []crawler.Record
	for i, site := range []string{"a.com", "b.com", "c.com"} {
		records = append(records, rec(i+1, "http://t.example/px", "t.example", site,
			crawler.CookieRecord{Name: "cons", Value: "static1", Host: "t.example"}))
	}
	records = append(records, rec(9, "http://t.example/px", "t.example", "a.com",
		crawler.CookieRecord{Name: "uid", Value: "unique99", Host: "t.example"}))
	c := BuildCensus(Collect(records, nil))
	top := c.TopPairs(1)
	if len(top) != 1 || top[0].Pair != "cons=static1" || top[0].Sites != 3 {
		t.Errorf("TopPairs = %+v", top)
	}
}

func TestDecodeValueIP(t *testing.T) {
	ip := "203.0.113.9"
	b64 := base64.StdEncoding.EncodeToString([]byte(ip))
	cases := []struct {
		value string
		want  bool
	}{
		{b64 + ".someuidpart", true},
		{"plain-" + ip + "-embedded", true},
		{"nothinghere1234", false},
		{base64.StdEncoding.EncodeToString([]byte("10.0.0.1")) + ".x", false},
	}
	for _, c := range cases {
		if got := DecodeValue(c.value, ip).HasClientIP; got != c.want {
			t.Errorf("DecodeValue(%q).HasClientIP = %v, want %v", c.value, got, c.want)
		}
	}
}

func TestDecodeValueGeo(t *testing.T) {
	v := "lat%3D40.4168%7Clon%3D-3.7038%7Cisp%3DAcme.uid123"
	d := DecodeValue(v, "")
	if !d.HasGeo || d.Lat != "40.4168" || d.Lon != "-3.7038" || !d.HasISP {
		t.Errorf("decoded = %+v", d)
	}
	plain := DecodeValue("lat=1.5|lon=2.5", "")
	if !plain.HasGeo || plain.HasISP {
		t.Errorf("plain geo = %+v", plain)
	}
}

func TestDecodeValueNeverPanics(t *testing.T) {
	f := func(v, ip string) bool {
		DecodeValue(v, ip)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDetectSyncs(t *testing.T) {
	records := []crawler.Record{
		rec(1, "http://origin.example/px.gif", "origin.example", "site1.com",
			crawler.CookieRecord{Name: "uid", Value: "SYNCVALUE123", Host: "origin.example"}),
		// Same-domain request containing the value: not a sync.
		rec(2, "http://origin.example/collect?u=SYNCVALUE123", "origin.example", "site1.com"),
		// Cross-domain request with embedded value: a sync.
		rec(3, "http://partner.example/sync?puid=SYNCVALUE123&d=1", "partner.example", "site1.com"),
		// Unrelated request: nothing.
		rec(4, "http://other.example/x", "other.example", "site1.com"),
	}
	events := DetectSyncs(records)
	if len(events) != 1 {
		t.Fatalf("events = %+v", events)
	}
	ev := events[0]
	if ev.OriginHost != "origin.example" || ev.DestHost != "partner.example" || ev.SiteHost != "site1.com" {
		t.Errorf("event = %+v", ev)
	}
}

func TestDetectSyncsURLEscaped(t *testing.T) {
	records := []crawler.Record{
		rec(1, "http://o.example/px", "o.example", "s.com",
			crawler.CookieRecord{Name: "uid", Value: "VAL|WITH|PIPES", Host: "o.example"}),
		rec(2, "http://d.example/sync?puid=VAL%7CWITH%7CPIPES", "d.example", "s.com"),
	}
	events := DetectSyncs(records)
	if len(events) != 1 {
		t.Fatalf("escaped value not matched: %+v", events)
	}
}

func TestDetectSyncsOrderMatters(t *testing.T) {
	// A value appearing in a request *before* the cookie was set is not a
	// sync of that cookie.
	records := []crawler.Record{
		rec(1, "http://d.example/sync?puid=EARLYVALUE99", "d.example", "s.com"),
		rec(2, "http://o.example/px", "o.example", "s.com",
			crawler.CookieRecord{Name: "uid", Value: "EARLYVALUE99", Host: "o.example"}),
	}
	if events := DetectSyncs(records); len(events) != 0 {
		t.Errorf("pre-cookie request counted as sync: %+v", events)
	}
}

func TestDetectSyncsShortValuesIgnored(t *testing.T) {
	records := []crawler.Record{
		rec(1, "http://o.example/px", "o.example", "s.com",
			crawler.CookieRecord{Name: "c", Value: "abc", Host: "o.example"}),
		rec(2, "http://d.example/x?v=abc", "d.example", "s.com"),
	}
	if events := DetectSyncs(records); len(events) != 0 {
		t.Errorf("short value matched: %+v", events)
	}
}

func TestBuildGraph(t *testing.T) {
	events := []SyncEvent{
		{OriginHost: "a.one.com", DestHost: "b.two.com", SiteHost: "s1.com"},
		{OriginHost: "one.com", DestHost: "two.com", SiteHost: "s2.com"},
		{OriginHost: "one.com", DestHost: "three.com", SiteHost: "s1.com"},
		{OriginHost: "x.same.com", DestHost: "y.same.com", SiteHost: "s1.com"}, // same base: dropped
	}
	g := BuildGraph(events)
	if g.Pairs[[2]string{"one.com", "two.com"}] != 2 {
		t.Errorf("pair count = %d, want 2 (subdomains merged)", g.Pairs[[2]string{"one.com", "two.com"}])
	}
	if len(g.Origins) != 1 || len(g.Dests) != 2 {
		t.Errorf("origins=%d dests=%d", len(g.Origins), len(g.Dests))
	}
	if len(g.Sites) != 2 {
		t.Errorf("sites = %d", len(g.Sites))
	}
	edges := g.EdgesWithAtLeast(2)
	if len(edges) != 1 || edges[0].Count != 2 {
		t.Errorf("edges = %+v", edges)
	}
}

func TestIsIDCandidate(t *testing.T) {
	cases := []struct {
		o    Observed
		want bool
	}{
		{Observed{Value: "abcdef", Session: false}, true},
		{Observed{Value: "abcde", Session: false}, false},
		{Observed{Value: "abcdefgh", Session: true}, false},
	}
	for _, c := range cases {
		if got := c.o.IsIDCandidate(); got != c.want {
			t.Errorf("IsIDCandidate(%+v) = %v", c.o, got)
		}
	}
}
