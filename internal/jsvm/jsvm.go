// Package jsvm executes the JavaScript-like tracker scripts served by the
// generated ecosystem and records every privacy-relevant browser API call,
// mirroring OpenWPM's JavaScript instrumentation.
//
// The paper's fingerprinting analysis (Section 5.1.3) does not need full
// JavaScript semantics: it consumes per-script API call traces — canvas
// sizes, colors and text drawn, toDataURL/getImageData invocations,
// measureText repetition for font fingerprinting, RTCPeerConnection usage
// for WebRTC, document.cookie writes, and the URLs of tracking pixels and
// beacons a script triggers. jsvm interprets a pragmatic subset of
// JavaScript sufficient for the scripts the ecosystem generator emits:
// statements, var declarations, assignments, member calls, string
// concatenation, new-expressions, and constant-bound for loops.
package jsvm

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Env supplies the ambient browser state visible to scripts.
type Env struct {
	UserAgent string
	ScreenW   int
	ScreenH   int
	ClientIP  string // what the server told the script (e.g. via template)
	Language  string
	Bindings  map[string]string // pre-bound string variables (e.g. uid)
}

// CanvasRecord accumulates the per-canvas facts the Englehardt heuristics
// test.
type CanvasRecord struct {
	Width, Height    int
	Colors           map[string]bool // distinct fillStyle/strokeStyle values
	Text             strings.Builder // all text drawn via fillText/strokeText
	ToDataURL        int             // calls to canvas.toDataURL
	GetImageData     int             // calls to ctx.getImageData
	GetImageDataArea int             // max area requested by getImageData
	Save             int             // ctx.save calls
	Restore          int             // ctx.restore calls
	AddEventListener int             // canvas.addEventListener calls
}

// canvasJSON is CanvasRecord's serialized form: the Text builder
// flattens to a plain string, so a trace that round-trips through the
// durable visit store keeps the drawn text the canvas-fingerprinting
// heuristics count (a bare strings.Builder marshals to nothing).
type canvasJSON struct {
	Width, Height    int
	Colors           map[string]bool
	Text             string
	ToDataURL        int
	GetImageData     int
	GetImageDataArea int
	Save             int
	Restore          int
	AddEventListener int
}

// MarshalJSON implements json.Marshaler.
func (c *CanvasRecord) MarshalJSON() ([]byte, error) {
	return json.Marshal(canvasJSON{
		Width: c.Width, Height: c.Height,
		Colors:           c.Colors,
		Text:             c.Text.String(),
		ToDataURL:        c.ToDataURL,
		GetImageData:     c.GetImageData,
		GetImageDataArea: c.GetImageDataArea,
		Save:             c.Save,
		Restore:          c.Restore,
		AddEventListener: c.AddEventListener,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (c *CanvasRecord) UnmarshalJSON(raw []byte) error {
	var j canvasJSON
	if err := json.Unmarshal(raw, &j); err != nil {
		return err
	}
	*c = CanvasRecord{
		Width: j.Width, Height: j.Height,
		Colors:           j.Colors,
		ToDataURL:        j.ToDataURL,
		GetImageData:     j.GetImageData,
		GetImageDataArea: j.GetImageDataArea,
		Save:             j.Save,
		Restore:          j.Restore,
		AddEventListener: j.AddEventListener,
	}
	c.Text.WriteString(j.Text)
	return nil
}

// DistinctTextChars returns the number of distinct characters drawn onto the
// canvas.
func (c *CanvasRecord) DistinctTextChars() int {
	seen := map[rune]bool{}
	for _, r := range c.Text.String() {
		seen[r] = true
	}
	return len(seen)
}

// WebRTCRecord captures RTCPeerConnection usage.
type WebRTCRecord struct {
	PeerConnections   int
	CreateDataChannel int
	CreateOffer       int
	OnICECandidate    int
}

// Used reports whether any WebRTC API was touched.
func (w *WebRTCRecord) Used() bool {
	return w != nil && (w.PeerConnections > 0 || w.CreateDataChannel > 0 || w.CreateOffer > 0 || w.OnICECandidate > 0)
}

// Trace is the instrumented execution record of one script.
type Trace struct {
	ScriptURL     string
	Canvases      []*CanvasRecord
	MeasureText   map[string]int // text -> number of measureText calls
	FontSets      int            // assignments to ctx.font
	WebRTC        WebRTCRecord
	CookieWrites  []string // raw document.cookie assignments
	Requests      []string // URLs the script fetched (pixels, beacons, XHR)
	StorageWrites []string // localStorage.setItem keys
	PropertyReads []string // fingerprintable property reads (navigator.*, screen.*)
	Errors        []string // interpretation problems (non-fatal)
}

// value is a runtime value: a string, a number, or an object handle.
type value struct {
	kind kindT
	s    string
	n    float64
	obj  *object
}

type kindT int

const (
	kString kindT = iota
	kNumber
	kObject
	kUndefined
)

type object struct {
	class  string // "canvas", "ctx2d", "rtc", "image", "xhr"
	canvas *CanvasRecord
}

func str(s string) value   { return value{kind: kString, s: s} }
func num(n float64) value  { return value{kind: kNumber, n: n} }
func objv(o *object) value { return value{kind: kObject, obj: o} }
func undef() value         { return value{kind: kUndefined} }
func (v value) String() string {
	switch v.kind {
	case kString:
		return v.s
	case kNumber:
		if v.n == float64(int64(v.n)) {
			return strconv.FormatInt(int64(v.n), 10)
		}
		return strconv.FormatFloat(v.n, 'g', -1, 64)
	case kObject:
		return "[object " + v.obj.class + "]"
	}
	return "undefined"
}

// interp is one script execution.
type interp struct {
	env   Env
	trace *Trace
	vars  map[string]value
	steps int // fuel: guards against runaway loops
}

const maxSteps = 200000

// Execute runs src in env and returns its instrumented trace. Execution is
// best-effort: statements that cannot be interpreted are recorded in
// Trace.Errors and skipped, like a browser skipping a throwing statement.
func Execute(scriptURL, src string, env Env) *Trace {
	t := &Trace{ScriptURL: scriptURL, MeasureText: map[string]int{}}
	in := &interp{env: env, trace: t, vars: map[string]value{}}
	for k, v := range env.Bindings {
		in.vars[k] = str(v)
	}
	in.execBlock(src)
	return t
}

// execBlock executes a sequence of statements.
func (in *interp) execBlock(src string) {
	stmts := splitStatements(src)
	for _, s := range stmts {
		if in.steps > maxSteps {
			in.trace.Errors = append(in.trace.Errors, "fuel exhausted")
			return
		}
		in.execStmt(s)
	}
}

// splitStatements splits on ';' and '}' boundaries at nesting depth zero,
// keeping for-loops (with their bodies) as single units.
func splitStatements(src string) []string {
	var out []string
	depthParen, depthBrace := 0, 0
	inStr := byte(0)
	start := 0
	flush := func(end int) {
		s := strings.TrimSpace(src[start:end])
		if s != "" {
			out = append(out, s)
		}
		start = end + 1
	}
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inStr != 0 {
			if c == '\\' {
				i++
			} else if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inStr = c
		case '(':
			depthParen++
		case ')':
			depthParen--
		case '{':
			depthBrace++
		case '}':
			depthBrace--
			if depthBrace == 0 && depthParen == 0 {
				// End of a block statement (e.g. for-loop body).
				flush(i + 1)
				start = i + 1
			}
		case ';':
			if depthParen == 0 && depthBrace == 0 {
				flush(i)
			}
		case '\n':
			// Newline ends a statement when not inside any nesting and the
			// trimmed fragment doesn't continue an expression.
			if depthParen == 0 && depthBrace == 0 {
				frag := strings.TrimSpace(src[start:i])
				if frag != "" && !strings.HasSuffix(frag, "+") && !strings.HasSuffix(frag, "=") && !strings.HasSuffix(frag, ",") {
					flush(i)
				}
			}
		}
	}
	if s := strings.TrimSpace(src[start:]); s != "" {
		out = append(out, s)
	}
	return out
}

func (in *interp) execStmt(s string) {
	in.steps++
	s = strings.TrimSpace(s)
	if s == "" || strings.HasPrefix(s, "//") {
		return
	}
	if strings.HasPrefix(s, "for") {
		in.execFor(s)
		return
	}
	if strings.HasPrefix(s, "var ") {
		s = strings.TrimSpace(s[4:])
	} else if strings.HasPrefix(s, "let ") || strings.HasPrefix(s, "const") {
		s = strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(s, "let "), "const "))
	}
	// Assignment at top level (not ==, <=, >=, !=)?
	if lhs, rhs, ok := splitAssign(s); ok {
		in.execAssign(lhs, rhs)
		return
	}
	// Plain expression statement (usually a call).
	in.eval(s)
}

// splitAssign splits "lhs = rhs" at the first top-level '=' that is an
// assignment operator.
func splitAssign(s string) (lhs, rhs string, ok bool) {
	depth := 0
	inStr := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr != 0 {
			if c == '\\' {
				i++
			} else if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inStr = c
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		case '=':
			if depth != 0 {
				continue
			}
			if i+1 < len(s) && s[i+1] == '=' {
				return "", "", false // comparison
			}
			if i > 0 && (s[i-1] == '=' || s[i-1] == '!' || s[i-1] == '<' || s[i-1] == '>' || s[i-1] == '+') {
				if s[i-1] == '+' {
					// += : treat as assignment of concatenation.
					return strings.TrimSpace(s[:i-1]), strings.TrimSpace(s[:i-1]) + "+" + s[i+1:], true
				}
				return "", "", false
			}
			return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), true
		}
	}
	return "", "", false
}

// execFor runs constant-bound loops of the form
// for (var i = A; i < B; i++) { body }.
func (in *interp) execFor(s string) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return
	}
	depth := 0
	closeIdx := -1
	for i := open; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				closeIdx = i
			}
		}
		if closeIdx >= 0 {
			break
		}
	}
	if closeIdx < 0 {
		return
	}
	header := s[open+1 : closeIdx]
	bodyStart := strings.IndexByte(s[closeIdx:], '{')
	if bodyStart < 0 {
		return
	}
	body := s[closeIdx+bodyStart+1:]
	body = strings.TrimSuffix(strings.TrimSpace(body), "}")
	parts := strings.SplitN(header, ";", 3)
	if len(parts) != 3 {
		return
	}
	initStmt := strings.TrimSpace(parts[0])
	cond := strings.TrimSpace(parts[1])
	// Extract loop variable and start.
	initStmt = strings.TrimPrefix(initStmt, "var ")
	initStmt = strings.TrimPrefix(initStmt, "let ")
	eq := strings.IndexByte(initStmt, '=')
	if eq < 0 {
		return
	}
	loopVar := strings.TrimSpace(initStmt[:eq])
	startV := in.eval(strings.TrimSpace(initStmt[eq+1:]))
	lt := strings.IndexByte(cond, '<')
	if lt < 0 {
		return
	}
	boundV := in.eval(strings.TrimSpace(cond[lt+1:]))
	startN, boundN := int(startV.n), int(boundV.n)
	if boundN-startN > 10000 {
		boundN = startN + 10000
	}
	for i := startN; i < boundN; i++ {
		in.vars[loopVar] = num(float64(i))
		in.execBlock(body)
		if in.steps > maxSteps {
			return
		}
	}
}

func (in *interp) execAssign(lhs, rhs string) {
	rv := in.eval(rhs)
	// Member assignment?
	if dot := lastTopLevelDot(lhs); dot >= 0 {
		objExpr, prop := lhs[:dot], lhs[dot+1:]
		in.setMember(objExpr, strings.TrimSpace(prop), rv)
		return
	}
	in.vars[lhs] = rv
}

// setMember implements property writes on builtin objects.
func (in *interp) setMember(objExpr, prop string, rv value) {
	switch objExpr {
	case "document":
		if prop == "cookie" {
			in.trace.CookieWrites = append(in.trace.CookieWrites, rv.String())
		}
		return
	case "window", "self":
		in.vars[prop] = rv
		return
	}
	ov := in.eval(objExpr)
	if ov.kind != kObject {
		in.vars[objExpr+"."+prop] = rv
		return
	}
	switch ov.obj.class {
	case "canvas":
		switch prop {
		case "width":
			ov.obj.canvas.Width = int(rv.n)
		case "height":
			ov.obj.canvas.Height = int(rv.n)
		}
	case "ctx2d":
		switch prop {
		case "fillStyle", "strokeStyle":
			ov.obj.canvas.Colors[rv.String()] = true
		case "font":
			in.trace.FontSets++
		case "textBaseline":
			// cosmetic; ignore
		}
	case "image":
		if prop == "src" {
			in.trace.Requests = append(in.trace.Requests, rv.String())
		}
	case "rtc":
		if prop == "onicecandidate" {
			in.trace.WebRTC.OnICECandidate++
		}
	}
}

// lastTopLevelDot finds the last '.' outside parens/strings, so that
// "a.b(c.d).e" splits at the final dot.
func lastTopLevelDot(s string) int {
	depth := 0
	inStr := byte(0)
	last := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr != 0 {
			if c == '\\' {
				i++
			} else if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inStr = c
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case '.':
			if depth == 0 {
				last = i
			}
		}
	}
	return last
}

// eval evaluates an expression.
func (in *interp) eval(expr string) value {
	in.steps++
	if in.steps > maxSteps {
		return undef()
	}
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return undef()
	}
	// String concatenation at top level.
	if parts := splitTopLevel(expr, '+'); len(parts) > 1 {
		allNumeric := true
		sum := 0.0
		vals := make([]value, len(parts))
		for i, p := range parts {
			vals[i] = in.eval(p)
			if vals[i].kind != kNumber {
				allNumeric = false
			} else {
				sum += vals[i].n
			}
		}
		if allNumeric {
			return num(sum)
		}
		var b strings.Builder
		for _, v := range vals {
			b.WriteString(v.String())
		}
		return str(b.String())
	}
	// Literals.
	if len(expr) >= 2 && (expr[0] == '\'' || expr[0] == '"') && expr[len(expr)-1] == expr[0] {
		return str(unescape(expr[1 : len(expr)-1]))
	}
	if n, err := strconv.ParseFloat(expr, 64); err == nil {
		return num(n)
	}
	// new-expressions.
	if strings.HasPrefix(expr, "new ") {
		return in.evalNew(strings.TrimSpace(expr[4:]))
	}
	// Member access / calls.
	if dot := lastTopLevelDot(expr); dot >= 0 {
		return in.evalMember(expr[:dot], expr[dot+1:])
	}
	// Bare call like fetch(...) or sendBeacon handled under navigator.
	if name, args, ok := parseCall(expr); ok {
		switch name {
		case "fetch":
			if len(args) > 0 {
				in.trace.Requests = append(in.trace.Requests, in.eval(args[0]).String())
			}
			return undef()
		case "parseInt", "Number":
			if len(args) > 0 {
				v := in.eval(args[0])
				if v.kind == kString {
					if n, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64); err == nil {
						return num(n)
					}
				}
				return v
			}
		case "encodeURIComponent", "btoa", "atob", "escape", "String":
			if len(args) > 0 {
				return str(in.eval(args[0]).String())
			}
		}
		return undef()
	}
	// Variable.
	if v, ok := in.vars[expr]; ok {
		return v
	}
	return undef()
}

func (in *interp) evalNew(expr string) value {
	name, args, ok := parseCall(expr)
	if !ok {
		name = expr
	}
	_ = args
	switch name {
	case "RTCPeerConnection", "webkitRTCPeerConnection", "mozRTCPeerConnection":
		in.trace.WebRTC.PeerConnections++
		return objv(&object{class: "rtc"})
	case "Image":
		return objv(&object{class: "image"})
	case "XMLHttpRequest":
		return objv(&object{class: "xhr"})
	case "Date":
		return objv(&object{class: "date"})
	}
	return objv(&object{class: strings.ToLower(name)})
}

// evalMember evaluates obj.prop or obj.method(args).
func (in *interp) evalMember(objExpr, rest string) value {
	rest = strings.TrimSpace(rest)
	if name, args, ok := parseCall(rest); ok {
		return in.callMethod(objExpr, name, args)
	}
	// Property read.
	switch objExpr {
	case "navigator":
		in.trace.PropertyReads = append(in.trace.PropertyReads, "navigator."+rest)
		switch rest {
		case "userAgent":
			return str(in.env.UserAgent)
		case "language":
			return str(in.env.Language)
		}
		return str("")
	case "screen":
		in.trace.PropertyReads = append(in.trace.PropertyReads, "screen."+rest)
		switch rest {
		case "width":
			return num(float64(in.env.ScreenW))
		case "height":
			return num(float64(in.env.ScreenH))
		}
		return num(0)
	case "document":
		if rest == "cookie" {
			return str("")
		}
		return undef()
	}
	ov := in.eval(objExpr)
	if ov.kind == kObject && ov.obj.class == "canvas" {
		switch rest {
		case "width":
			return num(float64(ov.obj.canvas.Width))
		case "height":
			return num(float64(ov.obj.canvas.Height))
		}
	}
	if ov.kind == kString && rest == "length" {
		return num(float64(len(ov.s)))
	}
	if v, ok := in.vars[objExpr+"."+rest]; ok {
		return v
	}
	return undef()
}

// callMethod dispatches method calls on builtin objects.
func (in *interp) callMethod(objExpr, method string, args []string) value {
	evalArg := func(i int) value {
		if i < len(args) {
			return in.eval(args[i])
		}
		return undef()
	}
	switch objExpr {
	case "document":
		switch method {
		case "createElement":
			if strings.EqualFold(evalArg(0).String(), "canvas") {
				cr := &CanvasRecord{Colors: map[string]bool{}}
				in.trace.Canvases = append(in.trace.Canvases, cr)
				return objv(&object{class: "canvas", canvas: cr})
			}
			return objv(&object{class: "element"})
		case "getElementById", "querySelector":
			return objv(&object{class: "element"})
		case "write", "writeln":
			return undef()
		}
		return undef()
	case "navigator":
		if method == "sendBeacon" && len(args) > 0 {
			in.trace.Requests = append(in.trace.Requests, evalArg(0).String())
		}
		return undef()
	case "localStorage":
		if method == "setItem" && len(args) > 0 {
			in.trace.StorageWrites = append(in.trace.StorageWrites, evalArg(0).String())
		}
		if method == "getItem" {
			return str("")
		}
		return undef()
	case "console", "Math", "JSON":
		if method == "random" {
			return num(0.5)
		}
		if method == "floor" || method == "round" || method == "abs" {
			v := evalArg(0)
			return num(float64(int(v.n)))
		}
		return undef()
	}
	ov := in.eval(objExpr)
	if ov.kind == kString {
		switch method {
		case "substring", "substr", "slice":
			return ov
		case "toString":
			return ov
		}
		return undef()
	}
	if ov.kind != kObject {
		return undef()
	}
	switch ov.obj.class {
	case "canvas":
		cr := ov.obj.canvas
		switch method {
		case "getContext":
			return objv(&object{class: "ctx2d", canvas: cr})
		case "toDataURL":
			cr.ToDataURL++
			return str("data:image/png;base64,AAAA")
		case "addEventListener":
			cr.AddEventListener++
		}
		return undef()
	case "ctx2d":
		cr := ov.obj.canvas
		switch method {
		case "fillText", "strokeText":
			cr.Text.WriteString(evalArg(0).String())
		case "fillRect", "strokeRect", "arc", "beginPath", "closePath", "fill", "stroke", "rotate", "translate":
			// drawing ops: no trace fields needed
		case "measureText":
			text := evalArg(0).String()
			in.trace.MeasureText[text]++
			return objv(&object{class: "textmetrics"})
		case "getImageData":
			cr.GetImageData++
			w, h := int(evalArg(2).n), int(evalArg(3).n)
			if a := w * h; a > cr.GetImageDataArea {
				cr.GetImageDataArea = a
			}
		case "save":
			cr.Save++
		case "restore":
			cr.Restore++
		case "addEventListener":
			cr.AddEventListener++
		}
		return undef()
	case "textmetrics":
		return num(42)
	case "rtc":
		switch method {
		case "createDataChannel":
			in.trace.WebRTC.CreateDataChannel++
		case "createOffer":
			in.trace.WebRTC.CreateOffer++
		case "setLocalDescription", "close":
		}
		return undef()
	case "xhr":
		switch method {
		case "open":
			if len(args) >= 2 {
				in.trace.Requests = append(in.trace.Requests, evalArg(1).String())
			}
		case "send", "setRequestHeader":
		}
		return undef()
	case "date":
		if method == "getTime" || method == "valueOf" {
			return num(1546300800000)
		}
		return undef()
	}
	return undef()
}

// parseCall recognizes name(args...) and splits the argument list at top
// level commas.
func parseCall(s string) (name string, args []string, ok bool) {
	open := strings.IndexByte(s, '(')
	if open <= 0 {
		return "", nil, false
	}
	name = strings.TrimSpace(s[:open])
	for _, r := range name {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' || r == '$') {
			return "", nil, false
		}
	}
	depth := 0
	inStr := byte(0)
	closeIdx := -1
	for i := open; i < len(s); i++ {
		c := s[i]
		if inStr != 0 {
			if c == '\\' {
				i++
			} else if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inStr = c
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				closeIdx = i
			}
		}
		if closeIdx >= 0 {
			break
		}
	}
	if closeIdx < 0 {
		return "", nil, false
	}
	if strings.TrimSpace(s[closeIdx+1:]) != "" {
		// Trailing tokens after the call (e.g. chained ops we don't model).
		// Still treat as the call for tracing purposes.
		_ = s
	}
	inner := s[open+1 : closeIdx]
	if strings.TrimSpace(inner) != "" {
		args = splitTopLevel(inner, ',')
	}
	return name, args, true
}

// splitTopLevel splits s on sep at nesting depth zero outside strings.
func splitTopLevel(s string, sep byte) []string {
	var out []string
	depth := 0
	inStr := byte(0)
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inStr != 0 {
			if c == '\\' {
				i++
			} else if c == inStr {
				inStr = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inStr = c
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		default:
			if c == sep && depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func unescape(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// Summary returns a short human-readable description of the trace, used by
// the debugging CLI.
func (t *Trace) Summary() string {
	return fmt.Sprintf("canvases=%d measureTextKeys=%d webrtc=%v cookieWrites=%d requests=%d",
		len(t.Canvases), len(t.MeasureText), t.WebRTC.Used(), len(t.CookieWrites), len(t.Requests))
}
