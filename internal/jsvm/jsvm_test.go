package jsvm

import (
	"strings"
	"testing"
	"testing/quick"
)

var env = Env{
	UserAgent: "Mozilla/5.0 (X11; Linux x86_64)",
	ScreenW:   1920,
	ScreenH:   1080,
	Language:  "en-US",
}

func TestCanvasFingerprintScript(t *testing.T) {
	src := `
var c = document.createElement('canvas');
c.width = 300;
c.height = 150;
var ctx = c.getContext('2d');
ctx.fillStyle = '#f60';
ctx.fillRect(125, 1, 62, 20);
ctx.fillStyle = '#069';
ctx.fillText("Cwm fjordbank glyphs vext quiz", 2, 15);
var hash = c.toDataURL();
`
	tr := Execute("https://t.example/fp.js", src, env)
	if len(tr.Canvases) != 1 {
		t.Fatalf("canvases = %d, want 1", len(tr.Canvases))
	}
	cr := tr.Canvases[0]
	if cr.Width != 300 || cr.Height != 150 {
		t.Errorf("canvas size = %dx%d, want 300x150", cr.Width, cr.Height)
	}
	if len(cr.Colors) != 2 {
		t.Errorf("colors = %d, want 2", len(cr.Colors))
	}
	if cr.ToDataURL != 1 {
		t.Errorf("toDataURL = %d, want 1", cr.ToDataURL)
	}
	if cr.DistinctTextChars() <= 10 {
		t.Errorf("distinct chars = %d, want > 10", cr.DistinctTextChars())
	}
}

func TestFontFingerprintLoop(t *testing.T) {
	src := `
var c = document.createElement('canvas');
var ctx = c.getContext('2d');
for (var i = 0; i < 60; i++) {
  ctx.font = '12px font' + i;
  ctx.measureText('mmmmmmmmmmlli');
}
`
	tr := Execute("", src, env)
	if got := tr.MeasureText["mmmmmmmmmmlli"]; got != 60 {
		t.Errorf("measureText count = %d, want 60", got)
	}
	if tr.FontSets != 60 {
		t.Errorf("font sets = %d, want 60", tr.FontSets)
	}
}

func TestWebRTCScript(t *testing.T) {
	src := `
var pc = new RTCPeerConnection();
pc.createDataChannel('');
pc.onicecandidate = handler;
pc.createOffer();
`
	tr := Execute("", src, env)
	if !tr.WebRTC.Used() {
		t.Fatal("WebRTC not detected")
	}
	if tr.WebRTC.PeerConnections != 1 || tr.WebRTC.CreateDataChannel != 1 ||
		tr.WebRTC.CreateOffer != 1 || tr.WebRTC.OnICECandidate != 1 {
		t.Errorf("WebRTC record = %+v", tr.WebRTC)
	}
}

func TestCookieWrite(t *testing.T) {
	src := `document.cookie = 'uid=abc123; path=/; max-age=31536000';`
	tr := Execute("", src, env)
	if len(tr.CookieWrites) != 1 || !strings.HasPrefix(tr.CookieWrites[0], "uid=abc123") {
		t.Errorf("CookieWrites = %v", tr.CookieWrites)
	}
}

func TestSyncPixelConcatenation(t *testing.T) {
	src := `
var uid = 'u-778899';
var img = new Image();
img.src = 'https://sync.partner.example/match?uid=' + uid + '&src=site';
`
	tr := Execute("", src, env)
	if len(tr.Requests) != 1 {
		t.Fatalf("Requests = %v, want 1", tr.Requests)
	}
	want := "https://sync.partner.example/match?uid=u-778899&src=site"
	if tr.Requests[0] != want {
		t.Errorf("request = %q, want %q", tr.Requests[0], want)
	}
}

func TestBindings(t *testing.T) {
	src := `fetch('https://b.example/beacon?id=' + uid);`
	tr := Execute("", src, Env{Bindings: map[string]string{"uid": "XYZ"}})
	if len(tr.Requests) != 1 || tr.Requests[0] != "https://b.example/beacon?id=XYZ" {
		t.Errorf("Requests = %v", tr.Requests)
	}
}

func TestXHROpen(t *testing.T) {
	src := `
var xhr = new XMLHttpRequest();
xhr.open('GET', 'https://api.tracker.example/v1/collect');
xhr.send();
`
	tr := Execute("", src, env)
	if len(tr.Requests) != 1 || tr.Requests[0] != "https://api.tracker.example/v1/collect" {
		t.Errorf("Requests = %v", tr.Requests)
	}
}

func TestNavigatorReads(t *testing.T) {
	src := `
var ua = navigator.userAgent;
var w = screen.width;
fetch('https://t.example/c?ua=' + ua + '&w=' + w);
`
	tr := Execute("", src, env)
	if len(tr.PropertyReads) != 2 {
		t.Errorf("PropertyReads = %v", tr.PropertyReads)
	}
	if len(tr.Requests) != 1 || !strings.Contains(tr.Requests[0], "Mozilla") || !strings.Contains(tr.Requests[0], "w=1920") {
		t.Errorf("Requests = %v", tr.Requests)
	}
}

func TestSendBeacon(t *testing.T) {
	tr := Execute("", `navigator.sendBeacon('https://a.example/b');`, env)
	if len(tr.Requests) != 1 {
		t.Errorf("Requests = %v", tr.Requests)
	}
}

func TestLocalStorage(t *testing.T) {
	tr := Execute("", `localStorage.setItem('evercookie_uid', 'v1');`, env)
	if len(tr.StorageWrites) != 1 || tr.StorageWrites[0] != "evercookie_uid" {
		t.Errorf("StorageWrites = %v", tr.StorageWrites)
	}
}

func TestGetImageDataArea(t *testing.T) {
	src := `
var c = document.createElement('canvas');
var ctx = c.getContext('2d');
ctx.getImageData(0, 0, 100, 50);
`
	tr := Execute("", src, env)
	if len(tr.Canvases) != 1 {
		t.Fatal("no canvas")
	}
	cr := tr.Canvases[0]
	if cr.GetImageData != 1 || cr.GetImageDataArea != 5000 {
		t.Errorf("getImageData=%d area=%d", cr.GetImageData, cr.GetImageDataArea)
	}
}

func TestSaveRestoreListener(t *testing.T) {
	src := `
var c = document.createElement('canvas');
var ctx = c.getContext('2d');
ctx.save();
ctx.restore();
c.addEventListener('click', f);
`
	tr := Execute("", src, env)
	cr := tr.Canvases[0]
	if cr.Save != 1 || cr.Restore != 1 || cr.AddEventListener != 1 {
		t.Errorf("record = %+v", cr)
	}
}

func TestMultipleCanvases(t *testing.T) {
	src := `
var a = document.createElement('canvas');
var b = document.createElement('canvas');
a.width = 10;
b.width = 20;
`
	tr := Execute("", src, env)
	if len(tr.Canvases) != 2 {
		t.Fatalf("canvases = %d, want 2", len(tr.Canvases))
	}
	if tr.Canvases[0].Width != 10 || tr.Canvases[1].Width != 20 {
		t.Errorf("widths = %d,%d", tr.Canvases[0].Width, tr.Canvases[1].Width)
	}
}

func TestRunawayLoopFuel(t *testing.T) {
	src := `for (var i = 0; i < 99999999; i++) { fetch('https://x.example/' + i); }`
	tr := Execute("", src, env)
	if len(tr.Requests) > maxSteps {
		t.Error("fuel did not bound execution")
	}
}

func TestExecuteNeverPanics(t *testing.T) {
	f := func(s string) bool {
		tr := Execute("u", s, env)
		return tr != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, s := range []string{"var", "var x =", "a.b.c(", "for (", "for (;;) {", "new ", "x = 'unterminated", "((((", "document.cookie ="} {
		Execute("u", s, env)
	}
}

func TestNumericAddition(t *testing.T) {
	src := `
var n = 2 + 3;
fetch('https://x.example/?n=' + n);
`
	tr := Execute("", src, env)
	if len(tr.Requests) != 1 || tr.Requests[0] != "https://x.example/?n=5" {
		t.Errorf("Requests = %v", tr.Requests)
	}
}

func TestSummary(t *testing.T) {
	tr := Execute("", `var c = document.createElement('canvas');`, env)
	if !strings.Contains(tr.Summary(), "canvases=1") {
		t.Errorf("Summary = %q", tr.Summary())
	}
}

func TestSplitStatementsEdgeCases(t *testing.T) {
	// Statements inside strings and parens must not split.
	src := `var a = 'x;y';
fetch('https://e.example/?q=' + a);
var b = foo(1,
  2);
`
	tr := Execute("", src, Env{Bindings: map[string]string{}})
	if len(tr.Requests) != 1 || tr.Requests[0] != "https://e.example/?q=x;y" {
		t.Errorf("Requests = %v", tr.Requests)
	}
}

func TestCommentsSkipped(t *testing.T) {
	src := `// document.cookie = 'nope=1';
document.cookie = 'yes=abcdef';
`
	tr := Execute("", src, Env{})
	if len(tr.CookieWrites) != 1 || tr.CookieWrites[0] != "yes=abcdef" {
		t.Errorf("CookieWrites = %v", tr.CookieWrites)
	}
}

func TestPlusEqualsConcat(t *testing.T) {
	src := `var u = 'https://x.example/?a=';
u += 'tail';
fetch(u);
`
	tr := Execute("", src, Env{})
	if len(tr.Requests) != 1 || tr.Requests[0] != "https://x.example/?a=tail" {
		t.Errorf("Requests = %v", tr.Requests)
	}
}

func TestWindowPropertyAssignment(t *testing.T) {
	src := `window.trackerId = 'abc123';
fetch('https://x.example/?id=' + trackerId);
`
	tr := Execute("", src, Env{})
	if len(tr.Requests) != 1 || tr.Requests[0] != "https://x.example/?id=abc123" {
		t.Errorf("Requests = %v", tr.Requests)
	}
}
