package browser

import (
	"context"
	"strings"
	"testing"
	"time"

	"pornweb/internal/crawler"
	"pornweb/internal/fingerprint"
	"pornweb/internal/webgen"
	"pornweb/internal/webserver"
)

type fixture struct {
	eco *webgen.Ecosystem
	srv *webserver.Server
}

func setup(t *testing.T) *fixture {
	t.Helper()
	eco := webgen.Generate(webgen.Params{Seed: 7, Scale: 0.02})
	srv, err := webserver.Start(eco)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return &fixture{eco: eco, srv: srv}
}

func (f *fixture) browser(t *testing.T, country, phase string) *Browser {
	t.Helper()
	sess, err := crawler.NewSession(crawler.Config{
		DialContext: f.srv.DialContext,
		RootCAs:     f.srv.CertPool(),
		Country:     country,
		Phase:       phase,
		Timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(sess)
}

func pick(t *testing.T, eco *webgen.Ecosystem, pred func(*webgen.Site) bool) *webgen.Site {
	t.Helper()
	for _, s := range eco.PornSites {
		if pred(s) {
			return s
		}
	}
	t.Skip("no matching site at this scale")
	return nil
}

func TestVisitLoadsSubresources(t *testing.T) {
	f := setup(t)
	b := f.browser(t, "ES", "crawl")
	site := pick(t, f.eco, func(s *webgen.Site) bool {
		return !s.Flaky && !s.Unresponsive && len(s.Services) >= 3
	})
	pv := b.Visit(context.Background(), site.Host)
	if !pv.OK {
		t.Fatalf("visit failed: %s", pv.Err)
	}
	if pv.Subresources[crawler.InitScript] == 0 {
		t.Error("no scripts loaded")
	}
	if len(pv.Traces) == 0 {
		t.Error("no script traces")
	}
	log := b.Session.Log()
	hosts := map[string]bool{}
	for _, r := range log {
		if r.SiteHost == site.Host {
			hosts[r.Host] = true
		}
	}
	for _, svc := range site.Services {
		if !hosts[svc.Host] {
			t.Errorf("embedded service %s never contacted", svc.Host)
		}
	}
}

func TestVisitExecutesTrackerScripts(t *testing.T) {
	f := setup(t)
	b := f.browser(t, "ES", "crawl")
	site := pick(t, f.eco, func(s *webgen.Site) bool {
		if s.Flaky || s.Unresponsive {
			return false
		}
		for _, svc := range s.Services {
			if svc.Category == webgen.CatAnalytics {
				return true
			}
		}
		return false
	})
	pv := b.Visit(context.Background(), site.Host)
	if !pv.OK {
		t.Fatal(pv.Err)
	}
	// Analytics scripts beacon via JS; the session log must show
	// js-initiated requests to /collect.
	var jsReqs int
	for _, r := range b.Session.Log() {
		if r.Initiator == crawler.InitJS && strings.Contains(r.URL, "/collect") {
			jsReqs++
		}
	}
	if jsReqs == 0 {
		t.Error("no JS-initiated beacon requests observed")
	}
}

func TestVisitCanvasFingerprintObservable(t *testing.T) {
	f := setup(t)
	b := f.browser(t, "ES", "crawl")
	// Visit sites embedding canvas-FP services until the fingerprinting is
	// observed through the full pipeline (some embeds deterministically
	// receive a service's benign variant, so several candidates are
	// tried).
	var candidates []*webgen.Site
	for _, s := range f.eco.PornSites {
		if s.Flaky || s.Unresponsive {
			continue
		}
		for _, svc := range s.Services {
			wide := svc.Prevalence[webgen.Porn] >= 0.05 || svc.Prevalence[webgen.Regular] >= 0.05
			if svc.CanvasFP && !wide {
				candidates = append(candidates, s)
				break
			}
		}
	}
	if len(candidates) == 0 {
		t.Skip("no canvas-FP embedding at this scale")
	}
	for _, site := range candidates {
		pv := b.Visit(context.Background(), site.Host)
		if !pv.OK {
			continue
		}
		for _, st := range pv.Traces {
			if st.Host == "" {
				continue
			}
			if v := fingerprint.ClassifyTrace(st.Trace); v.CanvasFP {
				return // observed end to end
			}
		}
	}
	t.Errorf("canvas FP not observed on any of %d candidate sites", len(candidates))
}

func TestVisitFlakySiteFails(t *testing.T) {
	f := setup(t)
	b := f.browser(t, "ES", "crawl")
	var flaky *webgen.Site
	for _, s := range f.eco.PornSites {
		if s.Flaky && !s.Unresponsive {
			flaky = s
			break
		}
	}
	if flaky == nil {
		t.Skip("no flaky site")
	}
	pv := b.Visit(context.Background(), flaky.Host)
	if pv.OK {
		t.Error("flaky site visit should fail during crawl phase")
	}
	if pv.Err == "" {
		t.Error("error not recorded")
	}
}

func TestInteractiveGateBypass(t *testing.T) {
	f := setup(t)
	b := f.browser(t, "ES", "policy")
	site := pick(t, f.eco, func(s *webgen.Site) bool {
		return s.GateFor("ES") == webgen.GateSimple && !s.Flaky && !s.Unresponsive
	})
	iv := b.VisitInteractive(context.Background(), site.Host)
	if !iv.OK {
		t.Fatal(iv.Err)
	}
	if !iv.GateDetected || !iv.GateBypassable || !iv.GateBypassed {
		t.Errorf("gate flow = %+v", iv)
	}
}

func TestInteractiveSocialGateNotBypassed(t *testing.T) {
	f := setup(t)
	b := f.browser(t, "RU", "policy")
	ph := f.eco.SiteByHost["pornhub.com"]
	if ph == nil || ph.BlockedIn["RU"] {
		t.Skip("pornhub unavailable from RU at this seed")
	}
	iv := b.VisitInteractive(context.Background(), "pornhub.com")
	if !iv.OK {
		t.Fatal(iv.Err)
	}
	if !iv.GateDetected {
		t.Fatal("social gate not detected")
	}
	if iv.GateBypassable || iv.GateBypassed {
		t.Error("social-login gate must not be bypassable")
	}
}

func TestInteractivePolicyHarvest(t *testing.T) {
	f := setup(t)
	b := f.browser(t, "ES", "policy")
	site := pick(t, f.eco, func(s *webgen.Site) bool {
		return s.HasPolicy && !s.Flaky && !s.Unresponsive && s.GateFor("ES") == webgen.GateNone
	})
	iv := b.VisitInteractive(context.Background(), site.Host)
	if !iv.OK {
		t.Fatal(iv.Err)
	}
	if !iv.PolicyFound {
		t.Fatal("policy not found")
	}
	if !strings.Contains(iv.PolicyText, "Privacy Policy") {
		t.Error("policy text not extracted")
	}
	if len(iv.PolicyText) < 500 {
		t.Errorf("policy text suspiciously short: %d chars", len(iv.PolicyText))
	}
}

func TestInteractiveNoPolicy(t *testing.T) {
	f := setup(t)
	b := f.browser(t, "ES", "policy")
	site := pick(t, f.eco, func(s *webgen.Site) bool {
		return !s.HasPolicy && !s.Flaky && !s.Unresponsive
	})
	iv := b.VisitInteractive(context.Background(), site.Host)
	if !iv.OK {
		t.Fatal(iv.Err)
	}
	if iv.PolicyFound {
		t.Errorf("phantom policy found: %q", iv.PolicyURL)
	}
}

func TestInteractivePolicyBehindGate(t *testing.T) {
	f := setup(t)
	b := f.browser(t, "ES", "policy")
	site := pick(t, f.eco, func(s *webgen.Site) bool {
		return s.HasPolicy && s.GateFor("ES") == webgen.GateSimple && !s.Flaky && !s.Unresponsive
	})
	iv := b.VisitInteractive(context.Background(), site.Host)
	if !iv.OK {
		t.Fatal(iv.Err)
	}
	if !iv.GateBypassed {
		t.Fatal("gate not bypassed")
	}
	if !iv.PolicyFound {
		t.Error("policy behind age gate not harvested")
	}
}

func TestInteractiveCookieSyncObservedAcrossSites(t *testing.T) {
	// Visiting two sites embedding the same syncing service in ONE session
	// must reuse the cookie (jar persistence), which is what makes
	// cross-site tracking measurable.
	f := setup(t)
	b := f.browser(t, "ES", "crawl")
	var sites []*webgen.Site
	for _, s := range f.eco.PornSites {
		if s.Flaky || s.Unresponsive {
			continue
		}
		if s.HasService("exosrv.com") || s.HasService("exoclick.com") {
			sites = append(sites, s)
		}
		if len(sites) == 2 {
			break
		}
	}
	if len(sites) < 2 {
		t.Skip("not enough ExoClick sites at this scale")
	}
	ctx := context.Background()
	b.Visit(ctx, sites[0].Host)
	b.Visit(ctx, sites[1].Host)
	// The exo identifier must be STABLE across both sites: refreshed with
	// the same value, never re-minted (that is what enables cross-site
	// tracking in one session).
	values := map[string]map[string]bool{} // cookie name -> distinct values
	for _, r := range b.Session.Log() {
		if strings.Contains(r.Host, "exo") {
			for _, c := range r.SetCookies {
				if strings.HasPrefix(c.Name, "uid_") {
					if values[c.Name] == nil {
						values[c.Name] = map[string]bool{}
					}
					values[c.Name][c.Value] = true
				}
			}
		}
	}
	for name, vs := range values {
		if len(vs) > 1 {
			t.Errorf("cookie %s re-minted across sites: %d distinct values", name, len(vs))
		}
	}
}
