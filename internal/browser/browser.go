// Package browser is the page-loading engine on top of the instrumented
// HTTP session: it fetches a landing page, parses the DOM, loads every
// embedded subresource (scripts, images, iframes — recursively, bounded),
// executes JavaScript through the jsvm interpreter and issues the network
// requests those scripts trigger. This is the OpenWPM-analog "browser" of
// the study. A second, interactive mode reproduces the paper's
// Selenium-based crawler: it detects and clicks through age-verification
// interstitials and harvests privacy policies (Section 3.1).
package browser

import (
	"context"
	"fmt"
	"net/url"
	"runtime/pprof"
	"strings"
	"time"

	"pornweb/internal/consent"
	"pornweb/internal/crawler"
	"pornweb/internal/htmlx"
	"pornweb/internal/jsvm"
	"pornweb/internal/obs"
	"pornweb/internal/resilience"
)

// maxIframeDepth bounds recursive iframe loading (RTB chains nest ads in
// ads).
const maxIframeDepth = 3

// Profiling op labels for the browser's two CPU-heavy leaf operations.
// They layer onto the ambient stage/vantage label set, so a hot-path
// profile splits a crawl stage's time into HTML tokenization and script
// interpretation without losing stage attribution.
var (
	tokenizeLabels = pprof.Labels("op", "tokenize")
	jsvmLabels     = pprof.Labels("op", "jsvm")
)

// parseHTML is htmlx.Parse under the op=tokenize profile label.
func parseHTML(ctx context.Context, body string) *htmlx.Node {
	var doc *htmlx.Node
	pprof.Do(ctx, tokenizeLabels, func(context.Context) {
		doc = htmlx.Parse(body)
	})
	return doc
}

// Browser drives page loads over one crawl session.
type Browser struct {
	Session *crawler.Session
	// Env is the ambient state scripts can observe.
	Env jsvm.Env

	// Stage and Corpus label the pipeline stage and corpus this browser is
	// crawling for; Rank resolves a site's toplist rank. All three are
	// optional flight-recorder enrichments set by the study layer.
	Stage  string
	Corpus string
	Rank   func(host string) int

	met browserMetrics
}

// browserMetrics holds pre-resolved page-load instruments; all nil (and
// therefore no-ops) when the session carries no registry.
type browserMetrics struct {
	pageLoad    *obs.Histogram
	pageOK      *obs.Counter
	pageFail    *obs.Counter
	failClass   map[resilience.Class]*obs.Counter
	interactive *obs.Counter
	subres      map[crawler.Initiator]*obs.Counter
}

func newBrowserMetrics(reg *obs.Registry, country string) browserMetrics {
	if reg == nil {
		return browserMetrics{}
	}
	reg.Describe("browser_page_load_seconds", "full instrumented page-load duration (subresources and scripts included)")
	reg.Describe("browser_page_loads_total", "instrumented page loads by outcome")
	reg.Describe("browser_subresources_total", "subresources fetched during page loads, by initiator")
	reg.Describe("browser_interactive_visits_total", "Selenium-analog interactive visits")
	reg.Describe("browser_page_failures_total", "failed page visits by taxonomy class")
	m := browserMetrics{
		pageLoad:    reg.Histogram("browser_page_load_seconds", obs.LatencyBuckets, "country", country),
		pageOK:      reg.Counter("browser_page_loads_total", "country", country, "result", "ok"),
		pageFail:    reg.Counter("browser_page_loads_total", "country", country, "result", "error"),
		failClass:   map[resilience.Class]*obs.Counter{},
		interactive: reg.Counter("browser_interactive_visits_total", "country", country),
		subres:      map[crawler.Initiator]*obs.Counter{},
	}
	for _, c := range resilience.Classes() {
		m.failClass[c] = reg.Counter("browser_page_failures_total", "country", country, "class", string(c))
	}
	for _, init := range []crawler.Initiator{crawler.InitScript, crawler.InitImage,
		crawler.InitIframe, crawler.InitCSS, crawler.InitJS} {
		m.subres[init] = reg.Counter("browser_subresources_total", "country", country, "kind", string(init))
	}
	return m
}

// New builds a browser with a Firefox-52-like environment, matching the
// paper's OpenWPM build.
func New(session *crawler.Session) *Browser {
	return &Browser{
		Session: session,
		Env: jsvm.Env{
			UserAgent: "Mozilla/5.0 (X11; Linux x86_64; rv:52.0) Gecko/20100101 Firefox/52.0",
			ScreenW:   1920,
			ScreenH:   1080,
			Language:  "en-US",
		},
		met: newBrowserMetrics(session.Metrics(), session.Country()),
	}
}

// ScriptTrace pairs an executed script with its instrumentation trace.
type ScriptTrace struct {
	URL      string // "" for inline scripts
	Host     string // host serving the script ("" for inline)
	SiteHost string
	Trace    *jsvm.Trace
}

// PageVisit is the outcome of one instrumented page load.
type PageVisit struct {
	SiteHost string
	FinalURL string
	HTTPS    bool // the site itself answered over TLS
	OK       bool
	Err      string
	// FailClass is the failure-taxonomy class when the visit failed
	// (resilience.Class), "" on success.
	FailClass string
	HTML      string
	// DOM is never serialized: parent pointers make the tree cyclic,
	// and htmlx.Parse(HTML) reconstructs it deterministically — which
	// is exactly what the durable store does when replaying a visit.
	DOM    *htmlx.Node `json:"-"`
	Traces []ScriptTrace
	// Subresources counts fetched embeds by initiator kind.
	Subresources map[crawler.Initiator]int
	// SpanID links the visit to its span in the tracer ring (0 when
	// tracing is off).
	SpanID uint64
}

// Visit loads a site's landing page with full instrumentation. When the
// session has a page budget, the whole visit — document, retries,
// subresources, scripts — runs under one deadline.
func (b *Browser) Visit(ctx context.Context, host string) *PageVisit {
	if pb := b.Session.PageBudget(); pb > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, pb)
		defer cancel()
	}
	start := time.Now()
	pv := &PageVisit{SiteHost: host, Subresources: map[crawler.Initiator]int{}}
	ctx, span := obs.StartSpan(ctx, "visit")
	span.SetAttr("site", host)
	if b.Stage != "" {
		span.SetAttr("stage", b.Stage)
	}
	pv.SpanID = span.ID()
	defer func() {
		b.met.pageLoad.Observe(time.Since(start).Seconds())
		for kind, n := range pv.Subresources {
			b.met.subres[kind].Add(uint64(n))
		}
		if pv.OK {
			b.met.pageOK.Inc()
		} else {
			b.met.pageFail.Inc()
			if pv.FailClass != "" {
				b.met.failClass[resilience.Class(pv.FailClass)].Inc()
			}
		}
		span.End()
		// Gate all event-field gathering on an enabled recorder so the
		// disabled path stays allocation-free per visit.
		if b.Session.Flight().Enabled() {
			b.emitFlight(pv.SiteHost, pv.OK, pv.FailClass, false, time.Since(start), pv.SpanID)
		}
	}()
	res, https, err := b.Session.FetchPage(ctx, host, "/")
	if err != nil {
		pv.Err = err.Error()
		pv.FailClass = string(resilience.Classify(err))
		return pv
	}
	if cls := resilience.ClassifyStatus(res.Status); cls != "" {
		// The page "loaded" but only with a terminal failure status
		// (every retry exhausted on 5xx, or a 451 legal block).
		pv.Err = fmt.Sprintf("HTTP %d", res.Status)
		pv.FailClass = string(cls)
		pv.HTTPS = https
		pv.FinalURL = res.FinalURL
		return pv
	}
	pv.OK = true
	pv.HTTPS = https
	pv.FinalURL = res.FinalURL
	pv.HTML = res.Body
	pv.DOM = parseHTML(ctx, res.Body)
	b.loadDocument(ctx, pv, pv.DOM, res.FinalURL, 0)
	return pv
}

// loadDocument fetches a parsed document's subresources and executes its
// scripts. depth tracks iframe nesting.
func (b *Browser) loadDocument(ctx context.Context, pv *PageVisit, doc *htmlx.Node, baseURL string, depth int) {
	base, err := url.Parse(baseURL)
	if err != nil {
		return
	}
	resolve := func(ref string) string {
		u, err := url.Parse(strings.TrimSpace(ref))
		if err != nil {
			return ""
		}
		return base.ResolveReference(u).String()
	}
	for _, r := range doc.Resources() {
		target := resolve(r.URL)
		if target == "" {
			continue
		}
		switch r.Tag {
		case "script":
			pv.Subresources[crawler.InitScript]++
			res, err := b.Session.Fetch(ctx, target, pv.SiteHost, crawler.InitScript, baseURL)
			if err != nil {
				continue
			}
			b.executeScript(ctx, pv, target, res.Body, baseURL)
		case "img":
			pv.Subresources[crawler.InitImage]++
			b.Session.Fetch(ctx, target, pv.SiteHost, crawler.InitImage, baseURL)
		case "iframe":
			pv.Subresources[crawler.InitIframe]++
			res, err := b.Session.Fetch(ctx, target, pv.SiteHost, crawler.InitIframe, baseURL)
			if err != nil || depth+1 >= maxIframeDepth {
				continue
			}
			if strings.Contains(res.ContentType, "html") {
				b.loadDocument(ctx, pv, parseHTML(ctx, res.Body), res.FinalURL, depth+1)
			}
		case "link":
			pv.Subresources[crawler.InitCSS]++
			b.Session.Fetch(ctx, target, pv.SiteHost, crawler.InitCSS, baseURL)
		}
	}
	// Inline scripts execute in document order after external ones (a
	// simplification: generated pages put inline analytics last anyway).
	for _, src := range doc.InlineScripts() {
		b.runTrace(ctx, pv, "", src, baseURL)
	}
}

// executeScript runs external script content and fetches what it requests.
func (b *Browser) executeScript(ctx context.Context, pv *PageVisit, scriptURL, src, docURL string) {
	b.runTrace(ctx, pv, scriptURL, src, docURL)
}

func (b *Browser) runTrace(ctx context.Context, pv *PageVisit, scriptURL, src, docURL string) {
	var tr *jsvm.Trace
	pprof.Do(ctx, jsvmLabels, func(context.Context) {
		tr = jsvm.Execute(scriptURL, src, b.Env)
	})
	host := ""
	if scriptURL != "" {
		if u, err := url.Parse(scriptURL); err == nil {
			host = strings.ToLower(u.Hostname())
		}
	}
	pv.Traces = append(pv.Traces, ScriptTrace{URL: scriptURL, Host: host, SiteHost: pv.SiteHost, Trace: tr})
	parent := scriptURL
	if parent == "" {
		parent = docURL
	}
	baseRef, _ := url.Parse(docURL)
	for _, req := range tr.Requests {
		target := req
		if baseRef != nil {
			if u, err := url.Parse(req); err == nil {
				target = baseRef.ResolveReference(u).String()
			}
		}
		pv.Subresources[crawler.InitJS]++
		b.Session.Fetch(ctx, target, pv.SiteHost, crawler.InitJS, parent)
	}
}

// emitFlight assembles and records one flight-recorder wide event for a
// finished visit. Only called with an enabled recorder.
func (b *Browser) emitFlight(site string, ok bool, failClass string, interactive bool, wall time.Duration, spanID uint64) {
	st := b.Session.VisitStats(site)
	ev := obs.VisitEvent{
		Site:        site,
		Corpus:      b.Corpus,
		Stage:       b.Stage,
		Country:     b.Session.Country(),
		Interactive: interactive,
		OK:          ok,
		FailClass:   failClass,
		Attempts:    st.Attempts,
		Requests:    st.Requests,
		ThirdParty:  st.ThirdParty,
		Cookies:     st.Cookies,
		Bytes:       st.Bytes,
		WallMS:      float64(wall.Microseconds()) / 1000,
		SpanID:      spanID,
	}
	if b.Rank != nil {
		ev.Rank = b.Rank(site)
	}
	b.Session.Flight().RecordVisit(ev)
}

// InteractiveVisit is the Selenium-analog crawl of one site: detect the
// age gate, click through when bypassable, then locate and download the
// privacy policy. It uses the same session (a dedicated interactive
// session in the full study, to avoid instrumentation bias).
type InteractiveVisit struct {
	SiteHost string
	OK       bool
	Err      string
	// FailClass is the failure-taxonomy class when the visit failed.
	FailClass string

	GateDetected   bool
	GateBypassable bool
	GateBypassed   bool

	Banner       consent.BannerType
	HasBanner    bool
	Monetization consent.Monetization

	PolicyFound bool
	PolicyURL   string
	PolicyText  string

	// SpanID links the visit to its span in the tracer ring (0 when
	// tracing is off).
	SpanID uint64
}

// VisitInteractive performs the interactive crawl for one site.
func (b *Browser) VisitInteractive(ctx context.Context, host string) *InteractiveVisit {
	if pb := b.Session.PageBudget(); pb > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, pb)
		defer cancel()
	}
	b.met.interactive.Inc()
	iv := &InteractiveVisit{SiteHost: host}
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "visit-interactive")
	span.SetAttr("site", host)
	if b.Stage != "" {
		span.SetAttr("stage", b.Stage)
	}
	iv.SpanID = span.ID()
	defer func() {
		span.End()
		if b.Session.Flight().Enabled() {
			b.emitFlight(iv.SiteHost, iv.OK, iv.FailClass, true, time.Since(start), iv.SpanID)
		}
	}()
	res, _, err := b.Session.FetchPage(ctx, host, "/")
	if err != nil {
		iv.Err = err.Error()
		iv.FailClass = string(resilience.Classify(err))
		return iv
	}
	if cls := resilience.ClassifyStatus(res.Status); cls != "" {
		iv.Err = fmt.Sprintf("HTTP %d", res.Status)
		iv.FailClass = string(cls)
		return iv
	}
	iv.OK = true
	doc := parseHTML(ctx, res.Body)
	base, _ := url.Parse(res.FinalURL)

	// Age gate.
	if info, found := consent.DetectAgeGate(doc); found {
		iv.GateDetected = true
		iv.GateBypassable = info.Bypassable
		if info.Bypassable && base != nil {
			if u, err := url.Parse(info.EnterURL); err == nil {
				enterRes, err := b.Session.Fetch(ctx, base.ResolveReference(u).String(), host, crawler.InitDocument, res.FinalURL)
				if err == nil && enterRes.Status < 400 {
					// Re-load the landing page; the gate cookie is in the jar.
					if res2, _, err := b.Session.FetchPage(ctx, host, "/"); err == nil {
						doc2 := parseHTML(ctx, res2.Body)
						if _, still := consent.DetectAgeGate(doc2); !still {
							iv.GateBypassed = true
							doc = doc2
						}
					}
				}
			}
		}
	}

	// Banner and monetization signals on the (possibly post-gate) page.
	if bt, ok := consent.DetectBanner(doc); ok {
		iv.HasBanner = true
		iv.Banner = bt
	}
	iv.Monetization = consent.DetectMonetization(doc)

	// Privacy policy.
	for _, link := range consent.FindPolicyLinks(doc) {
		u, err := url.Parse(link)
		if err != nil || base == nil {
			continue
		}
		target := base.ResolveReference(u).String()
		pres, err := b.Session.Fetch(ctx, target, host, crawler.InitDocument, res.FinalURL)
		if err != nil || pres.Status >= 400 {
			continue // HTTP-error policies are the paper's 44 false positives
		}
		text := consent.ExtractPolicyText(parseHTML(ctx, pres.Body))
		if len(strings.Fields(text)) < 50 {
			continue // abnormally short: sanitized away like the paper's manual check
		}
		iv.PolicyFound = true
		iv.PolicyURL = target
		iv.PolicyText = text
		break
	}
	return iv
}
