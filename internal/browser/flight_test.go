package browser

import (
	"context"
	"testing"
	"time"

	"pornweb/internal/crawler"
	"pornweb/internal/obs"
	"pornweb/internal/webgen"
)

// flightBrowser builds a browser whose session feeds the given recorder.
func (f *fixture) flightBrowser(t *testing.T, fr *obs.FlightRecorder) *Browser {
	t.Helper()
	sess, err := crawler.NewSession(crawler.Config{
		DialContext: f.srv.DialContext,
		RootCAs:     f.srv.CertPool(),
		Country:     "ES",
		Phase:       "crawl",
		Timeout:     5 * time.Second,
		Flight:      fr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(sess)
}

// TestVisitEmitsFlightEvent pins the wide-event contract: one event per
// page visit, carrying the stage/corpus labels, the aggregated request
// stats and the visit outcome.
func TestVisitEmitsFlightEvent(t *testing.T) {
	f := setup(t)
	fr := obs.NewFlightRecorder(64, 1, nil)
	b := f.flightBrowser(t, fr)
	b.Stage = "crawl/porn-ES"
	b.Corpus = "porn"
	b.Rank = func(host string) int { return 42 }

	site := pick(t, f.eco, func(s *webgen.Site) bool {
		return !s.Flaky && !s.Unresponsive && len(s.Services) >= 2
	})
	pv := b.Visit(context.Background(), site.Host)
	if !pv.OK {
		t.Fatalf("visit failed: %s", pv.Err)
	}

	evs := fr.Events()
	if len(evs) != 1 {
		t.Fatalf("recorder holds %d events after one visit, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Site != site.Host || ev.Stage != "crawl/porn-ES" || ev.Corpus != "porn" || ev.Country != "ES" {
		t.Errorf("event labels = %+v", ev)
	}
	if !ev.OK || ev.Interactive {
		t.Errorf("event outcome = ok:%v interactive:%v, want ok non-interactive", ev.OK, ev.Interactive)
	}
	if ev.Rank != 42 {
		t.Errorf("Rank = %d, want 42 from the rank callback", ev.Rank)
	}
	if ev.Requests == 0 || ev.ThirdParty == 0 || ev.Bytes == 0 {
		t.Errorf("stats empty: requests=%d third_party=%d bytes=%d", ev.Requests, ev.ThirdParty, ev.Bytes)
	}
	if ev.WallMS <= 0 {
		t.Errorf("WallMS = %v, want > 0", ev.WallMS)
	}
	if ev.FailClass != "" {
		t.Errorf("successful visit carries fail class %q", ev.FailClass)
	}
}

// TestVisitFlightFailureKept pins that a failed visit emits an event with
// its failure class — the events sampling must never lose.
func TestVisitFlightFailureKept(t *testing.T) {
	f := setup(t)
	// Sample 1-in-1000 so a kept event can only be the always-kept failure.
	fr := obs.NewFlightRecorder(64, 1000, nil)
	b := f.flightBrowser(t, fr)
	b.Stage = "crawl/porn-ES"

	pv := b.Visit(context.Background(), "no-such-host.invalid")
	if pv.OK {
		t.Fatal("visit to a nonexistent host succeeded")
	}
	var failed *obs.VisitEvent
	for _, ev := range fr.Events() {
		if !ev.OK {
			failed = &ev
			break
		}
	}
	if failed == nil {
		t.Fatal("failed visit produced no flight event despite aggressive sampling")
	}
	if failed.Site != "no-such-host.invalid" || failed.FailClass == "" {
		t.Errorf("failure event = %+v, want site and fail class set", failed)
	}
}

// TestVisitSpanLinksFlightEvent pins the span linkage: with a tracer in
// the context, the visit's SpanID lands both on the PageVisit and in the
// flight event, joining the two observability streams.
func TestVisitSpanLinksFlightEvent(t *testing.T) {
	f := setup(t)
	fr := obs.NewFlightRecorder(64, 1, nil)
	b := f.flightBrowser(t, fr)

	tr := obs.NewTracer(16)
	ctx := obs.WithTracer(context.Background(), tr)
	site := pick(t, f.eco, func(s *webgen.Site) bool { return !s.Flaky && !s.Unresponsive })
	pv := b.Visit(ctx, site.Host)
	if pv.SpanID == 0 {
		t.Fatal("visit under a tracer has SpanID 0")
	}
	evs := fr.Events()
	if len(evs) != 1 || evs[0].SpanID != pv.SpanID {
		t.Fatalf("flight event span = %d, want %d", evs[0].SpanID, pv.SpanID)
	}

	// Without a tracer the visit still works; the linkage is just absent.
	b2 := f.flightBrowser(t, nil)
	pv2 := b2.Visit(context.Background(), site.Host)
	if pv2.SpanID != 0 {
		t.Errorf("visit without a tracer has SpanID %d, want 0", pv2.SpanID)
	}
}

// TestInteractiveVisitEmitsFlightEvent covers the Selenium-analog path.
func TestInteractiveVisitEmitsFlightEvent(t *testing.T) {
	f := setup(t)
	fr := obs.NewFlightRecorder(64, 1, nil)
	b := f.flightBrowser(t, fr)
	b.Stage = "crawl/interactive-ES"

	site := pick(t, f.eco, func(s *webgen.Site) bool { return !s.Flaky && !s.Unresponsive })
	iv := b.VisitInteractive(context.Background(), site.Host)
	if !iv.OK {
		t.Fatalf("interactive visit failed: %s", iv.Err)
	}
	evs := fr.Events()
	if len(evs) != 1 {
		t.Fatalf("recorder holds %d events, want 1", len(evs))
	}
	if !evs[0].Interactive || evs[0].Stage != "crawl/interactive-ES" {
		t.Errorf("event = %+v, want interactive with stage label", evs[0])
	}
}
