// Package crawler implements the instrumented HTTP layer of the
// OpenWPM-analog browser: a single long-lived session (the paper keeps one
// browser session for the whole crawl so cookie synchronization is
// observable) that records every request and response — URL, status,
// referrer, initiator, redirect target, received cookies and the X.509
// organization of TLS peers — into a thread-safe log the analyses consume.
//
// Top-level page fetches probe HTTPS first and downgrade to plain HTTP when
// the TLS handshake fails, which is how the paper measures HTTPS support
// (Section 5.2). Redirects are followed manually so that every hop of a
// cookie-sync or RTB chain appears in the log as its own record.
package crawler

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/cookiejar"
	"net/url"
	"strings"
	"sync"
	"time"

	"pornweb/internal/obs"
)

// Initiator describes what caused a request.
type Initiator string

// Initiators.
const (
	InitDocument Initiator = "document" // top-level navigation
	InitScript   Initiator = "script"   // <script src> fetch
	InitImage    Initiator = "img"
	InitIframe   Initiator = "iframe"
	InitCSS      Initiator = "css"
	InitRedirect Initiator = "redirect" // HTTP 3xx hop
	InitJS       Initiator = "js"       // request triggered by script execution
)

// CookieRecord is one received Set-Cookie.
type CookieRecord struct {
	Name    string
	Value   string
	Host    string // host that set it
	Session bool   // no expiry: session cookie
}

// Record is one logged request/response pair.
type Record struct {
	Seq         int
	URL         string
	Host        string
	Scheme      string
	SiteHost    string // the visited site this request belongs to
	Country     string
	Status      int // 0 on transport error
	ContentType string
	Referer     string
	Initiator   Initiator
	ParentURL   string // URL of the document/script/hop that caused this
	RedirectTo  string // Location on 3xx
	SetCookies  []CookieRecord
	CertOrg     string // organization from the TLS peer certificate
	Err         string
}

// Result is the outcome of a (redirect-following) fetch.
type Result struct {
	FinalURL    string
	Status      int
	Body        string
	ContentType string
	Hops        int
	Secure      bool // final hop served over TLS
}

// Config configures a crawl session.
type Config struct {
	// DialContext resolves hostnames (the webserver's resolver).
	DialContext func(ctx context.Context, network, addr string) (net.Conn, error)
	// RootCAs trusts the substrate CA.
	RootCAs *x509.CertPool
	// Country is sent as the vantage header on every request.
	Country string
	// Phase is sent as the crawl-phase header ("sanitize", "crawl",
	// "policy").
	Phase string
	// Timeout bounds one request (the paper used 120s per page; tests use
	// much less).
	Timeout time.Duration
	// MaxRedirects bounds a redirect chain.
	MaxRedirects int
	// UserAgent for requests.
	UserAgent string
	// Metrics, when non-nil, receives per-request telemetry (latency
	// histograms, status-class counters, transport errors and HTTPS
	// downgrades, all labeled by vantage country). Instruments are
	// resolved once at session creation, so the per-request cost is an
	// atomic add — and a nil check when disabled.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Timeout == 0 {
		c.Timeout = 15 * time.Second
	}
	if c.MaxRedirects == 0 {
		c.MaxRedirects = 10
	}
	if c.UserAgent == "" {
		c.UserAgent = "Mozilla/5.0 (X11; Linux x86_64; rv:52.0) Gecko/20100101 Firefox/52.0"
	}
	if c.Phase == "" {
		c.Phase = "crawl"
	}
	if c.Country == "" {
		c.Country = "ES"
	}
	return c
}

// Session is one instrumented browser session.
type Session struct {
	cfg    Config
	client *http.Client
	jar    *cookiejar.Jar
	met    sessionMetrics

	mu       sync.Mutex
	log      []Record
	certOrgs map[string]string // host -> cert org
	seq      int
}

// sessionMetrics holds the session's pre-resolved instruments. All fields
// are nil without a registry, making every update a no-op.
type sessionMetrics struct {
	latency    *obs.Histogram
	byClass    [6]*obs.Counter // index statusClassIdx: 1xx..5xx, error
	transport  *obs.Counter
	downgrades *obs.Counter
	cookies    *obs.Counter
}

// statusClassIdx maps an HTTP status (or 0 for transport error) to the
// byClass index; statusClassName names it.
func statusClassIdx(status int) int {
	if status >= 100 && status < 600 {
		return status/100 - 1
	}
	return 5
}

var statusClassName = [6]string{"1xx", "2xx", "3xx", "4xx", "5xx", "error"}

func newSessionMetrics(reg *obs.Registry, country string) sessionMetrics {
	if reg == nil {
		return sessionMetrics{}
	}
	reg.Describe("crawler_request_seconds", "per-request round-trip latency")
	reg.Describe("crawler_requests_total", "requests by status class and vantage country")
	reg.Describe("crawler_transport_errors_total", "requests that died before an HTTP status")
	reg.Describe("crawler_https_downgrades_total", "page loads that fell back from HTTPS to HTTP")
	reg.Describe("crawler_cookies_set_total", "Set-Cookie headers received")
	m := sessionMetrics{
		latency:    reg.Histogram("crawler_request_seconds", obs.LatencyBuckets, "country", country),
		transport:  reg.Counter("crawler_transport_errors_total", "country", country),
		downgrades: reg.Counter("crawler_https_downgrades_total", "country", country),
		cookies:    reg.Counter("crawler_cookies_set_total", "country", country),
	}
	for i, class := range statusClassName {
		m.byClass[i] = reg.Counter("crawler_requests_total", "country", country, "class", class)
	}
	return m
}

// NewSession builds a session with a fresh cookie jar.
func NewSession(cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	jar, err := cookiejar.New(nil)
	if err != nil {
		return nil, fmt.Errorf("crawler: cookie jar: %w", err)
	}
	// Connection pooling is tuned for a crawl that contacts tens of
	// thousands of distinct hostnames behind one loopback server. The
	// transport pools per hostname, so the default small global idle cap
	// (100) would evict-and-close thousands of connections per second —
	// every close burns a client ephemeral port for a TIME_WAIT interval
	// and a paper-scale crawl exhausts the port range within seconds.
	// Unlimited idle connections with a short idle timeout keeps hot
	// tracker connections warm (ExoClick is contacted from 43% of sites)
	// while one-shot connections drain gradually instead of in bursts.
	tr := &http.Transport{
		MaxIdleConns:        0, // unlimited
		MaxIdleConnsPerHost: 8,
		IdleConnTimeout:     15 * time.Second,
	}
	if cfg.DialContext != nil {
		tr.DialContext = cfg.DialContext
	}
	if cfg.RootCAs != nil {
		tr.TLSClientConfig = &tls.Config{RootCAs: cfg.RootCAs}
	}
	s := &Session{
		cfg:      cfg,
		jar:      jar,
		met:      newSessionMetrics(cfg.Metrics, cfg.Country),
		certOrgs: map[string]string{},
	}
	s.client = &http.Client{
		Transport: tr,
		Jar:       jar,
		Timeout:   cfg.Timeout,
		// Redirects are followed manually in Fetch so every hop is logged.
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	return s, nil
}

// Log returns a snapshot of the request log.
func (s *Session) Log() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.log))
	copy(out, s.log)
	return out
}

// CertOrgs returns a snapshot of observed host -> certificate-organization
// mappings.
func (s *Session) CertOrgs() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.certOrgs))
	for k, v := range s.certOrgs {
		out[k] = v
	}
	return out
}

// Jar exposes the session cookie jar (for cookie-census analyses).
func (s *Session) Jar() *cookiejar.Jar { return s.jar }

// Metrics exposes the session's registry (nil when uninstrumented) so the
// layers above — the browser page loader — can register their own
// instruments against the same registry.
func (s *Session) Metrics() *obs.Registry { return s.cfg.Metrics }

// Country returns the session's vantage country.
func (s *Session) Country() string { return s.cfg.Country }

func (s *Session) record(r Record) {
	if r.Status == 0 {
		s.met.transport.Inc()
		s.met.byClass[5].Inc()
	} else {
		s.met.byClass[statusClassIdx(r.Status)].Inc()
	}
	s.met.cookies.Add(uint64(len(r.SetCookies)))
	s.mu.Lock()
	s.seq++
	r.Seq = s.seq
	s.log = append(s.log, r)
	s.mu.Unlock()
}

// Fetch retrieves rawURL, following redirects and logging every hop.
// siteHost attributes the request to the visited site; initiator and
// parentURL describe provenance.
func (s *Session) Fetch(ctx context.Context, rawURL, siteHost string, initiator Initiator, parentURL string) (*Result, error) {
	cur := rawURL
	ref := parentURL
	init := initiator
	var res *Result
	for hop := 0; hop <= s.cfg.MaxRedirects; hop++ {
		rec, resp, err := s.doOne(ctx, cur, siteHost, init, ref)
		if err != nil {
			s.record(rec)
			return nil, err
		}
		loc := rec.RedirectTo
		if loc == "" {
			body, rerr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
			resp.Body.Close()
			if rerr != nil {
				rec.Err = rerr.Error()
			}
			s.record(rec)
			res = &Result{
				FinalURL:    cur,
				Status:      rec.Status,
				Body:        string(body),
				ContentType: rec.ContentType,
				Hops:        hop,
				Secure:      rec.Scheme == "https",
			}
			return res, nil
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		s.record(rec)
		next, err := url.Parse(loc)
		if err != nil {
			return nil, fmt.Errorf("crawler: bad redirect %q: %w", loc, err)
		}
		base, _ := url.Parse(cur)
		cur = base.ResolveReference(next).String()
		ref = rec.URL
		init = InitRedirect
	}
	return nil, fmt.Errorf("crawler: too many redirects from %s", rawURL)
}

// doOne performs a single request without following redirects.
func (s *Session) doOne(ctx context.Context, rawURL, siteHost string, initiator Initiator, referer string) (Record, *http.Response, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return Record{URL: rawURL, SiteHost: siteHost, Err: err.Error()}, nil, err
	}
	rec := Record{
		URL:       rawURL,
		Host:      strings.ToLower(u.Hostname()),
		Scheme:    u.Scheme,
		SiteHost:  siteHost,
		Country:   s.cfg.Country,
		Initiator: initiator,
		ParentURL: referer,
		Referer:   referer,
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		rec.Err = err.Error()
		return rec, nil, err
	}
	req.Header.Set("User-Agent", s.cfg.UserAgent)
	req.Header.Set("X-Vantage-Country", s.cfg.Country)
	req.Header.Set("X-Crawl-Phase", s.cfg.Phase)
	if referer != "" {
		req.Header.Set("Referer", referer)
	}
	start := time.Now()
	resp, err := s.client.Do(req)
	s.met.latency.Observe(time.Since(start).Seconds())
	if err != nil {
		rec.Err = err.Error()
		return rec, nil, err
	}
	if resp.Header.Get("X-Refused") == "1" {
		resp.Body.Close()
		rec.Err = "connection refused"
		err := fmt.Errorf("crawler: %s refused", rec.Host)
		return rec, nil, err
	}
	rec.Status = resp.StatusCode
	rec.ContentType = resp.Header.Get("Content-Type")
	if resp.StatusCode >= 300 && resp.StatusCode < 400 {
		rec.RedirectTo = resp.Header.Get("Location")
	}
	for _, c := range resp.Cookies() {
		rec.SetCookies = append(rec.SetCookies, CookieRecord{
			Name:    c.Name,
			Value:   c.Value,
			Host:    rec.Host,
			Session: c.MaxAge == 0 && c.Expires.IsZero(),
		})
	}
	if resp.TLS != nil && len(resp.TLS.PeerCertificates) > 0 {
		cert := resp.TLS.PeerCertificates[0]
		if len(cert.Subject.Organization) > 0 {
			org := cert.Subject.Organization[0]
			rec.CertOrg = org
			s.mu.Lock()
			s.certOrgs[rec.Host] = org
			s.mu.Unlock()
		}
	}
	return rec, resp, nil
}

// FetchPage retrieves a site's landing page (or an arbitrary path on it),
// probing HTTPS first and downgrading to HTTP on handshake failure, as the
// paper's crawler does. It returns the result and whether the site
// ultimately supported HTTPS.
func (s *Session) FetchPage(ctx context.Context, host, path string) (*Result, bool, error) {
	if path == "" {
		path = "/"
	}
	res, err := s.Fetch(ctx, "https://"+host+path, host, InitDocument, "")
	if err == nil {
		return res, true, nil
	}
	res, err2 := s.Fetch(ctx, "http://"+host+path, host, InitDocument, "")
	if err2 == nil {
		s.met.downgrades.Inc()
		return res, false, nil
	}
	return nil, false, fmt.Errorf("crawler: %s unreachable: https: %v; http: %v", host, err, err2)
}
