// Package crawler implements the instrumented HTTP layer of the
// OpenWPM-analog browser: a single long-lived session (the paper keeps one
// browser session for the whole crawl so cookie synchronization is
// observable) that records every request and response — URL, status,
// referrer, initiator, redirect target, received cookies and the X.509
// organization of TLS peers — into a thread-safe log the analyses consume.
//
// Top-level page fetches probe HTTPS first and downgrade to plain HTTP when
// the TLS handshake fails, which is how the paper measures HTTPS support
// (Section 5.2). Redirects are followed manually so that every hop of a
// cookie-sync or RTB chain appears in the log as its own record.
package crawler

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/cookiejar"
	"net/url"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"pornweb/internal/obs"
	"pornweb/internal/resilience"
)

// fetchLabels is the profile label for the request/response hot path.
var fetchLabels = pprof.Labels("op", "fetch")

// Initiator describes what caused a request.
type Initiator string

// Initiators.
const (
	InitDocument Initiator = "document" // top-level navigation
	InitScript   Initiator = "script"   // <script src> fetch
	InitImage    Initiator = "img"
	InitIframe   Initiator = "iframe"
	InitCSS      Initiator = "css"
	InitRedirect Initiator = "redirect" // HTTP 3xx hop
	InitJS       Initiator = "js"       // request triggered by script execution
)

// CookieRecord is one received Set-Cookie.
type CookieRecord struct {
	Name    string
	Value   string
	Host    string // host that set it
	Session bool   // no expiry: session cookie
}

// Record is one logged request/response pair.
type Record struct {
	Seq         int
	URL         string
	Host        string
	Scheme      string
	SiteHost    string // the visited site this request belongs to
	Country     string
	Status      int // 0 on transport error
	ContentType string
	Referer     string
	Initiator   Initiator
	ParentURL   string // URL of the document/script/hop that caused this
	RedirectTo  string // Location on 3xx
	SetCookies  []CookieRecord
	CertOrg     string // organization from the TLS peer certificate
	Err         string
	// Bytes is the response-body size read for this request.
	Bytes int `json:",omitempty"`
	// Attempt is the 1-based retry attempt this record belongs to (0 in
	// sessions without a retry policy).
	Attempt int `json:",omitempty"`
}

// Result is the outcome of a (redirect-following) fetch.
type Result struct {
	FinalURL    string
	Status      int
	Body        string
	ContentType string
	Hops        int
	Secure      bool // final hop served over TLS
}

// Config configures a crawl session.
type Config struct {
	// DialContext resolves hostnames (the webserver's resolver).
	DialContext func(ctx context.Context, network, addr string) (net.Conn, error)
	// RootCAs trusts the substrate CA.
	RootCAs *x509.CertPool
	// Country is sent as the vantage header on every request.
	Country string
	// Phase is sent as the crawl-phase header ("sanitize", "crawl",
	// "policy").
	Phase string
	// Timeout bounds one request (the paper used 120s per page; tests use
	// much less).
	Timeout time.Duration
	// MaxRedirects bounds a redirect chain.
	MaxRedirects int
	// UserAgent for requests.
	UserAgent string
	// Metrics, when non-nil, receives per-request telemetry (latency
	// histograms, status-class counters, transport errors and HTTPS
	// downgrades, all labeled by vantage country). Instruments are
	// resolved once at session creation, so the per-request cost is an
	// atomic add — and a nil check when disabled.
	Metrics *obs.Registry
	// Retry configures bounded retries with backoff and the per-host
	// circuit breaker. The zero value keeps the historical single-shot
	// behaviour.
	Retry resilience.Policy
	// PageBudget bounds one full page visit (document plus every retry
	// and subresource), so retries can never blow the page deadline.
	// Defaults to 4×Timeout when Retry is active, otherwise disabled.
	PageBudget time.Duration
	// Flight, when non-nil, is the per-visit flight recorder the browser
	// layer emits wide events into. The session itself only carries it
	// (and aggregates the per-site stats those events need); a nil
	// recorder keeps the whole path allocation-free.
	Flight *obs.FlightRecorder
}

func (c Config) withDefaults() Config {
	if c.Timeout == 0 {
		c.Timeout = 15 * time.Second
	}
	if c.MaxRedirects == 0 {
		c.MaxRedirects = 10
	}
	if c.UserAgent == "" {
		c.UserAgent = "Mozilla/5.0 (X11; Linux x86_64; rv:52.0) Gecko/20100101 Firefox/52.0"
	}
	if c.Phase == "" {
		c.Phase = "crawl"
	}
	if c.Country == "" {
		c.Country = "ES"
	}
	if c.PageBudget == 0 && c.Retry.Active() {
		c.PageBudget = 4 * c.Timeout
	}
	return c
}

// Session is one instrumented browser session.
type Session struct {
	cfg    Config
	client *http.Client
	met    sessionMetrics
	res    *resilience.Controller // nil without a retry policy

	mu         sync.Mutex
	log        []Record
	certOrgs   map[string]string // host -> cert org
	seq        int
	failCounts map[string]uint64            // failure class -> terminal failures
	siteFails  map[string]map[string]uint64 // site host -> failure class -> count
	siteStats  map[string]VisitStats        // site host -> aggregated request stats
	siteRecs   map[string][]int             // site host -> indices into log

	jarsMu sync.Mutex
	jars   map[string]*cookiejar.Jar // site host -> that visit's cookie jar
}

// VisitStats aggregates the request log of one visited site into the
// counts a flight-recorder event carries.
type VisitStats struct {
	Requests   int   // records attributed to the site
	ThirdParty int   // records aimed at hosts other than the site itself
	Cookies    int   // Set-Cookie headers received
	Bytes      int64 // response-body volume read
	Attempts   int   // highest retry attempt any request needed
}

// sessionMetrics holds the session's pre-resolved instruments. All fields
// are nil without a registry, making every update a no-op.
type sessionMetrics struct {
	latency     *obs.Histogram
	byClass     [6]*obs.Counter // index statusClassIdx: 1xx..5xx, error
	transport   *obs.Counter
	downgrades  *obs.Counter
	cookies     *obs.Counter
	retries     *obs.Counter
	retryDelay  *obs.Histogram
	breakerFast *obs.Counter
	failures    map[resilience.Class]*obs.Counter
}

// statusClassIdx maps an HTTP status (or 0 for transport error) to the
// byClass index; statusClassName names it.
func statusClassIdx(status int) int {
	if status >= 100 && status < 600 {
		return status/100 - 1
	}
	return 5
}

var statusClassName = [6]string{"1xx", "2xx", "3xx", "4xx", "5xx", "error"}

func newSessionMetrics(reg *obs.Registry, country string) sessionMetrics {
	if reg == nil {
		return sessionMetrics{}
	}
	reg.Describe("crawler_request_seconds", "per-request round-trip latency")
	reg.Describe("crawler_requests_total", "requests by status class and vantage country")
	reg.Describe("crawler_transport_errors_total", "requests that died before an HTTP status")
	reg.Describe("crawler_https_downgrades_total", "page loads that fell back from HTTPS to HTTP")
	reg.Describe("crawler_cookies_set_total", "Set-Cookie headers received")
	reg.Describe("crawler_retries_total", "request attempts beyond the first")
	reg.Describe("crawler_retry_delay_seconds", "backoff slept before a retry")
	reg.Describe("crawler_request_failures_total", "requests that failed terminally, by taxonomy class")
	reg.Describe("crawler_breaker_fastfail_total", "requests rejected without an attempt by an open breaker")
	m := sessionMetrics{
		latency:     reg.Histogram("crawler_request_seconds", obs.LatencyBuckets, "country", country),
		transport:   reg.Counter("crawler_transport_errors_total", "country", country),
		downgrades:  reg.Counter("crawler_https_downgrades_total", "country", country),
		cookies:     reg.Counter("crawler_cookies_set_total", "country", country),
		retries:     reg.Counter("crawler_retries_total", "country", country),
		retryDelay:  reg.Histogram("crawler_retry_delay_seconds", obs.LatencyBuckets, "country", country),
		breakerFast: reg.Counter("crawler_breaker_fastfail_total", "country", country),
		failures:    map[resilience.Class]*obs.Counter{},
	}
	for i, class := range statusClassName {
		m.byClass[i] = reg.Counter("crawler_requests_total", "country", country, "class", class)
	}
	for _, c := range resilience.Classes() {
		m.failures[c] = reg.Counter("crawler_request_failures_total", "country", country, "class", string(c))
	}
	return m
}

// NewSession builds a session. Cookie state is kept per visited site —
// each top-level visit starts from a fresh jar, matching the paper's
// stateless OpenWPM crawls (a new browser profile per visit). A jar
// shared across sites would also make the measured numbers depend on
// scheduling: concurrent visits race on which site's requests already
// carry a tracker's cookie, and the ecosystem answers first contact and
// repeat contact differently.
func NewSession(cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	// Connection pooling is tuned for a crawl that contacts tens of
	// thousands of distinct hostnames behind one loopback server. The
	// transport pools per hostname, so the default small global idle cap
	// (100) would evict-and-close thousands of connections per second —
	// every close burns a client ephemeral port for a TIME_WAIT interval
	// and a paper-scale crawl exhausts the port range within seconds.
	// Unlimited idle connections with a short idle timeout keeps hot
	// tracker connections warm (ExoClick is contacted from 43% of sites)
	// while one-shot connections drain gradually instead of in bursts.
	tr := &http.Transport{
		MaxIdleConns:        0, // unlimited
		MaxIdleConnsPerHost: 8,
		IdleConnTimeout:     15 * time.Second,
	}
	if cfg.DialContext != nil {
		tr.DialContext = cfg.DialContext
	}
	if cfg.RootCAs != nil {
		tr.TLSClientConfig = &tls.Config{RootCAs: cfg.RootCAs}
	}
	s := &Session{
		cfg:        cfg,
		met:        newSessionMetrics(cfg.Metrics, cfg.Country),
		certOrgs:   map[string]string{},
		failCounts: map[string]uint64{},
		siteFails:  map[string]map[string]uint64{},
		siteStats:  map[string]VisitStats{},
		siteRecs:   map[string][]int{},
		jars:       map[string]*cookiejar.Jar{},
		res:        resilience.NewController(cfg.Retry),
	}
	if s.res != nil && cfg.Metrics != nil {
		reg := cfg.Metrics
		reg.Describe("crawler_breaker_transitions_total", "circuit breaker state transitions by target state")
		reg.Describe("crawler_breakers_open", "hosts whose breaker is currently open or half-open")
		trans := map[resilience.State]*obs.Counter{}
		for _, st := range []resilience.State{resilience.Closed, resilience.Open, resilience.HalfOpen} {
			trans[st] = reg.Counter("crawler_breaker_transitions_total", "country", cfg.Country, "state", st.String())
		}
		open := reg.Gauge("crawler_breakers_open", "country", cfg.Country)
		s.res.OnTransition(func(host string, from, to resilience.State) {
			trans[to].Inc()
			switch {
			case from == resilience.Closed && to != resilience.Closed:
				open.Add(1)
			case from != resilience.Closed && to == resilience.Closed:
				open.Add(-1)
			}
		})
	}
	// No Jar on the shared client: doAttempt clones it per request with
	// the visited site's own jar.
	s.client = &http.Client{
		Transport: tr,
		Timeout:   cfg.Timeout,
		// Redirects are followed manually in Fetch so every hop is logged.
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	return s, nil
}

// Log returns a snapshot of the request log.
func (s *Session) Log() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.log))
	copy(out, s.log)
	return out
}

// CertOrgs returns a snapshot of observed host -> certificate-organization
// mappings.
func (s *Session) CertOrgs() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.certOrgs))
	for k, v := range s.certOrgs {
		out[k] = v
	}
	return out
}

// JarFor exposes the cookie jar of one visited site (for cookie-census
// analyses), creating it if the site has not been contacted yet.
func (s *Session) JarFor(siteHost string) *cookiejar.Jar { return s.jarFor(siteHost) }

// jarFor returns the per-visit cookie jar for a site, minting a fresh one
// on first contact.
func (s *Session) jarFor(siteHost string) *cookiejar.Jar {
	s.jarsMu.Lock()
	defer s.jarsMu.Unlock()
	j := s.jars[siteHost]
	if j == nil {
		j, _ = cookiejar.New(nil) // never fails with nil options
		s.jars[siteHost] = j
	}
	return j
}

// Metrics exposes the session's registry (nil when uninstrumented) so the
// layers above — the browser page loader — can register their own
// instruments against the same registry.
func (s *Session) Metrics() *obs.Registry { return s.cfg.Metrics }

// Country returns the session's vantage country.
func (s *Session) Country() string { return s.cfg.Country }

// PageBudget returns the per-page deadline budget (0 when disabled).
func (s *Session) PageBudget() time.Duration { return s.cfg.PageBudget }

// Flight returns the session's flight recorder (nil when disabled).
func (s *Session) Flight() *obs.FlightRecorder { return s.cfg.Flight }

// FailureCounts snapshots terminal request failures by taxonomy class.
func (s *Session) FailureCounts() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.failCounts))
	for k, v := range s.failCounts {
		out[k] = v
	}
	return out
}

// countFailure records one terminal request failure of the given
// class, attributed to the visited site (so a resumed run can
// reconstruct per-visit failure totals from the durable store).
func (s *Session) countFailure(class resilience.Class, siteHost string) {
	if class == "" {
		return
	}
	s.met.failures[class].Inc()
	s.mu.Lock()
	s.failCounts[string(class)]++
	if siteHost != "" {
		m := s.siteFails[siteHost]
		if m == nil {
			m = map[string]uint64{}
			s.siteFails[siteHost] = m
		}
		m[string(class)]++
	}
	s.mu.Unlock()
}

// SiteFailureCounts snapshots the terminal failures attributed to one
// visited site, by taxonomy class (nil when the site saw none).
func (s *Session) SiteFailureCounts(site string) map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	src := s.siteFails[site]
	if len(src) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// SiteRecords returns the request records attributed to one visited
// site, in log order. Concurrent visits interleave in the session log;
// this is the per-visit view the durable store persists.
func (s *Session) SiteRecords(site string) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := s.siteRecs[site]
	out := make([]Record, len(idx))
	for i, j := range idx {
		out[i] = s.log[j]
	}
	return out
}

func (s *Session) record(r Record) {
	if r.Status == 0 {
		s.met.transport.Inc()
		s.met.byClass[5].Inc()
	} else {
		s.met.byClass[statusClassIdx(r.Status)].Inc()
	}
	s.met.cookies.Add(uint64(len(r.SetCookies)))
	s.mu.Lock()
	s.seq++
	r.Seq = s.seq
	s.log = append(s.log, r)
	if r.SiteHost != "" {
		s.siteRecs[r.SiteHost] = append(s.siteRecs[r.SiteHost], len(s.log)-1)
		st := s.siteStats[r.SiteHost]
		st.Requests++
		if r.Host != "" && r.Host != r.SiteHost {
			st.ThirdParty++
		}
		st.Cookies += len(r.SetCookies)
		st.Bytes += int64(r.Bytes)
		if r.Attempt > st.Attempts {
			st.Attempts = r.Attempt
		}
		s.siteStats[r.SiteHost] = st
	}
	s.mu.Unlock()
}

// VisitStats returns the aggregated request stats for one visited site.
func (s *Session) VisitStats(site string) VisitStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.siteStats[site]
}

// Fetch retrieves rawURL, following redirects and logging every hop.
// siteHost attributes the request to the visited site; initiator and
// parentURL describe provenance. Revisiting an absolute URL inside one
// chain fails fast with an error wrapping resilience.ErrRedirectLoop —
// a looping tracker otherwise burns the whole hop budget (and, with
// retries enabled, the page deadline) before failing.
func (s *Session) Fetch(ctx context.Context, rawURL, siteHost string, initiator Initiator, parentURL string) (*Result, error) {
	cur := rawURL
	ref := parentURL
	init := initiator
	seen := map[string]bool{}
	for hop := 0; hop <= s.cfg.MaxRedirects; hop++ {
		if seen[cur] {
			s.countFailure(resilience.ClassRedirectLoop, siteHost)
			return nil, fmt.Errorf("crawler: %w: revisited %s", resilience.ErrRedirectLoop, cur)
		}
		seen[cur] = true
		rec, att, err := s.fetchHop(ctx, cur, siteHost, init, ref)
		if err != nil {
			s.record(rec)
			return nil, err
		}
		if att.redirectTo == "" {
			s.record(rec)
			if cls := resilience.ClassifyStatus(rec.Status); cls != "" {
				s.countFailure(cls, siteHost)
			}
			return &Result{
				FinalURL:    cur,
				Status:      rec.Status,
				Body:        string(att.body),
				ContentType: rec.ContentType,
				Hops:        hop,
				Secure:      rec.Scheme == "https",
			}, nil
		}
		s.record(rec)
		next, err := url.Parse(att.redirectTo)
		if err != nil {
			s.countFailure(resilience.Classify(err), siteHost)
			return nil, fmt.Errorf("crawler: bad redirect %q: %w", att.redirectTo, err)
		}
		base, _ := url.Parse(cur)
		cur = base.ResolveReference(next).String()
		ref = rec.URL
		init = InitRedirect
	}
	s.countFailure(resilience.ClassRedirectLoop, siteHost)
	return nil, fmt.Errorf("crawler: too many redirects from %s: %w", rawURL, resilience.ErrRedirectLoop)
}

// attempt is the payload of one successful (or 5xx) request attempt.
type attempt struct {
	body       []byte
	redirectTo string
	retryAfter time.Duration // parsed Retry-After hint, if any
}

// fetchHop fetches one hop of a redirect chain, applying the session's
// retry policy and circuit breaker. On success (including a served
// redirect) the returned Record is NOT yet logged — the caller records
// it; intermediate failed attempts are logged here as they happen. When
// every retry of a retryable status (e.g. 503) is exhausted, the last
// response is returned with a nil error so the page layer sees the
// status. When the breaker opens mid-sequence on this host's own
// failures, the concrete cause is returned, not ErrBreakerOpen — only a
// first-attempt rejection (the host was already condemned by earlier
// pages) surfaces as breaker-open.
func (s *Session) fetchHop(ctx context.Context, rawURL, siteHost string, init Initiator, ref string) (Record, *attempt, error) {
	pol := s.res.Policy()
	host := ""
	if u, perr := url.Parse(rawURL); perr == nil {
		host = strings.ToLower(u.Hostname())
	}
	if err := s.res.Allow(host); err != nil {
		s.met.breakerFast.Inc()
		s.countFailure(resilience.ClassBreakerOpen, siteHost)
		return Record{URL: rawURL, Host: host, SiteHost: siteHost, Country: s.cfg.Country,
			Initiator: init, ParentURL: ref, Referer: ref, Err: err.Error(), Attempt: 1}, nil, err
	}
	for try := 1; ; try++ {
		var rec Record
		var att *attempt
		var err error
		// op=fetch layers onto the ambient stage/vantage labels so profiles
		// separate network-side CPU (TLS, header parsing, body reads) from
		// the browser's tokenize/jsvm work inside the same stage.
		pprof.Do(ctx, fetchLabels, func(lctx context.Context) {
			rec, att, err = s.doAttempt(lctx, rawURL, siteHost, init, ref)
		})
		if s.res != nil {
			rec.Attempt = try
		}
		ok := err == nil && rec.Status < 500
		s.res.Report(host, ok)
		if err == nil && !resilience.RetryableStatus(rec.Status) {
			if cls := resilience.ClassifyStatus(rec.Status); cls != "" {
				s.countFailure(cls, siteHost)
			}
			return rec, att, nil
		}
		// This attempt failed (transport error or retryable status).
		retryable := err == nil || resilience.Retryable(err)
		if !retryable || try >= pol.MaxAttempts || ctx.Err() != nil {
			return s.finishHop(rec, att, err)
		}
		var ra time.Duration
		if att != nil {
			ra = att.retryAfter
		}
		delay := s.res.Delay(try, ra)
		if dl, has := ctx.Deadline(); has && time.Until(dl) <= delay {
			// Not enough budget left to sleep and try again.
			return s.finishHop(rec, att, err)
		}
		if s.res.Allow(host) != nil {
			// The breaker opened on this host's own failures: stop
			// retrying and surface the concrete cause.
			return s.finishHop(rec, att, err)
		}
		s.record(rec)
		s.met.retries.Inc()
		s.met.retryDelay.Observe(delay.Seconds())
		if !resilience.Sleep(ctx, delay) {
			cerr := ctx.Err()
			s.countFailure(resilience.Classify(cerr), siteHost)
			return Record{URL: rawURL, Host: host, SiteHost: siteHost, Country: s.cfg.Country,
				Initiator: init, ParentURL: ref, Referer: ref, Err: cerr.Error(), Attempt: try}, nil, cerr
		}
	}
}

// finishHop counts and returns a terminal attempt outcome.
func (s *Session) finishHop(rec Record, att *attempt, err error) (Record, *attempt, error) {
	if err != nil {
		s.countFailure(resilience.Classify(err), rec.SiteHost)
		return rec, nil, err
	}
	// Retries exhausted on a retryable status: hand the last response
	// back so the page layer records the status it saw.
	if cls := resilience.ClassifyStatus(rec.Status); cls != "" {
		s.countFailure(cls, rec.SiteHost)
	}
	return rec, att, nil
}

// doAttempt performs a single request without following redirects and
// reads its body, so a truncated or reset stream fails the attempt
// (and can be retried) instead of silently yielding a partial page.
func (s *Session) doAttempt(ctx context.Context, rawURL, siteHost string, initiator Initiator, referer string) (Record, *attempt, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return Record{URL: rawURL, SiteHost: siteHost, Err: err.Error()}, nil, err
	}
	rec := Record{
		URL:       rawURL,
		Host:      strings.ToLower(u.Hostname()),
		Scheme:    u.Scheme,
		SiteHost:  siteHost,
		Country:   s.cfg.Country,
		Initiator: initiator,
		ParentURL: referer,
		Referer:   referer,
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		rec.Err = err.Error()
		return rec, nil, err
	}
	req.Header.Set("User-Agent", s.cfg.UserAgent)
	req.Header.Set("X-Vantage-Country", s.cfg.Country)
	req.Header.Set("X-Crawl-Phase", s.cfg.Phase)
	if referer != "" {
		req.Header.Set("Referer", referer)
	}
	start := time.Now()
	// Shallow-copy the client so this request uses the visited site's own
	// cookie jar while sharing the pooled transport.
	client := *s.client
	client.Jar = s.jarFor(siteHost)
	//studylint:ignore rawhttp doAttempt is the single sanctioned transport call: it only ever runs under visit()'s resilience retry/breaker/budget loop, so this Do IS the routed path
	resp, err := client.Do(req)
	s.met.latency.Observe(time.Since(start).Seconds())
	if err != nil {
		rec.Err = err.Error()
		return rec, nil, err
	}
	if resp.Header.Get("X-Refused") == "1" {
		resp.Body.Close()
		rec.Err = "connection refused"
		err := fmt.Errorf("crawler: %s refused", rec.Host)
		return rec, nil, err
	}
	rec.Status = resp.StatusCode
	rec.ContentType = resp.Header.Get("Content-Type")
	if resp.StatusCode >= 300 && resp.StatusCode < 400 {
		rec.RedirectTo = resp.Header.Get("Location")
	}
	for _, c := range resp.Cookies() {
		rec.SetCookies = append(rec.SetCookies, CookieRecord{
			Name:    c.Name,
			Value:   c.Value,
			Host:    rec.Host,
			Session: c.MaxAge == 0 && c.Expires.IsZero(),
		})
	}
	if resp.TLS != nil && len(resp.TLS.PeerCertificates) > 0 {
		cert := resp.TLS.PeerCertificates[0]
		if len(cert.Subject.Organization) > 0 {
			org := cert.Subject.Organization[0]
			rec.CertOrg = org
			s.mu.Lock()
			s.certOrgs[rec.Host] = org
			s.mu.Unlock()
		}
	}
	att := &attempt{redirectTo: rec.RedirectTo}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, aerr := strconv.Atoi(ra); aerr == nil && secs >= 0 {
			att.retryAfter = time.Duration(secs) * time.Second
		} else if t, perr := http.ParseTime(ra); perr == nil {
			att.retryAfter = time.Until(t)
		}
	}
	if att.redirectTo != "" {
		// Best-effort drain so the pooled connection is reusable; a read
		// error here only costs connection reuse, never the redirect hop.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		return rec, att, nil
	}
	body, rerr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	resp.Body.Close()
	if rerr != nil {
		if strings.Contains(rerr.Error(), "unexpected EOF") {
			rerr = fmt.Errorf("%s: %w", rec.Host, resilience.ErrTruncated)
		}
		rec.Err = rerr.Error()
		return rec, nil, rerr
	}
	att.body = body
	rec.Bytes = len(body)
	return rec, att, nil
}

// FetchPage retrieves a site's landing page (or an arbitrary path on it),
// probing HTTPS first and downgrading to HTTP on handshake failure, as the
// paper's crawler does. It returns the result and whether the site
// ultimately supported HTTPS.
//
// A canceled or expired context says nothing about the site's HTTPS
// support, so no plain-HTTP probe is made (and no downgrade counted)
// when the HTTPS failure was caller-induced.
func (s *Session) FetchPage(ctx context.Context, host, path string) (*Result, bool, error) {
	if path == "" {
		path = "/"
	}
	res, err := s.Fetch(ctx, "https://"+host+path, host, InitDocument, "")
	if err == nil {
		return res, true, nil
	}
	// Only the caller's context matters here: a per-request Client.Timeout
	// also unwraps to DeadlineExceeded but says nothing about the caller.
	if ctx.Err() != nil {
		return nil, false, fmt.Errorf("crawler: %s unreachable: %w", host, err)
	}
	res, err2 := s.Fetch(ctx, "http://"+host+path, host, InitDocument, "")
	if err2 == nil {
		s.met.downgrades.Inc()
		return res, false, nil
	}
	// Wrap the more informative of the two causes: a breaker rejection
	// says less than the failure that opened the breaker.
	cause, other := err2, fmt.Sprintf("https: %v", err)
	if errors.Is(err2, resilience.ErrBreakerOpen) && !errors.Is(err, resilience.ErrBreakerOpen) {
		cause, other = err, fmt.Sprintf("http: %v", err2)
	}
	return nil, false, fmt.Errorf("crawler: %s unreachable (%s): %w", host, other, cause)
}
