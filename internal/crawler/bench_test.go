package crawler

import (
	"context"
	"testing"
	"time"

	"pornweb/internal/obs"
	"pornweb/internal/webgen"
	"pornweb/internal/webserver"
)

// benchSession builds a session against a loopback ecosystem, wired to
// reg (nil = uninstrumented) and returns it with a responsive porn host.
func benchSession(b *testing.B, reg *obs.Registry) (*Session, string) {
	b.Helper()
	eco := webgen.Generate(webgen.Params{Seed: 7, Scale: 0.02})
	srv, err := webserver.Start(eco)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	sess, err := NewSession(Config{
		DialContext: srv.DialContext,
		RootCAs:     srv.CertPool(),
		Country:     "ES",
		Timeout:     5 * time.Second,
		Metrics:     reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	var host string
	for _, s := range eco.PornSites {
		if !s.Flaky && !s.Unresponsive {
			host = s.Host
			break
		}
	}
	if host == "" {
		b.Fatal("no responsive site in benchmark ecosystem")
	}
	return sess, host
}

// benchFetch measures the full crawler request path end to end over
// loopback: dial, request, response read, redirect handling, logging.
func benchFetch(b *testing.B, reg *obs.Registry) {
	sess, host := benchSession(b, reg)
	url := "http://" + host + "/"
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Fetch(ctx, url, host, InitDocument, ""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFetchInstrumented(b *testing.B)   { benchFetch(b, obs.NewRegistry()) }
func BenchmarkFetchUninstrumented(b *testing.B) { benchFetch(b, nil) }

// benchRecordPath isolates the per-request metrics work the session adds
// on top of logging: one histogram observation, a status-class counter
// and a cookie counter — the exact calls doOne/record make per request.
// With a nil registry every instrument is a nil pointer and each call is
// a single nil check, so the disabled variant bounds the overhead an
// uninstrumented crawl pays.
func benchRecordPath(b *testing.B, reg *obs.Registry) {
	met := newSessionMetrics(reg, "ES")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		met.latency.Observe(0.012)
		met.byClass[statusClassIdx(200)].Inc()
		met.cookies.Add(2)
	}
}

func BenchmarkRecordPathInstrumented(b *testing.B) { benchRecordPath(b, obs.NewRegistry()) }
func BenchmarkRecordPathDisabled(b *testing.B)     { benchRecordPath(b, nil) }
