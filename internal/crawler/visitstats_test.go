package crawler

import (
	"context"
	"testing"
	"time"

	"pornweb/internal/obs"
	"pornweb/internal/webgen"
	"pornweb/internal/webserver"
)

// TestVisitStatsAggregation pins the per-site stats the flight recorder
// reads: after a page fetch, the visited site's aggregate must reflect
// the log — request count, byte volume, received cookies.
func TestVisitStatsAggregation(t *testing.T) {
	sess, eco := testSession(t, "ES", "crawl")
	site := alive(eco)
	if site == nil {
		t.Fatal("no alive site")
	}
	if _, _, err := sess.FetchPage(context.Background(), site.Host, "/"); err != nil {
		t.Fatal(err)
	}
	st := sess.VisitStats(site.Host)
	log := sess.Log()
	var wantReq, wantCookies int
	var wantBytes int64
	for _, r := range log {
		if r.SiteHost != site.Host {
			continue
		}
		wantReq++
		wantCookies += len(r.SetCookies)
		wantBytes += int64(r.Bytes)
	}
	if st.Requests != wantReq || st.Requests == 0 {
		t.Errorf("Requests = %d, want %d (nonzero)", st.Requests, wantReq)
	}
	if st.Cookies != wantCookies || st.Cookies == 0 {
		t.Errorf("Cookies = %d, want %d (landing page sets cookies)", st.Cookies, wantCookies)
	}
	if st.Bytes != wantBytes || st.Bytes == 0 {
		t.Errorf("Bytes = %d, want %d (nonzero)", st.Bytes, wantBytes)
	}
	// Only the landing host was contacted, so nothing is third-party yet.
	if st.ThirdParty != 0 {
		t.Errorf("ThirdParty = %d after a landing-page-only fetch", st.ThirdParty)
	}
	// An unvisited site has the zero value.
	if got := sess.VisitStats("never-visited.example"); got != (VisitStats{}) {
		t.Errorf("unvisited site stats = %+v, want zero", got)
	}
}

// TestRecordBytes pins that every successful response logs its body size.
func TestRecordBytes(t *testing.T) {
	sess, eco := testSession(t, "ES", "crawl")
	site := alive(eco)
	if site == nil {
		t.Fatal("no alive site")
	}
	if _, _, err := sess.FetchPage(context.Background(), site.Host, "/"); err != nil {
		t.Fatal(err)
	}
	for _, r := range sess.Log() {
		if r.Status == 200 && r.Bytes == 0 {
			t.Errorf("200 response for %s logged zero bytes", r.URL)
		}
	}
}

// TestSessionFlightAccessor pins the wiring: the session exposes the
// configured recorder, and a session without one returns a nil (disabled)
// recorder that is safe to use.
func TestSessionFlightAccessor(t *testing.T) {
	sess, _ := testSession(t, "ES", "crawl")
	if sess.Flight() != nil {
		t.Error("session without a flight recorder returned a non-nil one")
	}
	if sess.Flight().Enabled() {
		t.Error("nil flight recorder reports enabled")
	}

	eco := webgen.Generate(webgen.Params{Seed: 7, Scale: 0.02})
	srv, err := webserver.Start(eco)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	fr := obs.NewFlightRecorder(64, 1, nil)
	wired, err := NewSession(Config{
		DialContext: srv.DialContext,
		RootCAs:     srv.CertPool(),
		Country:     "ES",
		Timeout:     5 * time.Second,
		Flight:      fr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wired.Flight() != fr {
		t.Error("session did not expose the configured flight recorder")
	}
}
