package crawler

import (
	"reflect"
	"strings"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	records := []Record{
		{Seq: 1, URL: "https://a.com/", Host: "a.com", Scheme: "https", SiteHost: "a.com",
			Status: 200, Initiator: InitDocument, ContentType: "text/html",
			SetCookies: []CookieRecord{{Name: "x", Value: "yyyyyy", Host: "a.com"}}},
		{Seq: 2, URL: "http://t.example/px.gif", Host: "t.example", Scheme: "http",
			SiteHost: "a.com", Status: 302, Initiator: InitImage,
			RedirectTo: "http://p.example/sync?puid=abc", Referer: "https://a.com/"},
		{Seq: 3, URL: "http://dead.example/", Host: "dead.example", SiteHost: "a.com",
			Err: "connection refused"},
	}
	var b strings.Builder
	if err := ExportJSONL(&b, records); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "\n"); got != 3 {
		t.Fatalf("lines = %d, want 3", got)
	}
	back, err := ImportJSONL(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(records, back) {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", records, back)
	}
}

func TestImportJSONLBadLine(t *testing.T) {
	if _, err := ImportJSONL(strings.NewReader("{\"Seq\":1}\nnot-json\n")); err == nil {
		t.Fatal("expected error for malformed line")
	}
}

func TestImportJSONLEmptyLines(t *testing.T) {
	recs, err := ImportJSONL(strings.NewReader("\n\n{\"Seq\":7}\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 7 {
		t.Errorf("records = %+v", recs)
	}
}
