package crawler

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"pornweb/internal/obs"
	"pornweb/internal/resilience"
	"pornweb/internal/webgen"
	"pornweb/internal/webserver"
)

// faultySession serves a chaos-enabled ecosystem and returns a session
// configured with the given retry policy.
func faultySession(t *testing.T, prof webgen.FaultProfile, pol resilience.Policy, reg *obs.Registry) (*Session, *webgen.Ecosystem) {
	return faultySessionScale(t, 0.02, prof, pol, reg)
}

func faultySessionScale(t *testing.T, scale float64, prof webgen.FaultProfile, pol resilience.Policy, reg *obs.Registry) (*Session, *webgen.Ecosystem) {
	t.Helper()
	eco := webgen.Generate(webgen.Params{Seed: 7, Scale: scale, Faults: prof})
	srv, err := webserver.Start(eco)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	sess, err := NewSession(Config{
		DialContext: srv.DialContext,
		RootCAs:     srv.CertPool(),
		Country:     "ES",
		Phase:       "crawl",
		Timeout:     5 * time.Second,
		Retry:       pol,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sess, eco
}

// faultHost finds a healthy site carrying the given fault kind.
func faultHost(t *testing.T, eco *webgen.Ecosystem, kind webgen.FaultKind) string {
	t.Helper()
	for _, s := range eco.PornSites {
		if s.Flaky || s.Unresponsive || len(s.BlockedIn) > 0 {
			continue
		}
		if eco.FaultKindFor(s.Host) == kind {
			return s.Host
		}
	}
	t.Skipf("no site with fault %s at this scale", kind)
	return ""
}

func fastPolicy(attempts int) resilience.Policy {
	return resilience.Policy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Seed:        1,
	}
}

func TestRetryRecoversServerErrorBurst(t *testing.T) {
	reg := obs.NewRegistry()
	sess, eco := faultySession(t, webgen.DefaultFaultProfile(), fastPolicy(4), reg)
	host := faultHost(t, eco, webgen.FaultServerError)
	res, https, err := sess.FetchPage(context.Background(), host, "/")
	if err != nil {
		t.Fatalf("retrying fetch failed: %v", err)
	}
	if res.Status != 200 {
		t.Fatalf("status = %d, want 200 after burst", res.Status)
	}
	_ = https
	// Every attempt (including the failed ones) must be in the log with
	// its attempt number.
	var tries []int
	for _, r := range sess.Log() {
		if r.Host == host {
			tries = append(tries, r.Attempt)
		}
	}
	if len(tries) < 2 {
		t.Fatalf("expected the failed attempts in the log, got %v", tries)
	}
	var sb strings.Builder
	reg.WriteExposition(&sb)
	if !strings.Contains(sb.String(), `crawler_retries_total{country="ES"}`) {
		t.Error("retries not visible in exposition")
	}
}

func TestRetryRecoversTruncatedBody(t *testing.T) {
	sess, eco := faultySession(t, webgen.DefaultFaultProfile(), fastPolicy(4), nil)
	host := faultHost(t, eco, webgen.FaultTruncate)
	res, _, err := sess.FetchPage(context.Background(), host, "/")
	if err != nil {
		t.Fatalf("retrying fetch failed: %v", err)
	}
	if res.Status != 200 || res.Body == "" {
		t.Fatalf("result = status %d, %d body bytes", res.Status, len(res.Body))
	}
}

func TestSingleShotLosesWhatRetriesWin(t *testing.T) {
	sess, eco := faultySession(t, webgen.DefaultFaultProfile(), resilience.Policy{}, nil)
	host := faultHost(t, eco, webgen.FaultTruncate)
	_, _, err := sess.FetchPage(context.Background(), host, "/")
	if err == nil {
		t.Fatal("single-shot session should lose a truncating host (burst 2 covers both schemes' probes)")
	}
	if !errors.Is(err, resilience.ErrTruncated) {
		t.Fatalf("error = %v, want wrapped ErrTruncated", err)
	}
	counts := sess.FailureCounts()
	if counts[string(resilience.ClassTruncated)] == 0 {
		t.Errorf("failure counts = %v, want truncated > 0", counts)
	}
}

func TestRedirectLoopFailsFast(t *testing.T) {
	sess, eco := faultySession(t, webgen.DefaultFaultProfile(), fastPolicy(4), nil)
	host := faultHost(t, eco, webgen.FaultRedirectLoop)
	_, _, err := sess.FetchPage(context.Background(), host, "/")
	if err == nil {
		t.Fatal("redirect-loop host should fail")
	}
	if !errors.Is(err, resilience.ErrRedirectLoop) {
		t.Fatalf("error = %v, want wrapped ErrRedirectLoop", err)
	}
	// Fail-fast: the 2-cycle must be caught well before MaxRedirects
	// (10) hops are burned per scheme.
	var hops int
	for _, r := range sess.Log() {
		if r.Host == host {
			hops++
		}
	}
	if hops > 8 {
		t.Errorf("burned %d hops on a 2-cycle; cycle detection should fail fast", hops)
	}
	if c := sess.FailureCounts()[string(resilience.ClassRedirectLoop)]; c == 0 {
		t.Error("redirect-loop failure not counted")
	}
}

func TestNoDowngradeOnCanceledContext(t *testing.T) {
	sess, eco := testSession(t, "ES", "crawl")
	var secure *webgen.Site
	for _, s := range eco.PornSites {
		if s.HTTPS && !s.Flaky && !s.Unresponsive {
			secure = s
			break
		}
	}
	if secure == nil {
		t.Skip("no HTTPS site")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := sess.FetchPage(ctx, secure.Host, "/")
	if err == nil {
		t.Fatal("canceled fetch should fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	// The HTTPS failure was caller-induced: no plain-HTTP probe, no
	// downgrade, and no HTTP record in the log.
	for _, r := range sess.Log() {
		if r.Scheme == "http" {
			t.Fatalf("canceled HTTPS fetch probed plain HTTP: %+v", r)
		}
	}
}

func TestBreakerOpensOnDeadHost(t *testing.T) {
	reg := obs.NewRegistry()
	pol := fastPolicy(2)
	pol.BreakerThreshold = 3
	pol.BreakerCooldown = time.Hour // stays open for the whole test
	sess, eco := faultySessionScale(t, 0.05, webgen.FaultProfile{}, pol, reg)
	var dead *webgen.Site
	for _, s := range eco.FalseCandidates {
		if s.Unresponsive {
			dead = s
			break
		}
	}
	if dead == nil {
		t.Skip("no unresponsive site at this scale")
	}
	ctx := context.Background()
	// Each FetchPage makes up to 2 attempts per scheme; two pages are
	// enough to cross the threshold of 3 consecutive failures.
	for i := 0; i < 3; i++ {
		if _, _, err := sess.FetchPage(ctx, dead.Host, "/"); err == nil {
			t.Fatal("dead host fetch succeeded")
		}
	}
	if st := sess.res.StateOf(dead.Host); st != resilience.Open {
		t.Fatalf("breaker state = %v, want open", st)
	}
	// The next fetch is rejected without touching the wire.
	before := len(sess.Log())
	_, _, err := sess.FetchPage(ctx, dead.Host, "/")
	if err == nil || !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("error = %v, want wrapped ErrBreakerOpen", err)
	}
	after := sess.Log()[before:]
	for _, r := range after {
		if r.Err == "" || !strings.Contains(r.Err, "circuit breaker open") {
			t.Fatalf("breaker-open fetch still hit the wire: %+v", r)
		}
	}
	if c := sess.FailureCounts()[string(resilience.ClassBreakerOpen)]; c == 0 {
		t.Error("breaker-open failure not counted")
	}
	var sb strings.Builder
	reg.WriteExposition(&sb)
	exp := sb.String()
	if !strings.Contains(exp, `crawler_breaker_transitions_total{country="ES",state="open"}`) {
		t.Error("breaker transition not visible in exposition")
	}
	if !strings.Contains(exp, `crawler_breakers_open{country="ES"} 1`) {
		t.Error("open-breaker gauge not visible in exposition")
	}
}

func TestGeo451ClassifiedNotRefused(t *testing.T) {
	prof := webgen.DefaultFaultProfile()
	prof.Geo451 = true
	sess, eco := faultySessionScale(t, 0.05, prof, fastPolicy(2), nil)
	var blocked *webgen.Site
	var country string
	for _, s := range eco.PornSites {
		if len(s.BlockedIn) > 0 && !s.Unresponsive && !s.Flaky && eco.FaultKindFor(s.Host) == webgen.FaultNone {
			blocked = s
			for c := range s.BlockedIn {
				country = c
			}
			break
		}
	}
	if blocked == nil {
		t.Skip("no geo-blocked site at this scale")
	}
	// Re-dial from the blocked vantage.
	sess2, err := NewSession(Config{
		DialContext: sess.cfg.DialContext,
		RootCAs:     sess.cfg.RootCAs,
		Country:     country,
		Phase:       "crawl",
		Timeout:     5 * time.Second,
		Retry:       fastPolicy(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _, ferr := sess2.FetchPage(context.Background(), blocked.Host, "/")
	if ferr != nil {
		t.Fatalf("451 should be a response, not a transport error: %v", ferr)
	}
	if res.Status != 451 {
		t.Fatalf("status = %d, want 451", res.Status)
	}
	if c := sess2.FailureCounts()[string(resilience.ClassGeoBlocked)]; c == 0 {
		t.Error("geo-blocked failure not counted")
	}
}
