package crawler

import (
	"context"
	"strings"
	"testing"
	"time"

	"pornweb/internal/webgen"
	"pornweb/internal/webserver"
)

func testSession(t *testing.T, country, phase string) (*Session, *webgen.Ecosystem) {
	t.Helper()
	eco := webgen.Generate(webgen.Params{Seed: 7, Scale: 0.02})
	srv, err := webserver.Start(eco)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	sess, err := NewSession(Config{
		DialContext: srv.DialContext,
		RootCAs:     srv.CertPool(),
		Country:     country,
		Phase:       phase,
		Timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sess, eco
}

func alive(eco *webgen.Ecosystem) *webgen.Site {
	for _, s := range eco.PornSites {
		if !s.Flaky && !s.Unresponsive && len(s.Services) > 2 && s.FirstPartyCookies > 0 {
			return s
		}
	}
	return nil
}

func TestFetchPageDowngrade(t *testing.T) {
	sess, eco := testSession(t, "ES", "crawl")
	var plain *webgen.Site
	for _, s := range eco.PornSites {
		if !s.HTTPS && !s.Flaky && !s.Unresponsive {
			plain = s
			break
		}
	}
	if plain == nil {
		t.Skip("no plain-HTTP site")
	}
	res, https, err := sess.FetchPage(context.Background(), plain.Host, "/")
	if err != nil {
		t.Fatal(err)
	}
	if https {
		t.Error("HTTP-only site reported as HTTPS")
	}
	if res.Status != 200 || !res.Secure == false {
		t.Errorf("result = %+v", res)
	}
}

func TestFetchPageHTTPS(t *testing.T) {
	sess, eco := testSession(t, "ES", "crawl")
	var secure *webgen.Site
	for _, s := range eco.PornSites {
		if s.HTTPS && !s.Flaky && !s.Unresponsive {
			secure = s
			break
		}
	}
	if secure == nil {
		t.Skip("no HTTPS site")
	}
	res, https, err := sess.FetchPage(context.Background(), secure.Host, "/")
	if err != nil {
		t.Fatal(err)
	}
	if !https || !res.Secure {
		t.Error("HTTPS site not fetched over TLS")
	}
}

func TestLogRecordsRequests(t *testing.T) {
	sess, eco := testSession(t, "ES", "crawl")
	site := alive(eco)
	if site == nil {
		t.Fatal("no alive site")
	}
	_, _, err := sess.FetchPage(context.Background(), site.Host, "/")
	if err != nil {
		t.Fatal(err)
	}
	log := sess.Log()
	if len(log) == 0 {
		t.Fatal("empty log")
	}
	last := log[len(log)-1]
	if last.Host != site.Host || last.SiteHost != site.Host {
		t.Errorf("record = %+v", last)
	}
	if last.Initiator != InitDocument {
		t.Errorf("initiator = %q", last.Initiator)
	}
	if len(last.SetCookies) == 0 {
		t.Error("landing page should set cookies")
	}
	// Records have monotonically increasing sequence numbers.
	for i := 1; i < len(log); i++ {
		if log[i].Seq <= log[i-1].Seq {
			t.Fatal("sequence numbers not increasing")
		}
	}
}

func TestRedirectChainLogged(t *testing.T) {
	sess, _ := testSession(t, "ES", "crawl")
	// exosrv.com pixels 302 into a sync chain for a hash-selected slice of
	// site contexts; a site-less pixel always syncs.
	res, err := sess.Fetch(context.Background(), "http://exosrv.com/px.gif", "a.com", InitImage, "http://a.com/")
	if err != nil {
		t.Fatal(err)
	}
	if res.Hops == 0 {
		t.Fatal("expected at least one redirect hop")
	}
	log := sess.Log()
	var redirects, syncs int
	for _, r := range log {
		if r.RedirectTo != "" {
			redirects++
		}
		if strings.Contains(r.URL, "/sync?") {
			syncs++
			if r.Initiator != InitRedirect {
				t.Errorf("sync hop initiator = %q, want redirect", r.Initiator)
			}
			if r.Referer == "" {
				t.Error("sync hop should carry the referring hop URL")
			}
		}
	}
	if redirects == 0 || syncs == 0 {
		t.Errorf("redirects=%d syncs=%d", redirects, syncs)
	}
}

func TestCookiePersistenceAcrossFetches(t *testing.T) {
	sess, _ := testSession(t, "ES", "crawl")
	ctx := context.Background()
	if _, err := sess.Fetch(ctx, "http://google-analytics.com/px.gif?site=a.com", "a.com", InitImage, ""); err != nil {
		t.Fatal(err)
	}
	first := sess.Log()
	var uid string
	for _, r := range first {
		for _, c := range r.SetCookies {
			if strings.HasPrefix(c.Name, "uid_") {
				uid = c.Value
			}
		}
	}
	if uid == "" {
		t.Fatal("GA set no uid cookie")
	}
	// Second fetch: the jar sends the cookie back; the tracker refreshes
	// it with the SAME value (stable identifier), proving jar persistence.
	if _, err := sess.Fetch(ctx, "http://google-analytics.com/px.gif?site=b.com", "b.com", InitImage, ""); err != nil {
		t.Fatal(err)
	}
	log := sess.Log()
	for _, r := range log[len(first):] {
		for _, c := range r.SetCookies {
			if strings.HasPrefix(c.Name, "uid_") && c.Value != uid {
				t.Errorf("uid changed across visits: %q -> %q (jar not persisting)", uid, c.Value)
			}
		}
	}
}

func TestCertOrgCaptured(t *testing.T) {
	sess, _ := testSession(t, "ES", "crawl")
	_, err := sess.Fetch(context.Background(), "https://exosrv.com/px.gif?site=a.com&nosync=1", "a.com", InitImage, "")
	if err != nil {
		t.Fatal(err)
	}
	orgs := sess.CertOrgs()
	if orgs["exosrv.com"] != "ExoClick S.L." {
		t.Errorf("cert org = %q", orgs["exosrv.com"])
	}
}

func TestUnreachableHostError(t *testing.T) {
	sess, _ := testSession(t, "ES", "crawl")
	_, _, err := sess.FetchPage(context.Background(), "definitely-not-a-host.example", "/")
	if err == nil {
		t.Fatal("expected error for unknown host")
	}
	log := sess.Log()
	if len(log) == 0 || log[len(log)-1].Err == "" {
		t.Error("failed request must be logged with an error")
	}
}

func TestPhaseHeaderPropagated(t *testing.T) {
	eco := webgen.Generate(webgen.Params{Seed: 7, Scale: 0.02})
	srv, err := webserver.Start(eco)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	var flaky *webgen.Site
	for _, s := range eco.PornSites {
		if s.Flaky && !s.Unresponsive {
			flaky = s
			break
		}
	}
	if flaky == nil {
		t.Skip("no flaky site")
	}
	mk := func(phase string) *Session {
		s, err := NewSession(Config{DialContext: srv.DialContext, RootCAs: srv.CertPool(), Phase: phase, Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if _, _, err := mk("sanitize").FetchPage(context.Background(), flaky.Host, "/"); err != nil {
		t.Errorf("flaky site should answer sanitize phase: %v", err)
	}
	if _, _, err := mk("crawl").FetchPage(context.Background(), flaky.Host, "/"); err == nil {
		t.Error("flaky site should refuse crawl phase")
	}
}

func TestCountryPropagated(t *testing.T) {
	eco := webgen.Generate(webgen.Params{Seed: 7, Scale: 0.02})
	srv, err := webserver.Start(eco)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	var svcRU *webgen.Service
	for _, svc := range eco.Services {
		if svc.CountryOnly == "RU" {
			svcRU = svc
			break
		}
	}
	if svcRU == nil {
		t.Skip("no RU-only service")
	}
	mk := func(country string) *Session {
		s, err := NewSession(Config{DialContext: srv.DialContext, RootCAs: srv.CertPool(), Country: country, Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if _, err := mk("RU").Fetch(context.Background(), "http://"+svcRU.Host+"/px.gif?nosync=1", "x.com", InitImage, ""); err != nil {
		t.Errorf("RU-only service should answer from RU: %v", err)
	}
	if _, err := mk("US").Fetch(context.Background(), "http://"+svcRU.Host+"/px.gif?nosync=1", "x.com", InitImage, ""); err == nil {
		t.Error("RU-only service should refuse US")
	}
}
