package crawler

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSONL export/import of crawl logs: one Record per line. The on-disk form
// lets a crawl be captured once and re-analyzed offline (or diffed across
// runs), the workflow OpenWPM users get from its SQLite output.

// ExportJSONL writes every record as one JSON object per line.
func ExportJSONL(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range records {
		if err := enc.Encode(&records[i]); err != nil {
			return fmt.Errorf("crawler: export record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ImportJSONL reads records written by ExportJSONL.
func ImportJSONL(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("crawler: import line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("crawler: import: %w", err)
	}
	return out, nil
}
