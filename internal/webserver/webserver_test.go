package webserver

import (
	"crypto/tls"
	"io"
	"net/http"
	"strings"
	"testing"

	"pornweb/internal/webgen"
)

func startTest(t *testing.T) (*Server, *webgen.Ecosystem) {
	t.Helper()
	eco := webgen.Generate(webgen.Params{Seed: 7, Scale: 0.02})
	srv, err := Start(eco)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, eco
}

func client(srv *Server) *http.Client {
	tr := &http.Transport{
		DialContext:     srv.DialContext,
		TLSClientConfig: &tls.Config{RootCAs: srv.CertPool()},
	}
	return &http.Client{Transport: tr}
}

func pickSite(t *testing.T, eco *webgen.Ecosystem, pred func(*webgen.Site) bool) *webgen.Site {
	t.Helper()
	for _, s := range eco.PornSites {
		if pred(s) {
			return s
		}
	}
	t.Skip("no site matching predicate at this scale")
	return nil
}

func TestHTTPLanding(t *testing.T) {
	srv, eco := startTest(t)
	site := pickSite(t, eco, func(s *webgen.Site) bool { return !s.Flaky && !s.Unresponsive })
	c := client(srv)
	resp, err := c.Get("http://" + site.Host + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "<html") {
		t.Error("body not HTML")
	}
}

func TestHTTPSWithCertOrg(t *testing.T) {
	srv, eco := startTest(t)
	site := pickSite(t, eco, func(s *webgen.Site) bool {
		return s.HTTPS && !s.Flaky && !s.Unresponsive && s.Owner != nil && s.Owner.CertOrg != ""
	})
	c := client(srv)
	resp, err := c.Get("https://" + site.Host + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	cert := resp.TLS.PeerCertificates[0]
	if len(cert.Subject.Organization) == 0 || cert.Subject.Organization[0] != site.Owner.CertOrg {
		t.Errorf("cert org = %v, want %q", cert.Subject.Organization, site.Owner.CertOrg)
	}
	if cert.Subject.CommonName != site.Host {
		t.Errorf("cert CN = %q", cert.Subject.CommonName)
	}
}

func TestHTTPSRefusedForPlainHosts(t *testing.T) {
	srv, eco := startTest(t)
	site := pickSite(t, eco, func(s *webgen.Site) bool { return !s.HTTPS && !s.Flaky && !s.Unresponsive })
	c := client(srv)
	_, err := c.Get("https://" + site.Host + "/")
	if err == nil {
		t.Fatal("TLS handshake should fail for HTTP-only host")
	}
}

func TestSetCookieRoundTrip(t *testing.T) {
	srv, eco := startTest(t)
	site := pickSite(t, eco, func(s *webgen.Site) bool {
		return !s.Flaky && !s.Unresponsive && s.FirstPartyCookies > 0
	})
	c := client(srv)
	resp, err := c.Get("http://" + site.Host + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(resp.Cookies()) == 0 {
		t.Error("no Set-Cookie headers on landing page")
	}
	persistent := false
	for _, ck := range resp.Cookies() {
		if ck.MaxAge > 0 {
			persistent = true
		}
	}
	if !persistent {
		t.Error("expected at least one persistent cookie")
	}
}

func TestRefusedHostDropsConnection(t *testing.T) {
	srv, eco := startTest(t)
	var dead *webgen.Site
	for _, s := range eco.FalseCandidates {
		if s.Unresponsive {
			dead = s
			break
		}
	}
	if dead == nil {
		t.Skip("no dead host")
	}
	c := client(srv)
	resp, err := c.Get("http://" + dead.Host + "/")
	if err == nil {
		// Fallback path: sentinel header.
		defer resp.Body.Close()
		if resp.Header.Get("X-Refused") != "1" {
			t.Errorf("dead host served status %d without refusal sentinel", resp.StatusCode)
		}
	}
}

func TestVantageHeaderChangesBehaviour(t *testing.T) {
	srv, eco := startTest(t)
	var blocked *webgen.Site
	for _, s := range eco.PornSites {
		if s.BlockedIn["RU"] && !s.Flaky && !s.Unresponsive {
			blocked = s
			break
		}
	}
	if blocked == nil {
		t.Skip("no RU-blocked site at this scale")
	}
	c := client(srv)
	req, _ := http.NewRequest("GET", "http://"+blocked.Host+"/", nil)
	req.Header.Set(HeaderCountry, "RU")
	resp, err := c.Do(req)
	if err == nil {
		defer resp.Body.Close()
		if resp.Header.Get("X-Refused") != "1" {
			t.Errorf("RU-blocked site answered from RU with %d", resp.StatusCode)
		}
	}
	req2, _ := http.NewRequest("GET", "http://"+blocked.Host+"/", nil)
	req2.Header.Set(HeaderCountry, "ES")
	resp2, err := c.Do(req2)
	if err != nil {
		t.Fatalf("site should answer from ES: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Errorf("ES status = %d", resp2.StatusCode)
	}
}

func TestPhaseHeader(t *testing.T) {
	srv, eco := startTest(t)
	var flaky *webgen.Site
	for _, s := range eco.PornSites {
		if s.Flaky && !s.Unresponsive {
			flaky = s
			break
		}
	}
	if flaky == nil {
		t.Skip("no flaky site")
	}
	c := client(srv)
	req, _ := http.NewRequest("GET", "http://"+flaky.Host+"/", nil)
	req.Header.Set(HeaderPhase, "sanitize")
	resp, err := c.Do(req)
	if err != nil {
		t.Fatalf("flaky site must answer during sanitize: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("sanitize status = %d", resp.StatusCode)
	}
}

func TestSyncRedirectOverHTTP(t *testing.T) {
	srv, _ := startTest(t)
	c := client(srv)
	c.CheckRedirect = func(req *http.Request, via []*http.Request) error {
		return http.ErrUseLastResponse // do not follow; inspect the 302
	}
	resp, err := c.Get("http://exosrv.com/px.gif")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 302 {
		t.Fatalf("pixel status = %d, want 302", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if !strings.Contains(loc, "/sync?") || !strings.Contains(loc, "puid=") {
		t.Errorf("Location = %q", loc)
	}
}

func TestServiceScriptServed(t *testing.T) {
	srv, _ := startTest(t)
	c := client(srv)
	resp, err := c.Get("http://google-analytics.com/js/tag0.js?site=x.com")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "navigator.userAgent") {
		t.Errorf("analytics script unexpected: %s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "javascript") {
		t.Errorf("content type = %q", ct)
	}
}

func TestWildcardSubdomainCert(t *testing.T) {
	srv, eco := startTest(t)
	site := pickSite(t, eco, func(s *webgen.Site) bool {
		if !s.HTTPS || s.Flaky || s.Unresponsive {
			return false
		}
		for _, fp := range s.ExtraFirstParty {
			if strings.HasSuffix(fp, "."+s.Host) {
				return true
			}
		}
		return false
	})
	var sub string
	for _, fp := range site.ExtraFirstParty {
		if strings.HasSuffix(fp, "."+site.Host) {
			sub = fp
		}
	}
	c := client(srv)
	resp, err := c.Get("https://" + sub + "/assets/site.css")
	if err != nil {
		t.Fatalf("subdomain TLS fetch failed: %v", err)
	}
	resp.Body.Close()
}
