// Package webserver serves the generated ecosystem over real HTTP and HTTPS
// on loopback. A single listener pair hosts every site and service through
// virtual hosting (Host-header demultiplexing); the TLS listener issues
// per-host certificates on demand from an in-memory CA via SNI, but only
// for hosts that support HTTPS — requesting a TLS session for an HTTP-only
// host fails the handshake exactly as a real server without a certificate
// would, which is what drives the crawler's HTTPS-then-downgrade probing
// (Section 5.2 of the paper).
//
// The crawler reaches the server through DialContext, which resolves every
// hostname to the loopback listeners — the offline stand-in for DNS. The
// vantage country and the crawl phase travel in the X-Vantage-Country and
// X-Crawl-Phase request headers, injected by the crawler's transport (the
// offline stand-in for VPN egress geography).
package webserver

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"io"
	"log"
	"math/big"
	"net"
	"net/http"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"pornweb/internal/obs"
	"pornweb/internal/webgen"
)

// Header names used to carry crawl metadata.
const (
	HeaderCountry = "X-Vantage-Country"
	HeaderPhase   = "X-Crawl-Phase"
)

// serveLabels attributes request-handling CPU to the synthetic web
// server rather than leaving it unlabeled in profiles.
var serveLabels = pprof.Labels("stage", "serve")

// Server hosts an ecosystem.
type Server struct {
	Eco *webgen.Ecosystem

	httpLn   net.Listener
	httpsLn  net.Listener
	httpSrv  *http.Server
	httpsSrv *http.Server

	caCert *x509.Certificate
	caKey  *ecdsa.PrivateKey
	caPool *x509.CertPool

	reg *obs.Registry
	log *obs.Logger
	met serverMetrics

	mu sync.Mutex
	// guarded by mu
	certs map[string]*tls.Certificate
	// vhosts holds per-service-host request counters.
	// guarded by mu
	vhosts map[string]*obs.Counter

	closed chan struct{}
}

// serverMetrics holds the server's pre-resolved instruments; all no-op
// without a registry.
type serverMetrics struct {
	reqSite     *obs.Counter
	reqService  *obs.Counter
	reqOther    *obs.Counter
	reqSecure   *obs.Counter
	tlsServed   *obs.Counter
	tlsRefused  *obs.Counter
	certsMinted *obs.Counter
	refusals    *obs.Counter
	errLogLines *obs.Counter
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	if reg == nil {
		return serverMetrics{}
	}
	reg.Describe("webserver_requests_total", "requests served, by virtual-host kind")
	reg.Describe("webserver_requests_secure_total", "requests that arrived over TLS")
	reg.Describe("webserver_vhost_requests_total", "requests per third-party service virtual host")
	reg.Describe("webserver_tls_handshakes_total", "SNI certificate requests, by outcome")
	reg.Describe("webserver_certs_minted_total", "leaf certificates minted on demand")
	reg.Describe("webserver_refused_total", "connections dropped to simulate dead or refusing hosts")
	reg.Describe("webserver_error_log_lines_total", "lines net/http wrote to the server error log")
	reg.Describe("webserver_faults_injected_total", "chaos faults injected on the wire, by kind")
	reg.Describe("webserver_vhost_faults_total", "faults injected per third-party service virtual host")
	return serverMetrics{
		reqSite:     reg.Counter("webserver_requests_total", "kind", "site"),
		reqService:  reg.Counter("webserver_requests_total", "kind", "service"),
		reqOther:    reg.Counter("webserver_requests_total", "kind", "other"),
		reqSecure:   reg.Counter("webserver_requests_secure_total"),
		tlsServed:   reg.Counter("webserver_tls_handshakes_total", "result", "served"),
		tlsRefused:  reg.Counter("webserver_tls_handshakes_total", "result", "no_tls"),
		certsMinted: reg.Counter("webserver_certs_minted_total"),
		refusals:    reg.Counter("webserver_refused_total"),
		errLogLines: reg.Counter("webserver_error_log_lines_total"),
	}
}

// Option customizes a Server at Start.
type Option func(*Server)

// WithMetrics registers the server's instruments (request, vhost, TLS and
// cert-minting counters) in reg.
func WithMetrics(reg *obs.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// WithLogger routes server-side errors through l instead of dropping them.
// Expected noise — TLS handshake failures for HTTP-only hosts drive the
// crawler's HTTPS-downgrade probing — is logged at debug level but always
// counted when a registry is attached.
func WithLogger(l *obs.Logger) Option {
	return func(s *Server) { s.log = l }
}

// Start generates the CA, binds both listeners on loopback and begins
// serving. Callers must Close the server.
func Start(eco *webgen.Ecosystem, opts ...Option) (*Server, error) {
	s := &Server{
		Eco:    eco,
		certs:  map[string]*tls.Certificate{},
		vhosts: map[string]*obs.Counter{},
		closed: make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.met = newServerMetrics(s.reg)
	if err := s.initCA(); err != nil {
		return nil, fmt.Errorf("webserver: init CA: %w", err)
	}
	var err error
	s.httpLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("webserver: listen http: %w", err)
	}
	tcpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.httpLn.Close()
		return nil, fmt.Errorf("webserver: listen https: %w", err)
	}
	tlsConf := &tls.Config{GetCertificate: s.getCertificate}
	s.httpsLn = tls.NewListener(tcpLn, tlsConf)

	handler := http.HandlerFunc(s.handle)
	// Server-side error lines (mostly TLS handshake failures for HTTP-only
	// hosts, which are expected behaviour, not noise-worthy errors) are
	// counted and forwarded to the obs logger at debug level rather than
	// printed to stderr.
	errLog := log.New(s.log.WithComponent("webserver").StdWriter(obs.LevelDebug, s.met.errLogLines), "", 0)
	s.httpSrv = &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second, ErrorLog: errLog}
	s.httpsSrv = &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second, ErrorLog: errLog}
	// serveUnder labels the accept-loop goroutine; every per-connection
	// goroutine net/http spawns from it inherits the label set, so the
	// whole server side — TLS handshakes, request parsing, handlers,
	// response flushing — profiles under stage=serve, a named row in
	// studyprof's table distinct from the crawler-side stages.
	serveUnder := func(srv *http.Server, ln net.Listener) {
		pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(), serveLabels))
		srv.Serve(ln)
	}
	go serveUnder(s.httpSrv, s.httpLn)
	go serveUnder(s.httpsSrv, s.httpsLn)
	return s, nil
}

// Close stops both listeners.
func (s *Server) Close() {
	select {
	case <-s.closed:
		return
	default:
		close(s.closed)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	s.httpSrv.Shutdown(ctx)
	s.httpsSrv.Shutdown(ctx)
}

// HTTPAddr returns the plain listener address.
func (s *Server) HTTPAddr() string { return s.httpLn.Addr().String() }

// HTTPSAddr returns the TLS listener address.
func (s *Server) HTTPSAddr() string { return s.httpsLn.Addr().String() }

// CertPool returns a pool trusting the in-memory CA, for crawler TLS
// verification.
func (s *Server) CertPool() *x509.CertPool { return s.caPool }

// DialContext resolves any hostname to the loopback listeners: port 443 to
// the TLS listener, anything else to the plain one.
func (s *Server) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	_, port, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, err
	}
	target := s.HTTPAddr()
	if port == "443" {
		target = s.HTTPSAddr()
	}
	var d net.Dialer
	return d.DialContext(ctx, network, target)
}

func (s *Server) initCA() error {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "pornweb study CA", Organization: []string{"Measurement Substrate"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * 365 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return err
	}
	s.caCert, s.caKey = cert, key
	s.caPool = x509.NewCertPool()
	s.caPool.AddCert(cert)
	return nil
}

var errNoTLS = errors.New("webserver: host does not support TLS")

// getCertificate issues (and caches) a leaf certificate for the SNI host,
// carrying the organization the ecosystem planted for it. HTTP-only hosts
// get a handshake failure.
func (s *Server) getCertificate(hello *tls.ClientHelloInfo) (*tls.Certificate, error) {
	host := strings.ToLower(hello.ServerName)
	if host == "" || !s.Eco.HTTPSCapable(host) {
		s.met.tlsRefused.Inc()
		s.log.Event(obs.LevelDebug, "tls handshake refused", "host", host)
		return nil, errNoTLS
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.certs[host]; ok {
		s.met.tlsServed.Inc()
		return c, nil
	}
	c, err := s.issue(host)
	if err != nil {
		s.log.Event(obs.LevelError, "cert minting failed", "host", host, "err", err)
		return nil, err
	}
	s.met.certsMinted.Inc()
	s.met.tlsServed.Inc()
	s.certs[host] = c
	return c, nil
}

func (s *Server) issue(host string) (*tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	serial, err := rand.Int(rand.Reader, big.NewInt(1<<62))
	if err != nil {
		return nil, err
	}
	subject := pkix.Name{CommonName: host}
	if org := s.Eco.CertOrgFor(host); org != "" {
		subject.Organization = []string{org}
	} else {
		// Certificates that name only the domain (the paper skips these
		// when attributing organizations, footnote 7).
		subject.Organization = []string{host}
	}
	tmpl := &x509.Certificate{
		SerialNumber: serial,
		Subject:      subject,
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(90 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		DNSNames:     []string{host, "*." + host},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, s.caCert, &key.PublicKey, s.caKey)
	if err != nil {
		return nil, err
	}
	return &tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}, nil
}

// isServiceHost reports whether the host is a third-party service (visited
// repeatedly across the crawl and worth keeping alive).
func (s *Server) isServiceHost(host string) bool {
	_, ok := s.Eco.ServiceByHost[strings.ToLower(host)]
	return ok
}

// countRequest updates the per-vhost request telemetry. Per-host counters
// are kept only for service hosts — the bounded set of trackers contacted
// from thousands of sites — so label cardinality stays flat while the
// per-site long tail aggregates into one counter per kind.
func (s *Server) countRequest(host string, secure bool) {
	if s.reg == nil {
		return
	}
	if secure {
		s.met.reqSecure.Inc()
	}
	switch {
	case s.isServiceHost(host):
		s.met.reqService.Inc()
		s.mu.Lock()
		c, ok := s.vhosts[host]
		if !ok {
			c = s.reg.Counter("webserver_vhost_requests_total", "host", host)
			s.vhosts[host] = c
		}
		s.mu.Unlock()
		c.Inc()
	case s.Eco.SiteByHost[host] != nil:
		s.met.reqSite.Inc()
	default:
		s.met.reqOther.Inc()
	}
}

// handle adapts net/http to the ecosystem's virtual server.
func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	host := r.Host
	if h, _, err := net.SplitHostPort(host); err == nil {
		host = h
	}
	s.countRequest(strings.ToLower(host), r.TLS != nil)
	clientIP := r.RemoteAddr
	if h, _, err := net.SplitHostPort(clientIP); err == nil {
		clientIP = h
	}
	cookies := map[string]string{}
	for _, c := range r.Cookies() {
		cookies[c.Name] = c.Value
	}
	phase := webgen.PhaseCrawl
	switch r.Header.Get(HeaderPhase) {
	case "sanitize":
		phase = webgen.PhaseSanitize
	case "policy":
		phase = webgen.PhasePolicy
	}
	country := r.Header.Get(HeaderCountry)
	if country == "" {
		country = "ES" // the paper's physical vantage point
	}
	req := webgen.Request{
		Host:     host,
		Path:     r.URL.Path,
		Query:    r.URL.Query(),
		Country:  country,
		ClientIP: clientIP,
		Cookies:  cookies,
		Referer:  r.Referer(),
		Secure:   r.TLS != nil,
		Phase:    phase,
	}
	if f := s.Eco.FaultFor(host, country, phase); f.Kind != webgen.FaultNone {
		if s.applyFault(w, r, host, f, req) {
			return
		}
	}
	resp := s.Eco.Respond(req)
	if resp.Status == 0 {
		// Connection refused / dead host: cut the TCP stream without an
		// HTTP response so the client sees a transport error.
		s.refuse(w, host)
		return
	}
	for _, c := range resp.Cookies {
		hc := &http.Cookie{Name: c.Name, Value: c.Value, Path: "/"}
		if !c.Session {
			hc.MaxAge = 365 * 24 * 3600
			hc.Expires = time.Now().Add(365 * 24 * time.Hour)
		}
		http.SetCookie(w, hc)
	}
	// Connection discipline: site hosts and long-tail asset hosts are
	// contacted once per crawl, so the server closes those connections
	// (sending the first FIN keeps the TIME_WAIT state on the server
	// side, where it does not consume the crawler's ephemeral ports —
	// at paper scale the crawl would otherwise exhaust the client port
	// range). Tracker hosts are contacted from thousands of sites and
	// stay keep-alive for connection reuse.
	if !s.isServiceHost(host) {
		w.Header().Set("Connection", "close")
	}
	if resp.ContentType != "" {
		w.Header().Set("Content-Type", resp.ContentType)
	}
	if resp.Location != "" {
		w.Header().Set("Location", resp.Location)
	}
	status := resp.Status
	if status == 0 {
		status = http.StatusOK
	}
	w.WriteHeader(status)
	if resp.Body != "" {
		w.Write([]byte(resp.Body))
	}
}

// refuse cuts the connection without an HTTP response so the client
// sees a transport error — the wire behaviour of a dead or refusing
// host.
func (s *Server) refuse(w http.ResponseWriter, host string) {
	s.met.refusals.Inc()
	s.log.Event(obs.LevelDebug, "refusing connection", "host", host)
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	// TLS connections cannot always hijack; a bare 502 with the
	// sentinel header is the fallback the crawler also treats as
	// unreachable.
	w.Header().Set("X-Refused", "1")
	w.WriteHeader(http.StatusBadGateway)
}

// countFault records one injected fault, globally by kind and per vhost
// for service hosts (same cardinality discipline as countRequest).
func (s *Server) countFault(host string, kind webgen.FaultKind) {
	if s.reg == nil {
		return
	}
	s.reg.Counter("webserver_faults_injected_total", "kind", kind.String()).Inc()
	if s.isServiceHost(host) {
		s.reg.Counter("webserver_vhost_faults_total", "host", host).Inc()
	}
}

// applyFault realizes one fault decision on the wire. It reports
// whether the request was fully handled; latency returns false so the
// (delayed) normal response still flows.
func (s *Server) applyFault(w http.ResponseWriter, r *http.Request, host string, f webgen.Fault, req webgen.Request) bool {
	s.countFault(host, f.Kind)
	switch f.Kind {
	case webgen.FaultLatency:
		// Slow-loris: hold the response open for the injected delay (or
		// until the client gives up).
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-r.Context().Done():
			return true
		}
		return false
	case webgen.FaultServerError:
		if f.RetryAfter > 0 {
			secs := int(f.RetryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		w.Header().Set("Content-Type", "text/html")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "<html><body><h1>503</h1>transient backend failure</body></html>")
		return true
	case webgen.FaultDrop:
		s.refuse(w, host)
		return true
	case webgen.FaultRedirectLoop:
		// Two paths 302-ing at each other: any client following
		// redirects revisits a URL after two hops.
		next := "/fault/loop-a"
		if r.URL.Path == "/fault/loop-a" {
			next = "/fault/loop-b"
		}
		w.Header().Set("Location", next)
		w.WriteHeader(http.StatusFound)
		return true
	case webgen.FaultTruncate:
		// Declare the healthy body's length but send only half; the
		// handler returning early makes net/http cut the connection and
		// the client's body read fails with unexpected EOF.
		resp := s.Eco.Respond(req)
		if resp.Status == 0 || len(resp.Body) < 2 {
			s.refuse(w, host)
			return true
		}
		if resp.ContentType != "" {
			w.Header().Set("Content-Type", resp.ContentType)
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(resp.Body)))
		status := resp.Status
		if status == 0 {
			status = http.StatusOK
		}
		w.WriteHeader(status)
		io.WriteString(w, resp.Body[:len(resp.Body)/2])
		return true
	case webgen.FaultReset:
		s.resetMidStream(w, host, req)
		return true
	}
	return false
}

// resetMidStream writes a partial raw response and then aborts the TCP
// stream with an RST, so the client reads "connection reset by peer"
// instead of a clean EOF.
func (s *Server) resetMidStream(w http.ResponseWriter, host string, req webgen.Request) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		// No hijack (should not happen on HTTP/1.1): degrade to refusal.
		s.refuse(w, host)
		return
	}
	conn, bufrw, err := hj.Hijack()
	if err != nil {
		s.refuse(w, host)
		return
	}
	resp := s.Eco.Respond(req)
	body := resp.Body
	if body == "" {
		body = "<html><body>partial</body></html>"
	}
	fmt.Fprintf(bufrw, "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: %d\r\n\r\n%s",
		len(body), body[:len(body)/2])
	bufrw.Flush()
	abortConn(conn)
}

// abortConn closes conn with a TCP RST (SO_LINGER 0). For TLS streams
// the raw TCP connection is closed directly — a tls.Conn.Close would
// send close_notify first, which the client would read as a clean EOF
// rather than a reset.
func abortConn(conn net.Conn) {
	raw := conn
	if tc, ok := conn.(*tls.Conn); ok {
		raw = tc.NetConn()
	}
	if tcp, ok := raw.(*net.TCPConn); ok {
		tcp.SetLinger(0)
		tcp.Close()
		return
	}
	conn.Close()
}
