package webserver

import (
	"crypto/tls"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"pornweb/internal/obs"
	"pornweb/internal/webgen"
)

// startFaulty serves an ecosystem with every fault class enabled and a
// registry attached.
func startFaulty(t *testing.T, prof webgen.FaultProfile) (*Server, *webgen.Ecosystem, *obs.Registry) {
	t.Helper()
	eco := webgen.Generate(webgen.Params{Seed: 7, Scale: 0.02, Faults: prof})
	reg := obs.NewRegistry()
	srv, err := Start(eco, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, eco, reg
}

// pickFaultHost finds a healthy site assigned the given fault kind.
func pickFaultHost(t *testing.T, eco *webgen.Ecosystem, kind webgen.FaultKind) string {
	t.Helper()
	for _, s := range eco.PornSites {
		if s.Flaky || s.Unresponsive || len(s.BlockedIn) > 0 {
			continue
		}
		if eco.FaultKindFor(s.Host) == kind {
			return s.Host
		}
	}
	t.Skipf("no site with fault %s at this scale", kind)
	return ""
}

func TestServerErrorBurstOnWire(t *testing.T) {
	prof := webgen.DefaultFaultProfile()
	prof.RetryAfter = 1500 * time.Millisecond // rounded down to 1s in the header
	srv, eco, reg := startFaulty(t, prof)
	host := pickFaultHost(t, eco, webgen.FaultServerError)
	c := client(srv)
	for i := 0; i < prof.Burst; i++ {
		resp, err := c.Get("http://" + host + "/")
		if err != nil {
			t.Fatalf("attempt %d: %v", i+1, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("attempt %d: status = %d, want 503", i+1, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "1" {
			t.Fatalf("Retry-After = %q, want \"1\"", ra)
		}
	}
	// The burst is spent: the host recovers.
	resp, err := c.Get("http://" + host + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("post-burst status = %d, want 200", resp.StatusCode)
	}
	var sb strings.Builder
	reg.WriteExposition(&sb)
	if !strings.Contains(sb.String(), `webserver_faults_injected_total{kind="server-error"}`) {
		t.Error("injected faults not visible in exposition")
	}
}

func TestTruncateFaultOnWire(t *testing.T) {
	srv, eco, _ := startFaulty(t, webgen.DefaultFaultProfile())
	host := pickFaultHost(t, eco, webgen.FaultTruncate)
	c := client(srv)
	resp, err := c.Get("http://" + host + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, rerr := io.ReadAll(resp.Body)
	if rerr == nil || !strings.Contains(rerr.Error(), "unexpected EOF") {
		t.Fatalf("body read error = %v, want unexpected EOF", rerr)
	}
}

func TestResetFaultOnWire(t *testing.T) {
	srv, eco, _ := startFaulty(t, webgen.DefaultFaultProfile())
	host := pickFaultHost(t, eco, webgen.FaultReset)
	c := client(srv)
	resp, err := c.Get("http://" + host + "/")
	if err == nil {
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil || !strings.Contains(rerr.Error(), "connection reset") {
			t.Fatalf("body read error = %v, want connection reset", rerr)
		}
		return
	}
	if !strings.Contains(err.Error(), "connection reset") {
		t.Fatalf("error = %v, want connection reset", err)
	}
}

func TestResetFaultOverTLS(t *testing.T) {
	srv, eco, _ := startFaulty(t, webgen.DefaultFaultProfile())
	var host string
	for _, s := range eco.PornSites {
		if !s.Flaky && !s.Unresponsive && s.HTTPS && len(s.BlockedIn) == 0 &&
			eco.FaultKindFor(s.Host) == webgen.FaultReset {
			host = s.Host
			break
		}
	}
	if host == "" {
		t.Skip("no HTTPS reset site at this scale")
	}
	tr := &http.Transport{DialContext: srv.DialContext, TLSClientConfig: &tls.Config{RootCAs: srv.CertPool()}}
	c := &http.Client{Transport: tr}
	resp, err := c.Get("https://" + host + "/")
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil || !strings.Contains(err.Error(), "connection reset") {
		t.Fatalf("TLS reset fault produced %v, want connection reset", err)
	}
}

func TestRedirectLoopFaultOnWire(t *testing.T) {
	srv, eco, _ := startFaulty(t, webgen.DefaultFaultProfile())
	host := pickFaultHost(t, eco, webgen.FaultRedirectLoop)
	tr := &http.Transport{DialContext: srv.DialContext, TLSClientConfig: &tls.Config{RootCAs: srv.CertPool()}}
	c := &http.Client{Transport: tr, CheckRedirect: func(req *http.Request, via []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	seen := map[string]int{}
	path := "/"
	for i := 0; i < 6; i++ {
		resp, err := c.Get("http://" + host + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusFound {
			t.Fatalf("hop %d: status = %d, want 302", i, resp.StatusCode)
		}
		path = resp.Header.Get("Location")
		seen[path]++
	}
	if len(seen) != 2 {
		t.Fatalf("loop touched %d paths (%v), want a 2-cycle", len(seen), seen)
	}
}

func TestDropFaultRespectsCountry(t *testing.T) {
	srv, eco, _ := startFaulty(t, webgen.DefaultFaultProfile())
	host := pickFaultHost(t, eco, webgen.FaultDrop)
	c := client(srv)
	var dropCountry, passCountry string
	for _, country := range webgen.Countries {
		get := func() error {
			req, _ := http.NewRequest(http.MethodGet, "http://"+host+"/", nil)
			req.Header.Set(HeaderCountry, country)
			resp, err := c.Do(req)
			if err != nil {
				return err
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.Header.Get("X-Refused") == "1" {
				return io.EOF
			}
			return nil
		}
		if err := get(); err != nil && dropCountry == "" {
			dropCountry = country
		} else if err == nil && passCountry == "" {
			passCountry = country
		}
	}
	if dropCountry == "" {
		t.Error("drop host never dropped from any vantage")
	}
	if passCountry == "" {
		t.Error("drop host dropped from every vantage; want per-country intermittency")
	}
}

func TestSanitizePhaseSeesNoFaults(t *testing.T) {
	srv, eco, _ := startFaulty(t, webgen.DefaultFaultProfile())
	host := pickFaultHost(t, eco, webgen.FaultServerError)
	c := client(srv)
	req, _ := http.NewRequest(http.MethodGet, "http://"+host+"/", nil)
	req.Header.Set(HeaderPhase, "sanitize")
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("sanitize phase got %d, want 200", resp.StatusCode)
	}
}
