package fingerprint

import (
	"testing"

	"pornweb/internal/jsvm"
	"pornweb/internal/webgen"
)

func execute(t *testing.T, src string) *jsvm.Trace {
	t.Helper()
	return jsvm.Execute("test.js", src, jsvm.Env{UserAgent: "UA", ScreenW: 1024, ScreenH: 768})
}

const fpScript = `
var c = document.createElement('canvas');
c.width = 300;
c.height = 150;
var ctx = c.getContext('2d');
ctx.fillStyle = '#f60';
ctx.fillRect(0, 0, 10, 10);
ctx.fillStyle = '#069';
ctx.fillText("Cwm fjordbank glyphs vext quiz", 2, 15);
var d = c.toDataURL();
`

func TestCanvasFPDetected(t *testing.T) {
	v := ClassifyTrace(execute(t, fpScript))
	if !v.CanvasFP {
		t.Fatalf("canvas FP not detected: %+v", v)
	}
	if len(v.Reasons) == 0 {
		t.Error("no reasons recorded")
	}
}

func TestSmallCanvasExcluded(t *testing.T) {
	src := `
var c = document.createElement('canvas');
c.width = 10;
c.height = 10;
var ctx = c.getContext('2d');
ctx.fillStyle = '#f60';
ctx.fillStyle = '#069';
ctx.fillText("abcdefghijklmnop", 0, 0);
var d = c.toDataURL();
`
	if v := ClassifyTrace(execute(t, src)); v.CanvasFP {
		t.Error("sub-16px canvas must not qualify")
	}
}

func TestSingleColorExcluded(t *testing.T) {
	src := `
var c = document.createElement('canvas');
c.width = 100;
c.height = 100;
var ctx = c.getContext('2d');
ctx.fillStyle = '#f60';
ctx.fillText("abcdefghijklmnop", 0, 0);
var d = c.toDataURL();
`
	if v := ClassifyTrace(execute(t, src)); v.CanvasFP {
		t.Error("single-color canvas must not qualify")
	}
}

func TestShortTextExcluded(t *testing.T) {
	src := `
var c = document.createElement('canvas');
c.width = 100;
c.height = 100;
var ctx = c.getContext('2d');
ctx.fillStyle = '#f60';
ctx.fillStyle = '#069';
ctx.fillText("aaaabbbb", 0, 0);
var d = c.toDataURL();
`
	if v := ClassifyTrace(execute(t, src)); v.CanvasFP {
		t.Error("text with <= 10 distinct chars must not qualify")
	}
}

func TestNoReadbackExcluded(t *testing.T) {
	src := `
var c = document.createElement('canvas');
c.width = 100;
c.height = 100;
var ctx = c.getContext('2d');
ctx.fillStyle = '#f60';
ctx.fillStyle = '#069';
ctx.fillText("abcdefghijklmnop", 0, 0);
`
	if v := ClassifyTrace(execute(t, src)); v.CanvasFP {
		t.Error("canvas without readback must not qualify")
	}
}

func TestSmallGetImageDataExcluded(t *testing.T) {
	src := `
var c = document.createElement('canvas');
c.width = 100;
c.height = 100;
var ctx = c.getContext('2d');
ctx.fillStyle = '#f60';
ctx.fillStyle = '#069';
ctx.fillText("abcdefghijklmnop", 0, 0);
ctx.getImageData(0, 0, 10, 10);
`
	if v := ClassifyTrace(execute(t, src)); v.CanvasFP {
		t.Error("getImageData area < 320px must not qualify")
	}
}

func TestLargeGetImageDataQualifies(t *testing.T) {
	src := `
var c = document.createElement('canvas');
c.width = 100;
c.height = 100;
var ctx = c.getContext('2d');
ctx.fillStyle = '#f60';
ctx.fillStyle = '#069';
ctx.fillText("abcdefghijklmnop", 0, 0);
ctx.getImageData(0, 0, 100, 100);
`
	if v := ClassifyTrace(execute(t, src)); !v.CanvasFP {
		t.Error("large getImageData should qualify")
	}
}

func TestSaveRestoreExcluded(t *testing.T) {
	src := fpScript + "\nctx.save();\nctx.restore();\n"
	if v := ClassifyTrace(execute(t, src)); v.CanvasFP {
		t.Error("save/restore usage must disqualify")
	}
}

func TestAddEventListenerExcluded(t *testing.T) {
	src := fpScript + "\nc.addEventListener('click', h);\n"
	if v := ClassifyTrace(execute(t, src)); v.CanvasFP {
		t.Error("addEventListener usage must disqualify")
	}
}

func TestFontFP(t *testing.T) {
	src := `
var c = document.createElement('canvas');
var ctx = c.getContext('2d');
for (var i = 0; i < 55; i++) {
  ctx.font = '12px f' + i;
  ctx.measureText('mmmmmmmmmmlli');
}
`
	v := ClassifyTrace(execute(t, src))
	if !v.FontFP {
		t.Error("font fingerprinting not detected")
	}
	if v.CanvasFP {
		t.Error("font probing alone must not count as canvas FP")
	}
}

func TestFontFPBelowThreshold(t *testing.T) {
	src := `
var c = document.createElement('canvas');
var ctx = c.getContext('2d');
for (var i = 0; i < 30; i++) {
  ctx.font = '12px f' + i;
  ctx.measureText('mmmmmmmmmmlli');
}
`
	if v := ClassifyTrace(execute(t, src)); v.FontFP {
		t.Error("29 repeats must not qualify (threshold 50)")
	}
}

func TestWebRTC(t *testing.T) {
	src := `
var pc = new RTCPeerConnection();
pc.createDataChannel('');
pc.createOffer();
`
	v := ClassifyTrace(execute(t, src))
	if !v.WebRTC {
		t.Error("WebRTC not detected")
	}
	if !v.Any() {
		t.Error("Any() should be true")
	}
}

func TestBenignScriptClean(t *testing.T) {
	v := ClassifyTrace(execute(t, `var x = navigator.userAgent; fetch('https://a.example/c?ua=' + x);`))
	if v.Any() {
		t.Errorf("benign script classified as fingerprinting: %+v", v)
	}
}

// TestGeneratorRoundTrip verifies that the planted service behaviours
// classify exactly as planted: canvas services' FP variants qualify, their
// benign variants do not, font/WebRTC services classify accordingly.
func TestGeneratorRoundTrip(t *testing.T) {
	eco := webgen.Generate(webgen.Params{Seed: 5, Scale: 0.03})
	env := jsvm.Env{UserAgent: "UA", ScreenW: 1280, ScreenH: 800}
	var canvasPos, fontPos, rtcPos int
	for _, svc := range eco.Services {
		for v := 0; v < svc.ScriptVariants; v++ {
			src := webgen.ServiceScript(svc, v, "uid0001", "http")
			verdict := ClassifyTrace(jsvm.Execute("", src, env))
			benignVariant := svc.CanvasFP && svc.ScriptVariants > 2 && v == svc.ScriptVariants-1
			switch {
			case svc.CanvasFP && !benignVariant:
				if !verdict.CanvasFP {
					t.Errorf("%s variant %d: planted canvas FP not detected", svc.Host, v)
				}
				canvasPos++
			case benignVariant:
				if verdict.CanvasFP {
					t.Errorf("%s benign variant %d misclassified as canvas FP", svc.Host, v)
				}
			case svc.FontFP:
				if !verdict.FontFP {
					t.Errorf("%s: planted font FP not detected", svc.Host)
				}
				fontPos++
			case svc.WebRTC:
				if !verdict.WebRTC {
					t.Errorf("%s: planted WebRTC not detected", svc.Host)
				}
				rtcPos++
			default:
				if verdict.CanvasFP || verdict.FontFP {
					t.Errorf("%s variant %d: false positive %+v", svc.Host, v, verdict)
				}
			}
		}
	}
	if canvasPos == 0 || fontPos == 0 || rtcPos == 0 {
		t.Errorf("coverage: canvas=%d font=%d rtc=%d", canvasPos, fontPos, rtcPos)
	}
}

func TestSummaryAggregation(t *testing.T) {
	s := NewSummary()
	v := Verdict{CanvasFP: true}
	s.Add(ScriptReport{ScriptURL: "http://t.example/a.js", Host: "t.example", SiteHost: "s1.com", Verdict: v})
	s.Add(ScriptReport{ScriptURL: "http://t.example/a.js", Host: "t.example", SiteHost: "s2.com", Verdict: v})
	s.Add(ScriptReport{ScriptURL: "", SiteHost: "s3.com", Verdict: v}) // inline
	if len(s.CanvasScripts) != 2 {
		t.Errorf("distinct canvas scripts = %d, want 2 (URL + inline)", len(s.CanvasScripts))
	}
	if len(s.CanvasSites) != 3 {
		t.Errorf("canvas sites = %d, want 3", len(s.CanvasSites))
	}
	if len(s.CanvasByServer["t.example"]) != 1 {
		t.Errorf("server scripts = %v", s.CanvasByServer)
	}
}
