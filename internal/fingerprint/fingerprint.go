// Package fingerprint classifies instrumented JavaScript traces as
// fingerprinting or benign, implementing the heuristics of Englehardt &
// Narayanan that the paper applies in Section 5.1.3:
//
// Canvas fingerprinting requires, per script:
//   - a canvas at least 16px in both dimensions,
//   - at least two distinct fill/stroke colors,
//   - drawn text with more than 10 distinct characters,
//   - a call to toDataURL, or to getImageData covering at least 320px of
//     area, and
//   - no use of save, restore, or addEventListener on the canvas or its
//     rendering context (those indicate interactive UI drawing).
//
// Canvas-font fingerprinting (the paper's stricter variant) requires the
// script to set the font property and call measureText on the same text at
// least 50 times.
//
// WebRTC usage is reported whenever RTCPeerConnection (or a prefixed
// variant) is instantiated together with createDataChannel/createOffer or
// an onicecandidate handler — evidence of candidate harvesting rather than
// a call: the paper reports these as *potential* tracking because intent
// cannot be proven from the trace alone.
package fingerprint

import (
	"fmt"

	"pornweb/internal/jsvm"
)

// Thresholds from the paper.
const (
	MinCanvasDim      = 16
	MinColors         = 2
	MinDistinctChars  = 11 // "more than 10 different characters"
	MinImageDataArea  = 320
	MinMeasureRepeats = 50
)

// Verdict is the classification of one script trace.
type Verdict struct {
	CanvasFP bool
	FontFP   bool
	WebRTC   bool
	// Reasons explains, per positive or near-miss classification, which
	// criteria fired (diagnostics for the manual-verification workflow).
	Reasons []string
}

// Any reports whether any fingerprinting technique was detected.
func (v Verdict) Any() bool { return v.CanvasFP || v.FontFP || v.WebRTC }

// ClassifyTrace applies all heuristics to one script trace.
func ClassifyTrace(tr *jsvm.Trace) Verdict {
	var v Verdict
	for i, c := range tr.Canvases {
		ok, reason := canvasQualifies(c)
		if ok {
			v.CanvasFP = true
			v.Reasons = append(v.Reasons, fmt.Sprintf("canvas[%d]: %s", i, reason))
		}
	}
	if ok, reason := fontQualifies(tr); ok {
		v.FontFP = true
		v.Reasons = append(v.Reasons, reason)
	}
	if tr.WebRTC.Used() {
		v.WebRTC = true
		v.Reasons = append(v.Reasons, fmt.Sprintf("webrtc: pc=%d datachannel=%d offer=%d onice=%d",
			tr.WebRTC.PeerConnections, tr.WebRTC.CreateDataChannel, tr.WebRTC.CreateOffer, tr.WebRTC.OnICECandidate))
	}
	return v
}

// canvasQualifies applies the per-canvas criteria.
func canvasQualifies(c *jsvm.CanvasRecord) (bool, string) {
	if c.Width < MinCanvasDim || c.Height < MinCanvasDim {
		return false, "too small"
	}
	if len(c.Colors) < MinColors {
		return false, "too few colors"
	}
	if c.DistinctTextChars() < MinDistinctChars {
		return false, "too little text"
	}
	read := c.ToDataURL > 0 || (c.GetImageData > 0 && c.GetImageDataArea >= MinImageDataArea)
	if !read {
		return false, "no pixel readback"
	}
	if c.Save > 0 || c.Restore > 0 || c.AddEventListener > 0 {
		return false, "interactive drawing (save/restore/listener)"
	}
	return true, fmt.Sprintf("%dx%d canvas, %d colors, %d distinct chars, readback",
		c.Width, c.Height, len(c.Colors), c.DistinctTextChars())
}

// fontQualifies applies the stricter font-fingerprinting condition the
// paper adopted: the font property is set and the same text is measured at
// least 50 times.
func fontQualifies(tr *jsvm.Trace) (bool, string) {
	if tr.FontSets == 0 {
		return false, ""
	}
	for text, n := range tr.MeasureText {
		if n >= MinMeasureRepeats {
			return true, fmt.Sprintf("font: measureText(%q) x%d with %d font sets", text, n, tr.FontSets)
		}
	}
	return false, ""
}

// ScriptReport aggregates one script's identity with its verdict.
type ScriptReport struct {
	ScriptURL string
	Host      string // host serving the script ("" for inline)
	SiteHost  string // site on which it executed
	Verdict   Verdict
}

// Summary aggregates fingerprinting findings across a crawl.
type Summary struct {
	CanvasScripts  map[string]bool // distinct script URLs doing canvas FP
	FontScripts    map[string]bool // distinct script URLs doing font FP
	WebRTCScripts  map[string]bool // distinct script URLs touching WebRTC
	CanvasSites    map[string]bool // sites loading >=1 canvas-FP script
	FontSites      map[string]bool
	WebRTCSites    map[string]bool
	CanvasByServer map[string]map[string]bool // serving host -> distinct canvas script URLs
	WebRTCByServer map[string]map[string]bool
}

// NewSummary allocates an empty summary.
func NewSummary() *Summary {
	return &Summary{
		CanvasScripts:  map[string]bool{},
		FontScripts:    map[string]bool{},
		WebRTCScripts:  map[string]bool{},
		CanvasSites:    map[string]bool{},
		FontSites:      map[string]bool{},
		WebRTCSites:    map[string]bool{},
		CanvasByServer: map[string]map[string]bool{},
		WebRTCByServer: map[string]map[string]bool{},
	}
}

// Add folds one script report into the summary.
func (s *Summary) Add(r ScriptReport) {
	key := r.ScriptURL
	if key == "" {
		key = "inline:" + r.SiteHost
	}
	if r.Verdict.CanvasFP {
		s.CanvasScripts[key] = true
		s.CanvasSites[r.SiteHost] = true
		if r.Host != "" {
			if s.CanvasByServer[r.Host] == nil {
				s.CanvasByServer[r.Host] = map[string]bool{}
			}
			s.CanvasByServer[r.Host][key] = true
		}
	}
	if r.Verdict.FontFP {
		s.FontScripts[key] = true
		s.FontSites[r.SiteHost] = true
	}
	if r.Verdict.WebRTC {
		s.WebRTCScripts[key] = true
		s.WebRTCSites[r.SiteHost] = true
		if r.Host != "" {
			if s.WebRTCByServer[r.Host] == nil {
				s.WebRTCByServer[r.Host] = map[string]bool{}
			}
			s.WebRTCByServer[r.Host][key] = true
		}
	}
}
