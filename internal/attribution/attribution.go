// Package attribution maps domains to the organizations behind them,
// implementing the paper's three-stage process (Section 4.2, heuristic 3,
// and Section 4.1):
//
//  1. a Disconnect-style seed list of domain-to-company mappings, which is
//     known to be incomplete (the paper resolved only 142 companies with
//     it);
//  2. the organization field of each domain's X.509 certificate, skipping
//     certificates whose subject names only the domain itself (footnote 7)
//     — this lifted coverage to 1,014 companies in the paper; and
//  3. owner discovery for websites: TF-IDF similarity clustering over
//     privacy policies and HTML <head> elements, naming clusters from the
//     controller disclosures found in policy text.
package attribution

import (
	"regexp"
	"sort"
	"strings"
	"sync"

	"pornweb/internal/domain"
	"pornweb/internal/textstat"
)

// Attributor resolves hosts to organizations.
type Attributor struct {
	// Disconnect maps base domains to company names (seed list).
	Disconnect map[string]string
	// CertOrgs maps observed hosts to the organization in their
	// certificate. It must be fully populated before the first
	// Organization call — lookups build a one-time index over it.
	CertOrgs map[string]string

	// certByBase indexes CertOrgs by registrable domain, built lazily: a
	// linear scan of all observed certificates per lookup is quadratic
	// over a paper-scale crawl.
	certByBase map[string]string
	indexOnce  sync.Once
}

func (a *Attributor) index() map[string]string {
	a.indexOnce.Do(func() {
		a.certByBase = make(map[string]string, len(a.CertOrgs))
		// Several observed hosts can share a registrable domain while
		// their certificates name different organizations (long-tail asset
		// hosts on different hosting providers). Build the index over
		// sorted hosts with first-wins so the base-level winner never
		// depends on map iteration order — attribution must be identical
		// run to run and across pipeline schedules.
		hosts := make([]string, 0, len(a.CertOrgs))
		for h := range a.CertOrgs {
			hosts = append(hosts, h)
		}
		sort.Strings(hosts)
		for _, h := range hosts {
			org := a.CertOrgs[h]
			if org == "" || looksLikeDomain(org) {
				continue
			}
			base := domain.Base(h)
			if _, ok := a.certByBase[base]; !ok {
				a.certByBase[base] = org
			}
		}
	})
	return a.certByBase
}

// looksLikeDomain reports whether an X.509 organization string is just a
// domain name rather than a company name.
func looksLikeDomain(org string) bool {
	if strings.ContainsAny(org, " \t") {
		return false
	}
	return strings.Contains(org, ".")
}

// Organization resolves the company behind host. The bool reports whether
// an attribution was possible.
func (a *Attributor) Organization(host string) (string, bool) {
	base := domain.Base(host)
	if a.Disconnect != nil {
		if org, ok := a.Disconnect[base]; ok {
			return org, true
		}
	}
	if a.CertOrgs != nil {
		if org, ok := a.CertOrgs[host]; ok && org != "" && !looksLikeDomain(org) {
			return org, true
		}
		// Any observed certificate under the same registrable domain
		// counts too.
		if org, ok := a.index()[base]; ok {
			return org, true
		}
	}
	return "", false
}

// Coverage summarizes attribution over a set of hosts.
type Coverage struct {
	Hosts      int
	Attributed int
	Companies  map[string]bool
	// DisconnectOnly counts hosts resolvable with the seed list alone (the
	// paper's 142-company baseline).
	DisconnectOnly int
}

// Cover attributes every host and summarizes.
func (a *Attributor) Cover(hosts []string) Coverage {
	cov := Coverage{Companies: map[string]bool{}}
	seedOnly := &Attributor{Disconnect: a.Disconnect}
	for _, h := range hosts {
		cov.Hosts++
		if org, ok := a.Organization(h); ok {
			cov.Attributed++
			cov.Companies[org] = true
		}
		if _, ok := seedOnly.Organization(h); ok {
			cov.DisconnectOnly++
		}
	}
	return cov
}

// PrevalenceByOrg computes, for each organization, the fraction of sites
// embedding at least one of its domains. hostsPerSite maps a site to the
// third-party hosts it contacted. Unattributed hosts are grouped under
// their base domain, mirroring the paper's per-domain fallback.
func (a *Attributor) PrevalenceByOrg(hostsPerSite map[string][]string) map[string]float64 {
	orgSites := map[string]map[string]bool{}
	for site, hosts := range hostsPerSite {
		for _, h := range hosts {
			org, ok := a.Organization(h)
			if !ok {
				org = domain.Base(h)
			}
			if orgSites[org] == nil {
				orgSites[org] = map[string]bool{}
			}
			orgSites[org][site] = true
		}
	}
	out := make(map[string]float64, len(orgSites))
	n := float64(len(hostsPerSite))
	if n == 0 {
		return out
	}
	for org, sites := range orgSites {
		out[org] = float64(len(sites)) / n
	}
	return out
}

// controllerRe extracts "The data controller for <host> is <Company>."
var controllerRe = regexp.MustCompile(`[Tt]he data controller for [^ ]+ is ([^.]+)\.`)

// ExtractController pulls an explicitly disclosed controller name from
// policy text, or "".
func ExtractController(policyText string) string {
	m := controllerRe.FindStringSubmatch(policyText)
	if m == nil {
		return ""
	}
	return strings.TrimSpace(m[1])
}

// OwnerCluster is a discovered group of sites that likely share an owner.
type OwnerCluster struct {
	Sites []string
	// Company is the disclosed controller name when any member's policy
	// names one; "" otherwise.
	Company string
}

// DiscoverOwners clusters sites by near-duplicate privacy policies and
// near-duplicate HTML <head> elements (single linkage across both
// signals), then names each cluster from controller disclosures. Sites
// without a policy can still cluster via their heads.
func DiscoverOwners(sites []string, policies, heads map[string]string, threshold float64) []OwnerCluster {
	idx := map[string]int{}
	for i, s := range sites {
		idx[s] = i
	}
	parent := make([]int, len(sites))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(b)] = find(a) }

	clusterSignal := func(texts map[string]string, normalizeHost bool) {
		var members []string
		var docs []string
		for _, s := range sites {
			t, ok := texts[s]
			if !ok || t == "" {
				continue
			}
			if normalizeHost {
				t = strings.ReplaceAll(t, s, " ")
			}
			members = append(members, s)
			docs = append(docs, t)
		}
		if len(docs) < 2 {
			return
		}
		if threshold >= 0.999 {
			// Exact-identity grouping (the paper's "coefficient 1" pairs):
			// single-linkage over a merely-high cosine threshold chains
			// template-sharing policies of unrelated operators into giant
			// false clusters at corpus scale, so near-identity is matched
			// by normalized-text equality instead.
			byText := map[string][]string{}
			for i, d := range docs {
				key := strings.Join(strings.Fields(d), " ")
				byText[key] = append(byText[key], members[i])
			}
			for _, group := range byText {
				if len(group) < 2 {
					continue
				}
				first := idx[group[0]]
				for _, g := range group[1:] {
					union(first, idx[g])
				}
			}
			return
		}
		corpus := textstat.NewCorpus(docs)
		for _, group := range corpus.Cluster(threshold) {
			first := idx[members[group[0]]]
			for _, g := range group[1:] {
				union(first, idx[members[g]])
			}
		}
	}
	clusterSignal(policies, true)
	clusterSignal(heads, true)

	groups := map[int][]string{}
	for i, s := range sites {
		r := find(i)
		groups[r] = append(groups[r], s)
	}
	var out []OwnerCluster
	for _, members := range groups {
		if len(members) < 2 {
			continue
		}
		sort.Strings(members)
		oc := OwnerCluster{Sites: members}
		for _, s := range members {
			if name := ExtractController(policies[s]); name != "" {
				oc.Company = name
				break
			}
		}
		out = append(out, oc)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Sites) != len(out[j].Sites) {
			return len(out[i].Sites) > len(out[j].Sites)
		}
		return out[i].Sites[0] < out[j].Sites[0]
	})
	return out
}
