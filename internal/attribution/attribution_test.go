package attribution

import (
	"strings"
	"testing"

	"pornweb/internal/webgen"
)

func TestOrganizationCascade(t *testing.T) {
	a := &Attributor{
		Disconnect: map[string]string{"doubleclick.net": "Alphabet"},
		CertOrgs: map[string]string{
			"main.exoclick.com": "ExoClick S.L.",
			"hd100546b.com":     "hprofits.com", // domain-only subject: skipped
		},
	}
	if org, ok := a.Organization("ad.doubleclick.net"); !ok || org != "Alphabet" {
		t.Errorf("disconnect lookup = %q, %v", org, ok)
	}
	if org, ok := a.Organization("main.exoclick.com"); !ok || org != "ExoClick S.L." {
		t.Errorf("cert lookup = %q, %v", org, ok)
	}
	if org, ok := a.Organization("exoclick.com"); !ok || org != "ExoClick S.L." {
		t.Errorf("base-level cert lookup = %q, %v", org, ok)
	}
	if _, ok := a.Organization("hd100546b.com"); ok {
		t.Error("domain-only cert subject must not attribute")
	}
	if _, ok := a.Organization("unknown.example"); ok {
		t.Error("unknown host attributed")
	}
}

func TestCoverage(t *testing.T) {
	a := &Attributor{
		Disconnect: map[string]string{"ga.example": "Alphabet"},
		CertOrgs:   map[string]string{"t.example": "Tracker Inc."},
	}
	cov := a.Cover([]string{"x.ga.example", "t.example", "mystery.example"})
	if cov.Hosts != 3 || cov.Attributed != 2 {
		t.Errorf("coverage = %+v", cov)
	}
	if cov.DisconnectOnly != 1 {
		t.Errorf("DisconnectOnly = %d, want 1", cov.DisconnectOnly)
	}
	if len(cov.Companies) != 2 {
		t.Errorf("companies = %v", cov.Companies)
	}
}

func TestCertificatesImproveCoverage(t *testing.T) {
	// The paper's headline: Disconnect alone resolves far fewer companies
	// than Disconnect + certificates.
	eco := webgen.Generate(webgen.Params{Seed: 5, Scale: 0.05})
	certOrgs := map[string]string{}
	var hosts []string
	for _, svc := range eco.Services {
		hosts = append(hosts, svc.Host)
		if org := eco.CertOrgFor(svc.Host); org != "" {
			certOrgs[svc.Host] = org
		}
	}
	a := &Attributor{Disconnect: eco.DisconnectList(), CertOrgs: certOrgs}
	cov := a.Cover(hosts)
	if cov.Attributed <= cov.DisconnectOnly {
		t.Errorf("certificates added nothing: attributed=%d disconnectOnly=%d", cov.Attributed, cov.DisconnectOnly)
	}
	if float64(cov.Attributed)/float64(cov.Hosts) < 0.15 {
		t.Errorf("attribution rate %.2f too low", float64(cov.Attributed)/float64(cov.Hosts))
	}
}

func TestPrevalenceByOrg(t *testing.T) {
	a := &Attributor{Disconnect: map[string]string{
		"ga.example": "Alphabet", "dc.example": "Alphabet",
	}}
	hostsPerSite := map[string][]string{
		"s1.com": {"x.ga.example", "tail1.example"},
		"s2.com": {"y.dc.example"},
		"s3.com": {"tail1.example"},
		"s4.com": {},
	}
	prev := a.PrevalenceByOrg(hostsPerSite)
	if prev["Alphabet"] != 0.5 {
		t.Errorf("Alphabet prevalence = %f, want 0.5 (two orgs' domains merged)", prev["Alphabet"])
	}
	if prev["tail1.example"] != 0.5 {
		t.Errorf("unattributed fallback prevalence = %f", prev["tail1.example"])
	}
}

func TestExtractController(t *testing.T) {
	text := "Some intro. The data controller for site.com is Gamma Entertainment Inc. More text."
	if got := ExtractController(text); got != "Gamma Entertainment Inc" {
		t.Errorf("controller = %q", got)
	}
	if got := ExtractController("no disclosure here"); got != "" {
		t.Errorf("false extraction %q", got)
	}
}

func TestDiscoverOwnersOnGeneratedClusters(t *testing.T) {
	eco := webgen.Generate(webgen.Params{Seed: 5, Scale: 0.05})
	var sites []string
	policies := map[string]string{}
	heads := map[string]string{}
	truth := map[string]string{} // host -> owner name
	for _, s := range eco.PornSites {
		sites = append(sites, s.Host)
		if s.HasPolicy {
			policies[s.Host] = s.PolicyText
		}
		// Approximate the <head> signal with the generated meta block.
		heads[s.Host] = eco.RenderLanding(s, webgen.PageContext{Country: "ES", Scheme: "http"})[:400]
		if s.Owner != nil {
			truth[s.Host] = s.Owner.Name
		}
	}
	clusters := DiscoverOwners(sites, policies, heads, 1.0)
	if len(clusters) == 0 {
		t.Fatal("no clusters discovered")
	}
	// Every discovered cluster must be owner-pure for the planted owners:
	// count how many contain at least two sites of the same true owner.
	matched := 0
	for _, c := range clusters {
		owners := map[string]int{}
		for _, s := range c.Sites {
			if o := truth[s]; o != "" {
				owners[o]++
			}
		}
		for _, n := range owners {
			if n >= 2 {
				matched++
				break
			}
		}
	}
	if matched == 0 {
		t.Errorf("no discovered cluster recovered a planted owner; clusters=%d", len(clusters))
	}
	// At least one cluster should carry a disclosed company name.
	named := false
	for _, c := range clusters {
		if c.Company != "" {
			named = true
			break
		}
	}
	if !named {
		t.Error("no cluster named from controller disclosure")
	}
}

func TestDiscoverOwnersNoSignals(t *testing.T) {
	clusters := DiscoverOwners([]string{"a.com", "b.com"}, map[string]string{}, map[string]string{}, 0.9)
	if len(clusters) != 0 {
		t.Errorf("clusters from nothing: %+v", clusters)
	}
}

func TestLooksLikeDomain(t *testing.T) {
	if !looksLikeDomain("hprofits.com") {
		t.Error("hprofits.com should look like a domain")
	}
	if looksLikeDomain("ExoClick S.L.") {
		t.Error("company with spaces must not look like a domain")
	}
	if looksLikeDomain("Cloudflare") {
		t.Error("single word must not look like a domain")
	}
	_ = strings.TrimSpace("")
}

// TestIndexDeterministicOnBaseCollision pins the certByBase tie-break:
// when several hosts share a registrable domain but carry different cert
// organizations, the winner must be the lexicographically first host —
// never map iteration order, which made Figure 3 flip between runs and
// between pipeline schedules.
func TestIndexDeterministicOnBaseCollision(t *testing.T) {
	want := ""
	for i := 0; i < 50; i++ {
		a := &Attributor{CertOrgs: map[string]string{
			"a.cdn-pool.net": "Alpha Hosting",
			"b.cdn-pool.net": "Beta Hosting",
			"c.cdn-pool.net": "Gamma Hosting",
		}}
		org, ok := a.Organization("unseen.cdn-pool.net")
		if !ok {
			t.Fatal("no attribution for colliding base")
		}
		if i == 0 {
			want = org
			if org != "Alpha Hosting" {
				t.Fatalf("winner = %q, want the lexicographically first host's org", org)
			}
			continue
		}
		if org != want {
			t.Fatalf("iteration %d: winner flipped from %q to %q", i, want, org)
		}
	}
}
