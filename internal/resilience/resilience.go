// Package resilience is the failure-handling machinery of the crawl
// path: bounded retries with exponential backoff and full jitter
// (honoring Retry-After), a per-host circuit breaker with
// closed/open/half-open states, and the failure taxonomy that turns raw
// transport errors into the classes the study aggregates. Large-scale
// crawl measurements live or die on disciplined failure handling — the
// paper loses ~7% of porn sites and ~12% of regular sites to flaky
// hosts (Section 3); this layer makes that loss a measured,
// policy-driven quantity instead of an artifact of luck.
//
// Everything here is deterministic given Policy.Seed, so a fixed-seed
// study produces the same retry schedule on every run.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"
)

// Class is one bucket of the failure taxonomy. A failed page visit or
// request maps to exactly one class.
type Class string

// The failure taxonomy. The first eight are the study's reported
// classes; canceled and other absorb caller-induced aborts and anything
// unrecognized.
const (
	ClassTimeout      Class = "timeout"       // request or page deadline expired
	ClassRefused      Class = "refused"       // connection refused / dead host
	ClassReset        Class = "reset"         // mid-stream TCP reset
	ClassTruncated    Class = "truncated"     // body shorter than Content-Length
	Class5xx          Class = "5xx-exhausted" // server errors survived every retry
	ClassRedirectLoop Class = "redirect-loop" // redirect cycle or hop-limit hit
	ClassBreakerOpen  Class = "breaker-open"  // circuit breaker rejected the request
	ClassGeoBlocked   Class = "geo-blocked"   // HTTP 451 from this vantage
	ClassStoreWrite   Class = "store-write"   // durable visit-store append/sync failed
	ClassCanceled     Class = "canceled"      // the crawl itself was canceled
	ClassOther        Class = "other"
)

// Classes lists the taxonomy in report order.
func Classes() []Class {
	return []Class{ClassTimeout, ClassRefused, ClassReset, ClassTruncated,
		Class5xx, ClassRedirectLoop, ClassBreakerOpen, ClassGeoBlocked,
		ClassStoreWrite, ClassCanceled, ClassOther}
}

// Sentinel errors the crawl layer wraps into its failures so Classify
// can recognize them structurally.
var (
	// ErrBreakerOpen is returned when a host's circuit breaker rejects a
	// request without attempting it.
	ErrBreakerOpen = errors.New("circuit breaker open")
	// ErrRedirectLoop marks a redirect chain that revisited a URL or
	// exceeded the hop limit.
	ErrRedirectLoop = errors.New("redirect loop")
	// ErrTruncated marks a response body cut short of its declared length.
	ErrTruncated = errors.New("truncated response body")
)

// Classify maps an error from the crawl path to its taxonomy class.
// Sentinels are matched structurally; transport errors, which surface
// from net/http as strings, fall back to message matching.
func Classify(err error) Class {
	if err == nil {
		return ""
	}
	switch {
	case errors.Is(err, ErrBreakerOpen):
		return ClassBreakerOpen
	case errors.Is(err, ErrRedirectLoop):
		return ClassRedirectLoop
	case errors.Is(err, ErrTruncated):
		return ClassTruncated
	case errors.Is(err, context.Canceled):
		return ClassCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return ClassTimeout
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ClassTimeout
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "context canceled"):
		return ClassCanceled
	case strings.Contains(msg, "Client.Timeout"), strings.Contains(msg, "deadline exceeded"),
		strings.Contains(msg, "timeout"):
		return ClassTimeout
	case strings.Contains(msg, "connection reset"), strings.Contains(msg, "broken pipe"):
		return ClassReset
	case strings.Contains(msg, "unexpected EOF"), strings.Contains(msg, "truncated"):
		return ClassTruncated
	case strings.Contains(msg, "redirect"):
		return ClassRedirectLoop
	// A refused loopback vhost closes the accepted connection before
	// writing, which the client reads as a bare EOF.
	case strings.Contains(msg, "refused"), strings.Contains(msg, "EOF"),
		strings.Contains(msg, "no such host"):
		return ClassRefused
	default:
		return ClassOther
	}
}

// ClassifyStatus maps a terminal HTTP status to a failure class, or ""
// when the status is not a failure (the crawl treats 4xx pages, like
// real browsers, as successfully loaded content).
func ClassifyStatus(status int) Class {
	switch {
	case status == 451:
		return ClassGeoBlocked
	case status >= 500:
		return Class5xx
	default:
		return ""
	}
}

// Retryable reports whether an attempt failing with err is worth
// retrying: transient transport faults are, caller aborts and
// structural failures (redirect loops, open breakers) are not.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, ErrBreakerOpen) || errors.Is(err, ErrRedirectLoop) {
		return false
	}
	if errors.Is(err, ErrTruncated) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	msg := err.Error()
	if strings.Contains(msg, "context canceled") {
		return false
	}
	for _, transient := range []string{
		"refused", "EOF", "connection reset", "broken pipe",
		"Client.Timeout", "truncated",
	} {
		if strings.Contains(msg, transient) {
			return true
		}
	}
	return false
}

// RetryableStatus reports whether an HTTP status is worth retrying:
// transient server errors and 429 are, everything else is a definitive
// answer.
func RetryableStatus(status int) bool {
	return status == 429 || (status >= 500 && status != 501 && status != 505)
}

// Policy configures retries and the circuit breaker. The zero value
// disables both (single-shot requests, no breaker), so existing callers
// are untouched.
type Policy struct {
	// MaxAttempts is the total tries for one request, including the
	// first; 0 and 1 both mean single-shot.
	MaxAttempts int
	// BaseDelay caps the full-jitter backoff before the first retry
	// (default 50ms); subsequent retries double the cap.
	BaseDelay time.Duration
	// MaxDelay caps any single backoff, including honored Retry-After
	// hints (default 2s).
	MaxDelay time.Duration
	// Seed drives the jitter; a fixed seed reproduces the schedule.
	Seed int64
	// BreakerThreshold opens a host's breaker after this many
	// consecutive failures; 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before
	// half-opening (default 500ms).
	BreakerCooldown time.Duration
	// BreakerProbes is how many trial requests a half-open breaker
	// admits (default 1).
	BreakerProbes int
}

// Active reports whether the policy does anything at all.
func (p Policy) Active() bool { return p.MaxAttempts > 1 || p.BreakerThreshold > 0 }

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 500 * time.Millisecond
	}
	if p.BreakerProbes <= 0 {
		p.BreakerProbes = 1
	}
	return p
}

// State is a circuit breaker state.
type State int

// Breaker states.
const (
	Closed   State = iota // requests flow; consecutive failures counted
	Open                  // requests rejected until the cooldown passes
	HalfOpen              // a bounded number of probe requests admitted
)

func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

type hostBreaker struct {
	state    State
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probes   int       // probes admitted while half-open
}

// Controller applies a Policy: it owns the per-host breakers and the
// seeded jitter source. All methods are safe for concurrent use, and
// every method of a nil *Controller is a no-op that admits everything —
// callers without a policy need no branches.
type Controller struct {
	pol Policy

	mu sync.Mutex
	// guarded by mu
	rng *rand.Rand
	// guarded by mu
	hosts map[string]*hostBreaker
	// guarded by mu
	onTransition func(host string, from, to State)
	// now is the test clock hook.
	// guarded by mu
	now func() time.Time
}

// NewController builds a controller for the policy (nil when the policy
// is entirely inactive, which is valid: all methods no-op).
func NewController(p Policy) *Controller {
	if !p.Active() {
		return nil
	}
	p = p.withDefaults()
	return &Controller{
		pol:   p,
		rng:   rand.New(rand.NewSource(p.Seed)),
		hosts: map[string]*hostBreaker{},
		now:   time.Now,
	}
}

// Policy returns the controller's (defaulted) policy.
func (c *Controller) Policy() Policy {
	if c == nil {
		return Policy{MaxAttempts: 1}
	}
	return c.pol
}

// OnTransition registers a hook called (under no lock held by the
// caller's request path) whenever any host's breaker changes state.
func (c *Controller) OnTransition(fn func(host string, from, to State)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.onTransition = fn
	c.mu.Unlock()
}

// Allow reports whether a request to host may proceed. It returns
// ErrBreakerOpen (wrapped with the host) when the breaker rejects.
func (c *Controller) Allow(host string) error {
	if c == nil || c.pol.BreakerThreshold <= 0 {
		return nil
	}
	c.mu.Lock()
	b := c.breaker(host)
	switch b.state {
	case Open:
		if c.now().Sub(b.openedAt) < c.pol.BreakerCooldown {
			c.mu.Unlock()
			return fmt.Errorf("%s: %w", host, ErrBreakerOpen)
		}
		c.transition(host, b, HalfOpen)
		b.probes = 1
		c.mu.Unlock()
		return nil
	case HalfOpen:
		if b.probes >= c.pol.BreakerProbes {
			c.mu.Unlock()
			return fmt.Errorf("%s: %w", host, ErrBreakerOpen)
		}
		b.probes++
		c.mu.Unlock()
		return nil
	default:
		c.mu.Unlock()
		return nil
	}
}

// Report records the outcome of an attempt against host: failures
// accumulate toward opening the breaker, a half-open success closes it.
func (c *Controller) Report(host string, ok bool) {
	if c == nil || c.pol.BreakerThreshold <= 0 {
		return
	}
	c.mu.Lock()
	b := c.breaker(host)
	switch {
	case ok:
		if b.state != Closed {
			c.transition(host, b, Closed)
		}
		b.fails = 0
	case b.state == HalfOpen:
		// The probe failed: reopen and restart the cooldown.
		c.transition(host, b, Open)
		b.openedAt = c.now()
	case b.state == Closed:
		b.fails++
		if b.fails >= c.pol.BreakerThreshold {
			c.transition(host, b, Open)
			b.openedAt = c.now()
		}
	}
	c.mu.Unlock()
}

// StateOf returns host's current breaker state.
func (c *Controller) StateOf(host string) State {
	if c == nil {
		return Closed
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.hosts[host]; ok {
		return b.state
	}
	return Closed
}

// breaker returns (creating if needed) host's breaker.
// guarded by mu
func (c *Controller) breaker(host string) *hostBreaker {
	b, ok := c.hosts[host]
	if !ok {
		b = &hostBreaker{}
		c.hosts[host] = b
	}
	return b
}

// transition flips b to the new state and fires the hook. The hook
// runs inline under the lock, so it must not call back into the
// controller.
// guarded by mu
func (c *Controller) transition(host string, b *hostBreaker, to State) {
	from := b.state
	b.state = to
	b.fails = 0
	b.probes = 0
	if c.onTransition != nil {
		c.onTransition(host, from, to)
	}
}

// Delay computes the backoff before the retry after the attempt-th try
// (1-based): full jitter over an exponentially growing cap, raised to a
// server Retry-After hint when one was given, and never above MaxDelay.
func (c *Controller) Delay(attempt int, retryAfter time.Duration) time.Duration {
	if c == nil {
		return 0
	}
	if attempt < 1 {
		attempt = 1
	}
	ceil := c.pol.BaseDelay
	for i := 1; i < attempt && ceil < c.pol.MaxDelay; i++ {
		ceil *= 2
	}
	if ceil > c.pol.MaxDelay {
		ceil = c.pol.MaxDelay
	}
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(ceil) + 1))
	c.mu.Unlock()
	if retryAfter > d {
		d = retryAfter
	}
	if d > c.pol.MaxDelay {
		d = c.pol.MaxDelay
	}
	return d
}

// Sleep waits for d or until ctx is done, reporting whether the full
// delay elapsed.
func Sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
