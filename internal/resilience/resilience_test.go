package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ""},
		{fmt.Errorf("wrap: %w", ErrBreakerOpen), ClassBreakerOpen},
		{fmt.Errorf("wrap: %w", ErrRedirectLoop), ClassRedirectLoop},
		{fmt.Errorf("wrap: %w", ErrTruncated), ClassTruncated},
		{context.Canceled, ClassCanceled},
		{context.DeadlineExceeded, ClassTimeout},
		{errors.New(`Get "http://x/": EOF`), ClassRefused},
		{errors.New("read: connection reset by peer"), ClassReset},
		{errors.New("unexpected EOF"), ClassTruncated},
		{errors.New("context deadline exceeded (Client.Timeout exceeded while awaiting headers)"), ClassTimeout},
		{errors.New("dial tcp: lookup x: no such host"), ClassRefused},
		{errors.New("crawler: x.com refused"), ClassRefused},
		{errors.New("something strange"), ClassOther},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestClassifyStatus(t *testing.T) {
	if got := ClassifyStatus(451); got != ClassGeoBlocked {
		t.Errorf("451 -> %q", got)
	}
	if got := ClassifyStatus(503); got != Class5xx {
		t.Errorf("503 -> %q", got)
	}
	for _, st := range []int{200, 204, 302, 404, 429} {
		if got := ClassifyStatus(st); got != "" {
			t.Errorf("%d -> %q, want no class", st, got)
		}
	}
}

func TestRetryable(t *testing.T) {
	if Retryable(nil) {
		t.Error("nil retryable")
	}
	if Retryable(context.Canceled) || Retryable(context.DeadlineExceeded) {
		t.Error("caller aborts must not be retried")
	}
	if Retryable(fmt.Errorf("x: %w", ErrBreakerOpen)) {
		t.Error("breaker rejection must not be retried")
	}
	if !Retryable(errors.New(`Get "http://x/": EOF`)) {
		t.Error("refused connection should be retried")
	}
	if !Retryable(fmt.Errorf("x: %w", ErrTruncated)) {
		t.Error("truncation should be retried")
	}
	if !RetryableStatus(503) || !RetryableStatus(429) || RetryableStatus(404) || RetryableStatus(200) {
		t.Error("status retryability wrong")
	}
}

func TestInactivePolicyNilController(t *testing.T) {
	c := NewController(Policy{})
	if c != nil {
		t.Fatal("inactive policy should produce a nil controller")
	}
	// Every method of a nil controller must be a safe no-op.
	if err := c.Allow("x.com"); err != nil {
		t.Errorf("nil Allow = %v", err)
	}
	c.Report("x.com", false)
	if st := c.StateOf("x.com"); st != Closed {
		t.Errorf("nil StateOf = %v", st)
	}
	if d := c.Delay(3, time.Second); d != 0 {
		t.Errorf("nil Delay = %v", d)
	}
	if p := c.Policy(); p.MaxAttempts != 1 {
		t.Errorf("nil Policy = %+v", p)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	c := NewController(Policy{
		MaxAttempts:      3,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute,
		Seed:             1,
	})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	type tr struct{ from, to State }
	var transitions []tr
	c.OnTransition(func(host string, from, to State) {
		transitions = append(transitions, tr{from, to})
	})

	host := "flaky.com"
	// Closed: failures below threshold keep admitting.
	for i := 0; i < 2; i++ {
		if err := c.Allow(host); err != nil {
			t.Fatalf("closed breaker rejected attempt %d: %v", i, err)
		}
		c.Report(host, false)
	}
	if st := c.StateOf(host); st != Closed {
		t.Fatalf("state after 2 failures = %v", st)
	}
	// Third consecutive failure opens.
	c.Report(host, false)
	if st := c.StateOf(host); st != Open {
		t.Fatalf("state after threshold = %v", st)
	}
	if err := c.Allow(host); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted: %v", err)
	}
	// After the cooldown one probe is admitted (half-open), further
	// requests are rejected until the probe reports.
	now = now.Add(2 * time.Minute)
	if err := c.Allow(host); err != nil {
		t.Fatalf("half-open rejected the probe: %v", err)
	}
	if st := c.StateOf(host); st != HalfOpen {
		t.Fatalf("state during probe = %v", st)
	}
	if err := c.Allow(host); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("half-open admitted a second concurrent probe")
	}
	// Failed probe reopens…
	c.Report(host, false)
	if st := c.StateOf(host); st != Open {
		t.Fatalf("state after failed probe = %v", st)
	}
	// …and a later successful probe closes.
	now = now.Add(2 * time.Minute)
	if err := c.Allow(host); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	c.Report(host, true)
	if st := c.StateOf(host); st != Closed {
		t.Fatalf("state after successful probe = %v", st)
	}
	if err := c.Allow(host); err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	}

	want := []tr{{Closed, Open}, {Open, HalfOpen}, {HalfOpen, Open}, {Open, HalfOpen}, {HalfOpen, Closed}}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, transitions[i], want[i])
		}
	}
}

func TestBreakersArePerHost(t *testing.T) {
	c := NewController(Policy{MaxAttempts: 2, BreakerThreshold: 1, BreakerCooldown: time.Hour})
	c.Report("bad.com", false)
	if err := c.Allow("bad.com"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("bad.com breaker should be open")
	}
	if err := c.Allow("good.com"); err != nil {
		t.Fatalf("good.com affected by bad.com: %v", err)
	}
}

func TestDelayBoundsAndRetryAfter(t *testing.T) {
	pol := Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 42}
	c := NewController(pol)
	for attempt := 1; attempt <= 6; attempt++ {
		ceil := pol.BaseDelay << (attempt - 1)
		if ceil > pol.MaxDelay {
			ceil = pol.MaxDelay
		}
		for i := 0; i < 50; i++ {
			if d := c.Delay(attempt, 0); d < 0 || d > ceil {
				t.Fatalf("Delay(%d) = %v outside [0, %v]", attempt, d, ceil)
			}
		}
	}
	// Retry-After raises the floor but MaxDelay still caps.
	if d := c.Delay(1, 60*time.Millisecond); d < 60*time.Millisecond {
		t.Errorf("Retry-After not honored: %v", d)
	}
	if d := c.Delay(1, time.Hour); d != pol.MaxDelay {
		t.Errorf("Retry-After above MaxDelay not capped: %v", d)
	}
}

func TestDelayDeterministicBySeed(t *testing.T) {
	seq := func() []time.Duration {
		c := NewController(Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: time.Second, Seed: 7})
		var out []time.Duration
		for i := 1; i <= 8; i++ {
			out = append(out, c.Delay(i, 0))
		}
		return out
	}
	a, b := seq(), seq()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not deterministic: %v vs %v", a, b)
		}
	}
}

func TestSleepRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if Sleep(ctx, time.Minute) {
		t.Fatal("sleep completed despite canceled context")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("sleep did not return promptly on cancellation")
	}
	if !Sleep(context.Background(), time.Millisecond) {
		t.Fatal("uncanceled sleep reported interruption")
	}
}
