// Package htmlx implements a small HTML tokenizer, parser, and DOM used by
// the crawlers. The standard library has no HTML parser, and the study needs
// one for three tasks: extracting embedded resources (scripts, iframes,
// images, links), locating cookie-consent banners and age-verification
// interstitials (including inspecting the text of parent and grandparent
// elements, as the paper's Selenium crawler does), and pulling the <head>
// element for owner-attribution similarity.
//
// The parser handles the subset of HTML the generated ecosystem and the
// detection heuristics require: elements with attributes (quoted, unquoted,
// or bare), text, comments, void elements, raw-text elements (script/style
// whose content is not parsed as markup), and auto-recovery from unbalanced
// close tags. It is not a full HTML5 tree builder.
package htmlx

import (
	"strings"
)

// NodeType discriminates DOM node kinds.
type NodeType int

const (
	// ElementNode is a tag such as <div>.
	ElementNode NodeType = iota
	// TextNode is character data.
	TextNode
	// CommentNode is a <!-- comment -->.
	CommentNode
	// DocumentNode is the synthetic root.
	DocumentNode
)

// Node is a DOM node.
type Node struct {
	Type     NodeType
	Tag      string            // lower-case tag name for elements
	Attrs    map[string]string // attribute name (lower-case) -> value
	Text     string            // text for TextNode / CommentNode
	Parent   *Node
	Children []*Node
}

// voidElements never have children.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// rawTextElements have their content treated as raw text until the matching
// close tag.
var rawTextElements = map[string]bool{"script": true, "style": true, "title": true, "textarea": true}

// Parse parses src into a document tree. Parse never fails: malformed input
// degrades into text nodes, matching browser behaviour closely enough for
// the study's detection heuristics.
func Parse(src string) *Node {
	p := parser{src: src}
	doc := &Node{Type: DocumentNode}
	p.parseInto(doc)
	return doc
}

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) parseInto(root *Node) {
	stack := []*Node{root}
	top := func() *Node { return stack[len(stack)-1] }
	appendChild := func(n *Node) {
		n.Parent = top()
		top().Children = append(top().Children, n)
	}
	for !p.eof() {
		if p.src[p.pos] != '<' {
			text := p.readText()
			if strings.TrimSpace(text) != "" || len(stack) > 1 {
				appendChild(&Node{Type: TextNode, Text: text})
			}
			continue
		}
		// '<' seen.
		if strings.HasPrefix(p.src[p.pos:], "<!--") {
			comment := p.readComment()
			appendChild(&Node{Type: CommentNode, Text: comment})
			continue
		}
		if strings.HasPrefix(p.src[p.pos:], "<!") || strings.HasPrefix(p.src[p.pos:], "<?") {
			p.skipDeclaration()
			continue
		}
		if strings.HasPrefix(p.src[p.pos:], "</") {
			tag := p.readCloseTag()
			// Pop to the matching open tag, if present.
			for i := len(stack) - 1; i >= 1; i-- {
				if stack[i].Tag == tag {
					stack = stack[:i]
					break
				}
			}
			continue
		}
		// Open tag (or stray '<').
		node, selfClose, ok := p.readOpenTag()
		if !ok {
			// Stray '<': treat as text.
			appendChild(&Node{Type: TextNode, Text: "<"})
			p.pos++
			continue
		}
		appendChild(node)
		if selfClose || voidElements[node.Tag] {
			continue
		}
		if rawTextElements[node.Tag] {
			raw := p.readRawText(node.Tag)
			if raw != "" {
				child := &Node{Type: TextNode, Text: raw, Parent: node}
				node.Children = append(node.Children, child)
			}
			continue
		}
		stack = append(stack, node)
	}
}

func (p *parser) readText() string {
	start := p.pos
	for !p.eof() && p.src[p.pos] != '<' {
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *parser) readComment() string {
	p.pos += len("<!--")
	end := strings.Index(p.src[p.pos:], "-->")
	if end < 0 {
		c := p.src[p.pos:]
		p.pos = len(p.src)
		return c
	}
	c := p.src[p.pos : p.pos+end]
	p.pos += end + len("-->")
	return c
}

func (p *parser) skipDeclaration() {
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		p.pos = len(p.src)
		return
	}
	p.pos += end + 1
}

func (p *parser) readCloseTag() string {
	p.pos += len("</")
	start := p.pos
	for !p.eof() && p.src[p.pos] != '>' {
		p.pos++
	}
	tag := strings.ToLower(strings.TrimSpace(p.src[start:p.pos]))
	if !p.eof() {
		p.pos++ // consume '>'
	}
	return tag
}

// readOpenTag parses "<tag attr=val ...>" starting at '<'. It reports
// whether the tag was self-closing and whether a valid tag was read at all.
func (p *parser) readOpenTag() (node *Node, selfClose, ok bool) {
	i := p.pos + 1
	if i >= len(p.src) || !isTagStart(p.src[i]) {
		return nil, false, false
	}
	start := i
	for i < len(p.src) && isTagChar(p.src[i]) {
		i++
	}
	tag := strings.ToLower(p.src[start:i])
	node = &Node{Type: ElementNode, Tag: tag, Attrs: map[string]string{}}
	// Attributes.
	for i < len(p.src) {
		for i < len(p.src) && isSpace(p.src[i]) {
			i++
		}
		if i >= len(p.src) {
			break
		}
		if p.src[i] == '>' {
			i++
			p.pos = i
			return node, false, true
		}
		if p.src[i] == '/' {
			i++
			for i < len(p.src) && p.src[i] != '>' {
				i++
			}
			if i < len(p.src) {
				i++
			}
			p.pos = i
			return node, true, true
		}
		// Attribute name.
		nameStart := i
		for i < len(p.src) && !isSpace(p.src[i]) && p.src[i] != '=' && p.src[i] != '>' && p.src[i] != '/' {
			i++
		}
		name := strings.ToLower(p.src[nameStart:i])
		if name == "" {
			i++
			continue
		}
		for i < len(p.src) && isSpace(p.src[i]) {
			i++
		}
		if i < len(p.src) && p.src[i] == '=' {
			i++
			for i < len(p.src) && isSpace(p.src[i]) {
				i++
			}
			var val string
			if i < len(p.src) && (p.src[i] == '"' || p.src[i] == '\'') {
				q := p.src[i]
				i++
				valStart := i
				for i < len(p.src) && p.src[i] != q {
					i++
				}
				val = p.src[valStart:i]
				if i < len(p.src) {
					i++
				}
			} else {
				valStart := i
				for i < len(p.src) && !isSpace(p.src[i]) && p.src[i] != '>' {
					i++
				}
				val = p.src[valStart:i]
			}
			node.Attrs[name] = val
		} else {
			node.Attrs[name] = ""
		}
	}
	p.pos = i
	return node, false, true
}

// readRawText consumes content up to (and including) </tag>.
func (p *parser) readRawText(tag string) string {
	lower := strings.ToLower(p.src[p.pos:])
	closeTag := "</" + tag
	end := strings.Index(lower, closeTag)
	if end < 0 {
		raw := p.src[p.pos:]
		p.pos = len(p.src)
		return raw
	}
	raw := p.src[p.pos : p.pos+end]
	p.pos += end
	// Consume through '>'.
	gt := strings.IndexByte(p.src[p.pos:], '>')
	if gt < 0 {
		p.pos = len(p.src)
	} else {
		p.pos += gt + 1
	}
	return raw
}

func isTagStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isTagChar(c byte) bool {
	return isTagStart(c) || c >= '0' && c <= '9' || c == '-' || c == ':'
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// Attr returns the value of the named attribute, or "".
func (n *Node) Attr(name string) string {
	if n == nil || n.Attrs == nil {
		return ""
	}
	return n.Attrs[strings.ToLower(name)]
}

// HasAttr reports whether the named attribute is present (even if empty).
func (n *Node) HasAttr(name string) bool {
	if n == nil || n.Attrs == nil {
		return false
	}
	_, ok := n.Attrs[strings.ToLower(name)]
	return ok
}

// Walk visits n and all descendants in document order. If fn returns false
// the walk stops.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil {
		return
	}
	stop := false
	var rec func(*Node)
	rec = func(m *Node) {
		if stop {
			return
		}
		if !fn(m) {
			stop = true
			return
		}
		for _, c := range m.Children {
			rec(c)
		}
	}
	rec(n)
}

// ElementsByTag returns all descendant elements (including n itself) with
// the given tag name.
func (n *Node) ElementsByTag(tag string) []*Node {
	tag = strings.ToLower(tag)
	var out []*Node
	n.Walk(func(m *Node) bool {
		if m.Type == ElementNode && m.Tag == tag {
			out = append(out, m)
		}
		return true
	})
	return out
}

// First returns the first descendant element with the tag, or nil.
func (n *Node) First(tag string) *Node {
	tag = strings.ToLower(tag)
	var found *Node
	n.Walk(func(m *Node) bool {
		if m.Type == ElementNode && m.Tag == tag {
			found = m
			return false
		}
		return true
	})
	return found
}

// InnerText concatenates all descendant text nodes, collapsing runs of
// whitespace into single spaces.
func (n *Node) InnerText() string {
	var b strings.Builder
	n.Walk(func(m *Node) bool {
		if m.Type == TextNode {
			b.WriteString(m.Text)
			b.WriteByte(' ')
		}
		return true
	})
	return strings.Join(strings.Fields(b.String()), " ")
}

// Ancestor returns the n-th ancestor of the node (1 = parent, 2 =
// grandparent), or nil if the tree is not that deep. The paper's
// age-verification detector inspects the text of the parent and grandparent
// of keyword-bearing elements.
func (n *Node) Ancestor(level int) *Node {
	cur := n
	for i := 0; i < level && cur != nil; i++ {
		cur = cur.Parent
	}
	return cur
}

// Links returns the href values of all <a> descendants.
func (n *Node) Links() []string {
	var out []string
	for _, a := range n.ElementsByTag("a") {
		if href := a.Attr("href"); href != "" {
			out = append(out, href)
		}
	}
	return out
}

// Resource is an embedded subresource reference found in a document.
type Resource struct {
	Tag string // script, img, iframe, link
	URL string
}

// Resources extracts the embedded subresources a browser would fetch:
// <script src>, <img src>, <iframe src>, and <link rel=stylesheet href>.
func (n *Node) Resources() []Resource {
	var out []Resource
	n.Walk(func(m *Node) bool {
		if m.Type != ElementNode {
			return true
		}
		switch m.Tag {
		case "script", "img", "iframe":
			if src := m.Attr("src"); src != "" {
				out = append(out, Resource{Tag: m.Tag, URL: src})
			}
		case "link":
			rel := strings.ToLower(m.Attr("rel"))
			if href := m.Attr("href"); href != "" && (rel == "stylesheet" || rel == "icon") {
				out = append(out, Resource{Tag: m.Tag, URL: href})
			}
		}
		return true
	})
	return out
}

// InlineScripts returns the text content of all <script> elements with no
// src attribute.
func (n *Node) InlineScripts() []string {
	var out []string
	for _, s := range n.ElementsByTag("script") {
		if s.Attr("src") == "" {
			var b strings.Builder
			for _, c := range s.Children {
				if c.Type == TextNode {
					b.WriteString(c.Text)
				}
			}
			if b.Len() > 0 {
				out = append(out, b.String())
			}
		}
	}
	return out
}

// MetaRTA reports whether the document carries the Restricted-To-Adults
// meta tag promoted by ASACP (Section 2.1 of the paper).
func (n *Node) MetaRTA() bool {
	for _, m := range n.ElementsByTag("meta") {
		if strings.EqualFold(m.Attr("name"), "rating") &&
			strings.Contains(strings.ToUpper(m.Attr("content")), "RTA-5042") {
			return true
		}
	}
	return false
}
