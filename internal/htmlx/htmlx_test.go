package htmlx

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimple(t *testing.T) {
	doc := Parse(`<html><head><title>Hi</title></head><body><p class="x">Hello <b>world</b></p></body></html>`)
	html := doc.First("html")
	if html == nil {
		t.Fatal("no <html> element")
	}
	p := doc.First("p")
	if p == nil {
		t.Fatal("no <p> element")
	}
	if p.Attr("class") != "x" {
		t.Errorf("p class = %q, want x", p.Attr("class"))
	}
	if got := p.InnerText(); got != "Hello world" {
		t.Errorf("InnerText = %q, want %q", got, "Hello world")
	}
	title := doc.First("title")
	if title == nil || title.InnerText() != "Hi" {
		t.Errorf("title text wrong: %v", title)
	}
}

func TestParseAttributes(t *testing.T) {
	doc := Parse(`<a href="https://x.com/p" data-id='7' checked target=_blank>link</a>`)
	a := doc.First("a")
	if a == nil {
		t.Fatal("no <a>")
	}
	if a.Attr("href") != "https://x.com/p" {
		t.Errorf("href = %q", a.Attr("href"))
	}
	if a.Attr("data-id") != "7" {
		t.Errorf("data-id = %q", a.Attr("data-id"))
	}
	if !a.HasAttr("checked") {
		t.Error("checked attr missing")
	}
	if a.Attr("target") != "_blank" {
		t.Errorf("target = %q", a.Attr("target"))
	}
}

func TestVoidElements(t *testing.T) {
	doc := Parse(`<div><img src="a.png"><br><p>after</p></div>`)
	img := doc.First("img")
	if img == nil {
		t.Fatal("no img")
	}
	if len(img.Children) != 0 {
		t.Error("void element must have no children")
	}
	p := doc.First("p")
	if p == nil || p.Parent.Tag != "div" {
		t.Error("p should be child of div (img must not swallow it)")
	}
}

func TestSelfClosing(t *testing.T) {
	doc := Parse(`<div><span/><em>x</em></div>`)
	em := doc.First("em")
	if em == nil || em.Parent.Tag != "div" {
		t.Error("em should be sibling of self-closed span under div")
	}
}

func TestScriptRawText(t *testing.T) {
	doc := Parse(`<script>if (a < b) { x("<div>"); }</script><p>t</p>`)
	scripts := doc.InlineScripts()
	if len(scripts) != 1 {
		t.Fatalf("InlineScripts = %d, want 1", len(scripts))
	}
	if !strings.Contains(scripts[0], `x("<div>")`) {
		t.Errorf("script content mangled: %q", scripts[0])
	}
	if doc.First("p") == nil {
		t.Error("content after script lost")
	}
	if doc.First("div") != nil {
		t.Error("markup inside script must not become elements")
	}
}

func TestComments(t *testing.T) {
	doc := Parse(`<div><!-- hidden <b>not bold</b> --><i>x</i></div>`)
	if doc.First("b") != nil {
		t.Error("markup inside comment must not parse")
	}
	var comments int
	doc.Walk(func(n *Node) bool {
		if n.Type == CommentNode {
			comments++
		}
		return true
	})
	if comments != 1 {
		t.Errorf("comments = %d, want 1", comments)
	}
}

func TestDoctype(t *testing.T) {
	doc := Parse(`<!DOCTYPE html><html><body>x</body></html>`)
	if doc.First("html") == nil {
		t.Error("doctype broke parsing")
	}
}

func TestUnbalancedCloseTags(t *testing.T) {
	doc := Parse(`<div><p>a</span></p>b</div>`)
	div := doc.First("div")
	if div == nil {
		t.Fatal("no div")
	}
	if got := div.InnerText(); got != "a b" {
		t.Errorf("InnerText = %q, want %q", got, "a b")
	}
}

func TestAncestor(t *testing.T) {
	doc := Parse(`<div id="g"><section id="p"><button id="c">Enter</button></section></div>`)
	btn := doc.First("button")
	if btn == nil {
		t.Fatal("no button")
	}
	if got := btn.Ancestor(1); got == nil || got.Attr("id") != "p" {
		t.Errorf("parent wrong: %v", got)
	}
	if got := btn.Ancestor(2); got == nil || got.Attr("id") != "g" {
		t.Errorf("grandparent wrong: %v", got)
	}
}

func TestLinks(t *testing.T) {
	doc := Parse(`<a href="/privacy">Privacy Policy</a><a>no href</a><a href="/terms">T</a>`)
	links := doc.Links()
	if len(links) != 2 || links[0] != "/privacy" || links[1] != "/terms" {
		t.Errorf("Links = %v", links)
	}
}

func TestResources(t *testing.T) {
	doc := Parse(`<head><link rel="stylesheet" href="/s.css"><link rel="preload" href="/x"></head>
<body><script src="https://ads.example/a.js"></script><img src="/pix.gif"><iframe src="//sync.example/if"></iframe></body>`)
	res := doc.Resources()
	if len(res) != 4 {
		t.Fatalf("Resources = %v, want 4 entries", res)
	}
	tags := map[string]int{}
	for _, r := range res {
		tags[r.Tag]++
	}
	if tags["script"] != 1 || tags["img"] != 1 || tags["iframe"] != 1 || tags["link"] != 1 {
		t.Errorf("resource tags = %v", tags)
	}
}

func TestInlineScripts(t *testing.T) {
	doc := Parse(`<script src="/ext.js"></script><script>inline1()</script><script>inline2()</script>`)
	in := doc.InlineScripts()
	if len(in) != 2 {
		t.Fatalf("InlineScripts = %d, want 2", len(in))
	}
}

func TestMetaRTA(t *testing.T) {
	with := Parse(`<head><meta name="RATING" content="RTA-5042-1996-1400-1577-RTA"></head>`)
	if !with.MetaRTA() {
		t.Error("RTA tag not detected")
	}
	without := Parse(`<head><meta name="rating" content="general"></head>`)
	if without.MetaRTA() {
		t.Error("false positive RTA")
	}
}

func TestElementsByTagCount(t *testing.T) {
	doc := Parse(`<ul><li>1</li><li>2</li><li>3</li></ul>`)
	if n := len(doc.ElementsByTag("li")); n != 3 {
		t.Errorf("li count = %d, want 3", n)
	}
}

func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		doc := Parse(s)
		return doc != nil && doc.Type == DocumentNode
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Adversarial fragments.
	for _, s := range []string{"<", "<<", "</", "<a", "<a href=", `<a href="x`, "<!--", "<script>", "<!doctype", "</>", "<a/ >", "< div>"} {
		Parse(s) // must not panic
	}
}

func TestParentPointersConsistent(t *testing.T) {
	doc := Parse(`<div><p><b>x</b></p><span>y</span></div>`)
	doc.Walk(func(n *Node) bool {
		for _, c := range n.Children {
			if c.Parent != n {
				t.Errorf("child %v has wrong parent", c)
			}
		}
		return true
	})
}

func TestNilNodeHelpers(t *testing.T) {
	var n *Node
	if n.Attr("x") != "" || n.HasAttr("x") {
		t.Error("nil node attr helpers must be safe")
	}
	n.Walk(func(*Node) bool { return true }) // must not panic
}

func TestWalkStop(t *testing.T) {
	doc := Parse(`<a></a><b></b><c></c>`)
	var visited []string
	doc.Walk(func(n *Node) bool {
		if n.Type == ElementNode {
			visited = append(visited, n.Tag)
			return n.Tag != "b"
		}
		return true
	})
	if len(visited) != 2 || visited[1] != "b" {
		t.Errorf("walk did not stop at b: %v", visited)
	}
}
