package blocklist

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary filter-list text at the ABP-syntax parser
// and the matcher behind it. Parse must never panic, must never keep
// comment or cosmetic lines as rules, and the resulting list must answer
// Match/CoversHost without panicking for any input.
func FuzzParse(f *testing.F) {
	f.Add("||tracker.example^$third-party\n! comment\nexample.com##.ad")
	f.Add("||ads.example^")
	f.Add("@@||cdn.example^$script")
	f.Add("/banner/*/img^")
	f.Add("||x")
	f.Add("|http://example.com/|")
	f.Add("$third-party")
	f.Add("||\x00odd^$bad-option=,,")
	f.Fuzz(func(t *testing.T, text string) {
		lines := strings.Split(text, "\n")
		l := Parse("fuzz", lines)
		if l == nil {
			t.Fatal("Parse returned nil")
		}
		if l.Len() > len(lines) {
			t.Fatalf("parsed %d rules from %d lines", l.Len(), len(lines))
		}
		// The parsed list must be usable, whatever the rules look like.
		l.Match(Request{URL: "https://tracker.example/banner/ad.js", SiteHost: "site.example", Type: TypeScript})
		l.MatchURL("http://ads.example/x", "site.example")
		l.CoversHost("tracker.example")
		l.CoversHost(text)
	})
}
