// Package blocklist implements an Adblock-Plus filter-rule engine covering
// the EasyList/EasyPrivacy syntax subset the study needs: domain-anchored
// rules (||example.com^), start anchors (|http://...), plain substrings,
// the ^ separator wildcard, * wildcards, exception rules (@@...), and the
// $third-party, $script, $image, $subdocument and $domain= options.
//
// The paper matches the full URL of every crawled request against EasyList
// and EasyPrivacy to identify advertising and tracking services (ATSes),
// and then relaxes matching to the base domain to count ATS organizations
// (Section 4.2). MatchURL implements the former, CoversHost the latter.
package blocklist

import (
	"strings"
	"sync"

	"pornweb/internal/domain"
	"pornweb/internal/obs"
)

// ResourceType classifies the request for $-option matching.
type ResourceType int

// Resource types distinguished by the engine.
const (
	TypeOther ResourceType = iota
	TypeScript
	TypeImage
	TypeSubdocument
	TypeStylesheet
	TypeXHR
)

// Request is a crawled request to be tested against the list.
type Request struct {
	URL        string // full URL, e.g. https://ads.example.com/track?x=1
	Host       string // request host
	SiteHost   string // the visited site's host
	ThirdParty bool
	Type       ResourceType
}

type rule struct {
	raw        string
	exception  bool
	domainRule bool     // ||host^ style
	anchorHost string   // host for domainRule
	startMatch string   // |http... style
	pattern    []string // substring pattern split on '*'
	endAnchor  bool     // pattern ended with '|'
	sepEnd     bool     // pattern ended with '^'

	optThirdParty int // 0 unset, 1 require, -1 forbid
	optTypes      map[ResourceType]bool
	optNotTypes   map[ResourceType]bool
	optDomains    []string
	optNotDomains []string
}

// List is a parsed filter list.
type List struct {
	Name  string
	rules []rule

	// Lazily-built indexes: scanning every rule per request is quadratic
	// over a paper-scale crawl. Domain-anchored block rules are indexed by
	// their anchor host; generic (substring/start-anchor) rules and
	// exceptions stay in small linear lists.
	indexOnce  sync.Once
	byAnchor   map[string][]int // anchorHost -> indexes of block domain rules
	genericIdx []int            // block rules without a domain anchor
	exceptIdx  []int            // exception rules (any shape)

	// Optional match telemetry, resolved by Instrument; nil counters
	// no-op.
	checks    *obs.Counter
	blocked   *obs.Counter
	excepted  *obs.Counter
	hostCover *obs.Counter
}

// Instrument registers the list's match counters (labeled by list name)
// in reg: every Match call, every block verdict, every exception save and
// every CoversHost hit.
func (l *List) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Describe("blocklist_checks_total", "requests tested against a filter list")
	reg.Describe("blocklist_blocked_total", "requests a filter list would block")
	reg.Describe("blocklist_exceptions_total", "block verdicts overridden by @@ exception rules")
	reg.Describe("blocklist_host_covers_total", "relaxed base-FQDN matches (CoversHost hits)")
	l.checks = reg.Counter("blocklist_checks_total", "list", l.Name)
	l.blocked = reg.Counter("blocklist_blocked_total", "list", l.Name)
	l.excepted = reg.Counter("blocklist_exceptions_total", "list", l.Name)
	l.hostCover = reg.Counter("blocklist_host_covers_total", "list", l.Name)
}

func (l *List) ensureIndex() {
	l.indexOnce.Do(func() {
		l.byAnchor = map[string][]int{}
		for i := range l.rules {
			r := &l.rules[i]
			switch {
			case r.exception:
				l.exceptIdx = append(l.exceptIdx, i)
			case r.domainRule:
				l.byAnchor[r.anchorHost] = append(l.byAnchor[r.anchorHost], i)
			default:
				l.genericIdx = append(l.genericIdx, i)
			}
		}
	})
}

// anchorCandidates calls fn with the index of every domain rule whose
// anchor is the host or one of its parent domains.
func (l *List) anchorCandidates(host string, fn func(i int) bool) {
	for {
		for _, i := range l.byAnchor[host] {
			if !fn(i) {
				return
			}
		}
		dot := strings.IndexByte(host, '.')
		if dot < 0 {
			return
		}
		host = host[dot+1:]
	}
}

// Parse builds a List from filter lines. Comments (!), section headers
// ([...]), element-hiding rules (##, #@#), and empty lines are skipped.
func Parse(name string, lines []string) *List {
	l := &List{Name: name}
	for _, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "[") {
			continue
		}
		if strings.Contains(line, "##") || strings.Contains(line, "#@#") || strings.Contains(line, "#?#") {
			continue // element hiding: out of scope
		}
		if r, ok := parseRule(line); ok {
			l.rules = append(l.rules, r)
		}
	}
	return l
}

// Len returns the number of network rules in the list.
func (l *List) Len() int { return len(l.rules) }

func parseRule(line string) (rule, bool) {
	r := rule{raw: line}
	body := line
	if strings.HasPrefix(body, "@@") {
		r.exception = true
		body = body[2:]
	}
	// Split off options.
	if i := strings.LastIndexByte(body, '$'); i >= 0 && i < len(body)-1 && !strings.Contains(body[i:], "/") {
		opts := body[i+1:]
		body = body[:i]
		if !parseOptions(&r, opts) {
			return rule{}, false
		}
	}
	if body == "" {
		return rule{}, false
	}
	switch {
	case strings.HasPrefix(body, "||"):
		r.domainRule = true
		host := body[2:]
		r.sepEnd = strings.HasSuffix(host, "^")
		host = strings.TrimSuffix(host, "^")
		// ||host/path^ rules keep the path as a pattern.
		if slash := strings.IndexByte(host, '/'); slash >= 0 {
			r.pattern = strings.Split(host[slash:], "*")
			host = host[:slash]
		}
		r.anchorHost = strings.ToLower(host)
		if r.anchorHost == "" {
			return rule{}, false
		}
	case strings.HasPrefix(body, "|"):
		body = body[1:]
		r.endAnchor = strings.HasSuffix(body, "|")
		body = strings.TrimSuffix(body, "|")
		r.startMatch = body
	default:
		r.endAnchor = strings.HasSuffix(body, "|")
		body = strings.TrimSuffix(body, "|")
		r.sepEnd = strings.HasSuffix(body, "^")
		body = strings.TrimSuffix(body, "^")
		if body == "" {
			return rule{}, false
		}
		r.pattern = strings.Split(body, "*")
	}
	return r, true
}

func parseOptions(r *rule, opts string) bool {
	for _, opt := range strings.Split(opts, ",") {
		opt = strings.TrimSpace(opt)
		neg := strings.HasPrefix(opt, "~")
		opt = strings.TrimPrefix(opt, "~")
		switch {
		case opt == "third-party":
			if neg {
				r.optThirdParty = -1
			} else {
				r.optThirdParty = 1
			}
		case opt == "script", opt == "image", opt == "subdocument", opt == "stylesheet", opt == "xmlhttprequest":
			t := map[string]ResourceType{
				"script": TypeScript, "image": TypeImage, "subdocument": TypeSubdocument,
				"stylesheet": TypeStylesheet, "xmlhttprequest": TypeXHR,
			}[opt]
			if neg {
				if r.optNotTypes == nil {
					r.optNotTypes = map[ResourceType]bool{}
				}
				r.optNotTypes[t] = true
			} else {
				if r.optTypes == nil {
					r.optTypes = map[ResourceType]bool{}
				}
				r.optTypes[t] = true
			}
		case strings.HasPrefix(opt, "domain="):
			for _, d := range strings.Split(opt[len("domain="):], "|") {
				d = strings.TrimSpace(d)
				if strings.HasPrefix(d, "~") {
					r.optNotDomains = append(r.optNotDomains, strings.ToLower(d[1:]))
				} else {
					r.optDomains = append(r.optDomains, strings.ToLower(d))
				}
			}
		default:
			// Unknown option: keep the rule but ignore the option, as the
			// crawler cannot evaluate it (matches ABP's permissive stance
			// for, e.g., $popup in a non-UI context would be wrong to drop
			// entirely — the paper's matching is URL-centric).
		}
	}
	return true
}

func (r *rule) matches(req Request) bool {
	if r.optThirdParty == 1 && !req.ThirdParty {
		return false
	}
	if r.optThirdParty == -1 && req.ThirdParty {
		return false
	}
	if r.optTypes != nil && !r.optTypes[req.Type] {
		return false
	}
	if r.optNotTypes != nil && r.optNotTypes[req.Type] {
		return false
	}
	if len(r.optDomains) > 0 {
		ok := false
		for _, d := range r.optDomains {
			if domain.IsSubdomain(req.SiteHost, d) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, d := range r.optNotDomains {
		if domain.IsSubdomain(req.SiteHost, d) {
			return false
		}
	}
	url := req.URL
	switch {
	case r.domainRule:
		host := req.Host
		if host == "" {
			host = hostOf(url)
		}
		if !domain.IsSubdomain(host, r.anchorHost) {
			return false
		}
		if len(r.pattern) > 0 {
			_, after, found := strings.Cut(url, host)
			if !found {
				return false
			}
			return patternMatches(after, r.pattern, false, r.sepEnd)
		}
		return true
	case r.startMatch != "":
		if !strings.HasPrefix(url, r.startMatch) {
			return false
		}
		if r.endAnchor && url != r.startMatch {
			return false
		}
		return true
	default:
		return patternMatches(url, r.pattern, r.endAnchor, r.sepEnd)
	}
}

// patternMatches checks that the '*'-separated pieces appear in order in s.
func patternMatches(s string, pieces []string, endAnchor, sepEnd bool) bool {
	pos := 0
	lastEnd := 0
	for i, p := range pieces {
		if p == "" {
			continue
		}
		idx := strings.Index(s[pos:], p)
		if idx < 0 {
			return false
		}
		pos += idx + len(p)
		if i == len(pieces)-1 {
			lastEnd = pos
		}
	}
	if endAnchor && lastEnd != len(s) {
		return false
	}
	if sepEnd && lastEnd < len(s) {
		// Separator: next char must be a non-letter/digit, non -._%
		c := s[lastEnd]
		if isWordChar(c) {
			return false
		}
	}
	return true
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '-' || c == '.' || c == '_' || c == '%'
}

func hostOf(url string) string {
	s := url
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '/' || s[i] == '?' || s[i] == '#' || s[i] == ':' {
			return strings.ToLower(s[:i])
		}
	}
	return strings.ToLower(s)
}

// Match tests req against the list. Exception rules override block rules.
// It returns whether the request is blocked and the raw text of the
// deciding rule.
func (l *List) Match(req Request) (blocked bool, by string) {
	l.checks.Inc()
	if req.Host == "" {
		req.Host = hostOf(req.URL)
	}
	l.ensureIndex()
	var blockedBy string
	l.anchorCandidates(req.Host, func(i int) bool {
		if l.rules[i].matches(req) {
			blockedBy = l.rules[i].raw
			return false
		}
		return true
	})
	if blockedBy == "" {
		for _, i := range l.genericIdx {
			if l.rules[i].matches(req) {
				blockedBy = l.rules[i].raw
				break
			}
		}
	}
	if blockedBy == "" {
		return false, ""
	}
	for _, i := range l.exceptIdx {
		if l.rules[i].matches(req) {
			l.excepted.Inc()
			return false, l.rules[i].raw
		}
	}
	l.blocked.Inc()
	return true, blockedBy
}

// MatchURL is the URL-centric matching the paper performs: the full request
// URL against the list, with third-party context derived from siteHost.
func (l *List) MatchURL(url, siteHost string) bool {
	host := hostOf(url)
	blocked, _ := l.Match(Request{
		URL:        url,
		Host:       host,
		SiteHost:   siteHost,
		ThirdParty: domain.Base(host) != domain.Base(siteHost),
	})
	return blocked
}

// CoversHost implements the paper's relaxed base-FQDN matching: it reports
// whether any domain-anchored block rule covers host (used to count ATS
// organizations rather than URL instances).
func (l *List) CoversHost(host string) bool {
	host = domain.Normalize(host)
	l.ensureIndex()
	covered := false
	l.anchorCandidates(host, func(i int) bool {
		if len(l.rules[i].pattern) == 0 {
			covered = true
			return false
		}
		return true
	})
	if covered {
		l.hostCover.Inc()
	}
	return covered
}

// Merge returns a new list containing the rules of all inputs, in order.
// The paper combines EasyList and EasyPrivacy this way.
func Merge(name string, lists ...*List) *List {
	out := &List{Name: name}
	for _, l := range lists {
		out.rules = append(out.rules, l.rules...)
	}
	return out
}
