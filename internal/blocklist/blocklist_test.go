package blocklist

import (
	"testing"
	"testing/quick"
)

func list(lines ...string) *List { return Parse("test", lines) }

func TestDomainAnchor(t *testing.T) {
	l := list("||doubleclick.net^")
	if !l.MatchURL("https://ad.doubleclick.net/ddm/activity", "news.example") {
		t.Error("subdomain of anchored domain should match")
	}
	if !l.MatchURL("http://doubleclick.net/", "news.example") {
		t.Error("exact anchored domain should match")
	}
	if l.MatchURL("https://notdoubleclick.net/x", "news.example") {
		t.Error("suffix-similar host must not match")
	}
}

func TestPathRuleOnDomain(t *testing.T) {
	// The paper's example: bbc.co.uk is not blacklisted, but
	// bbc.co.uk/analytics is.
	l := list("||bbc.co.uk/analytics")
	if l.MatchURL("https://bbc.co.uk/news", "other.example") {
		t.Error("plain page must not match")
	}
	if !l.MatchURL("https://bbc.co.uk/analytics?id=1", "other.example") {
		t.Error("analytics path should match")
	}
}

func TestSubstringRule(t *testing.T) {
	l := list("/pixel.gif?")
	if !l.MatchURL("http://x.example/pixel.gif?uid=2", "site.example") {
		t.Error("substring should match")
	}
	if l.MatchURL("http://x.example/pixel.gift", "site.example") {
		t.Error("must not match without ?")
	}
}

func TestWildcardRule(t *testing.T) {
	l := list("/ads/*/banner")
	if !l.MatchURL("http://x.example/ads/v2/banner.png", "s.example") {
		t.Error("wildcard should match")
	}
	if l.MatchURL("http://x.example/ads/banner", "s.example") {
		t.Error("wildcard needs middle segment")
	}
}

func TestSeparatorSemantics(t *testing.T) {
	l := list("||ads.example.com^")
	if !l.MatchURL("http://ads.example.com/x", "s.example") {
		t.Error("separator ^ should accept /")
	}
	// Separator in substring rule.
	l2 := list("track^")
	if !l2.MatchURL("http://x.example/track?id=1", "s.example") {
		t.Error("^ should match ? boundary")
	}
	if l2.MatchURL("http://x.example/tracker", "s.example") {
		t.Error("^ must reject word char continuation")
	}
}

func TestStartAnchor(t *testing.T) {
	l := list("|http://banner.")
	if !l.MatchURL("http://banner.example/x", "s.example") {
		t.Error("start anchor should match")
	}
	if l.MatchURL("https://banner.example/x", "s.example") {
		t.Error("start anchor must not match https")
	}
}

func TestEndAnchor(t *testing.T) {
	l := list("swf|")
	if !l.MatchURL("http://x.example/movie.swf", "s.example") {
		t.Error("end anchor should match at end")
	}
	if l.MatchURL("http://x.example/movie.swf?x=1", "s.example") {
		t.Error("end anchor must not match mid-URL")
	}
}

func TestExceptionRule(t *testing.T) {
	l := list("||tracker.example^", "@@||tracker.example/required.js")
	if l.MatchURL("https://tracker.example/required.js", "s.example") {
		t.Error("exception should unblock")
	}
	if !l.MatchURL("https://tracker.example/spy.js", "s.example") {
		t.Error("non-excepted URL should stay blocked")
	}
}

func TestThirdPartyOption(t *testing.T) {
	l := list("||widgets.example^$third-party")
	blocked, _ := l.Match(Request{URL: "https://widgets.example/w.js", Host: "widgets.example", SiteHost: "news.example", ThirdParty: true})
	if !blocked {
		t.Error("third-party request should match")
	}
	blocked, _ = l.Match(Request{URL: "https://widgets.example/w.js", Host: "widgets.example", SiteHost: "widgets.example", ThirdParty: false})
	if blocked {
		t.Error("first-party request must not match $third-party rule")
	}
}

func TestTypeOptions(t *testing.T) {
	l := list("||cdn.example^$script")
	blocked, _ := l.Match(Request{URL: "https://cdn.example/a.js", Host: "cdn.example", SiteHost: "s.example", ThirdParty: true, Type: TypeScript})
	if !blocked {
		t.Error("script should match $script rule")
	}
	blocked, _ = l.Match(Request{URL: "https://cdn.example/a.png", Host: "cdn.example", SiteHost: "s.example", ThirdParty: true, Type: TypeImage})
	if blocked {
		t.Error("image must not match $script rule")
	}
}

func TestDomainOption(t *testing.T) {
	l := list("/ad.js$domain=porn.example|~sub.porn.example")
	blocked, _ := l.Match(Request{URL: "http://x.example/ad.js", SiteHost: "porn.example", ThirdParty: true})
	if !blocked {
		t.Error("listed domain should match")
	}
	blocked, _ = l.Match(Request{URL: "http://x.example/ad.js", SiteHost: "sub.porn.example", ThirdParty: true})
	if blocked {
		t.Error("negated domain must not match")
	}
	blocked, _ = l.Match(Request{URL: "http://x.example/ad.js", SiteHost: "unrelated.example", ThirdParty: true})
	if blocked {
		t.Error("unlisted domain must not match")
	}
}

func TestCommentsAndHeaders(t *testing.T) {
	l := list("[Adblock Plus 2.0]", "! comment", "", "##.ad-banner", "||real.example^")
	if l.Len() != 1 {
		t.Errorf("rules = %d, want 1", l.Len())
	}
}

func TestCoversHost(t *testing.T) {
	l := list("||exoclick.com^", "||bbc.co.uk/analytics", "@@||good.example^")
	if !l.CoversHost("main.exoclick.com") {
		t.Error("subdomain should be covered")
	}
	if l.CoversHost("bbc.co.uk") {
		t.Error("path rule must not cover whole host")
	}
	if l.CoversHost("good.example") {
		t.Error("exception rule must not count as coverage")
	}
	if l.CoversHost("other.example") {
		t.Error("unlisted host must not be covered")
	}
}

func TestMerge(t *testing.T) {
	a := list("||a.example^")
	b := list("||b.example^")
	m := Merge("combined", a, b)
	if m.Len() != 2 {
		t.Fatalf("merged len = %d, want 2", m.Len())
	}
	if !m.MatchURL("http://a.example/", "s.example") || !m.MatchURL("http://b.example/", "s.example") {
		t.Error("merged list should match both")
	}
}

func TestMatchReturnsRule(t *testing.T) {
	l := list("||spy.example^")
	blocked, by := l.Match(Request{URL: "http://spy.example/x", Host: "spy.example", SiteHost: "s.example", ThirdParty: true})
	if !blocked || by != "||spy.example^" {
		t.Errorf("Match = %v, %q", blocked, by)
	}
}

func TestParseNeverPanics(t *testing.T) {
	f := func(line string) bool {
		l := Parse("fuzz", []string{line})
		l.MatchURL("http://x.example/path?q=1", "s.example")
		l.CoversHost("x.example")
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	for _, s := range []string{"||", "|", "@@", "^", "*", "$", "a$domain=", "||^", "@@$third-party"} {
		Parse("edge", []string{s})
	}
}

func TestUnknownOptionKept(t *testing.T) {
	l := list("||popup.example^$popup")
	if l.Len() != 1 {
		t.Error("rule with unknown option should be kept")
	}
	if !l.MatchURL("http://popup.example/x", "s.example") {
		t.Error("rule should match, ignoring the unknown option")
	}
}
