package core

import (
	"context"
	"encoding/json"
	"fmt"

	"pornweb/internal/browser"
	"pornweb/internal/provenance"
	"pornweb/internal/shard"
)

// Fingerprint exposes the study's config fingerprint — the identity
// every shard assignment and the durable store are bound to. Worker
// processes use it to refuse assignments from a foreign configuration.
func (st *Study) Fingerprint() string { return st.fingerprint }

// Coordinator exposes the shard coordinator, nil unless Cfg.Shards > 1.
func (st *Study) Coordinator() *shard.Coordinator { return st.coord }

// RunShard implements shard.Runner: visit every host of the assignment
// with this study's browser and return each completed visit in its
// durable serialized form — the exact bytes a serial store-backed run
// would persist for that site. Entries are a pure function of (seed,
// config, site): visits use per-site cookie jars and sessions record
// per-site, so the bytes are independent of which worker ran the
// shard, of visit order, and of what other shards run concurrently.
// That purity is what makes the coordinator's merge reproduce a serial
// run byte for byte.
//
// Hosts are visited sequentially — shard fan-out, not intra-shard
// concurrency, is the parallelism knob — and kill.Visit() is consulted
// before each one, so a seeded worker death fails the whole assignment
// at a deterministic visit.
func (st *Study) RunShard(ctx context.Context, a shard.Assignment, kill *shard.KillSwitch) (*shard.Result, error) {
	if a.Fingerprint != st.fingerprint || a.Seed != int64(st.Cfg.Params.Seed) {
		return nil, fmt.Errorf("core: assignment fingerprint %s seed %d, study is %s seed %d: %w",
			a.Fingerprint, a.Seed, st.fingerprint, st.Cfg.Params.Seed, shard.ErrFingerprintMismatch)
	}
	phase := "crawl"
	if a.Interactive {
		phase = "policy"
	}
	sess, err := st.session(a.Vantage, phase)
	if err != nil {
		return nil, err
	}
	b := browser.New(sess)
	b.Stage = a.Stage
	b.Corpus = a.Corpus
	b.Rank = st.Rank.BaseRank
	res := &shard.Result{Stage: a.Stage, Shard: a.Shard}
	for _, h := range a.Hosts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := kill.Visit(); err != nil {
			return nil, err
		}
		var e *visitEntry
		if a.Interactive {
			e = interactiveEntry(b.VisitInteractive(ctx, h), sess, h)
		} else {
			e = pageEntry(b.Visit(ctx, h), sess, h)
		}
		raw, err := json.Marshal(e)
		if err != nil {
			return nil, fmt.Errorf("core: serialize visit %s: %w", h, err)
		}
		res.Entries = append(res.Entries, shard.Entry{Site: h, Raw: raw})
	}
	res.SortEntries()
	res.Digest = res.ComputeDigest()
	return res, nil
}

// dispatchShards runs one crawl stage's pending hosts through the
// coordinator: partition by registrable domain, dispatch across the
// fleet, and return the merged site→entry map. The per-shard digests
// land in the shards.json sidecar via recordShardStage; the caller
// folds the entries back into the stage through the same replay path a
// resumed run uses.
func (st *Study) dispatchShards(ctx context.Context, stageName, corpus, vantage string, hosts []string, interactive bool) (map[string][]byte, error) {
	if st.Cfg.CoordinatorAddr != "" {
		if err := st.coord.WaitWorkers(ctx, 0); err != nil {
			return nil, err
		}
	}
	parts := shard.Partition(hosts, st.Cfg.Shards)
	assignments := make([]shard.Assignment, len(parts))
	for i, p := range parts {
		assignments[i] = shard.Assignment{
			Stage:       stageName,
			Corpus:      corpus,
			Vantage:     vantage,
			Interactive: interactive,
			Shard:       i,
			Shards:      len(parts),
			Fingerprint: st.fingerprint,
			Seed:        int64(st.Cfg.Params.Seed),
			Hosts:       p,
		}
	}
	merged, err := st.coord.Dispatch(ctx, assignments)
	if err != nil {
		return nil, fmt.Errorf("core: dispatch %s: %w", stageName, err)
	}
	st.recordShardStage(stageName, merged)
	st.Log.Infof("shard: %s merged %d entries from %d shards", stageName, merged.Count, len(parts))
	return merged.Entries, nil
}

// foldShardEntries converts merged worker entries into replayed visit
// entries — the resume path's input — and, when a store is open,
// persists each site's raw bytes so the durable log comes out
// byte-identical to a serial store-backed run's. Worker bytes that do
// not parse are a protocol violation (the digest already verified
// transport), so they fail the stage rather than silently dropping a
// site. Iteration follows the caller's host order.
func (st *Study) foldShardEntries(stageName, corpus, vantage string, hosts []string,
	entries map[string][]byte, replayed map[string]*visitEntry, interactive bool) (map[string]*visitEntry, error) {
	if replayed == nil {
		replayed = make(map[string]*visitEntry, len(entries))
	}
	for _, h := range hosts {
		raw, ok := entries[h]
		if !ok {
			continue
		}
		e, err := decodeVisitEntry(raw, interactive)
		if err != nil {
			return nil, fmt.Errorf("core: shard entry for %s/%s: %w", stageName, h, err)
		}
		replayed[h] = e
		if st.store != nil {
			st.persistRaw(storeKey(stageName, corpus, vantage, h), raw)
		}
	}
	return replayed, nil
}

// recordShardStage files one sharded stage's per-shard digests for the
// shards.json sidecar.
func (st *Study) recordShardStage(stageName string, merged *shard.Merged) {
	st.shardMu.Lock()
	defer st.shardMu.Unlock()
	if st.shardStages == nil {
		st.shardStages = map[string]provenance.ShardStage{}
	}
	st.shardStages[stageName] = provenance.ShardStage{
		Shards:       len(merged.Shards),
		MergedDigest: merged.Digest,
		Info:         append([]provenance.ShardInfo(nil), merged.Shards...),
	}
}

// ShardManifest assembles the shards.json sidecar from the sharded
// stages recorded so far, or nil for an unsharded run. Per-shard
// digests are a function of the shard count, so they live here rather
// than in the main manifest, which must stay byte-identical between
// serial and sharded runs of the same study.
func (st *Study) ShardManifest() *provenance.ShardManifest {
	st.shardMu.Lock()
	defer st.shardMu.Unlock()
	if len(st.shardStages) == 0 {
		return nil
	}
	stages := make(map[string]provenance.ShardStage, len(st.shardStages))
	for name, s := range st.shardStages {
		stages[name] = s
	}
	return &provenance.ShardManifest{
		Version:           provenance.ShardManifestVersion,
		ConfigFingerprint: st.fingerprint,
		Seed:              int64(st.Cfg.Params.Seed),
		Stages:            stages,
	}
}
