package core

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"pornweb/internal/crawler"
	"pornweb/internal/provenance"
	"pornweb/internal/resilience"
	"pornweb/internal/webgen"
)

// crawlLogDigest digests a crawl session's request log with an
// order-independent multiset hash. Two normalizations make the digest a
// pure function of (seed, corpus, vantage) rather than of scheduling:
//
//   - Seq is zeroed: it encodes log position, which legitimately differs
//     between serial and concurrent schedules.
//   - SetCookies is digested as a separate deduplicated set instead of
//     in-place: the session's shared cookie jar makes cookie *placement*
//     timing-dependent — a tracker embedded on many sites sets its
//     cookies on whichever concurrent visit reaches it first, so which
//     record carries the Set-Cookie headers varies run to run while the
//     set of cookies observed does not.
//
// The digest still covers every cookie name, value, host and session
// flag, so a changed cookie changes the digest; only where in the log it
// first appeared is forgotten.
func crawlLogDigest(log []crawler.Record) (int, string) {
	var m provenance.MultisetHash
	seenCookie := map[string]bool{}
	for _, r := range log {
		r.Seq = 0
		cs := r.SetCookies
		r.SetCookies = nil
		raw, err := json.Marshal(r)
		if err != nil {
			// Record has no unmarshalable fields; keep the digest total
			// rather than dropping the record if that ever changes.
			raw = []byte(r.URL)
		}
		m.Add(string(raw))
		for _, c := range cs {
			craw, err := json.Marshal(c)
			if err != nil {
				continue
			}
			if seenCookie[string(craw)] {
				continue
			}
			seenCookie[string(craw)] = true
			m.Add("set-cookie:" + string(craw))
		}
	}
	return len(log), m.Sum()
}

// recordCorpusStage records the corpus-compilation stage's provenance:
// the sanitized site lists are its output records.
func (st *Study) recordCorpusStage(c *Corpus) {
	digest, err := provenance.HashJSON(c)
	if err != nil {
		digest = "unhashable"
	}
	st.prov.RecordStage("corpus", len(c.Porn)+len(c.Reference), digest)
}

// configFingerprint digests the parts of the config that determine the
// study's *results*: generator parameters, vantage countries, crawl
// parallelism and timeouts, and the retry policy. Schedule knobs (Serial,
// StageWorkers) and observability knobs (metrics, tracing, flight
// recorder) are deliberately excluded — they change how a run executes
// and what it records about itself, never what it measures — so a serial
// and a scheduled run of the same study share a fingerprint.
func (st *Study) configFingerprint() (string, error) {
	return provenance.HashJSON(struct {
		Params     webgen.Params
		Countries  []string
		Workers    int
		TimeoutMS  int64
		Resilience resilience.Policy
		BudgetMS   int64
	}{
		Params:     st.Cfg.Params,
		Countries:  st.Cfg.Countries,
		Workers:    st.Cfg.Workers,
		TimeoutMS:  st.Cfg.Timeout.Milliseconds(),
		Resilience: st.Cfg.Resilience,
		BudgetMS:   st.Cfg.PageBudget.Milliseconds(),
	})
}

// pipelineDeps is the static edge list of the study DAG — the same edges
// buildPipeline declares, kept as data so the manifest can name every
// stage's inputs and studydiff can walk divergences back to their origin.
// The PipelineDependencies test pins this map against the live graph.
func pipelineDeps(countries []string) map[string][]string {
	deps := map[string][]string{
		"corpus":                  nil,
		"analysis/rank-stability": {"corpus"},
		"crawl/porn-ES":           {"corpus"},
		"crawl/reference-ES":      {"corpus"},
		"crawl/porn-US":           {"corpus"},
		"crawl/interactive-ES":    {"corpus"},
		"analysis/third-parties":  {"crawl/porn-ES", "crawl/reference-ES"},
		"analysis/organizations":  {"crawl/porn-ES", "crawl/reference-ES"},
		"analysis/cookies":        {"crawl/porn-ES", "crawl/reference-ES"},
		"analysis/cookie-sync":    {"crawl/porn-ES"},
		"analysis/fingerprinting": {"crawl/porn-ES", "crawl/reference-ES"},
		"analysis/https":          {"crawl/porn-ES"},
		"analysis/malware":        {"crawl/porn-ES"},
		"analysis/monetization":   {"crawl/porn-ES"},
		"analysis/blocking":       {"crawl/porn-ES"},
		"analysis/rta":            {"crawl/porn-ES"},
		"analysis/chains":         {"crawl/porn-ES"},
		"analysis/storage":        {"crawl/porn-ES"},
		"analysis/banners":        {"crawl/porn-ES", "crawl/porn-US"},
		"analysis/policies":       {"crawl/porn-ES", "crawl/interactive-ES"},
		"analysis/owners":         {"crawl/porn-ES", "crawl/interactive-ES"},
		"analysis/validation":     {"analysis/owners"},
		"analysis/robustness":     {"analysis/geo"},
	}
	ageDeps := make([]string, 0, len(AgeVantages()))
	for _, c := range AgeVantages() {
		name := "crawl/age-" + c
		deps[name] = []string{"corpus"}
		ageDeps = append(ageDeps, name)
	}
	deps["analysis/age-verification"] = ageDeps
	geoDeps := []string{"crawl/porn-ES", "crawl/porn-US", "crawl/reference-ES"}
	for _, c := range countries {
		if c == "ES" || c == "US" {
			continue
		}
		name := "crawl/geo-" + c
		deps[name] = []string{"corpus"}
		geoDeps = append(geoDeps, name)
	}
	deps["analysis/geo"] = geoDeps
	return deps
}

// figSpec maps one manifest figure to the analysis stage that produced it
// and the Results content it renders.
type figSpec struct {
	figure string
	stage  string
	rows   func(*Results) int
	value  func(*Results) any
}

// one is the row count for single-block figures (one table of scalars).
func one(*Results) int { return 1 }

// figureSpecs is the complete figure/table provenance table: every
// rendered artifact, the stage it came from, its row count and the value
// its digest covers. Report renderers and this table must stay in sync;
// the manifest golden test catches drift.
var figureSpecs = []figSpec{
	{"figure1", "analysis/rank-stability",
		func(r *Results) int { return len(r.Figure1.Stats) },
		func(r *Results) any { return r.Figure1 }},
	{"table1", "analysis/owners",
		func(r *Results) int { return len(r.Table1.Rows) },
		func(r *Results) any { return r.Table1 }},
	{"table2", "analysis/third-parties", one,
		func(r *Results) any { return r.Table2 }},
	{"table3", "analysis/third-parties",
		func(r *Results) int { return len(r.Table3) },
		func(r *Results) any {
			return struct {
				Rows        []IntervalRow
				SharedAll   int
				SharedTotal int
			}{r.Table3, r.SharedAllIntervals, r.SharedAllIntervalsTotal}
		}},
	{"figure3", "analysis/organizations",
		func(r *Results) int { return len(r.Figure3) },
		func(r *Results) any {
			return struct {
				Rows            []OrgRow
				AttributionRate float64
				Companies       int
				DisconnectOnly  float64
			}{r.Figure3, r.AttributionRate, r.AttributionCompanies, r.DisconnectOnlyRate}
		}},
	{"cookie_census", "analysis/cookies", one,
		func(r *Results) any { return r.CookieCensus }},
	{"table4", "analysis/cookies",
		func(r *Results) int { return len(r.Table4) },
		func(r *Results) any { return r.Table4 }},
	{"figure4", "analysis/cookie-sync",
		func(r *Results) int { return len(r.Figure4.TopEdges) },
		func(r *Results) any { return r.Figure4 }},
	{"table5", "analysis/fingerprinting", one,
		func(r *Results) any { return r.Fingerprinting }},
	{"table6", "analysis/https", one,
		func(r *Results) any { return r.Table6 }},
	{"malware", "analysis/malware", one,
		func(r *Results) any { return r.Malware }},
	{"table7", "analysis/geo",
		func(r *Results) int { return len(r.Table7.Rows) },
		func(r *Results) any { return r.Table7 }},
	{"table8", "analysis/banners",
		func(*Results) int { return 2 },
		func(r *Results) any {
			return struct{ ES, US BannerCounts }{r.Table8ES, r.Table8US}
		}},
	{"age_verification", "analysis/age-verification",
		func(r *Results) int { return len(r.AgeVerification.Countries) },
		func(r *Results) any { return r.AgeVerification }},
	{"policies", "analysis/policies", one,
		func(r *Results) any { return r.Policies }},
	{"monetization", "analysis/monetization", one,
		func(r *Results) any { return r.Monetization }},
	{"blocking", "analysis/blocking", one,
		func(r *Results) any { return r.Blocking }},
	{"rta", "analysis/rta", one,
		func(r *Results) any { return r.RTA }},
	{"chains", "analysis/chains", one,
		func(r *Results) any { return r.Chains }},
	{"storage", "analysis/storage", one,
		func(r *Results) any { return r.Storage }},
	{"robustness", "analysis/robustness",
		func(r *Results) int { return len(r.Robustness.Rows) },
		func(r *Results) any { return r.Robustness }},
	{"validation", "analysis/validation", one,
		func(r *Results) any { return r.Validation }},
}

// BuildManifest assembles the deterministic run manifest from the
// recorder's crawl-stage digests and the completed Results. Analysis
// stages are digested here — their output is the Results content itself —
// while crawl stages were digested live as their sessions closed. Run
// calls this automatically; it is exported for callers that assemble
// Results through the individual Analyze* entry points.
func (st *Study) BuildManifest(res *Results) (*provenance.Manifest, error) {
	fp, err := st.configFingerprint()
	if err != nil {
		return nil, err
	}
	m := &provenance.Manifest{
		Version:           provenance.ManifestVersion,
		ConfigFingerprint: fp,
		Seed:              int64(st.Cfg.Params.Seed),
		Scale:             st.Cfg.Params.Scale,
		Corpora:           map[string]provenance.CorpusInfo{},
		Stages:            st.prov.Stages(),
		Figures:           map[string]provenance.FigureInfo{},
	}
	if m.Stages == nil {
		m.Stages = map[string]provenance.StageInfo{}
	}
	if res.Corpus != nil {
		for name, list := range map[string][]string{
			"porn":      res.Corpus.Porn,
			"reference": res.Corpus.Reference,
		} {
			digest, err := provenance.HashJSON(list)
			if err != nil {
				return nil, err
			}
			m.Corpora[name] = provenance.CorpusInfo{Count: len(list), Digest: digest}
		}
	}

	// Figures, and from them the analysis stages: a stage's digest folds
	// the digests of every figure it produced (order-independent), its
	// record count their total rows.
	type agg struct {
		hash provenance.MultisetHash
		rows int
	}
	byStage := map[string]*agg{}
	for _, spec := range figureSpecs {
		digest, err := provenance.HashJSON(spec.value(res))
		if err != nil {
			return nil, fmt.Errorf("core: digest %s: %w", spec.figure, err)
		}
		rows := spec.rows(res)
		m.Figures[spec.figure] = provenance.FigureInfo{
			Stages: []string{spec.stage},
			Rows:   rows,
			Digest: digest,
		}
		a := byStage[spec.stage]
		if a == nil {
			a = &agg{}
			byStage[spec.stage] = a
		}
		a.hash.Add(spec.figure + "=" + digest)
		a.rows += rows
	}
	for stage, a := range byStage {
		info := m.Stages[stage]
		info.Records = a.rows
		info.Digest = a.hash.Sum()
		m.Stages[stage] = info
	}

	deps := pipelineDeps(st.Cfg.Countries)
	for name, info := range m.Stages {
		if inputs, ok := deps[name]; ok && len(inputs) > 0 {
			info.Inputs = append([]string(nil), inputs...)
			sort.Strings(info.Inputs)
			m.Stages[name] = info
		}
	}

	if len(res.Robustness.VisitFailures) > 0 {
		m.Failures = map[string]int{}
		for class, n := range res.Robustness.VisitFailures {
			m.Failures[class] = n
		}
	}
	if n, digest, ok := st.storeInfo(); ok {
		m.Store = &provenance.StoreInfo{Entries: n, Digest: digest}
	}
	return m, nil
}

// buildRunInfo captures the volatile side of the run just finished:
// wall-clock totals, per-stage timings, the schedule that executed, and
// the flight recorder's sampling counters.
func (st *Study) buildRunInfo(start time.Time) *provenance.RunInfo {
	ri := &provenance.RunInfo{
		StartedAt:    start.UTC(),
		WallMS:       float64(st.clock().Sub(start).Microseconds()) / 1000,
		Serial:       st.Cfg.Serial,
		StageWorkers: st.Cfg.StageWorkers,
	}
	timings := st.prov.Timings()
	if len(timings) > 0 {
		ri.StageWallMS = make(map[string]float64, len(timings))
		for name, d := range timings {
			ri.StageWallMS[name] = float64(d.Microseconds()) / 1000
		}
	}
	ri.FlightSeen, ri.FlightKept, ri.FlightDropped = st.Flight.Stats()
	return ri
}

// WriteProvenance writes manifest.json and runinfo.json into dir. A
// sharded run additionally writes the shards.json sidecar (per-shard
// digests depend on the shard count, so they cannot live in the
// manifest, which must stay byte-identical between serial and sharded
// runs). Run must have completed first.
func (st *Study) WriteProvenance(dir string) error {
	if st.Provenance == nil {
		return fmt.Errorf("core: no provenance recorded: Run has not completed")
	}
	if err := st.Provenance.Write(filepath.Join(dir, "manifest.json")); err != nil {
		return err
	}
	if sm := st.ShardManifest(); sm != nil {
		if err := sm.Write(filepath.Join(dir, "shards.json")); err != nil {
			return err
		}
	}
	if st.RunInfo == nil {
		return nil
	}
	return st.RunInfo.Write(filepath.Join(dir, "runinfo.json"))
}
