package core

import (
	"pornweb/internal/blocklist"
	"pornweb/internal/cookies"
	"pornweb/internal/crawler"
	"pornweb/internal/domain"
	"pornweb/internal/fingerprint"
)

// BlockingResult quantifies how much tracking an EasyList/EasyPrivacy-based
// blocker would actually remove from the porn ecosystem. The paper leaves
// this as future work (Section 10) after observing that 91% of
// fingerprinting scripts are invisible to the lists; this analysis closes
// the loop by replaying the crawl with the blocker enabled.
type BlockingResult struct {
	RequestsTotal   int
	RequestsBlocked int // directly matched or transitively orphaned

	// Third-party ID cookies before/after blocking.
	TPCookiesBaseline  int
	TPCookiesSurviving int

	// Distinct canvas-fingerprinting scripts before/after.
	CanvasBaseline  int
	CanvasSurviving int

	// Cookie-sync exchanges before/after.
	SyncBaseline  int
	SyncSurviving int

	// Sites that still receive at least one third-party ID cookie with the
	// blocker enabled.
	SitesStillTracked int
}

// Reduction returns 1 - surviving/baseline, guarding zero baselines.
func reduction(baseline, surviving int) float64 {
	if baseline == 0 {
		return 0
	}
	return 1 - float64(surviving)/float64(baseline)
}

// TPCookieReduction is the blocker's effect on third-party ID cookies.
func (b BlockingResult) TPCookieReduction() float64 {
	return reduction(b.TPCookiesBaseline, b.TPCookiesSurviving)
}

// CanvasReduction is the blocker's effect on canvas fingerprinting.
func (b BlockingResult) CanvasReduction() float64 {
	return reduction(b.CanvasBaseline, b.CanvasSurviving)
}

// SyncReduction is the blocker's effect on cookie syncing.
func (b BlockingResult) SyncReduction() float64 {
	return reduction(b.SyncBaseline, b.SyncSurviving)
}

// resourceType maps a crawl initiator to the blocker's resource type.
func resourceType(init crawler.Initiator) blocklist.ResourceType {
	switch init {
	case crawler.InitScript:
		return blocklist.TypeScript
	case crawler.InitImage:
		return blocklist.TypeImage
	case crawler.InitIframe:
		return blocklist.TypeSubdocument
	case crawler.InitCSS:
		return blocklist.TypeStylesheet
	case crawler.InitJS:
		return blocklist.TypeXHR
	default:
		return blocklist.TypeOther
	}
}

// AnalyzeBlocking replays the porn crawl through the merged blocklists: a
// request disappears if a rule matches it, or if the request that caused it
// (its parent script, pixel, iframe or redirect hop) disappeared. The
// surviving log is then re-analyzed for cookies, fingerprinting and
// syncing.
func (st *Study) AnalyzeBlocking(porn *CrawlResult) BlockingResult {
	res := BlockingResult{RequestsTotal: len(porn.Log)}
	cls := porn.classifier()

	blockedURL := map[string]bool{}
	var surviving []crawler.Record
	for _, r := range porn.Log {
		// Transitive orphaning: if the parent was blocked, the child never
		// fires.
		if r.ParentURL != "" && blockedURL[r.ParentURL] {
			blockedURL[r.URL] = true
			res.RequestsBlocked++
			continue
		}
		thirdParty := cls.Classify(r.SiteHost, r.Host) == domain.ThirdParty
		// Top-level documents are never blocked by network rules.
		if r.Initiator != crawler.InitDocument {
			blocked, _ := st.EasyList.Match(blocklist.Request{
				URL:        r.URL,
				Host:       r.Host,
				SiteHost:   r.SiteHost,
				ThirdParty: thirdParty,
				Type:       resourceType(r.Initiator),
			})
			if blocked {
				blockedURL[r.URL] = true
				res.RequestsBlocked++
				continue
			}
		}
		surviving = append(surviving, r)
	}

	// Cookies.
	baseObs := cookies.Collect(porn.Log, cls)
	survObs := cookies.Collect(surviving, cls)
	trackedSites := map[string]bool{}
	for _, o := range baseObs {
		if o.IsIDCandidate() && o.ThirdParty {
			res.TPCookiesBaseline++
		}
	}
	for _, o := range survObs {
		if o.IsIDCandidate() && o.ThirdParty {
			res.TPCookiesSurviving++
			trackedSites[o.SiteHost] = true
		}
	}
	res.SitesStillTracked = len(trackedSites)

	// Syncing.
	res.SyncBaseline = len(cookies.DetectSyncs(porn.Log))
	res.SyncSurviving = len(cookies.DetectSyncs(surviving))

	// Canvas fingerprinting: a script's trace survives when its URL was
	// not blocked (inline scripts always survive — they are part of the
	// page).
	base := map[string]bool{}
	surv := map[string]bool{}
	for _, pv := range porn.Visits {
		for _, tr := range pv.Traces {
			v := fingerprint.ClassifyTrace(tr.Trace)
			if !v.CanvasFP {
				continue
			}
			key := canonicalScriptURL(tr.URL)
			if key == "" {
				key = "inline:" + tr.SiteHost
			}
			base[key] = true
			if tr.URL == "" || !blockedURL[tr.URL] {
				// Re-check against the raw rules too: the trace URL may
				// differ from the logged request URL by query ordering.
				if tr.URL != "" && st.EasyList.MatchURL(tr.URL, tr.SiteHost) {
					continue
				}
				surv[key] = true
			}
		}
	}
	res.CanvasBaseline = len(base)
	res.CanvasSurviving = len(surv)
	return res
}

// RTAResult measures adoption of the ASACP Restricted-To-Adults meta tag
// (Section 2.1), an industry self-labeling mechanism for parental filters.
type RTAResult struct {
	Inspected int
	Tagged    int
}

// Share is the tagged fraction.
func (r RTAResult) Share() float64 {
	if r.Inspected == 0 {
		return 0
	}
	return float64(r.Tagged) / float64(r.Inspected)
}

// AnalyzeRTA scans crawled landing pages for the RTA meta tag.
func (st *Study) AnalyzeRTA(porn *CrawlResult) RTAResult {
	var res RTAResult
	for _, host := range porn.Crawled {
		pv := porn.Visits[host]
		if pv == nil || pv.DOM == nil {
			continue
		}
		res.Inspected++
		if pv.DOM.MetaRTA() {
			res.Tagged++
		}
	}
	return res
}
