package core

import (
	"sort"

	"pornweb/internal/domain"
)

// ChainStats reconstructs the inclusion chains of Section 3.1: the paper
// follows HTTP Referer headers to distinguish third parties embedded
// directly by the publisher from those pulled in dynamically by other third
// parties (real-time-bidding chains, cookie-sync redirects, nested ad
// iframes — Bashir et al.'s diffusion model).
type ChainStats struct {
	// DepthCounts histograms request depth: 0 = the document itself,
	// 1 = directly embedded, >= 2 = dynamically included.
	DepthCounts map[int]int
	MaxDepth    int
	// DirectThirdParties are third-party FQDNs reached at depth 1 from
	// some site; IndirectOnly are reached exclusively at depth >= 2 —
	// invisible in the page source, only observable dynamically.
	DirectThirdParties int
	IndirectOnly       int
	// LongestChain is one deepest observed URL chain, document first.
	LongestChain []string
}

// AnalyzeInclusionChains walks the parent links of the crawl log.
func (st *Study) AnalyzeInclusionChains(porn *CrawlResult) ChainStats {
	stats := ChainStats{DepthCounts: map[int]int{}}
	cls := porn.classifier()

	// First pass: URL -> parent. A URL fetched from several contexts (the
	// same tracker endpoint embedded by many sites) keeps the smallest
	// parent URL — an order-independent winner, so the chain statistics do
	// not depend on how concurrent visits interleaved in the log. An empty
	// parent (the document itself) sorts first and wins.
	parent := map[string]string{}
	for _, r := range porn.Log {
		if r.Status == 0 || r.URL == "" {
			continue
		}
		if p, ok := parent[r.URL]; !ok || r.ParentURL < p {
			parent[r.URL] = r.ParentURL
		}
	}
	depthMemo := map[string]int{}
	var depthOf func(url string, guard int) int
	depthOf = func(url string, guard int) int {
		if url == "" {
			return -1
		}
		if d, ok := depthMemo[url]; ok {
			return d
		}
		if guard > 32 {
			return 32
		}
		p, ok := parent[url]
		if !ok || p == "" || p == url {
			depthMemo[url] = 0
			return 0
		}
		d := depthOf(p, guard+1) + 1
		depthMemo[url] = d
		return d
	}

	directTP := map[string]bool{}
	anyTP := map[string]bool{}
	deepestURL := ""
	for _, r := range porn.Log {
		if r.Status == 0 || r.URL == "" {
			continue
		}
		d := depthOf(r.URL, 0)
		stats.DepthCounts[d]++
		// Ties on depth keep the smallest URL so the reported chain is
		// independent of log order.
		if d > stats.MaxDepth || (d == stats.MaxDepth && deepestURL != "" && r.URL < deepestURL) {
			stats.MaxDepth = d
			deepestURL = r.URL
		}
		if r.SiteHost != "" && r.Host != "" && cls.Classify(r.SiteHost, r.Host) == domain.ThirdParty {
			anyTP[r.Host] = true
			if d == 1 {
				directTP[r.Host] = true
			}
		}
	}
	stats.DirectThirdParties = len(directTP)
	for h := range anyTP {
		if !directTP[h] {
			stats.IndirectOnly++
		}
	}
	// Reconstruct the deepest chain.
	for url := deepestURL; url != ""; url = parent[url] {
		stats.LongestChain = append(stats.LongestChain, url)
		if len(stats.LongestChain) > 40 {
			break
		}
	}
	// Reverse to document-first order.
	for i, j := 0, len(stats.LongestChain)-1; i < j; i, j = i+1, j-1 {
		stats.LongestChain[i], stats.LongestChain[j] = stats.LongestChain[j], stats.LongestChain[i]
	}
	return stats
}

// Depths returns the histogram keys in order (for rendering).
func (c ChainStats) Depths() []int {
	out := make([]int, 0, len(c.DepthCounts))
	for d := range c.DepthCounts {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}
