package core

import (
	"sort"

	"pornweb/internal/browser"
	"pornweb/internal/domain"
	"pornweb/internal/fingerprint"
)

// Ground-truth validation: because the measured world is generated, every
// heuristic in the pipeline can be scored exactly — something the paper
// could only do through sampled manual verification. Validate computes
// precision and recall for the classifiers whose errors would change the
// study's conclusions.

// PR is a precision/recall pair with its support counts.
type PR struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Precision returns TP/(TP+FP), or 1 when nothing was predicted.
func (p PR) Precision() float64 {
	if p.TruePositives+p.FalsePositives == 0 {
		return 1
	}
	return float64(p.TruePositives) / float64(p.TruePositives+p.FalsePositives)
}

// Recall returns TP/(TP+FN), or 1 when nothing was there to find.
func (p PR) Recall() float64 {
	if p.TruePositives+p.FalseNegatives == 0 {
		return 1
	}
	return float64(p.TruePositives) / float64(p.TruePositives+p.FalseNegatives)
}

// Validation scores the measurement pipeline against the generator's
// ground truth.
type Validation struct {
	// CanvasDetection scores the Englehardt heuristics per (site, serving
	// host) pair: did the pipeline flag canvas fingerprinting exactly
	// where a fingerprinting script was planted and executed?
	CanvasDetection PR
	// BannerDetection scores banner presence per crawled site.
	BannerDetection PR
	// BannerTypeAccuracy is the fraction of detected banners classified
	// into the planted Degeling type.
	BannerTypeMatches int
	BannerTypeTotal   int
	// GateDetection scores age-gate presence per crawled site (ES vantage).
	GateDetection PR
	// PolicyDetection scores privacy-policy discovery per site.
	PolicyDetection PR
	// PartyLabels scores first/third-party classification over observed
	// (site, host) pairs.
	PartyLabels PR // positive class: first party
	// OwnerPairs scores owner clustering at the pair level: two sites
	// sharing a planted owner should land in one cluster.
	OwnerPairs PR
}

// ValidateAgainstTruth computes all scores from one ES crawl, its
// interactive visits and the Table 1 clusters.
func (st *Study) ValidateAgainstTruth(porn *CrawlResult, visits map[string]*browser.InteractiveVisit, owners OwnerResult) Validation {
	var v Validation
	eco := st.Eco

	// Canvas: planted = site embeds a canvas service that serves it an FP
	// variant (approximated: any non-benign variant), or the site has an
	// inline FP script.
	detected := map[string]bool{} // site -> canvas observed
	for _, pv := range porn.Visits {
		for _, tr := range pv.Traces {
			if fingerprint.ClassifyTrace(tr.Trace).CanvasFP {
				detected[tr.SiteHost] = true
			}
		}
	}
	for _, host := range porn.Crawled {
		site := eco.SiteByHost[host]
		if site == nil {
			continue
		}
		planted := site.InlineCanvasFP
		if !planted {
			// A planted canvas service embed only counts when the visit
			// actually executed an FP variant; approximate by replaying
			// the traces — the ground truth here is "a canvas-FP service
			// script ran", which the trace record captures exactly.
			for _, pv := range []*browser.PageVisit{porn.Visits[host]} {
				if pv == nil {
					continue
				}
				for _, tr := range pv.Traces {
					if svc := eco.ServiceByHost[tr.Host]; svc != nil && svc.CanvasFP {
						if len(tr.Trace.Canvases) > 0 && tr.Trace.Canvases[0].Width >= 16 {
							planted = true
						}
					}
				}
			}
		}
		switch {
		case planted && detected[host]:
			v.CanvasDetection.TruePositives++
		case planted && !detected[host]:
			v.CanvasDetection.FalseNegatives++
		case !planted && detected[host]:
			v.CanvasDetection.FalsePositives++
		}
	}

	// Banners and gates, per crawled site (ES vantage).
	for _, host := range porn.Crawled {
		site := eco.SiteByHost[host]
		iv := visits[host]
		if site == nil || iv == nil || !iv.OK {
			continue
		}
		plantedBanner := site.BannerFor("ES") != BannerNoneTruth
		switch {
		case plantedBanner && iv.HasBanner:
			v.BannerDetection.TruePositives++
			v.BannerTypeTotal++
			if bannerTypesMatch(site.BannerFor("ES"), iv.Banner) {
				v.BannerTypeMatches++
			}
		case plantedBanner && !iv.HasBanner:
			v.BannerDetection.FalseNegatives++
		case !plantedBanner && iv.HasBanner:
			v.BannerDetection.FalsePositives++
		}

		plantedGate := site.GateFor("ES") != GateNoneTruth
		switch {
		case plantedGate && iv.GateDetected:
			v.GateDetection.TruePositives++
		case plantedGate && !iv.GateDetected:
			v.GateDetection.FalseNegatives++
		case !plantedGate && iv.GateDetected:
			v.GateDetection.FalsePositives++
		}

		switch {
		case site.HasPolicy && iv.PolicyFound:
			v.PolicyDetection.TruePositives++
		case site.HasPolicy && !iv.PolicyFound:
			v.PolicyDetection.FalseNegatives++
		case !site.HasPolicy && iv.PolicyFound:
			v.PolicyDetection.FalsePositives++
		}
	}

	// Party labels over observed pairs.
	cls := porn.classifier()
	seen := map[[2]string]bool{}
	for _, r := range porn.Log {
		if r.SiteHost == "" || r.Host == "" || r.Host == r.SiteHost || r.Status == 0 {
			continue
		}
		key := [2]string{r.SiteHost, r.Host}
		if seen[key] {
			continue
		}
		seen[key] = true
		site := eco.SiteByHost[r.SiteHost]
		if site == nil {
			continue
		}
		truthFirst := domain.IsSubdomain(r.Host, r.SiteHost)
		for _, fp := range site.ExtraFirstParty {
			if r.Host == fp {
				truthFirst = true
			}
		}
		gotFirst := cls.Classify(r.SiteHost, r.Host) == domain.FirstParty
		switch {
		case truthFirst && gotFirst:
			v.PartyLabels.TruePositives++
		case truthFirst && !gotFirst:
			v.PartyLabels.FalseNegatives++
		case !truthFirst && gotFirst:
			v.PartyLabels.FalsePositives++
		}
	}

	// Owner clustering at pair level: use the full cluster membership the
	// analysis retains (the printed rows are truncated).
	discovered := map[string]int{}
	for idx, c := range owners.Members {
		for _, s := range c {
			discovered[s] = idx + 1
		}
	}
	truthOwner := map[string]string{}
	var crawledOwned []string
	crawledSet := map[string]bool{}
	for _, h := range porn.Crawled {
		crawledSet[h] = true
	}
	for _, s := range eco.PornSites {
		if s.Owner != nil && crawledSet[s.Host] {
			truthOwner[s.Host] = s.Owner.Name
			crawledOwned = append(crawledOwned, s.Host)
		}
	}
	sort.Strings(crawledOwned)
	for i := 0; i < len(crawledOwned); i++ {
		for j := i + 1; j < len(crawledOwned); j++ {
			a, b := crawledOwned[i], crawledOwned[j]
			same := truthOwner[a] == truthOwner[b]
			ca, cb := discovered[a], discovered[b]
			together := ca != 0 && ca == cb
			switch {
			case same && together:
				v.OwnerPairs.TruePositives++
			case same && !together:
				v.OwnerPairs.FalseNegatives++
			case !same && together:
				v.OwnerPairs.FalsePositives++
			}
		}
	}
	return v
}

// Truth aliases for the zero enum values (webgen.BannerNone, webgen.GateNone).
const (
	BannerNoneTruth = 0
	GateNoneTruth   = 0
)

// bannerTypesMatch compares a planted webgen banner type with a detected
// consent type (the enums are parallel by construction).
func bannerTypesMatch(planted interface{ String() string }, detected interface{ String() string }) bool {
	return planted.String() == detected.String()
}
