package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"pornweb/internal/blocklist"
	"pornweb/internal/webgen"
)

// TestSerialCancellation pins the serial path's cancellation behaviour:
// a dead context must stop the pipeline between stages instead of
// grinding through every remaining crawl and analysis.
func TestSerialCancellation(t *testing.T) {
	st, err := NewStudy(Config{
		Params:  webgen.Params{Seed: 11, Scale: 0.01},
		Workers: 2,
		Serial:  true,
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := st.Run(ctx)
	if err == nil {
		t.Fatal("serial Run with a pre-cancelled context returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("serial Run error = %v, want context.Canceled in its chain", err)
	}
	if res != nil {
		t.Fatalf("serial Run returned partial results %+v after cancellation", res)
	}
}

// TestScheduledCancellation does the same for the scheduler-driven path:
// a pre-cancelled parent context means no stage runs at all.
func TestScheduledCancellation(t *testing.T) {
	st, err := NewStudy(Config{
		Params:  webgen.Params{Seed: 11, Scale: 0.01},
		Workers: 2,
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := st.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("scheduled Run error = %v, want context.Canceled in its chain", err)
	}
	if res != nil {
		t.Fatalf("scheduled Run returned partial results after cancellation")
	}
}

// geoTestStudy builds the minimal Study AnalyzeGeoFrom and
// AnalyzeRobustness need: a country list, an empty blocklist and an empty
// ecosystem (no server, no crawls).
func geoTestStudy(countries []string) *Study {
	return &Study{
		Cfg:      Config{Countries: countries},
		Eco:      &webgen.Ecosystem{},
		EasyList: blocklist.Parse("empty", nil),
	}
}

// TestGeoRowOrderCustomCountries is the regression test for the Table 7
// row order: geoOrder maps every non-paper country to the same rank, and
// sort.Slice is unstable, so without the name tie-break a custom country
// list produced rows in a different order run to run.
func TestGeoRowOrderCustomCountries(t *testing.T) {
	countries := []string{"ES", "FR", "DE", "AT"}
	st := geoTestStudy(countries)
	crawls := map[string]*CrawlResult{}
	for _, c := range countries {
		crawls[c] = &CrawlResult{Country: c}
	}

	// The paper vantage (ES) sorts first; the non-paper countries follow
	// alphabetically. Repeat to catch order instability.
	want := []string{"ES", "AT", "DE", "FR"}
	for i := 0; i < 20; i++ {
		res := st.AnalyzeGeoFrom(nil, crawls)
		if len(res.Rows) != len(want) {
			t.Fatalf("got %d rows, want %d", len(res.Rows), len(want))
		}
		for j, w := range want {
			if res.Rows[j].Country != w {
				t.Fatalf("iteration %d: row %d = %q, want %q", i, j, res.Rows[j].Country, w)
			}
		}
	}

	// The robustness summary shares the ordering.
	rob := st.AnalyzeRobustness(crawls)
	for j, w := range want {
		if rob.Rows[j].Country != w {
			t.Fatalf("robustness row %d = %q, want %q", j, rob.Rows[j].Country, w)
		}
	}
}

// TestGeoLess pins the comparator itself: paper order first, then the
// alphabetical tie-break.
func TestGeoLess(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"US", "UK", true},  // paper order, not alphabetical
		{"SG", "AT", true},  // paper vantage before any custom country
		{"AT", "FR", true},  // custom countries alphabetical
		{"FR", "AT", false}, // ...and antisymmetric
		{"DE", "DE", false}, // irreflexive
		{"ES", "US", false}, // ES is third in the paper's table
	}
	for _, c := range cases {
		if got := geoLess(c.a, c.b); got != c.want {
			t.Errorf("geoLess(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
