package core

import (
	"context"
	"fmt"
	"regexp"
	"strings"
	"testing"
	"time"

	"pornweb/internal/resilience"
	"pornweb/internal/webgen"
)

func fastRetry(attempts int) resilience.Policy {
	return resilience.Policy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Seed:        1,
	}
}

// TestRetryRecoversTransientSites is the acceptance criterion: with the
// default chaos profile (transient faults recover within Burst=2
// attempts), a retrying crawl must win back at least 90% of the
// transiently-faulty sites a single-shot crawl loses.
func TestRetryRecoversTransientSites(t *testing.T) {
	params := webgen.Params{Seed: 7, Scale: 0.03, Faults: webgen.DefaultFaultProfile()}
	base, err := NewStudy(Config{Params: params, Workers: 8, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	resil, err := NewStudy(Config{
		Params: params, Workers: 8, Timeout: 5 * time.Second,
		Resilience: fastRetry(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resil.Close()

	ctx := context.Background()
	// Sanitization sees no faults, so the corpus is identical for both.
	corpus, err := base.CompileCorpus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	baseCrawl, err := base.Crawl(ctx, corpus.Porn, "ES")
	if err != nil {
		t.Fatal(err)
	}
	resilCrawl, err := resil.Crawl(ctx, corpus.Porn, "ES")
	if err != nil {
		t.Fatal(err)
	}

	baseSet := map[string]bool{}
	for _, h := range baseCrawl.Crawled {
		baseSet[h] = true
	}
	resilSet := map[string]bool{}
	for _, h := range resilCrawl.Crawled {
		resilSet[h] = true
	}
	var lost, recovered int
	for _, h := range corpus.Porn {
		if !base.Eco.FaultKindFor(h).TransientFault() || baseSet[h] {
			continue
		}
		lost++
		if resilSet[h] {
			recovered++
		}
	}
	if lost == 0 {
		t.Fatal("baseline lost no transiently-faulty site; fault injection looks inert")
	}
	ratio := float64(recovered) / float64(lost)
	t.Logf("baseline crawled %d/%d, resilient %d/%d; transient losses %d, recovered %d (%.0f%%)",
		len(baseCrawl.Crawled), len(corpus.Porn), len(resilCrawl.Crawled), len(corpus.Porn),
		lost, recovered, 100*ratio)
	if ratio < 0.9 {
		t.Errorf("retries recovered %d of %d transiently-lost sites (%.0f%%), want >= 90%%",
			recovered, lost, 100*ratio)
	}
	if len(resilCrawl.Crawled) <= len(baseCrawl.Crawled) {
		t.Errorf("resilient crawl reached %d sites, baseline %d; retries should strictly help",
			len(resilCrawl.Crawled), len(baseCrawl.Crawled))
	}
}

// TestFaultTaxonomyAllClasses crawls a hand-picked host list against an
// everything-enabled persistent chaos profile and asserts each failure
// class surfaces both in the aggregated Results and in the /metrics
// exposition.
func TestFaultTaxonomyAllClasses(t *testing.T) {
	prof := webgen.FaultProfile{
		Enabled:          true,
		ServerErrorFrac:  0.08,
		DropFrac:         0.08,
		TruncateFrac:     0.06,
		ResetFrac:        0.06,
		RedirectLoopFrac: 0.05,
		LatencyFrac:      0.05,
		Latency:          2 * time.Second, // far beyond the request timeout
		Burst:            99,              // effectively permanent: nothing recovers
		Geo451:           true,
	}
	pol := fastRetry(2)
	pol.BreakerThreshold = 2
	pol.BreakerCooldown = 10 * time.Second
	st, err := NewStudy(Config{
		Params:     webgen.Params{Seed: 7, Scale: 0.05, Faults: prof},
		Workers:    4,
		Timeout:    300 * time.Millisecond,
		Resilience: pol,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const country = "IN"
	// Pick a couple of healthy sites per fault kind, plus a fault-free
	// site that is geo-blocked from the vantage.
	byKind := map[webgen.FaultKind][]string{}
	var geoBlocked []string
	for _, s := range st.Eco.PornSites {
		if s.Flaky || s.Unresponsive {
			continue
		}
		k := st.Eco.FaultKindFor(s.Host)
		if k == webgen.FaultNone {
			if s.BlockedIn[country] && len(geoBlocked) < 2 {
				geoBlocked = append(geoBlocked, s.Host)
			}
			continue
		}
		if len(s.BlockedIn) > 0 {
			continue
		}
		if k == webgen.FaultDrop && st.Eco.FaultFor(s.Host, country, webgen.PhaseCrawl).Kind != webgen.FaultDrop {
			continue // this drop host does not drop from our vantage
		}
		if len(byKind[k]) < 2 {
			byKind[k] = append(byKind[k], s.Host)
		}
	}
	var hosts []string
	for k, hs := range byKind {
		if len(hs) == 0 {
			t.Fatalf("no usable host for fault kind %s", k)
		}
		hosts = append(hosts, hs...)
	}
	if len(geoBlocked) == 0 {
		t.Fatal("no fault-free geo-blocked site at this scale")
	}
	hosts = append(hosts, geoBlocked...)

	cr, err := st.Crawl(context.Background(), hosts, country)
	if err != nil {
		t.Fatal(err)
	}
	rob := st.AnalyzeRobustness(map[string]*CrawlResult{country: cr})
	if !rob.RetriesEnabled || !rob.FaultsInjected || rob.MaxAttempts != 2 {
		t.Fatalf("robustness self-description wrong: %+v", rob)
	}

	want := []resilience.Class{
		resilience.ClassTimeout, resilience.ClassRefused, resilience.ClassReset,
		resilience.ClassTruncated, resilience.Class5xx, resilience.ClassRedirectLoop,
		resilience.ClassBreakerOpen, resilience.ClassGeoBlocked,
	}
	for _, c := range want {
		if rob.VisitFailures[string(c)] == 0 && rob.RequestFailures[string(c)] == 0 {
			t.Errorf("class %s absent from aggregated results (visits=%v requests=%v)",
				c, rob.VisitFailures, rob.RequestFailures)
		}
	}

	var sb strings.Builder
	if err := st.Metrics.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	exp := sb.String()
	for _, c := range want {
		re := regexp.MustCompile(fmt.Sprintf(
			`crawler_request_failures_total\{class="%s",country="%s"\} [1-9]`, c, country))
		if !re.MatchString(exp) {
			t.Errorf("class %s not visible in /metrics exposition", c)
		}
	}
	for _, kind := range []string{"server-error", "truncate", "reset", "redirect-loop", "latency"} {
		if !strings.Contains(exp, fmt.Sprintf(`webserver_faults_injected_total{kind=%q}`, kind)) {
			t.Errorf("injected fault kind %s not visible in exposition", kind)
		}
	}
	if !strings.Contains(exp, `crawler_breaker_transitions_total{country="IN",state="open"}`) {
		t.Error("breaker transitions not visible in exposition")
	}
}

// TestCanceledCrawlReturnsPromptly proves forEach stops dispatching when
// the context dies: a crawl over uniformly slow hosts, canceled early,
// must return quickly with only the visits that were in flight.
func TestCanceledCrawlReturnsPromptly(t *testing.T) {
	prof := webgen.FaultProfile{Enabled: true, LatencyFrac: 1.0, Latency: 300 * time.Millisecond}
	st, err := NewStudy(Config{
		Params:  webgen.Params{Seed: 7, Scale: 0.01, Faults: prof},
		Workers: 2,
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var hosts []string
	for _, s := range st.Eco.PornSites {
		if s.Flaky || s.Unresponsive {
			continue
		}
		hosts = append(hosts, s.Host)
		if len(hosts) == 30 {
			break
		}
	}
	if len(hosts) < 10 {
		t.Fatalf("only %d hosts at this scale", len(hosts))
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	cr, err := st.Crawl(ctx, hosts, "ES")
	took := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if took > 3*time.Second {
		t.Errorf("canceled crawl took %v; should return promptly", took)
	}
	if len(cr.Visits) == 0 {
		t.Error("canceled crawl returned no partial visits")
	}
	if len(cr.Visits) >= len(hosts) {
		t.Errorf("canceled crawl visited all %d hosts; cancellation did not stop dispatch", len(hosts))
	}
	if cr.Attempted != len(hosts) {
		t.Errorf("Attempted = %d, want %d", cr.Attempted, len(hosts))
	}
}
