package core

import (
	"context"
	"sort"

	"pornweb/internal/domain"
	"pornweb/internal/malware"
)

// GeoRow is one row of Table 7: third-party observations from one vantage
// country.
type GeoRow struct {
	Country string
	// FQDNs is the number of distinct third-party FQDNs observed.
	FQDNs int
	// WebEcosystemShare is the fraction of those also present in the
	// regular-web crawl.
	WebEcosystemShare float64
	// UniqueCountry counts FQDNs observed only from this country.
	UniqueCountry int
	// ATS counts blocklist-covered third-party FQDNs.
	ATS int
	// UniqueATS counts ATS FQDNs observed only from this country.
	UniqueATS int
	// Unreachable counts porn sites reachable from the physical vantage
	// (Spain) but not from here — censorship or server-side blocking,
	// indistinguishable as the paper notes (21 for Russia, 168 for India).
	Unreachable int
}

// GeoResult is Section 6.
type GeoResult struct {
	Rows []GeoRow
	// Totals across all countries.
	TotalFQDNs int
	TotalATS   int
	// UniqueToSomeCountry counts FQDNs seen from exactly one country.
	UniqueToSomeCountry int

	// Malware geography (Section 6.2).
	FlaggedByCountry      map[string]int // country -> flagged third-party domains
	SitesWithMalByCountry map[string]int
	AlwaysFlagged         int // flagged domains present from every country
	AlwaysMalSites        int // sites with malicious content from every country
}

// AnalyzeGeo crawls the porn corpus from every configured vantage country
// and compares. regularTP is the regular-web third-party set (from the
// main crawl) for the "web ecosystem" column. The scheduled pipeline owns
// the crawls itself and calls AnalyzeGeoFrom directly; this wrapper keeps
// the crawl-then-analyze convenience for the serial path and library
// callers.
func (st *Study) AnalyzeGeo(ctx context.Context, porn []string, regularTP map[string]bool, crawls map[string]*CrawlResult) (GeoResult, error) {
	// Crawl any country not already provided. The stage label matches the
	// scheduled pipeline's fan-out stages, so serial and scheduled runs
	// record identical provenance.
	for _, c := range st.Cfg.Countries {
		if crawls[c] != nil {
			continue
		}
		cr, err := st.CrawlStage(ctx, porn, c, "crawl/geo-"+c, "porn")
		if err != nil {
			return GeoResult{}, err
		}
		crawls[c] = cr
	}
	return st.AnalyzeGeoFrom(regularTP, crawls), nil
}

// AnalyzeGeoFrom is the pure analysis half of Section 6: it compares
// already-completed vantage crawls. crawls must contain every country in
// Cfg.Countries.
func (st *Study) AnalyzeGeoFrom(regularTP map[string]bool, crawls map[string]*CrawlResult) GeoResult {
	var res GeoResult
	countries := st.Cfg.Countries

	tpByCountry := map[string]map[string]bool{}
	for _, c := range countries {
		set := map[string]bool{}
		for _, h := range crawls[c].allThirdPartyHosts() {
			set[h] = true
		}
		tpByCountry[c] = set
	}
	seenIn := map[string]int{}
	for _, set := range tpByCountry {
		for h := range set {
			seenIn[h]++
		}
	}
	allATS := map[string]bool{}
	for h := range seenIn {
		res.TotalFQDNs++
		if st.isATS(h) {
			allATS[h] = true
		}
		if seenIn[h] == 1 {
			res.UniqueToSomeCountry++
		}
	}
	res.TotalATS = len(allATS)

	agg := st.malwareOracle()
	res.FlaggedByCountry = map[string]int{}
	res.SitesWithMalByCountry = map[string]int{}
	flaggedIn := map[string]int{} // flagged domain -> #countries observed
	malSiteIn := map[string]int{} // site with malicious embed -> #countries

	for _, c := range countries {
		row := GeoRow{Country: c}
		set := tpByCountry[c]
		row.FQDNs = len(set)
		var inWeb int
		for h := range set {
			if regularTP[h] {
				inWeb++
			}
			if seenIn[h] == 1 {
				row.UniqueCountry++
			}
			if st.isATS(h) {
				row.ATS++
				if seenIn[h] == 1 {
					row.UniqueATS++
				}
			}
		}
		if row.FQDNs > 0 {
			row.WebEcosystemShare = float64(inWeb) / float64(row.FQDNs)
		}
		if base, ok := crawls["ES"]; ok {
			row.Unreachable = len(base.Crawled) - len(crawls[c].Crawled)
			if row.Unreachable < 0 {
				row.Unreachable = 0
			}
		}

		// Malware per country.
		flagged := map[string]bool{}
		malSites := map[string]bool{}
		for site, hosts := range crawls[c].thirdPartyHostsBySite() {
			for _, h := range hosts {
				base := domain.Base(h)
				if agg.Flagged(base) || malware.IsCryptoMiner(h) {
					flagged[base] = true
					malSites[site] = true
				}
			}
		}
		res.FlaggedByCountry[c] = len(flagged)
		res.SitesWithMalByCountry[c] = len(malSites)
		for d := range flagged {
			flaggedIn[d]++
		}
		for s := range malSites {
			malSiteIn[s]++
		}
		res.Rows = append(res.Rows, row)
	}
	for _, n := range flaggedIn {
		if n == len(countries) {
			res.AlwaysFlagged++
		}
	}
	for _, n := range malSiteIn {
		if n == len(countries) {
			res.AlwaysMalSites++
		}
	}
	sort.Slice(res.Rows, func(i, j int) bool { return geoLess(res.Rows[i].Country, res.Rows[j].Country) })
	return res
}

// geoOrder sorts countries in the paper's Table 7 order.
func geoOrder(c string) int {
	order := map[string]int{"US": 0, "UK": 1, "ES": 2, "RU": 3, "IN": 4, "SG": 5}
	if o, ok := order[c]; ok {
		return o
	}
	return 99
}

// geoLess orders countries for Table 7 and the robustness rows: the
// paper's six vantages in its printed order, then every other country
// alphabetically. The name tie-break matters because geoOrder maps all
// non-paper countries to the same rank and sort.Slice is unstable — with
// a custom country list the row order would otherwise vary run to run.
func geoLess(a, b string) bool {
	oa, ob := geoOrder(a), geoOrder(b)
	if oa != ob {
		return oa < ob
	}
	return a < b
}
