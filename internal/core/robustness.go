package core

import (
	"sort"

	"pornweb/internal/resilience"
)

// CrawlLossRow summarizes reachability from one vantage country. The
// paper reaches ~93% of porn sites and ~88% of regular sites (Section
// 3); with fault injection enabled, these rows show how much of the
// remaining loss the retry policy recovers.
type CrawlLossRow struct {
	Country   string
	Attempted int
	Crawled   int
	// LossRate is the fraction of attempted sites that never yielded a
	// page.
	LossRate float64
	// Failures breaks the lost visits down by taxonomy class.
	Failures map[string]int
}

// RobustnessResult aggregates the crawl-path failure taxonomy across
// every vantage the study crawled from.
type RobustnessResult struct {
	// RetriesEnabled and MaxAttempts echo the study's policy so a report
	// is self-describing.
	RetriesEnabled bool
	MaxAttempts    int
	// FaultsInjected reports whether the substrate injected chaos.
	FaultsInjected bool

	Rows []CrawlLossRow
	// VisitFailures sums failed page visits by class over all vantages.
	VisitFailures map[string]int
	// RequestFailures sums terminal request failures by class over all
	// vantages (requests, not pages: one failed page may count several).
	RequestFailures map[string]uint64
}

// AnalyzeRobustness folds the per-country crawl outcomes into the
// failure-taxonomy summary.
func (st *Study) AnalyzeRobustness(crawls map[string]*CrawlResult) RobustnessResult {
	pol := st.Cfg.Resilience
	res := RobustnessResult{
		RetriesEnabled:  pol.Active(),
		MaxAttempts:     pol.MaxAttempts,
		FaultsInjected:  st.Eco.FaultsEnabled(),
		VisitFailures:   map[string]int{},
		RequestFailures: map[string]uint64{},
	}
	if res.MaxAttempts < 1 {
		res.MaxAttempts = 1
	}
	countries := make([]string, 0, len(crawls))
	for c := range crawls {
		countries = append(countries, c)
	}
	sort.Slice(countries, func(i, j int) bool { return geoLess(countries[i], countries[j]) })
	for _, c := range countries {
		cr := crawls[c]
		row := CrawlLossRow{
			Country:   c,
			Attempted: cr.Attempted,
			Crawled:   len(cr.Crawled),
			Failures:  cr.FailuresByClass,
		}
		if row.Attempted > 0 {
			row.LossRate = float64(row.Attempted-row.Crawled) / float64(row.Attempted)
		}
		for class, n := range cr.FailuresByClass {
			res.VisitFailures[class] += n
		}
		for class, n := range cr.RequestFailures {
			res.RequestFailures[class] += n
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// TaxonomyOrder lists the failure classes in report order (shared with
// internal/report so tables are stable).
func TaxonomyOrder() []string {
	classes := resilience.Classes()
	out := make([]string, len(classes))
	for i, c := range classes {
		out[i] = string(c)
	}
	return out
}
