package core

import (
	"context"
	"runtime/pprof"
	"sort"
	"sync"

	"pornweb/internal/attribution"
	"pornweb/internal/browser"
	"pornweb/internal/consent"
	"pornweb/internal/htmlx"
	"pornweb/internal/textstat"
)

// BannerCounts are per-type cookie-banner rates over the porn corpus
// (one column of Table 8).
type BannerCounts struct {
	Country      string
	Sites        int // crawled sites inspected
	NoOption     int
	Confirmation int
	Binary       int
	Other        int
}

// Total returns the number of sites with any banner.
func (b BannerCounts) Total() int {
	return b.NoOption + b.Confirmation + b.Binary + b.Other
}

// Share converts a count into a fraction of the inspected corpus.
func (b BannerCounts) Share(n int) float64 {
	if b.Sites == 0 {
		return 0
	}
	return float64(n) / float64(b.Sites)
}

// AnalyzeBanners detects and classifies cookie banners on the crawled
// landing pages of one vantage crawl (Table 8 compares ES and US).
func (st *Study) AnalyzeBanners(cr *CrawlResult) BannerCounts {
	counts := BannerCounts{Country: cr.Country, Sites: len(cr.Crawled)}
	for _, host := range cr.Crawled {
		pv := cr.Visits[host]
		if pv == nil || pv.DOM == nil {
			continue
		}
		bt, ok := consent.DetectBanner(pv.DOM)
		if !ok {
			continue
		}
		switch bt {
		case consent.BannerNoOption:
			counts.NoOption++
		case consent.BannerConfirmation:
			counts.Confirmation++
		case consent.BannerBinary:
			counts.Binary++
		case consent.BannerOther:
			counts.Other++
		}
	}
	return counts
}

// InteractiveCrawl runs the Selenium-analog over hosts from a country.
func (st *Study) InteractiveCrawl(ctx context.Context, hosts []string, country string) (map[string]*browser.InteractiveVisit, error) {
	return st.InteractiveCrawlStage(ctx, hosts, country, "")
}

// InteractiveCrawlStage is InteractiveCrawl with provenance: a non-empty
// stageName labels the per-visit flight events and records the session
// log's record count and content digest under that stage name when the
// crawl completes.
func (st *Study) InteractiveCrawlStage(ctx context.Context, hosts []string, country, stageName string) (map[string]*browser.InteractiveVisit, error) {
	// Refine the ambient stage label with the interactive crawl's vantage;
	// the forEach workers below inherit the whole label set.
	prev := ctx
	ctx = pprof.WithLabels(ctx, pprof.Labels("vantage", country, "corpus", "porn"))
	pprof.SetGoroutineLabels(ctx)
	defer pprof.SetGoroutineLabels(prev)
	sess, err := st.session(country, "policy")
	if err != nil {
		return nil, err
	}
	b := browser.New(sess)
	b.Stage = stageName
	b.Corpus = "porn"
	b.Rank = st.Rank.BaseRank
	out := make(map[string]*browser.InteractiveVisit, len(hosts))
	// Replay durable interactive visits, crawl the rest, persist each
	// completed visit — the same resume protocol as CrawlStage.
	pending, replayed := st.hostsToVisit(stageName, "porn", country, hosts, true)
	// Sharded dispatch, folded back through the replay path exactly as
	// in CrawlStage.
	if st.coord != nil && stageName != "" && len(pending) > 0 {
		entries, err := st.dispatchShards(ctx, stageName, "porn", country, pending, true)
		if err != nil {
			return nil, err
		}
		replayed, err = st.foldShardEntries(stageName, "porn", country, pending, entries, replayed, true)
		if err != nil {
			return nil, err
		}
		pending = nil
	}
	var mu sync.Mutex
	st.forEach(ctx, len(pending), func(i int) {
		iv := b.VisitInteractive(ctx, pending[i])
		mu.Lock()
		out[pending[i]] = iv
		mu.Unlock()
		if st.store != nil && stageName != "" {
			st.persistVisit(storeKey(stageName, "porn", country, pending[i]),
				interactiveEntry(iv, sess, pending[i]))
		}
	})
	for _, h := range hosts {
		if e := replayed[h]; e != nil {
			out[h] = e.Interactive
		}
	}
	if stageName != "" {
		log := sess.Log()
		if len(replayed) > 0 {
			log, _, _ = mergeReplayed(hosts, replayed, log, map[string]string{}, map[string]uint64{})
		}
		n, digest := crawlLogDigest(log)
		st.prov.RecordStage(stageName, n, digest)
		st.checkpointStore()
	}
	st.Log.Infof("interactive[%s]: %d sites", country, len(hosts))
	return out, nil
}

// AgeCountry summarizes age verification for one country over the top-50
// sites (Section 7.2).
type AgeCountry struct {
	Country   string
	Inspected int
	Gated     int // sites showing a verification mechanism
	Bypassed  int // gates our crawler clicked through
	NotBypass int // gates resisting automation (social login)
}

// AgeResult is the cross-country comparison.
type AgeResult struct {
	Countries []AgeCountry
	// ConsistentUSUKES: sites gated identically in US, UK and ES.
	ConsistentUSUKES bool
	// OnlyInRU / MissingInRU count top-50 sites whose gating differs in
	// Russia.
	OnlyInRU    int
	MissingInRU int
}

// Top50 returns the 50 best-ranked crawlable porn hosts.
func (st *Study) Top50(porn []string) []string {
	type hr struct {
		host string
		best int
	}
	var ranked []hr
	for _, h := range porn {
		b := st.Rank.StatsFor(h).Best
		if b == 0 {
			b = 1 << 30
		}
		ranked = append(ranked, hr{h, b})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].best < ranked[j].best })
	n := 50
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = ranked[i].host
	}
	return out
}

// AgeVantages lists the four vantage countries of the Section 7.2
// age-verification comparison, in the paper's order.
func AgeVantages() []string { return []string{"US", "UK", "ES", "RU"} }

// AnalyzeAgeVerification runs the interactive crawler over the top-50 from
// the four countries of Section 7.2 and compares. The scheduled pipeline
// fans the four crawls out as independent stages and calls
// AnalyzeAgeVisits directly; this wrapper keeps the crawl-then-analyze
// convenience for the serial path and library callers.
func (st *Study) AnalyzeAgeVerification(ctx context.Context, porn []string) (AgeResult, error) {
	top := st.Top50(porn)
	visits := map[string]map[string]*browser.InteractiveVisit{}
	for _, country := range AgeVantages() {
		// The stage label matches the scheduled pipeline's fan-out stages,
		// so serial and scheduled runs record identical provenance.
		v, err := st.InteractiveCrawlStage(ctx, top, country, "crawl/age-"+country)
		if err != nil {
			return AgeResult{}, err
		}
		visits[country] = v
	}
	return st.AnalyzeAgeVisits(visits), nil
}

// AnalyzeAgeVisits is the pure analysis half of Section 7.2: it compares
// completed interactive crawls keyed by country (one entry per
// AgeVantages country, each over the same top-50 hosts).
func (st *Study) AnalyzeAgeVisits(byCountry map[string]map[string]*browser.InteractiveVisit) AgeResult {
	gatedBy := map[string]map[string]bool{}
	var res AgeResult
	for _, country := range AgeVantages() {
		visits := byCountry[country]
		ac := AgeCountry{Country: country, Inspected: len(visits)}
		gatedBy[country] = map[string]bool{}
		for host, iv := range visits {
			if !iv.OK || !iv.GateDetected {
				continue
			}
			ac.Gated++
			gatedBy[country][host] = true
			if iv.GateBypassed {
				ac.Bypassed++
			} else {
				ac.NotBypass++
			}
		}
		res.Countries = append(res.Countries, ac)
	}
	res.ConsistentUSUKES = equalSets(gatedBy["US"], gatedBy["UK"]) && equalSets(gatedBy["UK"], gatedBy["ES"])
	for h := range gatedBy["RU"] {
		if !gatedBy["ES"][h] {
			res.OnlyInRU++
		}
	}
	for h := range gatedBy["ES"] {
		if !gatedBy["RU"][h] {
			res.MissingInRU++
		}
	}
	return res
}

func equalSets(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// PolicyResult is Section 7.3.
type PolicyResult struct {
	Inspected    int
	WithPolicy   int
	PolicyShare  float64
	GDPRMentions int // policies explicitly naming the GDPR
	MeanLetters  int
	MinLetters   int
	MaxLetters   int
	// Pair-similarity stats over all collected policies.
	Pairs        int
	SimilarPairs int // similarity > 0.5
	SimilarShare float64
	// Disclosure audit of the top tracking sites (the Polisis-style deep
	// dive on 25 sites).
	TopAudited           int
	TopDisclosingCookies int
	TopListingAllParties int
}

// AnalyzePolicies evaluates the harvested policies. topTracking lists the
// most-tracking porn sites for the disclosure audit (the paper's top-25).
func (st *Study) AnalyzePolicies(visits map[string]*browser.InteractiveVisit, topTracking []string, perSiteTP map[string][]string) PolicyResult {
	var res PolicyResult
	var texts []string
	analyses := map[string]consent.PolicyAnalysis{}
	// Iterate hosts sorted: texts feeds the similarity corpus, and the
	// corpus's mean accumulates in document order — float addition must
	// not follow map iteration order.
	hosts := make([]string, 0, len(visits))
	for host := range visits {
		hosts = append(hosts, host)
	}
	sort.Strings(hosts)
	for _, host := range hosts {
		iv := visits[host]
		if !iv.OK {
			continue
		}
		res.Inspected++
		if !iv.PolicyFound {
			continue
		}
		res.WithPolicy++
		pa := consent.AnalyzePolicy(iv.PolicyText)
		analyses[host] = pa
		texts = append(texts, iv.PolicyText)
		if pa.MentionsGDPR {
			res.GDPRMentions++
		}
		if res.MinLetters == 0 || pa.Letters < res.MinLetters {
			res.MinLetters = pa.Letters
		}
		if pa.Letters > res.MaxLetters {
			res.MaxLetters = pa.Letters
		}
		res.MeanLetters += pa.Letters
	}
	if res.WithPolicy > 0 {
		res.MeanLetters /= res.WithPolicy
	}
	if res.Inspected > 0 {
		res.PolicyShare = float64(res.WithPolicy) / float64(res.Inspected)
	}
	if len(texts) >= 2 {
		corpus := textstat.NewCorpus(texts)
		stats := corpus.AllPairs(0.5)
		res.Pairs = stats.Pairs
		res.SimilarPairs = stats.AboveThreshold
		if stats.Pairs > 0 {
			res.SimilarShare = float64(stats.AboveThreshold) / float64(stats.Pairs)
		}
	}
	for _, host := range topTracking {
		pa, ok := analyses[host]
		if !ok {
			continue
		}
		res.TopAudited++
		if pa.DisclosesCookies && pa.DisclosesThirdParty {
			res.TopDisclosingCookies++
		}
		if len(pa.ListedThirdParties) > 0 && coversAll(pa.ListedThirdParties, perSiteTP[host]) {
			res.TopListingAllParties++
		}
	}
	return res
}

// coversAll reports whether the disclosed list names every observed
// third-party service host.
func coversAll(disclosed, observed []string) bool {
	set := map[string]bool{}
	for _, d := range disclosed {
		set[d] = true
	}
	for _, o := range observed {
		if !set[o] {
			return false
		}
	}
	return len(observed) > 0
}

// OwnerRow is one row of Table 1.
type OwnerRow struct {
	Company     string // disclosed controller, or "(undisclosed cluster)"
	Sites       int
	MostPopular string
	BestRank    int
}

// OwnerResult is Section 4.1.
type OwnerResult struct {
	Rows            []OwnerRow
	Clusters        int
	AttributedSites int
	// Members holds the full site membership of every discovered cluster
	// (the Rows are truncated for display); used by the ground-truth
	// validation.
	Members [][]string `json:"-"`
}

// AnalyzeOwners clusters porn sites into owner groups using policies and
// landing-page heads, then ranks clusters for Table 1.
func (st *Study) AnalyzeOwners(porn *CrawlResult, visits map[string]*browser.InteractiveVisit, topN int) OwnerResult {
	policies := map[string]string{}
	heads := map[string]string{}
	for _, host := range porn.Crawled {
		if iv := visits[host]; iv != nil && iv.PolicyFound {
			policies[host] = iv.PolicyText
		}
		if pv := porn.Visits[host]; pv != nil && pv.DOM != nil {
			if head := pv.DOM.First("head"); head != nil {
				heads[host] = headSignature(head)
			}
		}
	}
	// Coefficient-1 matching only: the paper found owners through
	// identical policy pairs — merely template-sharing policies (76% of
	// all pairs exceed 0.5) must not merge. A threshold >= 0.999 selects
	// DiscoverOwners' exact-identity grouping.
	clusters := attribution.DiscoverOwners(porn.Crawled, policies, heads, 1.0)
	var res OwnerResult
	res.Clusters = len(clusters)
	for _, c := range clusters {
		res.AttributedSites += len(c.Sites)
		res.Members = append(res.Members, c.Sites)
		row := OwnerRow{Company: c.Company, Sites: len(c.Sites)}
		if row.Company == "" {
			row.Company = "(undisclosed cluster)"
		}
		best := 1 << 30
		for _, h := range c.Sites {
			b := st.Rank.StatsFor(h).Best
			if b > 0 && b < best {
				best = b
				row.MostPopular = h
				row.BestRank = b
			}
		}
		if row.MostPopular == "" {
			row.MostPopular = c.Sites[0]
		}
		res.Rows = append(res.Rows, row)
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		if res.Rows[i].Sites != res.Rows[j].Sites {
			return res.Rows[i].Sites > res.Rows[j].Sites
		}
		return res.Rows[i].Company < res.Rows[j].Company
	})
	if topN > 0 && len(res.Rows) > topN {
		res.Rows = res.Rows[:topN]
	}
	return res
}

// headSignature extracts the owner-revealing parts of a <head>: the meta
// names/contents (platform generator, theme), which cluster sites sharing
// an operator.
func headSignature(head *htmlx.Node) string {
	var sig []string
	for _, m := range head.ElementsByTag("meta") {
		name := m.Attr("name")
		if name == "description" {
			continue // content-derived, not operator-derived
		}
		sig = append(sig, name+" "+m.Attr("content"))
	}
	sort.Strings(sig)
	out := ""
	for _, s := range sig {
		out += s + " "
	}
	return out
}

// MonetizationResult is Section 4.1's business-model classification.
type MonetizationResult struct {
	Inspected     int
	Subscriptions int // sites offering account/premium signup
	Paid          int // of those, behind a payment wall
}

// AnalyzeMonetization classifies landing pages.
func (st *Study) AnalyzeMonetization(porn *CrawlResult) MonetizationResult {
	var res MonetizationResult
	for _, host := range porn.Crawled {
		pv := porn.Visits[host]
		if pv == nil || pv.DOM == nil {
			continue
		}
		res.Inspected++
		m := consent.DetectMonetization(pv.DOM)
		if m.HasAccounts || m.HasPremium {
			res.Subscriptions++
			if m.Paid {
				res.Paid++
			}
		}
	}
	return res
}

// TopTrackingSites ranks porn sites by observed tracking intensity
// (ID cookies received + fingerprinting scripts), for the policy audit.
func (st *Study) TopTrackingSites(porn *CrawlResult, n int) []string {
	score := map[string]int{}
	for _, r := range porn.Log {
		for _, c := range r.SetCookies {
			if !c.Session && len(c.Value) >= 6 {
				score[r.SiteHost]++
			}
		}
	}
	for _, pv := range porn.Visits {
		for _, tr := range pv.Traces {
			if len(tr.Trace.Canvases) > 0 {
				score[tr.SiteHost] += 5
			}
		}
	}
	type hs struct {
		host string
		s    int
	}
	var ranked []hs
	for h, s := range score {
		ranked = append(ranked, hs{h, s})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].s != ranked[j].s {
			return ranked[i].s > ranked[j].s
		}
		return ranked[i].host < ranked[j].host
	})
	if n > len(ranked) {
		n = len(ranked)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = ranked[i].host
	}
	return out
}
