package core

import (
	"context"
	"sort"
	"sync"

	"pornweb/internal/htmlx"
	"pornweb/internal/lingo"
	"pornweb/internal/ranking"
	"pornweb/internal/webgen"
)

// Corpus is the outcome of the Section 3 compilation pipeline.
type Corpus struct {
	// Candidate counts per discovery source (before sanitization).
	FromAggregators int
	FromAlexaAdult  int
	FromKeywords    int
	Candidates      int // union of the three sources

	// Sanitization outcome.
	Unresponsive int // candidates that never answered
	NonPorn      int // responsive candidates whose content is not pornographic
	Porn         []string
	// Reference is the regular-web comparison corpus: popular sites from
	// the rank dataset that are not pornographic.
	Reference []string
}

// CompileCorpus runs the semi-supervised corpus compilation: merge the
// three discovery sources, crawl every candidate once (sanitize phase) and
// inspect the served content for pornographic markers — the automated
// stand-in for the paper's manual DOM/screenshot inspection.
func (st *Study) CompileCorpus(ctx context.Context) (*Corpus, error) {
	c := &Corpus{}
	candidates := map[string]bool{}

	agg := st.Eco.AggregatorIndex()
	c.FromAggregators = len(agg)
	for _, h := range agg {
		candidates[h] = true
	}
	adult := st.Eco.AlexaAdultCategory()
	c.FromAlexaAdult = len(adult)
	for _, h := range adult {
		candidates[h] = true
	}
	byKeyword := st.Rank.SearchKeywords(webgen.PornKeywords)
	c.FromKeywords = len(byKeyword)
	for _, h := range byKeyword {
		candidates[h] = true
	}
	c.Candidates = len(candidates)

	hosts := make([]string, 0, len(candidates))
	for h := range candidates {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)

	sess, err := st.session("ES", "sanitize")
	if err != nil {
		return nil, err
	}
	type verdict struct {
		host string
		ok   bool
		porn bool
	}
	verdicts := make([]verdict, len(hosts))
	st.forEach(ctx, len(hosts), func(i int) {
		host := hosts[i]
		res, _, err := sess.FetchPage(ctx, host, "/")
		if err != nil {
			verdicts[i] = verdict{host: host}
			return
		}
		doc := htmlx.Parse(res.Body)
		_, isPorn := lingo.ContainsAny(doc.InnerText(), lingo.AdultContentWords)
		verdicts[i] = verdict{host: host, ok: true, porn: isPorn}
	})
	for _, v := range verdicts {
		switch {
		case !v.ok:
			c.Unresponsive++
		case !v.porn:
			c.NonPorn++
		default:
			c.Porn = append(c.Porn, v.host)
		}
	}
	sort.Strings(c.Porn)

	// Reference corpus: top-10K-ranked hosts that did not land in the porn
	// corpus (the paper extracted Alexa's top-10K on a fixed day).
	pornSet := map[string]bool{}
	for _, h := range c.Porn {
		pornSet[h] = true
	}
	for _, h := range st.Rank.Hosts() {
		if pornSet[h] || candidates[h] {
			continue
		}
		stt := st.Rank.StatsFor(h)
		if stt.Best > 0 && stt.Best <= 10000 {
			c.Reference = append(c.Reference, h)
		}
	}
	sort.Strings(c.Reference)
	return c, nil
}

// forEach runs fn(i) for i in [0,n) on the study's worker pool. A
// dispatcher goroutine hands out indices one at a time, so cancellation
// stops dispatching immediately: in-flight items finish (their results
// are kept as a partial crawl) but no new item starts.
func (st *Study) forEach(ctx context.Context, n int, fn func(i int)) {
	workers := st.Cfg.Workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := 0; i < n; i++ {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// RankFigure is Figure 1: longitudinal popularity of every porn site.
type RankFigure struct {
	Stats []ranking.Stats // ordered by best rank (absent sites last)
	// AlwaysTop1M counts sites present in the top-1M every day of 2018.
	AlwaysTop1M int
	// AlwaysTop1K counts sites inside the top-1K every single day.
	AlwaysTop1K int
}

// RankStability computes Figure 1 over the porn corpus.
func (st *Study) RankStability(porn []string) RankFigure {
	var fig RankFigure
	for _, h := range porn {
		s := st.Rank.StatsFor(h)
		fig.Stats = append(fig.Stats, s)
		if s.DaysPresent == ranking.Days {
			fig.AlwaysTop1M++
			alwaysTopK := true
			for day := 0; day < ranking.Days; day++ {
				if r, ok := st.Rank.RankOn(h, day); !ok || r > 1000 {
					alwaysTopK = false
					break
				}
			}
			if alwaysTopK {
				fig.AlwaysTop1K++
			}
		}
	}
	sort.Slice(fig.Stats, func(i, j int) bool {
		bi, bj := fig.Stats[i].Best, fig.Stats[j].Best
		if bi == 0 {
			bi = 1 << 30
		}
		if bj == 0 {
			bj = 1 << 30
		}
		if bi != bj {
			return bi < bj
		}
		return fig.Stats[i].Host < fig.Stats[j].Host
	})
	return fig
}

// interval returns the measured popularity interval of a host (by its best
// 2018 rank in the longitudinal dataset).
func (st *Study) interval(host string) ranking.Interval {
	return ranking.IntervalOf(st.Rank.StatsFor(host).Best)
}
