package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"pornweb/internal/provenance"
	"pornweb/internal/store"
	"pornweb/internal/webgen"
)

// storeCfg is provCfg with a durable visit store attached.
func storeCfg(seed uint64, dir string) Config {
	return Config{
		Params:    webgen.Params{Seed: seed, Scale: 0.004},
		Countries: []string{"ES", "US", "RU"},
		Workers:   4,
		Timeout:   5 * time.Second,
		StoreDir:  dir,
	}
}

// runToCompletion runs one full study and closes it, returning the
// manifest bytes WriteProvenance would emit. Unlike runManifest it
// closes the study before returning, releasing the store directory for
// a subsequent resume.
func runToCompletion(t *testing.T, cfg Config) (*provenance.Manifest, []byte) {
	t.Helper()
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Run(t.Context()); err != nil {
		t.Fatal(err)
	}
	if st.Provenance == nil {
		t.Fatal("Run completed but Study.Provenance is nil")
	}
	raw, err := json.MarshalIndent(st.Provenance, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return st.Provenance, append(raw, '\n')
}

// TestResumeEquivalence is the crash-safety property in miniature: a
// store-backed run killed at a seeded append, then resumed against the
// surviving directory, must produce a manifest byte-identical to an
// uninterrupted run — for a kill before the first durable visit, one
// mid-corpus, and one at the last append.
func TestResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs seven full studies")
	}
	const seed = 11
	base, rawBase := runToCompletion(t, storeCfg(seed, t.TempDir()))
	if base.Store == nil || base.Store.Entries == 0 {
		t.Fatal("store-backed run recorded no store info in its manifest")
	}
	total := base.Store.Entries

	kills := []struct {
		name  string
		after int
		torn  bool
	}{
		{"first-append", 1, false},
		{"mid-corpus", total / 2, true},
		{"last-visit", total, true},
	}
	for _, k := range kills {
		t.Run(k.name, func(t *testing.T) {
			dir := t.TempDir()

			// Run 1: the kill poisons the store at the seeded append; the
			// process survives (Exit nil) but nothing persists past the kill,
			// leaving the directory exactly as a crash would.
			cfg := storeCfg(seed, dir)
			cfg.StoreKill = &store.KillSwitch{After: k.after, Torn: k.torn}
			st, err := NewStudy(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.Run(t.Context()); err != nil {
				st.Close()
				t.Fatal(err)
			}
			durable := st.VisitStore().Len()
			st.Close()
			if durable >= total {
				t.Fatalf("kill at append %d left %d durable entries, want < %d", k.after, durable, total)
			}

			// Run 2: resume replays the durable prefix and crawls the rest.
			rcfg := storeCfg(seed, dir)
			rcfg.StoreResume = true
			resumed, rawResumed := runToCompletion(t, rcfg)
			if !bytes.Equal(rawBase, rawResumed) {
				var buf bytes.Buffer
				provenance.Diff(base, resumed).Format(&buf)
				t.Fatalf("resumed manifest differs from uninterrupted run:\n%s", buf.String())
			}
			if resumed.Store.Entries != total {
				t.Fatalf("resumed store holds %d entries, want %d", resumed.Store.Entries, total)
			}
		})
	}
}

// TestResumeFingerprintMismatch: pointing a resume at a store written
// under a different configuration must refuse with the typed error
// (which cmd/pornstudy maps to exit code 2), not silently mix runs.
func TestResumeFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStudy(storeCfg(11, dir))
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	cfg := storeCfg(12, dir) // different seed -> different fingerprint
	cfg.StoreResume = true
	if _, err := NewStudy(cfg); !errors.Is(err, store.ErrFingerprintMismatch) {
		t.Fatalf("resume with mismatched config: err = %v, want ErrFingerprintMismatch", err)
	}
}

// TestStoreDirRefusedWithoutResume: reusing a store directory without
// asking for a resume is refused rather than silently appended to.
func TestStoreDirRefusedWithoutResume(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStudy(storeCfg(11, dir))
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := NewStudy(storeCfg(11, dir)); !errors.Is(err, store.ErrExists) {
		t.Fatalf("fresh open of existing store: err = %v, want ErrExists", err)
	}
}
