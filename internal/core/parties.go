package core

import (
	"context"
	"sort"

	"pornweb/internal/attribution"
	"pornweb/internal/domain"
	"pornweb/internal/ranking"
)

// Table2 compares first/third-party and ATS domain populations between the
// porn and regular corpora.
type Table2 struct {
	PornCorpus    int // successfully crawled porn sites
	RegularCorpus int

	PornFirstParty    int // distinct extra first-party FQDNs
	RegularFirstParty int

	PornThirdParty         int
	RegularThirdParty      int
	ThirdPartyIntersection int

	PornATS         int
	RegularATS      int
	ATSIntersection int
}

// isATS reports whether the merged blocklists cover the host at the
// base-FQDN level (the paper's relaxed organization-level matching).
func (st *Study) isATS(host string) bool {
	return st.EasyList.CoversHost(host) || st.EasyList.CoversHost(domain.Base(host))
}

// AnalyzeThirdParties builds Table 2 from the two main crawls.
func (st *Study) AnalyzeThirdParties(porn, regular *CrawlResult) Table2 {
	t := Table2{
		PornCorpus:    len(porn.Crawled),
		RegularCorpus: len(regular.Crawled),
	}
	countFP := func(cr *CrawlResult) int {
		seen := map[string]bool{}
		for _, hosts := range cr.firstPartyExtras() {
			for _, h := range hosts {
				seen[h] = true
			}
		}
		return len(seen)
	}
	t.PornFirstParty = countFP(porn)
	t.RegularFirstParty = countFP(regular)

	pornTP := porn.allThirdPartyHosts()
	regTP := regular.allThirdPartyHosts()
	t.PornThirdParty = len(pornTP)
	t.RegularThirdParty = len(regTP)

	regSet := map[string]bool{}
	for _, h := range regTP {
		regSet[h] = true
	}
	pornATS := map[string]bool{}
	regATS := map[string]bool{}
	for _, h := range pornTP {
		if regSet[h] {
			t.ThirdPartyIntersection++
		}
		if st.isATS(h) {
			pornATS[h] = true
		}
	}
	for _, h := range regTP {
		if st.isATS(h) {
			regATS[h] = true
		}
	}
	t.PornATS = len(pornATS)
	t.RegularATS = len(regATS)
	for h := range pornATS {
		if regATS[h] {
			t.ATSIntersection++
		}
	}
	return t
}

// IntervalRow is one row of Table 3: third-party diversity per popularity
// interval.
type IntervalRow struct {
	Interval   ranking.Interval
	Sites      int
	ThirdParty int // distinct third-party FQDNs on this interval's sites
	UniqueHere int // FQDNs appearing only in this interval
}

// AnalyzePopularityIntervals builds Table 3 from the porn crawl.
func (st *Study) AnalyzePopularityIntervals(porn *CrawlResult) []IntervalRow {
	perSite := porn.thirdPartyHostsBySite()
	bySiteInterval := map[ranking.Interval]map[string]bool{}
	siteCount := map[ranking.Interval]int{}
	for _, site := range porn.Crawled {
		iv := st.interval(site)
		siteCount[iv]++
		if bySiteInterval[iv] == nil {
			bySiteInterval[iv] = map[string]bool{}
		}
		for _, h := range perSite[site] {
			bySiteInterval[iv][h] = true
		}
	}
	// Count in how many intervals each FQDN appears.
	seenIn := map[string]int{}
	for _, hosts := range bySiteInterval {
		for h := range hosts {
			seenIn[h]++
		}
	}
	rows := make([]IntervalRow, 0, int(ranking.NumIntervals))
	for iv := ranking.IntervalTop1K; iv < ranking.NumIntervals; iv++ {
		row := IntervalRow{Interval: iv, Sites: siteCount[iv], ThirdParty: len(bySiteInterval[iv])}
		for h := range bySiteInterval[iv] {
			if seenIn[h] == 1 {
				row.UniqueHere++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// SharedAcrossAllIntervals counts third-party FQDNs present in every
// popularity tier (the paper: only 3%).
func (st *Study) SharedAcrossAllIntervals(porn *CrawlResult) (shared, total int) {
	perSite := porn.thirdPartyHostsBySite()
	byInterval := map[ranking.Interval]map[string]bool{}
	for _, site := range porn.Crawled {
		iv := st.interval(site)
		if byInterval[iv] == nil {
			byInterval[iv] = map[string]bool{}
		}
		for _, h := range perSite[site] {
			byInterval[iv][h] = true
		}
	}
	all := map[string]int{}
	for _, hosts := range byInterval {
		for h := range hosts {
			all[h]++
		}
	}
	for _, n := range all {
		total++
		if n == int(ranking.NumIntervals) {
			shared++
		}
	}
	return shared, total
}

// OrgRow is one bar of Figure 3: an organization's prevalence in each
// corpus.
type OrgRow struct {
	Org         string
	PornPrev    float64
	RegularPrev float64
}

// Attributor builds the three-stage attributor from a crawl's certificate
// observations plus the Disconnect-style seed list.
func (st *Study) Attributor(crs ...*CrawlResult) *attribution.Attributor {
	certOrgs := map[string]string{}
	for _, cr := range crs {
		for h, org := range cr.CertOrgs {
			certOrgs[h] = org
		}
	}
	return &attribution.Attributor{
		Disconnect: st.Eco.DisconnectList(),
		CertOrgs:   certOrgs,
	}
}

// AnalyzeOrganizations builds Figure 3: the top-N third-party
// organizations by porn-corpus prevalence, with their regular-web
// prevalence for comparison. It also returns attribution coverage.
// Certificate information is collected actively (ProbeCertOrgs) for every
// observed third-party FQDN, on top of what the crawls captured passively.
func (st *Study) AnalyzeOrganizations(porn, regular *CrawlResult, topN int) ([]OrgRow, attribution.Coverage) {
	attr := st.Attributor(porn, regular)
	probeSet := map[string]bool{}
	for _, h := range porn.allThirdPartyHosts() {
		probeSet[h] = true
	}
	for _, h := range regular.allThirdPartyHosts() {
		probeSet[h] = true
	}
	toProbe := make([]string, 0, len(probeSet))
	for h := range probeSet {
		if _, ok := attr.CertOrgs[h]; !ok {
			toProbe = append(toProbe, h)
		}
	}
	sort.Strings(toProbe)
	for h, org := range st.ProbeCertOrgs(context.Background(), toProbe) {
		attr.CertOrgs[h] = org
	}
	pornPrev := attr.PrevalenceByOrg(porn.thirdPartyHostsBySite())
	regPrev := attr.PrevalenceByOrg(regular.thirdPartyHostsBySite())

	rows := make([]OrgRow, 0, len(pornPrev))
	for org, p := range pornPrev {
		rows = append(rows, OrgRow{Org: org, PornPrev: p, RegularPrev: regPrev[org]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].PornPrev != rows[j].PornPrev {
			return rows[i].PornPrev > rows[j].PornPrev
		}
		return rows[i].Org < rows[j].Org
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	cov := attr.Cover(porn.allThirdPartyHosts())
	return rows, cov
}
