package core

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"pornweb/internal/webgen"
)

// scrape fetches a path from the shared study's admin listener.
func scrape(t *testing.T, st *Study, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + st.AdminAddr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestMetricsEndpoint asserts that after a full Run the admin listener
// serves the cross-cutting telemetry the instrumentation promises:
// per-stage duration histograms, per-country crawl counters, webserver
// vhost and TLS counters, blocklist match counts, browser page-load
// distributions and the third-party cache-hit counter.
func TestMetricsEndpoint(t *testing.T) {
	st, _ := run(t)
	if st.AdminAddr() == "" {
		t.Fatal("MetricsAddr was set; admin listener must be up")
	}
	status, body := scrape(t, st, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	for _, want := range []string{
		// pipeline stages
		`study_stage_seconds_bucket{stage="crawl/porn-ES",le="+Inf"}`,
		`study_stage_seconds_count{stage="analysis/cookies"} 1`,
		`study_stage_seconds_count{stage="analysis/geo"} 1`,
		// per-country crawler counters and latency
		`crawler_requests_total{class="2xx",country="ES"}`,
		`crawler_requests_total{class="2xx",country="US"}`,
		`crawler_request_seconds_count{country="ES"}`,
		`crawler_https_downgrades_total{country="ES"}`,
		// browser page loads
		`browser_page_loads_total{country="ES",result="ok"}`,
		`browser_subresources_total{country="ES",kind="script"}`,
		// webserver vhosts and TLS
		`webserver_requests_total{kind="site"}`,
		`webserver_requests_total{kind="service"}`,
		`webserver_vhost_requests_total{host="`,
		`webserver_tls_handshakes_total{result="served"}`,
		`webserver_tls_handshakes_total{result="no_tls"}`,
		`webserver_certs_minted_total`,
		// blocklist and memoization telemetry
		`blocklist_checks_total{list="easylist+easyprivacy"}`,
		`crawl_tp_cache_hits_total{country="ES"}`,
		// logger lines
		`log_lines_total{level="info"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsValues cross-checks exposed counters against the run's own
// ground truth.
func TestMetricsValues(t *testing.T) {
	st, res := run(t)

	// The ES porn+reference crawls alone exceed the corpus size in
	// requests; every one must have been counted somewhere.
	var total uint64
	for _, class := range []string{"1xx", "2xx", "3xx", "4xx", "5xx", "error"} {
		total += st.Metrics.Counter("crawler_requests_total", "country", "ES", "class", class).Value()
	}
	if total < uint64(len(res.Corpus.Porn)) {
		t.Errorf("ES request count %d < porn corpus %d", total, len(res.Corpus.Porn))
	}

	// Run consumes thirdPartyHostsBySite from many analyses; all but the
	// first computation must be cache hits.
	hits := st.Metrics.Counter("crawl_tp_cache_hits_total", "country", "ES").Value()
	if hits < 5 {
		t.Errorf("third-party cache hits = %d, want several (memoization broken?)", hits)
	}

	// Stage histogram must cover every Run stage exactly once.
	for _, stage := range []string{"corpus", "crawl/porn-ES", "crawl/reference-ES",
		"crawl/porn-US", "crawl/interactive-ES", "analysis/third-parties", "analysis/geo"} {
		h := st.Metrics.Histogram("study_stage_seconds", nil, "stage", stage)
		if h.Count() != 1 {
			t.Errorf("stage %s recorded %d times, want 1", stage, h.Count())
		}
	}

	// HTTPS-downgrade counter must agree with the planted ground truth:
	// HTTP-only porn sites force the crawler's HTTPS-then-HTTP probing.
	httpOnly := 0
	for _, s := range st.Eco.PornSites {
		if !st.Eco.HTTPSCapable(s.Host) {
			httpOnly++
		}
	}
	if httpOnly > 3 {
		if st.Metrics.Counter("crawler_https_downgrades_total", "country", "ES").Value() == 0 {
			t.Errorf("%d HTTP-only sites planted but no downgrades counted", httpOnly)
		}
	}
}

// TestSpansEndpoint asserts the stage spans are exposed and nested under
// the study/run root.
func TestSpansEndpoint(t *testing.T) {
	st, _ := run(t)
	status, body := scrape(t, st, "/spans")
	if status != http.StatusOK {
		t.Fatalf("/spans status %d", status)
	}
	for _, want := range []string{`"study/run"`, `"stage/crawl/porn-ES"`, `"crawl/ES"`, `"parent_id"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/spans missing %q", want)
		}
	}
	spans := st.Tracer.Recent()
	var rootID uint64
	for _, s := range spans {
		if s.Name == "study/run" {
			rootID = s.ID
		}
	}
	if rootID == 0 {
		t.Fatal("no study/run root span recorded")
	}
	found := false
	for _, s := range spans {
		if strings.HasPrefix(s.Name, "stage/analysis/") && s.ParentID == rootID {
			found = true
			break
		}
	}
	if !found {
		t.Error("no analysis stage span parented to study/run")
	}
}

// TestPprofReachable asserts the profiling endpoints ride along on the
// admin listener.
func TestPprofReachable(t *testing.T) {
	st, _ := run(t)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/profile?seconds=1"} {
		status, _ := scrape(t, st, path)
		if status != http.StatusOK {
			t.Errorf("GET %s: status %d", path, status)
		}
	}
}

// TestNoListenerWithoutAddr asserts an unset MetricsAddr starts nothing.
func TestNoListenerWithoutAddr(t *testing.T) {
	st, err := NewStudy(Config{Params: webgen.Params{Seed: 11, Scale: 0.004}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.AdminAddr() != "" {
		t.Fatalf("admin listener %q started without MetricsAddr", st.AdminAddr())
	}
	if st.Metrics == nil || st.Tracer == nil || st.Log == nil {
		t.Fatal("obs handles must exist even without a listener")
	}
}
