package core

import (
	"bytes"
	"context"
	"encoding/json"
	"regexp"
	"runtime/pprof"
	"testing"
	"time"

	"pornweb/internal/webgen"
)

// stageCPULine extracts the stage label of one study_stage_cpu_seconds
// sample from the exposition text.
var stageCPULine = regexp.MustCompile(`study_stage_cpu_seconds\{stage="([^"]+)"\}`)

// TestStageResourceCardinality bounds the per-stage resource metrics'
// label space: every stage label on study_stage_cpu_seconds must name a
// declared pipeline stage, and the row count can never exceed the
// pipeline's stage count — the cardinality contract that keeps the
// registry (and any scraping backend) safe from label explosions.
func TestStageResourceCardinality(t *testing.T) {
	st, _ := run(t)
	var buf bytes.Buffer
	if err := st.Metrics.WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	declared := map[string]bool{}
	for name := range st.buildPipeline(newPipeState()).Dependencies() {
		declared[name] = true
	}
	seen := map[string]bool{}
	for _, m := range stageCPULine.FindAllStringSubmatch(buf.String(), -1) {
		seen[m[1]] = true
		if !declared[m[1]] {
			t.Errorf("study_stage_cpu_seconds carries undeclared stage label %q", m[1])
		}
	}
	if len(seen) == 0 {
		t.Fatal("no study_stage_cpu_seconds samples after a full run")
	}
	if len(seen) > len(declared) {
		t.Errorf("%d stage labels exceed the pipeline's %d stages", len(seen), len(declared))
	}
}

// TestManifestUnaffectedByProfiling pins the provenance guarantee the
// profiling harness leans on: running the identical seeded study with a
// CPU profile attached must produce a byte-identical manifest — all
// volatile observation (timings, resource deltas, profiles) stays in
// sidecars. It doubles as the exposition-stability satellite for the
// study registry: with no runtime poller attached (no MetricsAddr),
// two renders after Run are byte-identical.
func TestManifestUnaffectedByProfiling(t *testing.T) {
	if testing.Short() {
		t.Skip("two extra study runs")
	}
	runOnce := func(profiled bool) ([]byte, *Study) {
		st, err := NewStudy(Config{
			Params:  webgen.Params{Seed: 2019, Scale: 0.004},
			Workers: 8,
			Timeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		var prof bytes.Buffer
		if profiled {
			if err := pprof.StartCPUProfile(&prof); err != nil {
				t.Skipf("cannot start CPU profile: %v", err)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		res, err := st.Run(ctx)
		if profiled {
			pprof.StopCPUProfile()
		}
		if err != nil {
			st.Close()
			t.Fatal(err)
		}
		m, err := st.BuildManifest(res)
		if err != nil {
			st.Close()
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			st.Close()
			t.Fatal(err)
		}
		return data, st
	}
	plain, st1 := runOnce(false)
	defer st1.Close()
	profiled, st2 := runOnce(true)
	defer st2.Close()
	if !bytes.Equal(plain, profiled) {
		t.Error("manifest changed when the run was profiled; volatile data leaked into provenance")
	}

	// Exposition stability: nothing mutates the registry once Run is done
	// and no poller is attached, so two renders are byte-identical.
	var a, b bytes.Buffer
	if err := st2.Metrics.WriteExposition(&a); err != nil {
		t.Fatal(err)
	}
	if err := st2.Metrics.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exposition renders of a quiescent study registry differ")
	}
}
