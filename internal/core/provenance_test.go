package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"pornweb/internal/provenance"
	"pornweb/internal/webgen"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// provCfg is the fixed small-study config every provenance test runs:
// small enough to run several full studies per test binary, with a
// non-default country list so the geo fan-out stages exist.
func provCfg(seed uint64, serial bool) Config {
	return Config{
		Params:    webgen.Params{Seed: seed, Scale: 0.004},
		Countries: []string{"ES", "US", "RU"},
		Workers:   4,
		Serial:    serial,
		Timeout:   5 * time.Second,
	}
}

// runManifest runs one full study and returns its manifest plus the exact
// bytes manifest.json would contain.
func runManifest(t *testing.T, cfg Config) (*provenance.Manifest, []byte) {
	t.Helper()
	st, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Run(t.Context()); err != nil {
		t.Fatal(err)
	}
	if st.Provenance == nil {
		t.Fatal("Run completed but Study.Provenance is nil")
	}
	dir := t.TempDir()
	if err := st.WriteProvenance(dir); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "runinfo.json")); err != nil {
		t.Fatalf("runinfo.json sidecar missing: %v", err)
	}
	return st.Provenance, raw
}

// TestManifestDeterministic is the determinism gate in miniature: two
// independent studies with the same config must write byte-identical
// manifest.json files, and a scheduled run must match a serial one — the
// schedule changes wall-clock, never provenance.
func TestManifestDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four full studies")
	}
	mSerial, rawSerial := runManifest(t, provCfg(11, true))
	_, rawSerial2 := runManifest(t, provCfg(11, true))
	if !bytes.Equal(rawSerial, rawSerial2) {
		t.Fatal("two serial runs with identical config produced different manifest.json bytes")
	}
	mSched, rawSched := runManifest(t, provCfg(11, false))
	if !bytes.Equal(rawSerial, rawSched) {
		d := provenance.Diff(mSerial, mSched)
		var buf bytes.Buffer
		d.Format(&buf)
		t.Fatalf("serial and scheduled manifests differ:\n%s", buf.String())
	}
	if d := provenance.Diff(mSerial, mSched); !d.Identical {
		t.Fatalf("Diff of equal manifests not identical: %+v", d)
	}

	// A perturbed seed must diverge, and the DAG walk must pin the
	// divergence on the earliest stage: the corpus every crawl consumed.
	mOther, _ := runManifest(t, provCfg(13, true))
	d := provenance.Diff(mSerial, mOther)
	if d.Identical {
		t.Fatal("runs with different seeds produced identical manifests")
	}
	if !d.SeedChanged || !d.ConfigChanged {
		t.Errorf("seed perturbation: SeedChanged=%v ConfigChanged=%v, want both true", d.SeedChanged, d.ConfigChanged)
	}
	if want := []string{"corpus"}; !reflect.DeepEqual(d.RootStages, want) {
		t.Errorf("RootStages = %v, want %v", d.RootStages, want)
	}
	for _, fd := range d.Figures {
		if len(fd.EarliestStages) == 0 {
			t.Errorf("figure %s diverged with no earliest stage", fd.Name)
			continue
		}
		if fd.EarliestStages[0] != "corpus" {
			t.Errorf("figure %s earliest stages = %v, want [corpus]", fd.Name, fd.EarliestStages)
		}
	}
}

// TestManifestContents sanity-checks one run's manifest shape: every
// pipeline stage recorded, inputs wired from the DAG, corpora digested,
// every figure present with a stage that exists.
func TestManifestContents(t *testing.T) {
	cfg := provCfg(11, false)
	m, _ := runManifest(t, cfg)

	if m.Version != provenance.ManifestVersion {
		t.Errorf("Version = %d, want %d", m.Version, provenance.ManifestVersion)
	}
	if m.Seed != 11 || m.Scale != 0.004 {
		t.Errorf("Seed/Scale = %d/%v, want 11/0.004", m.Seed, m.Scale)
	}
	if m.ConfigFingerprint == "" {
		t.Error("empty config fingerprint")
	}
	for _, c := range []string{"porn", "reference"} {
		ci, ok := m.Corpora[c]
		if !ok || ci.Count == 0 || ci.Digest == "" {
			t.Errorf("corpus %s missing or empty: %+v", c, ci)
		}
	}
	for name := range pipelineDeps(cfg.Countries) {
		info, ok := m.Stages[name]
		if !ok {
			t.Errorf("stage %s missing from manifest", name)
			continue
		}
		if info.Digest == "" {
			t.Errorf("stage %s has no digest", name)
		}
	}
	if got := m.Stages["crawl/porn-ES"].Inputs; !reflect.DeepEqual(got, []string{"corpus"}) {
		t.Errorf("crawl/porn-ES inputs = %v, want [corpus]", got)
	}
	if len(m.Figures) != len(figureSpecs) {
		t.Errorf("manifest has %d figures, want %d", len(m.Figures), len(figureSpecs))
	}
	for name, fi := range m.Figures {
		if len(fi.Stages) == 0 || fi.Digest == "" {
			t.Errorf("figure %s incomplete: %+v", name, fi)
			continue
		}
		if _, ok := m.Stages[fi.Stages[0]]; !ok {
			t.Errorf("figure %s references unknown stage %s", name, fi.Stages[0])
		}
	}
}

// TestPipelineDependencies pins the static DAG the manifest publishes
// against the live graph buildPipeline schedules: if a stage or edge is
// added to one and not the other, the diff gate would walk a stale DAG.
func TestPipelineDependencies(t *testing.T) {
	countries := []string{"ES", "US", "RU", "IN"}
	st := &Study{Cfg: Config{Countries: countries}}
	g := st.buildPipeline(newPipeState())

	got := g.Dependencies()
	want := pipelineDeps(countries)
	if len(got) != len(want) {
		t.Errorf("graph has %d stages, static map %d", len(got), len(want))
	}
	for name, deps := range want {
		gdeps, ok := got[name]
		if !ok {
			t.Errorf("stage %s in pipelineDeps but not in graph", name)
			continue
		}
		sort.Strings(gdeps)
		sorted := append([]string(nil), deps...)
		sort.Strings(sorted)
		if !reflect.DeepEqual(gdeps, sorted) && (len(gdeps) != 0 || len(sorted) != 0) {
			t.Errorf("stage %s deps: graph %v, static %v", name, gdeps, sorted)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("stage %s in graph but not in pipelineDeps", name)
		}
	}
}

// TestManifestGolden compares one fixed run's manifest against the
// checked-in golden file, so any change to an analysis, the digest
// scheme or the manifest schema shows up as a reviewable diff. Regenerate
// with: go test ./internal/core -run TestManifestGolden -update
func TestManifestGolden(t *testing.T) {
	_, raw := runManifest(t, provCfg(11, true))
	golden := filepath.Join("testdata", "manifest.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(raw, want) {
		a, _ := provenance.LoadManifest(golden)
		var b provenance.Manifest
		dir := t.TempDir()
		path := filepath.Join(dir, "got.json")
		os.WriteFile(path, raw, 0o644)
		if got, err2 := provenance.LoadManifest(path); err2 == nil {
			b = *got
		}
		var buf bytes.Buffer
		provenance.Diff(a, &b).Format(&buf)
		t.Fatalf("manifest drifted from golden (regenerate with -update if intentional):\n%s", buf.String())
	}
}
