package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"sync"

	"pornweb/internal/browser"
	"pornweb/internal/crawler"
	"pornweb/internal/domain"
	"pornweb/internal/obs"
)

// CrawlResult is one corpus crawled from one vantage point with the
// instrumented browser.
type CrawlResult struct {
	Country string
	// Attempted is how many hosts the crawl was asked to visit (a
	// canceled crawl may have visited fewer — see Visits).
	Attempted int
	// Visits maps site host to its page-load outcome (includes failures).
	Visits map[string]*browser.PageVisit
	// Crawled lists the hosts whose landing page loaded.
	Crawled []string
	// FailuresByClass counts failed page visits by failure-taxonomy
	// class (resilience.Class strings).
	FailuresByClass map[string]int
	// RequestFailures counts terminal request failures (every attempt
	// exhausted) by taxonomy class, from the session's counters.
	RequestFailures map[string]uint64
	// Log is the session's full request log.
	Log []crawler.Record
	// CertOrgs maps observed hosts to TLS certificate organizations.
	CertOrgs map[string]string

	// The third-party extraction rebuilds the classifier and rescans the
	// full request log; a dozen analyses consume the same result, so it is
	// computed once and cached. tpCacheHits counts the saved rescans.
	tpOnce      sync.Once
	tpBySite    map[string][]string
	allTPOnce   sync.Once
	allTP       []string
	tpCacheHits *obs.Counter
}

// Crawl performs the instrumented (OpenWPM-analog) crawl of the given
// hosts from a country. One browser session is shared across all visits,
// as in the paper, so cookie state persists between sites.
func (st *Study) Crawl(ctx context.Context, hosts []string, country string) (*CrawlResult, error) {
	return st.CrawlStage(ctx, hosts, country, "", "")
}

// CrawlStage is Crawl with provenance: stageName names the pipeline stage
// (e.g. "crawl/porn-ES") and corpus the corpus being crawled ("porn",
// "reference"). Both label the per-visit flight events, and a non-empty
// stageName records the crawl log's record count and content digest into
// the study's provenance recorder when the crawl completes. An empty
// stageName records nothing — the library-caller behaviour of Crawl.
func (st *Study) CrawlStage(ctx context.Context, hosts []string, country, stageName, corpus string) (*CrawlResult, error) {
	ctx, span := st.Tracer.Start(ctx, "crawl/"+country)
	defer span.End()
	// Refine the ambient stage label with the crawl's vantage and corpus,
	// so profile samples split by where (and over which site set) the CPU
	// went; the forEach workers below inherit the whole label set.
	prev := ctx
	ctx = pprof.WithLabels(ctx, pprof.Labels("vantage", country, "corpus", corpus))
	pprof.SetGoroutineLabels(ctx)
	defer pprof.SetGoroutineLabels(prev)
	sess, err := st.session(country, "crawl")
	if err != nil {
		return nil, err
	}
	b := browser.New(sess)
	b.Stage = stageName
	b.Corpus = corpus
	b.Rank = st.Rank.BaseRank
	cr := &CrawlResult{
		Country:         country,
		Attempted:       len(hosts),
		Visits:          make(map[string]*browser.PageVisit, len(hosts)),
		FailuresByClass: map[string]int{},
		tpCacheHits:     st.Metrics.Counter("crawl_tp_cache_hits_total", "country", country),
	}
	// With a durable store, visits a previous run already persisted are
	// replayed instead of refetched; only the rest are crawled, and each
	// completed visit streams into the store as it finishes.
	pending, replayed := st.hostsToVisit(stageName, corpus, country, hosts, false)
	// A sharded study dispatches the pending visits across the worker
	// fleet and folds the merged entries back in through the same
	// replay path a resumed run uses — machinery the crash-safety gate
	// already holds to byte-identity, which is why sharded == serial.
	if st.coord != nil && stageName != "" && len(pending) > 0 {
		entries, err := st.dispatchShards(ctx, stageName, corpus, country, pending, false)
		if err != nil {
			return nil, err
		}
		replayed, err = st.foldShardEntries(stageName, corpus, country, pending, entries, replayed, false)
		if err != nil {
			return nil, err
		}
		pending = nil
	}
	var mu sync.Mutex
	st.forEach(ctx, len(pending), func(i int) {
		pv := b.Visit(ctx, pending[i])
		mu.Lock()
		cr.Visits[pending[i]] = pv
		mu.Unlock()
		if st.store != nil && stageName != "" {
			st.persistVisit(storeKey(stageName, corpus, country, pending[i]),
				pageEntry(pv, sess, pending[i]))
		}
	})
	for _, h := range hosts {
		if e := replayed[h]; e != nil {
			cr.Visits[h] = e.Page
		}
	}
	for h, pv := range cr.Visits {
		if pv.OK {
			cr.Crawled = append(cr.Crawled, h)
		} else if pv.FailClass != "" {
			cr.FailuresByClass[pv.FailClass]++
		}
	}
	sort.Strings(cr.Crawled)
	cr.Log = sess.Log()
	cr.CertOrgs = sess.CertOrgs()
	cr.RequestFailures = sess.FailureCounts()
	if len(replayed) > 0 {
		cr.Log, cr.CertOrgs, cr.RequestFailures =
			mergeReplayed(hosts, replayed, cr.Log, cr.CertOrgs, cr.RequestFailures)
	}
	span.SetAttr("sites", fmt.Sprint(len(cr.Crawled)))
	span.SetAttr("requests", fmt.Sprint(len(cr.Log)))
	if stageName != "" {
		n, digest := crawlLogDigest(cr.Log)
		st.prov.RecordStage(stageName, n, digest)
		// A stage boundary is a natural durability point: everything this
		// stage persisted becomes crash-proof before the next stage starts.
		st.checkpointStore()
	}
	st.Log.Infof("crawl[%s]: %d/%d sites, %d requests", country, len(cr.Crawled), len(hosts), len(cr.Log))
	return cr, nil
}

// classifier builds the first/third-party classifier from the crawl's
// observed certificates (keyed by base domain as the classifier expects).
func (cr *CrawlResult) classifier() *domain.Classifier {
	byBase := map[string]string{}
	for host, org := range cr.CertOrgs {
		byBase[domain.Base(host)] = org
	}
	return &domain.Classifier{CertOrg: byBase}
}

// ThirdPartyHostsBySite extracts, per successfully crawled site, the set
// of contacted third-party FQDNs (sorted).
func (cr *CrawlResult) ThirdPartyHostsBySite() map[string][]string {
	return cr.thirdPartyHostsBySite()
}

// AllThirdPartyHosts returns the global sorted set of third-party FQDNs
// observed in this crawl.
func (cr *CrawlResult) AllThirdPartyHosts() []string {
	return cr.allThirdPartyHosts()
}

// thirdPartyHostsBySite extracts, per successfully crawled site, the set of
// contacted third-party FQDNs. The first call computes and caches the map
// (every analysis after the first is a cache hit, counted in
// crawl_tp_cache_hits_total); callers share the cached value and must not
// mutate it.
func (cr *CrawlResult) thirdPartyHostsBySite() map[string][]string {
	hit := true
	cr.tpOnce.Do(func() {
		hit = false
		cr.tpBySite = cr.computeThirdPartyHostsBySite()
	})
	if hit {
		cr.tpCacheHits.Inc()
	}
	return cr.tpBySite
}

func (cr *CrawlResult) computeThirdPartyHostsBySite() map[string][]string {
	cls := cr.classifier()
	set := map[string]map[string]bool{}
	for _, h := range cr.Crawled {
		set[h] = map[string]bool{}
	}
	for _, r := range cr.Log {
		if r.SiteHost == "" || r.Host == "" || r.Host == r.SiteHost || r.Status == 0 {
			// Status 0 = transport failure: the host never answered (dead,
			// geo-blocked, or refused), so nothing was embedded from it.
			continue
		}
		sites, ok := set[r.SiteHost]
		if !ok {
			continue
		}
		if cls.Classify(r.SiteHost, r.Host) == domain.ThirdParty {
			sites[r.Host] = true
		}
	}
	out := make(map[string][]string, len(set))
	for site, hosts := range set {
		list := make([]string, 0, len(hosts))
		for h := range hosts {
			list = append(list, h)
		}
		sort.Strings(list)
		out[site] = list
	}
	return out
}

// firstPartyExtras extracts, per site, contacted first-party FQDNs other
// than the landing host itself.
func (cr *CrawlResult) firstPartyExtras() map[string][]string {
	cls := cr.classifier()
	set := map[string]map[string]bool{}
	for _, r := range cr.Log {
		if r.SiteHost == "" || r.Host == "" || r.Host == r.SiteHost || r.Status == 0 {
			continue
		}
		if cls.Classify(r.SiteHost, r.Host) == domain.FirstParty {
			if set[r.SiteHost] == nil {
				set[r.SiteHost] = map[string]bool{}
			}
			set[r.SiteHost][r.Host] = true
		}
	}
	out := make(map[string][]string, len(set))
	for site, hosts := range set {
		list := make([]string, 0, len(hosts))
		for h := range hosts {
			list = append(list, h)
		}
		sort.Strings(list)
		out[site] = list
	}
	return out
}

// allThirdPartyHosts returns the global set of third-party FQDNs, computed
// once from the per-site cache and memoized (callers must not mutate it).
func (cr *CrawlResult) allThirdPartyHosts() []string {
	cr.allTPOnce.Do(func() {
		seen := map[string]bool{}
		for _, hosts := range cr.thirdPartyHostsBySite() {
			for _, h := range hosts {
				seen[h] = true
			}
		}
		out := make([]string, 0, len(seen))
		for h := range seen {
			out = append(out, h)
		}
		sort.Strings(out)
		cr.allTP = out
	})
	return cr.allTP
}
