package core

import (
	"context"
	"sort"
	"strings"

	"pornweb/internal/cookies"
	"pornweb/internal/domain"
	"pornweb/internal/fingerprint"
	"pornweb/internal/malware"
	"pornweb/internal/ranking"
)

// loopbackClientIP is the address the substrate server sees (the analog of
// the paper's "IP address of our physical machine").
const loopbackClientIP = "127.0.0.1"

// CookieCensus is the Section 5.1.1 census plus the encoded-data findings.
type CookieCensus struct {
	Total                int
	SitesWithCookies     int // sites installing >= 1 cookie
	SitesWithCookiesFrac float64
	IDCookies            int // potential-identifier cookies
	Over1000Chars        int
	ThirdPartyID         int
	ThirdPartyDomains    int
	SitesWithTPID        int
	SitesWithTPIDFrac    float64

	CookiesWithClientIP int
	SitesWithIPCookies  int
	GeoCookies          int
	SitesWithGeoCookies int
	// Top popular name=value pairs and the share of sites carrying the
	// 100 most popular ones.
	Top100SiteShare float64
}

// CookieDomainRow is one row of Table 4: a third-party domain delivering
// potential-ID cookies.
type CookieDomainRow struct {
	Domain       string // FQDN
	SiteShare    float64
	CookieCount  int
	ATS          bool
	InRegularWeb bool
	IPShare      float64 // fraction of its cookies embedding the client IP
}

// AnalyzeCookies builds the census and Table 4 from the porn crawl.
// regularTP is the set of third-party FQDNs observed in the regular crawl
// (for the "in web ecosystem" column).
func (st *Study) AnalyzeCookies(porn *CrawlResult, regularTP map[string]bool) (CookieCensus, []CookieDomainRow) {
	cls := porn.classifier()
	obs := cookies.Collect(porn.Log, cls)
	census := cookies.BuildCensus(obs)

	out := CookieCensus{
		Total:             census.Total,
		SitesWithCookies:  len(census.SitesWithCookies),
		IDCookies:         census.IDCookies,
		Over1000Chars:     census.Over1000Chars,
		ThirdPartyID:      census.ThirdPartyID,
		ThirdPartyDomains: len(census.ThirdPartyDomains),
		SitesWithTPID:     len(census.SitesWithTPID),
	}
	if n := len(porn.Crawled); n > 0 {
		out.SitesWithCookiesFrac = float64(out.SitesWithCookies) / float64(n)
		out.SitesWithTPIDFrac = float64(out.SitesWithTPID) / float64(n)
	}

	// Encoded data and per-domain aggregation.
	type agg struct {
		cookies int
		withIP  int
		sites   map[string]bool
	}
	perDomain := map[string]*agg{}
	ipSites := map[string]bool{}
	geoSites := map[string]bool{}
	for _, o := range obs {
		if !o.IsIDCandidate() || !o.ThirdParty {
			continue
		}
		a := perDomain[o.Host]
		if a == nil {
			a = &agg{sites: map[string]bool{}}
			perDomain[o.Host] = a
		}
		a.cookies++
		a.sites[o.SiteHost] = true
		d := cookies.DecodeValue(o.Value, loopbackClientIP)
		if d.HasClientIP {
			a.withIP++
			out.CookiesWithClientIP++
			ipSites[o.SiteHost] = true
		}
		if d.HasGeo {
			out.GeoCookies++
			geoSites[o.SiteHost] = true
		}
	}
	out.SitesWithIPCookies = len(ipSites)
	out.SitesWithGeoCookies = len(geoSites)

	// Top-100 popular name=value pairs coverage.
	topSites := map[string]bool{}
	for _, p := range census.TopPairs(100) {
		for s := range census.PopularPairs[p.Pair] {
			topSites[s] = true
		}
	}
	if n := len(porn.Crawled); n > 0 {
		out.Top100SiteShare = float64(len(topSites)) / float64(n)
	}

	rows := make([]CookieDomainRow, 0, len(perDomain))
	nSites := float64(len(porn.Crawled))
	for host, a := range perDomain {
		row := CookieDomainRow{
			Domain:       host,
			CookieCount:  a.cookies,
			ATS:          st.isATS(host),
			InRegularWeb: regularTP[host],
		}
		if nSites > 0 {
			row.SiteShare = float64(len(a.sites)) / nSites
		}
		if a.cookies > 0 {
			row.IPShare = float64(a.withIP) / float64(a.cookies)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].SiteShare != rows[j].SiteShare {
			return rows[i].SiteShare > rows[j].SiteShare
		}
		return rows[i].Domain < rows[j].Domain
	})
	return out, rows
}

// SyncResult is the Figure 4 cookie-synchronization analysis.
type SyncResult struct {
	Events       int
	Sites        int // porn sites on which a sync was observed
	SiteShare    float64
	Pairs        int // distinct (origin, destination) base-domain pairs
	Origins      int
	Destinations int
	TopEdges     []cookies.Edge
	// Top100Share is the fraction of the 100 most popular porn sites
	// where syncing was observed (58% in the paper).
	Top100Share float64
}

// AnalyzeCookieSync builds Figure 4 from the porn crawl.
func (st *Study) AnalyzeCookieSync(porn *CrawlResult, edgeThreshold int) SyncResult {
	events := cookies.DetectSyncs(porn.Log)
	g := cookies.BuildGraph(events)
	res := SyncResult{
		Events:       len(events),
		Sites:        len(g.Sites),
		Pairs:        len(g.Pairs),
		Origins:      len(g.Origins),
		Destinations: len(g.Dests),
		TopEdges:     g.EdgesWithAtLeast(edgeThreshold),
	}
	if n := len(porn.Crawled); n > 0 {
		res.SiteShare = float64(res.Sites) / float64(n)
	}
	// Top-100 coverage.
	type hostRank struct {
		host string
		best int
	}
	ranked := make([]hostRank, 0, len(porn.Crawled))
	for _, h := range porn.Crawled {
		b := st.Rank.StatsFor(h).Best
		if b == 0 {
			b = 1 << 30
		}
		ranked = append(ranked, hostRank{h, b})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].best < ranked[j].best })
	topN := 100
	if topN > len(ranked) {
		topN = len(ranked)
	}
	var covered int
	for _, hr := range ranked[:topN] {
		if g.Sites[hr.host] {
			covered++
		}
	}
	if topN > 0 {
		res.Top100Share = float64(covered) / float64(topN)
	}
	return res
}

// FPServerRow is one row of Table 5: a third-party host delivering
// fingerprinting scripts.
type FPServerRow struct {
	Domain        string
	Presence      int // porn sites loading anything from it
	ATS           bool
	InRegularWeb  bool
	CanvasScripts int
	WebRTCScripts int
}

// FingerprintResult is the Section 5.1.3 analysis.
type FingerprintResult struct {
	CanvasScripts   int // distinct scripts classified as canvas FP
	CanvasSites     int
	CanvasSiteShare float64
	CanvasServers   int     // third-party hosts delivering them
	ThirdPartyShare float64 // fraction of canvas scripts that are third-party
	FontScripts     int
	FontSites       int
	WebRTCScripts   int
	WebRTCSites     int
	WebRTCServers   int
	// UnlistedCanvasShare is the fraction of canvas-FP scripts not matched
	// by EasyList/EasyPrivacy (91% in the paper).
	UnlistedCanvasShare float64
	Servers             []FPServerRow
}

// canonicalScriptURL strips the query string: a script's identity is its
// program (scheme://host/path), not the per-embed parameters — the paper's
// "245 different JavaScripts" counts programs.
func canonicalScriptURL(u string) string {
	if i := strings.IndexByte(u, '?'); i >= 0 {
		return u[:i]
	}
	return u
}

// AnalyzeFingerprinting classifies every script trace of the porn crawl.
func (st *Study) AnalyzeFingerprinting(porn *CrawlResult, regularTP map[string]bool) FingerprintResult {
	sum := fingerprint.NewSummary()
	for _, pv := range porn.Visits {
		for _, tr := range pv.Traces {
			sum.Add(fingerprint.ScriptReport{
				ScriptURL: canonicalScriptURL(tr.URL),
				Host:      tr.Host,
				SiteHost:  tr.SiteHost,
				Verdict:   fingerprint.ClassifyTrace(tr.Trace),
			})
		}
	}
	res := FingerprintResult{
		CanvasScripts: len(sum.CanvasScripts),
		CanvasSites:   len(sum.CanvasSites),
		CanvasServers: len(sum.CanvasByServer),
		FontScripts:   len(sum.FontScripts),
		FontSites:     len(sum.FontSites),
		WebRTCScripts: len(sum.WebRTCScripts),
		WebRTCSites:   len(sum.WebRTCSites),
		WebRTCServers: len(sum.WebRTCByServer),
	}
	if n := len(porn.Crawled); n > 0 {
		res.CanvasSiteShare = float64(res.CanvasSites) / float64(n)
	}
	var thirdParty, unlisted int
	for url := range sum.CanvasScripts {
		if !strings.HasPrefix(url, "inline:") {
			thirdParty++
			if !st.EasyList.MatchURL(url, "") {
				unlisted++
			}
		} else {
			unlisted++ // inline first-party scripts are never list-indexed
		}
	}
	if res.CanvasScripts > 0 {
		res.ThirdPartyShare = float64(thirdParty) / float64(res.CanvasScripts)
		res.UnlistedCanvasShare = float64(unlisted) / float64(res.CanvasScripts)
	}

	// Per-server rows: presence = sites contacting the host at all.
	presence := map[string]map[string]bool{}
	for _, r := range porn.Log {
		if r.SiteHost == "" || r.Host == "" || r.Status == 0 {
			continue
		}
		if presence[r.Host] == nil {
			presence[r.Host] = map[string]bool{}
		}
		presence[r.Host][r.SiteHost] = true
	}
	servers := map[string]*FPServerRow{}
	rowFor := func(host string) *FPServerRow {
		if r, ok := servers[host]; ok {
			return r
		}
		r := &FPServerRow{
			Domain:       host,
			Presence:     len(presence[host]),
			ATS:          st.isATS(host),
			InRegularWeb: regularTP[host],
		}
		servers[host] = r
		return r
	}
	for host, scripts := range sum.CanvasByServer {
		rowFor(host).CanvasScripts = len(scripts)
	}
	for host, scripts := range sum.WebRTCByServer {
		rowFor(host).WebRTCScripts = len(scripts)
	}
	for _, r := range servers {
		res.Servers = append(res.Servers, *r)
	}
	sort.Slice(res.Servers, func(i, j int) bool {
		if res.Servers[i].Presence != res.Servers[j].Presence {
			return res.Servers[i].Presence > res.Servers[j].Presence
		}
		return res.Servers[i].Domain < res.Servers[j].Domain
	})
	return res
}

// HTTPSRow is one interval row of Table 6.
type HTTPSRow struct {
	Interval        ranking.Interval
	Sites           int
	SitesHTTPS      float64
	ThirdParties    int
	ThirdPartyHTTPS float64
}

// HTTPSResult is Section 5.2.
type HTTPSResult struct {
	Rows []HTTPSRow
	// NotFullyHTTPS counts sites where the page or any third party loaded
	// over plain HTTP.
	NotFullyHTTPS      int
	NotFullyHTTPSShare float64
	// ClearCookieSites counts not-fully-HTTPS sites where an ID cookie
	// travelled in the clear.
	ClearCookieSites int
}

// AnalyzeHTTPS builds Table 6 from the porn crawl. The per-interval
// third-party percentages reflect the scheme actually used (mixed-content
// reality); the fully-HTTPS classification of a site additionally probes
// whether its plain-HTTP third parties could have served TLS, as the paper
// words it ("do not support HTTPS").
func (st *Study) AnalyzeHTTPS(porn *CrawlResult) HTTPSResult {
	var res HTTPSResult
	perSite := porn.thirdPartyHostsBySite()
	tlsCapable := st.ProbeTLS(context.Background(), porn.allThirdPartyHosts())

	// Third-party FQDN -> ever served over https in this crawl.
	tpHTTPS := map[string]bool{}
	tpSeen := map[string]bool{}
	idCookieHosts := map[string]bool{}
	for _, r := range porn.Log {
		if r.Host == "" || r.Status == 0 {
			continue
		}
		tpSeen[r.Host] = true
		if r.Scheme == "https" {
			tpHTTPS[r.Host] = true
		}
		for _, c := range r.SetCookies {
			if !c.Session && len(c.Value) >= cookies.MinIDLength {
				idCookieHosts[c.Host] = true
			}
		}
	}

	// Single pass: which sites carried identifier cookies over plain HTTP
	// (re-scanning the log per site is quadratic at paper scale).
	clearCandidate := map[string]bool{}
	for _, r := range porn.Log {
		if r.Status != 0 && r.Scheme == "http" && idCookieHosts[r.Host] {
			clearCandidate[r.SiteHost] = true
		}
	}

	type ivAgg struct {
		sites, https int
		tp           map[string]bool
	}
	aggs := map[ranking.Interval]*ivAgg{}
	for iv := ranking.IntervalTop1K; iv < ranking.NumIntervals; iv++ {
		aggs[iv] = &ivAgg{tp: map[string]bool{}}
	}
	clearSites := map[string]bool{}
	for _, site := range porn.Crawled {
		iv := st.interval(site)
		a := aggs[iv]
		a.sites++
		pv := porn.Visits[site]
		if pv != nil && pv.HTTPS {
			a.https++
		}
		for _, h := range perSite[site] {
			a.tp[h] = true
		}
		// Fully-HTTPS determination: the site answers TLS and every third
		// party supports it.
		fully := pv != nil && pv.HTTPS
		if fully {
			for _, h := range perSite[site] {
				if !tpHTTPS[h] && !tlsCapable[h] {
					fully = false
					break
				}
			}
		}
		if !fully {
			res.NotFullyHTTPS++
			if clearCandidate[site] {
				clearSites[site] = true
			}
		}
	}
	res.ClearCookieSites = len(clearSites)
	if n := len(porn.Crawled); n > 0 {
		res.NotFullyHTTPSShare = float64(res.NotFullyHTTPS) / float64(n)
	}
	for iv := ranking.IntervalTop1K; iv < ranking.NumIntervals; iv++ {
		a := aggs[iv]
		row := HTTPSRow{Interval: iv, Sites: a.sites, ThirdParties: len(a.tp)}
		if a.sites > 0 {
			row.SitesHTTPS = float64(a.https) / float64(a.sites)
		}
		var https int
		for h := range a.tp {
			if tpHTTPS[h] {
				https++
			}
		}
		if len(a.tp) > 0 {
			row.ThirdPartyHTTPS = float64(https) / float64(len(a.tp))
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// StorageResult covers the "persistent tracking mechanisms" angle the
// paper cites (Acar et al.'s evercookies): scripts that mirror their
// identifier into localStorage in addition to the HTTP cookie can respawn
// it after cookie deletion.
type StorageResult struct {
	// ScriptsUsingStorage counts distinct scripts writing localStorage.
	ScriptsUsingStorage int
	// RespawnCandidates counts scripts that both set a cookie and mirror
	// an identifier into storage.
	RespawnCandidates int
	// Sites loading at least one respawn-candidate script.
	Sites int
}

// AnalyzeStorage scans the crawl's JS traces for localStorage-based
// persistence.
func (st *Study) AnalyzeStorage(porn *CrawlResult) StorageResult {
	var res StorageResult
	scripts := map[string]bool{}
	respawn := map[string]bool{}
	sites := map[string]bool{}
	for _, pv := range porn.Visits {
		for _, tr := range pv.Traces {
			if len(tr.Trace.StorageWrites) == 0 {
				continue
			}
			key := canonicalScriptURL(tr.URL)
			if key == "" {
				key = "inline:" + tr.SiteHost
			}
			scripts[key] = true
			if len(tr.Trace.CookieWrites) > 0 {
				respawn[key] = true
				sites[tr.SiteHost] = true
			}
		}
	}
	res.ScriptsUsingStorage = len(scripts)
	res.RespawnCandidates = len(respawn)
	res.Sites = len(sites)
	return res
}

// MalwareResult is Sections 5.3 / 6.2.
type MalwareResult struct {
	FlaggedSites        []string // porn sites flagged by >= 4 scanners
	FlaggedThirdParties []string // third-party base domains flagged
	SitesWithMalicious  int      // porn sites embedding flagged third parties
	MinerDomains        []string // cryptomining services observed
	SitesWithMiners     int
}

// malwareOracle builds the scanner fleet seeded with the ecosystem's
// planted threats (the stand-in for real scanner databases).
func (st *Study) malwareOracle() *malware.Aggregator {
	var bad []string
	for _, svc := range st.Eco.Services {
		if svc.Malicious {
			bad = append(bad, svc.Base)
		}
	}
	for _, s := range st.Eco.PornSites {
		if s.Malicious {
			bad = append(bad, s.Host)
		}
	}
	return malware.New(st.Cfg.Params.Seed^0xbad, bad)
}

// AnalyzeMalware runs the VirusTotal-analog over the crawl's observations.
func (st *Study) AnalyzeMalware(porn *CrawlResult) MalwareResult {
	agg := st.malwareOracle()
	var res MalwareResult
	res.FlaggedSites = agg.FlagAll(porn.Crawled)

	perSite := porn.thirdPartyHostsBySite()
	flaggedTP := map[string]bool{}
	minerSet := map[string]bool{}
	sitesWithBad := map[string]bool{}
	sitesWithMiner := map[string]bool{}
	for site, hosts := range perSite {
		for _, h := range hosts {
			base := domain.Base(h)
			if agg.Flagged(base) {
				flaggedTP[base] = true
				sitesWithBad[site] = true
			}
			if malware.IsCryptoMiner(h) {
				minerSet[base] = true
				sitesWithMiner[site] = true
			}
		}
	}
	for d := range flaggedTP {
		res.FlaggedThirdParties = append(res.FlaggedThirdParties, d)
	}
	sort.Strings(res.FlaggedThirdParties)
	for d := range minerSet {
		res.MinerDomains = append(res.MinerDomains, d)
	}
	sort.Strings(res.MinerDomains)
	res.SitesWithMalicious = len(sitesWithBad)
	res.SitesWithMiners = len(sitesWithMiner)
	return res
}
