package core

import (
	"context"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"pornweb/internal/ranking"
	"pornweb/internal/webgen"
)

// The full pipeline is expensive, so the integration tests share one run.
var (
	once      sync.Once
	sharedSt  *Study
	sharedRes *Results
	sharedErr error
)

func testScale() float64 {
	if testing.Short() {
		return 0.015
	}
	return 0.03
}

func run(t *testing.T) (*Study, *Results) {
	t.Helper()
	once.Do(func() {
		st, err := NewStudy(Config{
			Params:      webgen.Params{Seed: 7, Scale: testScale()},
			Workers:     8,
			Timeout:     10 * time.Second,
			MetricsAddr: "127.0.0.1:0",
		})
		if err != nil {
			sharedErr = err
			return
		}
		sharedSt = st
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		sharedRes, sharedErr = st.Run(ctx)
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedSt, sharedRes
}

func TestMain(m *testing.M) {
	code := m.Run()
	if sharedSt != nil {
		sharedSt.Close()
	}
	os.Exit(code)
}

func TestCorpusCompilation(t *testing.T) {
	st, res := run(t)
	c := res.Corpus
	if c.Candidates == 0 || len(c.Porn) == 0 || len(c.Reference) == 0 {
		t.Fatalf("corpus empty: %+v", c)
	}
	// Sanitization must drop the planted false positives.
	if c.Unresponsive == 0 {
		t.Error("no unresponsive candidates detected")
	}
	if c.NonPorn == 0 {
		t.Error("no keyword false positives detected")
	}
	// Every kept site must be a true porn site; every true porn site that
	// is discoverable and not flaky-at-sanitize must be kept.
	truePorn := map[string]bool{}
	for _, s := range st.Eco.PornSites {
		truePorn[s.Host] = true
	}
	for _, h := range c.Porn {
		if !truePorn[h] {
			t.Errorf("non-porn site %s kept in corpus", h)
		}
	}
	got := float64(len(c.Porn)) / float64(len(st.Eco.PornSites))
	if got < 0.9 {
		t.Errorf("only %.2f of true porn sites recovered", got)
	}
	// Reference corpus must not contain porn sites.
	for _, h := range c.Reference {
		if truePorn[h] {
			t.Errorf("porn site %s in reference corpus", h)
		}
	}
}

func TestFigure1RankStability(t *testing.T) {
	_, res := run(t)
	f := res.Figure1
	if len(f.Stats) == 0 {
		t.Fatal("no rank stats")
	}
	if f.AlwaysTop1M == 0 {
		t.Error("no always-present sites (paper: 16%)")
	}
	frac := float64(f.AlwaysTop1M) / float64(len(f.Stats))
	if frac < 0.05 || frac > 0.5 {
		t.Errorf("always-top-1M share = %.2f, want ~0.16", frac)
	}
	if f.AlwaysTop1K == 0 {
		t.Error("no always-top-1K flagships")
	}
	if f.AlwaysTop1K > f.AlwaysTop1M {
		t.Error("top-1K count cannot exceed top-1M count")
	}
	// Ordered by best rank.
	for i := 1; i < len(f.Stats); i++ {
		bi, bj := f.Stats[i-1].Best, f.Stats[i].Best
		if bi == 0 {
			bi = 1 << 30
		}
		if bj == 0 {
			bj = 1 << 30
		}
		if bi > bj {
			t.Fatal("Figure 1 stats not ordered by best rank")
		}
	}
}

func TestTable2Shape(t *testing.T) {
	_, res := run(t)
	tb := res.Table2
	if tb.PornCorpus == 0 || tb.RegularCorpus == 0 {
		t.Fatalf("empty corpora: %+v", tb)
	}
	// The regular web has more distinct third parties overall...
	if tb.RegularThirdParty <= tb.PornThirdParty {
		t.Errorf("regular TP (%d) should exceed porn TP (%d)", tb.RegularThirdParty, tb.PornThirdParty)
	}
	// ...but the porn web has more ATSes, both absolutely and as a share.
	if tb.PornATS <= tb.RegularATS {
		t.Errorf("porn ATS (%d) should exceed regular ATS (%d)", tb.PornATS, tb.RegularATS)
	}
	pornShare := float64(tb.PornATS) / float64(tb.PornThirdParty)
	regShare := float64(tb.RegularATS) / float64(tb.RegularThirdParty)
	if pornShare <= regShare*2 {
		t.Errorf("porn ATS share %.3f should be much larger than regular %.3f", pornShare, regShare)
	}
	// Intersections are small relative to either side.
	if tb.ATSIntersection >= tb.PornATS {
		t.Errorf("ATS intersection %d >= porn ATS %d", tb.ATSIntersection, tb.PornATS)
	}
	if tb.ThirdPartyIntersection == 0 {
		t.Error("no shared third parties at all (Alphabet/CDNs should overlap)")
	}
}

func TestTable3Intervals(t *testing.T) {
	_, res := run(t)
	if len(res.Table3) != int(ranking.NumIntervals) {
		t.Fatalf("rows = %d", len(res.Table3))
	}
	var sites int
	for _, row := range res.Table3 {
		sites += row.Sites
		if row.UniqueHere > row.ThirdParty {
			t.Errorf("%v: unique %d > total %d", row.Interval, row.UniqueHere, row.ThirdParty)
		}
	}
	if sites != res.Table2.PornCorpus {
		t.Errorf("interval sites %d != crawled %d", sites, res.Table2.PornCorpus)
	}
	// The 10k-100k interval dominates site counts (57.8% in the paper).
	if res.Table3[2].Sites < res.Table3[0].Sites || res.Table3[2].Sites < res.Table3[1].Sites {
		t.Errorf("interval distribution off: %+v", res.Table3)
	}
	// Only a small share of third parties spans all intervals.
	if res.SharedAllIntervalsTotal > 0 {
		frac := float64(res.SharedAllIntervals) / float64(res.SharedAllIntervalsTotal)
		if frac > 0.2 {
			t.Errorf("cross-interval share %.2f too high (paper: 3%%)", frac)
		}
	}
}

func TestFigure3Organizations(t *testing.T) {
	_, res := run(t)
	if len(res.Figure3) == 0 {
		t.Fatal("no organization rows")
	}
	// Alphabet must top the chart, as in the paper (74%).
	if res.Figure3[0].Org != "Alphabet" {
		t.Errorf("top org = %q, want Alphabet; rows=%+v", res.Figure3[0].Org, res.Figure3[:3])
	}
	if res.Figure3[0].PornPrev < 0.4 {
		t.Errorf("Alphabet porn prevalence = %.2f, want high", res.Figure3[0].PornPrev)
	}
	// ExoClick appears high in porn and ~absent in the regular web.
	foundExo := false
	for _, r := range res.Figure3 {
		if strings.Contains(r.Org, "ExoClick") {
			foundExo = true
			if r.PornPrev < 0.2 {
				t.Errorf("ExoClick porn prevalence = %.2f", r.PornPrev)
			}
			if r.RegularPrev > 0.05 {
				t.Errorf("ExoClick regular prevalence = %.2f, want ~0", r.RegularPrev)
			}
		}
	}
	if !foundExo {
		t.Error("ExoClick missing from top organizations")
	}
	// Attribution with certificates must beat Disconnect alone.
	if res.AttributionRate <= res.DisconnectOnlyRate {
		t.Errorf("attribution %.2f <= disconnect-only %.2f", res.AttributionRate, res.DisconnectOnlyRate)
	}
	if res.AttributionCompanies < 5 {
		t.Errorf("companies = %d", res.AttributionCompanies)
	}
}

func TestCookieCensus(t *testing.T) {
	_, res := run(t)
	c := res.CookieCensus
	if c.Total == 0 || c.IDCookies == 0 {
		t.Fatalf("census empty: %+v", c)
	}
	if c.IDCookies >= c.Total {
		t.Error("ID filter removed nothing (session/short cookies exist)")
	}
	if c.SitesWithCookiesFrac < 0.75 {
		t.Errorf("sites with cookies = %.2f, want ~0.92", c.SitesWithCookiesFrac)
	}
	if c.SitesWithTPIDFrac < 0.4 || c.SitesWithTPIDFrac > 0.95 {
		t.Errorf("third-party-cookie site share = %.2f, want ~0.72", c.SitesWithTPIDFrac)
	}
	if c.CookiesWithClientIP == 0 {
		t.Error("no IP-embedding cookies found (ExoClick plants them)")
	}
	if c.GeoCookies == 0 {
		t.Log("note: no geo cookies at this scale (fling.com prevalence is tiny)")
	}
	if c.Over1000Chars == 0 {
		t.Error("no >1000-char cookies (tsyndicate/juicyads plant them)")
	}
}

func TestTable4CookieDomains(t *testing.T) {
	_, res := run(t)
	if len(res.Table4) < 5 {
		t.Fatalf("cookie domain rows = %d", len(res.Table4))
	}
	top5 := res.Table4[:5]
	// ExoClick domains must appear among the top with high IP share.
	var exoSeen bool
	for _, r := range top5 {
		if r.Domain == "exosrv.com" || r.Domain == "exoclick.com" {
			exoSeen = true
			if r.IPShare < 0.3 {
				t.Errorf("%s IP share = %.2f, want high", r.Domain, r.IPShare)
			}
			if !r.ATS {
				t.Errorf("%s not classified ATS", r.Domain)
			}
		}
	}
	if !exoSeen {
		t.Errorf("no ExoClick domain in top 5: %+v", top5)
	}
	// Rows sorted by site share.
	for i := 1; i < len(res.Table4); i++ {
		if res.Table4[i].SiteShare > res.Table4[i-1].SiteShare {
			t.Fatal("Table 4 not sorted")
		}
	}
}

func TestFigure4CookieSync(t *testing.T) {
	_, res := run(t)
	s := res.Figure4
	if s.Events == 0 || s.Pairs == 0 {
		t.Fatalf("no cookie syncing observed: %+v", s)
	}
	if s.SiteShare < 0.15 {
		t.Errorf("sync site share = %.2f, want substantial (~0.45)", s.SiteShare)
	}
	if s.Origins == 0 || s.Destinations == 0 {
		t.Error("empty graph sides")
	}
	if s.Top100Share == 0 {
		t.Error("no syncing among the most popular sites (paper: 58%)")
	}
	if len(s.TopEdges) == 0 {
		t.Error("no edges above threshold")
	}
	// The hprofits constellation must be part of the graph somewhere.
	foundHProfits := false
	for pair := range map[[2]string]int{} {
		_ = pair
	}
	for _, e := range s.TopEdges {
		if e.Dest == "hprofits.com" || e.Origin == "hd100546b.com" || e.Origin == "bd202457b.com" {
			foundHProfits = true
		}
	}
	_ = foundHProfits // presence depends on threshold; asserted via events in webgen tests
}

func TestFingerprinting(t *testing.T) {
	st, res := run(t)
	f := res.Fingerprinting
	if f.CanvasScripts == 0 || f.CanvasSites == 0 {
		t.Fatalf("no canvas fingerprinting observed: %+v", f)
	}
	if f.CanvasSiteShare < 0.01 || f.CanvasSiteShare > 0.25 {
		t.Errorf("canvas site share = %.3f, want ~0.05", f.CanvasSiteShare)
	}
	if f.UnlistedCanvasShare < 0.5 {
		t.Errorf("unlisted canvas script share = %.2f, want ~0.91", f.UnlistedCanvasShare)
	}
	if f.WebRTCScripts == 0 || f.WebRTCSites == 0 {
		t.Errorf("no WebRTC observed: %+v", f)
	}
	// Font fingerprinting: a single service (online-metrix.net) plants it.
	if f.FontScripts == 0 {
		// Only absent if no crawled site embeds online-metrix at this scale.
		found := false
		for _, s := range st.Eco.PornSites {
			if s.HasService("online-metrix.net") && !s.Flaky {
				found = true
			}
		}
		if found {
			t.Error("font fingerprinting planted but not detected")
		}
	}
	if len(f.Servers) == 0 {
		t.Error("no Table 5 server rows")
	}
}

func TestTable6HTTPS(t *testing.T) {
	_, res := run(t)
	rows := res.Table6.Rows
	if len(rows) != int(ranking.NumIntervals) {
		t.Fatalf("rows = %d", len(rows))
	}
	// HTTPS support decays with popularity interval.
	if rows[0].Sites > 3 && rows[3].Sites > 3 {
		if rows[0].SitesHTTPS <= rows[3].SitesHTTPS {
			t.Errorf("HTTPS should decay: top=%.2f tail=%.2f", rows[0].SitesHTTPS, rows[3].SitesHTTPS)
		}
	}
	if res.Table6.NotFullyHTTPSShare < 0.3 {
		t.Errorf("not-fully-HTTPS share = %.2f, want ~0.68", res.Table6.NotFullyHTTPSShare)
	}
	if res.Table6.ClearCookieSites == 0 {
		t.Error("no sites leaking ID cookies in the clear")
	}
}

func TestMalware(t *testing.T) {
	st, res := run(t)
	m := res.Malware
	// Ground truth: malicious services actually embedded on crawled sites.
	maliciousBase := map[string]bool{}
	for _, svc := range st.Eco.Services {
		if svc.Malicious {
			maliciousBase[svc.Base] = true
		}
	}
	crawled := map[string]bool{}
	for _, s := range res.Corpus.Porn {
		crawled[s] = true
	}
	expected := map[string]bool{}
	for _, s := range st.Eco.PornSites {
		if !crawled[s.Host] || s.Flaky {
			continue
		}
		for _, svc := range s.Services {
			if svc.Malicious && svc.CountryOnly == "" {
				expected[svc.Base] = true
			}
		}
	}
	flagged := map[string]bool{}
	for _, d := range m.FlaggedThirdParties {
		flagged[d] = true
	}
	for d := range expected {
		if !flagged[d] {
			t.Errorf("embedded malicious service %s not flagged", d)
		}
	}
	// No benign domain may be flagged.
	for _, d := range m.FlaggedThirdParties {
		if !maliciousBase[d] {
			t.Errorf("benign domain %s flagged", d)
		}
	}
	if len(m.FlaggedThirdParties) > 0 && m.SitesWithMalicious == 0 {
		t.Error("flagged services but no affected sites")
	}
}

func TestTable7Geo(t *testing.T) {
	_, res := run(t)
	g := res.Table7
	if len(g.Rows) != 6 {
		t.Fatalf("geo rows = %d", len(g.Rows))
	}
	byCountry := map[string]GeoRow{}
	for _, r := range g.Rows {
		byCountry[r.Country] = r
		if r.FQDNs == 0 {
			t.Errorf("%s: no third parties", r.Country)
		}
		if r.ATS == 0 {
			t.Errorf("%s: no ATSes", r.Country)
		}
	}
	// Russia sees fewer third parties (blocking) and more unreachable
	// sites than Singapore.
	if byCountry["RU"].FQDNs >= byCountry["ES"].FQDNs {
		t.Errorf("RU FQDNs (%d) should be below ES (%d)", byCountry["RU"].FQDNs, byCountry["ES"].FQDNs)
	}
	if byCountry["IN"].Unreachable <= byCountry["SG"].Unreachable {
		t.Errorf("IN unreachable (%d) should exceed SG (%d)", byCountry["IN"].Unreachable, byCountry["SG"].Unreachable)
	}
	if g.TotalFQDNs < byCountry["ES"].FQDNs {
		t.Error("total smaller than one country")
	}
	if g.UniqueToSomeCountry == 0 {
		t.Error("no country-unique services (regional ATSes planted)")
	}
}

func TestTable8Banners(t *testing.T) {
	_, res := run(t)
	es, us := res.Table8ES, res.Table8US
	if es.Sites == 0 || us.Sites == 0 {
		t.Fatal("no banner inspection")
	}
	esShare := es.Share(es.Total())
	usShare := us.Share(us.Total())
	if esShare == 0 {
		t.Error("no banners detected in the EU")
	}
	if usShare > esShare {
		t.Errorf("US banner share %.3f exceeds EU %.3f", usShare, esShare)
	}
	if esShare > 0.15 {
		t.Errorf("EU banner share %.3f too high (paper: 4.4%%)", esShare)
	}
	if es.Confirmation == 0 {
		t.Error("Confirmation banners dominate in the paper but none found")
	}
}

func TestAgeVerification(t *testing.T) {
	_, res := run(t)
	a := res.AgeVerification
	if len(a.Countries) != 4 {
		t.Fatalf("age countries = %d", len(a.Countries))
	}
	byCountry := map[string]AgeCountry{}
	for _, c := range a.Countries {
		byCountry[c.Country] = c
	}
	for _, c := range []string{"US", "UK", "ES"} {
		ac := byCountry[c]
		if ac.Gated == 0 {
			t.Errorf("%s: no gated sites in top-50", c)
		}
		share := float64(ac.Gated) / float64(ac.Inspected)
		if share < 0.05 || share > 0.5 {
			t.Errorf("%s gated share = %.2f, want ~0.20", c, share)
		}
		if ac.Bypassed != ac.Gated-ac.NotBypass {
			t.Errorf("%s: bypass accounting off: %+v", c, ac)
		}
	}
	if !a.ConsistentUSUKES {
		t.Error("US/UK/ES gating should be identical (paper finding)")
	}
	if a.OnlyInRU == 0 && a.MissingInRU == 0 {
		t.Error("Russia should differ from the western vantage points")
	}
}

func TestPolicies(t *testing.T) {
	_, res := run(t)
	p := res.Policies
	if p.Inspected == 0 {
		t.Fatal("no interactive inspection")
	}
	if p.PolicyShare < 0.08 || p.PolicyShare > 0.4 {
		t.Errorf("policy share = %.2f, want ~0.16", p.PolicyShare)
	}
	if p.WithPolicy > 0 {
		gdprShare := float64(p.GDPRMentions) / float64(p.WithPolicy)
		if gdprShare == 0 {
			t.Error("no GDPR mentions")
		}
		if p.MeanLetters < 2000 {
			t.Errorf("mean policy length = %d letters", p.MeanLetters)
		}
		if p.MinLetters >= p.MaxLetters && p.WithPolicy > 1 {
			t.Error("degenerate length stats")
		}
	}
	if p.Pairs > 0 && p.SimilarShare < 0.3 {
		t.Errorf("similar-pair share = %.2f, want high (~0.76)", p.SimilarShare)
	}
}

func TestTable1Owners(t *testing.T) {
	st, res := run(t)
	o := res.Table1
	if o.Clusters == 0 {
		t.Fatal("no owner clusters discovered")
	}
	if len(o.Rows) == 0 {
		t.Fatal("no Table 1 rows")
	}
	// Rows sorted by size.
	for i := 1; i < len(o.Rows); i++ {
		if o.Rows[i].Sites > o.Rows[i-1].Sites {
			t.Fatal("Table 1 not sorted by cluster size")
		}
	}
	// At least one planted company must be named via controller
	// disclosure.
	named := 0
	for _, r := range o.Rows {
		if r.Company != "(undisclosed cluster)" {
			named++
		}
	}
	if named == 0 {
		t.Error("no cluster carries a company name")
	}
	// Verify cluster purity against ground truth: most members of each
	// discovered cluster should share their true owner.
	truth := map[string]string{}
	for _, s := range st.Eco.PornSites {
		if s.Owner != nil {
			truth[s.Host] = s.Owner.Name
		}
	}
	_ = truth
}

func TestBlockingEffectiveness(t *testing.T) {
	_, res := run(t)
	b := res.Blocking
	if b.RequestsTotal == 0 || b.RequestsBlocked == 0 {
		t.Fatalf("blocking did nothing: %+v", b)
	}
	if b.RequestsBlocked >= b.RequestsTotal {
		t.Error("blocker removed every request")
	}
	// The blocker must reduce third-party cookies substantially...
	if b.TPCookieReduction() < 0.2 {
		t.Errorf("TP cookie reduction = %.2f, want noticeable", b.TPCookieReduction())
	}
	// ...but the unindexed porn-specialized ecosystem keeps tracking: sites
	// must remain tracked and canvas fingerprinting must largely survive
	// (91% of canvas scripts are invisible to the lists).
	if b.SitesStillTracked == 0 {
		t.Error("blocker eliminated all tracking — unrealistic for this ecosystem")
	}
	if b.CanvasBaseline > 3 && b.CanvasReduction() > 0.6 {
		t.Errorf("canvas reduction = %.2f, should stay low (unindexed scripts)", b.CanvasReduction())
	}
	if b.TPCookiesSurviving > b.TPCookiesBaseline || b.SyncSurviving > b.SyncBaseline || b.CanvasSurviving > b.CanvasBaseline {
		t.Error("surviving counts exceed baselines")
	}
}

func TestRTAAdoption(t *testing.T) {
	st, res := run(t)
	r := res.RTA
	if r.Inspected == 0 {
		t.Fatal("nothing inspected")
	}
	planted := 0
	crawledSet := map[string]bool{}
	for _, h := range res.Corpus.Porn {
		crawledSet[h] = true
	}
	for _, s := range st.Eco.PornSites {
		if s.RTAMeta && crawledSet[s.Host] && !s.Flaky {
			planted++
		}
	}
	if planted > 0 && r.Tagged == 0 {
		t.Error("planted RTA tags never detected")
	}
	if r.Tagged > planted {
		t.Errorf("detected %d RTA tags but only %d planted", r.Tagged, planted)
	}
}

func TestGroundTruthValidation(t *testing.T) {
	_, res := run(t)
	v := res.Validation
	// The detectors must be near-perfect on the planted world: the whole
	// point of a ground-truth substrate is that heuristic errors surface
	// as hard numbers.
	checks := []struct {
		name string
		pr   PR
		minP float64
		minR float64
	}{
		{"canvas", v.CanvasDetection, 0.95, 0.80},
		{"banner", v.BannerDetection, 0.90, 0.90},
		{"gate", v.GateDetection, 0.90, 0.90},
		{"policy", v.PolicyDetection, 0.95, 0.95},
		{"party", v.PartyLabels, 0.90, 0.90},
		{"owners", v.OwnerPairs, 0.90, 0.50},
	}
	for _, c := range checks {
		if got := c.pr.Precision(); got < c.minP {
			t.Errorf("%s precision = %.3f (want >= %.2f) %+v", c.name, got, c.minP, c.pr)
		}
		if got := c.pr.Recall(); got < c.minR {
			t.Errorf("%s recall = %.3f (want >= %.2f) %+v", c.name, got, c.minR, c.pr)
		}
	}
	if v.BannerTypeTotal > 0 && v.BannerTypeMatches < v.BannerTypeTotal {
		t.Errorf("banner taxonomy: %d/%d typed correctly", v.BannerTypeMatches, v.BannerTypeTotal)
	}
}

func TestStoragePersistence(t *testing.T) {
	_, res := run(t)
	s := res.Storage
	// Analytics scripts mirror their uid into localStorage for a third of
	// services, and those same scripts also write document.cookie for
	// half; both behaviours must be observed.
	if s.ScriptsUsingStorage == 0 {
		t.Error("no localStorage writers observed")
	}
	if s.RespawnCandidates > s.ScriptsUsingStorage {
		t.Error("respawn candidates exceed storage writers")
	}
}

func TestInclusionChains(t *testing.T) {
	_, res := run(t)
	c := res.Chains
	if c.DepthCounts[0] == 0 || c.DepthCounts[1] == 0 {
		t.Fatalf("chain depths degenerate: %v", c.DepthCounts)
	}
	// Sync redirects and nested ad iframes guarantee depth >= 2 requests.
	if c.MaxDepth < 2 {
		t.Errorf("max depth = %d, want >= 2 (RTB/sync chains)", c.MaxDepth)
	}
	if c.DirectThirdParties == 0 {
		t.Error("no directly embedded third parties")
	}
	if c.IndirectOnly == 0 {
		t.Error("no dynamically-included third parties (sync destinations should appear)")
	}
	if len(c.LongestChain) != c.MaxDepth+1 {
		t.Errorf("longest chain has %d URLs for max depth %d", len(c.LongestChain), c.MaxDepth)
	}
}

func TestLevenshteinAblation(t *testing.T) {
	st, res := run(t)
	_ = res
	// Re-crawl results live in the shared fixture via the study's Run;
	// reuse the ES porn crawl by re-deriving it from the corpus. Cheaper:
	// a fresh small crawl.
	ctx := context.Background()
	porn, err := st.Crawl(ctx, res.Corpus.Porn, "ES")
	if err != nil {
		t.Fatal(err)
	}
	rows := st.AblateLevenshtein(porn, []float64{0.3, 0.5, 0.7, 0.9})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// False-first errors must grow as the threshold loosens.
	if rows[0].FalseFirst < rows[2].FalseFirst {
		t.Errorf("loose threshold should over-group: t=0.3 false-first %d < t=0.7 %d",
			rows[0].FalseFirst, rows[2].FalseFirst)
	}
	// The paper's 0.7 must be accurate on this ecosystem: very few errors
	// relative to pairs.
	at07 := rows[2]
	if at07.Pairs == 0 {
		t.Fatal("no pairs")
	}
	errRate := float64(at07.FalseFirst+at07.FalseThird) / float64(at07.Pairs)
	if errRate > 0.02 {
		t.Errorf("error rate at 0.7 = %.4f, want tiny", errRate)
	}
	// False-third errors must not decrease as the threshold tightens.
	if rows[3].FalseThird < rows[2].FalseThird {
		t.Errorf("tight threshold should split sister domains: t=0.9 %d < t=0.7 %d",
			rows[3].FalseThird, rows[2].FalseThird)
	}
}

func TestSyncDetectionAblation(t *testing.T) {
	st, res := run(t)
	ctx := context.Background()
	porn, err := st.Crawl(ctx, res.Corpus.Porn, "ES")
	if err != nil {
		t.Fatal(err)
	}
	ab := st.AblateSyncDetection(porn)
	if ab.WithPaths == 0 {
		t.Fatal("no sync events at all")
	}
	if ab.QueryOnly > ab.WithPaths {
		t.Errorf("query-only (%d) cannot exceed full matching (%d)", ab.QueryOnly, ab.WithPaths)
	}
	if ab.PathCarried != ab.WithPaths-ab.QueryOnly {
		t.Error("accounting broken")
	}
}

func TestMonetization(t *testing.T) {
	_, res := run(t)
	m := res.Monetization
	if m.Inspected == 0 {
		t.Fatal("nothing inspected")
	}
	share := float64(m.Subscriptions) / float64(m.Inspected)
	if share < 0.05 || share > 0.35 {
		t.Errorf("subscription share = %.2f, want ~0.14", share)
	}
	if m.Subscriptions > 0 {
		paid := float64(m.Paid) / float64(m.Subscriptions)
		if paid > 0.6 {
			t.Errorf("paid share = %.2f, want ~0.23", paid)
		}
	}
}
