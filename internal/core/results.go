package core

import (
	"context"
	"fmt"
)

// Results holds every reproduced table and figure (see DESIGN.md's
// per-experiment index).
type Results struct {
	Corpus  *Corpus
	Figure1 RankFigure

	Table1                  OwnerResult
	Table2                  Table2
	Table3                  []IntervalRow
	SharedAllIntervals      int
	SharedAllIntervalsTotal int

	Figure3              []OrgRow
	AttributionRate      float64
	AttributionCompanies int
	DisconnectOnlyRate   float64

	CookieCensus CookieCensus
	Table4       []CookieDomainRow

	Figure4 SyncResult

	Fingerprinting FingerprintResult

	Table6 HTTPSResult

	Malware MalwareResult

	Table7 GeoResult

	Table8ES BannerCounts
	Table8US BannerCounts

	AgeVerification AgeResult
	Policies        PolicyResult
	Monetization    MonetizationResult

	// Extensions beyond the paper's evaluation (its Section 10 future
	// work): adblocker effectiveness, RTA-label adoption, and the
	// inclusion-chain reconstruction of Section 3.1.
	Blocking BlockingResult
	RTA      RTAResult
	Chains   ChainStats
	Storage  StorageResult

	// Validation scores the pipeline's heuristics against the generator's
	// planted ground truth — exact precision/recall where the paper could
	// only sample manually.
	Validation Validation
}

// SyncEdgeThreshold scales the paper's Figure 4 edge threshold (75 synced
// cookies) with corpus scale, keeping at least 2.
func (st *Study) SyncEdgeThreshold() int {
	t := int(75 * st.Cfg.Params.Scale)
	if t < 2 {
		t = 2
	}
	return t
}

// Run executes the complete study: corpus compilation, the main dual
// crawls from Spain, the US crawl for Table 8, the remaining geographic
// crawls, and every analysis.
func (st *Study) Run(ctx context.Context) (*Results, error) {
	res := &Results{}

	st.Cfg.Log("compiling corpus...")
	corpus, err := st.CompileCorpus(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: corpus: %w", err)
	}
	res.Corpus = corpus
	st.Cfg.Log("corpus: %d candidates -> %d porn, %d reference",
		corpus.Candidates, len(corpus.Porn), len(corpus.Reference))

	res.Figure1 = st.RankStability(corpus.Porn)

	st.Cfg.Log("main crawl (ES)...")
	pornES, err := st.Crawl(ctx, corpus.Porn, "ES")
	if err != nil {
		return nil, fmt.Errorf("core: porn crawl: %w", err)
	}
	regES, err := st.Crawl(ctx, corpus.Reference, "ES")
	if err != nil {
		return nil, fmt.Errorf("core: regular crawl: %w", err)
	}
	regularTP := map[string]bool{}
	for _, h := range regES.allThirdPartyHosts() {
		regularTP[h] = true
	}

	res.Table2 = st.AnalyzeThirdParties(pornES, regES)
	res.Table3 = st.AnalyzePopularityIntervals(pornES)
	res.SharedAllIntervals, res.SharedAllIntervalsTotal = st.SharedAcrossAllIntervals(pornES)

	rows, cov := st.AnalyzeOrganizations(pornES, regES, 19)
	res.Figure3 = rows
	if cov.Hosts > 0 {
		res.AttributionRate = float64(cov.Attributed) / float64(cov.Hosts)
		res.DisconnectOnlyRate = float64(cov.DisconnectOnly) / float64(cov.Hosts)
	}
	res.AttributionCompanies = len(cov.Companies)

	res.CookieCensus, res.Table4 = st.AnalyzeCookies(pornES, regularTP)
	res.Figure4 = st.AnalyzeCookieSync(pornES, st.SyncEdgeThreshold())
	res.Fingerprinting = st.AnalyzeFingerprinting(pornES, regularTP)
	res.Table6 = st.AnalyzeHTTPS(pornES)
	res.Malware = st.AnalyzeMalware(pornES)
	res.Monetization = st.AnalyzeMonetization(pornES)
	res.Blocking = st.AnalyzeBlocking(pornES)
	res.RTA = st.AnalyzeRTA(pornES)
	res.Chains = st.AnalyzeInclusionChains(pornES)
	res.Storage = st.AnalyzeStorage(pornES)

	st.Cfg.Log("banner crawl (US)...")
	pornUS, err := st.Crawl(ctx, corpus.Porn, "US")
	if err != nil {
		return nil, fmt.Errorf("core: US crawl: %w", err)
	}
	res.Table8ES = st.AnalyzeBanners(pornES)
	res.Table8US = st.AnalyzeBanners(pornUS)

	st.Cfg.Log("interactive crawl (ES)...")
	interactive, err := st.InteractiveCrawl(ctx, corpus.Porn, "ES")
	if err != nil {
		return nil, fmt.Errorf("core: interactive crawl: %w", err)
	}
	topTracking := st.TopTrackingSites(pornES, 25)
	res.Policies = st.AnalyzePolicies(interactive, topTracking, pornES.thirdPartyHostsBySite())
	res.Table1 = st.AnalyzeOwners(pornES, interactive, 15)
	res.Validation = st.ValidateAgainstTruth(pornES, interactive, res.Table1)

	st.Cfg.Log("age verification (US/UK/ES/RU)...")
	age, err := st.AnalyzeAgeVerification(ctx, corpus.Porn)
	if err != nil {
		return nil, fmt.Errorf("core: age verification: %w", err)
	}
	res.AgeVerification = age

	st.Cfg.Log("geographic crawls...")
	geo, err := st.AnalyzeGeo(ctx, corpus.Porn, regularTP, map[string]*CrawlResult{
		"ES": pornES,
		"US": pornUS,
	})
	if err != nil {
		return nil, fmt.Errorf("core: geo: %w", err)
	}
	res.Table7 = geo
	return res, nil
}
