package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pornweb/internal/browser"
	"pornweb/internal/obs"
	"pornweb/internal/sched"
)

// Results holds every reproduced table and figure (see DESIGN.md's
// per-experiment index).
type Results struct {
	Corpus  *Corpus
	Figure1 RankFigure

	Table1                  OwnerResult
	Table2                  Table2
	Table3                  []IntervalRow
	SharedAllIntervals      int
	SharedAllIntervalsTotal int

	Figure3              []OrgRow
	AttributionRate      float64
	AttributionCompanies int
	DisconnectOnlyRate   float64

	CookieCensus CookieCensus
	Table4       []CookieDomainRow

	Figure4 SyncResult

	Fingerprinting FingerprintResult

	Table6 HTTPSResult

	Malware MalwareResult

	Table7 GeoResult

	Table8ES BannerCounts
	Table8US BannerCounts

	AgeVerification AgeResult
	Policies        PolicyResult
	Monetization    MonetizationResult

	// Extensions beyond the paper's evaluation (its Section 10 future
	// work): adblocker effectiveness, RTA-label adoption, and the
	// inclusion-chain reconstruction of Section 3.1.
	Blocking BlockingResult
	RTA      RTAResult
	Chains   ChainStats
	Storage  StorageResult

	// Robustness is the crawl-path failure taxonomy: per-vantage site
	// loss and the class breakdown of failed visits and requests.
	Robustness RobustnessResult

	// Validation scores the pipeline's heuristics against the generator's
	// planted ground truth — exact precision/recall where the paper could
	// only sample manually.
	Validation Validation
}

// SyncEdgeThreshold scales the paper's Figure 4 edge threshold (75 synced
// cookies) with corpus scale, keeping at least 2.
func (st *Study) SyncEdgeThreshold() int {
	t := int(75 * st.Cfg.Params.Scale)
	if t < 2 {
		t = 2
	}
	return t
}

// Run executes the complete study: corpus compilation, the main dual
// crawls from Spain, the US crawl for Table 8, the remaining geographic
// crawls, and every analysis. By default the pipeline runs as a
// dependency graph on the internal/sched scheduler — the two main crawls
// overlap, every vantage crawl fans out as soon as the corpus lands, and
// each analysis fires the moment its inputs resolve — bounded by
// Config.StageWorkers. Config.Serial preserves the strictly sequential
// historical order; both paths produce identical Results (pinned by the
// schedule-equivalence tests). Every stage is traced (visible on /spans)
// and timed into the study_stage_seconds histogram (visible on /metrics);
// the scheduled path additionally records per-stage queue wait and the
// in-flight gauge.
// Run also assembles the run's provenance: Study.Provenance (the
// deterministic manifest — config fingerprint, corpus digests, per-stage
// and per-figure record counts and content digests) and Study.RunInfo
// (the volatile wall-clock sidecar). Both live on the Study rather than
// in Results so schedule-equivalence comparisons stay byte-exact.
func (st *Study) Run(ctx context.Context) (*Results, error) {
	st.prov.Reset()
	start := st.clock()
	var (
		res *Results
		err error
	)
	if st.Cfg.Serial {
		res, err = st.runSerial(ctx)
	} else {
		res, err = st.runScheduled(ctx)
	}
	if err != nil {
		return nil, err
	}
	m, merr := st.BuildManifest(res)
	if merr != nil {
		return nil, fmt.Errorf("core: manifest: %w", merr)
	}
	st.Provenance = m
	st.RunInfo = st.buildRunInfo(start)
	return res, nil
}

// runSerial is the historical one-stage-at-a-time pipeline, kept as the
// reference schedule. A cancelled context stops it between stages: the
// current stage finishes (crawls already dispatch nothing once cancelled)
// and no further stage starts.
func (st *Study) runSerial(ctx context.Context) (*Results, error) {
	ctx = obs.WithTracer(ctx, st.Tracer)
	ctx, root := obs.StartSpan(ctx, "study/run")
	defer root.End()
	res := &Results{}

	// measure wraps one synchronous analysis as a traced, timed stage.
	// Once the context dies it stops running stages; the error surfaces at
	// the next checkpoint below, so a cancelled study stops grinding
	// through the remaining analyses.
	measure := func(name string, fn func()) {
		if ctx.Err() != nil {
			return
		}
		_, done := st.stage(ctx, name)
		fn()
		done()
	}
	// checkpoint returns the context's error, if any, wrapped once.
	checkpoint := func() error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: pipeline cancelled: %w", err)
		}
		return nil
	}

	st.Log.Infof("compiling corpus...")
	sctx, done := st.stage(ctx, "corpus")
	corpus, err := st.CompileCorpus(sctx)
	done()
	if err != nil {
		return nil, fmt.Errorf("core: corpus: %w", err)
	}
	if err := checkpoint(); err != nil {
		return nil, err
	}
	res.Corpus = corpus
	st.recordCorpusStage(corpus)
	st.Log.Infof("corpus: %d candidates -> %d porn, %d reference",
		corpus.Candidates, len(corpus.Porn), len(corpus.Reference))

	measure("analysis/rank-stability", func() { res.Figure1 = st.RankStability(corpus.Porn) })

	st.Log.Infof("main crawl (ES)...")
	sctx, done = st.stage(ctx, "crawl/porn-ES")
	pornES, err := st.CrawlStage(sctx, corpus.Porn, "ES", "crawl/porn-ES", "porn")
	done()
	if err != nil {
		return nil, fmt.Errorf("core: porn crawl: %w", err)
	}
	if err := checkpoint(); err != nil {
		return nil, err
	}
	sctx, done = st.stage(ctx, "crawl/reference-ES")
	regES, err := st.CrawlStage(sctx, corpus.Reference, "ES", "crawl/reference-ES", "reference")
	done()
	if err != nil {
		return nil, fmt.Errorf("core: regular crawl: %w", err)
	}
	regularTP := map[string]bool{}
	for _, h := range regES.allThirdPartyHosts() {
		regularTP[h] = true
	}

	measure("analysis/third-parties", func() {
		res.Table2 = st.AnalyzeThirdParties(pornES, regES)
		res.Table3 = st.AnalyzePopularityIntervals(pornES)
		res.SharedAllIntervals, res.SharedAllIntervalsTotal = st.SharedAcrossAllIntervals(pornES)
	})

	measure("analysis/organizations", func() {
		rows, cov := st.AnalyzeOrganizations(pornES, regES, 19)
		res.Figure3 = rows
		if cov.Hosts > 0 {
			res.AttributionRate = float64(cov.Attributed) / float64(cov.Hosts)
			res.DisconnectOnlyRate = float64(cov.DisconnectOnly) / float64(cov.Hosts)
		}
		res.AttributionCompanies = len(cov.Companies)
	})

	measure("analysis/cookies", func() { res.CookieCensus, res.Table4 = st.AnalyzeCookies(pornES, regularTP) })
	measure("analysis/cookie-sync", func() { res.Figure4 = st.AnalyzeCookieSync(pornES, st.SyncEdgeThreshold()) })
	measure("analysis/fingerprinting", func() { res.Fingerprinting = st.AnalyzeFingerprinting(pornES, regularTP) })
	measure("analysis/https", func() { res.Table6 = st.AnalyzeHTTPS(pornES) })
	measure("analysis/malware", func() { res.Malware = st.AnalyzeMalware(pornES) })
	measure("analysis/monetization", func() { res.Monetization = st.AnalyzeMonetization(pornES) })
	measure("analysis/blocking", func() { res.Blocking = st.AnalyzeBlocking(pornES) })
	measure("analysis/rta", func() { res.RTA = st.AnalyzeRTA(pornES) })
	measure("analysis/chains", func() { res.Chains = st.AnalyzeInclusionChains(pornES) })
	measure("analysis/storage", func() { res.Storage = st.AnalyzeStorage(pornES) })
	if err := checkpoint(); err != nil {
		return nil, err
	}

	st.Log.Infof("banner crawl (US)...")
	sctx, done = st.stage(ctx, "crawl/porn-US")
	pornUS, err := st.CrawlStage(sctx, corpus.Porn, "US", "crawl/porn-US", "porn")
	done()
	if err != nil {
		return nil, fmt.Errorf("core: US crawl: %w", err)
	}
	measure("analysis/banners", func() {
		res.Table8ES = st.AnalyzeBanners(pornES)
		res.Table8US = st.AnalyzeBanners(pornUS)
	})
	if err := checkpoint(); err != nil {
		return nil, err
	}

	st.Log.Infof("interactive crawl (ES)...")
	sctx, done = st.stage(ctx, "crawl/interactive-ES")
	interactive, err := st.InteractiveCrawlStage(sctx, corpus.Porn, "ES", "crawl/interactive-ES")
	done()
	if err != nil {
		return nil, fmt.Errorf("core: interactive crawl: %w", err)
	}
	measure("analysis/policies", func() {
		topTracking := st.TopTrackingSites(pornES, 25)
		res.Policies = st.AnalyzePolicies(interactive, topTracking, pornES.thirdPartyHostsBySite())
	})
	measure("analysis/owners", func() { res.Table1 = st.AnalyzeOwners(pornES, interactive, 15) })
	measure("analysis/validation", func() { res.Validation = st.ValidateAgainstTruth(pornES, interactive, res.Table1) })
	if err := checkpoint(); err != nil {
		return nil, err
	}

	st.Log.Infof("age verification (US/UK/ES/RU)...")
	sctx, done = st.stage(ctx, "analysis/age-verification")
	age, err := st.AnalyzeAgeVerification(sctx, corpus.Porn)
	done()
	if err != nil {
		return nil, fmt.Errorf("core: age verification: %w", err)
	}
	res.AgeVerification = age
	if err := checkpoint(); err != nil {
		return nil, err
	}

	st.Log.Infof("geographic crawls...")
	sctx, done = st.stage(ctx, "analysis/geo")
	crawls := map[string]*CrawlResult{
		"ES": pornES,
		"US": pornUS,
	}
	geo, err := st.AnalyzeGeo(sctx, corpus.Porn, regularTP, crawls)
	done()
	if err != nil {
		return nil, fmt.Errorf("core: geo: %w", err)
	}
	res.Table7 = geo
	if err := checkpoint(); err != nil {
		return nil, err
	}

	// AnalyzeGeo filled crawls with every vantage, so the robustness
	// summary covers the whole study.
	measure("analysis/robustness", func() { res.Robustness = st.AnalyzeRobustness(crawls) })
	return res, nil
}

// pipeState holds the intermediate outputs flowing between pipeline
// stages. Each field is written by exactly one stage and read only by
// stages that declare that writer as a dependency; the scheduler's
// completion edges provide the happens-before. The two maps collect
// concurrent fan-out stages under their own mutexes.
type pipeState struct {
	res *Results

	corpus      *Corpus
	pornES      *CrawlResult
	regES       *CrawlResult
	pornUS      *CrawlResult
	regularTP   map[string]bool
	interactive map[string]*browser.InteractiveVisit

	crawlMu sync.Mutex // guards crawls: vantage crawl stages run concurrently
	crawls  map[string]*CrawlResult

	ageMu     sync.Mutex
	ageVisits map[string]map[string]*browser.InteractiveVisit
}

func newPipeState() *pipeState {
	return &pipeState{
		res:       &Results{},
		crawls:    map[string]*CrawlResult{},
		ageVisits: map[string]map[string]*browser.InteractiveVisit{},
	}
}

// runScheduled executes the pipeline as an explicit dependency graph: the
// porn and reference crawls overlap, the US, interactive,
// age-verification and geographic vantage crawls all fan out the moment
// the corpus lands, and every analysis fires as soon as its inputs
// resolve. The graph is data-equivalent to runSerial — each Results field
// is written by exactly one stage, and every edge mirrors a true data
// dependency — so scheduling changes wall-clock, never results.
func (st *Study) runScheduled(ctx context.Context) (*Results, error) {
	ctx = obs.WithTracer(ctx, st.Tracer)
	ctx, root := obs.StartSpan(ctx, "study/run")
	defer root.End()

	ps := newPipeState()
	g := st.buildPipeline(ps)
	err := g.Run(ctx, sched.Options{
		Workers: st.Cfg.StageWorkers,
		Metrics: st.Metrics,
		Logger:  st.Log,
		OnStageDone: func(name string, took time.Duration, err error) {
			st.prov.RecordTiming(name, took)
		},
	})
	if err != nil {
		return nil, err
	}
	return ps.res, nil
}

// buildPipeline declares the full study DAG over the given state. It is
// the single source of truth for the scheduled pipeline's shape; the
// PipelineDependencies test pins its edges against the documented DAG.
func (st *Study) buildPipeline(ps *pipeState) *sched.Graph {
	res := ps.res
	addCrawl := func(country string, cr *CrawlResult) {
		ps.crawlMu.Lock()
		ps.crawls[country] = cr
		ps.crawlMu.Unlock()
	}

	g := sched.New()
	// pure adapts a synchronous analysis (which cannot fail) to a stage.
	pure := func(fn func()) func(context.Context) error {
		return func(context.Context) error { fn(); return nil }
	}

	g.MustAdd("corpus", func(ctx context.Context) error {
		st.Log.Infof("compiling corpus...")
		c, err := st.CompileCorpus(ctx)
		if err != nil {
			return fmt.Errorf("core: corpus: %w", err)
		}
		ps.corpus = c
		res.Corpus = c
		st.recordCorpusStage(c)
		st.Log.Infof("corpus: %d candidates -> %d porn, %d reference",
			c.Candidates, len(c.Porn), len(c.Reference))
		return nil
	})

	g.MustAdd("analysis/rank-stability", pure(func() { res.Figure1 = st.RankStability(ps.corpus.Porn) }), "corpus")

	g.MustAdd("crawl/porn-ES", func(ctx context.Context) error {
		st.Log.Infof("main crawl (ES)...")
		cr, err := st.CrawlStage(ctx, ps.corpus.Porn, "ES", "crawl/porn-ES", "porn")
		if err != nil {
			return fmt.Errorf("core: porn crawl: %w", err)
		}
		ps.pornES = cr
		addCrawl("ES", cr)
		return nil
	}, "corpus")

	g.MustAdd("crawl/reference-ES", func(ctx context.Context) error {
		cr, err := st.CrawlStage(ctx, ps.corpus.Reference, "ES", "crawl/reference-ES", "reference")
		if err != nil {
			return fmt.Errorf("core: regular crawl: %w", err)
		}
		ps.regES = cr
		tp := map[string]bool{}
		for _, h := range cr.allThirdPartyHosts() {
			tp[h] = true
		}
		ps.regularTP = tp
		return nil
	}, "corpus")

	g.MustAdd("crawl/porn-US", func(ctx context.Context) error {
		st.Log.Infof("banner crawl (US)...")
		cr, err := st.CrawlStage(ctx, ps.corpus.Porn, "US", "crawl/porn-US", "porn")
		if err != nil {
			return fmt.Errorf("core: US crawl: %w", err)
		}
		ps.pornUS = cr
		addCrawl("US", cr)
		return nil
	}, "corpus")

	g.MustAdd("crawl/interactive-ES", func(ctx context.Context) error {
		st.Log.Infof("interactive crawl (ES)...")
		iv, err := st.InteractiveCrawlStage(ctx, ps.corpus.Porn, "ES", "crawl/interactive-ES")
		if err != nil {
			return fmt.Errorf("core: interactive crawl: %w", err)
		}
		ps.interactive = iv
		return nil
	}, "corpus")

	// Analyses over the main dual crawl.
	g.MustAdd("analysis/third-parties", pure(func() {
		res.Table2 = st.AnalyzeThirdParties(ps.pornES, ps.regES)
		res.Table3 = st.AnalyzePopularityIntervals(ps.pornES)
		res.SharedAllIntervals, res.SharedAllIntervalsTotal = st.SharedAcrossAllIntervals(ps.pornES)
	}), "crawl/porn-ES", "crawl/reference-ES")

	g.MustAdd("analysis/organizations", pure(func() {
		rows, cov := st.AnalyzeOrganizations(ps.pornES, ps.regES, 19)
		res.Figure3 = rows
		if cov.Hosts > 0 {
			res.AttributionRate = float64(cov.Attributed) / float64(cov.Hosts)
			res.DisconnectOnlyRate = float64(cov.DisconnectOnly) / float64(cov.Hosts)
		}
		res.AttributionCompanies = len(cov.Companies)
	}), "crawl/porn-ES", "crawl/reference-ES")

	g.MustAdd("analysis/cookies", pure(func() { res.CookieCensus, res.Table4 = st.AnalyzeCookies(ps.pornES, ps.regularTP) }),
		"crawl/porn-ES", "crawl/reference-ES")
	g.MustAdd("analysis/cookie-sync", pure(func() { res.Figure4 = st.AnalyzeCookieSync(ps.pornES, st.SyncEdgeThreshold()) }),
		"crawl/porn-ES")
	g.MustAdd("analysis/fingerprinting", pure(func() { res.Fingerprinting = st.AnalyzeFingerprinting(ps.pornES, ps.regularTP) }),
		"crawl/porn-ES", "crawl/reference-ES")
	g.MustAdd("analysis/https", pure(func() { res.Table6 = st.AnalyzeHTTPS(ps.pornES) }), "crawl/porn-ES")
	g.MustAdd("analysis/malware", pure(func() { res.Malware = st.AnalyzeMalware(ps.pornES) }), "crawl/porn-ES")
	g.MustAdd("analysis/monetization", pure(func() { res.Monetization = st.AnalyzeMonetization(ps.pornES) }), "crawl/porn-ES")
	g.MustAdd("analysis/blocking", pure(func() { res.Blocking = st.AnalyzeBlocking(ps.pornES) }), "crawl/porn-ES")
	g.MustAdd("analysis/rta", pure(func() { res.RTA = st.AnalyzeRTA(ps.pornES) }), "crawl/porn-ES")
	g.MustAdd("analysis/chains", pure(func() { res.Chains = st.AnalyzeInclusionChains(ps.pornES) }), "crawl/porn-ES")
	g.MustAdd("analysis/storage", pure(func() { res.Storage = st.AnalyzeStorage(ps.pornES) }), "crawl/porn-ES")

	g.MustAdd("analysis/banners", pure(func() {
		res.Table8ES = st.AnalyzeBanners(ps.pornES)
		res.Table8US = st.AnalyzeBanners(ps.pornUS)
	}), "crawl/porn-ES", "crawl/porn-US")

	// Compliance analyses over the interactive crawl.
	g.MustAdd("analysis/policies", pure(func() {
		topTracking := st.TopTrackingSites(ps.pornES, 25)
		res.Policies = st.AnalyzePolicies(ps.interactive, topTracking, ps.pornES.thirdPartyHostsBySite())
	}), "crawl/porn-ES", "crawl/interactive-ES")
	g.MustAdd("analysis/owners", pure(func() { res.Table1 = st.AnalyzeOwners(ps.pornES, ps.interactive, 15) }),
		"crawl/porn-ES", "crawl/interactive-ES")
	g.MustAdd("analysis/validation", pure(func() { res.Validation = st.ValidateAgainstTruth(ps.pornES, ps.interactive, res.Table1) }),
		"analysis/owners")

	// Age verification: four interactive vantage crawls fan out, then the
	// pure comparison folds them.
	ageDeps := make([]string, 0, len(AgeVantages()))
	for _, c := range AgeVantages() {
		c := c
		name := "crawl/age-" + c
		g.MustAdd(name, func(ctx context.Context) error {
			iv, err := st.InteractiveCrawlStage(ctx, st.Top50(ps.corpus.Porn), c, name)
			if err != nil {
				return fmt.Errorf("core: age verification: %w", err)
			}
			ps.ageMu.Lock()
			ps.ageVisits[c] = iv
			ps.ageMu.Unlock()
			return nil
		}, "corpus")
		ageDeps = append(ageDeps, name)
	}
	g.MustAdd("analysis/age-verification", pure(func() { res.AgeVerification = st.AnalyzeAgeVisits(ps.ageVisits) }), ageDeps...)

	// Geographic vantage crawls: one stage per remaining country, then the
	// pure Table 7 comparison. ES and US come from the main stages.
	geoDeps := []string{"crawl/porn-ES", "crawl/porn-US", "crawl/reference-ES"}
	for _, c := range st.Cfg.Countries {
		if c == "ES" || c == "US" {
			continue
		}
		c := c
		name := "crawl/geo-" + c
		g.MustAdd(name, func(ctx context.Context) error {
			cr, err := st.CrawlStage(ctx, ps.corpus.Porn, c, name, "porn")
			if err != nil {
				return fmt.Errorf("core: geo: %w", err)
			}
			addCrawl(c, cr)
			return nil
		}, "corpus")
		geoDeps = append(geoDeps, name)
	}
	g.MustAdd("analysis/geo", pure(func() { res.Table7 = st.AnalyzeGeoFrom(ps.regularTP, ps.crawls) }), geoDeps...)

	// All vantages are in crawls once analysis/geo resolves, so the
	// robustness summary covers the whole study.
	g.MustAdd("analysis/robustness", pure(func() { res.Robustness = st.AnalyzeRobustness(ps.crawls) }), "analysis/geo")

	return g
}
