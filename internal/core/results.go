package core

import (
	"context"
	"fmt"

	"pornweb/internal/obs"
)

// Results holds every reproduced table and figure (see DESIGN.md's
// per-experiment index).
type Results struct {
	Corpus  *Corpus
	Figure1 RankFigure

	Table1                  OwnerResult
	Table2                  Table2
	Table3                  []IntervalRow
	SharedAllIntervals      int
	SharedAllIntervalsTotal int

	Figure3              []OrgRow
	AttributionRate      float64
	AttributionCompanies int
	DisconnectOnlyRate   float64

	CookieCensus CookieCensus
	Table4       []CookieDomainRow

	Figure4 SyncResult

	Fingerprinting FingerprintResult

	Table6 HTTPSResult

	Malware MalwareResult

	Table7 GeoResult

	Table8ES BannerCounts
	Table8US BannerCounts

	AgeVerification AgeResult
	Policies        PolicyResult
	Monetization    MonetizationResult

	// Extensions beyond the paper's evaluation (its Section 10 future
	// work): adblocker effectiveness, RTA-label adoption, and the
	// inclusion-chain reconstruction of Section 3.1.
	Blocking BlockingResult
	RTA      RTAResult
	Chains   ChainStats
	Storage  StorageResult

	// Robustness is the crawl-path failure taxonomy: per-vantage site
	// loss and the class breakdown of failed visits and requests.
	Robustness RobustnessResult

	// Validation scores the pipeline's heuristics against the generator's
	// planted ground truth — exact precision/recall where the paper could
	// only sample manually.
	Validation Validation
}

// SyncEdgeThreshold scales the paper's Figure 4 edge threshold (75 synced
// cookies) with corpus scale, keeping at least 2.
func (st *Study) SyncEdgeThreshold() int {
	t := int(75 * st.Cfg.Params.Scale)
	if t < 2 {
		t = 2
	}
	return t
}

// Run executes the complete study: corpus compilation, the main dual
// crawls from Spain, the US crawl for Table 8, the remaining geographic
// crawls, and every analysis. Every stage is traced (visible on /spans)
// and timed into the study_stage_seconds histogram (visible on /metrics).
func (st *Study) Run(ctx context.Context) (*Results, error) {
	ctx = obs.WithTracer(ctx, st.Tracer)
	ctx, root := obs.StartSpan(ctx, "study/run")
	defer root.End()
	res := &Results{}

	// measure wraps one synchronous analysis as a traced, timed stage.
	measure := func(name string, fn func()) {
		_, done := st.stage(ctx, name)
		fn()
		done()
	}

	st.Log.Infof("compiling corpus...")
	sctx, done := st.stage(ctx, "corpus")
	corpus, err := st.CompileCorpus(sctx)
	done()
	if err != nil {
		return nil, fmt.Errorf("core: corpus: %w", err)
	}
	res.Corpus = corpus
	st.Log.Infof("corpus: %d candidates -> %d porn, %d reference",
		corpus.Candidates, len(corpus.Porn), len(corpus.Reference))

	measure("analysis/rank-stability", func() { res.Figure1 = st.RankStability(corpus.Porn) })

	st.Log.Infof("main crawl (ES)...")
	sctx, done = st.stage(ctx, "crawl/porn-ES")
	pornES, err := st.Crawl(sctx, corpus.Porn, "ES")
	done()
	if err != nil {
		return nil, fmt.Errorf("core: porn crawl: %w", err)
	}
	sctx, done = st.stage(ctx, "crawl/reference-ES")
	regES, err := st.Crawl(sctx, corpus.Reference, "ES")
	done()
	if err != nil {
		return nil, fmt.Errorf("core: regular crawl: %w", err)
	}
	regularTP := map[string]bool{}
	for _, h := range regES.allThirdPartyHosts() {
		regularTP[h] = true
	}

	measure("analysis/third-parties", func() {
		res.Table2 = st.AnalyzeThirdParties(pornES, regES)
		res.Table3 = st.AnalyzePopularityIntervals(pornES)
		res.SharedAllIntervals, res.SharedAllIntervalsTotal = st.SharedAcrossAllIntervals(pornES)
	})

	measure("analysis/organizations", func() {
		rows, cov := st.AnalyzeOrganizations(pornES, regES, 19)
		res.Figure3 = rows
		if cov.Hosts > 0 {
			res.AttributionRate = float64(cov.Attributed) / float64(cov.Hosts)
			res.DisconnectOnlyRate = float64(cov.DisconnectOnly) / float64(cov.Hosts)
		}
		res.AttributionCompanies = len(cov.Companies)
	})

	measure("analysis/cookies", func() { res.CookieCensus, res.Table4 = st.AnalyzeCookies(pornES, regularTP) })
	measure("analysis/cookie-sync", func() { res.Figure4 = st.AnalyzeCookieSync(pornES, st.SyncEdgeThreshold()) })
	measure("analysis/fingerprinting", func() { res.Fingerprinting = st.AnalyzeFingerprinting(pornES, regularTP) })
	measure("analysis/https", func() { res.Table6 = st.AnalyzeHTTPS(pornES) })
	measure("analysis/malware", func() { res.Malware = st.AnalyzeMalware(pornES) })
	measure("analysis/monetization", func() { res.Monetization = st.AnalyzeMonetization(pornES) })
	measure("analysis/blocking", func() { res.Blocking = st.AnalyzeBlocking(pornES) })
	measure("analysis/rta", func() { res.RTA = st.AnalyzeRTA(pornES) })
	measure("analysis/chains", func() { res.Chains = st.AnalyzeInclusionChains(pornES) })
	measure("analysis/storage", func() { res.Storage = st.AnalyzeStorage(pornES) })

	st.Log.Infof("banner crawl (US)...")
	sctx, done = st.stage(ctx, "crawl/porn-US")
	pornUS, err := st.Crawl(sctx, corpus.Porn, "US")
	done()
	if err != nil {
		return nil, fmt.Errorf("core: US crawl: %w", err)
	}
	measure("analysis/banners", func() {
		res.Table8ES = st.AnalyzeBanners(pornES)
		res.Table8US = st.AnalyzeBanners(pornUS)
	})

	st.Log.Infof("interactive crawl (ES)...")
	sctx, done = st.stage(ctx, "crawl/interactive-ES")
	interactive, err := st.InteractiveCrawl(sctx, corpus.Porn, "ES")
	done()
	if err != nil {
		return nil, fmt.Errorf("core: interactive crawl: %w", err)
	}
	measure("analysis/policies", func() {
		topTracking := st.TopTrackingSites(pornES, 25)
		res.Policies = st.AnalyzePolicies(interactive, topTracking, pornES.thirdPartyHostsBySite())
	})
	measure("analysis/owners", func() { res.Table1 = st.AnalyzeOwners(pornES, interactive, 15) })
	measure("analysis/validation", func() { res.Validation = st.ValidateAgainstTruth(pornES, interactive, res.Table1) })

	st.Log.Infof("age verification (US/UK/ES/RU)...")
	sctx, done = st.stage(ctx, "analysis/age-verification")
	age, err := st.AnalyzeAgeVerification(sctx, corpus.Porn)
	done()
	if err != nil {
		return nil, fmt.Errorf("core: age verification: %w", err)
	}
	res.AgeVerification = age

	st.Log.Infof("geographic crawls...")
	sctx, done = st.stage(ctx, "analysis/geo")
	crawls := map[string]*CrawlResult{
		"ES": pornES,
		"US": pornUS,
	}
	geo, err := st.AnalyzeGeo(sctx, corpus.Porn, regularTP, crawls)
	done()
	if err != nil {
		return nil, fmt.Errorf("core: geo: %w", err)
	}
	res.Table7 = geo

	// AnalyzeGeo filled crawls with every vantage, so the robustness
	// summary covers the whole study.
	measure("analysis/robustness", func() { res.Robustness = st.AnalyzeRobustness(crawls) })
	return res, nil
}
