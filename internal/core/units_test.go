package core

import (
	"context"
	"testing"

	"pornweb/internal/blocklist"
	"pornweb/internal/crawler"
	"pornweb/internal/htmlx"
	"pornweb/internal/ranking"
	"pornweb/internal/webgen"
)

// Unit tests for core helpers that do not need a live crawl.

func newBareStudy(t *testing.T) *Study {
	t.Helper()
	st, err := NewStudy(Config{Params: webgen.Params{Seed: 3, Scale: 0.01}, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Close)
	return st
}

func TestSyncEdgeThreshold(t *testing.T) {
	st := newBareStudy(t)
	if got := st.SyncEdgeThreshold(); got != 2 {
		t.Errorf("threshold at scale 0.01 = %d, want floor 2", got)
	}
	st.Cfg.Params.Scale = 1.0
	if got := st.SyncEdgeThreshold(); got != 75 {
		t.Errorf("threshold at scale 1 = %d, want 75", got)
	}
}

func TestIsATS(t *testing.T) {
	st := newBareStudy(t)
	if !st.isATS("exosrv.com") {
		t.Error("exosrv.com should be ATS")
	}
	if !st.isATS("sub.google-analytics.com") {
		t.Error("GA subdomain should be ATS via base matching")
	}
	if st.isATS("xcvgdf.party") {
		t.Error("unindexed tracker must not be ATS (that is the point)")
	}
}

func TestTop50Ordering(t *testing.T) {
	st := newBareStudy(t)
	hosts := []string{"pornhub.com", "xvideos.com"}
	for _, s := range st.Eco.PornSites {
		if s.BaseRank > 100000 {
			hosts = append(hosts, s.Host)
		}
		if len(hosts) == 10 {
			break
		}
	}
	top := st.Top50(hosts)
	if len(top) != len(hosts) {
		t.Fatalf("Top50 len = %d", len(top))
	}
	if top[0] != "pornhub.com" {
		t.Errorf("top[0] = %q", top[0])
	}
	// Ordering must be by best measured rank.
	prev := 0
	for _, h := range top {
		b := st.Rank.StatsFor(h).Best
		if b == 0 {
			b = 1 << 30
		}
		if b < prev {
			t.Fatalf("Top50 not sorted at %s", h)
		}
		prev = b
	}
}

func TestEqualSets(t *testing.T) {
	a := map[string]bool{"x": true, "y": true}
	b := map[string]bool{"y": true, "x": true}
	if !equalSets(a, b) {
		t.Error("equal sets reported unequal")
	}
	if equalSets(a, map[string]bool{"x": true}) {
		t.Error("different sizes reported equal")
	}
	if equalSets(a, map[string]bool{"x": true, "z": true}) {
		t.Error("different members reported equal")
	}
}

func TestCoversAll(t *testing.T) {
	if !coversAll([]string{"a.com", "b.com"}, []string{"a.com", "b.com"}) {
		t.Error("full coverage rejected")
	}
	if coversAll([]string{"a.com"}, []string{"a.com", "b.com"}) {
		t.Error("partial coverage accepted")
	}
	if coversAll([]string{"a.com"}, nil) {
		t.Error("empty observation must not count as covered")
	}
}

func TestResourceTypeMapping(t *testing.T) {
	cases := map[crawler.Initiator]blocklist.ResourceType{
		crawler.InitScript:   blocklist.TypeScript,
		crawler.InitImage:    blocklist.TypeImage,
		crawler.InitIframe:   blocklist.TypeSubdocument,
		crawler.InitCSS:      blocklist.TypeStylesheet,
		crawler.InitJS:       blocklist.TypeXHR,
		crawler.InitDocument: blocklist.TypeOther,
		crawler.InitRedirect: blocklist.TypeOther,
	}
	for in, want := range cases {
		if got := resourceType(in); got != want {
			t.Errorf("resourceType(%s) = %v, want %v", in, got, want)
		}
	}
}

func TestGeoOrder(t *testing.T) {
	if geoOrder("US") >= geoOrder("UK") || geoOrder("SG") >= geoOrder("XX") {
		t.Error("geo ordering broken")
	}
}

func TestIntervalUsesMeasuredRank(t *testing.T) {
	st := newBareStudy(t)
	iv := st.interval("pornhub.com")
	if iv != ranking.IntervalTop1K {
		t.Errorf("pornhub interval = %v", iv)
	}
	if st.interval("never-ranked.example") != ranking.Interval100KUp {
		t.Error("unknown host should land in the 100k+ bucket")
	}
}

func TestReductionHelpers(t *testing.T) {
	b := BlockingResult{
		TPCookiesBaseline: 100, TPCookiesSurviving: 40,
		CanvasBaseline: 10, CanvasSurviving: 9,
		SyncBaseline: 0, SyncSurviving: 0,
	}
	if got := b.TPCookieReduction(); got != 0.6 {
		t.Errorf("TP reduction = %f", got)
	}
	if got := b.CanvasReduction(); got < 0.09 || got > 0.11 {
		t.Errorf("canvas reduction = %f", got)
	}
	if got := b.SyncReduction(); got != 0 {
		t.Errorf("zero baseline reduction = %f, want 0", got)
	}
}

func TestRTAShare(t *testing.T) {
	if (RTAResult{}).Share() != 0 {
		t.Error("empty RTA share must be 0")
	}
	if got := (RTAResult{Inspected: 10, Tagged: 2}).Share(); got != 0.2 {
		t.Errorf("share = %f", got)
	}
}

func TestBannerCountsHelpers(t *testing.T) {
	b := BannerCounts{Sites: 200, NoOption: 2, Confirmation: 5, Binary: 1}
	if b.Total() != 8 {
		t.Errorf("Total = %d", b.Total())
	}
	if b.Share(b.Total()) != 0.04 {
		t.Errorf("Share = %f", b.Share(b.Total()))
	}
	empty := BannerCounts{}
	if empty.Share(3) != 0 {
		t.Error("empty Share must be 0")
	}
}

func TestProbeCertOrgs(t *testing.T) {
	st := newBareStudy(t)
	orgs := st.ProbeCertOrgs(context.Background(), []string{
		"exosrv.com",           // HTTPS, org "ExoClick S.L."
		"google-analytics.com", // HTTPS, org "Google LLC"
		"xcvgdf.party",         // HTTP-only: no certificate
		"no-such-host.example", // unresolvable
	})
	if orgs["exosrv.com"] != "ExoClick S.L." {
		t.Errorf("exosrv org = %q", orgs["exosrv.com"])
	}
	if orgs["google-analytics.com"] != "Google LLC" {
		t.Errorf("GA org = %q", orgs["google-analytics.com"])
	}
	if _, ok := orgs["xcvgdf.party"]; ok {
		t.Error("HTTP-only host should yield no certificate")
	}
	if _, ok := orgs["no-such-host.example"]; ok {
		t.Error("unknown host should yield nothing")
	}
}

func TestHeadSignatureStability(t *testing.T) {
	st := newBareStudy(t)
	var owned []*webgen.Site
	for _, s := range st.Eco.PornSites {
		if s.Owner != nil && s.Owner.Name == "MindGeek" {
			owned = append(owned, s)
		}
	}
	if len(owned) < 2 {
		t.Skip("cluster too small")
	}
	sig := func(s *webgen.Site) string {
		html := st.Eco.RenderLanding(s, webgen.PageContext{Country: "ES", Scheme: "http"})
		return parseHead(html)
	}
	if sig(owned[0]) != sig(owned[1]) {
		t.Error("same-owner head signatures differ")
	}
}

// parseHead extracts the head signature used by AnalyzeOwners.
func parseHead(html string) string {
	doc := htmlx.Parse(html)
	if head := doc.First("head"); head != nil {
		return headSignature(head)
	}
	return ""
}
