package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"pornweb/internal/browser"
	"pornweb/internal/crawler"
	"pornweb/internal/htmlx"
	"pornweb/internal/obs"
	"pornweb/internal/resilience"
	"pornweb/internal/store"
)

// visitEntry is the durable form of one completed visit: the page (or
// interactive) outcome, the request records the visit generated, its
// aggregated stats and its terminal request failures by class. One
// entry is one store record under (stage, corpus, vantage, site); a
// resumed run rebuilds a crawl stage's full result by replaying these
// entries for the sites already durable and crawling only the rest.
type visitEntry struct {
	Page        *browser.PageVisit        `json:"page,omitempty"`
	Interactive *browser.InteractiveVisit `json:"interactive,omitempty"`
	Records     []crawler.Record          `json:"records,omitempty"`
	Stats       crawler.VisitStats        `json:"stats"`
	Failures    map[string]uint64         `json:"failures,omitempty"`
}

// storeKey builds the durable key for one visit of a stage.
func storeKey(stage, corpus, vantage, site string) store.Key {
	return store.Key{Stage: stage, Corpus: corpus, Vantage: vantage, Site: site}
}

// normalizeRecords strips the volatile parts of a visit's request
// records so the stored bytes are a pure function of (seed, config,
// site): Seq is global log position — scheduling-dependent — and is
// renumbered to the record's position *within the visit* (1-based),
// which preserves the intra-visit ordering the cookie-sync analysis
// relies on while forgetting where concurrent visits interleaved.
func normalizeRecords(recs []crawler.Record) []crawler.Record {
	out := make([]crawler.Record, len(recs))
	for i, r := range recs {
		r.Seq = i + 1
		out[i] = r
	}
	return out
}

// persistVisit streams one completed visit into the durable store. A
// write failure is an availability problem, not a measurement: it is
// logged, counted (store_write_errors_total plus the crawl failure
// taxonomy's store-write class) and the crawl continues — the entry is
// simply not resumable. It must never leak into manifest-digested
// counters, or a disk hiccup would change the study's results.
func (st *Study) persistVisit(k store.Key, e *visitEntry) {
	raw, err := json.Marshal(e)
	if err == nil {
		err = st.store.Append(k, raw)
	}
	if err != nil {
		st.storeErrs.Inc()
		st.Log.Event(obs.LevelWarn, "store append failed; visit not resumable",
			"class", string(resilience.ClassStoreWrite),
			"stage", k.Stage, "site", k.Site, "err", err.Error())
	}
}

// persistRaw streams already-serialized visit bytes into the durable
// store — the sharded path, where the worker marshaled the entry and
// the coordinator persists its exact bytes so the store comes out
// byte-identical to a serial run's. Failure handling matches
// persistVisit: logged, counted, never fatal.
func (st *Study) persistRaw(k store.Key, raw []byte) {
	if err := st.store.Append(k, raw); err != nil {
		st.storeErrs.Inc()
		st.Log.Event(obs.LevelWarn, "store append failed; visit not resumable",
			"class", string(resilience.ClassStoreWrite),
			"stage", k.Stage, "site", k.Site, "err", err.Error())
	}
}

// pageEntry assembles the durable entry for one instrumented page
// visit: the visit outcome (span ID zeroed — tracing is volatile),
// its per-site request records, stats and failure counts.
func pageEntry(pv *browser.PageVisit, sess *crawler.Session, site string) *visitEntry {
	cp := *pv
	cp.SpanID = 0
	return &visitEntry{
		Page:     &cp,
		Records:  normalizeRecords(sess.SiteRecords(site)),
		Stats:    sess.VisitStats(site),
		Failures: sess.SiteFailureCounts(site),
	}
}

// interactiveEntry is pageEntry for the Selenium-analog crawl.
func interactiveEntry(iv *browser.InteractiveVisit, sess *crawler.Session, site string) *visitEntry {
	cp := *iv
	cp.SpanID = 0
	return &visitEntry{
		Interactive: &cp,
		Records:     normalizeRecords(sess.SiteRecords(site)),
		Stats:       sess.VisitStats(site),
		Failures:    sess.SiteFailureCounts(site),
	}
}

// errWrongKind marks a durable entry of the other visit kind — a page
// entry under an interactive stage or vice versa. loadDurable treats
// it as silently missing; the shard path treats it as a protocol
// violation.
var errWrongKind = errors.New("entry is the wrong visit kind")

// decodeVisitEntry parses serialized visit bytes back into a replayable
// entry of the wanted kind. The DOM is never serialized (parent
// pointers make it cyclic); reparsing the stored HTML reconstructs it
// deterministically. Both the resume path (loadDurable) and the
// sharded merge (foldShardEntries) decode through here, so replayed
// and shard-merged entries are bit-for-bit the same in memory.
func decodeVisitEntry(raw []byte, interactive bool) (*visitEntry, error) {
	var e visitEntry
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, fmt.Errorf("core: decode visit entry: %w", err)
	}
	if interactive {
		if e.Interactive == nil {
			return nil, errWrongKind
		}
	} else {
		if e.Page == nil {
			return nil, errWrongKind
		}
		if e.Page.HTML != "" {
			e.Page.DOM = htmlx.Parse(e.Page.HTML)
		}
	}
	return &e, nil
}

// loadDurable reads back the entries a previous run persisted for one
// stage, keyed by site. Only entries of the wanted kind count (a page
// entry cannot satisfy an interactive stage); anything unreadable is
// treated as missing so the visit is simply redone.
func (st *Study) loadDurable(stage, corpus, vantage string, hosts []string, interactive bool) map[string]*visitEntry {
	out := map[string]*visitEntry{}
	for _, h := range hosts {
		raw, ok, err := st.store.Get(storeKey(stage, corpus, vantage, h))
		if err != nil || !ok {
			continue
		}
		e, err := decodeVisitEntry(raw, interactive)
		if err != nil {
			if !errors.Is(err, errWrongKind) {
				st.Log.Event(obs.LevelWarn, "durable visit unreadable; revisiting",
					"stage", stage, "site", h, "err", err.Error())
			}
			continue
		}
		out[h] = e
	}
	return out
}

// mergeReplayed folds the replayed entries of one crawl stage into the
// live session's view, producing exactly what an uninterrupted run
// would have measured: records are appended with fresh Seq numbers
// continuing past the live log (intra-visit order preserved), cert
// organizations are rebuilt from the records that carried them, and
// per-class request failures are added to the session's counters.
// Iteration follows the caller's host order, never map order.
func mergeReplayed(hosts []string, replayed map[string]*visitEntry,
	log []crawler.Record, certOrgs map[string]string, failures map[string]uint64) ([]crawler.Record, map[string]string, map[string]uint64) {
	next := 0
	for _, r := range log {
		if r.Seq > next {
			next = r.Seq
		}
	}
	for _, h := range hosts {
		e := replayed[h]
		if e == nil {
			continue
		}
		for _, r := range e.Records {
			next++
			r.Seq = next
			log = append(log, r)
			if r.CertOrg != "" {
				certOrgs[r.Host] = r.CertOrg
			}
		}
		for class, n := range e.Failures {
			failures[class] += n
		}
	}
	return log, certOrgs, failures
}

// hostsToVisit partitions a stage's hosts into those already durable
// in the store (returned as replayed entries) and those still to be
// crawled. With no store (or an unnamed stage) everything is pending.
func (st *Study) hostsToVisit(stage, corpus, vantage string, hosts []string, interactive bool) ([]string, map[string]*visitEntry) {
	if st.store == nil || stage == "" {
		return hosts, nil
	}
	replayed := st.loadDurable(stage, corpus, vantage, hosts, interactive)
	if len(replayed) == 0 {
		return hosts, nil
	}
	pending := make([]string, 0, len(hosts)-len(replayed))
	for _, h := range hosts {
		if replayed[h] == nil {
			pending = append(pending, h)
		}
	}
	st.Log.Infof("store: %s resumes %d/%d visits from durable log", stage, len(replayed), len(hosts))
	return pending, replayed
}

// checkpointStore syncs and checkpoints the durable store if one is
// open; failures are logged, never fatal — the segments alone are
// authoritative and a resume works without a checkpoint.
func (st *Study) checkpointStore() {
	if st.store == nil {
		return
	}
	if err := st.store.Checkpoint(); err != nil {
		st.storeErrs.Inc()
		st.Log.Event(obs.LevelWarn, "store checkpoint failed",
			"class", string(resilience.ClassStoreWrite), "err", err.Error())
	}
}

// storeInfo exposes the open store's digest for the run manifest;
// (0, "", false) without a store.
func (st *Study) storeInfo() (int, string, bool) {
	if st.store == nil {
		return 0, "", false
	}
	n, digest := st.store.Digest()
	return n, digest, true
}
