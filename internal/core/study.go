// Package core orchestrates the full measurement study: corpus compilation
// and sanitization (Section 3), the dual crawls (instrumented OpenWPM-
// analog and interactive Selenium-analog), and every analysis behind the
// paper's tables and figures — third-party ecosystems (Section 4), privacy
// risks (Section 5), geographic differences (Section 6), and regulatory
// compliance (Section 7). The Results struct holds one field per
// experiment; internal/report renders them as the rows the paper prints.
package core

import (
	"fmt"
	"time"

	"pornweb/internal/blocklist"
	"pornweb/internal/crawler"
	"pornweb/internal/ranking"
	"pornweb/internal/webgen"
	"pornweb/internal/webserver"
)

// Config configures a study run.
type Config struct {
	Params webgen.Params
	// Countries to run the geographic crawls from; defaults to the paper's
	// six vantage points. The main crawl always runs from Spain.
	Countries []string
	// Workers is the crawl parallelism (default 8).
	Workers int
	// Timeout bounds a single page load (the paper used 120 s; the
	// loopback substrate needs far less).
	Timeout time.Duration
	// Log receives progress lines when non-nil.
	Log func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if len(c.Countries) == 0 {
		c.Countries = append([]string{}, webgen.Countries...)
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.Timeout == 0 {
		c.Timeout = 15 * time.Second
	}
	if c.Log == nil {
		c.Log = func(string, ...any) {}
	}
	if c.Params.Scale == 0 {
		c.Params = webgen.DefaultParams()
	}
	return c
}

// Study is a fully wired measurement environment: the generated ecosystem,
// its loopback server, the longitudinal rank dataset and the blocklists.
type Study struct {
	Cfg  Config
	Eco  *webgen.Ecosystem
	Srv  *webserver.Server
	Rank *ranking.Dataset
	// EasyList is the merged EasyList+EasyPrivacy used for ATS
	// classification.
	EasyList *blocklist.List
}

// NewStudy generates the ecosystem and starts its server.
func NewStudy(cfg Config) (*Study, error) {
	cfg = cfg.withDefaults()
	eco := webgen.Generate(cfg.Params)
	srv, err := webserver.Start(eco)
	if err != nil {
		return nil, fmt.Errorf("core: start server: %w", err)
	}
	el := blocklist.Parse("easylist", eco.BuildEasyList())
	ep := blocklist.Parse("easyprivacy", eco.BuildEasyPrivacy())
	return &Study{
		Cfg:      cfg,
		Eco:      eco,
		Srv:      srv,
		Rank:     eco.RankingDataset(),
		EasyList: blocklist.Merge("easylist+easyprivacy", el, ep),
	}, nil
}

// Close shuts the server down.
func (st *Study) Close() { st.Srv.Close() }

// session opens an instrumented session for a vantage country and crawl
// phase.
func (st *Study) session(country, phase string) (*crawler.Session, error) {
	return crawler.NewSession(crawler.Config{
		DialContext: st.Srv.DialContext,
		RootCAs:     st.Srv.CertPool(),
		Country:     country,
		Phase:       phase,
		Timeout:     st.Cfg.Timeout,
	})
}
