// Package core orchestrates the full measurement study: corpus compilation
// and sanitization (Section 3), the dual crawls (instrumented OpenWPM-
// analog and interactive Selenium-analog), and every analysis behind the
// paper's tables and figures — third-party ecosystems (Section 4), privacy
// risks (Section 5), geographic differences (Section 6), and regulatory
// compliance (Section 7). The Results struct holds one field per
// experiment; internal/report renders them as the rows the paper prints.
package core

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime/pprof"
	"sync"
	"time"

	"pornweb/internal/blocklist"
	"pornweb/internal/crawler"
	"pornweb/internal/obs"
	"pornweb/internal/provenance"
	"pornweb/internal/ranking"
	"pornweb/internal/resilience"
	"pornweb/internal/shard"
	"pornweb/internal/store"
	"pornweb/internal/webgen"
	"pornweb/internal/webserver"
)

// Config configures a study run.
type Config struct {
	Params webgen.Params
	// Countries to run the geographic crawls from; defaults to the paper's
	// six vantage points. The main crawl always runs from Spain.
	Countries []string
	// Workers is the crawl parallelism (default 8): how many page visits
	// one crawl stage runs concurrently.
	Workers int
	// StageWorkers bounds how many *pipeline stages* (vantage crawls and
	// analyses) the DAG scheduler runs concurrently; 0 defaults to
	// runtime.NumCPU(). Orthogonal to Workers: total in-flight page loads
	// peak at StageWorkers x Workers.
	StageWorkers int
	// Serial disables the DAG scheduler and runs every pipeline stage
	// strictly sequentially — the historical execution order, kept as the
	// reference schedule for the equivalence tests.
	Serial bool
	// Timeout bounds a single page load (the paper used 120 s; the
	// loopback substrate needs far less).
	Timeout time.Duration
	// Log receives progress lines when non-nil. Deprecated in favour of
	// Logger; when set it is kept working as a sink behind the structured
	// logger, so existing callers lose nothing.
	Log func(format string, args ...any)
	// Logger is the structured leveled logger for the whole study. When
	// nil, one is built that discards output (but still feeds the legacy
	// Log callback when that is set).
	Logger *obs.Logger
	// Metrics is the registry every layer (crawler, browser, webserver,
	// blocklists, pipeline stages) registers into. When nil a fresh
	// registry is created, so metrics are always collected; set
	// MetricsAddr to expose them.
	Metrics *obs.Registry
	// MetricsAddr, when non-empty, starts an admin HTTP listener on that
	// address (host:port, port 0 picks a free one) serving /metrics
	// (Prometheus text format), /spans (recent stage spans as JSON) and
	// /debug/pprof/. Empty means no listener.
	MetricsAddr string
	// SpanBuffer is the tracing ring-buffer capacity (default 4096).
	SpanBuffer int
	// Resilience configures bounded retries and the per-host circuit
	// breaker for every crawl session. The zero value keeps the
	// historical single-shot behaviour.
	Resilience resilience.Policy
	// PageBudget bounds one full page visit including retries; 0 derives
	// 4×Timeout when Resilience is active.
	PageBudget time.Duration
	// FlightBuffer is the per-visit flight-recorder ring capacity
	// (default 4096).
	FlightBuffer int
	// FlightSample keeps 1 in N successful visit events; failed visits
	// are always kept. <= 1 keeps every event.
	FlightSample int
	// FlightSink, when non-nil, receives every kept visit event as one
	// NDJSON line (in addition to the bounded ring served at /flight).
	FlightSink io.Writer
	// FlightOff disables the flight recorder entirely; page visits then
	// skip event assembly (the disabled path is allocation-free).
	FlightOff bool

	// StoreDir, when non-empty, opens the durable visit store in that
	// directory: every completed visit is appended as it finishes, so a
	// crashed run can resume instead of starting over. Empty keeps the
	// historical in-memory-only behaviour.
	StoreDir string
	// StoreResume reopens an existing store directory, replays its log
	// (truncating a torn tail) and lets crawl stages skip the visits
	// already durable. The store's fingerprint and seed must match this
	// config: a mismatch fails NewStudy with store.ErrFingerprintMismatch.
	StoreResume bool
	// StoreSyncEvery overrides the store's batched-fsync cadence
	// (default 16 appends per fsync; 1 syncs every visit).
	StoreSyncEvery int
	// StoreKill injects a crash at a seeded store append — the
	// crash-safety harness's lever. Nil in production.
	StoreKill *store.KillSwitch

	// Shards, when > 1, partitions every named crawl stage's host list
	// by registrable domain into this many shards and dispatches them
	// across a worker fleet instead of crawling in-process. The merged
	// results — and the run manifest — are byte-identical to a serial
	// run's (the shard-equivalence gate's claim). 0 or 1 keeps the
	// serial path.
	Shards int
	// ShardWorkers sizes the in-process local worker fleet (default:
	// one worker per shard). Ignored when CoordinatorAddr is set —
	// remote worker processes register themselves instead.
	ShardWorkers int
	// CoordinatorAddr, when non-empty, opens the shard coordinator's
	// registration listener on that address (host:port, port 0 picks a
	// free one); worker processes started with `pornstudy -worker` join
	// the fleet by POSTing to /register. Empty keeps the fleet
	// in-process.
	CoordinatorAddr string
	// ShardMinWorkers is how many registered workers each dispatch
	// waits for before dealing shards (default 1). Only meaningful with
	// CoordinatorAddr.
	ShardMinWorkers int
	// ShardKill injects a worker death at a seeded visit into the first
	// local worker — the reassignment harness's lever. Nil in
	// production.
	ShardKill *shard.KillSwitch
	// FleetTelemetryOff disables the fleet observability return path:
	// assignments stop asking workers for metric deltas, spans and
	// flight events. Purely an observability knob — it is excluded from
	// the config fingerprint and can never change the manifest.
	FleetTelemetryOff bool
}

func (c Config) withDefaults() Config {
	if len(c.Countries) == 0 {
		c.Countries = append([]string{}, webgen.Countries...)
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.Timeout == 0 {
		c.Timeout = 15 * time.Second
	}
	if c.Log == nil {
		c.Log = func(string, ...any) {}
	}
	if c.SpanBuffer == 0 {
		c.SpanBuffer = 4096
	}
	if c.FlightBuffer == 0 {
		c.FlightBuffer = 4096
	}
	if c.Params.Scale == 0 {
		c.Params = webgen.DefaultParams()
	}
	return c
}

// Study is a fully wired measurement environment: the generated ecosystem,
// its loopback server, the longitudinal rank dataset and the blocklists.
type Study struct {
	Cfg  Config
	Eco  *webgen.Ecosystem
	Srv  *webserver.Server
	Rank *ranking.Dataset
	// EasyList is the merged EasyList+EasyPrivacy used for ATS
	// classification.
	EasyList *blocklist.List

	// Metrics is the study-wide registry; Tracer holds recent stage
	// spans; Log is the structured logger. All three are always non-nil
	// after NewStudy.
	Metrics *obs.Registry
	Tracer  *obs.Tracer
	Log     *obs.Logger
	// Flight is the per-visit flight recorder (nil when Cfg.FlightOff).
	Flight *obs.FlightRecorder

	// Provenance and RunInfo are filled by Run: the deterministic run
	// manifest and its volatile wall-clock sidecar. They live on the
	// Study, not in Results, so result-equivalence comparisons stay
	// byte-exact across schedules.
	Provenance *provenance.Manifest
	RunInfo    *provenance.RunInfo

	// store is the durable visit log (nil without Cfg.StoreDir); storeErrs
	// counts persistence failures the crawl survived.
	store     store.Store
	storeErrs *obs.Counter

	// coord is the shard coordinator (nil unless Cfg.Shards > 1);
	// fingerprint the config fingerprint every shard assignment and the
	// durable store are bound to. shardStages collects each sharded
	// stage's per-shard digests for the shards.json sidecar.
	coord       *shard.Coordinator
	fingerprint string
	shardMu     sync.Mutex
	shardStages map[string]provenance.ShardStage

	prov  *provenance.Recorder
	admin *obs.AdminServer
	// clock is the study's injected time source (wall-clock reads are
	// banned in this package by studylint's wallclock analyzer so the
	// deterministic manifest can never grow a timing dependency); it
	// only feeds the volatile runinfo.json sidecar and stage metrics.
	clock func() time.Time
}

// NewStudy generates the ecosystem and starts its server.
func NewStudy(cfg Config) (*Study, error) {
	userLog := cfg.Log // capture before withDefaults installs the no-op
	cfg = cfg.withDefaults()

	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NewLogger(nil, obs.LevelInfo)
	}
	if userLog != nil {
		logger = logger.WithSink(userLog)
	}
	logger = logger.CountIn(reg)
	tracer := obs.NewTracer(cfg.SpanBuffer).CountIn(reg)

	eco := webgen.Generate(cfg.Params)
	srv, err := webserver.Start(eco,
		webserver.WithMetrics(reg),
		webserver.WithLogger(logger))
	if err != nil {
		return nil, fmt.Errorf("core: start server: %w", err)
	}
	el := blocklist.Parse("easylist", eco.BuildEasyList())
	ep := blocklist.Parse("easyprivacy", eco.BuildEasyPrivacy())
	merged := blocklist.Merge("easylist+easyprivacy", el, ep)
	merged.Instrument(reg)
	st := &Study{
		Cfg:      cfg,
		Eco:      eco,
		Srv:      srv,
		Rank:     eco.RankingDataset(),
		EasyList: merged,
		Metrics:  reg,
		Tracer:   tracer,
		Log:      logger,
		prov:     provenance.NewRecorder(),
		clock:    time.Now,
	}
	if !cfg.FlightOff {
		st.Flight = obs.NewFlightRecorder(cfg.FlightBuffer, cfg.FlightSample, cfg.FlightSink).CountIn(reg)
	}
	fp, err := st.configFingerprint()
	if err != nil {
		srv.Close()
		return nil, fmt.Errorf("core: fingerprint config: %w", err)
	}
	st.fingerprint = fp
	if cfg.StoreDir != "" {
		vs, err := store.Open(cfg.StoreDir, store.Options{
			Fingerprint: fp,
			Seed:        int64(cfg.Params.Seed),
			Resume:      cfg.StoreResume,
			SyncEvery:   cfg.StoreSyncEvery,
			Metrics:     reg,
			Tracer:      tracer,
			Kill:        cfg.StoreKill,
		})
		if err != nil {
			srv.Close()
			// Typed errors (store.ErrFingerprintMismatch in particular)
			// stay unwrappable for the caller's exit-code decision.
			return nil, fmt.Errorf("core: open visit store: %w", err)
		}
		st.store = vs
		reg.Describe("study_store_visit_errors_total", "visits the crawl completed but the store failed to persist")
		st.storeErrs = reg.Counter("study_store_visit_errors_total")
		n, _ := vs.Digest()
		logger.Infof("store: %s open (%d durable visits)", cfg.StoreDir, n)
	}
	if cfg.Shards > 1 {
		coord := shard.NewCoordinator(reg)
		coord.MinWorkers = cfg.ShardMinWorkers
		// Fleet observability plane: one run-level trace ID (a pure
		// function of the fingerprint and seed, so reruns correlate)
		// threads through every assignment, and the coordinator's tracer,
		// registry and flight recorder become the fleet-wide merge points.
		coord.TraceID = obs.MintTraceID(fp, int64(cfg.Params.Seed))
		tracer.SetTraceID(coord.TraceID)
		coord.Tracer = tracer
		coord.Flight = st.Flight
		coord.TelemetryOff = cfg.FleetTelemetryOff
		if cfg.CoordinatorAddr != "" {
			// Remote fleet: workers are separate processes reached over
			// loopback; every control-plane hop routes through a resilience
			// controller (seeded retries plus the per-host breaker), the
			// same transport contract the crawl path honors.
			coord.Client = &http.Client{}
			coord.Ctrl = resilience.NewController(resilience.Policy{
				MaxAttempts: 5,
				Seed:        int64(cfg.Params.Seed),
			})
			if err := coord.Listen(cfg.CoordinatorAddr); err != nil {
				st.Close()
				return nil, fmt.Errorf("core: shard coordinator: %w", err)
			}
			logger.Infof("shard: coordinator listening on %s (%d shards, waiting for %d workers)",
				coord.Addr(), cfg.Shards, cfg.ShardMinWorkers)
		} else {
			n := cfg.ShardWorkers
			if n <= 0 {
				n = cfg.Shards
			}
			for i := 0; i < n; i++ {
				var kill *shard.KillSwitch
				if i == 0 {
					kill = cfg.ShardKill
				}
				coord.AddWorker(&shard.LocalWorker{
					Label:  fmt.Sprintf("local%d", i),
					Runner: st,
					Kill:   kill,
				})
			}
			logger.Infof("shard: %d shards across %d in-process workers", cfg.Shards, n)
		}
		st.coord = coord
	}
	if cfg.MetricsAddr != "" {
		// With a fleet, the admin endpoints become the unified views:
		// /metrics serves the federated registry (coordinator + merged
		// worker deltas), /fleet the per-worker health report, /trace one
		// merged multi-process Perfetto trace. Without one they keep the
		// single-process defaults.
		var extra []obs.Route
		if st.coord != nil {
			extra = []obs.Route{
				{Path: "/metrics", Handler: st.coord.MetricsHandler()},
				{Path: "/fleet", Handler: st.coord.FleetHandler()},
				{Path: "/trace", Handler: st.coord.TraceHandler(tracer)},
			}
		}
		admin, err := obs.ServeAdmin(cfg.MetricsAddr, reg, tracer, st.Flight, extra...)
		if err != nil {
			srv.Close()
			return nil, fmt.Errorf("core: admin listener: %w", err)
		}
		st.admin = admin
		logger.Infof("observability: http://%s/metrics", admin.Addr())
	}
	return st, nil
}

// AdminAddr returns the admin listener's address, or "" when MetricsAddr
// was unset.
func (st *Study) AdminAddr() string { return st.admin.Addr() }

// Close shuts the server (and the admin listener, if any) down and
// checkpoints and closes the durable store when one is open.
func (st *Study) Close() {
	if st.coord != nil {
		if err := st.coord.Close(); err != nil {
			st.Log.Event(obs.LevelWarn, "shard coordinator close failed", "err", err.Error())
		}
	}
	if err := st.admin.Close(); err != nil {
		st.Log.Event(obs.LevelWarn, "admin listener close failed", "err", err.Error())
	}
	if st.store != nil {
		if err := st.store.Close(); err != nil {
			st.Log.Event(obs.LevelWarn, "store close failed", "err", err.Error())
		}
	}
	st.Srv.Close()
}

// VisitStore exposes the durable visit store, nil when Cfg.StoreDir
// was unset. Callers may read (Get/Has/Scan/Digest) freely; writes are
// the crawl stages' job.
func (st *Study) VisitStore() store.Store { return st.store }

// session opens an instrumented session for a vantage country and crawl
// phase.
func (st *Study) session(country, phase string) (*crawler.Session, error) {
	return crawler.NewSession(crawler.Config{
		DialContext: st.Srv.DialContext,
		RootCAs:     st.Srv.CertPool(),
		Country:     country,
		Phase:       phase,
		Timeout:     st.Cfg.Timeout,
		Metrics:     st.Metrics,
		Retry:       st.Cfg.Resilience,
		PageBudget:  st.Cfg.PageBudget,
		Flight:      st.Flight,
	})
}

// stage opens a traced, timed pipeline stage: a span named stage/<name>
// plus an observation in the study_stage_seconds histogram when the
// returned func runs. The serial path has no worker goroutine to wrap in
// pprof.Do, so it sets the stage label on the calling goroutine directly
// (goroutines the stage spawns inherit it) and clears it in the done
// func; resource snapshots bracket the stage the same way the scheduler
// brackets its workers, feeding the study_stage_* resource metrics.
func (st *Study) stage(ctx context.Context, name string) (context.Context, func()) {
	//studylint:ignore metricnames the serial runner forwards declared stage names; buildPipeline is the single source of the (static) stage set
	ctx = pprof.WithLabels(ctx, pprof.Labels("stage", name))
	pprof.SetGoroutineLabels(ctx)
	ctx, span := st.Tracer.Start(ctx, "stage/"+name)
	h := st.Metrics.Histogram("study_stage_seconds", obs.StageBuckets, "stage", name)
	start := st.clock()
	startRes := obs.TakeResourceSnapshot()
	return ctx, func() {
		st.Metrics.RecordStageResources(name, startRes, obs.TakeResourceSnapshot())
		pprof.SetGoroutineLabels(context.Background())
		d := st.clock().Sub(start)
		h.Observe(d.Seconds())
		span.End()
		st.prov.RecordTiming(name, d)
		st.Log.Event(obs.LevelDebug, "stage done", "stage", name, "took", d.Round(time.Millisecond))
	}
}
