package core
