package core

import (
	"sort"

	"pornweb/internal/cookies"
	"pornweb/internal/domain"
)

// LevenshteinAblation evaluates the party-classification cascade at
// different Levenshtein similarity thresholds against the generator's
// ground truth. The paper fixes the threshold at 0.7 after manual
// verification; this ablation shows why: lower thresholds start grouping
// unrelated trackers with the sites embedding them (false first parties),
// higher ones split sister domains of the same operator (false third
// parties).
type LevenshteinAblation struct {
	Threshold float64
	// FalseFirst counts (site, host) pairs labeled first party whose host
	// is ground-truth third party.
	FalseFirst int
	// FalseThird counts pairs labeled third party whose host is
	// ground-truth first party (an extra first-party domain of the site).
	FalseThird int
	Pairs      int
}

// thresholdClassifier is the same cascade as domain.Classifier with an
// adjustable similarity threshold.
type thresholdClassifier struct {
	certOrg   map[string]string
	threshold float64
}

func (c *thresholdClassifier) classify(site, contacted string) domain.Party {
	if domain.Base(site) == domain.Base(contacted) {
		return domain.FirstParty
	}
	if c.certOrg != nil {
		so, ho := c.certOrg[domain.Base(site)], c.certOrg[domain.Base(contacted)]
		if so != "" && so == ho {
			return domain.FirstParty
		}
	}
	if domain.Similarity(site, contacted) > c.threshold {
		return domain.FirstParty
	}
	return domain.ThirdParty
}

// AblateLevenshtein replays party labeling over the porn crawl at each
// threshold and scores it against the planted ownership.
func (st *Study) AblateLevenshtein(porn *CrawlResult, thresholds []float64) []LevenshteinAblation {
	// Ground truth: for each site, the set of hosts that truly belong to
	// it (its own host, subdomains thereof, and its extra first-party
	// hosts).
	ownHosts := map[string]map[string]bool{}
	for _, s := range st.Eco.PornSites {
		m := map[string]bool{s.Host: true}
		for _, fp := range s.ExtraFirstParty {
			m[fp] = true
		}
		ownHosts[s.Host] = m
	}
	certByBase := map[string]string{}
	for host, org := range porn.CertOrgs {
		certByBase[domain.Base(host)] = org
	}

	type pair struct{ site, host string }
	var pairs []pair
	seen := map[pair]bool{}
	for _, r := range porn.Log {
		if r.SiteHost == "" || r.Host == "" || r.Host == r.SiteHost || r.Status == 0 {
			continue
		}
		p := pair{r.SiteHost, r.Host}
		if !seen[p] {
			seen[p] = true
			pairs = append(pairs, p)
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].site != pairs[j].site {
			return pairs[i].site < pairs[j].site
		}
		return pairs[i].host < pairs[j].host
	})

	out := make([]LevenshteinAblation, 0, len(thresholds))
	for _, th := range thresholds {
		cls := &thresholdClassifier{certOrg: certByBase, threshold: th}
		row := LevenshteinAblation{Threshold: th, Pairs: len(pairs)}
		for _, p := range pairs {
			truthFirst := ownHosts[p.site] != nil &&
				(ownHosts[p.site][p.host] || domain.IsSubdomain(p.host, p.site))
			got := cls.classify(p.site, p.host)
			switch {
			case got == domain.FirstParty && !truthFirst:
				row.FalseFirst++
			case got == domain.ThirdParty && truthFirst:
				row.FalseThird++
			}
		}
		out = append(out, row)
	}
	return out
}

// SyncDetectionAblation compares the cookie-sync detector with and without
// path-segment matching, quantifying how much of the sync graph travels in
// URL paths versus query parameters.
type SyncDetectionAblation struct {
	WithPaths   int // events when matching query params + path segments
	QueryOnly   int // events when matching query params only
	PathCarried int // difference
}

// AblateSyncDetection runs both detector variants over the porn crawl.
func (st *Study) AblateSyncDetection(porn *CrawlResult) SyncDetectionAblation {
	full := len(cookies.DetectSyncsOpts(porn.Log, cookies.SyncOptions{}))
	queryOnly := len(cookies.DetectSyncsOpts(porn.Log, cookies.SyncOptions{QueryOnly: true}))
	return SyncDetectionAblation{
		WithPaths:   full,
		QueryOnly:   queryOnly,
		PathCarried: full - queryOnly,
	}
}
