package core

import (
	"context"
	"crypto/tls"
	"sync"
)

// ProbeTLS reports which of the hosts complete a TLS handshake — the
// capability probe behind the "fully HTTPS" classification of Section 5.2
// (a third party *supports* HTTPS even when a plain-HTTP page embedded it
// over plain HTTP).
func (st *Study) ProbeTLS(ctx context.Context, hosts []string) map[string]bool {
	out := make(map[string]bool, len(hosts))
	var mu sync.Mutex
	st.forEach(ctx, len(hosts), func(i int) {
		host := hosts[i]
		raw, err := st.Srv.DialContext(ctx, "tcp", host+":443")
		if err != nil {
			return
		}
		conn := tls.Client(raw, &tls.Config{ServerName: host, RootCAs: st.Srv.CertPool()})
		err = conn.HandshakeContext(ctx)
		conn.Close()
		if err != nil {
			return
		}
		mu.Lock()
		out[host] = true
		mu.Unlock()
	})
	return out
}

// ProbeCertOrgs actively collects X.509 organization strings: it attempts a
// TLS handshake with every host (through the study's resolver) and records
// the organization of the presented leaf certificate. The paper's
// attribution "leverages DNS, WHOIS and X.509 certificate information" —
// an active lookup, not just what the crawl happened to fetch over HTTPS,
// which would miss every tracker embedded from plain-HTTP pages.
func (st *Study) ProbeCertOrgs(ctx context.Context, hosts []string) map[string]string {
	out := make(map[string]string, len(hosts))
	var mu sync.Mutex
	st.forEach(ctx, len(hosts), func(i int) {
		host := hosts[i]
		raw, err := st.Srv.DialContext(ctx, "tcp", host+":443")
		if err != nil {
			return
		}
		conn := tls.Client(raw, &tls.Config{
			ServerName: host,
			RootCAs:    st.Srv.CertPool(),
		})
		err = conn.HandshakeContext(ctx)
		if err != nil {
			raw.Close()
			return
		}
		state := conn.ConnectionState()
		conn.Close()
		if len(state.PeerCertificates) == 0 {
			return
		}
		subj := state.PeerCertificates[0].Subject
		if len(subj.Organization) == 0 || subj.Organization[0] == "" {
			return
		}
		mu.Lock()
		out[host] = subj.Organization[0]
		mu.Unlock()
	})
	return out
}
