// Package report renders study results as the rows the paper prints: one
// renderer per table and figure, writing aligned plain text to any
// io.Writer. cmd/pornstudy composes them into the full evaluation printout;
// the benchmark harness prints the same rows once per run.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"pornweb/internal/core"
	"pornweb/internal/provenance"
)

// percent renders a fraction as the paper does.
func percent(f float64) string {
	return fmt.Sprintf("%.1f%%", 100*f)
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}

// Corpus prints the Section 3 compilation summary.
func Corpus(w io.Writer, c *core.Corpus) {
	header(w, "Corpus compilation (Section 3)")
	fmt.Fprintf(w, "aggregator-indexed sites:    %6d\n", c.FromAggregators)
	fmt.Fprintf(w, "Alexa Adult category:        %6d\n", c.FromAlexaAdult)
	fmt.Fprintf(w, "keyword search hits:         %6d\n", c.FromKeywords)
	fmt.Fprintf(w, "candidate union:             %6d\n", c.Candidates)
	fmt.Fprintf(w, "removed (unresponsive):      %6d\n", c.Unresponsive)
	fmt.Fprintf(w, "removed (not pornographic):  %6d\n", c.NonPorn)
	fmt.Fprintf(w, "sanitized porn corpus:       %6d\n", len(c.Porn))
	fmt.Fprintf(w, "regular reference corpus:    %6d\n", len(c.Reference))
}

// Figure1 prints the longitudinal-popularity aggregates and a sample of
// the per-site series.
func Figure1(w io.Writer, f core.RankFigure, sample int) {
	header(w, "Figure 1 — Alexa rank stability throughout 2018")
	n := len(f.Stats)
	fmt.Fprintf(w, "sites:                 %6d\n", n)
	fmt.Fprintf(w, "always in top-1M:      %6d (%s)\n", f.AlwaysTop1M, percent(float64(f.AlwaysTop1M)/float64(max(n, 1))))
	fmt.Fprintf(w, "always in top-1K:      %6d\n", f.AlwaysTop1K)
	if sample > 0 {
		fmt.Fprintf(w, "%-28s %10s %10s %10s\n", "site", "best", "median", "presence")
		step := n / sample
		if step < 1 {
			step = 1
		}
		for i := 0; i < n; i += step {
			s := f.Stats[i]
			fmt.Fprintf(w, "%-28s %10d %10d %9.0f%%\n", s.Host, s.Best, s.Median, 100*s.Presence)
		}
	}
}

// Table1 prints the owner clusters.
func Table1(w io.Writer, o core.OwnerResult) {
	header(w, "Table 1 — Largest clusters of pornographic sites by parent company")
	fmt.Fprintf(w, "clusters discovered: %d covering %d sites\n", o.Clusters, o.AttributedSites)
	fmt.Fprintf(w, "%-32s %7s  %-28s %8s\n", "Company", "# sites", "Most popular site", "(rank)")
	for _, r := range o.Rows {
		fmt.Fprintf(w, "%-32s %7d  %-28s %8d\n", r.Company, r.Sites, r.MostPopular, r.BestRank)
	}
}

// Table2 prints the party-census comparison.
func Table2(w io.Writer, t core.Table2) {
	header(w, "Table 2 — First/third-party domains, porn vs regular websites")
	fmt.Fprintf(w, "%-22s %14s %14s %12s\n", "Domain category", "Porn (P)", "Regular (R)", "|P ∩ R|")
	fmt.Fprintf(w, "%-22s %14d %14d %12s\n", "Corpus size", t.PornCorpus, t.RegularCorpus, "—")
	fmt.Fprintf(w, "%-22s %14d %14d %12s\n", "First-party", t.PornFirstParty, t.RegularFirstParty, "—")
	fmt.Fprintf(w, "%-22s %14d %14d %12d\n", "Third-party", t.PornThirdParty, t.RegularThirdParty, t.ThirdPartyIntersection)
	fmt.Fprintf(w, "%-22s %14d %14d %12d\n", "Third-party ATS", t.PornATS, t.RegularATS, t.ATSIntersection)
}

// Table3 prints third-party diversity per popularity interval.
func Table3(w io.Writer, rows []core.IntervalRow, shared, sharedTotal int) {
	header(w, "Table 3 — Third-party presence by popularity interval")
	fmt.Fprintf(w, "%-12s %12s %14s %10s\n", "Interval", "porn sites", "third-party", "(unique)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %12d %14d %10d\n", r.Interval, r.Sites, r.ThirdParty, r.UniqueHere)
	}
	if sharedTotal > 0 {
		fmt.Fprintf(w, "third parties present in all four tiers: %d of %d (%s)\n",
			shared, sharedTotal, percent(float64(shared)/float64(sharedTotal)))
	}
}

// Figure3 prints the organization prevalence chart.
func Figure3(w io.Writer, rows []core.OrgRow, attributionRate, disconnectRate float64, companies int) {
	header(w, "Figure 3 — Most relevant third-party organizations")
	fmt.Fprintf(w, "%-36s %10s %10s\n", "Organization", "porn", "regular")
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s %10s %10s\n", r.Org, percent(r.PornPrev), percent(r.RegularPrev))
	}
	fmt.Fprintf(w, "attribution coverage: %s of third-party FQDNs (%d companies); Disconnect list alone: %s\n",
		percent(attributionRate), companies, percent(disconnectRate))
}

// CookieCensus prints the Section 5.1.1 census.
func CookieCensus(w io.Writer, c core.CookieCensus) {
	header(w, "Cookie census (Section 5.1.1)")
	fmt.Fprintf(w, "cookies observed:              %7d\n", c.Total)
	fmt.Fprintf(w, "sites installing cookies:      %7d (%s)\n", c.SitesWithCookies, percent(c.SitesWithCookiesFrac))
	fmt.Fprintf(w, "potential-ID cookies:          %7d\n", c.IDCookies)
	fmt.Fprintf(w, "  of which > 1000 chars:       %7d\n", c.Over1000Chars)
	fmt.Fprintf(w, "third-party ID cookies:        %7d from %d domains\n", c.ThirdPartyID, c.ThirdPartyDomains)
	fmt.Fprintf(w, "sites with 3rd-party cookies:  %7d (%s)\n", c.SitesWithTPID, percent(c.SitesWithTPIDFrac))
	fmt.Fprintf(w, "cookies embedding client IP:   %7d on %d sites\n", c.CookiesWithClientIP, c.SitesWithIPCookies)
	fmt.Fprintf(w, "cookies embedding geolocation: %7d on %d sites\n", c.GeoCookies, c.SitesWithGeoCookies)
	fmt.Fprintf(w, "sites carrying a top-100 name=value pair: %s\n", percent(c.Top100SiteShare))
}

// Table4 prints the top cookie-delivering third-party domains.
func Table4(w io.Writer, rows []core.CookieDomainRow, topN int) {
	header(w, "Table 4 — Third-party domains delivering potential-ID cookies")
	fmt.Fprintf(w, "%-28s %10s %9s %5s %8s %12s\n", "Third-party domain", "% sites", "#cookies", "ATS", "in web", "% with IP")
	if topN > len(rows) {
		topN = len(rows)
	}
	for _, r := range rows[:topN] {
		fmt.Fprintf(w, "%-28s %10s %9d %5s %8s %12s\n",
			r.Domain, percent(r.SiteShare), r.CookieCount, mark(r.ATS), mark(r.InRegularWeb), percent(r.IPShare))
	}
}

func mark(b bool) string {
	if b {
		return "✓"
	}
	return "-"
}

// Figure4 prints the cookie-sync graph summary and its strongest edges.
func Figure4(w io.Writer, s core.SyncResult, maxEdges int) {
	header(w, "Figure 4 — Cookie synchronization between organizations")
	fmt.Fprintf(w, "sync exchanges observed:   %7d\n", s.Events)
	fmt.Fprintf(w, "sites with syncing:        %7d (%s)\n", s.Sites, percent(s.SiteShare))
	fmt.Fprintf(w, "top-100 sites with syncing: %s\n", percent(s.Top100Share))
	fmt.Fprintf(w, "domain pairs: %d   origins: %d   destinations: %d\n", s.Pairs, s.Origins, s.Destinations)
	fmt.Fprintf(w, "strongest edges:\n")
	n := len(s.TopEdges)
	if maxEdges > 0 && n > maxEdges {
		n = maxEdges
	}
	for _, e := range s.TopEdges[:n] {
		fmt.Fprintf(w, "  %-28s -> %-28s %6d\n", e.Origin, e.Dest, e.Count)
	}
}

// Table5 prints the fingerprinting servers.
func Table5(w io.Writer, f core.FingerprintResult, topN int) {
	header(w, "Table 5 — Third-party domains using fingerprinting techniques")
	fmt.Fprintf(w, "canvas FP: %d scripts on %d sites (%s of corpus) from %d third-party services\n",
		f.CanvasScripts, f.CanvasSites, percent(f.CanvasSiteShare), f.CanvasServers)
	fmt.Fprintf(w, "  third-party script share: %s   unindexed by EasyList/EasyPrivacy: %s\n",
		percent(f.ThirdPartyShare), percent(f.UnlistedCanvasShare))
	fmt.Fprintf(w, "font FP:   %d scripts on %d sites\n", f.FontScripts, f.FontSites)
	fmt.Fprintf(w, "WebRTC:    %d scripts on %d sites from %d services\n", f.WebRTCScripts, f.WebRTCSites, f.WebRTCServers)
	fmt.Fprintf(w, "%-26s %9s %5s %8s %8s %8s\n", "Domain", "presence", "ATS", "in web", "canvas", "WebRTC")
	if topN > len(f.Servers) {
		topN = len(f.Servers)
	}
	for _, r := range f.Servers[:topN] {
		fmt.Fprintf(w, "%-26s %9d %5s %8s %8d %8d\n",
			r.Domain, r.Presence, mark(r.ATS), mark(r.InRegularWeb), r.CanvasScripts, r.WebRTCScripts)
	}
}

// Table6 prints HTTPS usage.
func Table6(w io.Writer, h core.HTTPSResult) {
	header(w, "Table 6 — HTTPS usage in pornographic websites")
	fmt.Fprintf(w, "%-12s %-28s %8s\n", "Interval", "Feature", "HTTPS")
	for _, r := range h.Rows {
		fmt.Fprintf(w, "%-12s Porn websites (%d)%*s %7s\n", r.Interval, r.Sites, 11-digits(r.Sites), "", percent(r.SitesHTTPS))
		fmt.Fprintf(w, "%-12s 3rd-party services (%d)%*s %7s\n", "", r.ThirdParties, 6-digits(r.ThirdParties), "", percent(r.ThirdPartyHTTPS))
	}
	fmt.Fprintf(w, "not fully HTTPS: %d sites (%s); ID cookies in the clear on %d of them\n",
		h.NotFullyHTTPS, percent(h.NotFullyHTTPSShare), h.ClearCookieSites)
}

func digits(n int) int { return len(fmt.Sprint(n)) }

// Malware prints the Section 5.3 findings.
func Malware(w io.Writer, m core.MalwareResult) {
	header(w, "Potential malicious behaviours (Section 5.3)")
	fmt.Fprintf(w, "porn sites flagged (>=4 scanners): %d\n", len(m.FlaggedSites))
	fmt.Fprintf(w, "third-party services flagged:      %d, embedded in %d sites\n",
		len(m.FlaggedThirdParties), m.SitesWithMalicious)
	fmt.Fprintf(w, "cryptomining services observed:    %v on %d sites\n", m.MinerDomains, m.SitesWithMiners)
}

// Table7 prints the geographic comparison.
func Table7(w io.Writer, g core.GeoResult) {
	header(w, "Table 7 — Third-party domains per vantage country")
	fmt.Fprintf(w, "%-8s %8s %8s %8s %6s %8s %12s\n", "Country", "FQDN", "in web", "unique", "ATS", "uniqATS", "unreachable")
	for _, r := range g.Rows {
		fmt.Fprintf(w, "%-8s %8d %8s %8d %6d %8d %12d\n",
			r.Country, r.FQDNs, percent(r.WebEcosystemShare), r.UniqueCountry, r.ATS, r.UniqueATS, r.Unreachable)
	}
	fmt.Fprintf(w, "%-8s %8d %8s %8d %6d\n", "Total", g.TotalFQDNs, "", g.UniqueToSomeCountry, g.TotalATS)
	fmt.Fprintf(w, "malware: flagged 3rd-party domains per country: %v\n", g.FlaggedByCountry)
	fmt.Fprintf(w, "         sites with malicious content per country: %v\n", g.SitesWithMalByCountry)
	fmt.Fprintf(w, "         present from every country: %d domains, %d sites\n", g.AlwaysFlagged, g.AlwaysMalSites)
}

// Table8 prints the cookie-banner taxonomy comparison.
func Table8(w io.Writer, es, us core.BannerCounts) {
	header(w, "Table 8 — Cookie banner usage (Degeling taxonomy)")
	fmt.Fprintf(w, "%-14s %10s %10s\n", "Type", "EU", "USA")
	row := func(name string, e, u int) {
		fmt.Fprintf(w, "%-14s %9.2f%% %9.2f%%\n", name, 100*es.Share(e), 100*us.Share(u))
	}
	row("No Option", es.NoOption, us.NoOption)
	row("Confirmation", es.Confirmation, us.Confirmation)
	row("Binary", es.Binary, us.Binary)
	row("Others", es.Other, us.Other)
	fmt.Fprintf(w, "%-14s %9.2f%% %9.2f%%   (N = %d)\n", "Total", 100*es.Share(es.Total()), 100*us.Share(us.Total()), es.Sites)
}

// Age prints the Section 7.2 comparison.
func Age(w io.Writer, a core.AgeResult) {
	header(w, "Age verification in the top-50 (Section 7.2)")
	fmt.Fprintf(w, "%-8s %10s %8s %10s %12s\n", "Country", "inspected", "gated", "bypassed", "not bypass")
	for _, c := range a.Countries {
		fmt.Fprintf(w, "%-8s %10d %8d %10d %12d\n", c.Country, c.Inspected, c.Gated, c.Bypassed, c.NotBypass)
	}
	fmt.Fprintf(w, "US/UK/ES consistent: %v   gated only in RU: %d   gate missing in RU: %d\n",
		a.ConsistentUSUKES, a.OnlyInRU, a.MissingInRU)
}

// Policies prints the Section 7.3 results.
func Policies(w io.Writer, p core.PolicyResult) {
	header(w, "Privacy policies vs reality (Section 7.3)")
	fmt.Fprintf(w, "sites inspected:             %6d\n", p.Inspected)
	fmt.Fprintf(w, "with accessible policy:      %6d (%s)\n", p.WithPolicy, percent(p.PolicyShare))
	fmt.Fprintf(w, "explicit GDPR mentions:      %6d\n", p.GDPRMentions)
	fmt.Fprintf(w, "policy length (letters):     mean %d, min %d, max %d\n", p.MeanLetters, p.MinLetters, p.MaxLetters)
	fmt.Fprintf(w, "policy pairs:                %d, similarity > 0.5: %d (%s)\n", p.Pairs, p.SimilarPairs, percent(p.SimilarShare))
	fmt.Fprintf(w, "top-tracking audit:          %d audited, %d disclose cookies+3rd parties, %d list every third party\n",
		p.TopAudited, p.TopDisclosingCookies, p.TopListingAllParties)
}

// Monetization prints Section 4.1's business-model classification.
func Monetization(w io.Writer, m core.MonetizationResult) {
	header(w, "Monetization models (Section 4.1)")
	paid := 0.0
	if m.Subscriptions > 0 {
		paid = float64(m.Paid) / float64(m.Subscriptions)
	}
	fmt.Fprintf(w, "sites inspected: %d   with subscriptions: %d (%s)   of which paid: %d (%s)\n",
		m.Inspected, m.Subscriptions, percent(float64(m.Subscriptions)/float64(max(m.Inspected, 1))),
		m.Paid, percent(paid))
}

// Blocking prints the adblocker-effectiveness extension.
func Blocking(w io.Writer, b core.BlockingResult) {
	header(w, "Anti-tracking effectiveness (extension of Section 10)")
	fmt.Fprintf(w, "requests blocked by EasyList/EasyPrivacy: %d of %d (%s)\n",
		b.RequestsBlocked, b.RequestsTotal, percent(float64(b.RequestsBlocked)/float64(max(b.RequestsTotal, 1))))
	fmt.Fprintf(w, "third-party ID cookies:  %6d -> %6d  (reduced %s)\n",
		b.TPCookiesBaseline, b.TPCookiesSurviving, percent(b.TPCookieReduction()))
	fmt.Fprintf(w, "canvas FP scripts:       %6d -> %6d  (reduced %s)\n",
		b.CanvasBaseline, b.CanvasSurviving, percent(b.CanvasReduction()))
	fmt.Fprintf(w, "cookie-sync exchanges:   %6d -> %6d  (reduced %s)\n",
		b.SyncBaseline, b.SyncSurviving, percent(b.SyncReduction()))
	fmt.Fprintf(w, "sites still receiving third-party ID cookies with the blocker on: %d\n", b.SitesStillTracked)
}

// RTA prints the Restricted-To-Adults label adoption.
func RTA(w io.Writer, r core.RTAResult) {
	header(w, "RTA self-labeling (Section 2.1 extension)")
	fmt.Fprintf(w, "sites carrying the ASACP RTA meta tag: %d of %d (%s)\n",
		r.Tagged, r.Inspected, percent(r.Share()))
}

// Storage prints the localStorage-persistence findings.
func Storage(w io.Writer, s core.StorageResult) {
	header(w, "localStorage persistence (evercookie candidates)")
	fmt.Fprintf(w, "scripts writing localStorage: %d; cookie+storage respawn candidates: %d on %d sites\n",
		s.ScriptsUsingStorage, s.RespawnCandidates, s.Sites)
}

// Chains prints the inclusion-chain reconstruction.
func Chains(w io.Writer, c core.ChainStats) {
	header(w, "Inclusion chains (Section 3.1 methodology)")
	for _, d := range c.Depths() {
		fmt.Fprintf(w, "depth %d: %7d requests\n", d, c.DepthCounts[d])
	}
	fmt.Fprintf(w, "third parties embedded directly: %d; reached only dynamically: %d\n",
		c.DirectThirdParties, c.IndirectOnly)
	if len(c.LongestChain) > 1 {
		fmt.Fprintf(w, "deepest chain (%d hops):\n", len(c.LongestChain)-1)
		for _, u := range c.LongestChain {
			fmt.Fprintf(w, "  %s\n", truncateURL(u, 100))
		}
	}
}

func truncateURL(u string, n int) string {
	if len(u) <= n {
		return u
	}
	return u[:n] + "..."
}

// Robustness prints the crawl-path failure taxonomy and per-vantage
// site loss.
func Robustness(w io.Writer, r core.RobustnessResult) {
	header(w, "Crawl robustness (failure taxonomy)")
	mode := "single-shot"
	if r.RetriesEnabled {
		mode = fmt.Sprintf("retries enabled (max %d attempts)", r.MaxAttempts)
	}
	faults := "no injected faults"
	if r.FaultsInjected {
		faults = "substrate fault injection on"
	}
	fmt.Fprintf(w, "%s; %s\n", mode, faults)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-3s attempted %5d  crawled %5d  lost %6s\n",
			row.Country, row.Attempted, row.Crawled, percent(row.LossRate))
	}
	any := false
	for _, class := range core.TaxonomyOrder() {
		v, q := r.VisitFailures[class], r.RequestFailures[class]
		if v == 0 && q == 0 {
			continue
		}
		any = true
		fmt.Fprintf(w, "%-14s %6d page visits  %8d requests\n", class, v, q)
	}
	if !any {
		fmt.Fprintf(w, "no failed visits or requests recorded\n")
	}
}

// Validation prints the ground-truth precision/recall scores.
func Validation(w io.Writer, v core.Validation) {
	header(w, "Ground-truth validation (exact, where the paper sampled manually)")
	row := func(name string, p core.PR) {
		fmt.Fprintf(w, "%-24s precision %6s  recall %6s  (tp=%d fp=%d fn=%d)\n",
			name, percent(p.Precision()), percent(p.Recall()),
			p.TruePositives, p.FalsePositives, p.FalseNegatives)
	}
	row("canvas fingerprinting", v.CanvasDetection)
	row("cookie banners", v.BannerDetection)
	if v.BannerTypeTotal > 0 {
		fmt.Fprintf(w, "%-24s %d/%d detected banners typed correctly\n",
			"banner taxonomy", v.BannerTypeMatches, v.BannerTypeTotal)
	}
	row("age gates", v.GateDetection)
	row("privacy policies", v.PolicyDetection)
	row("first-party labeling", v.PartyLabels)
	row("owner clustering", v.OwnerPairs)
}

// All renders every table and figure.
func All(w io.Writer, r *core.Results) {
	Corpus(w, r.Corpus)
	Figure1(w, r.Figure1, 20)
	Table1(w, r.Table1)
	Table2(w, r.Table2)
	Table3(w, r.Table3, r.SharedAllIntervals, r.SharedAllIntervalsTotal)
	Figure3(w, r.Figure3, r.AttributionRate, r.DisconnectOnlyRate, r.AttributionCompanies)
	CookieCensus(w, r.CookieCensus)
	Table4(w, r.Table4, 5)
	Figure4(w, r.Figure4, 15)
	Table5(w, r.Fingerprinting, 10)
	Table6(w, r.Table6)
	Malware(w, r.Malware)
	Table7(w, r.Table7)
	Table8(w, r.Table8ES, r.Table8US)
	Age(w, r.AgeVerification)
	Policies(w, r.Policies)
	Monetization(w, r.Monetization)
	Blocking(w, r.Blocking)
	RTA(w, r.RTA)
	Chains(w, r.Chains)
	Storage(w, r.Storage)
	Robustness(w, r.Robustness)
	Validation(w, r.Validation)
}

// Provenance prints the run's identity footer: the manifest facts a
// reader needs to reproduce or diff the run. It renders nothing for a nil
// manifest, so callers can pass Study.Provenance unconditionally.
func Provenance(w io.Writer, m *provenance.Manifest) {
	if m == nil {
		return
	}
	header(w, "Provenance")
	fmt.Fprintf(w, "config fingerprint:  %s\n", m.ConfigFingerprint)
	fmt.Fprintf(w, "seed / scale:        %d / %g\n", m.Seed, m.Scale)
	names := make([]string, 0, len(m.Corpora))
	for name := range m.Corpora {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ci := m.Corpora[name]
		fmt.Fprintf(w, "corpus %-13s %6d sites, digest %s\n", name+":", ci.Count, ci.Digest)
	}
	fmt.Fprintf(w, "pipeline stages:     %6d digested, %d figures\n", len(m.Stages), len(m.Figures))
	fmt.Fprintf(w, "compare runs with:   studydiff <dirA> <dirB>\n")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
