package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"pornweb/internal/core"
)

// CSV writers: one file per experiment, for plotting or further analysis
// outside Go. WriteCSVDir materializes all of them.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
func d(v int) string     { return strconv.Itoa(v) }

// Figure1CSV writes the per-site longitudinal rank series.
func Figure1CSV(w io.Writer, fig core.RankFigure) error {
	rows := make([][]string, 0, len(fig.Stats))
	for _, s := range fig.Stats {
		rows = append(rows, []string{s.Host, d(s.Best), d(s.Median), d(s.DaysPresent), f(s.Presence)})
	}
	return writeCSV(w, []string{"host", "best_rank", "median_rank", "days_present", "presence"}, rows)
}

// Table1CSV writes the owner clusters.
func Table1CSV(w io.Writer, o core.OwnerResult) error {
	rows := make([][]string, 0, len(o.Rows))
	for _, r := range o.Rows {
		rows = append(rows, []string{r.Company, d(r.Sites), r.MostPopular, d(r.BestRank)})
	}
	return writeCSV(w, []string{"company", "sites", "most_popular", "best_rank"}, rows)
}

// Table3CSV writes the popularity-interval comparison.
func Table3CSV(w io.Writer, rows []core.IntervalRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Interval.String(), d(r.Sites), d(r.ThirdParty), d(r.UniqueHere)})
	}
	return writeCSV(w, []string{"interval", "sites", "third_party", "unique"}, out)
}

// Figure3CSV writes organization prevalences.
func Figure3CSV(w io.Writer, rows []core.OrgRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Org, f(r.PornPrev), f(r.RegularPrev)})
	}
	return writeCSV(w, []string{"organization", "porn_prevalence", "regular_prevalence"}, out)
}

// Table4CSV writes the cookie-domain rows.
func Table4CSV(w io.Writer, rows []core.CookieDomainRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.Domain, f(r.SiteShare), d(r.CookieCount),
			strconv.FormatBool(r.ATS), strconv.FormatBool(r.InRegularWeb), f(r.IPShare)})
	}
	return writeCSV(w, []string{"domain", "site_share", "cookies", "ats", "in_regular_web", "ip_share"}, out)
}

// Figure4CSV writes the sync-graph edges.
func Figure4CSV(w io.Writer, s core.SyncResult) error {
	out := make([][]string, 0, len(s.TopEdges))
	for _, e := range s.TopEdges {
		out = append(out, []string{e.Origin, e.Dest, d(e.Count)})
	}
	return writeCSV(w, []string{"origin", "destination", "cookies_exchanged"}, out)
}

// Table5CSV writes the fingerprinting-server rows.
func Table5CSV(w io.Writer, fp core.FingerprintResult) error {
	out := make([][]string, 0, len(fp.Servers))
	for _, r := range fp.Servers {
		out = append(out, []string{r.Domain, d(r.Presence), strconv.FormatBool(r.ATS),
			strconv.FormatBool(r.InRegularWeb), d(r.CanvasScripts), d(r.WebRTCScripts)})
	}
	return writeCSV(w, []string{"domain", "presence", "ats", "in_regular_web", "canvas_scripts", "webrtc_scripts"}, out)
}

// Table6CSV writes HTTPS usage per interval.
func Table6CSV(w io.Writer, h core.HTTPSResult) error {
	out := make([][]string, 0, len(h.Rows))
	for _, r := range h.Rows {
		out = append(out, []string{r.Interval.String(), d(r.Sites), f(r.SitesHTTPS), d(r.ThirdParties), f(r.ThirdPartyHTTPS)})
	}
	return writeCSV(w, []string{"interval", "sites", "sites_https", "third_parties", "third_party_https"}, out)
}

// Table7CSV writes the geographic comparison.
func Table7CSV(w io.Writer, g core.GeoResult) error {
	out := make([][]string, 0, len(g.Rows))
	for _, r := range g.Rows {
		out = append(out, []string{r.Country, d(r.FQDNs), f(r.WebEcosystemShare),
			d(r.UniqueCountry), d(r.ATS), d(r.UniqueATS), d(r.Unreachable)})
	}
	return writeCSV(w, []string{"country", "fqdns", "web_share", "unique", "ats", "unique_ats", "unreachable"}, out)
}

// Table8CSV writes banner counts for both vantage points.
func Table8CSV(w io.Writer, es, us core.BannerCounts) error {
	rows := [][]string{
		{"no_option", d(es.NoOption), d(us.NoOption)},
		{"confirmation", d(es.Confirmation), d(us.Confirmation)},
		{"binary", d(es.Binary), d(us.Binary)},
		{"others", d(es.Other), d(us.Other)},
		{"sites", d(es.Sites), d(us.Sites)},
	}
	return writeCSV(w, []string{"type", "eu", "usa"}, rows)
}

// Figure4DOT renders the cookie-sync graph as Graphviz DOT — the visual
// form Figure 4 takes in the paper.
func Figure4DOT(w io.Writer, s core.SyncResult) error {
	if _, err := fmt.Fprintln(w, "digraph cookiesync {"); err != nil {
		return err
	}
	fmt.Fprintln(w, `  rankdir=LR;`)
	fmt.Fprintln(w, `  node [shape=box, fontsize=10];`)
	for _, e := range s.TopEdges {
		fmt.Fprintf(w, "  %q -> %q [label=\"%d\", penwidth=%.1f];\n",
			e.Origin, e.Dest, e.Count, 1.0+float64(e.Count)/100)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// WriteCSVDir writes every experiment's CSV into dir (created if missing).
func WriteCSVDir(dir string, r *core.Results) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writers := []struct {
		name string
		fn   func(io.Writer) error
	}{
		{"figure1_rank_stability.csv", func(w io.Writer) error { return Figure1CSV(w, r.Figure1) }},
		{"table1_owner_clusters.csv", func(w io.Writer) error { return Table1CSV(w, r.Table1) }},
		{"table3_popularity_intervals.csv", func(w io.Writer) error { return Table3CSV(w, r.Table3) }},
		{"figure3_organizations.csv", func(w io.Writer) error { return Figure3CSV(w, r.Figure3) }},
		{"table4_cookie_domains.csv", func(w io.Writer) error { return Table4CSV(w, r.Table4) }},
		{"figure4_cookie_sync.csv", func(w io.Writer) error { return Figure4CSV(w, r.Figure4) }},
		{"table5_fingerprinting.csv", func(w io.Writer) error { return Table5CSV(w, r.Fingerprinting) }},
		{"table6_https.csv", func(w io.Writer) error { return Table6CSV(w, r.Table6) }},
		{"table7_geographic.csv", func(w io.Writer) error { return Table7CSV(w, r.Table7) }},
		{"table8_banners.csv", func(w io.Writer) error { return Table8CSV(w, r.Table8ES, r.Table8US) }},
	}
	writers = append(writers, struct {
		name string
		fn   func(io.Writer) error
	}{"figure4_cookie_sync.dot", func(w io.Writer) error { return Figure4DOT(w, r.Figure4) }})
	for _, wr := range writers {
		f, err := os.Create(filepath.Join(dir, wr.name))
		if err != nil {
			return err
		}
		if err := wr.fn(f); err != nil {
			f.Close()
			return fmt.Errorf("report: write %s: %w", wr.name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
