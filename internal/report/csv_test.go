package report

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pornweb/internal/cookies"
	"pornweb/internal/core"
	"pornweb/internal/ranking"
)

func TestCSVWriters(t *testing.T) {
	var b strings.Builder
	err := Figure1CSV(&b, core.RankFigure{Stats: []ranking.Stats{
		{Host: "a.com", Best: 10, Median: 20, DaysPresent: 365, Presence: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(strings.NewReader(b.String()))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1][0] != "a.com" || recs[1][1] != "10" {
		t.Errorf("records = %v", recs)
	}
}

func TestWriteCSVDir(t *testing.T) {
	dir := t.TempDir()
	res := &core.Results{
		Figure1: core.RankFigure{Stats: []ranking.Stats{{Host: "x.com", Best: 5}}},
		Table1:  core.OwnerResult{Rows: []core.OwnerRow{{Company: "Acme", Sites: 3, MostPopular: "x.com", BestRank: 5}}},
		Table3:  []core.IntervalRow{{Interval: ranking.IntervalTop1K, Sites: 1, ThirdParty: 2, UniqueHere: 1}},
		Figure3: []core.OrgRow{{Org: "Alphabet", PornPrev: 0.7, RegularPrev: 0.9}},
		Table4:  []core.CookieDomainRow{{Domain: "t.example", SiteShare: 0.2, CookieCount: 7, ATS: true, IPShare: 0.8}},
		Figure4: core.SyncResult{TopEdges: []cookies.Edge{{Origin: "a.com", Dest: "b.com", Count: 99}}},
		Fingerprinting: core.FingerprintResult{Servers: []core.FPServerRow{
			{Domain: "f.example", Presence: 4, CanvasScripts: 2},
		}},
		Table6:   core.HTTPSResult{Rows: []core.HTTPSRow{{Interval: ranking.IntervalTop1K, Sites: 9, SitesHTTPS: 0.9}}},
		Table7:   core.GeoResult{Rows: []core.GeoRow{{Country: "ES", FQDNs: 100, ATS: 10}}},
		Table8ES: core.BannerCounts{Sites: 100, Confirmation: 3},
		Table8US: core.BannerCounts{Sites: 100, Confirmation: 2},
	}
	if err := WriteCSVDir(dir, res); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 11 {
		t.Fatalf("files = %d, want 11 (10 CSV + 1 DOT)", len(entries))
	}
	// Every CSV file parses with a header; the DOT file is valid Graphviz.
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasSuffix(e.Name(), ".dot") {
			if !strings.HasPrefix(string(data), "digraph") || !strings.Contains(string(data), "a.com") {
				t.Errorf("%s: malformed DOT", e.Name())
			}
			continue
		}
		recs, err := csv.NewReader(strings.NewReader(string(data))).ReadAll()
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if len(recs) < 1 {
			t.Errorf("%s: empty", e.Name())
		}
	}
}
