package report

import (
	"context"
	"strings"
	"testing"
	"time"

	"pornweb/internal/core"
	"pornweb/internal/webgen"
)

func TestAllRendersEverySection(t *testing.T) {
	st, err := core.NewStudy(core.Config{
		Params:  webgen.Params{Seed: 11, Scale: 0.012},
		Workers: 8,
		Timeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	res, err := st.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	All(&b, res)
	out := b.String()
	for _, want := range []string{
		"Corpus compilation",
		"Figure 1", "Table 1", "Table 2", "Table 3", "Figure 3",
		"Cookie census", "Table 4", "Figure 4", "Table 5", "Table 6",
		"malicious", "Table 7", "Table 8", "Age verification",
		"Privacy policies", "Monetization", "Anti-tracking",
		"RTA self-labeling", "Inclusion chains",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %q", want)
		}
	}
	if strings.Contains(out, "%!") {
		t.Error("format verb error in report output")
	}
	if len(out) < 2000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}

func TestPercent(t *testing.T) {
	if percent(0.125) != "12.5%" {
		t.Errorf("percent = %q", percent(0.125))
	}
	if percent(0) != "0.0%" {
		t.Errorf("percent(0) = %q", percent(0))
	}
}

func TestMark(t *testing.T) {
	if mark(true) != "✓" || mark(false) != "-" {
		t.Error("mark mismatch")
	}
}
