package vantage

import (
	"context"
	"testing"
	"time"

	"pornweb/internal/crawler"
	"pornweb/internal/webgen"
	"pornweb/internal/webserver"
)

func TestPointsAndEU(t *testing.T) {
	if len(Points) != 6 {
		t.Fatalf("points = %d, want 6", len(Points))
	}
	if !EU("ES") || !EU("UK") {
		t.Error("ES and UK must be EU (2019)")
	}
	if EU("US") || EU("RU") {
		t.Error("US/RU must not be EU")
	}
	cs := Countries()
	if cs[0] != "ES" || len(cs) != 6 {
		t.Errorf("Countries = %v", cs)
	}
}

func TestSessionsAndManipulationCheck(t *testing.T) {
	eco := webgen.Generate(webgen.Params{Seed: 7, Scale: 0.02})
	srv, err := webserver.Start(eco)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sessions, err := Sessions(crawler.Config{
		DialContext: srv.DialContext,
		RootCAs:     srv.CertPool(),
		Timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 6 {
		t.Fatalf("sessions = %d", len(sessions))
	}
	// A static CDN asset must be byte-identical from every vantage.
	check, err := VerifyNoManipulation(context.Background(), sessions, "http://gstatic.com/css/lib.css")
	if err != nil {
		t.Fatal(err)
	}
	if !check.Consistent {
		t.Errorf("reference asset differs across vantages: %+v", check.Digests)
	}
	if len(check.Digests) != 6 {
		t.Errorf("digests = %d", len(check.Digests))
	}
}
