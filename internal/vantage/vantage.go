// Package vantage manages the study's geographic vantage points. The paper
// crawls from a physical machine in Spain plus commercial-VPN egress in the
// USA, UK, Russia, India and Singapore (Section 3.1), after verifying that
// the VPN providers do not manipulate traffic. Here the "VPN" is a crawl
// session whose transport tags every request with its country — the
// substitution for geo-IP-visible egress — and the no-manipulation check is
// reproduced by fetching a reference resource through every vantage and
// comparing digests.
package vantage

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"pornweb/internal/crawler"
)

// Point is one vantage point.
type Point struct {
	Country  string // ISO-ish code used across the study ("ES", "US", ...)
	City     string
	Provider string // "physical" or the VPN provider name
}

// Points are the study's six vantage points. Spain is the physical machine;
// the rest alternate between the two commercial VPN providers the paper
// used.
var Points = []Point{
	{Country: "ES", City: "Madrid", Provider: "physical"},
	{Country: "US", City: "New York", Provider: "NordVPN"},
	{Country: "UK", City: "London", Provider: "NordVPN"},
	{Country: "RU", City: "Moscow", Provider: "PrivateVPN"},
	{Country: "IN", City: "Mumbai", Provider: "PrivateVPN"},
	{Country: "SG", City: "Singapore", Provider: "NordVPN"},
}

// EU reports whether the vantage country was an EU member state during the
// study (2019 — the UK still was).
func EU(country string) bool { return country == "ES" || country == "UK" }

// Countries lists the vantage country codes in study order.
func Countries() []string {
	out := make([]string, len(Points))
	for i, p := range Points {
		out[i] = p.Country
	}
	return out
}

// Sessions opens one instrumented crawl session per vantage point, sharing
// everything in base except the country. Each country keeps its own cookie
// jar — a fresh browser behind each VPN endpoint, as in the paper.
func Sessions(base crawler.Config) (map[string]*crawler.Session, error) {
	out := make(map[string]*crawler.Session, len(Points))
	for _, p := range Points {
		cfg := base
		cfg.Country = p.Country
		s, err := crawler.NewSession(cfg)
		if err != nil {
			return nil, fmt.Errorf("vantage %s: %w", p.Country, err)
		}
		out[p.Country] = s
	}
	return out, nil
}

// ManipulationCheck is the result of the pre-study VPN integrity test.
type ManipulationCheck struct {
	ReferenceURL string
	Digests      map[string]string // country -> sha256 of the fetched body
	Consistent   bool
}

// VerifyNoManipulation fetches refURL through every session and compares
// body digests; any divergence means a vantage path rewrites content.
func VerifyNoManipulation(ctx context.Context, sessions map[string]*crawler.Session, refURL string) (ManipulationCheck, error) {
	check := ManipulationCheck{ReferenceURL: refURL, Digests: map[string]string{}, Consistent: true}
	countries := make([]string, 0, len(sessions))
	for c := range sessions {
		countries = append(countries, c)
	}
	sort.Strings(countries)
	var first string
	for _, c := range countries {
		res, err := sessions[c].Fetch(ctx, refURL, "", crawler.InitDocument, "")
		if err != nil {
			return check, fmt.Errorf("vantage %s: fetch %s: %w", c, refURL, err)
		}
		sum := sha256.Sum256([]byte(res.Body))
		d := hex.EncodeToString(sum[:])
		check.Digests[c] = d
		if first == "" {
			first = d
		} else if d != first {
			check.Consistent = false
		}
	}
	return check, nil
}
