package textstat

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! GDPR-compliant cookies 42 a")
	want := []string{"hello", "world", "gdpr", "compliant", "cookies", "42"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("política de privacidad — данные")
	want := []string{"política", "de", "privacidad", "данные"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestCosineIdentical(t *testing.T) {
	c := NewCorpus([]string{"the cookie policy text", "the cookie policy text"})
	if s := c.Similarity(0, 1); math.Abs(s-1) > 1e-9 {
		t.Errorf("identical docs similarity = %f, want 1", s)
	}
}

func TestCosineDisjoint(t *testing.T) {
	c := NewCorpus([]string{"alpha beta gamma", "delta epsilon zeta"})
	if s := c.Similarity(0, 1); s != 0 {
		t.Errorf("disjoint docs similarity = %f, want 0", s)
	}
}

func TestCosineEmpty(t *testing.T) {
	c := NewCorpus([]string{"", "words here"})
	if s := c.Similarity(0, 1); s != 0 {
		t.Errorf("empty doc similarity = %f, want 0", s)
	}
	if s := Cosine(Vector{}, Vector{}); s != 0 {
		t.Errorf("Cosine(empty,empty) = %f, want 0", s)
	}
}

func TestCosineRangeProperty(t *testing.T) {
	f := func(a, b string) bool {
		c := NewCorpus([]string{a, b})
		s := c.Similarity(0, 1)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCosineSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		c := NewCorpus([]string{a, b})
		return math.Abs(Cosine(c.Vector(0), c.Vector(1))-Cosine(c.Vector(1), c.Vector(0))) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimilarityOrdering(t *testing.T) {
	// A near-duplicate pair must score higher than an unrelated pair.
	docs := []string{
		"we collect cookies and share data with advertising partners for analytics",
		"we collect cookies and share data with advertising partners for marketing",
		"bananas are yellow fruit grown in tropical regions of the world",
	}
	c := NewCorpus(docs)
	near := c.Similarity(0, 1)
	far := c.Similarity(0, 2)
	if near <= far {
		t.Errorf("near-duplicate similarity %f should exceed unrelated %f", near, far)
	}
	if near < 0.5 {
		t.Errorf("near-duplicate similarity %f should be >= 0.5", near)
	}
}

func TestVectorFor(t *testing.T) {
	c := NewCorpus([]string{"cookies and trackers", "privacy policy"})
	v := c.VectorFor("cookies trackers unseen")
	if len(v) != 3 {
		t.Errorf("VectorFor returned %d terms, want 3", len(v))
	}
	if v["unseen"] <= 0 {
		t.Error("unknown term should get smoothing IDF > 0")
	}
}

func TestAllPairs(t *testing.T) {
	docs := []string{
		"template privacy policy cookies third parties",
		"template privacy policy cookies third parties",
		"template privacy policy cookies third parties gdpr",
		"completely different text about video streaming",
	}
	c := NewCorpus(docs)
	st := c.AllPairs(0.5)
	if st.Pairs != 6 {
		t.Fatalf("Pairs = %d, want 6", st.Pairs)
	}
	if st.AboveThreshold < 3 {
		t.Errorf("AboveThreshold = %d, want >= 3 (the three template pairs)", st.AboveThreshold)
	}
	if st.Max < 0.999 {
		t.Errorf("Max = %f, want ~1 for identical pair", st.Max)
	}
	if st.Mean <= 0 || st.Mean > 1 {
		t.Errorf("Mean = %f out of range", st.Mean)
	}
}

func TestCluster(t *testing.T) {
	docs := []string{
		"acme corp privacy policy we collect usage data and cookies",   // 0
		"acme corp privacy policy we collect usage data and cookies x", // 1: near 0
		"zebra streaming terms totally unrelated words entirely",       // 2
		"acme corp privacy policy we collect usage data and cookies y", // 3: near 0,1
	}
	c := NewCorpus(docs)
	clusters := c.Cluster(0.8)
	if len(clusters) != 1 {
		t.Fatalf("clusters = %v, want exactly 1", clusters)
	}
	got := clusters[0]
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Errorf("cluster = %v, want [0 1 3]", got)
	}
}

func TestClusterNone(t *testing.T) {
	c := NewCorpus([]string{"alpha beta", "gamma delta", "epsilon zeta"})
	if clusters := c.Cluster(0.5); len(clusters) != 0 {
		t.Errorf("clusters = %v, want none", clusters)
	}
}

func TestCorpusLen(t *testing.T) {
	if n := NewCorpus([]string{"a b", "c d", "e f"}).Len(); n != 3 {
		t.Errorf("Len = %d, want 3", n)
	}
}
