// Package textstat implements the text-statistics primitives the study uses
// to compare privacy policies and HTML <head> contents: tokenization,
// TF-IDF weighting over a corpus, and cosine similarity between documents.
//
// The paper applies TF-IDF similarity twice: to cluster pornographic
// websites that likely share an owner (Section 4.1) and to measure how
// template-like privacy policies are (Section 7.3, where 76% of the
// 1.2M policy pairs scored above 0.5).
package textstat

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// Tokenize splits text into lower-case word tokens. Tokens are maximal runs
// of letters and digits; everything else is a separator. Tokens shorter than
// two runes are discarded (they carry no signal in policy text).
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() >= 2 {
			tokens = append(tokens, b.String())
		}
		b.Reset()
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

// Vector is a sparse term-weight vector.
type Vector map[string]float64

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	var sum float64
	for _, w := range v {
		sum += w * w
	}
	return math.Sqrt(sum)
}

// Cosine returns the cosine similarity between two vectors in [0,1] for
// non-negative weights (TF-IDF weights are non-negative). Two empty vectors
// are defined to have similarity 0.
func Cosine(a, b Vector) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	// Iterate over the smaller vector.
	if len(b) < len(a) {
		a, b = b, a
	}
	var dot float64
	for term, wa := range a {
		if wb, ok := b[term]; ok {
			dot += wa * wb
		}
	}
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	sim := dot / (na * nb)
	// Clamp tiny floating-point excursions.
	if sim > 1 {
		sim = 1
	}
	if sim < 0 {
		sim = 0
	}
	return sim
}

// Corpus holds the documents being compared and the fitted IDF weights.
type Corpus struct {
	docs    [][]string         // tokenized documents
	idf     map[string]float64 // fitted inverse document frequency
	vectors []Vector           // cached TF-IDF vectors
}

// NewCorpus tokenizes the documents and fits IDF weights:
// idf(t) = ln((1+N)/(1+df(t))) + 1 (the smoothed variant, always positive).
func NewCorpus(documents []string) *Corpus {
	c := &Corpus{
		docs: make([][]string, len(documents)),
		idf:  make(map[string]float64),
	}
	df := make(map[string]int)
	for i, d := range documents {
		toks := Tokenize(d)
		c.docs[i] = toks
		seen := make(map[string]bool, len(toks))
		for _, t := range toks {
			if !seen[t] {
				seen[t] = true
				df[t]++
			}
		}
	}
	n := float64(len(documents))
	for t, d := range df {
		c.idf[t] = math.Log((1+n)/(1+float64(d))) + 1
	}
	c.vectors = make([]Vector, len(documents))
	for i := range c.docs {
		c.vectors[i] = c.vectorize(c.docs[i])
	}
	return c
}

// Len returns the number of documents in the corpus.
func (c *Corpus) Len() int { return len(c.docs) }

// vectorize builds the L2-normalizable TF-IDF vector for a token list using
// the fitted IDF table. Unknown terms get IDF 1 (smoothing floor).
func (c *Corpus) vectorize(tokens []string) Vector {
	if len(tokens) == 0 {
		return Vector{}
	}
	tf := make(map[string]int, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	v := make(Vector, len(tf))
	n := float64(len(tokens))
	for t, f := range tf {
		idf, ok := c.idf[t]
		if !ok {
			idf = 1
		}
		v[t] = (float64(f) / n) * idf
	}
	return v
}

// Vector returns the TF-IDF vector of document i.
func (c *Corpus) Vector(i int) Vector { return c.vectors[i] }

// VectorFor builds a TF-IDF vector for text outside the corpus, using the
// corpus' fitted IDF weights.
func (c *Corpus) VectorFor(text string) Vector {
	return c.vectorize(Tokenize(text))
}

// Similarity returns the cosine similarity between corpus documents i and j.
func (c *Corpus) Similarity(i, j int) float64 {
	return Cosine(c.vectors[i], c.vectors[j])
}

// PairStats summarizes all-pairs similarity over the corpus.
type PairStats struct {
	Pairs          int     // number of distinct pairs (i<j)
	AboveThreshold int     // pairs with similarity above the threshold
	Mean           float64 // mean pairwise similarity
	Max            float64
}

// AllPairs computes similarity statistics across every document pair,
// counting those above threshold. This mirrors the paper's 1,202,312-pair
// policy comparison where 76% scored above 0.5.
func (c *Corpus) AllPairs(threshold float64) PairStats {
	var st PairStats
	var sum float64
	for i := 0; i < len(c.vectors); i++ {
		for j := i + 1; j < len(c.vectors); j++ {
			s := c.Similarity(i, j)
			st.Pairs++
			sum += s
			if s > threshold {
				st.AboveThreshold++
			}
			if s > st.Max {
				st.Max = s
			}
		}
	}
	if st.Pairs > 0 {
		st.Mean = sum / float64(st.Pairs)
	}
	return st
}

// Cluster groups documents whose pairwise similarity exceeds threshold,
// using single-linkage via union-find. It returns clusters of size >= 2,
// each a sorted list of document indices, ordered by their smallest index.
// This is the owner-discovery clustering of Section 4.1.
func (c *Corpus) Cluster(threshold float64) [][]int {
	n := len(c.vectors)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if c.Similarity(i, j) > threshold {
				union(i, j)
			}
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var clusters [][]int
	for _, g := range groups {
		if len(g) >= 2 {
			sort.Ints(g)
			clusters = append(clusters, g)
		}
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i][0] < clusters[j][0] })
	return clusters
}
