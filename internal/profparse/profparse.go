// Package profparse reads pprof CPU (and heap) profiles — the gzipped
// profile.proto protobuf emitted by runtime/pprof — with nothing but the
// standard library, and aggregates their samples by the study's pprof
// labels (stage, op, vantage, corpus) into a deterministic hot-path
// attribution. cmd/studyprof drives it to answer "where does a study's
// CPU go, stage by stage, function by function" without importing any
// external pprof tooling.
//
// Only the fields the attribution needs are decoded: sample types,
// samples with their labels and call stacks, locations, functions and
// the string table. Mappings, line numbers and comments are skipped.
// The parser is defensive — it is fuzzed against arbitrary bytes and
// returns errors rather than panicking, and bounds decompressed input.
package profparse

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// maxProfileBytes bounds the decompressed profile size (64 MiB); a
// seeded study's CPU profile is a few hundred KiB, so the cap only
// guards against decompression bombs.
const maxProfileBytes = 64 << 20

// ValueType names one sample dimension, e.g. {Type: "cpu", Unit:
// "nanoseconds"}.
type ValueType struct {
	Type string
	Unit string
}

// Sample is one collected stack with its values and labels.
type Sample struct {
	// LocationIDs is the call stack, leaf first.
	LocationIDs []uint64
	// Value holds one number per Profile.SampleType entry.
	Value []int64
	// Label holds the string-valued pprof labels (stage, op, ...).
	Label map[string]string
}

// Line is one source line of a location (inlining expands to several;
// index 0 is the innermost frame).
type Line struct {
	FunctionID uint64
}

// Location is one resolved program counter.
type Location struct {
	ID   uint64
	Line []Line
}

// Function is one named function.
type Function struct {
	ID       uint64
	Name     string
	Filename string
}

// Profile is the decoded subset of a pprof profile.
type Profile struct {
	SampleType    []ValueType
	Sample        []*Sample
	Location      map[uint64]*Location
	Function      map[uint64]*Function
	DurationNanos int64
	PeriodType    ValueType
	Period        int64
}

// raw holds string-table indexes until the table is fully read; the
// proto permits the table to follow the messages that reference it.
type rawValueType struct{ typ, unit int64 }

type rawLabel struct {
	key, str int64
}

// Parse decodes a pprof profile, transparently gunzipping (runtime/pprof
// always gzips; a raw protobuf is accepted too).
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profparse: gunzip: %w", err)
		}
		defer zr.Close()
		data, err = io.ReadAll(io.LimitReader(zr, maxProfileBytes+1))
		if err != nil {
			return nil, fmt.Errorf("profparse: gunzip: %w", err)
		}
		if len(data) > maxProfileBytes {
			return nil, fmt.Errorf("profparse: decompressed profile exceeds %d bytes", maxProfileBytes)
		}
	}
	d := &decoder{buf: data}
	p := &Profile{Location: map[uint64]*Location{}, Function: map[uint64]*Function{}}
	var strtab []string
	var rawTypes []rawValueType
	var rawPeriod rawValueType
	var rawSampleLabels [][]rawLabel // parallel to p.Sample
	var rawFuncs []struct {
		id             uint64
		name, filename int64
	}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // sample_type
			msg, err := d.lengthDelim(wire)
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(msg)
			if err != nil {
				return nil, err
			}
			rawTypes = append(rawTypes, vt)
		case 2: // sample
			msg, err := d.lengthDelim(wire)
			if err != nil {
				return nil, err
			}
			s, labels, err := parseSample(msg)
			if err != nil {
				return nil, err
			}
			p.Sample = append(p.Sample, s)
			rawSampleLabels = append(rawSampleLabels, labels)
		case 4: // location
			msg, err := d.lengthDelim(wire)
			if err != nil {
				return nil, err
			}
			loc, err := parseLocation(msg)
			if err != nil {
				return nil, err
			}
			p.Location[loc.ID] = loc
		case 5: // function
			msg, err := d.lengthDelim(wire)
			if err != nil {
				return nil, err
			}
			fn, err := parseFunction(msg)
			if err != nil {
				return nil, err
			}
			rawFuncs = append(rawFuncs, fn)
		case 6: // string_table
			msg, err := d.lengthDelim(wire)
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(msg))
		case 10: // duration_nanos
			v, err := d.intField(wire)
			if err != nil {
				return nil, err
			}
			p.DurationNanos = v
		case 11: // period_type
			msg, err := d.lengthDelim(wire)
			if err != nil {
				return nil, err
			}
			rawPeriod, err = parseValueType(msg)
			if err != nil {
				return nil, err
			}
		case 12: // period
			v, err := d.intField(wire)
			if err != nil {
				return nil, err
			}
			p.Period = v
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	// Resolve string-table indexes now the table is complete.
	str := func(i int64) (string, error) {
		if i < 0 || i >= int64(len(strtab)) {
			return "", fmt.Errorf("profparse: string index %d out of range (table has %d)", i, len(strtab))
		}
		return strtab[i], nil
	}
	for _, vt := range rawTypes {
		t, err := str(vt.typ)
		if err != nil {
			return nil, err
		}
		u, err := str(vt.unit)
		if err != nil {
			return nil, err
		}
		p.SampleType = append(p.SampleType, ValueType{Type: t, Unit: u})
	}
	if rawPeriod != (rawValueType{}) {
		t, err := str(rawPeriod.typ)
		if err != nil {
			return nil, err
		}
		u, err := str(rawPeriod.unit)
		if err != nil {
			return nil, err
		}
		p.PeriodType = ValueType{Type: t, Unit: u}
	}
	for i, labels := range rawSampleLabels {
		if len(labels) == 0 {
			continue
		}
		m := make(map[string]string, len(labels))
		for _, l := range labels {
			k, err := str(l.key)
			if err != nil {
				return nil, err
			}
			v, err := str(l.str)
			if err != nil {
				return nil, err
			}
			if v != "" { // numeric-only labels have no str
				m[k] = v
			}
		}
		p.Sample[i].Label = m
	}
	for _, f := range rawFuncs {
		name, err := str(f.name)
		if err != nil {
			return nil, err
		}
		file, err := str(f.filename)
		if err != nil {
			return nil, err
		}
		p.Function[f.id] = &Function{ID: f.id, Name: name, Filename: file}
	}
	return p, nil
}

func parseValueType(msg []byte) (rawValueType, error) {
	d := &decoder{buf: msg}
	var vt rawValueType
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return vt, err
		}
		switch field {
		case 1:
			v, err := d.intField(wire)
			if err != nil {
				return vt, err
			}
			vt.typ = v
		case 2:
			v, err := d.intField(wire)
			if err != nil {
				return vt, err
			}
			vt.unit = v
		default:
			if err := d.skip(wire); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func parseSample(msg []byte) (*Sample, []rawLabel, error) {
	d := &decoder{buf: msg}
	s := &Sample{}
	var labels []rawLabel
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return nil, nil, err
		}
		switch field {
		case 1: // location_id, repeated (possibly packed)
			ids, err := d.packedUints(wire)
			if err != nil {
				return nil, nil, err
			}
			s.LocationIDs = append(s.LocationIDs, ids...)
		case 2: // value, repeated (possibly packed)
			vals, err := d.packedUints(wire)
			if err != nil {
				return nil, nil, err
			}
			for _, v := range vals {
				s.Value = append(s.Value, int64(v))
			}
		case 3: // label
			lmsg, err := d.lengthDelim(wire)
			if err != nil {
				return nil, nil, err
			}
			l, err := parseLabel(lmsg)
			if err != nil {
				return nil, nil, err
			}
			labels = append(labels, l)
		default:
			if err := d.skip(wire); err != nil {
				return nil, nil, err
			}
		}
	}
	return s, labels, nil
}

func parseLabel(msg []byte) (rawLabel, error) {
	d := &decoder{buf: msg}
	var l rawLabel
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return l, err
		}
		switch field {
		case 1:
			v, err := d.intField(wire)
			if err != nil {
				return l, err
			}
			l.key = v
		case 2:
			v, err := d.intField(wire)
			if err != nil {
				return l, err
			}
			l.str = v
		default:
			if err := d.skip(wire); err != nil {
				return l, err
			}
		}
	}
	return l, nil
}

func parseLocation(msg []byte) (*Location, error) {
	d := &decoder{buf: msg}
	loc := &Location{}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1:
			v, err := d.intField(wire)
			if err != nil {
				return nil, err
			}
			loc.ID = uint64(v)
		case 4: // line
			lmsg, err := d.lengthDelim(wire)
			if err != nil {
				return nil, err
			}
			ln, err := parseLine(lmsg)
			if err != nil {
				return nil, err
			}
			loc.Line = append(loc.Line, ln)
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}
	return loc, nil
}

func parseLine(msg []byte) (Line, error) {
	d := &decoder{buf: msg}
	var ln Line
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return ln, err
		}
		if field == 1 {
			v, err := d.intField(wire)
			if err != nil {
				return ln, err
			}
			ln.FunctionID = uint64(v)
			continue
		}
		if err := d.skip(wire); err != nil {
			return ln, err
		}
	}
	return ln, nil
}

func parseFunction(msg []byte) (struct {
	id             uint64
	name, filename int64
}, error) {
	var f struct {
		id             uint64
		name, filename int64
	}
	d := &decoder{buf: msg}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return f, err
		}
		switch field {
		case 1:
			v, err := d.intField(wire)
			if err != nil {
				return f, err
			}
			f.id = uint64(v)
		case 2:
			v, err := d.intField(wire)
			if err != nil {
				return f, err
			}
			f.name = v
		case 4:
			v, err := d.intField(wire)
			if err != nil {
				return f, err
			}
			f.filename = v
		default:
			if err := d.skip(wire); err != nil {
				return f, err
			}
		}
	}
	return f, nil
}

// decoder is a minimal protobuf wire-format reader over one message.
type decoder struct {
	buf []byte
	pos int
}

var errTruncated = errors.New("profparse: truncated protobuf")

func (d *decoder) done() bool { return d.pos >= len(d.buf) }

func (d *decoder) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if d.pos >= len(d.buf) {
			return 0, errTruncated
		}
		b := d.buf[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, errors.New("profparse: varint overflows 64 bits")
}

// tag reads a field tag, returning field number and wire type.
func (d *decoder) tag() (int, int, error) {
	v, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

// lengthDelim reads a length-delimited payload; wire must be 2.
func (d *decoder) lengthDelim(wire int) ([]byte, error) {
	if wire != 2 {
		return nil, fmt.Errorf("profparse: wire type %d where length-delimited expected", wire)
	}
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, errTruncated
	}
	out := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

// intField reads a numeric scalar encoded as a varint; wire must be 0.
func (d *decoder) intField(wire int) (int64, error) {
	if wire != 0 {
		return 0, fmt.Errorf("profparse: wire type %d where varint expected", wire)
	}
	v, err := d.varint()
	return int64(v), err
}

// packedUints reads a repeated integer field: either one varint (wire 0)
// or a packed run of varints (wire 2).
func (d *decoder) packedUints(wire int) ([]uint64, error) {
	switch wire {
	case 0:
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		return []uint64{v}, nil
	case 2:
		payload, err := d.lengthDelim(wire)
		if err != nil {
			return nil, err
		}
		sub := &decoder{buf: payload}
		var out []uint64
		for !sub.done() {
			v, err := sub.varint()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("profparse: wire type %d for repeated int field", wire)
	}
}

// skip discards one field of the given wire type.
func (d *decoder) skip(wire int) error {
	switch wire {
	case 0:
		_, err := d.varint()
		return err
	case 1:
		if len(d.buf)-d.pos < 8 {
			return errTruncated
		}
		d.pos += 8
		return nil
	case 2:
		_, err := d.lengthDelim(wire)
		return err
	case 5:
		if len(d.buf)-d.pos < 4 {
			return errTruncated
		}
		d.pos += 4
		return nil
	default:
		return fmt.Errorf("profparse: unsupported wire type %d", wire)
	}
}
