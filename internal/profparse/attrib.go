package profparse

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// UnlabeledStage is the row collecting samples that carry no stage
// label: runtime housekeeping (GC, scheduler), profile machinery and
// goroutines spawned outside any stage. It sorts last so the named
// stages lead the table.
const UnlabeledStage = "unlabeled"

// RuntimeStage is the named row for the runtime's background
// housekeeping goroutines — dedicated GC mark workers, the sweeper and
// the scavenger. They exist before any stage runs and never inherit
// stage labels, so they are attributed by stack inspection instead: a
// label-less sample whose stack passes through one of the well-known
// runtime entry points lands here rather than in UnlabeledStage.
const RuntimeStage = "runtime/gc"

// runtimeRoots are the entry points of the runtime's permanent
// housekeeping goroutines; one of them on the stack identifies the
// sample as GC/sweep/scavenge work.
var runtimeRoots = map[string]bool{
	"runtime.gcBgMarkWorker": true,
	"runtime.bgsweep":        true,
	"runtime.bgscavenge":     true,
}

// isRuntimeHousekeeping reports whether an unlabeled sample's stack
// runs under one of the runtime's housekeeping roots.
func isRuntimeHousekeeping(p *Profile, s *Sample) bool {
	for _, id := range s.LocationIDs {
		loc := p.Location[id]
		if loc == nil {
			continue
		}
		for _, ln := range loc.Line {
			if fn := p.Function[ln.FunctionID]; fn != nil && runtimeRoots[fn.Name] {
				return true
			}
		}
	}
	return false
}

// FuncRow is one function's share of a stage's CPU.
type FuncRow struct {
	Name  string  `json:"name"`
	Nanos int64   `json:"nanos"`
	Share float64 `json:"share"` // of the stage's nanos
}

// OpRow is one op label's share of a stage's CPU (fetch, tokenize,
// jsvm); samples without an op label fall under "other".
type OpRow struct {
	Op    string  `json:"op"`
	Nanos int64   `json:"nanos"`
	Share float64 `json:"share"` // of the stage's nanos
}

// StageRow aggregates every sample carrying one stage label.
type StageRow struct {
	Stage   string    `json:"stage"`
	Nanos   int64     `json:"nanos"`
	Samples int64     `json:"samples"`
	Share   float64   `json:"share"` // of the profile's total nanos
	Ops     []OpRow   `json:"ops,omitempty"`
	Top     []FuncRow `json:"top"`
}

// Attribution is the per-stage CPU breakdown of one profile.
type Attribution struct {
	// TotalNanos sums the CPU value over every sample.
	TotalNanos int64 `json:"total_nanos"`
	// AttributedNanos is the subset carrying a stage label.
	AttributedNanos int64 `json:"attributed_nanos"`
	// AttributedShare = AttributedNanos / TotalNanos (0 when the profile
	// is empty).
	AttributedShare float64 `json:"attributed_share"`
	// DurationNanos is the profile's wall-clock span.
	DurationNanos int64 `json:"duration_nanos"`
	// Stages is sorted by stage name ascending, UnlabeledStage last —
	// a value-independent order, so two profiles of the same study
	// render identically ordered tables even though sample counts
	// differ run to run.
	Stages []StageRow `json:"stages"`
}

// cpuValueIndex picks which Sample.Value column holds CPU nanoseconds:
// the sample type named "cpu", else the last column (pprof convention —
// the default sample type comes last).
func cpuValueIndex(p *Profile) int {
	for i, st := range p.SampleType {
		if st.Type == "cpu" {
			return i
		}
	}
	return len(p.SampleType) - 1
}

// leafFunction resolves a sample's innermost frame to a function name;
// samples with unresolvable leaves report "unknown".
func leafFunction(p *Profile, s *Sample) string {
	if len(s.LocationIDs) == 0 {
		return "unknown"
	}
	loc := p.Location[s.LocationIDs[0]]
	if loc == nil || len(loc.Line) == 0 {
		return "unknown"
	}
	fn := p.Function[loc.Line[0].FunctionID]
	if fn == nil || fn.Name == "" {
		return "unknown"
	}
	return fn.Name
}

// Attribute aggregates a CPU profile's samples by their stage label,
// with a per-stage op breakdown and the topN hottest leaf functions.
// All orderings are deterministic: stages by name (unlabeled last),
// ops by name, functions by nanos descending then name.
func Attribute(p *Profile, topN int) *Attribution {
	a := &Attribution{DurationNanos: p.DurationNanos}
	vi := cpuValueIndex(p)
	if vi < 0 {
		return a
	}
	type stageAgg struct {
		nanos   int64
		samples int64
		ops     map[string]int64
		funcs   map[string]int64
	}
	stages := map[string]*stageAgg{}
	for _, s := range p.Sample {
		if vi >= len(s.Value) {
			continue
		}
		v := s.Value[vi]
		a.TotalNanos += v
		stage := s.Label["stage"]
		if stage == "" && isRuntimeHousekeeping(p, s) {
			stage = RuntimeStage
		}
		if stage == "" {
			stage = UnlabeledStage
		} else {
			a.AttributedNanos += v
		}
		agg := stages[stage]
		if agg == nil {
			agg = &stageAgg{ops: map[string]int64{}, funcs: map[string]int64{}}
			stages[stage] = agg
		}
		agg.nanos += v
		agg.samples++
		op := s.Label["op"]
		if op == "" {
			op = "other"
		}
		agg.ops[op] += v
		agg.funcs[leafFunction(p, s)] += v
	}
	if a.TotalNanos > 0 {
		a.AttributedShare = float64(a.AttributedNanos) / float64(a.TotalNanos)
	}
	names := make([]string, 0, len(stages))
	for name := range stages {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if (names[i] == UnlabeledStage) != (names[j] == UnlabeledStage) {
			return names[j] == UnlabeledStage
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		agg := stages[name]
		row := StageRow{Stage: name, Nanos: agg.nanos, Samples: agg.samples}
		if a.TotalNanos > 0 {
			row.Share = float64(agg.nanos) / float64(a.TotalNanos)
		}
		ops := make([]string, 0, len(agg.ops))
		for op := range agg.ops {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		for _, op := range ops {
			or := OpRow{Op: op, Nanos: agg.ops[op]}
			if agg.nanos > 0 {
				or.Share = float64(or.Nanos) / float64(agg.nanos)
			}
			row.Ops = append(row.Ops, or)
		}
		funcs := make([]FuncRow, 0, len(agg.funcs))
		for fn, n := range agg.funcs {
			funcs = append(funcs, FuncRow{Name: fn, Nanos: n})
		}
		sort.Slice(funcs, func(i, j int) bool {
			if funcs[i].Nanos != funcs[j].Nanos {
				return funcs[i].Nanos > funcs[j].Nanos
			}
			return funcs[i].Name < funcs[j].Name
		})
		if topN > 0 && len(funcs) > topN {
			funcs = funcs[:topN]
		}
		for i := range funcs {
			if agg.nanos > 0 {
				funcs[i].Share = float64(funcs[i].Nanos) / float64(agg.nanos)
			}
		}
		row.Top = funcs
		a.Stages = append(a.Stages, row)
	}
	return a
}

// TopFunctions aggregates a whole profile by leaf function over the
// value column named typ (falling back to the last column when absent),
// sorted by value descending then name. It serves label-less profiles —
// heap snapshots carry no goroutine labels, so per-stage attribution
// does not apply and a global top-N is the honest summary.
func TopFunctions(p *Profile, typ string, topN int) []FuncRow {
	vi := -1
	for i, st := range p.SampleType {
		if st.Type == typ {
			vi = i
			break
		}
	}
	if vi < 0 {
		vi = len(p.SampleType) - 1
	}
	if vi < 0 {
		return nil
	}
	var total int64
	funcs := map[string]int64{}
	for _, s := range p.Sample {
		if vi >= len(s.Value) {
			continue
		}
		funcs[leafFunction(p, s)] += s.Value[vi]
		total += s.Value[vi]
	}
	rows := make([]FuncRow, 0, len(funcs))
	for fn, n := range funcs {
		rows = append(rows, FuncRow{Name: fn, Nanos: n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Nanos != rows[j].Nanos {
			return rows[i].Nanos > rows[j].Nanos
		}
		return rows[i].Name < rows[j].Name
	})
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	for i := range rows {
		if total > 0 {
			rows[i].Share = float64(rows[i].Nanos) / float64(total)
		}
	}
	return rows
}

// WriteTable renders the attribution as an aligned text table: one
// header line per stage with its CPU time, sample count and share,
// indented op and function lines beneath. The output is a pure function
// of the Attribution, so identical attributions render byte-identically.
func WriteTable(w io.Writer, a *Attribution) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "stage\tcpu\tsamples\tshare\n")
	for _, st := range a.Stages {
		fmt.Fprintf(tw, "%s\t%v\t%d\t%.1f%%\n",
			st.Stage, time.Duration(st.Nanos), st.Samples, 100*st.Share)
		for _, op := range st.Ops {
			fmt.Fprintf(tw, "  op=%s\t%v\t\t%.1f%%\n", op.Op, time.Duration(op.Nanos), 100*op.Share)
		}
		for _, fn := range st.Top {
			fmt.Fprintf(tw, "  %s\t%v\t\t%.1f%%\n", fn.Name, time.Duration(fn.Nanos), 100*fn.Share)
		}
	}
	fmt.Fprintf(tw, "total\t%v\t\t\n", time.Duration(a.TotalNanos))
	fmt.Fprintf(tw, "attributed\t%v\t\t%.1f%%\n", time.Duration(a.AttributedNanos), 100*a.AttributedShare)
	return tw.Flush()
}
