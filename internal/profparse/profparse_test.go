package profparse

import (
	"bytes"
	"context"
	"runtime/pprof"
	"strings"
	"testing"
)

// ---- minimal protobuf writer for golden fixtures ----

type enc struct{ b []byte }

func (e *enc) varint(v uint64) {
	for v >= 0x80 {
		e.b = append(e.b, byte(v)|0x80)
		v >>= 7
	}
	e.b = append(e.b, byte(v))
}

func (e *enc) tag(field, wire int) { e.varint(uint64(field<<3 | wire)) }

func (e *enc) intField(field int, v int64) {
	e.tag(field, 0)
	e.varint(uint64(v))
}

func (e *enc) bytesField(field int, b []byte) {
	e.tag(field, 2)
	e.varint(uint64(len(b)))
	e.b = append(e.b, b...)
}

func (e *enc) msg(field int, build func(*enc)) {
	var sub enc
	build(&sub)
	e.bytesField(field, sub.b)
}

func (e *enc) packed(field int, vals ...uint64) {
	var sub enc
	for _, v := range vals {
		sub.varint(v)
	}
	e.bytesField(field, sub.b)
}

// goldenProfile hand-encodes a two-sample CPU profile:
//
//	strings: 0:"" 1:"samples" 2:"count" 3:"cpu" 4:"nanoseconds"
//	         5:"stage" 6:"crawl/porn-ES" 7:"op" 8:"fetch" 9:"main.work"
//	         10:"main.go" 11:"runtime.gc"
//	sample A: stack [loc1], values [3, 300], stage=crawl/porn-ES op=fetch
//	sample B: stack [loc2], values [1, 100], no labels
func goldenProfile() []byte {
	var e enc
	e.msg(1, func(s *enc) { s.intField(1, 1); s.intField(2, 2) }) // samples/count
	e.msg(1, func(s *enc) { s.intField(1, 3); s.intField(2, 4) }) // cpu/nanoseconds
	e.msg(2, func(s *enc) {                                       // sample A
		s.packed(1, 1)
		s.packed(2, 3, 300)
		s.msg(3, func(l *enc) { l.intField(1, 5); l.intField(2, 6) })
		s.msg(3, func(l *enc) { l.intField(1, 7); l.intField(2, 8) })
	})
	e.msg(2, func(s *enc) { // sample B
		s.packed(1, 2)
		s.packed(2, 1, 100)
	})
	e.msg(4, func(l *enc) { // location 1 -> function 1
		l.intField(1, 1)
		l.msg(4, func(ln *enc) { ln.intField(1, 1) })
	})
	e.msg(4, func(l *enc) { // location 2 -> function 2
		l.intField(1, 2)
		l.msg(4, func(ln *enc) { ln.intField(1, 2) })
	})
	e.msg(5, func(f *enc) { f.intField(1, 1); f.intField(2, 9); f.intField(4, 10) })
	e.msg(5, func(f *enc) { f.intField(1, 2); f.intField(2, 11) })
	for _, s := range []string{"", "samples", "count", "cpu", "nanoseconds",
		"stage", "crawl/porn-ES", "op", "fetch", "main.work", "main.go", "runtime.gc"} {
		e.bytesField(6, []byte(s))
	}
	e.intField(10, 1e9) // duration_nanos
	e.msg(11, func(s *enc) { s.intField(1, 3); s.intField(2, 4) })
	e.intField(12, 250000)
	return e.b
}

func TestParseGolden(t *testing.T) {
	p, err := Parse(goldenProfile())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.SampleType) != 2 || p.SampleType[1].Type != "cpu" || p.SampleType[1].Unit != "nanoseconds" {
		t.Fatalf("sample types = %+v", p.SampleType)
	}
	if p.DurationNanos != 1e9 || p.Period != 250000 || p.PeriodType.Type != "cpu" {
		t.Errorf("duration=%d period=%d periodType=%+v", p.DurationNanos, p.Period, p.PeriodType)
	}
	if len(p.Sample) != 2 {
		t.Fatalf("got %d samples", len(p.Sample))
	}
	a := p.Sample[0]
	if a.Label["stage"] != "crawl/porn-ES" || a.Label["op"] != "fetch" {
		t.Errorf("sample A labels = %v", a.Label)
	}
	if len(a.Value) != 2 || a.Value[1] != 300 {
		t.Errorf("sample A values = %v", a.Value)
	}
	if got := leafFunction(p, a); got != "main.work" {
		t.Errorf("sample A leaf = %q", got)
	}
	if got := leafFunction(p, p.Sample[1]); got != "runtime.gc" {
		t.Errorf("sample B leaf = %q", got)
	}
	if p.Function[1].Filename != "main.go" {
		t.Errorf("function 1 filename = %q", p.Function[1].Filename)
	}
}

func TestAttributeGolden(t *testing.T) {
	p, err := Parse(goldenProfile())
	if err != nil {
		t.Fatal(err)
	}
	a := Attribute(p, 3)
	if a.TotalNanos != 400 || a.AttributedNanos != 300 {
		t.Fatalf("total=%d attributed=%d, want 400/300", a.TotalNanos, a.AttributedNanos)
	}
	if a.AttributedShare != 0.75 {
		t.Errorf("share = %v, want 0.75", a.AttributedShare)
	}
	if len(a.Stages) != 2 {
		t.Fatalf("stages = %+v", a.Stages)
	}
	// Named stage first, unlabeled forced last.
	if a.Stages[0].Stage != "crawl/porn-ES" || a.Stages[1].Stage != UnlabeledStage {
		t.Errorf("stage order = %s, %s", a.Stages[0].Stage, a.Stages[1].Stage)
	}
	st := a.Stages[0]
	if st.Nanos != 300 || st.Samples != 1 {
		t.Errorf("stage row = %+v", st)
	}
	if len(st.Ops) != 1 || st.Ops[0].Op != "fetch" || st.Ops[0].Share != 1 {
		t.Errorf("ops = %+v", st.Ops)
	}
	if len(st.Top) != 1 || st.Top[0].Name != "main.work" {
		t.Errorf("top = %+v", st.Top)
	}
}

// TestAttributeOrderingDeterministic pins the ordering rules against a
// profile with ties: equal-value functions order by name, stages by
// name with unlabeled last, independent of map iteration.
func TestAttributeOrderingDeterministic(t *testing.T) {
	p := &Profile{
		SampleType: []ValueType{{Type: "cpu", Unit: "nanoseconds"}},
		Location:   map[uint64]*Location{},
		Function:   map[uint64]*Function{},
		Sample: []*Sample{
			{Value: []int64{50}, Label: map[string]string{"stage": "b-stage"}},
			{Value: []int64{50}, Label: map[string]string{"stage": "a-stage"}},
			{Value: []int64{50}},
		},
	}
	var first string
	for i := 0; i < 10; i++ {
		a := Attribute(p, 3)
		var buf bytes.Buffer
		if err := WriteTable(&buf, a); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = buf.String()
			if got := []string{a.Stages[0].Stage, a.Stages[1].Stage, a.Stages[2].Stage}; got[0] != "a-stage" || got[1] != "b-stage" || got[2] != UnlabeledStage {
				t.Fatalf("stage order = %v", got)
			}
			continue
		}
		if buf.String() != first {
			t.Fatalf("render %d differs from first:\n%s\n----\n%s", i, buf.String(), first)
		}
	}
}

func TestTopFunctionsGolden(t *testing.T) {
	p, err := Parse(goldenProfile())
	if err != nil {
		t.Fatal(err)
	}
	rows := TopFunctions(p, "cpu", 10)
	if len(rows) != 2 || rows[0].Name != "main.work" || rows[1].Name != "runtime.gc" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Nanos != 300 || rows[0].Share != 0.75 {
		t.Errorf("row 0 = %+v", rows[0])
	}
}

// TestParseLiveProfile round-trips a real runtime/pprof capture: labels
// applied via pprof.Do while burning CPU must come back out of the
// parser. CPU sampling is statistical, so the assertions activate only
// when the profile actually caught labeled samples.
func TestParseLiveProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cannot start CPU profile: %v", err)
	}
	sink := 0
	pprof.Do(context.Background(), pprof.Labels("stage", "test-burn"), func(context.Context) {
		for i := 0; i < 5e7; i++ {
			sink += i % 7
		}
	})
	pprof.StopCPUProfile()
	_ = sink

	p, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// runtime/pprof CPU profiles carry exactly these two sample types.
	want := []ValueType{{"samples", "count"}, {"cpu", "nanoseconds"}}
	if len(p.SampleType) != 2 || p.SampleType[0] != want[0] || p.SampleType[1] != want[1] {
		t.Fatalf("sample types = %+v", p.SampleType)
	}
	if len(p.Sample) == 0 {
		t.Skip("no samples caught (heavily loaded CI); parse path still exercised")
	}
	a := Attribute(p, 5)
	if a.TotalNanos <= 0 {
		t.Fatalf("total nanos = %d", a.TotalNanos)
	}
	var burn *StageRow
	for i := range a.Stages {
		if a.Stages[i].Stage == "test-burn" {
			burn = &a.Stages[i]
		}
	}
	if burn == nil {
		t.Fatalf("stage test-burn missing from %+v", a.Stages)
	}
	if burn.Nanos <= 0 || len(burn.Top) == 0 {
		t.Errorf("burn row = %+v", burn)
	}
	var tbl bytes.Buffer
	if err := WriteTable(&tbl, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "test-burn") {
		t.Errorf("table missing stage row:\n%s", tbl.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty-gzip-header": {0x1f, 0x8b},
		"truncated-tag":     {0x80},
		"truncated-msg":     {0x12, 0x05, 0x01},
		"bad-string-index": func() []byte {
			var e enc
			e.msg(1, func(s *enc) { s.intField(1, 99); s.intField(2, 2) })
			e.bytesField(6, nil)
			return e.b
		}(),
	}
	for name, data := range cases {
		if _, err := Parse(data); err == nil {
			t.Errorf("%s: Parse accepted malformed input", name)
		}
	}
	// Empty input is a valid (empty) profile.
	if _, err := Parse(nil); err != nil {
		t.Errorf("empty input: %v", err)
	}
}

func FuzzParse(f *testing.F) {
	f.Add(goldenProfile())
	f.Add([]byte{})
	f.Add([]byte{0x1f, 0x8b, 0x08, 0x00})
	f.Add([]byte{0x12, 0x03, 0x0a, 0x01, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		// Whatever parsed must attribute and render without panicking.
		a := Attribute(p, 3)
		var buf bytes.Buffer
		if err := WriteTable(&buf, a); err != nil {
			t.Fatal(err)
		}
		TopFunctions(p, "cpu", 3)
	})
}
