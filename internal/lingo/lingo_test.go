package lingo

import (
	"strings"
	"testing"
)

func TestEightLanguages(t *testing.T) {
	if len(Languages) != 8 {
		t.Fatalf("languages = %d, want 8 (the paper's set)", len(Languages))
	}
	want := map[string]bool{"en": true, "es": true, "fr": true, "pt": true, "ru": true, "it": true, "de": true, "ro": true}
	for _, l := range Languages {
		if !want[l] {
			t.Errorf("unexpected language %q", l)
		}
	}
}

func TestPaperKeywordsPresent(t *testing.T) {
	// Section 3.1 names the English button keywords explicitly.
	en := AgeConfirmWords["en"]
	for _, w := range []string{"Yes", "Enter", "Agree", "Continue", "Accept"} {
		found := false
		for _, have := range en {
			if have == w {
				found = true
			}
		}
		if !found {
			t.Errorf("English confirm word %q missing", w)
		}
	}
	// And the privacy-policy link keywords.
	enP := PrivacyLinkWords["en"]
	if enP[0] != "Privacy" || enP[1] != "Policy" {
		t.Errorf("English privacy words = %v", enP)
	}
}

func TestAllTablesCoverAllLanguages(t *testing.T) {
	tables := map[string]map[string][]string{
		"AgeConfirmWords":     AgeConfirmWords,
		"AgeWarningPhrases":   AgeWarningPhrases,
		"PrivacyLinkWords":    PrivacyLinkWords,
		"CookieBannerPhrases": CookieBannerPhrases,
		"BannerRejectWords":   BannerRejectWords,
		"BannerSettingsWords": BannerSettingsWords,
		"SignupWords":         SignupWords,
		"PremiumWords":        PremiumWords,
		"PaywallWords":        PaywallWords,
	}
	for name, table := range tables {
		for _, lang := range Languages {
			if len(table[lang]) == 0 {
				t.Errorf("%s[%s] empty", name, lang)
			}
			for _, w := range table[lang] {
				if strings.TrimSpace(w) == "" {
					t.Errorf("%s[%s] contains blank word", name, lang)
				}
			}
		}
	}
}

func TestAllLanguageWordsDedup(t *testing.T) {
	words := AllLanguageWords(PremiumWords)
	// "Premium" is shared by several languages but must appear once.
	count := 0
	for _, w := range words {
		if w == "premium" {
			count++
		}
		if w != strings.ToLower(w) {
			t.Errorf("word %q not lower-cased", w)
		}
	}
	if count != 1 {
		t.Errorf("premium appears %d times, want 1", count)
	}
}

func TestContainsAny(t *testing.T) {
	words := AllLanguageWords(AgeConfirmWords)
	if w, ok := ContainsAny("Click HERE to ENTER the site", words); !ok || w != "enter" {
		t.Errorf("ContainsAny = %q, %v", w, ok)
	}
	if _, ok := ContainsAny("nothing relevant", []string{"zzz"}); ok {
		t.Error("false positive")
	}
	// Cyrillic matching.
	if _, ok := ContainsAny("нажмите Продолжить чтобы войти", words); !ok {
		t.Error("Russian confirm word not matched")
	}
}

func TestGDPRMarkers(t *testing.T) {
	if len(GDPRMarkers) == 0 {
		t.Fatal("no GDPR markers")
	}
	found := false
	for _, m := range GDPRMarkers {
		if m == "GDPR" {
			found = true
		}
	}
	if !found {
		t.Error("GDPR acronym missing from markers")
	}
}

func TestAdultContentWords(t *testing.T) {
	if len(AdultContentWords) < 5 {
		t.Errorf("adult content markers = %d, want several", len(AdultContentWords))
	}
}
