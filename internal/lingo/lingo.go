// Package lingo holds the multilingual keyword tables shared by the page
// generator and the detection heuristics. The paper's Selenium crawler
// searches for age-verification buttons ("Yes", "Enter", "Agree",
// "Continue", "Accept") and privacy-policy links ("Privacy", "Policy") in
// the eight most common default languages of its corpus: English, Spanish,
// French, Portuguese, Russian, Italian, German and Romanian (Section 3.1).
package lingo

import "strings"

// Languages supported, by ISO 639-1 code.
var Languages = []string{"en", "es", "fr", "pt", "ru", "it", "de", "ro"}

// AgeConfirmWords are the button labels that confirm age / consent to
// enter, per language.
var AgeConfirmWords = map[string][]string{
	"en": {"Yes", "Enter", "Agree", "Continue", "Accept"},
	"es": {"Sí", "Entrar", "Acepto", "Continuar", "Aceptar"},
	"fr": {"Oui", "Entrer", "J'accepte", "Continuer", "Accepter"},
	"pt": {"Sim", "Entrar", "Concordo", "Continuar", "Aceitar"},
	"ru": {"Да", "Войти", "Согласен", "Продолжить", "Принять"},
	"it": {"Sì", "Entra", "Accetto", "Continua", "Accettare"},
	"de": {"Ja", "Eintreten", "Einverstanden", "Weiter", "Akzeptieren"},
	"ro": {"Da", "Intră", "Sunt de acord", "Continuă", "Acceptă"},
}

// AgeWarningPhrases are interstitial texts stating the site is for adults,
// per language. Detection verifies that a confirm button's parent or
// grandparent element carries such a warning.
var AgeWarningPhrases = map[string][]string{
	"en": {"This website contains adult material", "You must be at least 18 years old", "over 18"},
	"es": {"Este sitio contiene material para adultos", "Debes ser mayor de 18 años", "mayor de edad"},
	"fr": {"Ce site contient du contenu pour adultes", "Vous devez avoir au moins 18 ans", "majeur"},
	"pt": {"Este site contém material adulto", "Você deve ter pelo menos 18 anos", "maior de idade"},
	"ru": {"Этот сайт содержит материалы для взрослых", "Вам должно быть не менее 18 лет", "старше 18"},
	"it": {"Questo sito contiene materiale per adulti", "Devi avere almeno 18 anni", "maggiorenne"},
	"de": {"Diese Website enthält Inhalte für Erwachsene", "Sie müssen mindestens 18 Jahre alt sein", "volljährig"},
	"ro": {"Acest site conține material pentru adulți", "Trebuie să aveți cel puțin 18 ani", "major"},
}

// PrivacyLinkWords are the anchor-text keywords identifying privacy-policy
// links, per language (the paper searches for "Privacy" and "Policy").
var PrivacyLinkWords = map[string][]string{
	"en": {"Privacy", "Policy"},
	"es": {"Privacidad", "Política"},
	"fr": {"Confidentialité", "Politique"},
	"pt": {"Privacidade", "Política"},
	"ru": {"Конфиденциальность", "Политика"},
	"it": {"Privacy", "Politica"},
	"de": {"Datenschutz", "Richtlinie"},
	"ro": {"Confidențialitate", "Politica"},
}

// CookieBannerPhrases announce cookie usage, per language. Banner detection
// looks for these in floating elements.
var CookieBannerPhrases = map[string][]string{
	"en": {"This website uses cookies", "We use cookies"},
	"es": {"Este sitio web utiliza cookies", "Usamos cookies"},
	"fr": {"Ce site utilise des cookies", "Nous utilisons des cookies"},
	"pt": {"Este site usa cookies", "Usamos cookies"},
	"ru": {"Этот сайт использует файлы cookie", "Мы используем файлы cookie"},
	"it": {"Questo sito utilizza i cookie", "Usiamo i cookie"},
	"de": {"Diese Website verwendet Cookies", "Wir verwenden Cookies"},
	"ro": {"Acest site folosește cookie-uri", "Folosim cookie-uri"},
}

// BannerRejectWords label the reject button of Binary banners.
var BannerRejectWords = map[string][]string{
	"en": {"Decline", "Reject", "No"},
	"es": {"Rechazar", "No"},
	"fr": {"Refuser", "Non"},
	"pt": {"Recusar", "Não"},
	"ru": {"Отклонить", "Нет"},
	"it": {"Rifiuta", "No"},
	"de": {"Ablehnen", "Nein"},
	"ro": {"Refuză", "Nu"},
}

// BannerSettingsWords label the preferences control of complex (Other)
// banners.
var BannerSettingsWords = map[string][]string{
	"en": {"Cookie settings", "Manage preferences"},
	"es": {"Configuración de cookies"},
	"fr": {"Paramètres des cookies"},
	"pt": {"Configurações de cookies"},
	"ru": {"Настройки файлов cookie"},
	"it": {"Impostazioni dei cookie"},
	"de": {"Cookie-Einstellungen"},
	"ro": {"Setări cookie"},
}

// SignupWords and PremiumWords feed the monetization classifier
// (Section 4.1: "Log In", "Sign Up", "Premium").
var SignupWords = map[string][]string{
	"en": {"Log In", "Sign Up"},
	"es": {"Iniciar sesión", "Regístrate"},
	"fr": {"Connexion", "S'inscrire"},
	"pt": {"Entrar", "Inscrever-se"},
	"ru": {"Вход", "Регистрация"},
	"it": {"Accedi", "Registrati"},
	"de": {"Anmelden", "Registrieren"},
	"ro": {"Autentificare", "Înregistrare"},
}

// PremiumWords mark premium/subscription offers.
var PremiumWords = map[string][]string{
	"en": {"Premium", "Upgrade"},
	"es": {"Premium"},
	"fr": {"Premium"},
	"pt": {"Premium"},
	"ru": {"Премиум"},
	"it": {"Premium"},
	"de": {"Premium"},
	"ro": {"Premium"},
}

// PaywallWords mark content behind a payment wall.
var PaywallWords = map[string][]string{
	"en": {"Subscribe now", "per month", "Billing"},
	"es": {"Suscríbete", "al mes"},
	"fr": {"Abonnez-vous", "par mois"},
	"pt": {"Assine", "por mês"},
	"ru": {"Подписаться", "в месяц"},
	"it": {"Abbonati", "al mese"},
	"de": {"Abonnieren", "pro Monat"},
	"ro": {"Abonează-te", "pe lună"},
}

// AdultContentWords are the content markers the sanitization step uses to
// decide a candidate page actually serves pornographic material (the
// paper's authors inspected DOMs and screenshots manually; the pipeline
// automates that inspection over generated pages).
var AdultContentWords = []string{
	"explicit adult content", "pornographic videos", "adult entertainment",
	"hardcore", "amateur videos", "live cams", "xxx movies",
}

// GDPRMarkers identify explicit GDPR mentions in policy text.
var GDPRMarkers = []string{
	"General Data Protection Regulation", "GDPR", "Regulation (EU) 2016/679",
}

// AllLanguageWords flattens a per-language table into a deduplicated,
// lower-cased word list across all eight languages — the form the
// detectors match against.
func AllLanguageWords(table map[string][]string) []string {
	seen := map[string]bool{}
	var out []string
	for _, lang := range Languages {
		for _, w := range table[lang] {
			lw := strings.ToLower(w)
			if !seen[lw] {
				seen[lw] = true
				out = append(out, lw)
			}
		}
	}
	return out
}

// ContainsAny reports whether lower-cased text contains any of the words
// (which must already be lower-case).
func ContainsAny(text string, words []string) (string, bool) {
	text = strings.ToLower(text)
	for _, w := range words {
		if strings.Contains(text, w) {
			return w, true
		}
	}
	return "", false
}
