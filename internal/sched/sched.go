// Package sched is a small deterministic DAG scheduler for pipeline
// stages. A Graph is built by declaring named stages with their
// dependencies and a closure; Run executes the graph topologically over a
// bounded worker pool, so independent stages (the study's vantage crawls
// and analyses) overlap while every dependency edge is honoured.
//
// The contract mirrors OpenWPM's task manager: work is expressed as an
// explicit dependency graph, parallelism is a tuning knob rather than a
// correctness concern, and a failing stage fails the whole run fast —
// not-yet-started dependents are cancelled while already-running stages
// drain. Cycles and unknown dependencies are rejected before anything
// runs.
//
// Every stage feeds the study's observability: run time lands in the
// study_stage_seconds histogram, time spent queued behind busy workers in
// study_stage_wait_seconds, the number of concurrently running stages in
// the study_stages_inflight gauge, and each stage opens a stage/<name>
// span under the context's tracer.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"pornweb/internal/obs"
)

// stage is one declared node of the graph.
type stage struct {
	name string
	deps []string
	fn   func(context.Context) error
}

// Graph is a mutable set of named stages. Build it with Add/MustAdd, then
// execute with Run. A Graph is not safe for concurrent mutation and a
// single Run at a time.
type Graph struct {
	stages []stage
	index  map[string]int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{index: map[string]int{}}
}

// Add declares a stage. Dependencies may name stages that are added
// later; Run validates the complete graph. Adding a duplicate name, an
// empty name or a nil closure is an error.
func (g *Graph) Add(name string, fn func(context.Context) error, deps ...string) error {
	if name == "" {
		return fmt.Errorf("sched: empty stage name")
	}
	if fn == nil {
		return fmt.Errorf("sched: stage %q has no function", name)
	}
	if _, dup := g.index[name]; dup {
		return fmt.Errorf("sched: duplicate stage %q", name)
	}
	g.index[name] = len(g.stages)
	g.stages = append(g.stages, stage{name: name, deps: deps, fn: fn})
	return nil
}

// MustAdd is Add for statically-known graphs, where a bad declaration is a
// programmer error.
func (g *Graph) MustAdd(name string, fn func(context.Context) error, deps ...string) {
	if err := g.Add(name, fn, deps...); err != nil {
		panic(err)
	}
}

// Len returns the number of declared stages.
func (g *Graph) Len() int { return len(g.stages) }

// Dependencies returns the declared dependency edges: stage name to its
// (copied) dependency list. It exposes the graph's shape so callers can
// assert the wiring matches an expected DAG, or record it as provenance.
func (g *Graph) Dependencies() map[string][]string {
	out := make(map[string][]string, len(g.stages))
	for _, s := range g.stages {
		out[s.name] = append([]string(nil), s.deps...)
	}
	return out
}

// StageError wraps a stage closure's error with the stage that produced
// it; errors.Is/As reach the cause through Unwrap.
type StageError struct {
	Stage string
	Err   error
}

func (e *StageError) Error() string { return fmt.Sprintf("sched: stage %q: %v", e.Stage, e.Err) }

// Unwrap returns the stage's underlying error.
func (e *StageError) Unwrap() error { return e.Err }

// Options tunes one Run.
type Options struct {
	// Workers bounds how many stages run concurrently; <= 0 uses
	// runtime.NumCPU(). 1 degenerates to a strictly sequential (but still
	// dependency-ordered) execution.
	Workers int
	// Metrics, when non-nil, receives per-stage timings: run time in
	// study_stage_seconds, queue wait in study_stage_wait_seconds, and the
	// study_stages_inflight gauge.
	Metrics *obs.Registry
	// Logger, when non-nil, emits a debug event per completed stage.
	Logger *obs.Logger
	// OnStageStart, when non-nil, is called just before a stage's closure
	// runs, on the worker goroutine about to run it. Skipped stages (run
	// already cancelled) do not fire it. Callbacks may run concurrently
	// when Workers > 1 and must be safe for that.
	OnStageStart func(name string)
	// OnStageDone, when non-nil, is called after every executed stage with
	// its name, run time and error (nil on success). Skipped stages (run
	// already cancelled) do not fire it. Callbacks may run concurrently
	// when Workers > 1 and must be safe for that.
	OnStageDone func(name string, took time.Duration, err error)
}

// validate checks every dependency resolves and the graph is acyclic.
func (g *Graph) validate() error {
	for _, s := range g.stages {
		for _, d := range s.deps {
			if _, ok := g.index[d]; !ok {
				return fmt.Errorf("sched: stage %q depends on unknown stage %q", s.name, d)
			}
			if d == s.name {
				return fmt.Errorf("sched: cycle: %s -> %s", s.name, s.name)
			}
		}
	}
	// Kahn's algorithm; whatever cannot be peeled off sits on a cycle.
	indeg := make([]int, len(g.stages))
	dependents := make([][]int, len(g.stages))
	for i, s := range g.stages {
		for _, d := range s.deps {
			j := g.index[d]
			indeg[i]++
			dependents[j] = append(dependents[j], i)
		}
	}
	queue := make([]int, 0, len(g.stages))
	for i := range g.stages {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	processed := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		processed++
		for _, dep := range dependents[i] {
			if indeg[dep]--; indeg[dep] == 0 {
				queue = append(queue, dep)
			}
		}
	}
	if processed < len(g.stages) {
		return fmt.Errorf("sched: cycle: %s", g.findCycle(indeg))
	}
	return nil
}

// findCycle renders one cycle among the stages Kahn's algorithm could not
// peel off (indeg > 0), for the error message.
func (g *Graph) findCycle(indeg []int) string {
	// Walk dependency edges inside the residual subgraph; it is finite and
	// every residual node has a residual dependency, so the walk must
	// revisit a node — that revisit closes the cycle.
	start := -1
	for i := range g.stages {
		if indeg[i] > 0 {
			start = i
			break
		}
	}
	if start < 0 {
		return "unlocatable"
	}
	seenAt := map[int]int{}
	var path []int
	cur := start
	for {
		if at, seen := seenAt[cur]; seen {
			var names []string
			for _, i := range path[at:] {
				names = append(names, g.stages[i].name)
			}
			names = append(names, g.stages[cur].name)
			return strings.Join(names, " -> ")
		}
		seenAt[cur] = len(path)
		path = append(path, cur)
		next := -1
		for _, d := range g.stages[cur].deps {
			if j := g.index[d]; indeg[j] > 0 {
				next = j
				break
			}
		}
		cur = next
	}
}

// Run executes the graph. Stages whose dependencies have all succeeded are
// dispatched, in declaration order, to a pool of Options.Workers
// goroutines. The first stage error cancels the run's context, prevents
// every not-yet-started stage from running, waits for in-flight stages to
// drain, and is returned wrapped in a *StageError. When the parent context
// is cancelled without any stage failing, Run drains and returns the
// context's error.
func (g *Graph) Run(parent context.Context, opts Options) error {
	if err := g.validate(); err != nil {
		return err
	}
	n := len(g.stages)
	if n == 0 {
		return parent.Err()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}

	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, s := range g.stages {
		for _, d := range s.deps {
			j := g.index[d]
			indeg[i]++
			dependents[j] = append(dependents[j], i)
		}
	}

	opts.Metrics.Describe("study_stage_seconds", "Pipeline stage run time in seconds.")
	opts.Metrics.Describe("study_stage_wait_seconds", "Time a runnable stage queued for a scheduler worker.")
	opts.Metrics.Describe("study_stages_inflight", "Pipeline stages currently executing.")
	inflight := opts.Metrics.Gauge("study_stages_inflight")

	type readyItem struct {
		idx int
		at  time.Time // when the stage became runnable
	}
	type doneItem struct {
		idx     int
		err     error
		skipped bool
	}
	// Buffered to n so the coordinator below can enqueue without blocking
	// and workers never block reporting completion.
	ready := make(chan readyItem, n)
	done := make(chan doneItem, n)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range ready {
				s := g.stages[r.idx]
				// Fail-fast: once the run is cancelled, queued stages are
				// skipped rather than started.
				if ctx.Err() != nil {
					done <- doneItem{idx: r.idx, skipped: true}
					continue
				}
				opts.Metrics.Histogram("study_stage_wait_seconds", obs.WaitBuckets,
					"stage", s.name).Observe(time.Since(r.at).Seconds())
				inflight.Add(1)
				if opts.OnStageStart != nil {
					opts.OnStageStart(s.name)
				}
				startRes := obs.TakeResourceSnapshot()
				var err error
				var d time.Duration
				// The pprof label makes every CPU sample taken while this
				// stage (and any goroutine it spawns — crawl workers,
				// transport connections) runs attributable to it by name;
				// cmd/studyprof aggregates the profile on exactly this key.
				// (internal/sched is the one PprofStageForwarders package:
				// the stage names here were declared statically by callers.)
				pprof.Do(ctx, pprof.Labels("stage", s.name), func(lctx context.Context) {
					sctx, span := obs.StartSpan(lctx, "stage/"+s.name)
					start := time.Now()
					err = s.fn(sctx)
					d = time.Since(start)
					span.End()
				})
				inflight.Add(-1)
				opts.Metrics.RecordStageResources(s.name, startRes, obs.TakeResourceSnapshot())
				opts.Metrics.Histogram("study_stage_seconds", obs.StageBuckets,
					"stage", s.name).Observe(d.Seconds())
				if opts.Logger != nil {
					opts.Logger.Event(obs.LevelDebug, "stage done",
						"stage", s.name, "took", d.Round(time.Millisecond), "err", err != nil)
				}
				if opts.OnStageDone != nil {
					opts.OnStageDone(s.name, d, err)
				}
				done <- doneItem{idx: r.idx, err: err}
			}
		}()
	}

	enqueued := 0
	enqueue := func(i int) {
		enqueued++
		ready <- readyItem{idx: i, at: time.Now()}
	}
	for i := range g.stages {
		if indeg[i] == 0 {
			enqueue(i)
		}
	}

	var firstErr error
	for finished := 0; finished < enqueued; finished++ {
		r := <-done
		if r.err != nil && firstErr == nil {
			firstErr = &StageError{Stage: g.stages[r.idx].name, Err: r.err}
			cancel()
		}
		if firstErr == nil && !r.skipped && r.err == nil {
			for _, dep := range dependents[r.idx] {
				if indeg[dep]--; indeg[dep] == 0 {
					enqueue(dep)
				}
			}
		}
	}
	close(ready)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// No stage failed; if stages went unscheduled the parent context must
	// have been cancelled mid-run.
	return parent.Err()
}
