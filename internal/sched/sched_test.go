package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pornweb/internal/obs"
)

func noop(context.Context) error { return nil }

func TestTopologicalOrder(t *testing.T) {
	g := New()
	var mu sync.Mutex
	var order []string
	rec := func(name string) func(context.Context) error {
		return func(context.Context) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}
	}
	g.MustAdd("a", rec("a"))
	g.MustAdd("b", rec("b"), "a")
	g.MustAdd("c", rec("c"), "a")
	g.MustAdd("d", rec("d"), "b", "c")
	if err := g.Run(context.Background(), Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if len(order) != 4 {
		t.Fatalf("ran %d stages, want 4: %v", len(order), order)
	}
	for _, edge := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		if pos[edge[0]] > pos[edge[1]] {
			t.Errorf("%s ran after its dependent %s: %v", edge[0], edge[1], order)
		}
	}
}

func TestAddErrors(t *testing.T) {
	g := New()
	if err := g.Add("", noop); err == nil {
		t.Error("empty name accepted")
	}
	if err := g.Add("a", nil); err == nil {
		t.Error("nil fn accepted")
	}
	if err := g.Add("a", noop); err != nil {
		t.Fatal(err)
	}
	if err := g.Add("a", noop); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestUnknownDependency(t *testing.T) {
	g := New()
	g.MustAdd("a", noop, "ghost")
	err := g.Run(context.Background(), Options{})
	if err == nil || !strings.Contains(err.Error(), "unknown stage") {
		t.Fatalf("err = %v, want unknown-dependency error", err)
	}
}

func TestCycleDetection(t *testing.T) {
	g := New()
	ran := atomic.Bool{}
	mark := func(context.Context) error { ran.Store(true); return nil }
	g.MustAdd("root", mark)
	g.MustAdd("a", mark, "c")
	g.MustAdd("b", mark, "a")
	g.MustAdd("c", mark, "b")
	err := g.Run(context.Background(), Options{Workers: 4})
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want cycle error", err)
	}
	// The error names the offending stages, and nothing ran.
	for _, name := range []string{"a", "b", "c"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("cycle error %q does not name stage %q", err, name)
		}
	}
	if ran.Load() {
		t.Error("stages ran despite cycle rejection")
	}
}

func TestSelfCycle(t *testing.T) {
	g := New()
	g.MustAdd("a", noop, "a")
	if err := g.Run(context.Background(), Options{}); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want self-cycle error", err)
	}
}

// TestBoundedConcurrency proves no more than Workers stages are ever in
// flight at once.
func TestBoundedConcurrency(t *testing.T) {
	const workers = 3
	const stages = 40
	var cur, peak atomic.Int64
	g := New()
	for i := 0; i < stages; i++ {
		g.MustAdd(fmt.Sprintf("s%d", i), func(context.Context) error {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Run(context.Background(), Options{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
	// With plenty of independent stages the pool should actually fill up.
	if p := peak.Load(); p < workers {
		t.Logf("note: peak concurrency %d never reached the %d-worker bound", p, workers)
	}
}

// TestFailFast proves a failing stage prevents not-yet-started dependents
// from running while already-running stages drain to completion.
func TestFailFast(t *testing.T) {
	boom := errors.New("boom")
	slowStarted := make(chan struct{})
	failGate := make(chan struct{})
	var slowFinished, depRan, unrelatedRan atomic.Bool

	g := New()
	g.MustAdd("slow", func(ctx context.Context) error {
		close(slowStarted)
		<-failGate // hold until the failure has happened
		<-ctx.Done()
		slowFinished.Store(true)
		return nil
	})
	g.MustAdd("failing", func(context.Context) error {
		<-slowStarted // both are genuinely in flight
		defer close(failGate)
		return boom
	})
	g.MustAdd("dependent", func(context.Context) error {
		depRan.Store(true)
		return nil
	}, "failing")
	g.MustAdd("unrelated-late", func(context.Context) error {
		unrelatedRan.Store(true)
		return nil
	}, "slow")

	err := g.Run(context.Background(), Options{Workers: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "failing" {
		t.Fatalf("err = %#v, want StageError for stage failing", err)
	}
	if depRan.Load() {
		t.Error("dependent of the failing stage ran")
	}
	if unrelatedRan.Load() {
		t.Error("stage unlocked after the failure ran")
	}
	if !slowFinished.Load() {
		t.Error("in-flight stage was not drained before Run returned")
	}
}

// TestParentCancellation: cancelling the caller's context mid-run stops
// scheduling and surfaces the context error.
func TestParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	g := New()
	g.MustAdd("first", func(context.Context) error {
		cancel()
		return nil
	})
	g.MustAdd("second", func(context.Context) error {
		ran.Store(true)
		return nil
	}, "first")
	err := g.Run(ctx, Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Error("stage ran after parent cancellation")
	}
}

func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Bool
	g := New()
	g.MustAdd("a", func(context.Context) error { ran.Store(true); return nil })
	if err := g.Run(ctx, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Error("stage ran under a dead context")
	}
}

func TestEmptyGraph(t *testing.T) {
	if err := New().Run(context.Background(), Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestMetrics: run/wait histograms and the inflight gauge are fed.
func TestMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	g := New()
	g.MustAdd("a", noop)
	g.MustAdd("b", noop, "a")
	if err := g.Run(context.Background(), Options{Workers: 2, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		if n := reg.Histogram("study_stage_seconds", obs.StageBuckets, "stage", name).Count(); n != 1 {
			t.Errorf("study_stage_seconds{stage=%q} count = %d, want 1", name, n)
		}
		if n := reg.Histogram("study_stage_wait_seconds", obs.WaitBuckets, "stage", name).Count(); n != 1 {
			t.Errorf("study_stage_wait_seconds{stage=%q} count = %d, want 1", name, n)
		}
	}
	if v := reg.Gauge("study_stages_inflight").Value(); v != 0 {
		t.Errorf("study_stages_inflight = %v after run, want 0", v)
	}
}

// TestRandomizedGraphStress builds a 200-stage random DAG and checks, for
// several worker counts under -race, that every stage runs exactly once
// and strictly after all of its dependencies.
func TestRandomizedGraphStress(t *testing.T) {
	const stages = 200
	rng := rand.New(rand.NewSource(2019))

	type depset [][]int
	deps := make(depset, stages)
	for i := 1; i < stages; i++ {
		// Up to 4 dependencies, always on earlier stages (guarantees a DAG).
		k := rng.Intn(5)
		for j := 0; j < k; j++ {
			deps[i] = append(deps[i], rng.Intn(i))
		}
	}

	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			g := New()
			var mu sync.Mutex
			started := make([]time.Time, stages)
			finished := make([]time.Time, stages)
			runs := make([]int, stages)
			for i := 0; i < stages; i++ {
				i := i
				var names []string
				for _, d := range deps[i] {
					names = append(names, fmt.Sprintf("s%d", d))
				}
				g.MustAdd(fmt.Sprintf("s%d", i), func(context.Context) error {
					now := time.Now()
					mu.Lock()
					started[i] = now
					runs[i]++
					mu.Unlock()
					mu.Lock()
					finished[i] = time.Now()
					mu.Unlock()
					return nil
				}, names...)
			}
			if err := g.Run(context.Background(), Options{Workers: workers}); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < stages; i++ {
				if runs[i] != 1 {
					t.Fatalf("stage %d ran %d times", i, runs[i])
				}
				for _, d := range deps[i] {
					if started[i].Before(finished[d]) {
						t.Errorf("stage %d started before dependency %d finished", i, d)
					}
				}
			}
		})
	}
}

// TestOnStageDone pins the completion hook: every executed stage fires it
// exactly once with a non-negative duration and its error, and stages
// skipped by fail-fast do not fire it at all.
func TestOnStageDone(t *testing.T) {
	g := New()
	boom := errors.New("boom")
	g.MustAdd("a", noop)
	g.MustAdd("b", func(context.Context) error { return boom }, "a")
	g.MustAdd("c", noop, "b") // never runs: b fails first

	var mu sync.Mutex
	got := map[string]error{}
	err := g.Run(context.Background(), Options{
		Workers: 1,
		OnStageDone: func(name string, took time.Duration, err error) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := got[name]; dup {
				t.Errorf("stage %s fired OnStageDone twice", name)
			}
			if took < 0 {
				t.Errorf("stage %s reported negative duration %v", name, took)
			}
			got[name] = err
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	if len(got) != 2 {
		t.Fatalf("OnStageDone fired for %v, want exactly a and b", got)
	}
	if got["a"] != nil {
		t.Errorf("stage a reported error %v, want nil", got["a"])
	}
	if !errors.Is(got["b"], boom) {
		t.Errorf("stage b reported error %v, want %v", got["b"], boom)
	}
	if _, ok := got["c"]; ok {
		t.Error("skipped stage c fired OnStageDone")
	}
}

// TestDependencies pins the graph introspection the provenance layer
// publishes: every stage with a defensive copy of its declared deps.
func TestDependencies(t *testing.T) {
	g := New()
	g.MustAdd("a", noop)
	g.MustAdd("b", noop, "a")
	g.MustAdd("c", noop, "a", "b")

	deps := g.Dependencies()
	if len(deps) != 3 {
		t.Fatalf("Dependencies has %d entries, want 3", len(deps))
	}
	if len(deps["a"]) != 0 {
		t.Errorf("a deps = %v, want none", deps["a"])
	}
	if len(deps["b"]) != 1 || deps["b"][0] != "a" {
		t.Errorf("b deps = %v, want [a]", deps["b"])
	}
	if len(deps["c"]) != 2 {
		t.Errorf("c deps = %v, want [a b]", deps["c"])
	}

	// Mutating the returned slices must not corrupt the graph.
	deps["c"][0] = "mutated"
	if again := g.Dependencies(); again["c"][0] != "a" {
		t.Error("Dependencies returned a live reference to internal state")
	}
}

// TestStageLabels pins the resource-attribution contract: every stage
// closure runs under a pprof label stage=<name> — on its context and,
// because Run uses pprof.Do, on the worker goroutine itself, so CPU
// samples taken during the stage (and in any goroutine it spawns,
// which inherits the label set) are attributable by cmd/studyprof.
// Goroutine-label inheritance itself is runtime behaviour only
// observable in a profile; the studyprof integration test covers it.
func TestStageLabels(t *testing.T) {
	g := New()
	var mu sync.Mutex
	seen := map[string]string{}
	record := func(name string) func(context.Context) error {
		return func(ctx context.Context) error {
			v, _ := pprof.Label(ctx, "stage")
			mu.Lock()
			seen[name] = v
			mu.Unlock()
			return nil
		}
	}
	g.MustAdd("corpus", record("corpus"))
	g.MustAdd("crawl/porn-ES", record("crawl/porn-ES"), "corpus")
	if err := g.Run(context.Background(), Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"corpus", "crawl/porn-ES"} {
		if seen[name] != name {
			t.Errorf("stage %q ran with ctx label %q, want its own name", name, seen[name])
		}
	}
}

// TestOnStageStart mirrors TestOnStageDone for the start hook: it fires
// once per executed stage and never for skipped ones.
func TestOnStageStart(t *testing.T) {
	g := New()
	boom := errors.New("boom")
	g.MustAdd("a", noop)
	g.MustAdd("b", func(context.Context) error { return boom }, "a")
	g.MustAdd("c", noop, "b") // skipped: b fails first

	var mu sync.Mutex
	var started []string
	err := g.Run(context.Background(), Options{
		Workers: 1,
		OnStageStart: func(name string) {
			mu.Lock()
			started = append(started, name)
			mu.Unlock()
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	sort.Strings(started)
	if strings.Join(started, ",") != "a,b" {
		t.Errorf("OnStageStart fired for %v, want exactly [a b]", started)
	}
}

// TestStageResourceMetrics checks the scheduler brackets every stage
// with resource snapshots feeding the study_stage_* metrics.
func TestStageResourceMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	g := New()
	g.MustAdd("a", func(context.Context) error {
		sink := make([][]byte, 0, 256)
		for i := 0; i < 256; i++ {
			sink = append(sink, make([]byte, 4096))
		}
		_ = sink
		return nil
	})
	if err := g.Run(context.Background(), Options{Workers: 1, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := reg.WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	exp := buf.String()
	for _, name := range []string{
		`study_stage_cpu_seconds{stage="a"}`,
		`study_stage_alloc_bytes_total{stage="a"}`,
		`study_stage_goroutines_peak{stage="a"}`,
	} {
		if !strings.Contains(exp, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	if v := reg.Counter("study_stage_alloc_bytes_total", "stage", "a").Value(); v == 0 {
		t.Error("stage allocated ~1MiB but study_stage_alloc_bytes_total is zero")
	}
}
