package provenance

import (
	"fmt"
	"io"
	"sort"
)

// FigureDelta describes one figure or table that differs between runs.
type FigureDelta struct {
	Name string `json:"name"`
	// Reason is a short human-readable cause ("digest changed",
	// "rows 120 -> 118", "only in run B").
	Reason string `json:"reason"`
	// EarliestStages names the root-cause stages: diverging stages
	// reachable from the figure's inputs whose own (transitive) inputs all
	// match. Empty when the figure changed without any stage diverging.
	EarliestStages []string `json:"earliest_stages,omitempty"`
}

// DiffResult is the outcome of comparing two manifests.
type DiffResult struct {
	Identical     bool          `json:"identical"`
	VersionSkew   bool          `json:"version_skew,omitempty"`
	ConfigChanged bool          `json:"config_changed,omitempty"`
	SeedChanged   bool          `json:"seed_changed,omitempty"`
	CorporaDiffer []string      `json:"corpora_differ,omitempty"`
	Figures       []FigureDelta `json:"figures,omitempty"`
	// StagesDiffer lists every diverging stage; RootStages the subset with
	// no diverging transitive input — the earliest points of divergence.
	StagesDiffer []string `json:"stages_differ,omitempty"`
	RootStages   []string `json:"root_stages,omitempty"`
	// StoreDiffers is set when both runs were store-backed and their
	// durable visit logs disagree (entry count or content digest). A run
	// without store info is not compared — resuming proves equality only
	// against another store-backed run.
	StoreDiffers bool `json:"store_differs,omitempty"`
}

// Diff compares two manifests and, for every changed figure, walks the
// stage DAG (StageInfo.Inputs edges) upstream to the earliest diverging
// stages. A stage diverges when its digest or record count differs or it
// exists in only one run; it is a root divergence when none of its
// transitive inputs diverge.
func Diff(a, b *Manifest) *DiffResult {
	d := &DiffResult{}
	if a.Version != b.Version {
		d.VersionSkew = true
	}
	d.ConfigChanged = a.ConfigFingerprint != b.ConfigFingerprint
	d.SeedChanged = a.Seed != b.Seed || a.Scale != b.Scale
	if a.Store != nil && b.Store != nil && *a.Store != *b.Store {
		d.StoreDiffers = true
	}

	for _, name := range unionKeys(a.Corpora, b.Corpora) {
		ca, okA := a.Corpora[name]
		cb, okB := b.Corpora[name]
		if !okA || !okB || ca != cb {
			d.CorporaDiffer = append(d.CorporaDiffer, name)
		}
	}

	diverged := map[string]bool{}
	for _, name := range unionKeys(a.Stages, b.Stages) {
		sa, okA := a.Stages[name]
		sb, okB := b.Stages[name]
		if !okA || !okB || sa.Digest != sb.Digest || sa.Records != sb.Records {
			diverged[name] = true
			d.StagesDiffer = append(d.StagesDiffer, name)
		}
	}

	// inputsOf prefers run A's view of the DAG and falls back to B's, so
	// stages present in only one run still have edges to walk.
	inputsOf := func(name string) []string {
		if s, ok := a.Stages[name]; ok && len(s.Inputs) > 0 {
			return s.Inputs
		}
		if s, ok := b.Stages[name]; ok {
			return s.Inputs
		}
		return nil
	}

	// tainted reports whether any transitive input of name diverged.
	taintedMemo := map[string]int{} // 0 unvisited, 1 in progress, 2 clean, 3 tainted
	var tainted func(name string) bool
	tainted = func(name string) bool {
		switch taintedMemo[name] {
		case 1: // cycle guard; manifest DAGs are acyclic by construction
			return false
		case 2:
			return false
		case 3:
			return true
		}
		taintedMemo[name] = 1
		result := false
		for _, in := range inputsOf(name) {
			if diverged[in] || tainted(in) {
				result = true
				break
			}
		}
		if result {
			taintedMemo[name] = 3
		} else {
			taintedMemo[name] = 2
		}
		return result
	}

	rootSet := map[string]bool{}
	for name := range diverged {
		if !tainted(name) {
			rootSet[name] = true
			d.RootStages = append(d.RootStages, name)
		}
	}

	// ancestors of a figure: its stages plus everything reachable upstream.
	ancestorsOf := func(stages []string) map[string]bool {
		seen := map[string]bool{}
		var visit func(n string)
		visit = func(n string) {
			if seen[n] {
				return
			}
			seen[n] = true
			for _, in := range inputsOf(n) {
				visit(in)
			}
		}
		for _, s := range stages {
			visit(s)
		}
		return seen
	}

	for _, name := range unionKeys(a.Figures, b.Figures) {
		fa, okA := a.Figures[name]
		fb, okB := b.Figures[name]
		var reason string
		switch {
		case !okA:
			reason = "only in run B"
		case !okB:
			reason = "only in run A"
		case fa.Digest != fb.Digest && fa.Rows != fb.Rows:
			reason = fmt.Sprintf("digest changed, rows %d -> %d", fa.Rows, fb.Rows)
		case fa.Digest != fb.Digest:
			reason = "digest changed"
		case fa.Rows != fb.Rows:
			reason = fmt.Sprintf("rows %d -> %d", fa.Rows, fb.Rows)
		default:
			continue
		}
		fd := FigureDelta{Name: name, Reason: reason}
		var stages []string
		if okA {
			stages = fa.Stages
		} else {
			stages = fb.Stages
		}
		anc := ancestorsOf(stages)
		for root := range rootSet {
			if anc[root] {
				fd.EarliestStages = append(fd.EarliestStages, root)
			}
		}
		sort.Strings(fd.EarliestStages)
		d.Figures = append(d.Figures, fd)
	}

	sort.Strings(d.CorporaDiffer)
	sort.Strings(d.StagesDiffer)
	sort.Strings(d.RootStages)
	sort.Slice(d.Figures, func(i, j int) bool { return d.Figures[i].Name < d.Figures[j].Name })

	d.Identical = !d.VersionSkew && !d.ConfigChanged && !d.SeedChanged && !d.StoreDiffers &&
		len(d.CorporaDiffer) == 0 && len(d.StagesDiffer) == 0 && len(d.Figures) == 0
	return d
}

// Format writes a human-readable diff report.
func (d *DiffResult) Format(w io.Writer) {
	if d.Identical {
		fmt.Fprintln(w, "manifests identical")
		return
	}
	if d.VersionSkew {
		fmt.Fprintln(w, "manifest schema versions differ")
	}
	if d.ConfigChanged {
		fmt.Fprintln(w, "config fingerprint differs")
	}
	if d.SeedChanged {
		fmt.Fprintln(w, "seed or scale differs")
	}
	if d.StoreDiffers {
		fmt.Fprintln(w, "durable visit stores differ (entry count or digest)")
	}
	for _, c := range d.CorporaDiffer {
		fmt.Fprintf(w, "corpus %s differs\n", c)
	}
	if len(d.RootStages) > 0 {
		fmt.Fprintf(w, "earliest diverging stages: %v\n", d.RootStages)
	}
	for _, fd := range d.Figures {
		fmt.Fprintf(w, "figure %s: %s", fd.Name, fd.Reason)
		if len(fd.EarliestStages) > 0 {
			fmt.Fprintf(w, " (diverges from %v)", fd.EarliestStages)
		}
		fmt.Fprintln(w)
	}
	if n := len(d.StagesDiffer); n > 0 {
		fmt.Fprintf(w, "%d stage(s) differ in total: %v\n", n, d.StagesDiffer)
	}
}

func unionKeys[V any](a, b map[string]V) []string {
	seen := map[string]bool{}
	var out []string
	for k := range a {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for k := range b {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
