package provenance

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestHashJSONStable(t *testing.T) {
	type cfg struct {
		B int `json:"b"`
		A int `json:"a"`
	}
	h1, err := HashJSON(cfg{A: 1, B: 2})
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := HashJSON(cfg{A: 1, B: 2})
	h3, _ := HashJSON(cfg{A: 1, B: 3})
	if h1 != h2 {
		t.Fatalf("same value hashed differently: %s vs %s", h1, h2)
	}
	if h1 == h3 {
		t.Fatal("different values collided")
	}
	if len(h1) != 16 {
		t.Fatalf("digest %q not 16 hex digits", h1)
	}
	// Map key order must not matter.
	m1, _ := HashJSON(map[string]int{"x": 1, "y": 2})
	m2, _ := HashJSON(map[string]int{"y": 2, "x": 1})
	if m1 != m2 {
		t.Fatal("map key order leaked into digest")
	}
}

func TestMultisetHashOrderIndependent(t *testing.T) {
	var a, b, c MultisetHash
	for _, r := range []string{"GET a.com", "GET b.com", "GET b.com", "GET c.com"} {
		a.Add(r)
	}
	for _, r := range []string{"GET c.com", "GET b.com", "GET a.com", "GET b.com"} {
		b.Add(r)
	}
	for _, r := range []string{"GET a.com", "GET b.com", "GET c.com"} { // one fewer b.com
		c.Add(r)
	}
	if a.Sum() != b.Sum() {
		t.Fatalf("order changed digest: %s vs %s", a.Sum(), b.Sum())
	}
	if a.Count() != 4 || b.Count() != 4 {
		t.Fatalf("counts %d/%d, want 4/4", a.Count(), b.Count())
	}
	if a.Sum() == c.Sum() {
		t.Fatal("multiplicity lost: removing a duplicate kept the digest")
	}
	var empty MultisetHash
	if empty.Sum() == a.Sum() || empty.Count() != 0 {
		t.Fatal("empty multiset not distinct")
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.RecordStage("crawl/porn-ES", 120, "aaaa")
	r.SetInputs("crawl/porn-ES", []string{"corpus"})
	r.RecordStage("corpus", 50, "bbbb")
	r.RecordTiming("corpus", 30*time.Millisecond)

	stages := r.Stages()
	if got := stages["crawl/porn-ES"]; got.Records != 120 || got.Digest != "aaaa" || len(got.Inputs) != 1 || got.Inputs[0] != "corpus" {
		t.Fatalf("stage record wrong: %+v", got)
	}
	if d := r.Timings()["corpus"]; d != 30*time.Millisecond {
		t.Fatalf("timing %v", d)
	}

	// Mutating the returned copy must not touch the recorder.
	stages["corpus"] = StageInfo{Records: 999}
	if r.Stages()["corpus"].Records != 50 {
		t.Fatal("Stages() returned the live map")
	}

	r.Reset()
	if len(r.Stages()) != 0 || len(r.Timings()) != 0 {
		t.Fatal("Reset left data behind")
	}

	var nilR *Recorder
	nilR.RecordStage("x", 1, "d")
	nilR.SetInputs("x", nil)
	nilR.RecordTiming("x", time.Second)
	nilR.Reset()
	if nilR.Stages() != nil || nilR.Timings() != nil {
		t.Fatal("nil recorder must be inert")
	}
}

func TestManifestWriteDeterministicBytes(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{
		Version:           ManifestVersion,
		ConfigFingerprint: "cafe",
		Seed:              42,
		Scale:             0.01,
		Corpora:           map[string]CorpusInfo{"porn": {Count: 10, Digest: "aa"}, "reference": {Count: 10, Digest: "bb"}},
		Stages: map[string]StageInfo{
			"corpus":        {Records: 20, Digest: "cc"},
			"crawl/porn-ES": {Records: 400, Digest: "dd", Inputs: []string{"corpus"}},
		},
		Figures:  map[string]FigureInfo{"table3_trackers": {Stages: []string{"crawl/porn-ES"}, Rows: 10, Digest: "ee"}},
		Failures: map[string]int{"timeout": 3},
	}
	p1 := filepath.Join(dir, "a", "manifest.json")
	p2 := filepath.Join(dir, "b", "manifest.json")
	if err := m.Write(p1); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(p2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("same manifest wrote different bytes")
	}
	if b1[len(b1)-1] != '\n' {
		t.Fatal("manifest missing trailing newline")
	}

	got, err := LoadManifest(p1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != 42 || got.Stages["crawl/porn-ES"].Records != 400 || got.Figures["table3_trackers"].Digest != "ee" {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func TestRunInfoWrite(t *testing.T) {
	dir := t.TempDir()
	ri := &RunInfo{
		StartedAt:   time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC),
		WallMS:      1234.5,
		StageWallMS: map[string]float64{"corpus": 30},
		Serial:      true,
	}
	path := filepath.Join(dir, "runinfo.json")
	if err := ri.Write(path); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	if !bytes.Contains(raw, []byte(`"stage_wall_ms"`)) {
		t.Fatalf("runinfo content: %s", raw)
	}
}
