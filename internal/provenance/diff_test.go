package provenance

import (
	"bytes"
	"strings"
	"testing"
)

// testManifest builds a small but realistic pipeline:
//
//	corpus -> crawl/porn-ES -> analysis/parties -> fig:parties
//	corpus -> crawl/reference-ES ^                -> fig:cookies (also from analysis/cookies)
//	crawl/porn-ES -> analysis/cookies
func testManifest() *Manifest {
	return &Manifest{
		Version:           ManifestVersion,
		ConfigFingerprint: "cafe",
		Seed:              42,
		Scale:             0.01,
		Corpora: map[string]CorpusInfo{
			"porn": {Count: 100, Digest: "p1"}, "reference": {Count: 100, Digest: "r1"},
		},
		Stages: map[string]StageInfo{
			"corpus":             {Records: 200, Digest: "c1"},
			"crawl/porn-ES":      {Records: 4000, Digest: "cp1", Inputs: []string{"corpus"}},
			"crawl/reference-ES": {Records: 3000, Digest: "cr1", Inputs: []string{"corpus"}},
			"analysis/parties":   {Records: 40, Digest: "ap1", Inputs: []string{"crawl/porn-ES", "crawl/reference-ES"}},
			"analysis/cookies":   {Records: 30, Digest: "ac1", Inputs: []string{"crawl/porn-ES"}},
		},
		Figures: map[string]FigureInfo{
			"fig:parties": {Stages: []string{"analysis/parties"}, Rows: 40, Digest: "fp1"},
			"fig:cookies": {Stages: []string{"analysis/cookies"}, Rows: 30, Digest: "fc1"},
		},
	}
}

func TestDiffIdentical(t *testing.T) {
	d := Diff(testManifest(), testManifest())
	if !d.Identical {
		t.Fatalf("identical manifests diffed: %+v", d)
	}
	var buf bytes.Buffer
	d.Format(&buf)
	if !strings.Contains(buf.String(), "identical") {
		t.Fatalf("format: %s", buf.String())
	}
}

func TestDiffWalksToEarliestStage(t *testing.T) {
	a, b := testManifest(), testManifest()
	// Perturb the porn crawl; everything downstream shifts too, as it
	// would in a real seed change.
	b.Stages["crawl/porn-ES"] = StageInfo{Records: 4001, Digest: "cp2", Inputs: []string{"corpus"}}
	b.Stages["analysis/parties"] = StageInfo{Records: 41, Digest: "ap2", Inputs: []string{"crawl/porn-ES", "crawl/reference-ES"}}
	b.Stages["analysis/cookies"] = StageInfo{Records: 30, Digest: "ac2", Inputs: []string{"crawl/porn-ES"}}
	b.Figures["fig:parties"] = FigureInfo{Stages: []string{"analysis/parties"}, Rows: 41, Digest: "fp2"}
	b.Figures["fig:cookies"] = FigureInfo{Stages: []string{"analysis/cookies"}, Rows: 30, Digest: "fc2"}

	d := Diff(a, b)
	if d.Identical {
		t.Fatal("perturbed run compared identical")
	}
	if len(d.RootStages) != 1 || d.RootStages[0] != "crawl/porn-ES" {
		t.Fatalf("root stages = %v, want [crawl/porn-ES]", d.RootStages)
	}
	if len(d.Figures) != 2 {
		t.Fatalf("changed figures = %+v, want 2", d.Figures)
	}
	for _, fd := range d.Figures {
		if len(fd.EarliestStages) != 1 || fd.EarliestStages[0] != "crawl/porn-ES" {
			t.Errorf("figure %s earliest = %v, want [crawl/porn-ES]", fd.Name, fd.EarliestStages)
		}
	}
	var buf bytes.Buffer
	d.Format(&buf)
	out := buf.String()
	if !strings.Contains(out, "earliest diverging stages: [crawl/porn-ES]") {
		t.Fatalf("format did not name the root stage:\n%s", out)
	}
}

func TestDiffSeedAndConfig(t *testing.T) {
	a, b := testManifest(), testManifest()
	b.Seed = 43
	b.ConfigFingerprint = "beef"
	d := Diff(a, b)
	if !d.SeedChanged || !d.ConfigChanged || d.Identical {
		t.Fatalf("%+v", d)
	}
}

func TestDiffCorpusAndMissingStage(t *testing.T) {
	a, b := testManifest(), testManifest()
	b.Corpora["porn"] = CorpusInfo{Count: 101, Digest: "p2"}
	delete(b.Stages, "analysis/cookies")
	delete(b.Figures, "fig:cookies")
	d := Diff(a, b)
	if len(d.CorporaDiffer) != 1 || d.CorporaDiffer[0] != "porn" {
		t.Fatalf("corpora differ = %v", d.CorporaDiffer)
	}
	var foundStage, foundFigure bool
	for _, s := range d.StagesDiffer {
		if s == "analysis/cookies" {
			foundStage = true
		}
	}
	for _, f := range d.Figures {
		if f.Name == "fig:cookies" && f.Reason == "only in run A" {
			foundFigure = true
		}
	}
	if !foundStage || !foundFigure {
		t.Fatalf("missing stage/figure not reported: %+v", d)
	}
}

func TestDiffFigureOnlyChange(t *testing.T) {
	// A figure digest changes with no stage divergence (e.g. a rendering
	// change): EarliestStages stays empty rather than inventing a cause.
	a, b := testManifest(), testManifest()
	b.Figures["fig:parties"] = FigureInfo{Stages: []string{"analysis/parties"}, Rows: 40, Digest: "fp9"}
	d := Diff(a, b)
	if len(d.Figures) != 1 || d.Figures[0].Name != "fig:parties" {
		t.Fatalf("%+v", d.Figures)
	}
	if len(d.Figures[0].EarliestStages) != 0 {
		t.Fatalf("invented a root cause: %v", d.Figures[0].EarliestStages)
	}
	if len(d.RootStages) != 0 {
		t.Fatalf("root stages %v with no stage divergence", d.RootStages)
	}
}

func TestDiffVersionSkew(t *testing.T) {
	a, b := testManifest(), testManifest()
	b.Version = ManifestVersion + 1
	if d := Diff(a, b); !d.VersionSkew || d.Identical {
		t.Fatalf("%+v", d)
	}
}
