package provenance

import (
	"sort"
	"sync"
	"time"
)

// StageInfo is the provenance record of one completed pipeline stage.
type StageInfo struct {
	// Records counts the stage's output records (crawl-log lines, analysis
	// rows).
	Records int `json:"records"`
	// Digest is a stable content digest of those records.
	Digest string `json:"digest"`
	// Inputs names the stages this stage consumed, forming the DAG that
	// Diff walks back to a root cause.
	Inputs []string `json:"inputs,omitempty"`
}

// Recorder collects stage provenance as a run executes. Stages call
// RecordStage when they complete; the scheduler calls RecordTiming from
// its completion hook. All methods are safe for concurrent use and
// nil-safe, so an unwired pipeline records nothing at zero cost.
type Recorder struct {
	mu      sync.Mutex
	stages  map[string]StageInfo
	timings map[string]time.Duration
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		stages:  map[string]StageInfo{},
		timings: map[string]time.Duration{},
	}
}

// RecordStage stores a completed stage's record count and digest,
// replacing any earlier record of the same name.
func (r *Recorder) RecordStage(name string, records int, digest string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	info := r.stages[name]
	info.Records = records
	info.Digest = digest
	r.stages[name] = info
	r.mu.Unlock()
}

// SetInputs declares the stages name consumed.
func (r *Recorder) SetInputs(name string, inputs []string) {
	if r == nil {
		return
	}
	sorted := append([]string(nil), inputs...)
	sort.Strings(sorted)
	r.mu.Lock()
	info := r.stages[name]
	info.Inputs = sorted
	r.stages[name] = info
	r.mu.Unlock()
}

// RecordTiming stores a stage's wall-clock duration (runinfo.json only;
// never part of the manifest).
func (r *Recorder) RecordTiming(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.timings[name] = d
	r.mu.Unlock()
}

// Stages returns a copy of the recorded stage map.
func (r *Recorder) Stages() map[string]StageInfo {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]StageInfo, len(r.stages))
	for k, v := range r.stages {
		out[k] = v
	}
	return out
}

// Timings returns a copy of the recorded stage durations.
func (r *Recorder) Timings() map[string]time.Duration {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]time.Duration, len(r.timings))
	for k, v := range r.timings {
		out[k] = v
	}
	return out
}

// Reset drops everything recorded, so one Study value can run twice
// without the first run's stages leaking into the second manifest.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.stages = map[string]StageInfo{}
	r.timings = map[string]time.Duration{}
	r.mu.Unlock()
}
