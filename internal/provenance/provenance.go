// Package provenance gives every study run a verifiable identity: stable
// content digests for corpora, crawl logs and analysis outputs, a
// Recorder that stages feed as they complete, a Manifest written next to
// the report, and a Diff that compares two manifests and walks the stage
// DAG back to the earliest diverging stage — turning "the numbers
// changed" into "the numbers changed because crawl/porn-ES changed".
//
// Manifests are byte-deterministic: two runs with the same config, seed
// and corpus produce identical manifest.json files, so a plain byte
// comparison (or the studydiff tool) works as a CI determinism gate.
// Everything volatile — wall-clock stage timings, start time — lives in a
// separate runinfo.json sidecar that diffing ignores.
package provenance

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// HashJSON digests v's JSON rendering with FNV-1a 64. encoding/json
// renders map keys in sorted order, so the digest is stable for any value
// whose JSON form is deterministic. The returned form is 16 hex digits.
func HashJSON(v any) (string, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("provenance: hash: %w", err)
	}
	h := fnv.New64a()
	h.Write(raw)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// HashString digests a single string with FNV-1a 64.
func HashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// MultisetHash accumulates an order-independent digest over a set of
// records: the wrapping sum of each record's FNV-1a 64 hash, folded with
// the record count. Two record streams digest equal iff they contain the
// same records with the same multiplicities, regardless of order — so a
// crawl log digested under a concurrent schedule matches the same log
// digested serially.
type MultisetHash struct {
	sum uint64
	n   uint64
}

// Add folds one record into the multiset.
func (m *MultisetHash) Add(record string) {
	m.sum += HashString(record)
	m.n++
}

// Remove folds one previously added record back out, inverting Add —
// the sum is wrapping addition, so subtraction is exact. Removing a
// record that was never added corrupts the digest; callers own that
// invariant (the store uses Remove only to supersede a replayed
// duplicate it just re-read).
func (m *MultisetHash) Remove(record string) {
	m.sum -= HashString(record)
	m.n--
}

// Merge folds another multiset into this one — the commutative merge
// underlying sharded crawls: digesting each shard's records separately
// and merging equals digesting all records in one pass, in any order.
func (m *MultisetHash) Merge(o *MultisetHash) {
	m.sum += o.sum
	m.n += o.n
}

// Count returns how many records were added.
func (m *MultisetHash) Count() int { return int(m.n) }

// Sum returns the digest as 16 hex digits.
func (m *MultisetHash) Sum() string {
	// Mix the count in so {a} and {a, ""} with a zero-hash filler differ.
	return fmt.Sprintf("%016x", m.sum^(m.n*0x9e3779b97f4a7c15))
}
