package provenance

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ShardManifestVersion identifies the shard sidecar schema.
const ShardManifestVersion = 1

// ShardInfo summarizes one shard of one sharded stage: how many hosts
// it was assigned, how many serialized visit entries came back, and
// the order-independent multiset digest over those entries that the
// coordinator verified on ingestion.
type ShardInfo struct {
	Shard   int    `json:"shard"`
	Hosts   int    `json:"hosts"`
	Entries int    `json:"entries"`
	Digest  string `json:"digest"`
}

// ShardStage is the sharded execution record of one stage: the shard
// fan-out, the combined digest over every entry of every shard, and
// the per-shard rows in shard order.
type ShardStage struct {
	Shards int `json:"shards"`
	// MergedDigest is the multiset digest over all entries of all
	// shards; because the digest is commutative it equals the digest a
	// serial run's entries would produce.
	MergedDigest string      `json:"merged_digest"`
	Info         []ShardInfo `json:"shard_digests"`
}

// ShardManifest is the shards.json sidecar of a sharded run. Per-shard
// digests are a function of the shard count, so they cannot live in
// manifest.json — the main manifest must stay byte-identical between a
// serial and a sharded run of the same study (that is the equivalence
// gate's claim). The sidecar carries them instead: Diff-style
// comparison applies only when both runs were sharded, exactly as
// StoreInfo is compared only when both runs were store-backed.
type ShardManifest struct {
	Version           int                   `json:"version"`
	ConfigFingerprint string                `json:"config_fingerprint"`
	Seed              int64                 `json:"seed"`
	Stages            map[string]ShardStage `json:"stages"`
}

// Write renders the shard manifest as stable, indented JSON at path.
// encoding/json sorts map keys, so equal manifests are equal bytes.
func (sm *ShardManifest) Write(path string) error {
	raw, err := json.MarshalIndent(sm, "", "  ")
	if err != nil {
		return fmt.Errorf("provenance: marshal shard manifest: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// LoadShardManifest reads a sidecar written by Write.
func LoadShardManifest(path string) (*ShardManifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sm ShardManifest
	if err := json.Unmarshal(raw, &sm); err != nil {
		return nil, fmt.Errorf("provenance: parse %s: %w", path, err)
	}
	return &sm, nil
}

// DiffShardStages compares two shard sidecars stage by stage and
// returns the sorted names of stages whose sharded execution records
// disagree — different fan-out, merged digest, or per-shard rows — or
// stages present in only one run. Nil means the sidecars agree.
func DiffShardStages(a, b *ShardManifest) []string {
	var differ []string
	for _, name := range unionKeys(a.Stages, b.Stages) {
		sa, okA := a.Stages[name]
		sb, okB := b.Stages[name]
		if !okA || !okB || !shardStageEqual(sa, sb) {
			differ = append(differ, name)
		}
	}
	sort.Strings(differ)
	return differ
}

func shardStageEqual(a, b ShardStage) bool {
	if a.Shards != b.Shards || a.MergedDigest != b.MergedDigest || len(a.Info) != len(b.Info) {
		return false
	}
	for i := range a.Info {
		if a.Info[i] != b.Info[i] {
			return false
		}
	}
	return true
}
