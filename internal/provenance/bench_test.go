package provenance

import (
	"fmt"
	"path/filepath"
	"testing"
)

func benchManifest() *Manifest {
	m := &Manifest{
		Version:           ManifestVersion,
		ConfigFingerprint: "cafe",
		Seed:              42,
		Scale:             1,
		Corpora:           map[string]CorpusInfo{"porn": {Count: 5000, Digest: "aa"}, "reference": {Count: 5000, Digest: "bb"}},
		Stages:            map[string]StageInfo{},
		Figures:           map[string]FigureInfo{},
	}
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("stage-%02d", i)
		m.Stages[name] = StageInfo{Records: i * 100, Digest: fmt.Sprintf("%016x", i), Inputs: []string{"corpus"}}
	}
	for i := 0; i < 16; i++ {
		m.Figures[fmt.Sprintf("fig-%02d", i)] = FigureInfo{Stages: []string{"stage-00"}, Rows: i, Digest: "ee"}
	}
	return m
}

func BenchmarkManifestWrite(b *testing.B) {
	dir := b.TempDir()
	m := benchManifest()
	path := filepath.Join(dir, "manifest.json")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Write(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultisetHash(b *testing.B) {
	records := make([]string, 256)
	for i := range records {
		records[i] = fmt.Sprintf("GET https://cdn%d.example.com/lib.js 200 1024", i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var m MultisetHash
		for _, r := range records {
			m.Add(r)
		}
		_ = m.Sum()
	}
}

func BenchmarkDiff(b *testing.B) {
	x, y := benchManifest(), benchManifest()
	y.Stages["stage-07"] = StageInfo{Records: 701, Digest: "deadbeef", Inputs: []string{"corpus"}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if d := Diff(x, y); d.Identical {
			b.Fatal("diff missed the perturbation")
		}
	}
}
