package provenance

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// ManifestVersion identifies the manifest schema; Diff refuses to
// compare manifests of different versions.
const ManifestVersion = 1

// CorpusInfo fingerprints one input corpus.
type CorpusInfo struct {
	Count  int    `json:"count"`
	Digest string `json:"digest"`
}

// FigureInfo is the provenance of one report figure or table: which
// stages fed it, how many rows it renders, and a digest of its content.
type FigureInfo struct {
	Stages []string `json:"stages"`
	Rows   int      `json:"rows"`
	Digest string   `json:"digest"`
}

// StoreInfo summarizes the durable visit store backing a run: how many
// visit entries it holds and the order-independent content digest over
// all of them. Because every stored entry is a pure function of (seed,
// config, site), a killed-and-resumed run must reproduce the exact
// digest of an uninterrupted one — the crash-safety gate's claim.
type StoreInfo struct {
	Entries int    `json:"entries"`
	Digest  string `json:"digest"`
}

// Manifest is the complete deterministic provenance of one study run.
// Everything in it is a pure function of (config, seed, corpus), so two
// runs of the same study produce byte-identical manifests — the property
// the determinism gate asserts.
type Manifest struct {
	Version           int                   `json:"version"`
	ConfigFingerprint string                `json:"config_fingerprint"`
	Seed              int64                 `json:"seed"`
	Scale             float64               `json:"scale"`
	Corpora           map[string]CorpusInfo `json:"corpora"`
	Stages            map[string]StageInfo  `json:"stages"`
	Figures           map[string]FigureInfo `json:"figures"`
	// Failures totals failed visits by taxonomy class across all crawls.
	Failures map[string]int `json:"failures,omitempty"`
	// Store is present only for store-backed runs; Diff compares it only
	// when both manifests carry it.
	Store *StoreInfo `json:"store,omitempty"`
}

// Write renders the manifest as stable, indented JSON at path.
// encoding/json sorts all map keys, so equal manifests are equal bytes.
func (m *Manifest) Write(path string) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("provenance: marshal manifest: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// LoadManifest reads a manifest written by Write.
func LoadManifest(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("provenance: parse %s: %w", path, err)
	}
	return &m, nil
}

// RunInfo is the volatile sidecar to a manifest: wall-clock facts that
// legitimately differ between otherwise identical runs. It is written as
// runinfo.json next to manifest.json and ignored by Diff.
type RunInfo struct {
	StartedAt     time.Time          `json:"started_at"`
	WallMS        float64            `json:"wall_ms"`
	StageWallMS   map[string]float64 `json:"stage_wall_ms,omitempty"`
	Serial        bool               `json:"serial"`
	StageWorkers  int                `json:"stage_workers"`
	FlightSeen    uint64             `json:"flight_seen,omitempty"`
	FlightKept    uint64             `json:"flight_kept,omitempty"`
	FlightDropped uint64             `json:"flight_sampled_out,omitempty"`
}

// Write renders the run info as indented JSON at path.
func (ri *RunInfo) Write(path string) error {
	raw, err := json.MarshalIndent(ri, "", "  ")
	if err != nil {
		return fmt.Errorf("provenance: marshal runinfo: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}
