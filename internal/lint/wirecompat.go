package lint

import (
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"strings"
)

// WireCompat locks the shard wire structs against a golden schema file
// in the wire package's testdata directory. PR 9's compatibility
// promise — old workers' frames keep decoding — holds exactly as long
// as the wire structs only ever grow: a removed, renamed, or retyped
// field silently changes what every deployed worker and coordinator
// serialize. wirecompat makes that mechanical: the schema lists each
// struct's fields in wire order, the analyzer compares it as an
// ordered prefix of the live struct, and any change other than
// appending a new `omitempty` field is a finding. New fields must
// carry omitempty so frames from binaries that predate the field stay
// byte-identical when re-encoded.
func WireCompat() *Analyzer {
	return &Analyzer{
		Name: "wirecompat",
		Doc:  "wire structs are append-only against the golden schema in testdata",
		Applies: func(cfg *Config, pkgPath string) bool {
			return inClass(pkgPath, cfg.WirePkgs)
		},
		Run: runWireCompat,
	}
}

func runWireCompat(cfg *Config, pkg *Package) []Finding {
	if cfg.WireSchema == "" || len(cfg.WireStructs) == 0 {
		return nil
	}
	pkgPos := token.NoPos
	if len(pkg.Files) > 0 {
		pkgPos = pkg.Files[0].Package
	}
	data, err := os.ReadFile(filepath.Join(pkg.Dir, filepath.FromSlash(cfg.WireSchema)))
	if err != nil {
		// Only a package that actually declares a locked struct owes a
		// schema; lint fixtures impersonating the wire package's import
		// path without its structs stay silent.
		for _, name := range cfg.WireStructs {
			if pkg.Types.Scope().Lookup(name) != nil {
				return []Finding{pkg.finding("wirecompat", pkgPos,
					"wire schema %s missing: create it to lock the wire format (see internal/lint/schema.go for the grammar)",
					cfg.WireSchema)}
			}
		}
		return nil
	}
	schema, err := ParseSchema(data)
	if err != nil {
		return []Finding{pkg.finding("wirecompat", pkgPos,
			"wire schema %s unparseable: %v", cfg.WireSchema, err)}
	}
	var out []Finding
	for _, name := range cfg.WireStructs {
		out = append(out, checkWireStruct(cfg, pkg, schema, name, pkgPos)...)
	}
	return out
}

// wireField is one live struct field as it appears on the wire.
type wireField struct {
	SchemaField
	pos token.Pos
}

// liveWireFields extracts the JSON-visible fields of a struct in
// declaration order: exported, not json:"-", with the JSON name, the
// package-name-qualified type, and the omitempty flag.
func liveWireFields(pkg *Package, st *types.Struct) []wireField {
	qual := func(other *types.Package) string {
		if other == pkg.Types {
			return ""
		}
		return other.Name()
	}
	var out []wireField
	for i := 0; i < st.NumFields(); i++ {
		v := st.Field(i)
		if !v.Exported() {
			continue
		}
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		parts := strings.Split(tag, ",")
		jsonName := parts[0]
		if jsonName == "-" {
			continue
		}
		if jsonName == "" {
			jsonName = v.Name()
		}
		f := wireField{pos: v.Pos()}
		f.GoName = v.Name()
		f.JSONName = jsonName
		f.Type = types.TypeString(v.Type(), qual)
		for _, opt := range parts[1:] {
			if opt == "omitempty" {
				f.Omitempty = true
			}
		}
		out = append(out, f)
	}
	return out
}

func checkWireStruct(cfg *Config, pkg *Package, schema *Schema, name string, pkgPos token.Pos) []Finding {
	obj := pkg.Types.Scope().Lookup(name)
	if obj == nil {
		return []Finding{pkg.finding("wirecompat", pkgPos,
			"wire struct %s is gone: removing a locked wire struct breaks every deployed peer", name)}
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return []Finding{pkg.finding("wirecompat", obj.Pos(),
			"wire type %s is no longer a struct", name)}
	}
	want := schema.Struct(name)
	if want == nil {
		return []Finding{pkg.finding("wirecompat", obj.Pos(),
			"wire struct %s has no entry in %s: append \"struct %s\" and its fields to lock it",
			name, cfg.WireSchema, name)}
	}
	live := liveWireFields(pkg, st)
	var out []Finding
	for i, wf := range want.Fields {
		if i >= len(live) {
			out = append(out, pkg.finding("wirecompat", obj.Pos(),
				"wire field %s.%s (schema line %d) was removed: wire fields are append-only; restore it or keep a deprecated placeholder",
				name, wf.GoName, wf.Line))
			continue
		}
		got := live[i]
		if got.GoName != wf.GoName {
			out = append(out, pkg.finding("wirecompat", got.pos,
				"wire field %s.%s (schema line %d) is now %q: renames and reorders break the locked wire layout",
				name, wf.GoName, wf.Line, got.GoName))
			continue // name mismatch makes the remaining comparisons noise
		}
		if got.JSONName != wf.JSONName {
			out = append(out, pkg.finding("wirecompat", got.pos,
				"wire field %s.%s changed JSON name %q -> %q (schema line %d): every deployed peer still encodes %q",
				name, wf.GoName, wf.JSONName, got.JSONName, wf.Line, wf.JSONName))
		}
		if got.Type != wf.Type {
			out = append(out, pkg.finding("wirecompat", got.pos,
				"wire field %s.%s changed type %s -> %s (schema line %d): old frames no longer decode",
				name, wf.GoName, wf.Type, got.Type, wf.Line))
		}
		if got.Omitempty != wf.Omitempty {
			verb := "lost"
			if got.Omitempty {
				verb = "gained"
			}
			out = append(out, pkg.finding("wirecompat", got.pos,
				"wire field %s.%s %s omitempty (schema line %d): zero-value encoding changes byte-for-byte framing",
				name, wf.GoName, verb, wf.Line))
		}
	}
	for i := len(want.Fields); i < len(live); i++ {
		if !live[i].Omitempty {
			out = append(out, pkg.finding("wirecompat", live[i].pos,
				"new wire field %s.%s must carry omitempty so frames from binaries that predate it stay identical; then append it to %s",
				name, live[i].GoName, cfg.WireSchema))
		}
	}
	return out
}
