package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetFlow is detrange's interprocedural sibling: it tracks values
// whose ORDER derives from a map range — slices and strings
// accumulated across map iterations, maps.Keys/Values sequences —
// through returns, call arguments, and struct fields, into ordered
// sinks inside the deterministic packages: fmt.Fprint* and
// Write/WriteString-shaped methods (manifest and report writers),
// provenance.MultisetHash.Add, first-wins map stores, and calls to
// module functions that feed such a sink from a parameter. PR 3's
// certByBase bug crossed exactly this function boundary: the hosts
// were collected in map order in one function and consumed
// first-wins in another, so the intra-function detrange could not see
// source and sink together. The sanctioned fix is unchanged — sort
// the collection — and sorting anywhere in the defining function
// clears the taint.
//
// The analysis is summary-based: each function gets (does it return
// map-ordered data; which parameters flow to its ordered sinks;
// which parameters flow to its results), iterated over the module
// call graph to a fixpoint, with struct fields as global taint
// carriers. It is deliberately flow-insensitive: ordering bugs are
// about where data travels, not when.
func DetFlow() *Analyzer {
	return &Analyzer{
		Name:      "detflow",
		Doc:       "map-iteration-ordered values must not reach digest/manifest/report sinks across functions",
		RunModule: runDetFlow,
	}
}

// taint is the abstract value of the lattice: real map-order taint
// (with a deterministic source description) plus a bitmask of
// parameters the value derives from.
type taint struct {
	real   bool
	src    string
	params uint64
}

func (t taint) empty() bool { return !t.real && t.params == 0 }

func (t taint) union(o taint) taint {
	out := taint{real: t.real || o.real, params: t.params | o.params}
	switch {
	case t.real && o.real:
		// Lexicographically smallest source wins, so the merge order
		// (and therefore the diagnostic) is deterministic.
		out.src = t.src
		if o.src < t.src {
			out.src = o.src
		}
	case t.real:
		out.src = t.src
	case o.real:
		out.src = o.src
	}
	return out
}

// flowSummary is one function's interprocedural contract.
type flowSummary struct {
	retTaint   bool
	retSrc     string
	retParams  uint64
	sinkParams uint64
}

// flowFunc is the per-function analysis state, persisted across
// fixpoint rounds so local taint accumulates monotonically.
type flowFunc struct {
	inf      *IndexedFunc
	sorted   map[string]bool
	paramIdx map[types.Object]int
	locals   map[types.Object]taint
}

// flowAnalysis is the module-wide fixpoint state.
type flowAnalysis struct {
	cfg      *Config
	funcs    []*flowFunc
	sums     map[*types.Func]*flowSummary
	fields   map[*types.Var]string // real-tainted struct fields -> source
	changed  bool
	emit     bool
	findings []Finding
}

func runDetFlow(cfg *Config, ix *Index) []Finding {
	fa := &flowAnalysis{
		cfg:    cfg,
		sums:   map[*types.Func]*flowSummary{},
		fields: map[*types.Var]string{},
	}
	for _, inf := range ix.Funcs {
		if inf.Decl.Body == nil {
			continue
		}
		ff := &flowFunc{
			inf:      inf,
			sorted:   sortedExprs(inf.Pkg, inf.Decl.Body),
			paramIdx: map[types.Object]int{},
			locals:   map[types.Object]taint{},
		}
		if sig, ok := inf.Fn.Type().(*types.Signature); ok {
			for i := 0; i < sig.Params().Len() && i < 64; i++ {
				ff.paramIdx[sig.Params().At(i)] = i
			}
		}
		fa.funcs = append(fa.funcs, ff)
		fa.sums[inf.Fn] = &flowSummary{}
	}
	// Chaotic iteration to a fixpoint: summaries, field taints and
	// local taints only grow, so this terminates; the round cap is a
	// belt against pathological trees.
	for round := 0; round < 20; round++ {
		fa.changed = false
		for _, ff := range fa.funcs {
			fa.analyzeFunc(ff)
		}
		if !fa.changed {
			break
		}
	}
	fa.emit = true
	for _, ff := range fa.funcs {
		fa.analyzeFunc(ff)
	}
	return fa.findings
}

// mergeLocal folds t into the object's taint, respecting the
// ever-sorted exemption.
func (fa *flowAnalysis) mergeLocal(ff *flowFunc, obj types.Object, name string, t taint) {
	if obj == nil || t.empty() || ff.sorted[name] {
		return
	}
	old := ff.locals[obj]
	merged := old.union(t)
	if merged != old {
		ff.locals[obj] = merged
		fa.changed = true
	}
}

func (fa *flowAnalysis) objOf(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// exprTaint evaluates an expression in the lattice.
func (fa *flowAnalysis) exprTaint(ff *flowFunc, e ast.Expr) taint {
	pkg := ff.inf.Pkg
	switch e := e.(type) {
	case *ast.Ident:
		if ff.sorted[e.Name] {
			return taint{}
		}
		obj := fa.objOf(pkg, e)
		if obj == nil {
			return taint{}
		}
		t := ff.locals[obj]
		if i, ok := ff.paramIdx[obj]; ok {
			t.params |= 1 << uint(i)
		}
		return t
	case *ast.SelectorExpr:
		if ff.sorted[types.ExprString(e)] {
			return taint{}
		}
		var t taint
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				if src, ok := fa.fields[v]; ok {
					t = t.union(taint{real: true, src: src})
				}
			}
			t = t.union(fa.exprTaint(ff, e.X))
		}
		return t
	case *ast.IndexExpr:
		return fa.exprTaint(ff, e.X).union(fa.exprTaint(ff, e.Index))
	case *ast.CallExpr:
		return fa.callTaint(ff, e)
	case *ast.BinaryExpr:
		return fa.exprTaint(ff, e.X).union(fa.exprTaint(ff, e.Y))
	case *ast.CompositeLit:
		var t taint
		for _, el := range e.Elts {
			t = t.union(fa.exprTaint(ff, el))
		}
		return t
	case *ast.KeyValueExpr:
		return fa.exprTaint(ff, e.Value)
	case *ast.ParenExpr:
		return fa.exprTaint(ff, e.X)
	case *ast.StarExpr:
		return fa.exprTaint(ff, e.X)
	case *ast.UnaryExpr:
		return fa.exprTaint(ff, e.X)
	case *ast.TypeAssertExpr:
		return fa.exprTaint(ff, e.X)
	case *ast.SliceExpr:
		return fa.exprTaint(ff, e.X)
	}
	return taint{}
}

// callTaint models the explicit propagation list plus module-function
// summaries. Unknown calls return untainted — precision over recall,
// so len(tainted) and friends stay silent.
func (fa *flowAnalysis) callTaint(ff *flowFunc, call *ast.CallExpr) taint {
	pkg := ff.inf.Pkg
	if pkg.isAppendCall(call) {
		var t taint
		for _, arg := range call.Args {
			t = t.union(fa.exprTaint(ff, arg))
		}
		return t
	}
	fn := pkg.calleeOf(call)
	if fn == nil {
		return taint{}
	}
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "maps":
			if fn.Name() == "Keys" || fn.Name() == "Values" {
				return taint{real: true, src: "maps." + fn.Name() + " in " + displayName(ff.inf.Fn)}
			}
		case "slices":
			switch fn.Name() {
			case "Sorted", "SortedFunc", "SortedStableFunc", "Compact", "Clone":
				if fn.Name() == "Sorted" || fn.Name() == "SortedFunc" || fn.Name() == "SortedStableFunc" {
					return taint{} // sorting clears order taint
				}
				fallthrough
			case "Collect", "Concat":
				var t taint
				for _, arg := range call.Args {
					t = t.union(fa.exprTaint(ff, arg))
				}
				return t
			}
		case "strings":
			if fn.Name() == "Join" {
				var t taint
				for _, arg := range call.Args {
					t = t.union(fa.exprTaint(ff, arg))
				}
				return t
			}
		case "fmt":
			switch fn.Name() {
			case "Sprint", "Sprintf", "Sprintln", "Append", "Appendf", "Appendln":
				var t taint
				for _, arg := range call.Args {
					t = t.union(fa.exprTaint(ff, arg))
				}
				return t
			}
		}
	}
	sum, ok := fa.sums[fn]
	if !ok {
		return taint{}
	}
	var t taint
	if sum.retTaint {
		t = t.union(taint{real: true, src: sum.retSrc})
	}
	for i, arg := range call.Args {
		if i < 64 && sum.retParams&(1<<uint(i)) != 0 {
			t = t.union(fa.exprTaint(ff, arg))
		}
	}
	return t
}

// analyzeFunc runs one round over a function: propagate taint through
// assignments and ranges, fold sinks into the summary, and — in the
// emit round — report real taint reaching sinks in deterministic
// packages.
func (fa *flowAnalysis) analyzeFunc(ff *flowFunc) {
	body := ff.inf.Decl.Body
	sum := fa.sums[ff.inf.Fn]

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			fa.assign(ff, n)
		case *ast.RangeStmt:
			fa.rangeStmt(ff, n)
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				t := fa.exprTaint(ff, r)
				if t.empty() {
					continue
				}
				next := flowSummary{
					retTaint:   sum.retTaint || t.real,
					retSrc:     sum.retSrc,
					retParams:  sum.retParams | t.params,
					sinkParams: sum.sinkParams,
				}
				if t.real && (next.retSrc == "" || t.src < next.retSrc) {
					next.retSrc = t.src
				}
				if next != *sum {
					*sum = next
					fa.changed = true
				}
			}
		case *ast.CallExpr:
			fa.sinkCall(ff, n)
		}
		return true
	})
}

// assign propagates RHS taint into LHS targets.
func (fa *flowAnalysis) assign(ff *flowFunc, as *ast.AssignStmt) {
	pkg := ff.inf.Pkg
	taints := make([]taint, len(as.Lhs))
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		t := fa.exprTaint(ff, as.Rhs[0])
		for i := range taints {
			taints[i] = t
		}
	} else {
		for i := range as.Lhs {
			if i < len(as.Rhs) {
				taints[i] = fa.exprTaint(ff, as.Rhs[i])
			}
		}
	}
	for i, lhs := range as.Lhs {
		fa.storeTo(ff, pkg, lhs, taints[i])
	}
}

// storeTo merges taint into an assignment target: locals, struct
// fields (real taint becomes module-global field taint), and element
// stores into slice-typed containers.
func (fa *flowAnalysis) storeTo(ff *flowFunc, pkg *Package, lhs ast.Expr, t taint) {
	if t.empty() {
		return
	}
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		fa.mergeLocal(ff, fa.objOf(pkg, lhs), lhs.Name, t)
	case *ast.SelectorExpr:
		if !t.real || ff.sorted[types.ExprString(lhs)] {
			return
		}
		if sel, ok := pkg.Info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				if old, ok := fa.fields[v]; !ok || t.src < old {
					fa.fields[v] = t.src
					fa.changed = true
				}
			}
		}
	case *ast.IndexExpr:
		fa.storeTo(ff, pkg, lhs.X, t)
	case *ast.StarExpr:
		fa.storeTo(ff, pkg, lhs.X, t)
	}
}

// rangeStmt handles both taint sources and ordered iteration:
// ranging a map marks pre-existing accumulators the body fills in
// iteration order; ranging a tainted slice taints the iteration
// variables and makes first-wins stores inside the body sinks.
func (fa *flowAnalysis) rangeStmt(ff *flowFunc, rs *ast.RangeStmt) {
	pkg := ff.inf.Pkg
	if pkg.isMapType(rs.X) {
		fa.mapRangeSources(ff, rs)
		return
	}
	t := fa.exprTaint(ff, rs.X)
	if t.empty() {
		return
	}
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			fa.mergeLocal(ff, fa.objOf(pkg, id), id.Name, t)
		}
	}
	// An ordered iteration over map-ordered data makes first-wins map
	// stores inside the body order-dependent regardless of the key
	// expression — the certByBase shape.
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if f, ok := guardedMapStore(pkg, ifs, types.ExprString(rs.X)); ok {
			if t.real {
				// Reuse the detrange detector's position, with the
				// interprocedural story in the message.
				f.Analyzer = "detflow"
				f.Message = fmt.Sprintf(
					"first-wins store while iterating %s (%s): the winner depends on map iteration order; sort before iterating",
					types.ExprString(rs.X), t.src)
				fa.reportFinding(ff, f)
			}
			fa.noteSinkParams(ff, t)
		}
		return true
	})
}

// mapRangeSources marks accumulators: assignments inside a map-range
// body whose RHS mentions the iteration variables and whose target
// was declared before the range collect values in iteration order.
// Stores into map-typed targets stay exempt (map insertion order is
// invisible); everything else — slice appends, string concatenation,
// indexed slice writes — becomes ordered the moment the range is.
func (fa *flowAnalysis) mapRangeSources(ff *flowFunc, rs *ast.RangeStmt) {
	pkg := ff.inf.Pkg
	iterVars := map[types.Object]bool{}
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := fa.objOf(pkg, id); obj != nil {
				iterVars[obj] = true
			}
		}
	}
	src := "values collected ranging over " + types.ExprString(rs.X) + " in " + displayName(ff.inf.Fn)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		mentions := false
		for _, rhs := range as.Rhs {
			ast.Inspect(rhs, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && iterVars[fa.objOf(pkg, id)] {
					mentions = true
				}
				return !mentions
			})
		}
		if !mentions {
			return true
		}
		for _, lhs := range as.Lhs {
			target := ast.Unparen(lhs)
			if idx, ok := target.(*ast.IndexExpr); ok && pkg.isMapType(idx.X) {
				continue // map stores are order-independent
			}
			base := target
			for {
				if idx, ok := base.(*ast.IndexExpr); ok {
					base = ast.Unparen(idx.X)
					continue
				}
				break
			}
			id, ok := base.(*ast.Ident)
			if !ok {
				continue
			}
			obj := fa.objOf(pkg, id)
			if obj == nil || iterVars[obj] || obj.Pos() >= rs.Pos() {
				continue // per-iteration local, not an accumulator
			}
			fa.mergeLocal(ff, obj, id.Name, taint{real: true, src: src})
		}
		return true
	})
}

// sinkCall folds ordered-sink calls into findings (emit round, real
// taint, deterministic package) and into the summary's parameter sink
// set.
func (fa *flowAnalysis) sinkCall(ff *flowFunc, call *ast.CallExpr) {
	pkg := ff.inf.Pkg
	fn := pkg.calleeOf(call)
	if fn == nil {
		return
	}
	if isPkgFunc(fn, "fmt", "Fprint", "Fprintf", "Fprintln") {
		var t taint
		for _, arg := range call.Args[1:] { // args past the writer
			t = t.union(fa.exprTaint(ff, arg))
		}
		fa.sink(ff, call.Pos(), t, "fmt."+fn.Name())
		return
	}
	if named := recvNamed(fn); named != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			var t taint
			for _, arg := range call.Args {
				t = t.union(fa.exprTaint(ff, arg))
			}
			fa.sink(ff, call.Pos(), t, named.Obj().Name()+"."+fn.Name())
			return
		case "Add":
			obj := named.Obj()
			if obj.Name() == "MultisetHash" && obj.Pkg() != nil &&
				strings.HasSuffix(obj.Pkg().Path(), "internal/provenance") {
				var t taint
				for _, arg := range call.Args {
					t = t.union(fa.exprTaint(ff, arg))
				}
				fa.sink(ff, call.Pos(), t, "MultisetHash.Add")
				return
			}
		}
	}
	sum, ok := fa.sums[fn]
	if !ok || sum.sinkParams == 0 {
		return
	}
	for i, arg := range call.Args {
		if i >= 64 || sum.sinkParams&(1<<uint(i)) == 0 {
			continue
		}
		t := fa.exprTaint(ff, arg)
		if t.empty() {
			continue
		}
		if t.real {
			fa.reportPos(ff, call.Pos(),
				"passes map-iteration-ordered value (%s) to %s, which feeds an ordered sink; sort it before the call",
				t.src, displayName(fn))
		}
		fa.noteSinkParams(ff, t)
	}
}

// sink handles one direct ordered-sink call site.
func (fa *flowAnalysis) sink(ff *flowFunc, pos token.Pos, t taint, sinkName string) {
	if t.empty() {
		return
	}
	if t.real {
		fa.reportPos(ff, pos,
			"map-iteration-ordered value (%s) reaches %s; sort it before the sink (the cross-function certByBase bug class)",
			t.src, sinkName)
	}
	fa.noteSinkParams(ff, t)
}

// noteSinkParams records that the given parameters reach a sink,
// growing this function's summary.
func (fa *flowAnalysis) noteSinkParams(ff *flowFunc, t taint) {
	sum := fa.sums[ff.inf.Fn]
	if t.params&^sum.sinkParams != 0 {
		sum.sinkParams |= t.params
		fa.changed = true
	}
}

// reportPos buffers one finding during the emit round; findings are
// only emitted for sinks inside the deterministic packages, so taint
// may flow through any package but only matters where determinism is
// promised.
func (fa *flowAnalysis) reportPos(ff *flowFunc, pos token.Pos, format string, args ...any) {
	if !fa.emit || !inClass(ff.inf.Pkg.Path, fa.cfg.Deterministic) {
		return
	}
	fa.findings = append(fa.findings, ff.inf.Pkg.finding("detflow", pos, format, args...))
}

// reportFinding buffers a prebuilt finding under the same gate.
func (fa *flowAnalysis) reportFinding(ff *flowFunc, f Finding) {
	if !fa.emit || !inClass(ff.inf.Pkg.Path, fa.cfg.Deterministic) {
		return
	}
	fa.findings = append(fa.findings, f)
}
