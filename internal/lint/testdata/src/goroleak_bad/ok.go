// The three accepted cancellation edges — stop channel, context,
// listener/server close — plus the transitive case through a named
// helper.
package obs

import (
	"context"
	"net"
	"net/http"
)

// Server owns its goroutines and can stop every one of them.
type Server struct {
	stop chan struct{}
	done chan struct{}
}

// StartStop runs a loop bounded by the stop channel.
func (s *Server) StartStop() {
	go func() {
		defer close(s.done)
		for {
			select {
			case <-s.stop:
				return
			default:
			}
		}
	}()
}

// StartCtx bounds the goroutine with a context.
func (s *Server) StartCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// StartServe is the listener-close idiom: Serve returns when the owner
// closes ln.
func (s *Server) StartServe(srv *http.Server, ln net.Listener) {
	go func() {
		_ = srv.Serve(ln)
	}()
}

// StartHelper spawns a named loop whose body ranges over the stop
// channel — the edge is found transitively through the call graph.
func (s *Server) StartHelper() {
	go s.loop()
}

func (s *Server) loop() {
	for range s.stop {
	}
}
