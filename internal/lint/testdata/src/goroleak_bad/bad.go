// Goroutines in server-lifetime packages with no cancellation edge:
// nothing an owner could cancel, close, or shut down ever reaches the
// spawned function, so only process exit stops them.
package obs

import "time"

// Poller is a stand-in for a long-lived sampler.
type Poller struct {
	n int
}

// StartLeaky spawns an unstoppable ticker loop.
func (p *Poller) StartLeaky() {
	go func() {
		for {
			p.n++
			time.Sleep(time.Millisecond)
		}
	}()
}

// StartLeakyNamed spawns a named spin loop that is just as unbounded —
// the transitive check must look through the call.
func (p *Poller) StartLeakyNamed() {
	go p.spin()
}

func (p *Poller) spin() {
	for {
		p.n++
	}
}
