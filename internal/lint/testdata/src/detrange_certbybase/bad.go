// Fixture: byte-for-byte the shape of the PR 3 certByBase bug. The
// certificate-organization index is built by ranging the CertOrgs map
// with a first-wins guard, so when several observed hosts share a
// registrable base the winning organization depends on map iteration
// order — Figure 3 flipped run to run until PR 3 rebuilt the index
// over sorted hosts. detrange must flag the guarded store.
package attribution

type Attributor struct {
	CertOrgs   map[string]string
	certByBase map[string]string
}

func (a *Attributor) index() map[string]string {
	if a.certByBase != nil {
		return a.certByBase
	}
	a.certByBase = make(map[string]string, len(a.CertOrgs))
	for h, org := range a.CertOrgs {
		if org == "" {
			continue
		}
		base := baseOf(h)
		if _, ok := a.certByBase[base]; !ok {
			a.certByBase[base] = org
		}
	}
	return a.certByBase
}

// baseOf stands in for domain.Base: many hosts map to one base.
func baseOf(host string) string {
	for i := 0; i < len(host); i++ {
		if host[i] == '.' {
			return host[i+1:]
		}
	}
	return host
}
