// The PR 3 fix: collect hosts, sort them, then build the index
// first-wins over the sorted slice. The collecting append is the
// sanctioned idiom (the slice reaches sort.Strings in the same
// function) and the guarded store now ranges a slice, not a map —
// detrange must stay silent on this file.
package attribution

import "sort"

func (a *Attributor) indexSorted() map[string]string {
	index := make(map[string]string, len(a.CertOrgs))
	hosts := make([]string, 0, len(a.CertOrgs))
	for h := range a.CertOrgs {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for _, h := range hosts {
		org := a.CertOrgs[h]
		if org == "" {
			continue
		}
		base := baseOf(h)
		if _, ok := index[base]; !ok {
			index[base] = org
		}
	}
	return index
}
