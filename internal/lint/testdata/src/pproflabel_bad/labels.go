// Fixture: every way a pprof label can break the profiling contract
// cmd/studyprof keys on — odd argument counts, dynamic keys, dynamic
// stage values outside the scheduler, and stage names that don't match
// the pipeline convention. The good calls at the bottom must stay
// silent. Imports the real runtime/pprof so the callee match is
// exercised against production types.
package browser

import (
	"context"
	"runtime/pprof"
)

func label(ctx context.Context, stage, country string) {
	// Odd argument count: a key with no value.
	pprof.Labels("stage")
	// Dynamic key: the aggregation can't know what to group by.
	pprof.Labels(country, "ES")
	// Key not snake_case.
	pprof.Labels("Stage", "corpus")
	// Dynamic stage value outside the scheduler: lands wherever the
	// variable points, invisible to the hot-path table.
	pprof.Labels("stage", stage)
	// Stage name violating the convention (uppercase head segment).
	pprof.Labels("stage", "Crawl/porn-ES")
	// Suppressed with a written reason: not a finding.
	//studylint:ignore metricnames fixture demonstrates a justified forward
	pprof.Labels("stage", stage)

	// The contract, satisfied: none of these are findings.
	pprof.Do(ctx, pprof.Labels("stage", "crawl/porn-ES"), func(context.Context) {})
	pprof.Do(ctx, pprof.Labels("op", "tokenize"), func(context.Context) {})
	// Dynamic values are fine for non-stage keys (vantage is a country).
	pprof.Labels("vantage", country, "corpus", "porn")
}
