// Fixture: silently discarded error returns from the shard merge's
// must-check list. A dropped Send is a shard whose validation verdict
// vanished — a corrupt or foreign result folds into the study without
// a trace; a dropped Merge loses the drain's failure; dropped Closes
// leak the loopback listeners; a dropped sidecar Write publishes a
// sharded run with no per-shard provenance.
package shard

import (
	"pornweb/internal/provenance"
	"pornweb/internal/shard"
)

// MergeDropped drops every control-plane error.
func MergeDropped(m *shard.Merger, r *shard.Result, c *shard.Coordinator, s *shard.Server, sm *provenance.ShardManifest) {
	m.Send(r)               // dropped: the validation verdict vanishes
	m.Merge()               // dropped: the drain's failure vanishes
	defer c.Close()         // dropped: the listener leaks
	s.Close()               // dropped: same for the worker server
	sm.Write("shards.json") // dropped: the sidecar may not exist
}

// MergeChecked handles or acknowledges every error; no findings.
func MergeChecked(m *shard.Merger, r *shard.Result, s *shard.Server) error {
	if err := m.Send(r); err != nil {
		return err
	}
	if _, err := m.Merge(); err != nil {
		return err
	}
	_ = s.Close() // acknowledged drop
	return nil
}
