// Fixture: the suppression grammar itself. A directive that cannot
// say what it suppresses or why is an invariant violation in its own
// right; a well-formed one with a reason silences exactly its line
// and the line below.
package provenance

import "time"

// Missing reason: a suppression must say why.
//studylint:ignore wallclock
func stampNoReason() time.Time {
	return time.Now()
}

// Unknown analyzer name.
//studylint:ignore clockwall typo in the analyzer name
func stampUnknown() time.Time {
	return time.Now()
}

// Missing analyzer and reason entirely.
//studylint:ignore
func stampBare() time.Time {
	return time.Now()
}

// Well-formed: suppresses the finding on the next line only.
func stampSanctioned() time.Time {
	//studylint:ignore wallclock fixture exercises a valid suppression with a reason
	return time.Now()
}
