// Fixture: silently discarded error returns from the durable visit
// store's must-check list. A dropped Append is a visit that looked
// persisted but was not — the resumed run re-crawls it at best and
// diverges from the uninterrupted manifest at worst; a dropped Sync or
// Checkpoint quietly shrinks the durable prefix a crash can recover.
// Both the Store interface and the concrete *Log forms are flagged.
package store

import "pornweb/internal/store"

// Persist drops every store error.
func Persist(s store.Store, l *store.Log, k store.Key, v []byte) {
	s.Append(k, v)       // dropped: the visit may never become durable
	l.Append(k, v)       // dropped: same call through the concrete type
	s.Sync()             // dropped: the batch may never reach disk
	defer l.Checkpoint() // dropped: the checkpoint stays stale
	s.Close()            // dropped: close reports the final flush error
}

// PersistChecked handles or acknowledges every error; no findings.
func PersistChecked(s store.Store, k store.Key, v []byte) error {
	if err := s.Append(k, v); err != nil {
		return err
	}
	if err := s.Sync(); err != nil {
		return err
	}
	_ = s.Close() // acknowledged drop
	return nil
}
