// Fixture: wall-clock and global-randomness reads in a manifest-
// feeding package. A stray time.Now or unseeded random draw here
// silently breaks the byte-identical-manifest promise for whatever
// field it feeds. The sanctioned patterns — taking time.Now as an
// injected clock *value* and drawing from a seeded *rand.Rand — must
// stay legal.
package provenance

import (
	"math/rand"
	"time"
)

type Recorder struct {
	clock func() time.Time
	rng   *rand.Rand
}

// NewRecorder wires the sanctioned injection points: time.Now as a
// value (not a call) and a seeded source. Neither is a finding.
func NewRecorder(seed int64) *Recorder {
	return &Recorder{
		clock: time.Now,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Stamp is the bug: an ambient clock read feeding a manifest field.
func (r *Recorder) Stamp() time.Time {
	return time.Now()
}

// Elapsed doubles down with time.Since.
func (r *Recorder) Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// SampleID draws from the process-global math/rand source, so two
// runs with the same seed mint different IDs.
func (r *Recorder) SampleID() int {
	return rand.Intn(1 << 20)
}

// SeededID is the sanctioned draw and must not be flagged.
func (r *Recorder) SeededID() int {
	return r.rng.Intn(1 << 20)
}
