// Fixture: every way a metric registration can break the naming
// contract the dashboards key on — dynamic names, camelCase, missing
// _total/_seconds suffixes, a gauge masquerading as a counter, and a
// non-constant label key. The good registrations at the bottom must
// stay silent. Imports the real obs registry so the receiver match is
// exercised against production types.
package crawler

import "pornweb/internal/obs"

func register(reg *obs.Registry, country string) {
	// Dynamic name: invisible to dashboards until they read zero.
	reg.Counter("crawler_" + country + "_requests_total")
	// Not snake_case.
	reg.Counter("crawlerRequestsTotal")
	// Counter without _total.
	reg.Counter("crawler_requests")
	// Histogram without _seconds.
	reg.Histogram("crawler_latency", nil)
	// Gauge pretending to be a counter.
	reg.Gauge("crawler_breakers_total")
	// Non-constant label key.
	reg.Counter("crawler_requests_total", country, "ES")
	// Label key not snake_case.
	reg.Counter("crawler_requests_total", "Country", "ES")

	// The contract, satisfied: none of these are findings.
	reg.Counter("crawler_requests_total", "country", "ES")
	reg.Histogram("crawler_request_seconds", nil, "country", "ES")
	reg.Gauge("crawler_breakers_open")
	reg.Describe("crawler_requests_total", "requests by country")
}
