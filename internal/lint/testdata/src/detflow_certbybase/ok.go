// The sanctioned fixes: sorting in the collecting function clears the
// taint everywhere downstream, and slices.Sorted is a sanitizer.
package attribution

import (
	"bytes"
	"fmt"
	"maps"
	"slices"
	"sort"
)

// collectHostsSorted collects then sorts — the approved idiom; the
// return value carries no order taint.
func collectHostsSorted(certs map[string]string) []string {
	var hosts []string
	for host := range certs {
		hosts = append(hosts, host)
	}
	sort.Strings(hosts)
	return hosts
}

// firstCertByBaseSorted is the fixed consumer: same first-wins store,
// but over a deterministically ordered slice.
func firstCertByBaseSorted(certs map[string]string) map[string]string {
	byBase := map[string]string{}
	for _, host := range collectHostsSorted(certs) {
		if _, ok := byBase[baseOf(host)]; !ok {
			byBase[baseOf(host)] = host
		}
	}
	return byBase
}

// reportHostsSorted writes hosts in sorted key order.
func reportHostsSorted(w *bytes.Buffer, certs map[string]string) {
	for _, host := range slices.Sorted(maps.Keys(certs)) {
		fmt.Fprintln(w, host)
	}
}

// writeAllSorted hands emit clean data; the parameter-sink edge only
// matters when the argument is actually map-ordered.
func writeAllSorted(w *bytes.Buffer, certs map[string]string) {
	emit(w, collectHostsSorted(certs))
}
