// The PR 3 certByBase bug split across function boundaries: the hosts
// are collected in map order in one function and consumed by ordered
// sinks in others, so the intra-procedural detrange can only see the
// collecting append — detflow must carry the taint through the return
// value into every sink.
package attribution

import (
	"bytes"
	"fmt"
)

// collectHosts gathers certificate hosts in map iteration order and
// never sorts them; its return value is map-iteration-ordered.
func collectHosts(certs map[string]string) []string {
	var hosts []string
	for host := range certs {
		hosts = append(hosts, host)
	}
	return hosts
}

// firstCertByBase consumes the unsorted hosts first-wins in a second
// function: whichever host reaches a base first wins, so the winner
// depends on map iteration order — the exact certByBase shape.
func firstCertByBase(certs map[string]string) map[string]string {
	byBase := map[string]string{}
	for _, host := range collectHosts(certs) {
		if _, ok := byBase[baseOf(host)]; !ok {
			byBase[baseOf(host)] = host
		}
	}
	return byBase
}

// reportHosts writes the unsorted hosts straight into a report buffer.
func reportHosts(w *bytes.Buffer, certs map[string]string) {
	for _, host := range collectHosts(certs) {
		fmt.Fprintln(w, host)
	}
}

// emit feeds its hosts parameter to an ordered sink, making it a
// parameter sink for every caller.
func emit(w *bytes.Buffer, hosts []string) {
	for _, h := range hosts {
		w.WriteString(h)
	}
}

// writeAll hands map-ordered data to emit: flagged at the call site.
func writeAll(w *bytes.Buffer, certs map[string]string) {
	emit(w, collectHosts(certs))
}

func baseOf(host string) string { return host }
