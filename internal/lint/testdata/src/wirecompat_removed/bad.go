// Four wire structs, each drifted from the golden schema in testdata
// in a different append-only-violating way; wirecompat must flag every
// one against the locked layout.
package shard

// Assignment renamed Shard to ShardID: renames break the locked wire
// order even when the JSON name survives.
type Assignment struct {
	Stage   string `json:"stage"`
	ShardID int    `json:"shard"`
}

// Entry changed Raw from []byte to string: old frames no longer
// decode.
type Entry struct {
	Site string `json:"site"`
	Raw  string `json:"raw"`
}

// Result dropped Digest — the acceptance-criterion case: deleting a
// field from shard.Result is a removal finding.
type Result struct {
	Stage string `json:"stage"`
	Shard int    `json:"shard"`
}

// Telemetry appended Spans without omitempty: frames from binaries
// that predate the field change byte-for-byte when re-encoded.
type Telemetry struct {
	Worker string   `json:"worker,omitempty"`
	Spans  []string `json:"spans"`
}
