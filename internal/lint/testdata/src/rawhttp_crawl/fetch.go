// Fixture: raw net/http on the crawl path — the PR 2 contract
// violation. A bare http.Get or Client.Do bypasses retries, the
// per-host circuit breaker, the failure taxonomy, and the robustness
// metrics, so its failures vanish from the study. The suppressed call
// models the crawler's one sanctioned transport site.
package crawler

import "net/http"

// FetchNaive is the classic violation.
func FetchNaive(url string) (*http.Response, error) {
	return http.Get(url)
}

// FetchClient is the same violation through a client value.
func FetchClient(c *http.Client, req *http.Request) (*http.Response, error) {
	return c.Do(req)
}

// FetchSanctioned models the routed path: the suppression carries the
// written reason the invariant does not apply here.
func FetchSanctioned(c *http.Client, req *http.Request) (*http.Response, error) {
	//studylint:ignore rawhttp fixture model of the crawler's single sanctioned transport call under the resilience loop
	return c.Do(req)
}
