// Fixture: the same raw http.Get, but in a package that is not on the
// crawl path — rawhttp's Applies gate must keep it silent (and this
// package is not in detrange/wallclock scope either, so the fixture
// pins the package-classing logic, not just the AST matching).
package tools

import "net/http"

func Fetch(url string) (*http.Response, error) {
	return http.Get(url)
}
