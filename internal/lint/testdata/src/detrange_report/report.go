// Fixture: report-layer shapes of the detrange bug class — rendering
// table rows straight out of a map walk. The builder write and the
// fmt.Fprintf row emit in map iteration order, so the report text
// (and the per-figure digests fed from it) change run to run. The
// sorted variant is the sanctioned idiom and must not be flagged.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// RenderCounts is the buggy shape: rows appear in map order.
func RenderCounts(counts map[string]int) string {
	var b strings.Builder
	for name, n := range counts {
		b.WriteString(fmt.Sprintf("%s %d\n", name, n))
	}
	return b.String()
}

// WriteCounts is the same bug through an io.Writer.
func WriteCounts(w io.Writer, counts map[string]int) {
	for name, n := range counts {
		fmt.Fprintf(w, "%s %d\n", name, n)
	}
}

// RenderCountsSorted is the fix: collect, sort, then render.
func RenderCountsSorted(counts map[string]int) string {
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		b.WriteString(fmt.Sprintf("%s %d\n", name, counts[name]))
	}
	return b.String()
}
