// Fixture: silently discarded error returns from the must-check list
// in a core-class package. A dropped export flush or manifest write
// turns a failed run into a quietly incomplete one. Handled returns
// and explicit blank assignments are acknowledged and stay silent.
package core

import (
	"bufio"
	"io"
	"os"
)

// Export drops two must-check errors.
func Export(dst io.Writer, src io.Reader, f *os.File) {
	bw := bufio.NewWriter(dst)
	io.Copy(bw, src)  // dropped: the copy can fail mid-stream
	defer f.Close()   // dropped: close reports the final flush error
	bw.Flush()        // dropped: buffered bytes can vanish
}

// ExportChecked handles or acknowledges every error; no findings.
func ExportChecked(dst io.Writer, src io.Reader, f *os.File) error {
	bw := bufio.NewWriter(dst)
	if _, err := io.Copy(bw, src); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	_ = f.Close() // acknowledged drop
	return nil
}
