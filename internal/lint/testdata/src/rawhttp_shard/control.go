// Fixture: raw net/http on the shard control plane. Assignment
// dispatch, worker registration and shutdown all move crawl work
// between processes; a bare http.Post bypasses the resilience loop, so
// a flaky loopback hop silently loses a shard instead of degrading
// into measured, policy-driven retries. The suppressed call models
// postRouted's single sanctioned transport site.
package shard

import (
	"bytes"
	"net/http"
)

// RegisterNaive is the violation: a bare POST to the coordinator.
func RegisterNaive(addr string, body []byte) (*http.Response, error) {
	return http.Post("http://"+addr+"/register", "application/octet-stream", bytes.NewReader(body))
}

// DispatchNaive is the same violation through a client value.
func DispatchNaive(c *http.Client, req *http.Request) (*http.Response, error) {
	return c.Do(req)
}

// DispatchRouted models postRouted: the one sanctioned Do under the
// resilience Allow/Report/Delay loop, with the written reason.
func DispatchRouted(c *http.Client, req *http.Request) (*http.Response, error) {
	//studylint:ignore rawhttp fixture model of postRouted's single sanctioned transport call under the resilience loop
	return c.Do(req)
}
