// The clean shapes: constructor exemption, RLock reads, exclusive-Lock
// writes, and an entry-locked helper called with the mutex held.
package sched

import "sync"

// Gauge guards value behind an RWMutex.
type Gauge struct {
	mu sync.RWMutex
	// guarded by mu
	value int
}

// NewGauge initializes the guarded field pre-publication: the
// constructor owns the value before anyone else can see it.
func NewGauge(v int) *Gauge {
	g := &Gauge{}
	g.value = v
	return g
}

// Load reads under RLock.
func (g *Gauge) Load() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.value
}

// Store writes under the exclusive lock, through the helper.
func (g *Gauge) Store(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.setLocked(v)
}

// setLocked writes the guarded field; callers hold mu.
// guarded by mu
func (g *Gauge) setLocked(v int) {
	g.value = v
}
