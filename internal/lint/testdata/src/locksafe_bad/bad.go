// Every way to violate the `guarded by` contract: unlocked read,
// unlocked write, write under a read lock, and calling an entry-locked
// helper without the mutex.
package sched

import "sync"

// Counter guards its count behind mu.
type Counter struct {
	mu sync.Mutex
	// guarded by mu
	count int
}

// Inc holds the lock: clean.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count++
}

// Peek reads count without the lock.
func (c *Counter) Peek() int {
	return c.count
}

// Reset writes count without the lock.
func (c *Counter) Reset() {
	c.count = 0
}

// Stats guards total behind an RWMutex.
type Stats struct {
	mu sync.RWMutex
	// guarded by mu
	total int
}

// Bump writes under RLock only: writes need the exclusive Lock.
func (s *Stats) Bump() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.total++
}

// addLocked is an entry-locked helper; its body is checked assuming
// the caller holds mu, and call sites must actually hold it.
// guarded by mu
func (s *Stats) addLocked(n int) {
	s.total += n
}

// AddUnlocked calls the helper without holding mu.
func (s *Stats) AddUnlocked(n int) {
	s.addLocked(n)
}
