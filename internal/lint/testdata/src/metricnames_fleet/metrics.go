// Fixture: the fleet_* metric family is the shard coordinator's
// federated fleet view; registering one outside the packages in
// Config.FleetMetricPackages makes a local number wear a fleet-wide
// meaning. Loaded under internal/crawler every fleet_* registration
// below is a finding; loaded under internal/shard (the reservation
// holder) none are — TestFleetMetricPrefixReserved pins both. The
// non-fleet registrations must stay silent under either path.
package crawler

import "pornweb/internal/obs"

func registerFleet(reg *obs.Registry) {
	// A fleet_* gauge outside the coordinator: reads as fleet state,
	// counts this process.
	reg.Gauge("fleet_workers_live")
	// Counter and histogram variants of the same mistake.
	reg.Counter("fleet_worker_visits_total")
	reg.Histogram("fleet_worker_heartbeat_age_seconds", nil)
	// Describe reserves the name just as hard as a registration.
	reg.Describe("fleet_workers_retired", "workers retired after repeated failures")

	// A fleet_* name that also breaks a suffix rule gets both findings.
	reg.Counter("fleet_shards_done")

	// Non-fleet registrations with compliant names: silent everywhere.
	reg.Counter("crawler_requests_total")
	reg.Gauge("crawler_breakers_open")
}
