package lint

import (
	"bytes"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzSuppression hammers the //studylint:ignore comment parser with
// arbitrary comment text. The parser sits on every comment of every
// file the driver loads, so it must never panic and must uphold its
// grammar invariants: a well-formed parse always carries at least one
// non-empty analyzer token and a non-empty trimmed reason, and text
// that does not start with the directive prefix is never treated as a
// directive.
func FuzzSuppression(f *testing.F) {
	seeds := []string{
		"// plain comment",
		"//studylint:ignore detrange keys sorted upstream",
		"//studylint:ignore rawhttp routed through the resilience loop",
		"// studylint:ignore wallclock injected clock wired in NewStudy",
		"//studylint:ignore detrange,wallclock,errdrop generated code",
		"//studylint:ignore * vendored fixture",
		"//studylint:ignore",
		"//studylint:ignore detrange",
		"//studylint:ignore ,,, odd commas",
		"//studylint:ignoreX glued suffix",
		"//\t\tstudylint:ignore errdrop \t tabs everywhere \t",
		"//studylint:ignore detrange reason with //studylint:ignore inside",
		"/* block */",
		"//studylint:ignore \x00 binary",
		"//studylint:ignore détrange unicode name",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, malformed, ok := ParseSuppression(text)
		if !ok {
			if malformed != "" {
				t.Fatalf("not-a-directive must not be malformed: %q -> %q", text, malformed)
			}
			return
		}
		if malformed != "" {
			// Malformed directives carry no usable suppression.
			return
		}
		if len(s.Analyzers) == 0 {
			t.Fatalf("ok parse with no analyzers: %q", text)
		}
		for _, a := range s.Analyzers {
			if a == "" {
				t.Fatalf("empty analyzer token from %q", text)
			}
			if a != strings.ToLower(a) {
				t.Fatalf("analyzer %q not lower-cased from %q", a, text)
			}
			if strings.ContainsAny(a, " \t\n,") {
				t.Fatalf("analyzer token %q contains separators from %q", a, text)
			}
		}
		if s.Reason == "" || s.Reason != strings.TrimSpace(s.Reason) {
			t.Fatalf("reason %q not trimmed/non-empty from %q", s.Reason, text)
		}
		if utf8.ValidString(text) {
			// Parsing is stable: the same text parses the same way twice.
			s2, m2, ok2 := ParseSuppression(text)
			if !ok2 || m2 != "" || strings.Join(s2.Analyzers, ",") != strings.Join(s.Analyzers, ",") || s2.Reason != s.Reason {
				t.Fatalf("unstable parse of %q", text)
			}
		}
	})
}

// FuzzSchemaParse hammers the wirecompat schema parser with arbitrary
// file content. It must never panic, errors must carry a line number,
// and a successful parse must round-trip through its canonical form:
// FormatSchema(ParseSchema(x)) reparses to byte-identical canonical
// text, so the golden file format has exactly one rendering.
func FuzzSchemaParse(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n",
		"struct Result\n  field Stage stage string\n",
		"struct Result\n  field Worker worker string omitempty\n",
		"struct A\nstruct B\n  field X x int\n",
		"field Orphan orphan string\n",
		"struct Result\n  field Stage stage string trailing\n",
		"struct Result\n  field Stage stage string\n  field Stage stage string\n",
		"struct Dup\nstruct Dup\n",
		"struct Telemetry\n  field Metrics metrics *obs.Snapshot omitempty\n",
		"bogus directive\n",
		"struct\n",
		"struct Result extra\n",
		"\xff\xfe not utf8",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSchema(data)
		if err != nil {
			if !strings.Contains(err.Error(), "line ") {
				t.Fatalf("error without line number: %v", err)
			}
			return
		}
		canon := FormatSchema(s)
		s2, err := ParseSchema(canon)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n%s", err, canon)
		}
		if canon2 := FormatSchema(s2); !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical form not a fixpoint:\n--- first ---\n%s--- second ---\n%s", canon, canon2)
		}
		if len(s2.Structs) != len(s.Structs) {
			t.Fatalf("round-trip changed struct count %d -> %d", len(s.Structs), len(s2.Structs))
		}
	})
}
