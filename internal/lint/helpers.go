package lint

import (
	"go/ast"
	"go/types"
)

// calleeOf resolves the function or method a call expression invokes,
// or nil for builtins, conversions, and indirect calls through
// function values.
func (p *Package) calleeOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Func.
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function
// pkgPath.name (methods never match).
func isPkgFunc(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// recvNamed returns the receiver's named type (through pointers), or
// nil for package-level functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isMethodOn reports whether fn is a method on pkgPath.typeName
// (pointer or value receiver) named one of names.
func isMethodOn(fn *types.Func, pkgPath, typeName string, names ...string) bool {
	named := recvNamed(fn)
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != pkgPath || obj.Name() != typeName {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// returnsError reports whether fn's final result is the builtin error
// type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// isMapType reports whether the expression's type is (or aliases) a
// map.
func (p *Package) isMapType(expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isAppendCall reports whether the call is the builtin append.
func (p *Package) isAppendCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}
