package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LockSafe enforces annotated lock discipline. A struct field carrying
// the comment directive
//
//	// guarded by mu
//
// (as its doc comment or trailing line comment, naming a sync.Mutex or
// sync.RWMutex field of the same struct) may only be read or written
// while that mutex is held on every path to the access. A method whose
// doc comment carries the same directive is an entry-locked helper:
// its body is checked assuming the caller holds the receiver's mutex,
// and every call site must actually hold it.
//
// The checker is a per-function abstract interpretation of the lock
// state: Lock/RLock/Unlock/RUnlock update the held set as statements
// execute, `defer mu.Unlock()` keeps the lock to function end,
// branches are analyzed separately and merged by intersection (held
// only if held on every non-terminating path), and func literals that
// escape (goroutines, deferred or stored closures) restart from an
// empty state because they run at an unknown time. Accesses through an
// object built from a composite literal in the same function are
// exempt — the constructor owns the value before it is published.
// RLock satisfies reads; writes need the exclusive Lock.
func LockSafe() *Analyzer {
	return &Analyzer{
		Name:      "locksafe",
		Doc:       "fields annotated `// guarded by <mu>` are only touched with the mutex held",
		RunModule: runLockSafe,
	}
}

// guardedDirective matches one comment line of the annotation grammar.
var guardedDirective = regexp.MustCompile(`^guarded by ([A-Za-z_][A-Za-z0-9_]*)\.?$`)

// directiveIn scans a comment group for the directive, returning the
// named mutex field.
func directiveIn(cg *ast.CommentGroup) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if m := guardedDirective.FindStringSubmatch(text); m != nil {
			return m[1], true
		}
	}
	return "", false
}

// lockGuard describes one guarded field or entry-locked helper.
type lockGuard struct {
	mu         string // mutex field name in the same struct
	rw         bool   // mutex is a sync.RWMutex
	structName string
}

// lockSafe is the module-wide annotation table.
type lockSafe struct {
	guards  map[*types.Var]*lockGuard  // guarded field -> guard
	helpers map[*types.Func]*lockGuard // entry-locked method -> guard
	pkgs    map[string]bool            // packages declaring any annotation
}

// mutexKind classifies a field type as a mutex: 0 none, 1 Mutex, 2 RWMutex.
func mutexKind(t types.Type) int {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return 0
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return 0
	}
	switch obj.Name() {
	case "Mutex":
		return 1
	case "RWMutex":
		return 2
	}
	return 0
}

// collectGuards walks every struct and method declaration for
// directives, validating that each names a real mutex field of the
// same struct.
func collectGuards(ix *Index) (*lockSafe, []Finding) {
	ls := &lockSafe{
		guards:  map[*types.Var]*lockGuard{},
		helpers: map[*types.Func]*lockGuard{},
		pkgs:    map[string]bool{},
	}
	var bad []Finding
	for _, pkg := range ix.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					bad = append(bad, collectStructGuards(pkg, ts, st, ls)...)
				}
			}
		}
	}
	// Helper directives need the struct table first, so methods can be
	// validated against their receiver's mutexes.
	for _, inf := range ix.Funcs {
		mu, ok := directiveIn(inf.Decl.Doc)
		if !ok {
			continue
		}
		g, f := validateHelper(inf, mu)
		if g != nil {
			ls.helpers[inf.Fn] = g
			ls.pkgs[inf.Pkg.Path] = true
		} else {
			bad = append(bad, f)
		}
	}
	return ls, bad
}

// structMutex finds the mutex field named mu in the struct type, or 0.
func structMutex(st *types.Struct, mu string) int {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == mu {
			return mutexKind(st.Field(i).Type())
		}
	}
	return 0
}

func collectStructGuards(pkg *Package, ts *ast.TypeSpec, st *ast.StructType, ls *lockSafe) []Finding {
	tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return nil
	}
	stType, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var bad []Finding
	for _, field := range st.Fields.List {
		mu, ok := directiveIn(field.Doc)
		if !ok {
			mu, ok = directiveIn(field.Comment)
		}
		if !ok {
			continue
		}
		kind := structMutex(stType, mu)
		if kind == 0 {
			bad = append(bad, pkg.finding("locksafe", field.Pos(),
				"`guarded by %s` on %s names no sync.Mutex/RWMutex field of the struct", mu, ts.Name.Name))
			continue
		}
		g := &lockGuard{mu: mu, rw: kind == 2, structName: ts.Name.Name}
		for _, name := range field.Names {
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
				ls.guards[v] = g
				ls.pkgs[pkg.Path] = true
			}
		}
	}
	return bad
}

func validateHelper(inf *IndexedFunc, mu string) (*lockGuard, Finding) {
	named := recvNamed(inf.Fn)
	if named == nil {
		return nil, inf.Pkg.finding("locksafe", inf.Decl.Pos(),
			"`guarded by %s` on %s: only methods can be entry-locked helpers", mu, inf.Fn.Name())
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok || structMutex(st, mu) == 0 {
		return nil, inf.Pkg.finding("locksafe", inf.Decl.Pos(),
			"`guarded by %s` on %s names no sync.Mutex/RWMutex field of %s",
			mu, displayName(inf.Fn), named.Obj().Name())
	}
	return &lockGuard{mu: mu, rw: structMutex(st, mu) == 2, structName: named.Obj().Name()}, Finding{}
}

// lockState is the abstract lock state: rendered mutex paths
// ("c.mu") currently held for read (Lock or RLock) and for write
// (Lock only).
type lockState struct {
	r, w map[string]bool
}

func newLockState() *lockState {
	return &lockState{r: map[string]bool{}, w: map[string]bool{}}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k := range s.r {
		c.r[k] = true
	}
	for k := range s.w {
		c.w[k] = true
	}
	return c
}

func (s *lockState) set(o *lockState) {
	s.r, s.w = o.r, o.w
}

// intersect keeps only locks held in both states.
func intersect(a, b *lockState) *lockState {
	out := newLockState()
	for k := range a.r {
		if b.r[k] {
			out.r[k] = true
		}
	}
	for k := range a.w {
		if b.w[k] {
			out.w[k] = true
		}
	}
	return out
}

// mergeBranches folds the end states of a statement's branches:
// terminated branches (return/panic/break) drop out; the result is
// the intersection of the rest, or nil when every branch terminated.
func mergeBranches(states []*lockState, terms []bool) *lockState {
	var merged *lockState
	for i, st := range states {
		if terms[i] {
			continue
		}
		if merged == nil {
			merged = st
		} else {
			merged = intersect(merged, st)
		}
	}
	return merged
}

func runLockSafe(cfg *Config, ix *Index) []Finding {
	ls, findings := collectGuards(ix)
	if len(ls.guards) == 0 && len(ls.helpers) == 0 {
		return findings
	}
	for _, inf := range ix.Funcs {
		// Guarded fields are unexported: only their declaring package can
		// touch them, so only those packages need the walk.
		if inf.Decl.Body == nil || !ls.pkgs[inf.Pkg.Path] {
			continue
		}
		w := &lockWalker{pkg: inf.Pkg, ls: ls, fnName: displayName(inf.Fn)}
		w.collectCtorLocals(inf.Decl.Body)
		st := newLockState()
		if g, ok := ls.helpers[inf.Fn]; ok {
			if recv := recvIdent(inf.Decl); recv != "" {
				key := recv + "." + g.mu
				st.r[key] = true
				st.w[key] = true
			}
		}
		w.stmt(inf.Decl.Body, st)
		findings = append(findings, w.findings...)
	}
	return findings
}

// recvIdent returns the receiver's identifier name, or "".
func recvIdent(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// lockWalker checks one function body against the annotation table.
type lockWalker struct {
	pkg      *Package
	ls       *lockSafe
	fnName   string
	ctor     map[types.Object]bool
	findings []Finding
}

// collectCtorLocals marks objects bound to a composite literal in this
// function: the constructor owns them pre-publication, so unguarded
// initialization is fine.
func (w *lockWalker) collectCtorLocals(body *ast.BlockStmt) {
	w.ctor = map[types.Object]bool{}
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		e := ast.Unparen(rhs)
		if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
			e = ast.Unparen(ue.X)
		}
		if _, ok := e.(*ast.CompositeLit); !ok {
			return
		}
		if obj := w.pkg.Info.Defs[id]; obj != nil {
			w.ctor[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) {
					mark(lhs, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					mark(name, n.Values[i])
				}
			}
		}
		return true
	})
}

// stmt interprets one statement, mutating st, and reports whether the
// statement terminates the enclosing path (return, panic, branch).
func (w *lockWalker) stmt(s ast.Stmt, st *lockState) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		for _, inner := range s.List {
			if w.stmt(inner, st) {
				return true
			}
		}
	case *ast.ExprStmt:
		w.expr(s.X, st, false)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isTerminalCall(w.pkg, call) {
			return true
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.expr(rhs, st, false)
		}
		for _, lhs := range s.Lhs {
			w.expr(lhs, st, true)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, st, true)
	case *ast.SendStmt:
		w.expr(s.Chan, st, false)
		w.expr(s.Value, st, false)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, st, false)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r, st, false)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.IfStmt:
		w.stmt(s.Init, st)
		w.expr(s.Cond, st, false)
		thenSt, elseSt := st.clone(), st.clone()
		tTerm := w.stmt(s.Body, thenSt)
		eTerm := false
		if s.Else != nil {
			eTerm = w.stmt(s.Else, elseSt)
		}
		merged := mergeBranches([]*lockState{thenSt, elseSt}, []bool{tTerm, eTerm})
		if merged == nil {
			return true
		}
		st.set(merged)
	case *ast.ForStmt:
		w.stmt(s.Init, st)
		w.expr(s.Cond, st, false)
		bodySt := st.clone()
		w.stmt(s.Body, bodySt)
		w.stmt(s.Post, bodySt)
		st.set(intersect(st, bodySt))
	case *ast.RangeStmt:
		w.expr(s.X, st, false)
		bodySt := st.clone()
		w.stmt(s.Body, bodySt)
		st.set(intersect(st, bodySt))
	case *ast.SwitchStmt:
		w.stmt(s.Init, st)
		w.expr(s.Tag, st, false)
		return w.clauses(s.Body, st, false)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, st)
		w.stmt(s.Assign, st)
		return w.clauses(s.Body, st, false)
	case *ast.SelectStmt:
		return w.clauses(s.Body, st, true)
	case *ast.DeferStmt:
		if isMutexOp(w.pkg, s.Call) != "" {
			// defer mu.Unlock(): the lock is held to function end, which
			// is exactly the state we are already tracking.
			return false
		}
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			// Runs at return time: lock state there is unknown.
			w.funcLit(fl)
			return false
		}
		w.expr(s.Call, st, false)
	case *ast.GoStmt:
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.funcLit(fl)
			for _, arg := range s.Call.Args {
				w.expr(arg, st, false)
			}
			return false
		}
		w.expr(s.Call, st, false)
	}
	return false
}

// clauses interprets a switch/select body: each clause starts from the
// current state; the result is the intersection of non-terminating
// clause ends. exhaustive is true for select (one case always runs).
func (w *lockWalker) clauses(body *ast.BlockStmt, st *lockState, exhaustive bool) bool {
	var states []*lockState
	var terms []bool
	hasDefault := false
	for _, clause := range body.List {
		cs := st.clone()
		term := false
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.expr(e, cs, false)
			}
			for _, inner := range c.Body {
				if w.stmt(inner, cs) {
					term = true
					break
				}
			}
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			w.stmt(c.Comm, cs)
			for _, inner := range c.Body {
				if w.stmt(inner, cs) {
					term = true
					break
				}
			}
		}
		states = append(states, cs)
		terms = append(terms, term)
	}
	if !exhaustive && !hasDefault {
		// A switch without default can skip every case.
		states = append(states, st.clone())
		terms = append(terms, false)
	}
	if len(states) == 0 {
		// Empty select blocks forever; empty switch falls through.
		return exhaustive
	}
	merged := mergeBranches(states, terms)
	if merged == nil {
		return true
	}
	st.set(merged)
	return false
}

// funcLit analyzes an escaping closure from an empty lock state: it
// runs at an unknown time, so no caller-held lock can be assumed.
func (w *lockWalker) funcLit(fl *ast.FuncLit) {
	w.stmt(fl.Body, newLockState())
}

// expr interprets one expression for lock effects and guarded
// accesses. write marks the expression as an assignment target.
func (w *lockWalker) expr(e ast.Expr, st *lockState, write bool) {
	switch e := e.(type) {
	case nil:
	case *ast.SelectorExpr:
		if sel, ok := w.pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				if g := w.ls.guards[v]; g != nil {
					w.checkAccess(e, v, g, st, write)
				}
			}
		}
		w.expr(e.X, st, false)
	case *ast.CallExpr:
		if op := isMutexOp(w.pkg, e); op != "" {
			w.applyMutexOp(e, op, st)
			return
		}
		if fl, ok := ast.Unparen(e.Fun).(*ast.FuncLit); ok {
			// Immediately-invoked literal runs inline: current state holds.
			for _, arg := range e.Args {
				w.expr(arg, st, false)
			}
			w.stmt(fl.Body, st)
			return
		}
		w.checkHelperCall(e, st)
		w.expr(e.Fun, st, false)
		for _, arg := range e.Args {
			w.expr(arg, st, false)
		}
	case *ast.FuncLit:
		w.funcLit(e)
	case *ast.UnaryExpr:
		w.expr(e.X, st, e.Op == token.AND || write)
	case *ast.StarExpr:
		w.expr(e.X, st, write)
	case *ast.ParenExpr:
		w.expr(e.X, st, write)
	case *ast.IndexExpr:
		w.expr(e.X, st, write)
		w.expr(e.Index, st, false)
	case *ast.SliceExpr:
		w.expr(e.X, st, false)
		w.expr(e.Low, st, false)
		w.expr(e.High, st, false)
		w.expr(e.Max, st, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, st, false)
		}
	case *ast.KeyValueExpr:
		// Keys in struct literals are field names, not accesses.
		w.expr(e.Value, st, false)
	case *ast.BinaryExpr:
		w.expr(e.X, st, false)
		w.expr(e.Y, st, false)
	case *ast.TypeAssertExpr:
		w.expr(e.X, st, false)
	}
}

// isMutexOp reports the sync mutex method a call invokes ("Lock",
// "RLock", "Unlock", "RUnlock"), or "".
func isMutexOp(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return ""
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil || mutexKind(tv.Type) == 0 {
		return ""
	}
	return sel.Sel.Name
}

func (w *lockWalker) applyMutexOp(call *ast.CallExpr, op string, st *lockState) {
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	key := types.ExprString(sel.X)
	switch op {
	case "Lock":
		st.r[key] = true
		st.w[key] = true
	case "RLock":
		st.r[key] = true
	case "Unlock":
		delete(st.r, key)
		delete(st.w, key)
	case "RUnlock":
		if !st.w[key] {
			delete(st.r, key)
		}
	}
}

// ctorExempt reports whether the access base is an object this
// function built from a composite literal.
func (w *lockWalker) ctorExempt(base ast.Expr) bool {
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return false
	}
	obj := w.pkg.Info.Uses[id]
	if obj == nil {
		obj = w.pkg.Info.Defs[id]
	}
	return obj != nil && w.ctor[obj]
}

func (w *lockWalker) checkAccess(e *ast.SelectorExpr, v *types.Var, g *lockGuard, st *lockState, write bool) {
	if w.ctorExempt(e.X) {
		return
	}
	key := types.ExprString(e.X) + "." + g.mu
	if st.w[key] || (!write && st.r[key]) {
		return
	}
	verb := "reads"
	if write {
		verb = "writes"
	}
	if write && st.r[key] {
		w.findings = append(w.findings, w.pkg.finding("locksafe", e.Pos(),
			"%s %s.%s (guarded by %s) holding only %s.RLock in %s: writes need the exclusive Lock",
			verb, g.structName, v.Name(), g.mu, key, w.fnName))
		return
	}
	w.findings = append(w.findings, w.pkg.finding("locksafe", e.Pos(),
		"%s %s.%s (guarded by %s) without holding %s in %s",
		verb, g.structName, v.Name(), g.mu, key, w.fnName))
}

// checkHelperCall enforces the entry-locked helper contract at the
// call site.
func (w *lockWalker) checkHelperCall(call *ast.CallExpr, st *lockState) {
	fn := w.pkg.calleeOf(call)
	if fn == nil {
		return
	}
	g, ok := w.ls.helpers[fn]
	if !ok {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if w.ctorExempt(sel.X) {
		return
	}
	key := types.ExprString(sel.X) + "." + g.mu
	if st.w[key] {
		return
	}
	w.findings = append(w.findings, w.pkg.finding("locksafe", call.Pos(),
		"calls %s.%s (callers must hold %s) without holding %s in %s",
		g.structName, fn.Name(), g.mu, key, w.fnName))
}

// isTerminalCall reports calls that never return: panic and os.Exit.
func isTerminalCall(pkg *Package, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	if fn := pkg.calleeOf(call); fn != nil && isPkgFunc(fn, "os", "Exit") {
		return true
	}
	return false
}
