package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite fixture expect.txt goldens")

// fixtures maps each golden fixture directory to the import path it
// impersonates. Paths only need the right suffix for the package
// classes in DefaultConfig, so every fixture gets a unique path and
// one loader (with one type-checked stdlib) serves them all.
var fixtures = []struct {
	dir        string
	importPath string
}{
	{"detrange_certbybase", "fixture/certbybase/internal/attribution"},
	{"detrange_report", "fixture/detrange/internal/report"},
	{"wallclock_manifest", "fixture/wallclock/internal/provenance"},
	{"rawhttp_crawl", "fixture/rawhttp/internal/crawler"},
	{"rawhttp_elsewhere", "fixture/rawhttp/internal/tools"},
	{"metricnames_bad", "fixture/metricnames/internal/crawler"},
	{"metricnames_fleet", "fixture/fleetmetrics/internal/crawler"},
	{"pproflabel_bad", "fixture/pproflabel/internal/browser"},
	{"errdrop_core", "fixture/errdrop/internal/core"},
	{"errdrop_store", "fixture/errdrop/internal/store"},
	{"rawhttp_shard", "fixture/rawhttp/internal/shard"},
	{"errdrop_shard", "fixture/errdrop/internal/shard"},
	{"suppress_malformed", "fixture/suppress/internal/provenance"},
	{"detflow_certbybase", "fixture/detflow/internal/attribution"},
	{"goroleak_bad", "fixture/goroleak/internal/obs"},
	{"locksafe_bad", "fixture/locksafe/internal/sched"},
	{"wirecompat_removed", "fixture/wirecompat/internal/shard"},
}

var (
	loaderOnce sync.Once
	sharedL    *Loader
	loaderErr  error
)

// sharedLoader hands out one module loader for the whole test binary
// so the stdlib is source-type-checked once, not per test.
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		sharedL, loaderErr = NewLoader("../..")
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return sharedL
}

// runFixture lints one fixture dir under its impersonated import path.
func runFixture(t *testing.T, l *Loader, dir, importPath string) []Finding {
	t.Helper()
	pkg, err := l.LoadFixture(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	return Run(DefaultConfig(), []*Package{pkg})
}

// TestFixtures pins each analyzer against golden expected-findings
// files. Every fixture re-creates a historical bug class — including
// the PR 3 certByBase map-order bug and a raw http.Get on the crawl
// path — so re-introducing one is caught by construction.
func TestFixtures(t *testing.T) {
	l := sharedLoader(t)
	for _, fx := range fixtures {
		t.Run(fx.dir, func(t *testing.T) {
			findings := runFixture(t, l, fx.dir, fx.importPath)
			var buf bytes.Buffer
			if err := WriteText(&buf, findings); err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", "src", fx.dir, "expect.txt")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got := buf.String(); got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestCertByBaseRegressionCaught spells out the acceptance criterion:
// the PR 3 unsorted-map-iteration bug (fixture copy) must be flagged
// by detrange, and its sorted fix must not be.
func TestCertByBaseRegressionCaught(t *testing.T) {
	findings := runFixture(t, sharedLoader(t), "detrange_certbybase", "fixture/certbybase2/internal/attribution")
	var hit, okFileHit bool
	for _, f := range findings {
		if f.Analyzer != "detrange" {
			t.Errorf("unexpected %s finding: %s", f.Analyzer, f)
		}
		if f.File == "bad.go" && strings.Contains(f.Message, "certByBase") {
			hit = true
		}
		if f.File == "ok.go" {
			okFileHit = true
		}
	}
	if !hit {
		t.Error("detrange did not flag the certByBase bug fixture")
	}
	if okFileHit {
		t.Error("detrange flagged the sorted (fixed) variant")
	}
}

// TestRawHTTPRegressionCaught: a raw http.Get in internal/crawler
// (fixture copy) must be flagged; the suppressed sanctioned call and
// the same code outside the crawl path must not be.
func TestRawHTTPRegressionCaught(t *testing.T) {
	l := sharedLoader(t)
	findings := runFixture(t, l, "rawhttp_crawl", "fixture/rawhttp2/internal/crawler")
	var gets, dos int
	for _, f := range findings {
		if f.Analyzer != "rawhttp" {
			t.Errorf("unexpected %s finding: %s", f.Analyzer, f)
		}
		if strings.Contains(f.Message, "http.Get") {
			gets++
		}
		if strings.Contains(f.Message, "(*http.Client).Do") {
			dos++
		}
	}
	if gets != 1 || dos != 1 {
		t.Errorf("want 1 http.Get + 1 unsuppressed Client.Do finding, got %d + %d: %v", gets, dos, findings)
	}
	if off := runFixture(t, l, "rawhttp_elsewhere", "fixture/rawhttp2/internal/tools"); len(off) != 0 {
		t.Errorf("rawhttp flagged a non-crawl-path package: %v", off)
	}
}

// TestModuleClean is the dogfood gate in test form: the suite must
// report zero findings on the repo's own tree. Any new finding either
// gets fixed or carries a written suppression — never lands silently.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check")
	}
	pkgs, err := sharedLoader(t).LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(DefaultConfig(), pkgs)
	for _, f := range findings {
		t.Errorf("finding on the repo tree: %s", f)
	}
}

// TestOutputDeterministic runs the full-module lint twice with
// independent loaders and requires byte-identical text and JSON
// output — studylint's own invariant, held to the same standard it
// enforces.
func TestOutputDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full-module type checks")
	}
	render := func() (string, string) {
		l, err := NewLoader("../..")
		if err != nil {
			t.Fatal(err)
		}
		pkgs, err := l.LoadModule()
		if err != nil {
			t.Fatal(err)
		}
		// The tree is clean, so fold in a fixture with many findings to
		// make the byte-equality check meaningful.
		fpkg, err := l.LoadFixture(filepath.Join("testdata", "src", "metricnames_bad"),
			"fixture/determinism/internal/crawler")
		if err != nil {
			t.Fatal(err)
		}
		findings := Run(DefaultConfig(), append(pkgs, fpkg))
		if len(findings) == 0 {
			t.Fatal("expected fixture findings in the determinism probe")
		}
		var txt, js bytes.Buffer
		if err := WriteText(&txt, findings); err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&js, findings); err != nil {
			t.Fatal(err)
		}
		return txt.String(), js.String()
	}
	txtA, jsA := render()
	txtB, jsB := render()
	if txtA != txtB {
		t.Errorf("text output differs between runs:\n--- A ---\n%s--- B ---\n%s", txtA, txtB)
	}
	if jsA != jsB {
		t.Error("JSON output differs between runs")
	}
}

// TestDetFlowCrossFunctionCaught pins the tentpole acceptance
// criterion: the certByBase flow split across two functions —
// invisible to the intra-procedural detrange — is flagged by detflow
// at its sinks, and the sorted variants in ok.go stay clean.
func TestDetFlowCrossFunctionCaught(t *testing.T) {
	findings := runFixture(t, sharedLoader(t), "detflow_certbybase", "fixture/detflow2/internal/attribution")
	var firstWins, fprintSink, callSink bool
	for _, f := range findings {
		if f.File == "ok.go" {
			t.Errorf("flagged the sorted (fixed) variant: %s", f)
		}
		if f.Analyzer != "detflow" {
			continue
		}
		switch {
		case strings.Contains(f.Message, "first-wins store"):
			firstWins = true
		case strings.Contains(f.Message, "reaches fmt.Fprintln"):
			fprintSink = true
		case strings.Contains(f.Message, "passes map-iteration-ordered value"):
			callSink = true
		}
	}
	if !firstWins {
		t.Error("detflow missed the cross-function first-wins store (the certByBase shape)")
	}
	if !fprintSink {
		t.Error("detflow missed the returned-taint-to-Fprintln flow")
	}
	if !callSink {
		t.Error("detflow missed the tainted argument to a parameter-sink function")
	}
}

// TestWireFieldRemovalCaught pins the other acceptance criterion:
// deleting a field from shard.Result in a scratch fixture is flagged
// by wirecompat as a removal against the golden schema.
func TestWireFieldRemovalCaught(t *testing.T) {
	findings := runFixture(t, sharedLoader(t), "wirecompat_removed", "fixture/wirecompat2/internal/shard")
	for _, f := range findings {
		if f.Analyzer == "wirecompat" &&
			strings.Contains(f.Message, "Result.Digest") &&
			strings.Contains(f.Message, "removed") {
			return
		}
	}
	t.Errorf("wirecompat did not flag the deleted Result.Digest field; findings: %v", findings)
}

// TestAnalyzerNamesStable pins the suite roster; new analyzers must
// update docs and this list together.
func TestAnalyzerNamesStable(t *testing.T) {
	want := []string{"detflow", "detrange", "errdrop", "goroleak", "locksafe",
		"metricnames", "rawhttp", "wallclock", "wirecompat"}
	got := AnalyzerNames()
	if len(got) != len(want) {
		t.Fatalf("analyzers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("analyzers = %v, want %v", got, want)
		}
	}
}

// TestFleetMetricPrefixReserved pins the fleet_* reservation from both
// sides: the identical fixture loaded under internal/shard (the
// package class holding the reservation) loses every fleet-prefix
// finding, while any other import path keeps them — and the suffix
// rules keep firing in shard, so the exemption is surgical.
func TestFleetMetricPrefixReserved(t *testing.T) {
	l := sharedLoader(t)
	asCrawler := runFixture(t, l, "metricnames_fleet", "fixture/fleetmetrics2/internal/crawler")
	asShard := runFixture(t, l, "metricnames_fleet", "fixture/fleetmetrics2/internal/shard")
	count := func(findings []Finding, substr string) int {
		n := 0
		for _, f := range findings {
			if strings.Contains(f.Message, substr) {
				n++
			}
		}
		return n
	}
	if got := count(asCrawler, "reserved for the shard coordinator"); got != 5 {
		t.Errorf("crawler fixture: %d fleet-prefix findings, want 5: %v", got, asCrawler)
	}
	if got := count(asShard, "reserved for the shard coordinator"); got != 0 {
		t.Errorf("shard fixture: %d fleet-prefix findings, want 0 (reservation holder): %v", got, asShard)
	}
	// The reservation does not relax the rest of the contract: the
	// counter missing _total fires under both import paths.
	for name, findings := range map[string][]Finding{"crawler": asCrawler, "shard": asShard} {
		if got := count(findings, `counter "fleet_shards_done" must end in _total`); got != 1 {
			t.Errorf("%s fixture: %d suffix findings on fleet_shards_done, want 1", name, got)
		}
	}
}

// TestPprofStageForwarderExempt pins the one sanctioned dynamic-stage
// call site: the identical fixture loaded under an internal/sched
// import path loses only the dynamic-stage-value finding (the
// scheduler forwards names its callers declared statically) — every
// other pprof label finding still applies there.
func TestPprofStageForwarderExempt(t *testing.T) {
	l := sharedLoader(t)
	asBrowser := runFixture(t, l, "pproflabel_bad", "fixture/pproflabel2/internal/browser")
	asSched := runFixture(t, l, "pproflabel_bad", "fixture/pproflabel2/internal/sched")
	count := func(findings []Finding, substr string) int {
		n := 0
		for _, f := range findings {
			if strings.Contains(f.Message, substr) {
				n++
			}
		}
		return n
	}
	if got := count(asBrowser, "must be a constant stage name"); got != 1 {
		t.Errorf("browser fixture: %d dynamic-stage findings, want 1", got)
	}
	if got := count(asSched, "must be a constant stage name"); got != 0 {
		t.Errorf("sched fixture: %d dynamic-stage findings, want 0 (forwarder exemption)", got)
	}
	// The exemption is surgical: everything else still fires in sched.
	for _, substr := range []string{
		"alternating key/value pairs",
		"pprof label key must be a constant string",
		`"Stage" is not snake_case`,
		"does not match the stage naming convention",
	} {
		if got := count(asSched, substr); got != 1 {
			t.Errorf("sched fixture: %d findings matching %q, want 1", got, substr)
		}
	}
}
