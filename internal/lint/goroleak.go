package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak requires every `go` statement in the server-lifetime
// packages to have a provable cancellation edge: something reachable
// from the spawned function that an owner can use to stop it. Three
// edge shapes are accepted, matching the repo's three shutdown idioms:
//
//   - a context.Context in scope of the goroutine (ctx.Done selects),
//   - a channel receive (<-stop, select with a receive case, range
//     over a channel) — the stop-channel idiom the obs runtime poller
//     uses,
//   - a call that takes or targets a net.Listener or *http.Server —
//     Serve loops exit when the owner closes the listener.
//
// The check is transitive through the module call graph: `go p.loop()`
// is fine when loop's body receives from the poller's stop channel.
// The coordinator/worker fleet and the future long-running auditd
// (ROADMAP item 5) must not leak goroutines across runs; a goroutine
// with no cancellation edge can only be stopped by process exit.
func GoroLeak() *Analyzer {
	return &Analyzer{
		Name:      "goroleak",
		Doc:       "go statements in server-lifetime packages need a provable cancellation edge",
		RunModule: runGoroLeak,
	}
}

func runGoroLeak(cfg *Config, ix *Index) []Finding {
	// Fixpoint over the module call graph: edge[fn] means fn's body
	// contains a cancellation edge, directly or through a callee.
	edge := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for _, inf := range ix.Funcs {
			if edge[inf.Fn] || inf.Decl.Body == nil {
				continue
			}
			if hasCancelEdge(inf.Pkg, inf.Decl.Body, edge) {
				edge[inf.Fn] = true
				changed = true
			}
		}
	}
	var out []Finding
	for _, inf := range ix.Funcs {
		if !inClass(inf.Pkg.Path, cfg.GoroutinePkgs) || inf.Decl.Body == nil {
			continue
		}
		decl := inf.Decl
		pkg := inf.Pkg
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goStmtHasEdge(pkg, decl, gs, edge) {
				return true
			}
			out = append(out, pkg.finding("goroleak", gs.Pos(),
				"goroutine started in %s has no provable cancellation edge (no context, stop-channel receive, or listener/server close reachable from it); bound its lifetime",
				displayName(inf.Fn)))
			return true
		})
	}
	return out
}

// goStmtHasEdge reports whether one go statement's spawned function
// has a cancellation edge. The call expression itself counts (a ctx or
// listener argument is an edge), as does the body of a func literal,
// the declaration of a named module function, or a local variable the
// enclosing function bound to a func literal.
func goStmtHasEdge(pkg *Package, enclosing *ast.FuncDecl, gs *ast.GoStmt, edge map[*types.Func]bool) bool {
	if hasCancelEdge(pkg, gs.Call, edge) {
		return true
	}
	if id, ok := ast.Unparen(gs.Call.Fun).(*ast.Ident); ok {
		if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
			if lit := localFuncLit(pkg, enclosing, v); lit != nil {
				return hasCancelEdge(pkg, lit.Body, edge)
			}
		}
	}
	return false
}

// hasCancelEdge walks a node for any of the three direct edge shapes,
// or a call to a module function already known to carry one.
func hasCancelEdge(pkg *Package, node ast.Node, edge map[*types.Func]bool) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[n]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if fn := pkg.calleeOf(n); fn != nil && edge[fn] {
				found = true
				return false
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if tv, ok := pkg.Info.Types[sel.X]; ok && tv.Type != nil && isShutdownCarrier(tv.Type) {
					found = true
					return false
				}
			}
			for _, arg := range n.Args {
				if tv, ok := pkg.Info.Types[arg]; ok && tv.Type != nil && isShutdownCarrier(tv.Type) {
					found = true
					return false
				}
			}
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isShutdownCarrier reports whether t is a value whose Close/Shutdown
// unblocks a serve loop: a net listener or an *http.Server.
func isShutdownCarrier(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "net":
		switch obj.Name() {
		case "Listener", "TCPListener", "UnixListener":
			return true
		}
	case "net/http":
		return obj.Name() == "Server"
	}
	return false
}

// localFuncLit resolves a local variable to the single func literal
// the enclosing function binds it to, or nil when the variable is
// rebound or never directly assigned a literal.
func localFuncLit(pkg *Package, enclosing *ast.FuncDecl, v *types.Var) *ast.FuncLit {
	if enclosing.Body == nil {
		return nil
	}
	var lit *ast.FuncLit
	bindings := 0
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if pkg.Info.Defs[id] != v && pkg.Info.Uses[id] != v {
					continue
				}
				bindings++
				if fl, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit); ok {
					lit = fl
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pkg.Info.Defs[name] != v || i >= len(n.Values) {
					continue
				}
				bindings++
				if fl, ok := ast.Unparen(n.Values[i]).(*ast.FuncLit); ok {
					lit = fl
				}
			}
		}
		return true
	})
	if bindings != 1 {
		return nil
	}
	return lit
}
