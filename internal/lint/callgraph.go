package lint

import (
	"go/ast"
	"go/types"
)

// The interprocedural analyzers (detflow, locksafe, goroleak) share one
// module-wide view: every function declaration in every loaded package,
// resolved to its *types.Func, in a deterministic order. The Index is
// built once per Run and handed to each Analyzer.RunModule; call edges
// are resolved on demand through Package.calleeOf, so the "call graph"
// is the pair (function list, callee resolution) rather than a
// materialized edge set — the fixpoint loops the analyzers run converge
// just as fast and nothing is computed for analyzers that never ask.

// IndexedFunc is one function or method declaration in the module,
// paired with the package that declares it.
type IndexedFunc struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Index is the module-wide function index shared by the
// interprocedural analyzers.
type Index struct {
	Pkgs  []*Package
	Funcs []*IndexedFunc // package, file, then declaration order

	byFn map[*types.Func]*IndexedFunc
}

// BuildIndex indexes every function declaration in the given packages.
// The package slice order (sorted by import path from LoadModule) fixes
// the iteration order, so two identical trees index identically.
func BuildIndex(pkgs []*Package) *Index {
	ix := &Index{Pkgs: pkgs, byFn: map[*types.Func]*IndexedFunc{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				inf := &IndexedFunc{Fn: fn, Decl: fd, Pkg: pkg}
				ix.Funcs = append(ix.Funcs, inf)
				ix.byFn[fn] = inf
			}
		}
	}
	return ix
}

// Lookup returns the declaration info for fn, or nil when fn is not
// declared in the indexed packages (stdlib, interface methods).
func (ix *Index) Lookup(fn *types.Func) *IndexedFunc {
	if fn == nil {
		return nil
	}
	return ix.byFn[fn]
}

// displayName renders a function for diagnostics: "Name" for
// package-level functions, "(*T).Name" / "T.Name" for methods.
func displayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			return "(*" + named.Obj().Name() + ")." + fn.Name()
		}
	}
	if named, ok := recv.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}
