package lint

import (
	"go/ast"
)

// RawHTTP flags direct net/http I/O — http.Get/Post/Head/PostForm and
// Client.Do/Get/Post/Head/PostForm — in crawl-path packages. PR 2's
// contract is that every crawl request runs under the
// internal/resilience retry/breaker/budget machinery; a raw call
// bypasses retries, the per-host circuit breaker, the failure
// taxonomy, and the metrics the robustness analysis aggregates, so
// its failures silently vanish from the study. The one sanctioned
// transport call (the crawler's doAttempt, which *is* the routed
// path) carries a //studylint:ignore with its reason.
func RawHTTP() *Analyzer {
	return &Analyzer{
		Name: "rawhttp",
		Doc:  "crawl-path packages route network I/O through internal/resilience, never raw net/http",
		Applies: func(cfg *Config, pkgPath string) bool {
			return inClass(pkgPath, cfg.CrawlPath)
		},
		Run: runRawHTTP,
	}
}

func runRawHTTP(cfg *Config, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pkg.calleeOf(call)
			if fn == nil {
				return true
			}
			switch {
			case isPkgFunc(fn, "net/http", "Get", "Post", "Head", "PostForm"):
				out = append(out, pkg.finding("rawhttp", call.Pos(),
					"calls http.%s on the crawl path; route the request through internal/resilience (retries, breaker, failure taxonomy)",
					fn.Name()))
			case isMethodOn(fn, "net/http", "Client", "Do", "Get", "Post", "Head", "PostForm"):
				out = append(out, pkg.finding("rawhttp", call.Pos(),
					"calls (*http.Client).%s on the crawl path; route the request through internal/resilience (retries, breaker, failure taxonomy)",
					fn.Name()))
			}
			return true
		})
	}
	return out
}
