package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("pornweb/internal/core")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, sorted by file name
	Types *types.Package
	Info  *types.Info

	root string // module root for relFile
}

// relFile renders filename relative to the module root so findings are
// stable across checkouts.
func (p *Package) relFile(filename string) string {
	if p.root != "" {
		if rel, err := filepath.Rel(p.root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

// Loader loads and type-checks module packages using only the
// standard library: module-internal imports resolve recursively from
// the module tree; everything else resolves through go/importer's
// source importer, which reads GOROOT/src and therefore needs neither
// network access nor pre-compiled export data. The loader is the
// types.Importer it hands to go/types.
type Loader struct {
	Root   string // module root (directory containing go.mod)
	Module string // module path from go.mod

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package        // loaded module packages by import path
	typed   map[string]*types.Package  // memoized type info (module + fixture)
	loading map[string]bool            // cycle guard
	extra   map[string]string          // fixture import path -> dir overrides
}

// NewLoader builds a loader for the module rooted at root. It reads
// the module path from go.mod.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(abs)
	if err != nil {
		return nil, err
	}
	// The source importer consults build.Default. Disable cgo so
	// packages like net type-check from their pure-Go fallbacks; a lint
	// pass must not depend on a C toolchain.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Root:    abs,
		Module:  mod,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		typed:   map[string]*types.Package{},
		loading: map[string]bool{},
		extra:   map[string]string{},
	}, nil
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: read go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// Import implements types.Importer for the go/types checker.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.extra[path]; ok {
		pkg, err := l.loadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		pkg, err := l.loadModulePkg(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importDir maps a module import path to its directory.
func (l *Loader) importDir(path string) string {
	if path == l.Module {
		return l.Root
	}
	return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module+"/")))
}

// loadModulePkg loads (memoized) one module package by import path.
func (l *Loader) loadModulePkg(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	pkg, err := l.loadDir(l.importDir(path), path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// loadDir parses and type-checks the non-test Go files of one
// directory under the given import path.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Honour build constraints (//go:build lines and GOOS/GOARCH file
		// suffixes) the same way the compiler does, so platform-split
		// files — e.g. obs's getrusage reader with its unix/!unix pair —
		// don't type-check as duplicate declarations.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: %s: no Go files in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(error) {}, // collect via returned error only
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	l.typed[path] = tpkg
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		root:  l.Root,
	}, nil
}

// LoadModule walks the module tree and loads every package in it,
// returned sorted by import path. testdata, hidden, and vendor-style
// directories are skipped, matching the go tool's package walk.
func (l *Loader) LoadModule() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(p)
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return err
		}
		ip := l.Module
		if rel != "." {
			ip = l.Module + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	paths = dedupe(paths)
	var pkgs []*Package
	for _, ip := range paths {
		pkg, err := l.loadModulePkg(ip)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadFixture loads the single package in dir as if it lived at
// importPath, so analyzers see the package class the fixture
// re-creates. Fixture files may import real module packages; those
// resolve against the loader's module tree.
func (l *Loader) LoadFixture(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l.extra[importPath] = abs
	pkg, err := l.loadDir(abs, importPath)
	if err != nil {
		return nil, err
	}
	// Fixture findings should name files relative to the fixture dir,
	// not the module root, so goldens are checkout-independent.
	pkg.root = abs
	return pkg, nil
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
