package lint

import "testing"

// BenchmarkLintModule times one full-module studylint pass — load,
// parse, type-check (stdlib from GOROOT source), and run all five
// analyzers — so the cost of the always-on `make lint` CI gate stays
// visible in BENCH_lint.json.
func BenchmarkLintModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l, err := NewLoader("../..")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := l.LoadModule()
		if err != nil {
			b.Fatal(err)
		}
		if findings := Run(DefaultConfig(), pkgs); len(findings) != 0 {
			b.Fatalf("tree not clean: %d findings", len(findings))
		}
	}
}
