package lint

import "testing"

// BenchmarkLintModule times one full-module studylint pass — load,
// parse, type-check (stdlib from GOROOT source), and run the whole
// analyzer suite — so the cost of the always-on `make lint` CI gate
// stays visible in BENCH_lint.json, where `make lintbudget` asserts it
// against the budget.
func BenchmarkLintModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l, err := NewLoader("../..")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := l.LoadModule()
		if err != nil {
			b.Fatal(err)
		}
		if findings := Run(DefaultConfig(), pkgs); len(findings) != 0 {
			b.Fatalf("tree not clean: %d findings", len(findings))
		}
	}
}

// BenchmarkLintAnalyzer times each analyzer alone over the loaded
// module: load, type-check and index once outside every timer, then
// one sub-benchmark per analyzer. The split shows where the full-pass
// budget goes — the fixpoint analyzers (detflow, goroleak, locksafe)
// versus the single-walk lexical ones — and benchjson folds the
// sub-benchmarks into BENCH_lint.json's lint_analyzer_seconds map.
func BenchmarkLintAnalyzer(b *testing.B) {
	l, err := NewLoader("../..")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	ix := BuildIndex(pkgs)
	for _, a := range Analyzers() {
		a := a
		b.Run(a.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if a.RunModule != nil {
					_ = a.RunModule(cfg, ix)
					continue
				}
				for _, pkg := range pkgs {
					if a.Applies != nil && !a.Applies(cfg, pkg.Path) {
						continue
					}
					_ = a.Run(cfg, pkg)
				}
			}
		})
	}
}
