package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"strings"
)

// MetricNames enforces the observability naming contract on every
// obs.Registry registration (Counter/Gauge/Histogram/Describe):
// metric names and label keys must be constant snake_case strings,
// counters end in _total, histograms end in _seconds, and gauges must
// not masquerade as counters with a _total suffix. Dashboards, the
// Prometheus exposition, and the EXPERIMENTS.md recipes all key on
// these names; a dynamic or misspelled name is invisible until a
// dashboard quietly reads zero. The fleet_* family is reserved to the
// packages in Config.FleetMetricPackages (the shard coordinator):
// those names mean "federated fleet state merged at the coordinator",
// and a fleet_* gauge registered elsewhere would wear that meaning
// while counting something local.
//
// The same contract extends to profiling labels: runtime/pprof.Labels
// calls must pass alternating constant snake_case keys, and a "stage"
// label's value must be a constant matching the pipeline's stage-name
// convention (lowercase dashed segments separated by "/", e.g.
// "crawl/porn-ES") — cmd/studyprof aggregates profiles by exactly
// these strings, so a dynamic or misspelled stage silently lands in
// the unlabeled row. Packages in Config.PprofStageForwarders (the
// scheduler) may forward dynamic stage values: they relay names their
// callers declared statically.
func MetricNames() *Analyzer {
	return &Analyzer{
		Name: "metricnames",
		Doc:  "obs registrations use constant snake_case names with _total/_seconds suffix conventions",
		Run:  runMetricNames,
	}
}

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// stageNameRE is the stage naming convention the scheduler's graphs
// use: lowercase dashed head, optional /-separated qualifier segments
// that may carry uppercase (country codes: "crawl/porn-ES").
var stageNameRE = regexp.MustCompile(`^[a-z][a-z0-9-]*(/[A-Za-z0-9-]+)*$`)

// obsRegistryPath is where the metrics registry lives; fixtures import
// the real package so the same match works for them.
const obsRegistryPath = "pornweb/internal/obs"

func runMetricNames(cfg *Config, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pkg.calleeOf(call)
			if fn == nil || len(call.Args) == 0 {
				return true
			}
			if isPkgFunc(fn, "runtime/pprof", "Labels") {
				out = append(out, checkPprofLabels(cfg, pkg, call)...)
				return true
			}
			if !isMethodOn(fn, obsRegistryPath, "Registry", "Counter", "Gauge", "Histogram", "Describe") {
				return true
			}
			kind := fn.Name()
			name, isConst := pkg.constString(call.Args[0])
			if !isConst {
				out = append(out, pkg.finding("metricnames", call.Args[0].Pos(),
					"metric name passed to Registry.%s must be a constant string", kind))
				return true
			}
			out = append(out, checkMetricName(cfg, pkg, call, kind, name)...)
			out = append(out, checkLabelKeys(pkg, call, kind)...)
			return true
		})
	}
	return out
}

// constString returns the constant string value of expr, if the
// checker proved it constant.
func (p *Package) constString(expr ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkMetricName validates one registered metric name against the
// naming contract.
func checkMetricName(cfg *Config, pkg *Package, call *ast.CallExpr, kind, name string) []Finding {
	var out []Finding
	pos := call.Args[0].Pos()
	if !snakeCase.MatchString(name) {
		out = append(out, pkg.finding("metricnames", pos,
			"metric name %q is not snake_case ([a-z0-9_], starting with a letter)", name))
		return out // suffix checks on a malformed name just add noise
	}
	if strings.HasPrefix(name, "fleet_") && !inClass(pkg.Path, cfg.FleetMetricPackages) {
		out = append(out, pkg.finding("metricnames", pos,
			"metric name %q uses the fleet_ prefix reserved for the shard coordinator's federation views", name))
	}
	switch kind {
	case "Counter":
		if !strings.HasSuffix(name, "_total") {
			out = append(out, pkg.finding("metricnames", pos,
				"counter %q must end in _total", name))
		}
	case "Histogram":
		if !strings.HasSuffix(name, "_seconds") {
			out = append(out, pkg.finding("metricnames", pos,
				"histogram %q must end in _seconds", name))
		}
	case "Gauge":
		if strings.HasSuffix(name, "_total") {
			out = append(out, pkg.finding("metricnames", pos,
				"gauge %q must not end in _total (that suffix promises a counter)", name))
		}
	}
	return out
}

// checkPprofLabels validates one runtime/pprof.Labels call: alternating
// constant snake_case keys, and constant convention-conforming values
// for the "stage" key (outside the forwarder packages).
func checkPprofLabels(cfg *Config, pkg *Package, call *ast.CallExpr) []Finding {
	if call.Ellipsis != token.NoPos {
		return nil // splatted label slice: keys not statically known
	}
	var out []Finding
	if len(call.Args)%2 != 0 {
		out = append(out, pkg.finding("metricnames", call.Pos(),
			"pprof.Labels takes alternating key/value pairs; got %d arguments", len(call.Args)))
	}
	for i := 0; i+1 < len(call.Args); i += 2 {
		key, isConst := pkg.constString(call.Args[i])
		if !isConst {
			out = append(out, pkg.finding("metricnames", call.Args[i].Pos(),
				"pprof label key must be a constant string"))
			continue
		}
		if !snakeCase.MatchString(key) {
			out = append(out, pkg.finding("metricnames", call.Args[i].Pos(),
				"pprof label key %q is not snake_case", key))
		}
		if key != "stage" {
			continue
		}
		val, isConst := pkg.constString(call.Args[i+1])
		if !isConst {
			if !inClass(pkg.Path, cfg.PprofStageForwarders) {
				out = append(out, pkg.finding("metricnames", call.Args[i+1].Pos(),
					"stage pprof label value must be a constant stage name (only the scheduler forwards dynamic stage names)"))
			}
			continue
		}
		if !stageNameRE.MatchString(val) {
			out = append(out, pkg.finding("metricnames", call.Args[i+1].Pos(),
				"stage pprof label %q does not match the stage naming convention (lowercase dashed segments separated by /)", val))
		}
	}
	return out
}

// checkLabelKeys validates the alternating key/value label arguments:
// keys (the even positions) must be constant snake_case strings.
// Calls that splat a slice (labels...) are skipped — the keys are not
// statically known.
func checkLabelKeys(pkg *Package, call *ast.CallExpr, kind string) []Finding {
	if call.Ellipsis != token.NoPos {
		return nil
	}
	first := 1 // labels start after the name...
	if kind == "Histogram" {
		first = 2 // ...and after the bucket slice for histograms
	}
	if kind == "Describe" {
		return nil // second arg is help text, not labels
	}
	var out []Finding
	for i := first; i < len(call.Args); i += 2 {
		key, isConst := pkg.constString(call.Args[i])
		if !isConst {
			out = append(out, pkg.finding("metricnames", call.Args[i].Pos(),
				"label key passed to Registry.%s must be a constant string", kind))
			continue
		}
		if !snakeCase.MatchString(key) {
			out = append(out, pkg.finding("metricnames", call.Args[i].Pos(),
				"label key %q is not snake_case", key))
		}
	}
	return out
}
