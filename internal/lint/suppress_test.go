package lint

import (
	"strings"
	"testing"
)

func TestParseSuppression(t *testing.T) {
	cases := []struct {
		in        string
		ok        bool
		malformed bool
		analyzers string
		reason    string
	}{
		{"// regular comment", false, false, "", ""},
		{"//studylint:ignoreX not a directive", false, false, "", ""},
		{"//studylint:ignore detrange keys are sorted upstream", true, false, "detrange", "keys are sorted upstream"},
		{"// studylint:ignore rawhttp routed through resilience", true, false, "rawhttp", "routed through resilience"},
		{"//studylint:ignore detrange,wallclock generated code", true, false, "detrange,wallclock", "generated code"},
		{"//studylint:ignore * vendored fixture", true, false, "*", "vendored fixture"},
		{"//studylint:ignore", true, true, "", ""},
		{"//studylint:ignore detrange", true, true, "", ""},
		{"//studylint:ignore ,, reason here", true, true, "", ""},
		{"//\tstudylint:ignore errdrop tab-indented reason", true, false, "errdrop", "tab-indented reason"},
	}
	for _, c := range cases {
		s, malformed, ok := ParseSuppression(c.in)
		if ok != c.ok {
			t.Errorf("%q: ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if (malformed != "") != c.malformed {
			t.Errorf("%q: malformed = %q, want malformed=%v", c.in, malformed, c.malformed)
			continue
		}
		if !ok || malformed != "" {
			continue
		}
		if got := strings.Join(s.Analyzers, ","); got != c.analyzers {
			t.Errorf("%q: analyzers = %q, want %q", c.in, got, c.analyzers)
		}
		if s.Reason != c.reason {
			t.Errorf("%q: reason = %q, want %q", c.in, s.Reason, c.reason)
		}
	}
}

func TestSuppressionCovers(t *testing.T) {
	det := &supEntry{sup: Suppression{Analyzers: []string{"detrange"}, Reason: "r"}, file: "a.go"}
	wild := &supEntry{sup: Suppression{Analyzers: []string{"*"}, Reason: "r"}, file: "a.go"}
	idx := suppressionIndex{
		byFile: map[string]map[int][]*supEntry{
			"a.go": {
				10: {det},
				20: {wild},
			},
		},
	}
	for _, c := range []struct {
		analyzer string
		line     int
		file     string
		want     bool
	}{
		{"detrange", 10, "a.go", true},  // same line
		{"detrange", 11, "a.go", true},  // line below
		{"detrange", 12, "a.go", false}, // two below: out of reach
		{"detrange", 9, "a.go", false},  // above
		{"wallclock", 10, "a.go", false},
		{"wallclock", 21, "a.go", true}, // wildcard
		{"detrange", 10, "b.go", false}, // other file
	} {
		if got := idx.covers(c.analyzer, c.line, c.file); got != c.want {
			t.Errorf("covers(%s, %d, %s) = %v, want %v", c.analyzer, c.line, c.file, got, c.want)
		}
	}
}
