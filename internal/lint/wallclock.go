package lint

import (
	"go/ast"
	"go/types"
)

// WallClock flags ambient time reads (time.Now / time.Since /
// time.Until) and global math/rand use inside the manifest- and
// digest-feeding packages. Run manifests promise byte-identical output
// for a fixed seed at any worker count; one stray wall-clock read or
// unseeded random draw in those packages silently breaks that promise
// for whichever field it feeds. The sanctioned patterns are injection:
// taking time.Now as a *value* into a clock field (`clock: time.Now`)
// is legal — calling it inline is not — and randomness must flow from
// a seeded *rand.Rand (rand.New(rand.NewSource(seed))), never the
// process-global source.
func WallClock() *Analyzer {
	return &Analyzer{
		Name: "wallclock",
		Doc:  "no ambient time or global math/rand in manifest- and digest-feeding packages",
		Applies: func(cfg *Config, pkgPath string) bool {
			return inClass(pkgPath, cfg.Wallclock)
		},
		Run: runWallClock,
	}
}

func runWallClock(cfg *Config, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pkg.calleeOf(call)
			if fn == nil {
				return true
			}
			switch {
			case isPkgFunc(fn, "time", "Now", "Since", "Until"):
				out = append(out, pkg.finding("wallclock", call.Pos(),
					"calls time.%s in a digest-feeding package; route through an injected clock (assign time.Now to a clock field instead)",
					fn.Name()))
			case isGlobalRand(pkg, fn):
				out = append(out, pkg.finding("wallclock", call.Pos(),
					"uses the global math/rand source (rand.%s); draw from a seeded *rand.Rand so runs are reproducible",
					fn.Name()))
			}
			return true
		})
	}
	return out
}

// isGlobalRand reports whether fn is a math/rand (or math/rand/v2)
// package-level function other than the seeded constructors — methods
// on an injected *rand.Rand never match because they have receivers.
func isGlobalRand(pkg *Package, fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}
