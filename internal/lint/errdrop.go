package lint

import (
	"go/ast"
)

// ErrDrop flags calls to the configured must-check functions whose
// error result is silently discarded — a bare expression statement or
// a bare defer — in core and crawler. A dropped error from a manifest
// write or an export flush turns a failed run into a quietly
// incomplete one; the provenance gate then diffs two manifests that
// were never fully written. Explicitly assigning to blank (`_ = f()`)
// is an acknowledged drop and is not flagged.
func ErrDrop() *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc:  "error returns from must-check functions are never silently discarded in core/crawler",
		Applies: func(cfg *Config, pkgPath string) bool {
			return inClass(pkgPath, cfg.ErrdropPkgs)
		},
		Run: runErrDrop,
	}
}

func runErrDrop(cfg *Config, pkg *Package) []Finding {
	must := map[string]bool{}
	for _, name := range cfg.MustCheck {
		must[name] = true
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = ast.Unparen(n.X).(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			fn := pkg.calleeOf(call)
			if fn == nil || !returnsError(fn) {
				return true
			}
			if !must[fn.FullName()] {
				return true
			}
			out = append(out, pkg.finding("errdrop", call.Pos(),
				"error result of %s is discarded; handle it or acknowledge the drop with an explicit blank assignment",
				fn.FullName()))
			return true
		})
	}
	return out
}
