package lint

import (
	"go/ast"
	"go/types"
)

// DetRange flags range statements over maps, inside the deterministic
// packages, whose bodies record output in iteration order: appending
// to a slice that is never sorted afterwards, writing to a
// builder/buffer/io.Writer, or first-wins guarded stores into another
// map. This is the exact shape of the PR 3 certByBase bug, where the
// base-domain attribution winner depended on map iteration order and
// Figure 3 flipped run to run. The sanctioned idiom — collect keys,
// sort, range the sorted slice — is not flagged: the collecting append
// is exempt when the slice reaches a sort call in the same function.
func DetRange() *Analyzer {
	return &Analyzer{
		Name: "detrange",
		Doc:  "no order-dependent output from map iteration in deterministic packages",
		Applies: func(cfg *Config, pkgPath string) bool {
			return inClass(pkgPath, cfg.Deterministic)
		},
		Run: runDetRange,
	}
}

func runDetRange(cfg *Config, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorted := sortedExprs(pkg, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !pkg.isMapType(rs.X) {
					return true
				}
				mapName := types.ExprString(rs.X)
				out = append(out, mapRangeSinks(pkg, rs, mapName, sorted)...)
				return true
			})
		}
	}
	return out
}

// sortedExprs collects the rendered argument expressions of every
// sort.* / slices.Sort* call in the function body; appends into these
// targets are the sanctioned collect-then-sort idiom.
func sortedExprs(pkg *Package, body *ast.BlockStmt) map[string]bool {
	sorted := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pkg.calleeOf(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort":
			switch fn.Name() {
			case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			default:
				return true
			}
		case "slices":
			switch fn.Name() {
			case "Sort", "SortFunc", "SortStableFunc":
			default:
				return true
			}
		default:
			return true
		}
		if len(call.Args) > 0 {
			sorted[types.ExprString(call.Args[0])] = true
		}
		return true
	})
	return sorted
}

// mapRangeSinks walks one map-range body for order-dependent sinks.
func mapRangeSinks(pkg *Package, rs *ast.RangeStmt, mapName string, sorted map[string]bool) []Finding {
	var out []Finding
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rs && pkg.isMapType(n.X) {
				// Nested map range reports on its own.
				return false
			}
		case *ast.AssignStmt:
			// target = append(target, ...) — ordered accumulation unless
			// the slice is sorted later in the same function.
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !pkg.isAppendCall(call) || i >= len(n.Lhs) {
					continue
				}
				target := types.ExprString(n.Lhs[i])
				if sorted[target] {
					continue
				}
				out = append(out, pkg.finding("detrange", n.Pos(),
					"appends to %s while ranging over map %s and never sorts it; iterate sorted keys or sort the result",
					target, mapName))
			}
		case *ast.IfStmt:
			if f, ok := guardedMapStore(pkg, n, mapName); ok {
				out = append(out, f)
			}
		case *ast.CallExpr:
			if f, ok := orderedWriteCall(pkg, n, mapName); ok {
				out = append(out, f)
			}
		}
		return true
	})
	return out
}

// guardedMapStore detects the first-wins pattern inside a map range:
//
//	if _, ok := dst[k]; !ok { dst[k] = v }
//
// Whichever iteration reaches k first wins, so the stored value
// depends on map order (the certByBase bug). Stores of constants are
// exempt — any iteration order stores the same thing.
func guardedMapStore(pkg *Package, ifs *ast.IfStmt, mapName string) (Finding, bool) {
	init, ok := ifs.Init.(*ast.AssignStmt)
	if !ok || len(init.Lhs) != 2 || len(init.Rhs) != 1 {
		return Finding{}, false
	}
	idx, ok := ast.Unparen(init.Rhs[0]).(*ast.IndexExpr)
	if !ok || !pkg.isMapType(idx.X) {
		return Finding{}, false
	}
	guarded := types.ExprString(idx.X)
	var found *Finding
	ast.Inspect(ifs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || found != nil {
			return true
		}
		for i, lhs := range as.Lhs {
			st, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok || types.ExprString(st.X) != guarded {
				continue
			}
			if i < len(as.Rhs) && isConstExpr(pkg, as.Rhs[i]) {
				continue
			}
			f := pkg.finding("detrange", as.Pos(),
				"first-wins store into %s while ranging over map %s: the winner depends on map iteration order (the certByBase bug); iterate sorted keys",
				guarded, mapName)
			found = &f
		}
		return true
	})
	if found == nil {
		return Finding{}, false
	}
	return *found, true
}

// isConstExpr reports whether the checker evaluated expr to a
// constant.
func isConstExpr(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	return ok && tv.Value != nil
}

// orderedWriteCall flags calls that serialize output in iteration
// order: fmt.Fprint* to any writer, and Write/WriteString-shaped
// methods (builders, buffers, hashes, io.Writer implementations).
// Order-independent accumulators like the provenance multiset hash
// expose Add, not Write, precisely so they stay legal inside map
// ranges.
func orderedWriteCall(pkg *Package, call *ast.CallExpr, mapName string) (Finding, bool) {
	fn := pkg.calleeOf(call)
	if fn == nil {
		return Finding{}, false
	}
	if isPkgFunc(fn, "fmt", "Fprint", "Fprintf", "Fprintln") {
		return pkg.finding("detrange", call.Pos(),
			"writes output via fmt.%s while ranging over map %s; iterate sorted keys", fn.Name(), mapName), true
	}
	named := recvNamed(fn)
	if named == nil {
		return Finding{}, false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return pkg.finding("detrange", call.Pos(),
			"writes to %s.%s while ranging over map %s; iterate sorted keys",
			named.Obj().Name(), fn.Name(), mapName), true
	}
	return Finding{}, false
}
