package lint

import (
	"fmt"
	"strings"
)

// The wirecompat golden schema is a line-oriented text file checked
// into the wire package's testdata directory. It freezes the wire
// structs field by field:
//
//	# comment
//	struct Result
//	  field Stage stage string
//	  field Worker worker string omitempty
//
// Each field line is: Go name, JSON name, type (rendered with
// package-name qualifiers, e.g. *obs.Snapshot), and an optional
// trailing "omitempty". Field order is the locked wire order; the
// schema is append-only by construction because wirecompat compares it
// as an ordered prefix of the live struct.

// SchemaField is one locked wire field.
type SchemaField struct {
	GoName    string
	JSONName  string
	Type      string
	Omitempty bool
	Line      int // 1-based line in the schema file
}

// SchemaStruct is one locked wire struct.
type SchemaStruct struct {
	Name   string
	Fields []SchemaField
	Line   int
}

// Schema is a parsed wire-schema file, structs in file order.
type Schema struct {
	Structs []SchemaStruct
}

// Struct returns the schema entry for name, or nil.
func (s *Schema) Struct(name string) *SchemaStruct {
	for i := range s.Structs {
		if s.Structs[i].Name == name {
			return &s.Structs[i]
		}
	}
	return nil
}

// ParseSchema parses a wire-schema file. Blank lines and lines whose
// first token starts with '#' are ignored. Errors carry the offending
// line number.
func ParseSchema(data []byte) (*Schema, error) {
	s := &Schema{}
	var cur *SchemaStruct
	for i, raw := range strings.Split(string(data), "\n") {
		line := i + 1
		fields := strings.Fields(raw)
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "struct":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: want \"struct <Name>\", got %q", line, strings.TrimSpace(raw))
			}
			if s.Struct(fields[1]) != nil {
				return nil, fmt.Errorf("line %d: duplicate struct %q", line, fields[1])
			}
			s.Structs = append(s.Structs, SchemaStruct{Name: fields[1], Line: line})
			cur = &s.Structs[len(s.Structs)-1]
		case "field":
			if cur == nil {
				return nil, fmt.Errorf("line %d: field before any struct", line)
			}
			if len(fields) != 4 && len(fields) != 5 {
				return nil, fmt.Errorf("line %d: want \"field <GoName> <jsonName> <type> [omitempty]\", got %q",
					line, strings.TrimSpace(raw))
			}
			f := SchemaField{GoName: fields[1], JSONName: fields[2], Type: fields[3], Line: line}
			if len(fields) == 5 {
				if fields[4] != "omitempty" {
					return nil, fmt.Errorf("line %d: trailing token %q, want \"omitempty\"", line, fields[4])
				}
				f.Omitempty = true
			}
			for _, prev := range cur.Fields {
				if prev.GoName == f.GoName {
					return nil, fmt.Errorf("line %d: duplicate field %s.%s", line, cur.Name, f.GoName)
				}
			}
			cur.Fields = append(cur.Fields, f)
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", line, fields[0])
		}
	}
	return s, nil
}

// FormatSchema renders a schema back to its canonical text form.
// ParseSchema(FormatSchema(s)) round-trips exactly, which the fuzz
// target leans on.
func FormatSchema(s *Schema) []byte {
	var b strings.Builder
	for i, st := range s.Structs {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "struct %s\n", st.Name)
		for _, f := range st.Fields {
			fmt.Fprintf(&b, "  field %s %s %s", f.GoName, f.JSONName, f.Type)
			if f.Omitempty {
				b.WriteString(" omitempty")
			}
			b.WriteByte('\n')
		}
	}
	return []byte(b.String())
}
