// Package lint is studylint's engine: a stdlib-only static-analysis
// driver (go/parser + go/ast + go/types, no x/tools) that loads every
// package in the module and enforces the pipeline's determinism,
// resilience, and observability invariants at review time instead of
// run time. Each analyzer guards an invariant a past PR shipped — and,
// in two cases, a bug class a past PR shipped first:
//
//   - detrange: no order-dependent output from ranging a map in the
//     deterministic packages (the PR 3 certByBase bug class — Figure 3
//     flipped run to run on map iteration order).
//   - wallclock: no ambient time or global math/rand in manifest- and
//     digest-feeding packages; clocks and seeds must be injected.
//   - rawhttp: crawl-path packages route network I/O through the
//     internal/resilience retry/breaker contract, never raw net/http.
//   - metricnames: metric registrations use constant snake_case names
//     with the _total/_seconds suffix conventions the dashboards key on.
//   - errdrop: error returns from a configured must-check list are
//     never silently discarded in core/crawler.
//
// Four analyzers see past the single function or package, built on a
// module-wide function index (BuildIndex) shared per lint pass:
//
//   - detflow: detrange's interprocedural sibling — map-iteration-
//     ordered values tracked through returns, arguments and struct
//     fields into digest/manifest/report sinks, catching the
//     certByBase shape even when source and sink live in different
//     functions.
//   - locksafe: fields annotated `// guarded by <mu>` are only read or
//     written with that mutex held on every path; `// guarded by <mu>`
//     on a method makes it an entry-locked helper whose call sites
//     must hold the lock.
//   - goroleak: every `go` statement in the server-lifetime packages
//     has a provable cancellation edge (context, stop-channel receive,
//     or listener/server close), transitively through the call graph.
//   - wirecompat: the shard wire structs are locked append-only
//     against a golden schema file in testdata; removals, renames,
//     retypes, and new fields without omitempty are findings.
//
// Findings can be suppressed with a written reason:
//
//	//studylint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the offending line or the line directly above it. A suppression
// without a reason is itself a finding, and RunAudit reports every
// directive with a usage bit so `studylint -suppressions` can fail on
// stale ones. Everything here must stay dependency-free so `make lint`
// runs in offline CI unconditionally.
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Finding is one analyzer hit, addressable by file:line.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // module-root-relative path
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one invariant checker. Run is called once per loaded
// package for which Applies reports true. Analyzers that need the
// module-wide view (call graph, cross-package flows) set RunModule
// instead: it is called exactly once per lint pass with the shared
// Index over every loaded package, and Applies/Run are ignored.
type Analyzer struct {
	Name string
	// Doc is a one-line description of the guarded invariant.
	Doc string
	// Applies reports whether the analyzer runs on the package with the
	// given import path. Nil means every package.
	Applies func(cfg *Config, pkgPath string) bool
	Run     func(cfg *Config, pkg *Package) []Finding
	// RunModule, when non-nil, makes this a module analyzer: one call
	// over the shared function index instead of one call per package.
	RunModule func(cfg *Config, ix *Index) []Finding
}

// Config names the package classes and must-check functions the
// analyzers key on. Paths are module-root-relative import path
// suffixes ("internal/core" matches "pornweb/internal/core"), so the
// same config drives both the real module and test fixtures loaded
// under fixture roots.
type Config struct {
	// Deterministic packages must not emit order-dependent output from
	// map iteration (detrange).
	Deterministic []string
	// Wallclock packages feed manifests and digests and must not read
	// ambient time or global math/rand (wallclock).
	Wallclock []string
	// CrawlPath packages must not perform raw net/http I/O (rawhttp).
	CrawlPath []string
	// MustCheck lists functions whose error result may never be
	// discarded in core/crawler (errdrop), in types.Func.FullName form:
	// "io.Copy", "(*encoding/json.Encoder).Encode".
	MustCheck []string
	// ErrdropPkgs is where errdrop applies.
	ErrdropPkgs []string
	// PprofStageForwarders are the packages allowed to pass a dynamic
	// value for the "stage" pprof label (metricnames): the scheduler
	// forwards stage names its callers declared statically, so the
	// dynamic expression there is the plumbing, not the source. Other
	// packages must either use constant stage names or carry a written
	// suppression.
	PprofStageForwarders []string
	// FleetMetricPackages are the packages allowed to register metrics
	// in the fleet_* family (metricnames): those names are the shard
	// coordinator's federated fleet view, and the /fleet dashboard keys
	// on them meaning "the coordinator's merge points". A fleet_* name
	// registered anywhere else would read as fleet state while counting
	// something local.
	FleetMetricPackages []string
	// GoroutinePkgs are the server-lifetime packages where every `go`
	// statement must have a provable cancellation edge (goroleak): a
	// context, a stop-channel receive, or a listener/server whose Close
	// unblocks the goroutine, reachable from the spawned function.
	GoroutinePkgs []string
	// WirePkgs are the packages whose wire structs are locked against a
	// golden schema file (wirecompat).
	WirePkgs []string
	// WireStructs are the locked struct names inside WirePkgs.
	WireStructs []string
	// WireSchema is the schema file path relative to each wire
	// package's directory.
	WireSchema string
}

// DefaultConfig is the repo's invariant map: which packages promise
// what. Fixture tests reuse it so fixtures exercise the exact
// production configuration.
func DefaultConfig() *Config {
	return &Config{
		Deterministic: []string{
			"internal/core",
			"internal/provenance",
			"internal/report",
			"internal/attribution",
			"internal/webgen",
		},
		Wallclock: []string{
			"internal/core",
			"internal/provenance",
			"internal/report",
			"internal/attribution",
			"internal/webgen",
		},
		CrawlPath: []string{
			"internal/crawler",
			"internal/browser",
			"internal/core",
			"internal/vantage",
			// The shard control plane moves crawl work between processes;
			// its loopback hops obey the same routed-transport contract as
			// the crawl itself (one sanctioned Do under the resilience
			// loop, carrying a written suppression).
			"internal/shard",
		},
		MustCheck: []string{
			"io.Copy",
			"os.WriteFile",
			"os.MkdirAll",
			"(*os.File).Close",
			"(*bufio.Writer).Flush",
			"(*encoding/json.Encoder).Encode",
			"(*pornweb/internal/obs.AdminServer).Close",
			"(*pornweb/internal/core.Study).WriteProvenance",
			"(*pornweb/internal/provenance.Manifest).Write",
			"(*pornweb/internal/provenance.RunInfo).Write",
			// The durable visit store: a dropped error here is a visit that
			// looked persisted but was not — the exact failure mode the
			// crash-safety gate exists to rule out. Both the interface and
			// the concrete methods are listed so neither call form escapes.
			"(pornweb/internal/store.Store).Append",
			"(pornweb/internal/store.Store).Sync",
			"(pornweb/internal/store.Store).Checkpoint",
			"(pornweb/internal/store.Store).Close",
			"(*pornweb/internal/store.Log).Append",
			"(*pornweb/internal/store.Log).Sync",
			"(*pornweb/internal/store.Log).Checkpoint",
			"(*pornweb/internal/store.Log).Close",
			// The shard merge: a dropped error here is a shard that looked
			// merged but was not — a silently incomplete study. Send/Merge
			// carry the validation verdicts; the Close pair releases the
			// loopback listeners.
			"(*pornweb/internal/shard.Merger).Send",
			"(*pornweb/internal/shard.Merger).Merge",
			"(*pornweb/internal/shard.Coordinator).Close",
			"(*pornweb/internal/shard.Server).Close",
			"(*pornweb/internal/provenance.ShardManifest).Write",
		},
		ErrdropPkgs: []string{
			"internal/core",
			"internal/crawler",
			"internal/store",
			"internal/shard",
		},
		PprofStageForwarders: []string{
			"internal/sched",
		},
		FleetMetricPackages: []string{
			"internal/shard",
		},
		GoroutinePkgs: []string{
			// The long-lived server planes: coordinator/worker fleet, the
			// obs admin endpoint and runtime poller, and the study's TLS
			// vhost server. A leaked goroutine here outlives the run.
			"internal/shard",
			"internal/obs",
			"internal/webserver",
		},
		WirePkgs: []string{
			"internal/shard",
		},
		WireStructs: []string{
			"Assignment",
			"Result",
			"Entry",
			"Telemetry",
		},
		WireSchema: "testdata/wire_schema.txt",
	}
}

// inClass reports whether pkgPath ends in one of the class suffixes.
func inClass(pkgPath string, class []string) bool {
	for _, suffix := range class {
		if pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix) {
			return true
		}
	}
	return false
}

// Analyzers returns the full suite in stable order: the package-local
// lexical analyzers first, then the interprocedural module analyzers
// built on the shared function index.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetRange(),
		WallClock(),
		RawHTTP(),
		MetricNames(),
		ErrDrop(),
		WireCompat(),
		DetFlow(),
		LockSafe(),
		GoroLeak(),
	}
}

// AnalyzerNames returns the known analyzer names, sorted.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// Run applies the whole suite to the loaded packages, filters
// suppressed findings, folds in malformed-suppression findings, and
// returns the survivors deterministically sorted by file:line:col.
// Two identical trees produce byte-identical output.
func Run(cfg *Config, pkgs []*Package) []Finding {
	findings, _ := RunAudit(cfg, pkgs)
	return findings
}

// RunAudit is Run plus the suppression audit: alongside the surviving
// findings it returns every valid //studylint:ignore directive with
// its usage bit, so `studylint -suppressions` can list them and flag
// the stale ones.
func RunAudit(cfg *Config, pkgs []*Package) ([]Finding, []SuppressionRecord) {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	sup := indexSuppressions(pkgs, known)
	var all []Finding
	all = append(all, sup.bad...)
	for _, pkg := range pkgs {
		for _, a := range Analyzers() {
			if a.RunModule != nil {
				continue
			}
			if a.Applies != nil && !a.Applies(cfg, pkg.Path) {
				continue
			}
			for _, f := range a.Run(cfg, pkg) {
				if sup.covers(a.Name, f.Line, f.File) {
					continue
				}
				all = append(all, f)
			}
		}
	}
	ix := BuildIndex(pkgs)
	for _, a := range Analyzers() {
		if a.RunModule == nil {
			continue
		}
		for _, f := range a.RunModule(cfg, ix) {
			if sup.covers(a.Name, f.Line, f.File) {
				continue
			}
			all = append(all, f)
		}
	}
	SortFindings(all)
	return all, sup.records()
}

// SortFindings orders findings by file, line, column, analyzer,
// message — the deterministic output contract.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// WriteText renders findings one per line in file:line:col form.
func WriteText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders findings as a JSON array (never null).
func WriteJSON(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fs)
}

// position converts a token.Pos into a Finding-ready location using
// the package's root-relative file naming.
func (p *Package) position(pos token.Pos) (file string, line, col int) {
	pp := p.Fset.Position(pos)
	return p.relFile(pp.Filename), pp.Line, pp.Column
}

// finding builds a Finding at pos.
func (p *Package) finding(analyzer string, pos token.Pos, format string, args ...any) Finding {
	file, line, col := p.position(pos)
	return Finding{
		Analyzer: analyzer,
		File:     file,
		Line:     line,
		Col:      col,
		Message:  fmt.Sprintf(format, args...),
	}
}
