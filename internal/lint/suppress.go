package lint

import (
	"strings"
)

// suppressPrefix starts every suppression comment. The full grammar:
//
//	//studylint:ignore <analyzer>[,<analyzer>...] <reason>
//
// <analyzer> is a known analyzer name or "*" for all; <reason> is
// mandatory free text explaining why the invariant does not apply. A
// suppression covers findings on its own line and on the line directly
// below it.
const suppressPrefix = "studylint:ignore"

// Suppression is one parsed //studylint:ignore comment.
type Suppression struct {
	Analyzers []string // lower-case names, or ["*"]
	Reason    string
	Line      int // line the comment starts on
}

// ParseSuppression parses the text of a single comment (with or
// without the leading "//"). ok is false when the comment is not a
// studylint directive at all; malformed is non-empty when it is a
// directive but violates the grammar (missing analyzer or reason).
func ParseSuppression(text string) (s Suppression, malformed string, ok bool) {
	body := strings.TrimPrefix(text, "//")
	body = strings.TrimLeft(body, " \t")
	if !strings.HasPrefix(body, suppressPrefix) {
		return Suppression{}, "", false
	}
	rest := body[len(suppressPrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. "studylint:ignoreX" — some other token, not a directive.
		return Suppression{}, "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Suppression{}, "missing analyzer and reason", true
	}
	names := strings.Split(fields[0], ",")
	var analyzers []string
	for _, n := range names {
		n = strings.TrimSpace(strings.ToLower(n))
		if n == "" {
			continue
		}
		analyzers = append(analyzers, n)
	}
	if len(analyzers) == 0 {
		return Suppression{}, "missing analyzer name", true
	}
	if len(fields) < 2 {
		return Suppression{Analyzers: analyzers}, "missing reason (suppressions must say why)", true
	}
	reason := strings.TrimSpace(strings.Join(fields[1:], " "))
	return Suppression{Analyzers: analyzers, Reason: reason}, "", true
}

// suppressionIndex maps file -> line -> suppressions active there.
type suppressionIndex map[string]map[int][]Suppression

// covers reports whether a finding by analyzer at file:line is
// suppressed: a valid directive sits on the same line or the line
// directly above.
func (idx suppressionIndex) covers(analyzer string, line int, file string) bool {
	byLine := idx[file]
	if byLine == nil {
		return false
	}
	for _, l := range []int{line, line - 1} {
		for _, s := range byLine[l] {
			for _, a := range s.Analyzers {
				if a == "*" || a == analyzer {
					return true
				}
			}
		}
	}
	return false
}

// suppressions walks every comment in the package, indexing valid
// directives and reporting malformed ones (missing reason, unknown
// analyzer) as findings — a suppression that cannot say what it
// suppresses or why is itself an invariant violation.
func (p *Package) suppressions(known map[string]bool) (suppressionIndex, []Finding) {
	idx := suppressionIndex{}
	var bad []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				s, malformed, ok := ParseSuppression(c.Text)
				if !ok {
					continue
				}
				if malformed != "" {
					bad = append(bad, p.finding("suppression", c.Pos(),
						"malformed //studylint:ignore: %s", malformed))
					continue
				}
				unknown := unknownAnalyzers(s.Analyzers, known)
				if len(unknown) > 0 {
					bad = append(bad, p.finding("suppression", c.Pos(),
						"unknown analyzer %q in //studylint:ignore", strings.Join(unknown, ",")))
					continue
				}
				fname, line, _ := p.position(c.Pos())
				s.Line = line
				byLine := idx[fname]
				if byLine == nil {
					byLine = map[int][]Suppression{}
					idx[fname] = byLine
				}
				byLine[line] = append(byLine[line], s)
			}
		}
	}
	return idx, bad
}

func unknownAnalyzers(names []string, known map[string]bool) []string {
	var out []string
	for _, n := range names {
		if n != "*" && !known[n] {
			out = append(out, n)
		}
	}
	return out
}
