package lint

import (
	"sort"
	"strings"
)

// suppressPrefix starts every suppression comment. The full grammar:
//
//	//studylint:ignore <analyzer>[,<analyzer>...] <reason>
//
// <analyzer> is a known analyzer name or "*" for all; <reason> is
// mandatory free text explaining why the invariant does not apply. A
// suppression covers findings on its own line and on the line directly
// below it.
const suppressPrefix = "studylint:ignore"

// Suppression is one parsed //studylint:ignore comment.
type Suppression struct {
	Analyzers []string // lower-case names, or ["*"]
	Reason    string
	Line      int // line the comment starts on
}

// ParseSuppression parses the text of a single comment (with or
// without the leading "//"). ok is false when the comment is not a
// studylint directive at all; malformed is non-empty when it is a
// directive but violates the grammar (missing analyzer or reason).
func ParseSuppression(text string) (s Suppression, malformed string, ok bool) {
	body := strings.TrimPrefix(text, "//")
	body = strings.TrimLeft(body, " \t")
	if !strings.HasPrefix(body, suppressPrefix) {
		return Suppression{}, "", false
	}
	rest := body[len(suppressPrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. "studylint:ignoreX" — some other token, not a directive.
		return Suppression{}, "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Suppression{}, "missing analyzer and reason", true
	}
	names := strings.Split(fields[0], ",")
	var analyzers []string
	for _, n := range names {
		n = strings.TrimSpace(strings.ToLower(n))
		if n == "" {
			continue
		}
		analyzers = append(analyzers, n)
	}
	if len(analyzers) == 0 {
		return Suppression{}, "missing analyzer name", true
	}
	if len(fields) < 2 {
		return Suppression{Analyzers: analyzers}, "missing reason (suppressions must say why)", true
	}
	reason := strings.TrimSpace(strings.Join(fields[1:], " "))
	return Suppression{Analyzers: analyzers, Reason: reason}, "", true
}

// SuppressionRecord is one valid //studylint:ignore directive as the
// audit mode reports it: where it lives, what it claims to suppress,
// why, and whether it actually suppressed anything in this run. A
// record with Used == false is a stale suppression.
type SuppressionRecord struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason"`
	Used      bool     `json:"used"`
}

// supEntry is one indexed suppression with its usage bit.
type supEntry struct {
	sup  Suppression
	file string
	used bool
}

// suppressionIndex maps file -> line -> suppressions active there,
// across every loaded package, and remembers which entries ever
// matched a finding so the audit mode can report stale ones.
type suppressionIndex struct {
	byFile map[string]map[int][]*supEntry
	order  []*supEntry // package/file/comment order, for the audit listing
	bad    []Finding   // malformed or unknown-analyzer directives
}

// covers reports whether a finding by analyzer at file:line is
// suppressed: a valid directive sits on the same line or the line
// directly above. Matching entries are marked used.
func (idx *suppressionIndex) covers(analyzer string, line int, file string) bool {
	byLine := idx.byFile[file]
	if byLine == nil {
		return false
	}
	hit := false
	for _, l := range []int{line, line - 1} {
		for _, e := range byLine[l] {
			for _, a := range e.sup.Analyzers {
				if a == "*" || a == analyzer {
					e.used = true
					hit = true
				}
			}
		}
	}
	return hit
}

// records renders the index as audit records sorted by file:line.
func (idx *suppressionIndex) records() []SuppressionRecord {
	recs := make([]SuppressionRecord, 0, len(idx.order))
	for _, e := range idx.order {
		recs = append(recs, SuppressionRecord{
			File:      e.file,
			Line:      e.sup.Line,
			Analyzers: e.sup.Analyzers,
			Reason:    e.sup.Reason,
			Used:      e.used,
		})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].File != recs[j].File {
			return recs[i].File < recs[j].File
		}
		return recs[i].Line < recs[j].Line
	})
	return recs
}

// indexSuppressions walks every comment of every package, indexing
// valid directives and reporting malformed ones (missing reason,
// unknown analyzer) as findings — a suppression that cannot say what
// it suppresses or why is itself an invariant violation.
func indexSuppressions(pkgs []*Package, known map[string]bool) *suppressionIndex {
	idx := &suppressionIndex{byFile: map[string]map[int][]*supEntry{}}
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					s, malformed, ok := ParseSuppression(c.Text)
					if !ok {
						continue
					}
					if malformed != "" {
						idx.bad = append(idx.bad, p.finding("suppression", c.Pos(),
							"malformed //studylint:ignore: %s", malformed))
						continue
					}
					unknown := unknownAnalyzers(s.Analyzers, known)
					if len(unknown) > 0 {
						idx.bad = append(idx.bad, p.finding("suppression", c.Pos(),
							"unknown analyzer %q in //studylint:ignore", strings.Join(unknown, ",")))
						continue
					}
					fname, line, _ := p.position(c.Pos())
					s.Line = line
					e := &supEntry{sup: s, file: fname}
					byLine := idx.byFile[fname]
					if byLine == nil {
						byLine = map[int][]*supEntry{}
						idx.byFile[fname] = byLine
					}
					byLine[line] = append(byLine[line], e)
					idx.order = append(idx.order, e)
				}
			}
		}
	}
	return idx
}

func unknownAnalyzers(names []string, known map[string]bool) []string {
	var out []string
	for _, n := range names {
		if n != "*" && !known[n] {
			out = append(out, n)
		}
	}
	return out
}

// StaleFindings converts unused suppression records into findings —
// the stale-suppression gate behind `studylint -suppressions`: a
// directive that no longer suppresses anything is dead weight hiding
// whatever the next real finding on that line will be.
func StaleFindings(recs []SuppressionRecord) []Finding {
	var out []Finding
	for _, r := range recs {
		if r.Used {
			continue
		}
		out = append(out, Finding{
			Analyzer: "suppression",
			File:     r.File,
			Line:     r.Line,
			Col:      1,
			Message: "stale //studylint:ignore " + strings.Join(r.Analyzers, ",") +
				": no finding left to suppress; remove it",
		})
	}
	return out
}
