package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Segment layout. A segment is a header followed by zero or more
// framed records:
//
//	header:  magic [8]byte "PWSTORE\x01"
//	         version u32
//	         seed    u64 (two's complement of the int64 seed)
//	         fpLen   u16
//	         fp      [fpLen]byte config fingerprint
//	record:  length  u32  payload byte count
//	         crc     u32  CRC-32 (IEEE) of payload
//	         payload [length]byte = keyLen u16 | key | value
//
// All integers are big-endian. The CRC covers only the payload; the
// length field is implicitly verified because a corrupted length
// either overruns the file (torn tail) or frames a payload whose CRC
// cannot match.
const (
	segMagic      = "PWSTORE\x01"
	segVersion    = 1
	recHeaderSize = 8         // length + crc
	maxRecordSize = 1 << 30   // sanity bound: a corrupt length field must not allocate 4 GiB
	maxKeySize    = 1<<16 - 1 // keyLen is a u16
)

// segment is one open segment file. The last segment of a log is
// active (appendable, has a writer); earlier segments are sealed and
// serve only reads.
type segment struct {
	path string
	file *os.File
	w    *bufio.Writer // nil once sealed
	size int64         // logical size including buffered bytes
}

// headerSize returns the encoded header length for the options' fingerprint.
func headerSize(opts Options) int64 {
	return int64(len(segMagic) + 4 + 8 + 2 + len(opts.Fingerprint))
}

// encodeHeader renders the segment header for opts.
func encodeHeader(opts Options) []byte {
	fp := []byte(opts.Fingerprint)
	buf := make([]byte, 0, headerSize(opts))
	buf = append(buf, segMagic...)
	buf = binary.BigEndian.AppendUint32(buf, segVersion)
	buf = binary.BigEndian.AppendUint64(buf, uint64(opts.Seed))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(fp)))
	buf = append(buf, fp...)
	return buf
}

// createSegment creates a fresh segment file with a synced header so
// the directory's identity survives a crash before the first batch
// sync.
func createSegment(path string, opts Options) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: create segment: %w", err)
	}
	hdr := encodeHeader(opts)
	if _, err := f.Write(hdr); err != nil {
		closeIgnore(f)
		return nil, fmt.Errorf("store: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		closeIgnore(f)
		return nil, fmt.Errorf("store: sync segment header: %w", err)
	}
	return &segment{
		path: path,
		file: f,
		w:    bufio.NewWriterSize(f, 1<<16),
		size: int64(len(hdr)),
	}, nil
}

// openSegment opens an existing segment for replay, verifying the
// header's magic, version, seed, and fingerprint against opts.
func openSegment(path string, opts Options) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open segment: %w", err)
	}
	hdr := make([]byte, headerSize(opts))
	if _, err := io.ReadFull(f, hdr); err != nil {
		closeIgnore(f)
		return nil, fmt.Errorf("store: %s: short header: %w", path, ErrCorrupt)
	}
	if string(hdr[:len(segMagic)]) != segMagic {
		closeIgnore(f)
		return nil, fmt.Errorf("store: %s: bad magic: %w", path, ErrCorrupt)
	}
	rest := hdr[len(segMagic):]
	version := binary.BigEndian.Uint32(rest[:4])
	seed := int64(binary.BigEndian.Uint64(rest[4:12]))
	fpLen := int(binary.BigEndian.Uint16(rest[12:14]))
	if version != segVersion {
		closeIgnore(f)
		return nil, fmt.Errorf("store: %s: segment version %d, want %d: %w", path, version, segVersion, ErrCorrupt)
	}
	if fpLen != len(opts.Fingerprint) || string(rest[14:14+len(opts.Fingerprint)]) != opts.Fingerprint || seed != opts.Seed {
		// A different-length fingerprint makes the header bytes ambiguous
		// with record framing, but that cannot make a valid store pass: the
		// fpLen check fires before any record parsing.
		closeIgnore(f)
		return nil, fmt.Errorf("store: %s: %w", path, ErrFingerprintMismatch)
	}
	return &segment{path: path, file: f, size: int64(len(hdr))}, nil
}

// valueLoc is a replay/append callback payload: where the value bytes
// live plus the digest payload (key, separator, value).
type valueLoc struct {
	off     int64
	size    int
	payload string
}

// replay scans every record after the header, calling fn for each
// valid one. On the final segment (last=true) an incomplete or
// CRC-failing record marks the torn tail: the file is truncated to the
// last valid byte and the segment becomes active (appendable). The
// same damage in an earlier segment is ErrCorrupt — those were sealed
// and fully synced, so a bad record there is real corruption, not a
// crash artifact.
func (s *segment) replay(last bool, fn func(key string, loc valueLoc)) (entries int, truncated bool, err error) {
	if _, err := s.file.Seek(s.size, io.SeekStart); err != nil {
		return 0, false, fmt.Errorf("store: replay seek: %w", err)
	}
	r := bufio.NewReaderSize(s.file, 1<<16)
	off := s.size
	var hdr [recHeaderSize]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				break // clean end
			}
			// Partial record header: torn tail.
			return s.finishReplay(last, off, entries)
		}
		length := binary.BigEndian.Uint32(hdr[:4])
		wantCRC := binary.BigEndian.Uint32(hdr[4:8])
		if length < 2 || length > maxRecordSize {
			return s.finishReplay(last, off, entries)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return s.finishReplay(last, off, entries)
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return s.finishReplay(last, off, entries)
		}
		keyLen := int(binary.BigEndian.Uint16(payload[:2]))
		if 2+keyLen > len(payload) {
			return s.finishReplay(last, off, entries)
		}
		key := string(payload[2 : 2+keyLen])
		value := payload[2+keyLen:]
		fn(key, valueLoc{
			off:     off + recHeaderSize + 2 + int64(keyLen),
			size:    len(value),
			payload: key + keySep + string(value),
		})
		entries++
		off += recHeaderSize + int64(length)
	}
	s.size = off
	if last {
		s.activate()
	}
	return entries, false, nil
}

// finishReplay handles a bad record at offset off: truncate-and-resume
// on the final segment, typed corruption otherwise.
func (s *segment) finishReplay(last bool, off int64, entries int) (int, bool, error) {
	if !last {
		return entries, false, fmt.Errorf("store: %s: bad record at offset %d in sealed segment: %w", s.path, off, ErrCorrupt)
	}
	if err := s.file.Truncate(off); err != nil {
		return entries, false, fmt.Errorf("store: truncate torn tail: %w", err)
	}
	if err := s.file.Sync(); err != nil {
		return entries, false, fmt.Errorf("store: sync truncation: %w", err)
	}
	s.size = off
	s.activate()
	return entries, true, nil
}

// activate positions the file at the logical end and attaches the
// append writer.
func (s *segment) activate() {
	// Seek is infallible here: the offset was just validated by replay.
	if _, err := s.file.Seek(s.size, io.SeekStart); err == nil {
		s.w = bufio.NewWriterSize(s.file, 1<<16)
	}
}

// append frames and buffers one record, returning where its value
// bytes will live and the digest payload.
func (s *segment) append(key string, value []byte) (valueLoc, string, error) {
	if s.w == nil {
		return valueLoc{}, "", fmt.Errorf("store: append to sealed segment %s", s.path)
	}
	if len(key) > maxKeySize {
		return valueLoc{}, "", fmt.Errorf("store: key too large (%d bytes)", len(key))
	}
	payload := encodeRecordPayload(key, value)
	var hdr [recHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := s.w.Write(hdr[:]); err != nil {
		return valueLoc{}, "", fmt.Errorf("store: append: %w", err)
	}
	if _, err := s.w.Write(payload); err != nil {
		return valueLoc{}, "", fmt.Errorf("store: append: %w", err)
	}
	loc := valueLoc{
		off:  s.size + recHeaderSize + 2 + int64(len(key)),
		size: len(value),
	}
	s.size += recHeaderSize + int64(len(payload))
	return loc, key + keySep + string(value), nil
}

// encodeRecordPayload renders keyLen|key|value.
func encodeRecordPayload(key string, value []byte) []byte {
	payload := make([]byte, 0, 2+len(key)+len(value))
	payload = binary.BigEndian.AppendUint16(payload, uint16(len(key)))
	payload = append(payload, key...)
	payload = append(payload, value...)
	return payload
}

// appendFrame appends one complete framed record (length, CRC,
// payload) to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// writeTorn plants a deliberately torn record — the full frame header
// but only half the payload — and syncs it, simulating a power cut
// mid-write. Errors are ignored: this only runs on the crash-injection
// path, where the process is about to die anyway.
func (s *segment) writeTorn(key string, value []byte) {
	if s.w == nil {
		return
	}
	payload := encodeRecordPayload(key, value)
	var hdr [recHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	_, _ = s.w.Write(hdr[:])
	_, _ = s.w.Write(payload[:len(payload)/2])
	_ = s.w.Flush()
	_ = s.file.Sync()
}

// flush pushes buffered appends to the OS (no fsync). Nil-safe for
// sealed segments.
func (s *segment) flush() error {
	if s.w == nil {
		return nil
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	return nil
}

// flushAndSync makes every buffered append durable.
func (s *segment) flushAndSync() error {
	if err := s.flush(); err != nil {
		return err
	}
	if err := s.file.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	return nil
}

// readValue reads one value back from the file.
func (s *segment) readValue(off int64, size int) ([]byte, error) {
	buf := make([]byte, size)
	if _, err := s.file.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("store: read %s@%d: %w", s.path, off, err)
	}
	return buf, nil
}

// close releases the file handle. The caller syncs first if the data
// must be durable.
func (s *segment) close() {
	closeIgnore(s.file)
}

// closeIgnore closes f on paths where the close error has nowhere to
// go (error unwinding, final teardown after an explicit sync).
func closeIgnore(f *os.File) {
	_ = f.Close() // unwind/teardown path; durability comes from the preceding Sync
}
